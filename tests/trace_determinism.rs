//! Query-lifecycle trace determinism and accounting acceptance suite.
//!
//! The tracing contract, held across the four zoo analytics:
//!
//! * the trace *shape* — stage names, nesting, and per-stage counts — is
//!   a pure function of the statement: the serial `Dana` facade and the
//!   concurrent `DanaServer` emit structurally identical traces, and the
//!   shape does not change with the gang width (1, 2, 4 shards). Only
//!   the recorded times may differ;
//! * `EXPLAIN ANALYZE` stage accounting is honest: the per-stage
//!   simulated times sum to the query's own end-to-end report within 5%
//!   on both facades;
//! * `WITH (trace = on)` attaches the same-shaped trace to an ordinary
//!   reply instead of replacing the result surface;
//! * `SHOW STATS` gauges agree exactly with the values the pool and
//!   queue report through their typed APIs.

use dana::prelude::*;
use dana::{QueryTrace, StatementOutcome};
use dana_dsl::zoo::{self, Algorithm, DenseParams, LrmfParams};
use dana_server::{
    AdmissionConfig, DanaServer, QueryRequest, QueryResponse, SchedPolicy, ServerConfig,
    SystemCoreConfig,
};
use dana_storage::page::TupleDirection;
use dana_storage::{BufferPoolConfig, HeapFileBuilder, Schema};

const PAGE: usize = 8 * 1024;

const ZOO: [Algorithm; 4] = [
    Algorithm::Linear,
    Algorithm::Logistic,
    Algorithm::Svm,
    Algorithm::Lrmf,
];

fn dense_heap(n: usize, d: usize, algo: Algorithm) -> HeapFile {
    let truth: Vec<f32> = (0..d).map(|i| 0.3 * i as f32 - 0.8).collect();
    let mut b = HeapFileBuilder::new(Schema::training(d), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let x: Vec<f32> = (0..d)
            .map(|i| (((k * 11 + i * 5) % 17) as f32 - 8.0) / 8.0)
            .collect();
        let s: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
        let y = match algo {
            Algorithm::Linear => s,
            Algorithm::Logistic => (s > 0.0) as u8 as f32,
            Algorithm::Svm => {
                if s > 0.0 {
                    1.0
                } else {
                    -1.0
                }
            }
            Algorithm::Lrmf => unreachable!(),
        };
        b.insert(&Tuple::training(&x, y)).unwrap();
    }
    b.finish()
}

fn rating_heap(n: usize, rows: usize, cols: usize) -> HeapFile {
    let mut b = HeapFileBuilder::new(Schema::rating(), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let (i, j) = (k * rows / n, (k * 13) % cols);
        let r = 1.0 + ((i * 3 + j * 5) % 4) as f32;
        b.insert(&Tuple::rating(i as i32, j as i32, r)).unwrap();
    }
    b.finish()
}

fn spec_for(algo: Algorithm) -> AlgoSpec {
    match algo {
        Algorithm::Lrmf => zoo::lrmf(LrmfParams {
            rows: 24,
            cols: 18,
            rank: 6,
            learning_rate: 0.05,
            merge_coef: 4,
            epochs: 3,
        })
        .unwrap(),
        _ => zoo::spec_for(
            algo,
            DenseParams {
                n_features: 10,
                learning_rate: 0.1,
                merge_coef: 8,
                epochs: 3,
            },
        )
        .unwrap(),
    }
}

fn heap_for(algo: Algorithm, n: usize) -> HeapFile {
    match algo {
        Algorithm::Lrmf => rating_heap(n, 24, 18),
        _ => dense_heap(n, 10, algo),
    }
}

fn buffer_config() -> BufferPoolConfig {
    BufferPoolConfig {
        pool_bytes: 64 << 20,
        page_size: PAGE,
    }
}

fn fresh_dana() -> Dana {
    Dana::new(FpgaSpec::vu9p(), buffer_config(), DiskModel::ssd())
}

fn fresh_server(accelerators: usize) -> DanaServer {
    DanaServer::start(ServerConfig {
        accelerators,
        workers: accelerators,
        admission: AdmissionConfig {
            max_queued: 256,
            policy: SchedPolicy::Fifo,
        },
        default_timeout_ms: None,
        core: SystemCoreConfig {
            fpga: FpgaSpec::vu9p(),
            pool: buffer_config(),
            pool_shards: 4,
            disk: DiskModel::ssd(),
        },
    })
}

/// `EXPLAIN ANALYZE` through the serial facade, returning the report.
fn serial_analyze(db: &mut Dana, sql: &str) -> dana::AnalyzeReport {
    match db.execute_statement(sql).unwrap() {
        StatementOutcome::Analyze(a) => *a,
        other => panic!("expected analyze outcome, got {other:?}"),
    }
}

/// `EXPLAIN ANALYZE` through the server, returning the report.
fn server_analyze(
    srv: &DanaServer,
    session: dana_server::SessionId,
    sql: &str,
) -> dana::AnalyzeReport {
    let reply = srv
        .call(session, QueryRequest::Sql(sql.to_string()))
        .unwrap();
    match reply.response {
        QueryResponse::Analyzed(a) => *a,
        other => panic!("expected analyzed response, got {other:?}"),
    }
}

/// The trace's *shape* must be a pure function of the statement: same
/// stages, same nesting, same counts on the serial facade and the
/// concurrent server, at every gang width — for all four zoo analytics.
#[test]
fn trace_shape_is_facade_and_shard_invariant() {
    for algo in ZOO {
        let spec = spec_for(algo);
        let udf = spec.name.clone();

        let mut shapes: Vec<(String, String)> = Vec::new();
        for shards in [1u16, 2, 4] {
            let sql = format!(
                "EXPLAIN ANALYZE EXECUTE dana.{udf}('t') WITH (backend = fpga, shards = {shards});"
            );

            let mut db = fresh_dana();
            db.create_table("t", heap_for(algo, 900)).unwrap();
            db.deploy(&spec, "t").unwrap();
            let serial = serial_analyze(&mut db, &sql);
            shapes.push((format!("serial/x{shards}"), serial.trace.structure()));

            let srv = fresh_server(4);
            srv.create_table("t", heap_for(algo, 900)).unwrap();
            srv.deploy(&spec, "t").unwrap();
            let session = srv.open_session("tracer");
            let server = server_analyze(&srv, session, &sql);
            shapes.push((format!("server/x{shards}"), server.trace.structure()));
            srv.shutdown();
        }

        let (first_label, first) = &shapes[0];
        for (label, shape) in &shapes[1..] {
            assert_eq!(
                shape, first,
                "{algo:?}: trace shape diverged between {first_label} and {label}"
            );
        }
        // The shape includes the full lifecycle, front door to reply.
        for stage in [
            "parse",
            "admission_wait",
            "lease",
            "scan",
            "engine",
            "merge",
            "reply",
        ] {
            assert!(
                first.contains(stage),
                "{algo:?}: stage '{stage}' missing from shape:\n{first}"
            );
        }
    }
}

/// Stage accounting is honest: simulated per-stage times sum to the
/// query's own end-to-end simulated total within 5%, on both facades,
/// serial and ganged.
#[test]
fn explain_analyze_stage_sums_match_end_to_end_report() {
    let spec = spec_for(Algorithm::Linear);
    let check = |label: &str, report: &dana::AnalyzeReport| {
        let total = report
            .outcome
            .timing()
            .map(|t| t.total_seconds)
            .expect("train outcome has timing");
        let sum = report.trace.stage_sim_sum();
        assert!(total > 0.0, "{label}: degenerate total");
        assert!(
            (sum - total).abs() <= 0.05 * total,
            "{label}: stage sum {sum:.6}s vs end-to-end {total:.6}s (>5% apart)"
        );
        assert_eq!(report.trace.total_sim_seconds, total, "{label}");
    };

    for shards in [1u16, 4] {
        let sql = format!(
            "EXPLAIN ANALYZE EXECUTE dana.linearR('t') WITH (backend = fpga, shards = {shards});"
        );
        let mut db = fresh_dana();
        db.create_table("t", heap_for(Algorithm::Linear, 900))
            .unwrap();
        db.deploy(&spec, "t").unwrap();
        check(&format!("serial/x{shards}"), &serial_analyze(&mut db, &sql));

        let srv = fresh_server(4);
        srv.create_table("t", heap_for(Algorithm::Linear, 900))
            .unwrap();
        srv.deploy(&spec, "t").unwrap();
        let session = srv.open_session("analyzer");
        check(
            &format!("server/x{shards}"),
            &server_analyze(&srv, session, &sql),
        );
        srv.shutdown();
    }
}

/// `WITH (trace = on)` rides the trace on an ordinary reply — same
/// shape as `EXPLAIN ANALYZE`, with the normal result still present.
#[test]
fn opt_in_trace_matches_explain_analyze_shape() {
    let spec = spec_for(Algorithm::Logistic);

    // Serial facade.
    let mut db = fresh_dana();
    db.create_table("t", heap_for(Algorithm::Logistic, 900))
        .unwrap();
    db.deploy(&spec, "t").unwrap();
    let analyzed = serial_analyze(
        &mut db,
        "EXPLAIN ANALYZE EXECUTE dana.logisticR('t') WITH (backend = fpga);",
    );
    let (outcome, trace) = db
        .execute_statement_traced("EXECUTE dana.logisticR('t') WITH (backend = fpga, trace = on);")
        .unwrap();
    let trace: QueryTrace = trace.expect("trace = on must attach a trace");
    assert!(matches!(outcome, StatementOutcome::Train(_)));
    assert_eq!(trace.structure(), analyzed.trace.structure());
    // Without the opt-in, no trace is paid for.
    let (_, no_trace) = db
        .execute_statement_traced("EXECUTE dana.logisticR('t') WITH (backend = fpga);")
        .unwrap();
    assert!(no_trace.is_none());

    // Server facade: the reply carries the trace beside the result.
    let srv = fresh_server(2);
    srv.create_table("t", heap_for(Algorithm::Logistic, 900))
        .unwrap();
    srv.deploy(&spec, "t").unwrap();
    let session = srv.open_session("opt-in");
    let reply = srv
        .call(
            session,
            QueryRequest::Sql(
                "EXECUTE dana.logisticR('t') WITH (backend = fpga, trace = on);".into(),
            ),
        )
        .unwrap();
    assert!(!reply.report().models.is_empty());
    let server_trace = reply.trace.as_ref().expect("server reply must carry trace");
    assert_eq!(server_trace.structure(), analyzed.trace.structure());
    let plain = srv
        .call(
            session,
            QueryRequest::Sql("EXECUTE dana.logisticR('t') WITH (backend = fpga);".into()),
        )
        .unwrap();
    assert!(plain.trace.is_none());
    srv.shutdown();
}

/// `SHOW STATS` pool and queue gauges must equal — not approximate —
/// the values the typed `pool_utilization()` / `queue_stats()` APIs
/// report for the same scenario.
#[test]
fn show_stats_gauges_match_typed_pool_and_queue_apis() {
    let spec = spec_for(Algorithm::Linear);
    let srv = fresh_server(2);
    srv.create_table("t", heap_for(Algorithm::Linear, 900))
        .unwrap();
    srv.deploy(&spec, "t").unwrap();
    let session = srv.open_session("gauges");

    for shards in [1u16, 2, 1] {
        let reply = srv
            .call(
                session,
                QueryRequest::Sql(format!(
                    "EXECUTE dana.linearR('t') WITH (backend = fpga, shards = {shards});"
                )),
            )
            .unwrap();
        assert!(reply.response.sim_seconds() > 0.0);
    }

    let snap = match srv
        .call(session, QueryRequest::Sql("SHOW STATS;".into()))
        .unwrap()
        .response
    {
        QueryResponse::Stats(s) => s,
        other => panic!("expected stats, got {other:?}"),
    };

    // Pool gauges: exact equality with the typed utilization snapshot.
    let u = srv.pool_utilization();
    assert_eq!(snap.get("pool", "instances"), Some(u.instances() as f64));
    assert_eq!(snap.get("pool", "utilization"), Some(u.utilization()));
    assert_eq!(
        snap.get("pool", "busy_seconds_total"),
        Some(u.serial_seconds())
    );
    for i in 0..u.instances() {
        assert_eq!(
            snap.get("pool", &format!("busy_seconds_{i}")),
            Some(u.busy_seconds[i]),
            "instance {i} busy gauge"
        );
        assert_eq!(
            snap.get("pool", &format!("idle_seconds_{i}")),
            Some(u.idle_seconds[i]),
            "instance {i} idle gauge"
        );
        assert_eq!(
            snap.get("pool", &format!("leases_{i}")),
            Some(u.leases[i] as f64),
            "instance {i} lease gauge"
        );
    }
    // The gang run leased both instances; the singles leased one each.
    assert_eq!(u.leases.iter().sum::<u64>(), 4, "3 queries, one ganged");
    assert!(u.serial_seconds() > 0.0);

    // Queue gauges: the 3 training queries + SHOW STATS itself.
    let q = srv.queue_stats();
    assert_eq!(q.admitted, 4);
    assert_eq!(q.rejected, 0);
    assert_eq!(q.depth, 0);
    assert_eq!(snap.get("admission", "admitted"), Some(q.admitted as f64));
    assert_eq!(snap.get("admission", "rejected"), Some(q.rejected as f64));
    assert_eq!(snap.get("admission", "depth"), Some(q.depth as f64));

    // Engine counters saw exactly the completed queries so far.
    assert_eq!(snap.get("engine", "queries_completed"), Some(3.0));
    assert_eq!(snap.get("engine", "fpga_queries"), Some(3.0));

    // Session rows come from the same manager the typed API reads.
    let stats = srv.session_stats(session).unwrap();
    assert_eq!(
        snap.get("sessions", "submitted"),
        Some(stats.submitted as f64)
    );
    assert_eq!(snap.get("sessions", "open"), Some(1.0));

    // Subsystem filtering narrows to one subsystem's rows.
    let pool_only = match srv
        .call(session, QueryRequest::Sql("SHOW STATS('pool');".into()))
        .unwrap()
        .response
    {
        QueryResponse::Stats(s) => s,
        other => panic!("expected stats, got {other:?}"),
    };
    assert!(!pool_only.entries.is_empty());
    assert!(pool_only.entries.iter().all(|e| e.subsystem == "pool"));
    srv.shutdown();
}
