//! Backend differential suite — the acceptance gate for the pluggable
//! execution backends.
//!
//! The CPU tier's correctness contract is **bit-identity** with the
//! simulated-FPGA tier: both backends run the identical deploy-time
//! [`LoweredProgram`] over the identical SoA workspace, so trained
//! models, engine counters, materialized predictions, and metrics must
//! match bit-for-bit — only the cost accounting differs (measured wall
//! seconds vs simulated cycle-model seconds). These tests hold the
//! backends to that contract for every zoo model (linear regression,
//! logistic regression, SVM, LRMF) across lockstep lane counts 1/4/16,
//! through both the engine-level [`ExecutionBackend`] trait and the
//! full `WITH (backend = …)` SQL front door, plus proptest-randomized
//! dense programs.

use std::sync::Arc;

use proptest::prelude::*;

use dana::exec::initial_models;
use dana::prelude::*;
use dana_compiler::{schedule_hdfg, ScheduleParams};
use dana_dsl::zoo::{self, Algorithm, DenseParams, LrmfParams};
use dana_engine::{CpuBackend, ExecutionBackend, ExecutionEngine, FpgaBackend, ModelStore};
use dana_hdfg::translate;
use dana_storage::page::TupleDirection;
use dana_storage::{BufferPoolConfig, HeapFileBuilder, OneBatchSource, Schema, TupleBatch};

const PAGE: usize = 8 * 1024;
const LANES: [u16; 3] = [1, 4, 16];

fn system() -> Dana {
    Dana::new(
        FpgaSpec::vu9p(),
        BufferPoolConfig {
            pool_bytes: 64 << 20,
            page_size: PAGE,
        },
        DiskModel::ssd(),
    )
}

/// A deterministic dense training table: `d` features + label.
fn dense_heap(n: usize, d: usize, algo: Algorithm) -> HeapFile {
    let truth: Vec<f32> = (0..d).map(|i| 0.35 * i as f32 - 0.9).collect();
    let mut b = HeapFileBuilder::new(Schema::training(d), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let x: Vec<f32> = (0..d)
            .map(|i| (((k * 11 + i * 5) % 17) as f32 - 8.0) / 8.0)
            .collect();
        let s: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
        let y = match algo {
            Algorithm::Linear => s,
            Algorithm::Logistic => {
                if s > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Algorithm::Svm => {
                if s > 0.0 {
                    1.0
                } else {
                    -1.0
                }
            }
            Algorithm::Lrmf => unreachable!("dense heap"),
        };
        b.insert(&Tuple::training(&x, y)).unwrap();
    }
    b.finish()
}

/// A deterministic rating table within `rows × cols`.
fn rating_heap(n: usize, rows: usize, cols: usize) -> HeapFile {
    let mut b = HeapFileBuilder::new(Schema::rating(), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let i = (k * 7) % rows;
        let j = (k * 13) % cols;
        let r = 1.0 + ((i * 3 + j * 5) % 4) as f32;
        b.insert(&Tuple::rating(i as i32, j as i32, r)).unwrap();
    }
    b.finish()
}

/// Deterministic pseudo-random tuple values in [-1, 1).
fn synth_tuples(n: usize, width: usize, seed: u64) -> Vec<Vec<f32>> {
    (0..n)
        .map(|k| {
            (0..width)
                .map(|i| {
                    let h = (k as u64 ^ seed)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
                    let h = (h ^ (h >> 31)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    ((h >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
                })
                .collect()
        })
        .collect()
}

/// Runs both backends over the same engine + tuple stream and asserts
/// models and counters are bit-identical, with the cost units in the
/// right slots (wall time only on the CPU tier).
fn assert_backends_identical(engine: &Arc<ExecutionEngine>, tuples: &[Vec<f32>], label: &str) {
    let design = engine.design();
    let batch = TupleBatch::from_rows(tuples[0].len(), tuples);

    let fpga = FpgaBackend::new(Arc::clone(engine));
    let mut fpga_store = ModelStore::new(design, initial_models(design)).unwrap();
    let mut src = OneBatchSource::new(&batch);
    let fpga_run = fpga.run_training(&mut src, &mut fpga_store).unwrap();

    let cpu = CpuBackend::new(Arc::clone(engine));
    let mut cpu_store = ModelStore::new(design, initial_models(design)).unwrap();
    let mut src = OneBatchSource::new(&batch);
    let cpu_run = cpu.run_training(&mut src, &mut cpu_store).unwrap();

    assert_eq!(cpu_store, fpga_store, "{label}: models diverged");
    assert_eq!(cpu_run.stats, fpga_run.stats, "{label}: counters diverged");
    assert!(fpga_run.wall_seconds.is_none(), "{label}: FPGA has no wall");
    assert!(cpu_run.wall_seconds.is_some(), "{label}: CPU must be timed");
}

/// Engine-level lane sweep: every dense zoo model × lockstep lanes
/// 1/4/16 trains bit-identically on both backends.
#[test]
fn dense_zoo_models_bit_identical_across_lanes() {
    for algo in [Algorithm::Linear, Algorithm::Logistic, Algorithm::Svm] {
        let spec = zoo::spec_for(
            algo,
            DenseParams {
                n_features: 10,
                learning_rate: 0.1,
                merge_coef: 8,
                epochs: 4,
            },
        )
        .unwrap();
        for lanes in LANES {
            let design = schedule_hdfg(
                &translate(&spec),
                ScheduleParams {
                    num_threads: lanes,
                    acs_per_thread: 2,
                    slots_per_au: 4096,
                    bus_lanes: 2,
                },
            )
            .unwrap();
            let engine = Arc::new(ExecutionEngine::new(design).unwrap());
            let tuples = synth_tuples(300, 11, 0xD05E ^ lanes as u64);
            assert_backends_identical(&engine, &tuples, &format!("{:?} × {lanes} lanes", algo));
        }
    }
}

/// Engine-level LRMF: the gather/scatter path forces the sequential
/// (thread-at-a-time) executor — still bit-identical across backends
/// for every feasible lane count.
#[test]
fn lrmf_bit_identical_across_lanes() {
    let (rows, cols, rank) = (20usize, 14usize, 6usize);
    let spec = zoo::lrmf(LrmfParams {
        rows,
        cols,
        rank,
        learning_rate: 0.05,
        merge_coef: 4,
        epochs: 3,
    })
    .unwrap();
    let heap = rating_heap(500, rows, cols);
    let batch = heap.scan_batch().unwrap();
    let tuples: Vec<Vec<f32>> = batch.rows().map(|r| r.to_vec()).collect();
    let mut feasible = 0;
    for lanes in LANES {
        let Ok(design) = schedule_hdfg(
            &translate(&spec),
            ScheduleParams {
                num_threads: lanes,
                acs_per_thread: 2,
                slots_per_au: 4096,
                bus_lanes: 2,
            },
        ) else {
            continue; // structurally infeasible (threads, shape) point
        };
        let engine = Arc::new(ExecutionEngine::new(design).unwrap());
        assert!(
            !engine.lowered().is_lockstep(),
            "LRMF must run the sequential tier"
        );
        assert_backends_identical(&engine, &tuples, &format!("lrmf × {lanes} lanes"));
        feasible += 1;
    }
    assert!(feasible > 0, "no feasible LRMF lane count");
}

/// Full-pipeline differential through the SQL front door: for every zoo
/// model, `WITH (backend = cpu)` trains bit-identically to
/// `WITH (backend = fpga)`, PREDICT materializes bit-identical
/// prediction tables on both tiers, and EVALUATE agrees exactly.
#[test]
fn sql_backends_agree_end_to_end() {
    for algo in [Algorithm::Linear, Algorithm::Logistic, Algorithm::Svm] {
        let mut db = system();
        db.create_table("t", dense_heap(700, 12, algo)).unwrap();
        let spec = zoo::spec_for(
            algo,
            DenseParams {
                n_features: 12,
                learning_rate: 0.1,
                merge_coef: 8,
                epochs: 6,
            },
        )
        .unwrap();
        let udf = spec.name.clone();
        db.deploy(&spec, "t").unwrap();

        let fpga = db
            .execute(&format!(
                "SELECT * FROM dana.{udf}('t') WITH (backend = fpga);"
            ))
            .unwrap();
        let cpu = db
            .execute(&format!(
                "SELECT * FROM dana.{udf}('t') WITH (backend = cpu);"
            ))
            .unwrap();
        assert_eq!(fpga.report.backend, BackendKind::Fpga);
        assert_eq!(cpu.report.backend, BackendKind::Cpu);
        assert_eq!(cpu.report.models, fpga.report.models, "{udf}: training");
        assert_eq!(cpu.report.engine.cycles, fpga.report.engine.cycles);
        // Cost units live in distinct slots.
        assert!(fpga.report.timing.total_seconds > 0.0);
        assert!(fpga.report.timing.wall_seconds.is_none());
        assert_eq!(cpu.report.timing.total_seconds, 0.0);
        assert!(cpu.report.timing.wall_seconds.is_some());

        // Scoring tiers: bit-identical materialized predictions.
        let pf = db.predict(&udf, "t", "pf").unwrap();
        let pc = db.predict_cpu(&udf, "t", "pc").unwrap();
        assert_eq!(pf.backend, BackendKind::Fpga);
        assert_eq!(pc.backend, BackendKind::Cpu);
        assert_eq!(pf.rows_scored, pc.rows_scored);
        let scan = |db: &Dana, t: &str| -> Vec<f32> {
            db.catalog()
                .table_heap(t)
                .unwrap()
                .1
                .scan_batch()
                .unwrap()
                .rows()
                .map(|r| r[13])
                .collect()
        };
        assert_eq!(scan(&db, "pf"), scan(&db, "pc"), "{udf}: predictions");

        // Metrics agree exactly.
        let ef = db.evaluate(&udf, "t", None).unwrap();
        let ec = db.evaluate_cpu(&udf, "t", None).unwrap();
        assert_eq!(ec.value, ef.value, "{udf}: metric");
        assert_eq!(ec.metric, ef.metric);
    }

    // LRMF through the same front door (training + metric; factor models
    // live in two variables).
    let mut db = system();
    db.create_table("ratings", rating_heap(600, 24, 18))
        .unwrap();
    let spec = zoo::lrmf(LrmfParams {
        rows: 24,
        cols: 18,
        rank: 8,
        learning_rate: 0.05,
        merge_coef: 4,
        epochs: 4,
    })
    .unwrap();
    db.deploy(&spec, "ratings").unwrap();
    let fpga = db
        .execute("SELECT * FROM dana.lrmf('ratings') WITH (backend = fpga);")
        .unwrap();
    let cpu = db
        .execute("SELECT * FROM dana.lrmf('ratings') WITH (backend = cpu);")
        .unwrap();
    assert_eq!(cpu.report.models, fpga.report.models, "lrmf: factors");
    assert_eq!(cpu.report.backend, BackendKind::Cpu);
    let ef = db.evaluate("lrmf", "ratings", None).unwrap();
    let ec = db.evaluate_cpu("lrmf", "ratings", None).unwrap();
    assert_eq!(ec.value, ef.value, "lrmf: metric");
}

proptest! {
    /// Random dense programs (linear / logistic / SVM), random shapes,
    /// hyper-parameters, and lockstep lane counts: the CPU backend is
    /// bit-identical to the simulated-FPGA backend.
    #[test]
    fn cpu_backend_bit_identical_on_random_dense_programs(
        algo in prop::sample::select(vec![0usize, 1, 2]),
        features in 2usize..24,
        n in 1usize..120,
        threads in prop::sample::select(vec![1u16, 4, 16]),
        learning_rate in 0.01f64..0.5,
        merge_coef in prop::sample::select(vec![1u32, 4, 8, 16]),
        epochs in 1u32..4,
        seed in 0u64..1_000_000,
    ) {
        let p = DenseParams { n_features: features, learning_rate, merge_coef, epochs };
        let spec = match algo {
            0 => zoo::linear_regression(p),
            1 => zoo::logistic_regression(p),
            _ => zoo::svm(p),
        }
        .unwrap();
        let scheduled = schedule_hdfg(
            &translate(&spec),
            ScheduleParams {
                num_threads: threads,
                acs_per_thread: 2,
                slots_per_au: 4096,
                bus_lanes: 2,
            },
        );
        // Some (threads, shape) points are structurally infeasible — skip.
        prop_assume!(scheduled.is_ok());
        let engine = Arc::new(ExecutionEngine::new(scheduled.unwrap()).unwrap());
        let tuples = synth_tuples(n, features + 1, seed);
        assert_backends_identical(
            &engine,
            &tuples,
            &format!("algo {algo}, {features}f × {n}t, {threads} threads"),
        );
    }
}
