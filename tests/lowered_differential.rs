//! Randomized differential tests for the deploy-time-lowered SoA
//! executor.
//!
//! The lowered executor is the hot path; its correctness contract is
//! *bit-identity* with the two retained reference tiers — the streaming
//! flat-scratchpad interpreter (`run_training_interpreter`) and the
//! original per-tuple rows interpreter (`run_training_rows`) — in both
//! trained models and cycle stats. These properties fuzz that contract
//! over randomized small DSL programs (linear/logistic/SVM and LRMF's
//! gather/scatter programs), lockstep thread counts 1/4/16, random tuple
//! streams, and every execution mode of the full `Dana` pipeline.

use proptest::prelude::*;

use dana::exec::initial_models;
use dana::prelude::*;
use dana_compiler::{schedule_hdfg, ScheduleParams};
use dana_dsl::zoo::{linear_regression, logistic_regression, svm, DenseParams};
use dana_engine::{ExecutionEngine, ModelStore};
use dana_hdfg::translate;
use dana_storage::{BufferPoolConfig, TupleBatch};
use dana_workloads::{generate, workload};

/// Deterministic pseudo-random tuple values in [-1, 1).
fn synth_tuples(n: usize, width: usize, seed: u64) -> Vec<Vec<f32>> {
    (0..n)
        .map(|k| {
            (0..width)
                .map(|i| {
                    let h = (k as u64 ^ seed)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
                    let h = (h ^ (h >> 31)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    ((h >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
                })
                .collect()
        })
        .collect()
}

/// Runs all three tiers on the same design + tuples and asserts models and
/// stats are bit-identical.
fn assert_three_tier_identical(engine: &ExecutionEngine, tuples: &[Vec<f32>], label: &str) {
    let design = engine.design();
    let batch = TupleBatch::from_rows(tuples[0].len(), tuples);

    let mut lowered = ModelStore::new(design, initial_models(design)).unwrap();
    let lowered_stats = engine.run_training_batch(&batch, &mut lowered).unwrap();

    let mut interp = ModelStore::new(design, initial_models(design)).unwrap();
    let interp_stats = engine
        .run_training_interpreter_batch(&batch, &mut interp)
        .unwrap();

    let mut rows = ModelStore::new(design, initial_models(design)).unwrap();
    let rows_stats = engine.run_training_rows(tuples, &mut rows).unwrap();

    assert_eq!(lowered, interp, "{label}: lowered vs interpreter models");
    assert_eq!(lowered, rows, "{label}: lowered vs rows models");
    assert_eq!(lowered_stats, interp_stats, "{label}: stats vs interpreter");
    assert_eq!(lowered_stats, rows_stats, "{label}: stats vs rows");
}

proptest! {
    /// Random dense programs (linear / logistic / SVM), random shapes and
    /// hyper-parameters, lockstep thread counts 1/4/16: the lowered SoA
    /// executor is bit-identical to both interpreter tiers.
    #[test]
    fn lowered_is_bit_identical_on_random_dense_programs(
        algo in prop::sample::select(vec![0usize, 1, 2]),
        features in 2usize..24,
        n in 1usize..120,
        threads in prop::sample::select(vec![1u16, 4, 16]),
        learning_rate in 0.01f64..0.5,
        merge_coef in prop::sample::select(vec![1u32, 4, 8, 16]),
        epochs in 1u32..4,
        seed in 0u64..1_000_000,
    ) {
        let p = DenseParams { n_features: features, learning_rate, merge_coef, epochs };
        let spec = match algo {
            0 => linear_regression(p),
            1 => logistic_regression(p),
            _ => svm(p),
        }
        .unwrap();
        let scheduled = schedule_hdfg(
            &translate(&spec),
            ScheduleParams {
                num_threads: threads,
                acs_per_thread: 2,
                slots_per_au: 4096,
                bus_lanes: 2,
            },
        );
        // Some (threads, shape) points are structurally infeasible — skip.
        prop_assume!(scheduled.is_ok());
        let design = scheduled.unwrap();
        let engine = ExecutionEngine::new(design).unwrap();
        let tuples = synth_tuples(n, features + 1, seed);
        assert_three_tier_identical(
            &engine,
            &tuples,
            &format!("algo {algo}, {features}f × {n}t, {threads} threads"),
        );
    }

    /// Random LRMF programs: the per-tuple region gathers and scatters
    /// model rows, driving the lowered executor's sequential
    /// (thread-at-a-time) mode. Still bit-identical to both tiers.
    #[test]
    fn lowered_is_bit_identical_on_random_lrmf_programs(
        rows in 6usize..30,
        cols in 5usize..24,
        rank in 2usize..6,
        n in 1usize..150,
        merge_coef in prop::sample::select(vec![1u32, 2, 4]),
        epochs in 1u32..3,
        seed in 0u64..1_000_000,
    ) {
        let mut w = workload("Netflix").unwrap();
        w.lrmf = Some((rows, cols, rank));
        w.tuples = n as u64;
        w.epochs = epochs;
        w.merge_coef = merge_coef;
        w.learning_rate = 0.05;
        let table = generate(&w, 32 * 1024, seed).unwrap();
        let batch = table.heap.scan_batch().unwrap();
        let tuples: Vec<Vec<f32>> = batch.rows().map(|r| r.to_vec()).collect();
        let acc = dana_compiler::compile(&dana_compiler::CompileInput {
            hdfg: &translate(&w.spec()),
            fpga: FpgaSpec::vu9p(),
            layout: *table.heap.layout(),
            schema_columns: table.heap.schema().len(),
            expected_tuples: table.heap.tuple_count(),
        })
        .unwrap();
        assert!(
            !acc.engine.lowered().is_lockstep(),
            "LRMF gather/scatter must force the sequential tier"
        );
        assert_three_tier_identical(
            &acc.engine,
            &tuples,
            &format!("lrmf {rows}×{cols} rank {rank}, {n}t"),
        );
    }

    /// The full pipeline across every execution mode: `train_with_spec`
    /// (now the lowered executor) stays bit-identical to the retained
    /// `train_with_spec_reference` rows pipeline, for random workload
    /// shapes, in Strider, CpuFed, and Tabla modes.
    #[test]
    fn modes_agree_with_reference_on_random_workloads(
        name in prop::sample::select(vec!["Remote Sensing LR", "Patient"]),
        scale in prop::sample::select(vec![0.001f64, 0.002]),
        epochs in 1u32..3,
        merge_coef in prop::sample::select(vec![4u32, 8]),
        seed in 0u64..1_000_000,
    ) {
        let mut w = workload(name).unwrap().scaled(scale);
        w.epochs = epochs;
        w.merge_coef = merge_coef;
        let table = generate(&w, 32 * 1024, seed).unwrap();
        let mut db = Dana::new(
            FpgaSpec::vu9p(),
            BufferPoolConfig {
                pool_bytes: 64 << 20,
                page_size: 32 * 1024,
            },
            DiskModel::ssd(),
        );
        db.create_table("t", table.heap).unwrap();
        db.prewarm("t").unwrap();
        let spec = w.spec();
        for mode in [ExecutionMode::Strider, ExecutionMode::CpuFed, ExecutionMode::Tabla] {
            let lowered = db.train_with_spec(&spec, "t", mode).unwrap();
            let reference = db.train_with_spec_reference(&spec, "t", mode).unwrap();
            assert_eq!(
                lowered.models, reference,
                "{name} @ {scale}, {mode:?}: lowered pipeline diverged from reference"
            );
        }
        db.drop_table("t").unwrap();
    }
}
