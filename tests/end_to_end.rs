//! End-to-end integration: DSL → deploy → SQL → Striders → engine → model,
//! across all four algorithm families at functional scale.

use dana::prelude::*;
use dana_ml::metrics;
use dana_workloads::{generate, workload};

fn small_db() -> Dana {
    Dana::new(
        FpgaSpec::vu9p(),
        BufferPoolConfig {
            pool_bytes: 256 << 20,
            page_size: 32 * 1024,
        },
        DiskModel::ssd(),
    )
}

fn tuples_of(heap: &HeapFile) -> dana_storage::TupleBatch {
    heap.scan_batch().expect("heap pages are well-formed")
}

#[test]
fn logistic_regression_full_pipeline() {
    let mut w = workload("Remote Sensing LR").unwrap().scaled(0.003);
    w.epochs = 30;
    w.merge_coef = 8;
    w.learning_rate = 0.5;
    let table = generate(&w, 32 * 1024, 11).unwrap();
    let data = tuples_of(&table.heap);

    let mut db = small_db();
    db.create_table("remote_sensing", table.heap).unwrap();
    db.deploy(&w.spec(), "remote_sensing").unwrap();
    let out = db
        .execute("SELECT * FROM dana.logisticR('remote_sensing');")
        .unwrap();

    let model = dana_ml::DenseModel(out.report.dense_model().to_vec());
    let acc = metrics::classification_accuracy(&model, &data, false).unwrap();
    assert!(acc > 0.9, "accuracy {acc}");
    assert!(
        out.report.num_threads > 1,
        "DSE should multi-thread this UDF"
    );
    assert!(out.report.timing.total_seconds > 0.0);
}

#[test]
fn svm_full_pipeline() {
    let mut w = workload("Remote Sensing SVM").unwrap().scaled(0.002);
    w.epochs = 25;
    w.merge_coef = 8;
    w.learning_rate = 0.2;
    let table = generate(&w, 32 * 1024, 12).unwrap();
    let data = tuples_of(&table.heap);

    let mut db = small_db();
    db.create_table("rs_svm", table.heap).unwrap();
    db.deploy(&w.spec(), "rs_svm").unwrap();
    let report = db.run_udf("svm", "rs_svm").unwrap();

    let model = dana_ml::DenseModel(report.dense_model().to_vec());
    let acc = metrics::classification_accuracy(&model, &data, true).unwrap();
    assert!(acc > 0.9, "accuracy {acc}");
}

#[test]
fn linear_regression_via_textual_dsl() {
    let mut w = workload("Patient").unwrap().scaled(0.01);
    w.epochs = 25;
    let table = generate(&w, 32 * 1024, 13).unwrap();
    let data = tuples_of(&table.heap);
    let truth = table.truth.clone().unwrap();

    let mut db = small_db();
    db.create_table("patient", table.heap).unwrap();
    let source = dana_dsl::zoo::linear_regression_source(w.features, 8, 25);
    let info = db.deploy_source(&source, "linearR", "patient").unwrap();
    assert!(info.micro_ops > 0);
    let report = db.run_udf("linearR", "patient").unwrap();

    let model = dana_ml::DenseModel(report.dense_model().to_vec());
    let loss = metrics::mse(&model, &data).unwrap();
    assert!(loss < 0.05, "mse {loss}");
    // The planted model should be recovered approximately.
    let got = report.dense_model();
    let close = got
        .iter()
        .zip(&truth)
        .filter(|(a, b)| (*a - *b).abs() < 0.15)
        .count();
    assert!(
        close * 10 >= truth.len() * 8,
        "{close}/{} weights recovered",
        truth.len()
    );
}

#[test]
fn lrmf_full_pipeline() {
    let mut w = workload("Netflix").unwrap();
    w.lrmf = Some((60, 45, 8));
    w.tuples = 5_000;
    w.epochs = 25;
    w.merge_coef = 4;
    w.learning_rate = 0.05;
    let table = generate(&w, 32 * 1024, 14).unwrap();
    let data = tuples_of(&table.heap);

    let mut db = small_db();
    db.create_table("ratings", table.heap).unwrap();
    db.deploy(&w.spec(), "ratings").unwrap();
    let report = db.run_udf("lrmf", "ratings").unwrap();

    assert_eq!(report.models.len(), 2);
    let l = report.model("L").unwrap();
    let r = report.model("R").unwrap();
    let model = dana_ml::LrmfModel {
        l: l.to_vec(),
        r: r.to_vec(),
        rows: 60,
        cols: 45,
        rank: 8,
    };
    let rmse = metrics::lrmf_rmse(&model, &data).unwrap();
    let before = metrics::lrmf_rmse(&dana_ml::LrmfModel::zeroed(60, 45, 8), &data).unwrap();
    assert!(rmse < before * 0.5, "rmse {before:.3} -> {rmse:.3}");
}

#[test]
fn convergence_condition_stops_training_early() {
    let src = r#"
        mo = model([8])
        in = input([8])
        out = output()
        lr = meta(0.05)
        cf = meta(0.05)
        mc = meta(8)
        s = sigma(mo * in, 1)
        er = s - out
        grad = er * in
        grad = merge(grad, mc, "+")
        up = lr * grad
        mo_up = mo - up
        setModel(mo_up)
        n = norm(grad, 1)
        conv = n < cf
        setConvergence(conv, 500)
    "#;
    let mut w = workload("Patient").unwrap().scaled(0.005);
    w.features = 8;
    let table = generate(&w, 32 * 1024, 15).unwrap();

    let mut db = small_db();
    db.create_table("t", table.heap).unwrap();
    db.deploy_source(src, "convlin", "t").unwrap();
    let report = db.run_udf("convlin", "t").unwrap();
    assert!(
        report.converged_early,
        "gradient should shrink below the threshold"
    );
    assert!(report.epochs_run < 500, "ran {} epochs", report.epochs_run);
}

#[test]
fn catalog_survives_multiple_udfs_and_tables() {
    let mut db = small_db();
    for (i, name) in ["alpha", "beta"].iter().enumerate() {
        let mut w = workload("Blog Feedback").unwrap().scaled(0.003);
        w.features = 16;
        w.epochs = 3;
        let table = generate(&w, 32 * 1024, 20 + i as u64).unwrap();
        db.create_table(name, table.heap).unwrap();
    }
    let mut w = workload("Blog Feedback").unwrap().scaled(0.003);
    w.features = 16;
    w.epochs = 3;
    let mut spec_a = w.spec();
    spec_a.name = "lin_a".into();
    let mut spec_b = w.spec();
    spec_b.name = "lin_b".into();
    db.deploy(&spec_a, "alpha").unwrap();
    db.deploy(&spec_b, "beta").unwrap();
    assert_eq!(db.catalog().accelerator_names(), vec!["lin_a", "lin_b"]);
    assert!(db.execute("SELECT * FROM dana.lin_a('alpha')").is_ok());
    assert!(db.execute("SELECT * FROM dana.lin_b('beta')").is_ok());
    // Cross-wiring a UDF to the other (schema-compatible) table also works.
    assert!(db.execute("SELECT * FROM dana.lin_a('beta')").is_ok());
}

#[test]
fn page_sizes_8_16_32k_all_work() {
    for page_size in [8 * 1024, 16 * 1024, 32 * 1024] {
        let mut w = workload("WLAN").unwrap().scaled(0.01);
        w.features = 20;
        w.epochs = 5;
        let table = generate(&w, page_size, 30).unwrap();
        let mut db = Dana::new(
            FpgaSpec::vu9p(),
            BufferPoolConfig {
                pool_bytes: 128 << 20,
                page_size,
            },
            DiskModel::ssd(),
        );
        db.create_table("t", table.heap).unwrap();
        db.deploy(&w.spec(), "t").unwrap();
        let report = db.run_udf("logisticR", "t").unwrap();
        assert_eq!(report.epochs_run, 5, "page size {page_size}");
    }
}
