//! Inference-tier differential suite — the acceptance gate for PREDICT.
//!
//! For every zoo model (linear regression, logistic regression, SVM,
//! LRMF) the accelerator scoring path — deploy-time scoring lowering,
//! streamed page extraction, SoA lockstep executor — must produce
//! predictions **bit-identical** to the `dana_ml::scorer` CPU reference,
//! across every execution mode (Strider / CpuFed / Tabla) and lockstep
//! lane count (1 / 4 / 16). A materialized prediction table must also
//! round-trip: created by PREDICT, scanned back, evaluated with
//! EVALUATE, dropped with full page eviction.

use dana::prelude::*;
use dana::MetricKind;
use dana_dsl::zoo::{self, Algorithm, DenseParams, LrmfParams};
use dana_ml::{scorer, DenseModel, LrmfModel};
use dana_storage::page::TupleDirection;
use dana_storage::{HeapFileBuilder, Schema};

const PAGE: usize = 8 * 1024;

fn system() -> Dana {
    Dana::new(
        FpgaSpec::vu9p(),
        BufferPoolConfig {
            pool_bytes: 64 << 20,
            page_size: PAGE,
        },
        DiskModel::ssd(),
    )
}

/// A deterministic dense training table: `d` features + label.
fn dense_heap(n: usize, d: usize, algo: Algorithm) -> HeapFile {
    let truth: Vec<f32> = (0..d).map(|i| 0.35 * i as f32 - 0.9).collect();
    let mut b = HeapFileBuilder::new(Schema::training(d), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let x: Vec<f32> = (0..d)
            .map(|i| (((k * 11 + i * 5) % 17) as f32 - 8.0) / 8.0)
            .collect();
        let s: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
        let y = match algo {
            Algorithm::Linear => s,
            Algorithm::Logistic => {
                if s > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Algorithm::Svm => {
                if s > 0.0 {
                    1.0
                } else {
                    -1.0
                }
            }
            Algorithm::Lrmf => unreachable!("dense heap"),
        };
        b.insert(&Tuple::training(&x, y)).unwrap();
    }
    b.finish()
}

/// A deterministic rating table within `rows × cols`.
fn rating_heap(n: usize, rows: usize, cols: usize) -> HeapFile {
    let mut b = HeapFileBuilder::new(Schema::rating(), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let i = (k * 7) % rows;
        let j = (k * 13) % cols;
        let r = 1.0 + ((i * 3 + j * 5) % 4) as f32;
        b.insert(&Tuple::rating(i as i32, j as i32, r)).unwrap();
    }
    b.finish()
}

const MODES: [ExecutionMode; 3] = [
    ExecutionMode::Strider,
    ExecutionMode::CpuFed,
    ExecutionMode::Tabla,
];
const LANES: [u16; 3] = [1, 4, 16];

/// Trains one dense zoo model in-database, then sweeps the accelerator
/// scoring path against the CPU reference.
fn dense_differential(algo: Algorithm, link: dana_ml::Link) {
    let d = 12;
    let mut db = system();
    db.create_table("t", dense_heap(900, d, algo)).unwrap();
    let spec = zoo::spec_for(
        algo,
        DenseParams {
            n_features: d,
            learning_rate: 0.1,
            merge_coef: 8,
            epochs: 6,
        },
    )
    .unwrap();
    let udf = spec.name.clone();
    db.deploy(&spec, "t").unwrap();
    let trained = db.run_udf(&udf, "t").unwrap();

    let batch = db
        .catalog()
        .table_heap("t")
        .unwrap()
        .1
        .scan_batch()
        .unwrap();
    let model = DenseModel(trained.dense_model().to_vec());
    let reference = scorer::score_dense(&model, &batch, link);
    assert_eq!(reference.len(), 900);

    for mode in MODES {
        for lanes in LANES {
            let got = db.score_with(&udf, "t", mode, Some(lanes)).unwrap();
            assert_eq!(
                got,
                reference,
                "{udf}: {} lanes in {} must be bit-identical",
                lanes,
                mode.name()
            );
        }
    }
}

#[test]
fn linear_regression_predictions_bit_identical() {
    dense_differential(Algorithm::Linear, dana_ml::Link::Identity);
}

#[test]
fn logistic_regression_predictions_bit_identical() {
    dense_differential(Algorithm::Logistic, dana_ml::Link::Sigmoid);
}

#[test]
fn svm_predictions_bit_identical() {
    dense_differential(Algorithm::Svm, dana_ml::Link::Identity);
}

#[test]
fn lrmf_predictions_bit_identical() {
    let (rows, cols, rank) = (24usize, 18usize, 8usize);
    let mut db = system();
    db.create_table("ratings", rating_heap(800, rows, cols))
        .unwrap();
    let spec = zoo::lrmf(LrmfParams {
        rows,
        cols,
        rank,
        learning_rate: 0.05,
        merge_coef: 4,
        epochs: 4,
    })
    .unwrap();
    db.deploy(&spec, "ratings").unwrap();
    let trained = db.run_udf("lrmf", "ratings").unwrap();

    // Rebuild the reference factorization from the trained factors.
    let l = trained.model("L").unwrap().to_vec();
    let r = trained.model("R").unwrap().to_vec();
    assert_eq!(l.len(), rows * rank);
    assert_eq!(r.len(), cols * rank);
    let model = LrmfModel {
        l,
        r,
        rows,
        cols,
        rank,
    };
    let batch = db
        .catalog()
        .table_heap("ratings")
        .unwrap()
        .1
        .scan_batch()
        .unwrap();
    let reference = scorer::score_lrmf(&model, &batch);

    for mode in MODES {
        for lanes in LANES {
            let got = db.score_with("lrmf", "ratings", mode, Some(lanes)).unwrap();
            assert_eq!(
                got,
                reference,
                "lrmf: {} lanes in {} must be bit-identical",
                lanes,
                mode.name()
            );
        }
    }
}

/// The acceptance round trip: PREDICT materializes a table, a scan reads
/// the predictions back bit-exactly, EVALUATE runs over the materialized
/// table, and DROP evicts every page.
#[test]
fn prediction_table_round_trips_through_the_catalog() {
    let d = 10;
    let mut db = system();
    db.create_table("t", dense_heap(1200, d, Algorithm::Linear))
        .unwrap();
    let spec = zoo::linear_regression(DenseParams {
        n_features: d,
        learning_rate: 0.2,
        merge_coef: 8,
        epochs: 20,
    })
    .unwrap();
    db.deploy(&spec, "t").unwrap();
    let trained = db.run_udf("linearR", "t").unwrap();

    // PREDICT → a real catalog table with the derived schema.
    let report = db.predict("linearR", "t", "t_scores").unwrap();
    assert_eq!(report.rows_scored, 1200);
    assert!(db.catalog().table_names().contains(&"t_scores"));

    // Scan back: predictions are stored as Float4 and recover the CPU
    // reference bit-exactly.
    let model = DenseModel(trained.dense_model().to_vec());
    let src = db
        .catalog()
        .table_heap("t")
        .unwrap()
        .1
        .scan_batch()
        .unwrap();
    let reference = scorer::score_dense(&model, &src, dana_ml::Link::Identity);
    let scanned: Vec<f32> = db
        .catalog()
        .table_heap("t_scores")
        .unwrap()
        .1
        .scan_batch()
        .unwrap()
        .rows()
        .map(|row| row[d + 1])
        .collect();
    assert_eq!(scanned, reference);

    // EVALUATE over the materialized table: the appended prediction
    // column is ignored, the label column still reads — the metric
    // equals the whole-batch reference on the source table.
    let eval = db
        .evaluate("linearR", "t_scores", Some(MetricKind::Mse))
        .unwrap();
    assert_eq!(
        eval.value,
        dana_ml::metrics::mse(&model, &src).unwrap(),
        "metric over the prediction table must equal the batch reference"
    );

    // DROP evicts every page: nothing of either heap stays resident.
    db.prewarm("t_scores").unwrap();
    let summary = db.drop_table("t_scores").unwrap();
    assert!(summary.pages_evicted > 0);
    db.drop_table("t").unwrap();
    assert_eq!(db.resident_pages(), 0, "full page eviction required");
}
