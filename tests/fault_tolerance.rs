//! Fault-tolerance acceptance suite for the serving tier: deterministic
//! accelerator fault injection ([`dana_engine::FaultPlan`]) rehearsed
//! against a live [`DanaServer`], asserting
//!
//! * a gang run that loses a member mid-training completes degraded but
//!   **bit-identical** to the no-fault run (quarantine + shard
//!   re-execution on a survivor);
//! * serial transient faults retry with bounded backoff, warm-started
//!   from the last epoch's model snapshot, and stay bit-identical;
//! * a timed-out query surfaces the typed deadline error and releases
//!   its lease and every buffer-pool frame;
//! * a panicking dispatch returns the typed `QueryPanicked` reply while
//!   the same worker keeps serving.

use std::sync::Arc;
use std::time::Duration;

use dana::prelude::*;
use dana_dsl::zoo::{linear_regression, DenseParams};
use dana_engine::FaultPlan;
use dana_server::{
    AdmissionConfig, DanaServer, Health, QueryRequest, SchedPolicy, ServerConfig, ServerError,
    SystemCoreConfig,
};
use dana_storage::page::TupleDirection;
use dana_storage::{BufferPoolConfig, HeapFile, HeapFileBuilder, Schema, Tuple};

const PAGE: usize = 8 * 1024;

fn linreg_heap(n: usize, d: usize) -> HeapFile {
    let truth: Vec<f32> = (0..d).map(|i| 0.3 * i as f32 - 0.5).collect();
    let mut b = HeapFileBuilder::new(Schema::training(d), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let x: Vec<f32> = (0..d)
            .map(|i| (((k * 7 + i * 3) % 11) as f32 - 5.0) / 5.0)
            .collect();
        let y: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
        b.insert(&Tuple::training(&x, y)).unwrap();
    }
    b.finish()
}

fn spec(d: usize) -> dana_dsl::AlgoSpec {
    linear_regression(DenseParams {
        n_features: d,
        learning_rate: 0.2,
        merge_coef: 8,
        epochs: 12,
    })
    .unwrap()
}

fn server(accelerators: usize, workers: usize) -> DanaServer {
    DanaServer::start(ServerConfig {
        accelerators,
        workers,
        admission: AdmissionConfig {
            max_queued: 256,
            policy: SchedPolicy::Fifo,
        },
        default_timeout_ms: None,
        core: SystemCoreConfig {
            fpga: FpgaSpec::vu9p(),
            pool: BufferPoolConfig {
                pool_bytes: 64 << 20,
                page_size: PAGE,
            },
            pool_shards: 4,
            disk: DiskModel::ssd(),
        },
    })
}

fn trained_server(accelerators: usize, workers: usize) -> DanaServer {
    let srv = server(accelerators, workers);
    srv.create_table("t", linreg_heap(600, 8)).unwrap();
    srv.prewarm("t").unwrap();
    srv.deploy(&spec(8), "t").unwrap();
    srv
}

/// A gang run that loses member 1 at epoch 3 completes via shard
/// re-execution on a survivor, bit-identical to the undisturbed run;
/// the faulted member's pool instance is reported to the health machine.
#[test]
fn gang_member_fault_degrades_bit_identically() {
    let srv = trained_server(4, 2);
    let session = srv.open_session("gang-fault");
    let sql = "SELECT * FROM dana.linearR('t') WITH (shards = 3);";

    let clean = srv
        .call(session, QueryRequest::Sql(sql.into()))
        .unwrap()
        .report()
        .clone();
    assert_eq!(clean.shards, 3);

    srv.install_fault_plan(Some(Arc::new(FaultPlan::shard_fault(1, 3))));
    let reply = srv.call(session, QueryRequest::Sql(sql.into())).unwrap();
    let degraded = reply.try_report().unwrap();
    srv.install_fault_plan(None);

    assert_eq!(degraded.models, clean.models, "merge must be bit-identical");
    assert_eq!(degraded.epochs_run, clean.epochs_run);
    assert_eq!(degraded.engine.cycles, clean.engine.cycles);

    // The faulted shard's instance was reported: health stepped off
    // Healthy and the counters advanced.
    let health = srv.pool_health();
    assert_eq!(health.faults_reported, 1);
    assert_eq!(
        health
            .states
            .iter()
            .filter(|h| **h != Health::Healthy)
            .count(),
        1,
        "exactly one instance reported: {:?}",
        health.states
    );
    let stats = srv.stats_snapshot(Some("faults"));
    assert_eq!(stats.get("faults", "gang_member_faults"), Some(1.0));
    assert_eq!(stats.get("faults", "faults_reported"), Some(1.0));
    assert!(stats.get("faults", "shard_reexecutions").unwrap_or(0.0) >= 1.0);
    assert_eq!(srv.core().held_frames(), 0);
}

/// Serial transient faults retry with backoff (warm-started from the
/// last epoch's snapshot) and the recovered run is bit-identical; with
/// `WITH (retries = 0)` the same fault is terminal and quarantines the
/// instance after a second strike.
#[test]
fn serial_transient_fault_retries_bit_identically() {
    let srv = trained_server(2, 1);
    let session = srv.open_session("retry");
    let sql = "SELECT * FROM dana.linearR('t');";

    let clean = srv
        .call(session, QueryRequest::Sql(sql.into()))
        .unwrap()
        .report()
        .clone();

    // Two injected faults at epoch 1; the default budget (3 retries)
    // absorbs both.
    srv.install_fault_plan(Some(Arc::new(FaultPlan::transient_at_epoch(1, 2))));
    let recovered = srv
        .call(session, QueryRequest::Sql(sql.into()))
        .unwrap()
        .report()
        .clone();
    assert_eq!(recovered.models, clean.models, "warm start must be exact");
    assert_eq!(recovered.epochs_run, clean.epochs_run);
    assert_eq!(recovered.engine.cycles, clean.engine.cycles);
    let stats = srv.stats_snapshot(Some("faults"));
    assert_eq!(stats.get("faults", "transient_faults"), Some(2.0));
    assert_eq!(stats.get("faults", "retries"), Some(2.0));

    // retries = 0 makes the next injected fault terminal and typed.
    srv.install_fault_plan(Some(Arc::new(FaultPlan::transient_at_epoch(1, 1))));
    let err = srv
        .call(
            session,
            QueryRequest::Sql("SELECT * FROM dana.linearR('t') WITH (retries = 0);".into()),
        )
        .unwrap_err();
    match &err {
        ServerError::Dana(e) => assert!(e.is_transient_fault(), "got {e}"),
        other => panic!("expected a transient-fault error, got {other}"),
    }
    srv.install_fault_plan(None);
    let health = srv.pool_health();
    assert!(
        health.states.contains(&Health::Suspect),
        "exhausted retries must report the instance: {:?}",
        health.states
    );
    assert_eq!(srv.core().held_frames(), 0);
}

/// A query whose deadline expires mid-flight surfaces the typed
/// deadline error, releases its lease and every buffer-pool frame, and
/// the server keeps serving.
#[test]
fn timed_out_query_releases_lease_and_frames() {
    let srv = trained_server(1, 1);
    let session = srv.open_session("deadline");

    // Stall every lease grant long enough that a 5 ms deadline expires
    // while the query holds the lease; the epoch-0 cooperative check
    // then fires deterministically.
    srv.install_fault_plan(Some(Arc::new(FaultPlan::lease_stall(
        Duration::from_millis(40),
    ))));
    let err = srv
        .call(
            session,
            QueryRequest::Sql("SELECT * FROM dana.linearR('t') WITH (timeout_ms = 5);".into()),
        )
        .unwrap_err();
    assert!(err.is_deadline_exceeded(), "got {err}");
    srv.install_fault_plan(None);

    // The lease and frames came back: gauges are clean and the very
    // next query (same single worker, same single instance) succeeds.
    assert_eq!(srv.core().held_frames(), 0, "frames must be released");
    let stats = srv.stats_snapshot(None);
    assert_eq!(stats.get("faults", "deadline_exceeded"), Some(1.0));
    let reply = srv
        .call(
            session,
            QueryRequest::Sql("SELECT * FROM dana.linearR('t');".into()),
        )
        .unwrap();
    assert_eq!(reply.accelerator, 0, "the instance is schedulable again");
    assert_eq!(srv.core().held_frames(), 0);
}

/// A deadline that passes while the query waits in the admission queue
/// sheds it at dequeue — typed reply, never leased.
#[test]
fn queued_past_deadline_query_is_shed() {
    let srv = trained_server(1, 1);
    let session = srv.open_session("shed");

    // Park the single worker behind a stalled lease, then enqueue a
    // query whose deadline expires while it waits.
    srv.install_fault_plan(Some(Arc::new(FaultPlan::lease_stall(
        Duration::from_millis(60),
    ))));
    let blocker = srv
        .submit(
            session,
            QueryRequest::Sql("SELECT * FROM dana.linearR('t');".into()),
        )
        .unwrap();
    let doomed = srv
        .submit(
            session,
            QueryRequest::Sql("SELECT * FROM dana.linearR('t') WITH (timeout_ms = 10);".into()),
        )
        .unwrap();
    let err = srv.wait(doomed).unwrap_err();
    assert!(err.is_deadline_exceeded(), "got {err}");
    srv.wait(blocker).unwrap();
    srv.install_fault_plan(None);
    assert_eq!(srv.queue_stats().shed, 1);
    let stats = srv.stats_snapshot(Some("admission"));
    assert_eq!(stats.get("admission", "shed"), Some(1.0));
}

/// A panicking dispatch is caught (`catch_unwind`): the reply is the
/// typed `QueryPanicked`, and the same worker — there is only one —
/// serves the next query.
#[test]
fn panicking_dispatch_is_isolated_and_worker_survives() {
    let srv = trained_server(1, 1);
    let session = srv.open_session("panic");
    let sql = "SELECT * FROM dana.linearR('t');";

    srv.install_fault_plan(Some(Arc::new(FaultPlan::panic_at_epoch(0))));
    let err = srv
        .call(session, QueryRequest::Sql(sql.into()))
        .unwrap_err();
    match &err {
        ServerError::QueryPanicked(msg) => {
            assert!(msg.contains("injected accelerator panic"), "got {msg}")
        }
        other => panic!("expected QueryPanicked, got {other}"),
    }
    srv.install_fault_plan(None);

    // The worker thread survived the panic and serves the next query.
    let reply = srv.call(session, QueryRequest::Sql(sql.into())).unwrap();
    assert!(reply.try_report().is_ok());
    let stats = srv.stats_snapshot(Some("faults"));
    assert_eq!(stats.get("faults", "panics_caught"), Some(1.0));
}

/// Quarantine lifecycle: two strikes quarantine an instance (withheld
/// from leasing), a probe reinstates it, and the `SHOW STATS('faults')`
/// rows track every transition.
#[test]
fn quarantine_and_probe_lifecycle() {
    let srv = trained_server(2, 1);
    let session = srv.open_session("quarantine");

    // Two terminal faults on the same (single-leased, least-loaded)
    // instance: healthy → suspect → quarantined.
    for _ in 0..2 {
        srv.install_fault_plan(Some(Arc::new(FaultPlan::transient_at_epoch(0, 1))));
        let err = srv
            .call(
                session,
                QueryRequest::Sql("SELECT * FROM dana.linearR('t') WITH (retries = 0);".into()),
            )
            .unwrap_err();
        assert!(matches!(&err, ServerError::Dana(e) if e.is_transient_fault()));
    }
    srv.install_fault_plan(None);
    let health = srv.pool_health();
    assert_eq!(health.quarantined_now(), 1, "states: {:?}", health.states);
    assert_eq!(health.quarantines, 1);

    // The survivor keeps serving; a probe reinstates the quarantined
    // instance.
    srv.call(
        session,
        QueryRequest::Sql("SELECT * FROM dana.linearR('t');".into()),
    )
    .unwrap();
    let quarantined = health
        .states
        .iter()
        .position(|h| *h == Health::Quarantined)
        .unwrap();
    assert!(srv.probe_accelerator(quarantined));
    let health = srv.pool_health();
    assert_eq!(health.quarantined_now(), 0);
    assert_eq!(health.reinstates, 1);
    let stats = srv.stats_snapshot(Some("faults"));
    assert_eq!(stats.get("faults", "reinstates"), Some(1.0));
    assert_eq!(stats.get("faults", "quarantines"), Some(1.0));
    assert_eq!(stats.get("faults", "quarantined_now"), Some(0.0));
}

/// `EXPLAIN ANALYZE` of a fault-recovered run carries the `fault_retry`
/// span; an undisturbed run's trace has no such span (trace structure is
/// a function of the statement alone).
#[test]
fn fault_retry_span_appears_only_when_faults_fired() {
    let srv = trained_server(2, 1);
    let session = srv.open_session("trace");
    let sql = "EXPLAIN ANALYZE SELECT * FROM dana.linearR('t');";

    let clean = srv.call(session, QueryRequest::Sql(sql.into())).unwrap();
    let clean_trace = &clean.try_analyze_report().unwrap().trace;
    assert!(
        !clean_trace.stages.iter().any(|s| s.name == "fault_retry"),
        "undisturbed trace must not grow a fault span"
    );

    srv.install_fault_plan(Some(Arc::new(FaultPlan::transient_at_epoch(2, 1))));
    let faulted = srv.call(session, QueryRequest::Sql(sql.into())).unwrap();
    srv.install_fault_plan(None);
    let trace = &faulted.try_analyze_report().unwrap().trace;
    let span = trace
        .stages
        .iter()
        .find(|s| s.name == "fault_retry")
        .expect("recovered run must carry the fault_retry span");
    assert_eq!(span.count, 1, "one retry");
}

/// The typed accessor mismatch: asking a stats reply for a training
/// report returns `UnexpectedReply` instead of panicking.
#[test]
fn try_accessors_return_typed_mismatch() {
    let srv = trained_server(1, 1);
    let session = srv.open_session("accessors");
    let reply = srv
        .call(session, QueryRequest::Sql("SHOW STATS;".into()))
        .unwrap();
    assert!(reply.try_stats().is_ok());
    let err = reply.try_report().unwrap_err();
    match &err {
        ServerError::UnexpectedReply { expected, got } => {
            assert_eq!(*expected, "training");
            assert_eq!(got, "stats");
        }
        other => panic!("expected UnexpectedReply, got {other}"),
    }
}
