//! Equivalence tests: the FPGA path must compute exactly what the software
//! references compute, the streaming batch data path must compute exactly
//! what the retained per-tuple reference path computes, and the static
//! estimators must match the cycle-accurate interpreters — the paper's
//! "<5% of physical measurements" claim, held to 0% here because both
//! sides share the static schedule.

use dana::prelude::*;
use dana_compiler::{compile, CompileInput};
use dana_engine::{ExecutionEngine, ModelStore};
use dana_fpga::FpgaSpec;
use dana_hdfg::translate;
use dana_ml::{train_reference, Algorithm, TrainConfig};
use dana_storage::TupleBatch;
use dana_strider::{AccessEngine, AccessEngineConfig};
use dana_workloads::{generate, workload, Workload};

fn compile_for(
    w: &Workload,
    table: &dana_workloads::GeneratedTable,
) -> dana_compiler::CompiledAccelerator {
    let spec = w.spec();
    let hdfg = translate(&spec);
    compile(&CompileInput {
        hdfg: &hdfg,
        fpga: FpgaSpec::vu9p(),
        layout: *table.heap.layout(),
        schema_columns: table.heap.schema().len(),
        expected_tuples: table.heap.tuple_count(),
    })
    .unwrap()
}

fn extract(table: &dana_workloads::GeneratedTable, striders: u32) -> TupleBatch {
    let engine = AccessEngine::for_table(
        *table.heap.layout(),
        table.heap.schema().clone(),
        AccessEngineConfig::new(
            striders,
            dana_fpga::Clock::FPGA_150MHZ,
            dana_fpga::AxiLink::with_bandwidth(2.5e9),
        ),
    );
    let (batch, _) = engine.extract_heap(&table.heap).unwrap();
    batch
}

/// Strider extraction must equal CPU deforming byte-for-byte, for every
/// algorithm's schema.
#[test]
fn strider_extraction_equals_cpu_scan() {
    for name in ["Remote Sensing LR", "Patient", "Netflix"] {
        let mut w = workload(name).unwrap().scaled(0.002);
        if w.algorithm == Algorithm::Lrmf {
            w.lrmf = Some((50, 40, 10));
            w.tuples = 2_000;
        }
        let table = generate(&w, 32 * 1024, 77).unwrap();
        let strider_batch = extract(&table, 4);
        let cpu_batch = table.heap.scan_batch().unwrap();
        assert_eq!(strider_batch, cpu_batch, "{name}");
    }
}

/// The streaming batch data path (pool → extract → engine, page by page)
/// must train the bit-identical model to the retained per-tuple reference
/// path (full-table `Vec<Vec<f32>>` materialization + the engine's rows
/// interpreter), in every execution mode. This is the differential test
/// holding the refactored hot path to the original data path's math.
#[test]
fn streaming_path_matches_reference_path_across_modes() {
    for (name, scale) in [("Remote Sensing LR", 0.004), ("Patient", 0.01)] {
        let mut w = workload(name).unwrap().scaled(scale);
        w.epochs = 3;
        w.merge_coef = 8;
        let table = generate(&w, 32 * 1024, 123).unwrap();
        let mut db = Dana::new(
            FpgaSpec::vu9p(),
            BufferPoolConfig {
                pool_bytes: 256 << 20,
                page_size: 32 * 1024,
            },
            DiskModel::ssd(),
        );
        db.create_table("t", table.heap).unwrap();
        db.prewarm("t").unwrap();
        let spec = w.spec();
        for mode in [
            ExecutionMode::Strider,
            ExecutionMode::CpuFed,
            ExecutionMode::Tabla,
        ] {
            let streaming = db.train_with_spec(&spec, "t", mode).unwrap();
            let reference = db.train_with_spec_reference(&spec, "t", mode).unwrap();
            assert_eq!(
                streaming.models, reference,
                "{name}: {mode:?} batch path diverged from per-tuple reference"
            );
        }
    }
}

/// Three-tier executor equivalence: the deploy-time-lowered SoA lockstep
/// executor (the hot path behind `run_training`) must produce bit-identical
/// models *and* cycle stats to both retained reference tiers — the
/// streaming flat-scratchpad interpreter and the original per-tuple rows
/// interpreter — for dense (lockstep) and LRMF (sequential gather/scatter)
/// programs alike.
#[test]
fn lowered_executor_matches_both_interpreter_tiers() {
    for name in ["Remote Sensing LR", "Patient", "Netflix"] {
        let mut w = workload(name).unwrap().scaled(0.002);
        if w.algorithm == Algorithm::Lrmf {
            w.lrmf = Some((50, 40, 10));
            w.tuples = 2_000;
        }
        w.epochs = 3;
        let table = generate(&w, 32 * 1024, 31).unwrap();
        let batch = extract(&table, 4);
        let tuples: Vec<Vec<f32>> = batch.rows().map(|r| r.to_vec()).collect();
        let acc = compile_for(&w, &table);
        // The compile-time engine *is* the deploy artifact — no rebuild.
        let engine = &acc.engine;
        assert_eq!(
            engine.lowered().is_lockstep(),
            w.algorithm != Algorithm::Lrmf,
            "{name}: model-memory traffic decides the execution tier"
        );

        let init = dana::exec::initial_models(engine.design());
        let mut lowered = ModelStore::new(engine.design(), init.clone()).unwrap();
        let lowered_stats = engine.run_training_batch(&batch, &mut lowered).unwrap();
        let mut interp = ModelStore::new(engine.design(), init.clone()).unwrap();
        let interp_stats = engine
            .run_training_interpreter_batch(&batch, &mut interp)
            .unwrap();
        let mut rows = ModelStore::new(engine.design(), init).unwrap();
        let rows_stats = engine.run_training_rows(&tuples, &mut rows).unwrap();

        assert_eq!(lowered, interp, "{name}: lowered vs streaming interpreter");
        assert_eq!(lowered, rows, "{name}: lowered vs rows reference");
        assert_eq!(lowered_stats, interp_stats, "{name}: stats (interpreter)");
        assert_eq!(lowered_stats, rows_stats, "{name}: stats (rows)");
    }
}

/// The serving tier's concurrent execution path (shared catalog + sharded
/// buffer pool + `SharedPageStreamSource`) must train the bit-identical
/// model to the single-threaded `Dana` facade, in every execution mode —
/// the differential test holding the concurrency refactor to the serial
/// path's math.
#[test]
fn concurrent_core_matches_single_threaded_across_modes() {
    use dana_server::{SystemCore, SystemCoreConfig};

    for (name, scale) in [("Remote Sensing LR", 0.004), ("Patient", 0.01)] {
        let mut w = workload(name).unwrap().scaled(scale);
        w.epochs = 3;
        w.merge_coef = 8;
        let pool = dana_storage::BufferPoolConfig {
            pool_bytes: 256 << 20,
            page_size: 32 * 1024,
        };

        let core = SystemCore::new(SystemCoreConfig {
            fpga: FpgaSpec::vu9p(),
            pool,
            pool_shards: 8,
            disk: DiskModel::ssd(),
        });
        core.create_table("t", generate(&w, 32 * 1024, 123).unwrap().heap)
            .unwrap();
        core.prewarm("t").unwrap();

        let mut db = Dana::new(FpgaSpec::vu9p(), pool, DiskModel::ssd());
        db.create_table("t", generate(&w, 32 * 1024, 123).unwrap().heap)
            .unwrap();
        db.prewarm("t").unwrap();

        let spec = w.spec();
        for mode in [
            ExecutionMode::Strider,
            ExecutionMode::CpuFed,
            ExecutionMode::Tabla,
        ] {
            let concurrent = core.train_with_spec(&spec, "t", mode).unwrap();
            let serial = db.train_with_spec(&spec, "t", mode).unwrap();
            assert_eq!(
                concurrent.models, serial.models,
                "{name}: {mode:?} concurrent path diverged from serial"
            );
            assert_eq!(concurrent.epochs_run, serial.epochs_run, "{name}: {mode:?}");
            assert_eq!(
                concurrent.engine.cycles, serial.engine.cycles,
                "{name}: {mode:?} cycle counts diverged"
            );
        }
        assert_eq!(core.held_frames(), 0, "{name}: leaked buffer-pool frames");
    }
}

/// The compiled engine must train the same model as the software
/// reference, for every dense algorithm, to f32 round-off.
#[test]
fn engine_model_matches_reference_dense() {
    for (name, algo) in [
        ("Patient", Algorithm::Linear),
        ("Remote Sensing LR", Algorithm::Logistic),
        ("Remote Sensing SVM", Algorithm::Svm),
    ] {
        let mut w = workload(name).unwrap().scaled(0.001);
        w.features = 24;
        w.epochs = 6;
        w.merge_coef = 8;
        w.learning_rate = 0.1;
        let table = generate(&w, 32 * 1024, 88).unwrap();
        let tuples = extract(&table, 2);

        // FPGA path.
        let acc = compile_for(&w, &table);
        let engine = ExecutionEngine::new(acc.design.clone()).unwrap();
        let mut store = ModelStore::new(&acc.design, vec![vec![0.0; 24]]).unwrap();
        engine.run_training_batch(&tuples, &mut store).unwrap();

        // Reference path: identical semantics (batch = threads? no — batch
        // follows the merge coefficient *and* thread count; the engine
        // batches by its thread count, so mirror that).
        let threads = acc.design.num_threads as usize;
        let step_scale = w.merge_coef as f32 / threads as f32;
        let cfg = TrainConfig {
            algorithm: algo,
            learning_rate: w.learning_rate as f32 / step_scale,
            batch: threads,
            epochs: w.epochs,
            ..Default::default()
        };
        let reference = train_reference(&tuples, &cfg);
        let got = store.model(0);
        let want = &reference.as_dense().0;
        for i in 0..24 {
            assert!(
                (got[i] - want[i]).abs() < 2e-3_f32.max(want[i].abs() * 0.02),
                "{name} w[{i}]: engine {} vs reference {}",
                got[i],
                want[i]
            );
        }
    }
}

/// The hardware generator's performance estimate must match the
/// cycle-accurate interpreter exactly when batches divide evenly.
#[test]
fn perf_estimator_matches_interpreter() {
    let mut w = workload("WLAN").unwrap().scaled(0.001);
    w.features = 32;
    w.epochs = 1;
    w.merge_coef = 8;
    let table = generate(&w, 32 * 1024, 99).unwrap();
    // Trim to a multiple of the thread count for exact agreement.
    let tuples_all = extract(&table, 2);
    let acc = compile_for(&w, &table);
    let threads = acc.design.num_threads as usize;
    let n = (tuples_all.len() / threads) * threads;
    let tuples = TupleBatch::from_rows(tuples_all.width(), tuples_all.rows().take(n));

    let engine = ExecutionEngine::new(acc.design.clone()).unwrap();
    let mut store = ModelStore::new(&acc.design, vec![vec![0.0; 32]]).unwrap();
    let stats = engine.run_training_batch(&tuples, &mut store).unwrap();
    let batches = (n / threads) as u64;
    let estimate = batches * engine.estimated_batch_cycles(threads);
    assert_eq!(stats.cycles, estimate, "estimator must be cycle-exact");
}

/// LRMF through the engine reduces RMSE like the reference does (exact
/// equality is not required: thread-batched scatters reorder row updates).
#[test]
fn engine_lrmf_converges_like_reference() {
    let mut w = workload("Netflix").unwrap();
    w.lrmf = Some((40, 30, 6));
    w.tuples = 3_000;
    w.epochs = 15;
    w.merge_coef = 4;
    w.learning_rate = 0.05;
    let table = generate(&w, 32 * 1024, 101).unwrap();
    let tuples = extract(&table, 2);

    let acc = compile_for(&w, &table);
    let engine = ExecutionEngine::new(acc.design.clone()).unwrap();
    let init: Vec<Vec<f32>> = acc
        .design
        .models
        .iter()
        .map(|m| dana_ml::default_lrmf_init(m.elements()))
        .collect();
    let mut store = ModelStore::new(&acc.design, init).unwrap();
    engine.run_training_batch(&tuples, &mut store).unwrap();
    let engine_model = dana_ml::LrmfModel {
        l: store.model(0).to_vec(),
        r: store.model(1).to_vec(),
        rows: 40,
        cols: 30,
        rank: 6,
    };

    let cfg = TrainConfig {
        algorithm: Algorithm::Lrmf,
        learning_rate: 0.05,
        batch: 1,
        epochs: 15,
        rank: 6,
        lrmf_dims: Some((40, 30)),
    };
    let reference = train_reference(&tuples, &cfg);

    let e_rmse = dana_ml::metrics::lrmf_rmse(&engine_model, &tuples).unwrap();
    let r_rmse = dana_ml::metrics::lrmf_rmse(reference.as_lrmf(), &tuples).unwrap();
    assert!(
        e_rmse < r_rmse * 1.5 + 0.05,
        "engine rmse {e_rmse} too far above reference {r_rmse}"
    );
}

/// The catalog round-trip (serialize → store → reload) must preserve the
/// engine design exactly.
#[test]
fn catalog_blob_preserves_design() {
    let w = {
        let mut w = workload("Blog Feedback").unwrap().scaled(0.002);
        w.features = 12;
        w
    };
    let table = generate(&w, 32 * 1024, 55).unwrap();
    let acc = compile_for(&w, &table);
    let blob = acc.design.to_blob();
    let restored = dana_engine::EngineDesign::from_blob(&blob).unwrap();
    assert_eq!(acc.design, restored);
    // And the Strider program survives 22-bit encoding.
    let words = dana_strider::isa::encode_program(&acc.strider_program).unwrap();
    let decoded = dana_strider::isa::decode_program(&words).unwrap();
    assert_eq!(acc.strider_program, decoded);
}
