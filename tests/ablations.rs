//! Ablation integration tests: the design choices DESIGN.md calls out,
//! verified at functional scale (their full-scale counterparts are the
//! Figure 11/12/14/16 bench targets).

use dana::prelude::*;
use dana::{analytic_dana, analytic_dana_threads, SystemParams};
use dana_workloads::{generate, workload};

fn db_with(table_name: &str, w: &dana_workloads::Workload, seed: u64) -> Dana {
    let table = generate(w, 32 * 1024, seed).unwrap();
    let mut db = Dana::new(
        FpgaSpec::vu9p(),
        BufferPoolConfig {
            pool_bytes: 256 << 20,
            page_size: 32 * 1024,
        },
        DiskModel::ssd(),
    );
    db.create_table(table_name, table.heap).unwrap();
    db.prewarm(table_name).unwrap();
    db
}

/// Fig. 11 at functional scale: Striders beat the CPU-fed ablation and
/// both produce the identical model.
#[test]
fn strider_ablation_functional() {
    let mut w = workload("Remote Sensing LR").unwrap().scaled(0.005);
    w.epochs = 4;
    w.merge_coef = 16;
    let mut db = db_with("rs", &w, 1);
    let spec = w.spec();
    let with = db
        .train_with_spec(&spec, "rs", ExecutionMode::Strider)
        .unwrap();
    let without = db
        .train_with_spec(&spec, "rs", ExecutionMode::CpuFed)
        .unwrap();
    assert!(with.timing.total_seconds < without.timing.total_seconds);
    assert_eq!(
        with.models, without.models,
        "feeding path must not change the math"
    );
}

/// Fig. 16 at functional scale: TABLA (single-thread, CPU-fed) is slower
/// than DAnA and slower than the Strider-fed multi-thread design.
#[test]
fn tabla_ablation_functional() {
    let mut w = workload("Patient").unwrap().scaled(0.01);
    w.epochs = 3;
    w.merge_coef = 16;
    let mut db = db_with("patient", &w, 2);
    let spec = w.spec();
    let dana = db
        .train_with_spec(&spec, "patient", ExecutionMode::Strider)
        .unwrap();
    let tabla = db
        .train_with_spec(&spec, "patient", ExecutionMode::Tabla)
        .unwrap();
    assert_eq!(tabla.num_threads, 1);
    assert!(dana.num_threads > 1);
    assert!(tabla.engine.cycles > dana.engine.cycles);
    assert!(tabla.timing.total_seconds > dana.timing.total_seconds);
}

/// Fig. 12's shape at functional scale: more threads reduce engine cycles
/// for a narrow dense model, with diminishing returns.
#[test]
fn thread_scaling_functional() {
    let mut w = workload("Remote Sensing SVM").unwrap().scaled(0.003);
    w.epochs = 2;
    let mut db = db_with("rssvm", &w, 3);
    let mut cycles = Vec::new();
    for threads in [1u32, 4, 16] {
        let mut wt = w.with_merge_coef(threads);
        wt.learning_rate = w.learning_rate; // zoo scales lr by merge coef
        let spec = wt.spec();
        let report = db
            .train_with_spec(&spec, "rssvm", ExecutionMode::Strider)
            .unwrap();
        cycles.push(report.engine.cycles);
    }
    assert!(cycles[1] < cycles[0], "{cycles:?}");
    assert!(cycles[2] < cycles[1], "{cycles:?}");
    // (Saturation appears at higher thread counts; the full-scale sweep is
    // the fig12_threads bench target.)
}

/// Fig. 14's shape analytically: halving bandwidth hurts a wide dense
/// workload monotonically.
#[test]
fn bandwidth_monotonicity() {
    let w = workload("S/N Linear").unwrap();
    let p = SystemParams::default();
    let mut last = f64::INFINITY;
    for scale in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let t = analytic_dana(
            &w,
            ExecutionMode::Strider,
            true,
            &p.with_bandwidth_scale(scale),
        )
        .unwrap()
        .total_seconds;
        assert!(t <= last * 1.0001, "runtime must not grow with bandwidth");
        last = t;
    }
}

/// Descending (stock-PostgreSQL-style) tuple placement works end to end —
/// the Strider ISA's layout flexibility claim.
#[test]
fn descending_layout_end_to_end() {
    use dana_storage::page::TupleDirection;
    use dana_storage::HeapFileBuilder;
    let schema = Schema::training(12);
    let mut b = HeapFileBuilder::new(schema, 32 * 1024, TupleDirection::Descending).unwrap();
    let truth: Vec<f32> = (0..12).map(|i| 0.1 * i as f32).collect();
    for k in 0..800 {
        let x: Vec<f32> = (0..12)
            .map(|i| (((k * 3 + i) % 9) as f32 - 4.0) / 4.0)
            .collect();
        let y: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
        b.insert(&Tuple::training(&x, y)).unwrap();
    }
    let mut db = Dana::new(
        FpgaSpec::vu9p(),
        BufferPoolConfig {
            pool_bytes: 64 << 20,
            page_size: 32 * 1024,
        },
        DiskModel::ssd(),
    );
    db.create_table("desc_table", b.finish()).unwrap();
    let src = dana_dsl::zoo::linear_regression_source(12, 8, 120);
    db.deploy_source(&src, "linearR", "desc_table").unwrap();
    let report = db.run_udf("linearR", "desc_table").unwrap();
    // The periodic feature generator makes the design matrix rank-deficient,
    // so weights are not identifiable — check the *predictions* instead.
    let model = dana_ml::DenseModel(report.dense_model().to_vec());
    let data = dana_storage::TupleBatch::from_rows(
        13,
        (0..800usize).map(|k| {
            let mut x: Vec<f32> = (0..12)
                .map(|i| (((k * 3 + i) % 9) as f32 - 4.0) / 4.0)
                .collect();
            let y: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
            x.push(y);
            x
        }),
    );
    let mse = dana_ml::metrics::mse(&model, &data).unwrap();
    assert!(mse < 1e-3, "mse {mse}");
}

/// A smaller FPGA (Arria-10 class) still compiles and runs every
/// algorithm, with fewer resources.
#[test]
fn arria10_compiles_all_algorithms() {
    let mut w = workload("WLAN").unwrap().scaled(0.005);
    w.features = 32;
    w.epochs = 2;
    let table = generate(&w, 32 * 1024, 9).unwrap();
    let mut db = Dana::new(
        FpgaSpec::arria10(),
        BufferPoolConfig {
            pool_bytes: 64 << 20,
            page_size: 32 * 1024,
        },
        DiskModel::ssd(),
    );
    db.create_table("t", table.heap).unwrap();
    let info = db.deploy(&w.spec(), "t").unwrap();
    assert!(db.run_udf("logisticR", "t").is_ok());
    // The VU9P hosts strictly more clusters than the Arria 10.
    let mut big = Dana::new(
        FpgaSpec::vu9p(),
        BufferPoolConfig {
            pool_bytes: 64 << 20,
            page_size: 32 * 1024,
        },
        DiskModel::ssd(),
    );
    let table2 = generate(&w, 32 * 1024, 9).unwrap();
    big.create_table("t", table2.heap).unwrap();
    let info_big = big.deploy(&w.spec(), "t").unwrap();
    assert!(
        info_big.num_threads as u32 * info_big.acs_per_thread as u32
            >= info.num_threads as u32 * info.acs_per_thread as u32
    );
}

/// The analytic and explicit-thread paths agree when the DSE would pick
/// the same point.
#[test]
fn analytic_thread_override_consistency() {
    let w = workload("Netflix").unwrap();
    let p = SystemParams::default();
    let auto = analytic_dana(&w, ExecutionMode::Strider, true, &p)
        .unwrap()
        .total_seconds;
    // Sweeping must bracket the auto-chosen design.
    let best_sweep = [1u32, 2, 4, 8, 16, 32, 64]
        .iter()
        .map(|t| {
            analytic_dana_threads(&w, *t, true, &p)
                .unwrap()
                .total_seconds
        })
        .fold(f64::INFINITY, f64::min);
    assert!(
        auto <= best_sweep * 1.05,
        "auto {auto} vs best sweep {best_sweep}"
    );
}
