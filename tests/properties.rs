//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

use dana_dsl::Dims;
use dana_storage::page::TupleDirection;
use dana_storage::{
    BufferPool, BufferPoolConfig, DiskModel, HeapFileBuilder, HeapId, PageId, Schema, Tuple,
};
use dana_strider::isa::{decode_program, encode_program, Instr, Opcode, Operand, Reg};
use dana_strider::{AccessEngine, AccessEngineConfig};

proptest! {
    /// Tuple form/deform is the identity for any finite values.
    #[test]
    fn tuple_round_trip(values in prop::collection::vec(-1.0e6f32..1.0e6, 1..60), label in -1.0e6f32..1.0e6) {
        let schema = Schema::training(values.len());
        let t = Tuple::training(&values, label);
        let bytes = t.form(&schema, 7, 0).unwrap();
        let back = Tuple::deform(&schema, &bytes).unwrap();
        prop_assert_eq!(back, t);
    }

    /// Heap construction preserves tuple order and count for any direction
    /// and supported page size.
    #[test]
    fn heap_preserves_order(
        n in 1usize..400,
        d in 1usize..24,
        dir_desc in any::<bool>(),
        page_kb in prop::sample::select(vec![8usize, 16, 32]),
    ) {
        let dir = if dir_desc { TupleDirection::Descending } else { TupleDirection::Ascending };
        let schema = Schema::training(d);
        let mut b = HeapFileBuilder::new(schema, page_kb * 1024, dir).unwrap();
        for k in 0..n {
            b.insert(&Tuple::training(&vec![k as f32; d], k as f32)).unwrap();
        }
        let heap = b.finish();
        prop_assert_eq!(heap.tuple_count(), n as u64);
        let labels: Vec<f32> = heap.scan().map(|t| t.as_training().1).collect();
        for (k, l) in labels.iter().enumerate() {
            prop_assert_eq!(*l, k as f32);
        }
    }

    /// Strider extraction equals CPU scan for arbitrary table shapes.
    #[test]
    fn strider_equals_scan(n in 1usize..200, d in 1usize..16, seed_vals in prop::collection::vec(-100.0f32..100.0, 16)) {
        let schema = Schema::training(d);
        let mut b = HeapFileBuilder::new(schema.clone(), 8 * 1024, TupleDirection::Ascending).unwrap();
        for k in 0..n {
            let x: Vec<f32> = (0..d).map(|i| seed_vals[(k + i) % seed_vals.len()] + k as f32).collect();
            b.insert(&Tuple::training(&x, -(k as f32))).unwrap();
        }
        let heap = b.finish();
        let engine = AccessEngine::for_table(
            *heap.layout(),
            schema,
            AccessEngineConfig::new(2, dana_fpga::Clock::FPGA_150MHZ, dana_fpga::AxiLink::with_bandwidth(2.5e9)),
        );
        let (tuples, stats) = engine.extract_heap(&heap).unwrap();
        prop_assert_eq!(tuples.len(), n);
        prop_assert_eq!(stats.tuples, n as u64);
        for (ext, cpu) in tuples.rows().zip(heap.scan()) {
            let vals: Vec<f32> = cpu.values.iter().map(|v| v.as_f32()).collect();
            prop_assert_eq!(ext, &vals[..]);
        }
    }

    /// Every well-formed Strider instruction survives the 22-bit encoding.
    #[test]
    fn strider_isa_round_trip(
        op in 0u32..11,
        a_reg in any::<bool>(), a in 0u8..32,
        b_reg in any::<bool>(), b in 0u8..32,
        c_reg in any::<bool>(), c in 0u8..32,
    ) {
        let mk = |is_reg: bool, v: u8| if is_reg { Operand::Reg(Reg(v)) } else { Operand::Imm(v % 32) };
        let instr = Instr::new(Opcode::from_u32(op).unwrap(), mk(a_reg, a), mk(b_reg, b), mk(c_reg, c));
        let words = encode_program(&[instr]).unwrap();
        prop_assert!(words[0] < (1 << 22));
        let back = decode_program(&words).unwrap();
        prop_assert_eq!(back[0], instr);
    }

    /// Dims broadcasting is commutative in shape (a⊗b and b⊗a agree for
    /// symmetric cases) and reduction removes exactly one axis.
    #[test]
    fn dims_algebra(a in prop::collection::vec(1usize..12, 0..3), axis in 1usize..4) {
        let d = Dims(a.clone());
        // broadcast with self: identity.
        prop_assert_eq!(d.broadcast(&d, "*").unwrap(), d.clone());
        // broadcast with scalar: identity.
        prop_assert_eq!(d.broadcast(&Dims::scalar(), "*").unwrap(), d.clone());
        prop_assert_eq!(Dims::scalar().broadcast(&d, "*").unwrap(), d.clone());
        // reduce: rank drops by one when the axis is valid.
        if axis <= d.rank() {
            let r = d.reduce(axis).unwrap();
            prop_assert_eq!(r.rank(), d.rank().saturating_sub(1));
            let removed = d.0[d.rank() - axis];
            prop_assert_eq!(r.elements() * removed, d.elements());
        }
    }

    /// The buffer pool never exceeds its frame budget, never loses a
    /// pinned page, and hits+misses always equals total fetches.
    #[test]
    fn bufferpool_invariants(ops in prop::collection::vec(0u32..12, 1..150), frames in 2usize..8) {
        let schema = Schema::training(4);
        let mut b = HeapFileBuilder::new(schema, 8 * 1024, TupleDirection::Ascending).unwrap();
        for k in 0..2400 {
            b.insert(&Tuple::training(&[k as f32; 4], 0.0)).unwrap();
        }
        let heap = b.finish();
        prop_assume!(heap.page_count() >= 12);
        let mut pool = BufferPool::new(BufferPoolConfig {
            pool_bytes: (frames * 8 * 1024) as u64,
            page_size: 8 * 1024,
        });
        let disk = DiskModel::instant();
        let mut fetches = 0u64;
        for page_no in ops {
            if let Ok((frame, _)) = pool.fetch(PageId::new(HeapId(0), page_no), &heap, &disk) {
                fetches += 1;
                prop_assert!(pool.frame_bytes(frame).len() == 8 * 1024);
                pool.unpin(frame);
            }
            prop_assert!(pool.resident_pages() <= frames);
        }
        let stats = pool.stats();
        prop_assert_eq!(stats.hits + stats.misses, fetches);
    }

    /// Page checksums detect any single-byte corruption of the data area.
    #[test]
    fn checksum_detects_corruption(offset in 0usize..1000, flip in 1u8..255) {
        let schema = Schema::training(8);
        let mut b = HeapFileBuilder::new(schema, 8 * 1024, TupleDirection::Ascending).unwrap();
        for k in 0..100 {
            b.insert(&Tuple::training(&[k as f32; 8], 0.0)).unwrap();
        }
        let heap = b.finish();
        let mut bytes = heap.page_bytes(0).unwrap().to_vec();
        let pos = dana_storage::PAGE_HEADER_BYTES + (offset % (bytes.len() - dana_storage::PAGE_HEADER_BYTES));
        bytes[pos] ^= flip;
        let page = dana_storage::HeapPage::from_bytes(bytes, *heap.layout()).unwrap();
        prop_assert!(!page.verify_checksum());
    }
}

// ALU ops agree with plain f32 arithmetic (non-property spot checks for
// the full op set are in the engine crate; here: random operands).
proptest! {
    #[test]
    fn alu_matches_f32(a in -1.0e3f32..1.0e3, b in -1.0e3f32..1.0e3) {
        use dana_engine::AluOp;
        prop_assert_eq!(AluOp::Add.apply(a, b), a + b);
        prop_assert_eq!(AluOp::Sub.apply(a, b), a - b);
        prop_assert_eq!(AluOp::Mul.apply(a, b), a * b);
        prop_assert_eq!(AluOp::Max.apply(a, b), a.max(b));
        prop_assert_eq!(AluOp::Gt.apply(a, b), if a > b { 1.0 } else { 0.0 });
        prop_assert_eq!(AluOp::Mov.apply(a, b), a);
    }
}
