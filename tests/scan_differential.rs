//! Scan-tier differential suite — the acceptance gate for pushdown.
//!
//! The contract of `WHERE`/`COLUMNS` pushdown is *virtual
//! materialization*: a filtered/projected EXECUTE, PREDICT, or EVALUATE
//! must behave **bit-identically** to running the same statement over a
//! manually pre-materialized filtered table — models, materialized
//! prediction pages, and metric values — across all four zoo analytics,
//! on the serial `Dana` facade and the concurrent `SystemCore`, for
//! gangs of 1, 2, and 4 shards. A drop racing a filtered scan must
//! leave no buffer-pool frame held and no compressed sidecar resident.

use dana::prelude::*;
use dana::{parse_statement, SpanRecorder, StatementOutcome};
use dana_dsl::zoo::{self, Algorithm, DenseParams, LrmfParams};
use dana_server::{SystemCore, SystemCoreConfig};
use dana_storage::page::TupleDirection;
use dana_storage::{HeapFileBuilder, Schema};

const PAGE: usize = 8 * 1024;

fn fresh_dana() -> Dana {
    Dana::new(
        FpgaSpec::vu9p(),
        BufferPoolConfig {
            pool_bytes: 64 << 20,
            page_size: PAGE,
        },
        DiskModel::ssd(),
    )
}

fn fresh_core() -> SystemCore {
    SystemCore::new(SystemCoreConfig {
        fpga: FpgaSpec::vu9p(),
        pool: BufferPoolConfig {
            pool_bytes: 64 << 20,
            page_size: PAGE,
        },
        pool_shards: 4,
        disk: DiskModel::ssd(),
    })
}

/// Deterministic dense rows: `d` features + label for `algo`.
fn dense_rows(n: usize, d: usize, algo: Algorithm) -> Vec<(Vec<f32>, f32)> {
    let truth: Vec<f32> = (0..d).map(|i| 0.3 * i as f32 - 0.8).collect();
    (0..n)
        .map(|k| {
            let x: Vec<f32> = (0..d)
                .map(|i| (((k * 11 + i * 5) % 17) as f32 - 8.0) / 8.0)
                .collect();
            let s: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
            let y = match algo {
                Algorithm::Linear => s,
                Algorithm::Logistic => (s > 0.0) as u8 as f32,
                Algorithm::Svm => {
                    if s > 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                }
                Algorithm::Lrmf => unreachable!("dense rows"),
            };
            (x, y)
        })
        .collect()
}

fn dense_heap_of(rows: &[(Vec<f32>, f32)], d: usize) -> HeapFile {
    let mut b = HeapFileBuilder::new(Schema::training(d), PAGE, TupleDirection::Ascending).unwrap();
    for (x, y) in rows {
        b.insert(&Tuple::training(x, *y)).unwrap();
    }
    b.finish()
}

/// Deterministic ratings clustered by user row.
fn rating_rows(n: usize, rows: usize, cols: usize) -> Vec<(i32, i32, f32)> {
    (0..n)
        .map(|k| {
            let (i, j) = (k * rows / n, (k * 13) % cols);
            let r = 1.0 + ((i * 3 + j * 5) % 4) as f32;
            (i as i32, j as i32, r)
        })
        .collect()
}

fn rating_heap_of(rows: &[(i32, i32, f32)]) -> HeapFile {
    let mut b = HeapFileBuilder::new(Schema::rating(), PAGE, TupleDirection::Ascending).unwrap();
    for &(i, j, r) in rows {
        b.insert(&Tuple::rating(i, j, r)).unwrap();
    }
    b.finish()
}

fn spec_for(algo: Algorithm, epochs: u32) -> AlgoSpec {
    match algo {
        Algorithm::Lrmf => zoo::lrmf(LrmfParams {
            rows: 24,
            cols: 18,
            rank: 6,
            learning_rate: 0.05,
            merge_coef: 4,
            epochs,
        })
        .unwrap(),
        _ => zoo::spec_for(
            algo,
            DenseParams {
                n_features: 10,
                learning_rate: 0.1,
                merge_coef: 8,
                epochs,
            },
        )
        .unwrap(),
    }
}

/// (full heap, pre-materialized filtered heap, WHERE clause) per algo.
/// The predicate is evaluated here exactly as the scan tier will: a
/// strict comparison on the decoded column value.
fn tables_for(algo: Algorithm) -> (HeapFile, HeapFile, &'static str) {
    match algo {
        Algorithm::Lrmf => {
            let rows = rating_rows(900, 24, 18);
            let kept: Vec<_> = rows.iter().copied().filter(|&(i, _, _)| i < 12).collect();
            (rating_heap_of(&rows), rating_heap_of(&kept), "WHERE i < 12")
        }
        _ => {
            let rows = dense_rows(1400, 10, algo);
            let kept: Vec<_> = rows.iter().filter(|(x, _)| x[0] < 0.0).cloned().collect();
            (
                dense_heap_of(&rows, 10),
                dense_heap_of(&kept, 10),
                "WHERE x0 < 0",
            )
        }
    }
}

const ZOO: [Algorithm; 4] = [
    Algorithm::Linear,
    Algorithm::Logistic,
    Algorithm::Svm,
    Algorithm::Lrmf,
];

fn train_report(outcome: StatementOutcome) -> DanaReport {
    match outcome {
        StatementOutcome::Train(q) => q.report,
        other => panic!("expected a train outcome, got {other:?}"),
    }
}

fn eval_report(outcome: StatementOutcome) -> dana::EvalReport {
    match outcome {
        StatementOutcome::Evaluate(e) => e,
        other => panic!("expected an evaluate outcome, got {other:?}"),
    }
}

fn pages_of(heap: &HeapFile) -> Vec<Vec<u8>> {
    (0..heap.page_count())
        .map(|p| heap.page_bytes(p).unwrap().to_vec())
        .collect()
}

/// Serial facade: filtered EXECUTE / PREDICT / EVALUATE against the full
/// table must be bit-identical to the plain statement against the
/// pre-materialized filtered table, for every zoo model × shard count.
#[test]
fn filtered_statements_match_prematerialized_table_serial_facade() {
    for algo in ZOO {
        let spec = spec_for(algo, 3);
        let udf = spec.name.clone();
        let (full, filtered, wher) = tables_for(algo);
        let mut db = fresh_dana();
        db.create_table("t", full).unwrap();
        db.create_table("tf", filtered).unwrap();
        db.deploy(&spec, "tf").unwrap();

        for k in [1u16, 2, 4] {
            let with = format!("WITH (shards = {k}, backend = fpga)");
            // EXECUTE: models bit-identical.
            let got = train_report(
                db.execute_statement(&format!("SELECT * FROM dana.{udf}('t') {wher} {with};"))
                    .unwrap(),
            );
            let want = train_report(
                db.execute_statement(&format!("SELECT * FROM dana.{udf}('tf') {with};"))
                    .unwrap(),
            );
            assert_eq!(got.models, want.models, "{algo:?} k={k}: trained models");
            assert_eq!(got.engine, want.engine, "{algo:?} k={k}: engine counters");

            // PREDICT: materialized pages byte-identical. (The reference
            // train above bound the model both runs score with.)
            db.execute_statement(&format!(
                "PREDICT dana.{udf}('t') INTO 'pf_{k}' {wher} {with};"
            ))
            .unwrap();
            db.execute_statement(&format!("PREDICT dana.{udf}('tf') INTO 'pr_{k}' {with};"))
                .unwrap();
            let got_pages = pages_of(db.catalog().table_heap(&format!("pf_{k}")).unwrap().1);
            let want_pages = pages_of(db.catalog().table_heap(&format!("pr_{k}")).unwrap().1);
            assert_eq!(got_pages, want_pages, "{algo:?} k={k}: prediction pages");

            // EVALUATE: metric value and row count bit-identical.
            let got = eval_report(
                db.execute_statement(&format!("EVALUATE dana.{udf}('t') {wher} {with};"))
                    .unwrap(),
            );
            let want = eval_report(
                db.execute_statement(&format!("EVALUATE dana.{udf}('tf') {with};"))
                    .unwrap(),
            );
            assert_eq!(got.value, want.value, "{algo:?} k={k}: metric value");
            assert_eq!(got.rows_scored, want.rows_scored, "{algo:?} k={k}");
        }
    }
}

/// Concurrent facade: the same contract through `SystemCore`'s parsed
/// dispatcher (the path every server worker takes).
#[test]
fn filtered_statements_match_prematerialized_table_concurrent_facade() {
    let rec = SpanRecorder::disabled();
    for algo in ZOO {
        let spec = spec_for(algo, 3);
        let udf = spec.name.clone();
        let (full, filtered, wher) = tables_for(algo);
        let core = fresh_core();
        core.create_table("t", full).unwrap();
        core.create_table("tf", filtered).unwrap();
        core.deploy(&spec, "tf").unwrap();

        let run = |sql: &str, shards: u16| {
            core.execute_parsed(&parse_statement(sql).unwrap(), shards, &rec)
                .unwrap()
        };
        for k in [1u16, 2, 4] {
            let got = train_report(run(
                &format!("SELECT * FROM dana.{udf}('t') {wher} WITH (backend = fpga);"),
                k,
            ));
            let want = train_report(run(
                &format!("SELECT * FROM dana.{udf}('tf') WITH (backend = fpga);"),
                k,
            ));
            assert_eq!(got.models, want.models, "{algo:?} k={k}: trained models");
            assert_eq!(got.engine, want.engine, "{algo:?} k={k}: engine counters");

            run(
                &format!("PREDICT dana.{udf}('t') INTO 'pf_{k}' {wher} WITH (backend = fpga);"),
                k,
            );
            run(
                &format!("PREDICT dana.{udf}('tf') INTO 'pr_{k}' WITH (backend = fpga);"),
                k,
            );
            let got_pages = pages_of(&core.table_snapshot(&format!("pf_{k}")).unwrap());
            let want_pages = pages_of(&core.table_snapshot(&format!("pr_{k}")).unwrap());
            assert_eq!(got_pages, want_pages, "{algo:?} k={k}: prediction pages");

            let got = eval_report(run(
                &format!("EVALUATE dana.{udf}('t') {wher} WITH (backend = fpga);"),
                k,
            ));
            let want = eval_report(run(
                &format!("EVALUATE dana.{udf}('tf') WITH (backend = fpga);"),
                k,
            ));
            assert_eq!(got.value, want.value, "{algo:?} k={k}: metric value");
            assert_eq!(got.rows_scored, want.rows_scored, "{algo:?} k={k}");
        }
        assert_eq!(core.held_frames(), 0, "{algo:?}: leaked frames");
    }
}

/// `COLUMNS (…)` projection: training a narrower UDF over a wide table
/// with a projection (composed with a predicate) is bit-identical to
/// the pre-materialized projected+filtered table — including PREDICT's
/// materialized output schema and pages.
#[test]
fn projection_matches_prematerialized_table() {
    let d_wide = 12;
    let d = 8;
    let rows = dense_rows(1400, d_wide, Algorithm::Linear);
    let kept: Vec<(Vec<f32>, f32)> = rows
        .iter()
        .filter(|(x, _)| x[0] < 0.0)
        .map(|(x, y)| (x[..d].to_vec(), *y))
        .collect();
    let spec = zoo::linear_regression(DenseParams {
        n_features: d,
        learning_rate: 0.1,
        merge_coef: 8,
        epochs: 3,
    })
    .unwrap();
    let cols = "COLUMNS (x0, x1, x2, x3, x4, x5, x6, x7, y)";

    let mut db = fresh_dana();
    db.create_table("wide", dense_heap_of(&rows, d_wide))
        .unwrap();
    db.create_table("tp", dense_heap_of(&kept, d)).unwrap();
    // Deploy against the projected-width table: the engine's design is
    // sized for what the scan emits, not what is stored.
    db.deploy(&spec, "tp").unwrap();

    for k in [1u16, 2, 4] {
        let with = format!("WITH (shards = {k}, backend = fpga)");
        let got = train_report(
            db.execute_statement(&format!(
                "SELECT * FROM dana.linearR('wide') WHERE x0 < 0 {cols} {with};"
            ))
            .unwrap(),
        );
        let want = train_report(
            db.execute_statement(&format!("SELECT * FROM dana.linearR('tp') {with};"))
                .unwrap(),
        );
        assert_eq!(got.models, want.models, "k={k}: projected training");

        db.execute_statement(&format!(
            "PREDICT dana.linearR('wide') INTO 'pf_{k}' WHERE x0 < 0 {cols} {with};"
        ))
        .unwrap();
        db.execute_statement(&format!("PREDICT dana.linearR('tp') INTO 'pr_{k}' {with};"))
            .unwrap();
        let (_, got_heap) = db.catalog().table_heap(&format!("pf_{k}")).unwrap();
        let (_, want_heap) = db.catalog().table_heap(&format!("pr_{k}")).unwrap();
        assert_eq!(
            got_heap.schema().columns().len(),
            d + 2,
            "projected prediction schema: {d} features + y + prediction"
        );
        assert_eq!(
            pages_of(got_heap),
            pages_of(want_heap),
            "k={k}: projected prediction pages"
        );
    }
}

/// DROP racing filtered scans: the compressed sidecar and its shadow
/// frames go with the entry, the scans finish (or fail typed) on their
/// snapshots, and no buffer-pool frame stays held.
#[test]
fn drop_racing_filtered_scan_releases_every_frame() {
    let spec = spec_for(Algorithm::Linear, 2);
    let core = fresh_core();
    let rows = dense_rows(1400, 10, Algorithm::Linear);
    core.create_table("seed", dense_heap_of(&rows, 10)).unwrap();
    core.deploy(&spec, "seed").unwrap();
    core.run_udf("linearR", "seed").unwrap();
    let rec = SpanRecorder::disabled();

    for round in 0..6 {
        let name = format!("t{round}");
        core.create_table(&name, dense_heap_of(&rows, 10)).unwrap();
        let stmt = parse_statement(&format!(
            "EVALUATE dana.linearR('{name}') WHERE x0 < 0 WITH (backend = fpga);"
        ))
        .unwrap();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    // The scan runs on its catalog snapshot; a drop that
                    // lands first surfaces as a typed catalog error.
                    let _ = core.execute_parsed(&stmt, 1 + round % 2, &rec);
                });
            }
            s.spawn(|| {
                let _ = core.drop_table(&name);
            });
        });
        // Whoever lost the race: the table must be droppable exactly once
        // and nothing of it (raw or compressed shadow) stays resident.
        let _ = core.drop_table(&name);
        assert_eq!(core.held_frames(), 0, "round {round}: held frames");
    }
    assert_eq!(core.held_frames(), 0);
}
