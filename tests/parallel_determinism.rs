//! Intra-query parallelism determinism suite.
//!
//! The gang executor's contract, held across the four zoo analytics:
//!
//! * the epoch-boundary merge is a pure function of (partials, shard
//!   indices) — **every completion-order permutation** of partial-model
//!   arrival yields bit-identical merged models;
//! * `shards = 1` training is **bit-identical to the serial path** —
//!   models, engine stats, and simulated timing — for all four zoo
//!   models across Strider / CpuFed / Tabla, on both the serial `Dana`
//!   facade and the concurrent `SystemCore`;
//! * parallel PREDICT materializes **bit-identical prediction tables to
//!   serial PREDICT for every shard count** (1, 2, 4) — shard outputs
//!   concatenate in page order and per-tuple scoring math is
//!   shard-invariant;
//! * multi-shard training is reproducible run-to-run and still learns.

use dana::prelude::*;
use dana::ExecutionMode;
use dana_dsl::zoo::{self, Algorithm, DenseParams, LrmfParams};
use dana_parallel::{MergeBuffer, MergeSpec, ShardOwnership};
use dana_storage::page::TupleDirection;
use dana_storage::{BufferPoolConfig, HeapFileBuilder, Schema};

const PAGE: usize = 8 * 1024;

fn dense_heap(n: usize, d: usize, algo: Algorithm) -> HeapFile {
    let truth: Vec<f32> = (0..d).map(|i| 0.3 * i as f32 - 0.8).collect();
    let mut b = HeapFileBuilder::new(Schema::training(d), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let x: Vec<f32> = (0..d)
            .map(|i| (((k * 11 + i * 5) % 17) as f32 - 8.0) / 8.0)
            .collect();
        let s: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
        let y = match algo {
            Algorithm::Linear => s,
            Algorithm::Logistic => (s > 0.0) as u8 as f32,
            Algorithm::Svm => {
                if s > 0.0 {
                    1.0
                } else {
                    -1.0
                }
            }
            Algorithm::Lrmf => unreachable!(),
        };
        b.insert(&Tuple::training(&x, y)).unwrap();
    }
    b.finish()
}

/// Ratings clustered by user row (`i` ascends with insertion order, the
/// natural layout of a user-sorted ratings table): page-range shards
/// then own nearly disjoint `L` rows, the regime factor-row ownership
/// partitioning is designed for.
fn rating_heap(n: usize, rows: usize, cols: usize) -> HeapFile {
    let mut b = HeapFileBuilder::new(Schema::rating(), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let (i, j) = (k * rows / n, (k * 13) % cols);
        let r = 1.0 + ((i * 3 + j * 5) % 4) as f32;
        b.insert(&Tuple::rating(i as i32, j as i32, r)).unwrap();
    }
    b.finish()
}

fn spec_for(algo: Algorithm, epochs: u32) -> AlgoSpec {
    match algo {
        Algorithm::Lrmf => zoo::lrmf(LrmfParams {
            rows: 24,
            cols: 18,
            rank: 6,
            learning_rate: 0.05,
            merge_coef: 4,
            epochs,
        })
        .unwrap(),
        _ => zoo::spec_for(
            algo,
            DenseParams {
                n_features: 10,
                learning_rate: 0.1,
                merge_coef: 8,
                epochs,
            },
        )
        .unwrap(),
    }
}

fn heap_for(algo: Algorithm, n: usize) -> HeapFile {
    match algo {
        Algorithm::Lrmf => rating_heap(n, 24, 18),
        _ => dense_heap(n, 10, algo),
    }
}

fn fresh_dana() -> Dana {
    Dana::new(
        FpgaSpec::vu9p(),
        BufferPoolConfig {
            pool_bytes: 64 << 20,
            page_size: PAGE,
        },
        DiskModel::ssd(),
    )
}

const ZOO: [Algorithm; 4] = [
    Algorithm::Linear,
    Algorithm::Logistic,
    Algorithm::Svm,
    Algorithm::Lrmf,
];

const MODES: [ExecutionMode; 3] = [
    ExecutionMode::Strider,
    ExecutionMode::CpuFed,
    ExecutionMode::Tabla,
];

/// Compiles a zoo spec against its table and returns the engine design
/// (for merge-spec derivation straight off a *real* deployed design).
fn compiled_design(algo: Algorithm) -> dana_engine::EngineDesign {
    let spec = spec_for(algo, 1);
    let heap = heap_for(algo, 300);
    let hdfg = dana_hdfg::translate(&spec);
    let acc = dana_compiler::compile(&dana_compiler::CompileInput {
        hdfg: &hdfg,
        fpga: FpgaSpec::vu9p(),
        layout: *heap.layout(),
        schema_columns: heap.schema().len(),
        expected_tuples: heap.tuple_count(),
    })
    .unwrap();
    acc.design.clone()
}

/// All permutations of `0..n` (n! — used with n = 4), via Heap's
/// algorithm.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn go(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            go(items, k - 1, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    go(&mut items, n, &mut out);
    out
}

#[test]
fn merge_is_bit_identical_for_every_completion_order_permutation() {
    // Dense (linear regression) design: weighted-average merge.
    let design = compiled_design(Algorithm::Linear);
    let spec = MergeSpec::derive(&design).unwrap();
    let k = 4;
    let partials: Vec<Vec<Vec<f32>>> = (0..k)
        .map(|s| {
            design
                .models
                .iter()
                .map(|m| {
                    (0..m.elements())
                        .map(|j| (s as f32 + 1.0) * 0.125 + j as f32 * 0.01)
                        .collect()
                })
                .collect()
        })
        .collect();
    let weights = [130u64, 70, 101, 99];
    let base: Vec<Vec<f32>> = design
        .models
        .iter()
        .map(|m| vec![0.0; m.elements()])
        .collect();
    let perms = permutations(k);
    assert_eq!(perms.len(), 24);
    let mut reference: Option<Vec<Vec<f32>>> = None;
    for perm in &perms {
        let mut buf = MergeBuffer::new(&spec, k, base.clone());
        for &s in perm {
            buf.submit(s, partials[s].clone(), weights[s]);
        }
        let (merged, _) = buf.finish(&[]).unwrap();
        match &reference {
            None => reference = Some(merged),
            Some(r) => assert_eq!(&merged, r, "arrival order {perm:?} changed the dense merge"),
        }
    }

    // LRMF design: row-ownership merge, contended rows included.
    let design = compiled_design(Algorithm::Lrmf);
    let spec = MergeSpec::derive(&design).unwrap();
    let partials: Vec<Vec<Vec<f32>>> = (0..k)
        .map(|s| {
            design
                .models
                .iter()
                .map(|m| {
                    (0..m.elements())
                        .map(|j| s as f32 * 100.0 + j as f32)
                        .collect()
                })
                .collect()
        })
        .collect();
    let ownership: Vec<ShardOwnership> = (0..k)
        .map(|s| {
            let mut own = ShardOwnership::for_spec(&spec);
            for (mi, bits) in own.per_model.iter_mut() {
                for (row, b) in bits.iter_mut().enumerate() {
                    // Overlapping ownership: shard s touches rows where
                    // (row + s + mi) % 3 != 0 — plenty of contention.
                    *b = (row + s + *mi) % 3 != 0;
                }
            }
            own
        })
        .collect();
    let base: Vec<Vec<f32>> = design
        .models
        .iter()
        .map(|m| vec![-1.0; m.elements()])
        .collect();
    let mut reference: Option<Vec<Vec<f32>>> = None;
    for perm in &perms {
        let mut buf = MergeBuffer::new(&spec, k, base.clone());
        for &s in perm {
            buf.submit(s, partials[s].clone(), 100);
        }
        let (merged, _) = buf.finish(&ownership).unwrap();
        match &reference {
            None => reference = Some(merged),
            Some(r) => assert_eq!(&merged, r, "arrival order {perm:?} changed the LRMF merge"),
        }
    }
}

#[test]
fn one_shard_training_is_bit_identical_to_serial_across_zoo_and_modes() {
    for algo in ZOO {
        for mode in MODES {
            let spec = spec_for(algo, 4);
            // Serial reference.
            let mut db = fresh_dana();
            db.create_table("t", heap_for(algo, 600)).unwrap();
            db.prewarm("t").unwrap();
            let serial = db.train_with_spec(&spec, "t", mode).unwrap();
            // One-shard gang on a fresh system.
            let mut db = fresh_dana();
            db.create_table("t", heap_for(algo, 600)).unwrap();
            db.prewarm("t").unwrap();
            let gang = db.train_with_spec_sharded(&spec, "t", mode, 1).unwrap();
            assert_eq!(
                gang.models, serial.models,
                "{algo:?}/{mode:?}: models must be bit-identical"
            );
            assert_eq!(gang.engine, serial.engine, "{algo:?}/{mode:?}: stats");
            assert_eq!(
                gang.timing, serial.timing,
                "{algo:?}/{mode:?}: simulated timing"
            );
            assert_eq!(gang.shards, 1);
        }
    }
}

#[test]
fn one_shard_run_udf_matches_serial_on_both_facades() {
    // Serial Dana facade.
    let spec = spec_for(Algorithm::Linear, 8);
    let mut a = fresh_dana();
    a.create_table("t", heap_for(Algorithm::Linear, 700))
        .unwrap();
    a.deploy(&spec, "t").unwrap();
    let serial = a.run_udf("linearR", "t").unwrap();
    let mut b = fresh_dana();
    b.create_table("t", heap_for(Algorithm::Linear, 700))
        .unwrap();
    b.deploy(&spec, "t").unwrap();
    let gang = b.run_udf_sharded("linearR", "t", 1).unwrap();
    assert_eq!(gang.models, serial.models);
    assert_eq!(gang.engine, serial.engine);
    assert_eq!(gang.timing, serial.timing);
    // Sharded training stores the trained model: PREDICT binds it.
    assert!(b.predict("linearR", "t", "p").is_ok());

    // Concurrent SystemCore.
    let core = || {
        let c = dana_server::SystemCore::new(dana_server::SystemCoreConfig {
            fpga: FpgaSpec::vu9p(),
            pool: BufferPoolConfig {
                pool_bytes: 64 << 20,
                page_size: PAGE,
            },
            pool_shards: 4,
            disk: DiskModel::ssd(),
        });
        c.create_table("t", heap_for(Algorithm::Linear, 700))
            .unwrap();
        c.deploy(&spec, "t").unwrap();
        c
    };
    let c1 = core();
    let serial = c1.run_udf("linearR", "t").unwrap();
    let c2 = core();
    let gang = c2.run_udf_sharded("linearR", "t", 1).unwrap();
    assert_eq!(gang.models, serial.models);
    assert_eq!(gang.engine, serial.engine);
    assert_eq!(gang.timing, serial.timing);
    assert_eq!(c2.held_frames(), 0, "gang scans must release every frame");
}

#[test]
fn parallel_predict_is_bit_identical_for_every_shard_count() {
    for algo in ZOO {
        let spec = spec_for(algo, 6);
        let udf = spec.name.clone();
        let mut db = fresh_dana();
        db.create_table("t", heap_for(algo, 900)).unwrap();
        db.deploy(&spec, "t").unwrap();
        db.run_udf(&udf, "t").unwrap();

        let serial = db.predict(&udf, "t", "p_serial").unwrap();
        let reference: Vec<Vec<f32>> = {
            let (_, heap) = db.catalog().table_heap("p_serial").unwrap();
            heap.scan_batch()
                .unwrap()
                .rows()
                .map(|r| r.to_vec())
                .collect()
        };
        for k in [1u16, 2, 4] {
            let dest = format!("p_{k}");
            let report = db.predict_sharded(&udf, "t", &dest, k).unwrap();
            assert_eq!(report.rows_scored, serial.rows_scored, "{algo:?} k={k}");
            assert_eq!(report.shards, k, "{algo:?}: plan must honor the request");
            let rows: Vec<Vec<f32>> = {
                let (_, heap) = db.catalog().table_heap(&dest).unwrap();
                heap.scan_batch()
                    .unwrap()
                    .rows()
                    .map(|r| r.to_vec())
                    .collect()
            };
            assert_eq!(
                rows, reference,
                "{algo:?}: {k}-shard prediction table differs from serial"
            );
            // One shard reproduces the serial simulated timing exactly.
            if k == 1 {
                assert_eq!(report.timing, serial.timing, "{algo:?}");
                assert_eq!(report.scoring, serial.scoring, "{algo:?}");
            }
        }

        // Sharded EVALUATE: k = 1 bit-identical; k > 1 same metric to
        // tight f64 tolerance (fold order differs across shards only).
        let es = db.evaluate(&udf, "t", None).unwrap();
        let e1 = db.evaluate_sharded(&udf, "t", None, 1).unwrap();
        assert_eq!(e1.value, es.value, "{algo:?}: 1-shard EVALUATE");
        assert_eq!(e1.metric, es.metric);
        for k in [2u16, 4] {
            let ek = db.evaluate_sharded(&udf, "t", None, k).unwrap();
            assert!(
                (ek.value - es.value).abs() <= es.value.abs() * 1e-12 + 1e-12,
                "{algo:?} k={k}: {} vs {}",
                ek.value,
                es.value
            );
            assert_eq!(ek.rows_scored, es.rows_scored);
        }
    }
}

#[test]
fn concurrent_core_scoring_matches_serial_for_every_shard_count() {
    let spec = spec_for(Algorithm::Logistic, 6);
    let core = dana_server::SystemCore::new(dana_server::SystemCoreConfig {
        fpga: FpgaSpec::vu9p(),
        pool: BufferPoolConfig {
            pool_bytes: 64 << 20,
            page_size: PAGE,
        },
        pool_shards: 4,
        disk: DiskModel::ssd(),
    });
    core.create_table("t", heap_for(Algorithm::Logistic, 800))
        .unwrap();
    core.deploy(&spec, "t").unwrap();
    core.run_udf("logisticR", "t").unwrap();
    let serial = core
        .score_with("logisticR", "t", ExecutionMode::Strider, None)
        .unwrap();
    for k in [1u16, 2, 4] {
        let sharded = core.score_sharded("logisticR", "t", k).unwrap();
        assert_eq!(sharded, serial, "{k}-shard score stream");
    }
    // Sharded predict materializes identically through the write-locked
    // install path.
    core.predict("logisticR", "t", "ps").unwrap();
    core.predict_sharded("logisticR", "t", "p4", 4).unwrap();
    let read = |name: &str| -> Vec<Vec<f32>> {
        core.table_snapshot(name)
            .unwrap()
            .scan_batch()
            .unwrap()
            .rows()
            .map(|r| r.to_vec())
            .collect()
    };
    assert_eq!(read("ps"), read("p4"), "materialized tables identical");
    assert_eq!(core.held_frames(), 0);
}

#[test]
fn multi_shard_training_is_reproducible_and_still_learns() {
    for algo in ZOO {
        // LRMF's shared R factor averages contended-row updates across
        // the gang each epoch (a k-times-smaller effective step), so its
        // sharded run gets proportionally more epochs.
        let spec = spec_for(algo, if algo == Algorithm::Lrmf { 40 } else { 10 });
        let udf = spec.name.clone();
        let run = || {
            let mut db = fresh_dana();
            db.create_table("t", heap_for(algo, 900)).unwrap();
            db.deploy(&spec, "t").unwrap();
            let out = db
                .execute_statement(&format!("EXECUTE dana.{udf}('t') WITH (shards = 4);"))
                .unwrap();
            let dana::StatementOutcome::Train(t) = out else {
                panic!("expected train outcome");
            };
            let e = db.evaluate(&udf, "t", None).unwrap();
            (t.report, e.value)
        };
        let (a, loss_a) = run();
        let (b, loss_b) = run();
        assert_eq!(
            a.models, b.models,
            "{algo:?}: sharded training must be reproducible"
        );
        assert_eq!(loss_a, loss_b, "{algo:?}");
        assert_eq!(a.shards, 4, "{algo:?}: gang actually sharded");
        assert!(loss_a.is_finite(), "{algo:?}");

        // Loss parity: the data-parallel model lands in the same quality
        // regime as serial training. The dense zoo problems are convex —
        // model averaging tracks the serial optimum closely. LRMF is
        // non-convex and its contended factor rows advance at an
        // averaged (k-times-smaller) step, so the bound there is "still
        // clearly learning": far below the no-model baseline (predicting
        // 0 for every rating ≈ the rating RMS, ~2.6 on this data).
        let mut db = fresh_dana();
        db.create_table("t", heap_for(algo, 900)).unwrap();
        db.deploy(&spec, "t").unwrap();
        db.run_udf(&udf, "t").unwrap();
        let serial_loss = db.evaluate(&udf, "t", None).unwrap().value;
        match algo {
            Algorithm::Lrmf => assert!(
                loss_a < 1.0,
                "{algo:?}: sharded RMSE {loss_a} is not meaningfully below the ~2.6 baseline"
            ),
            _ => {
                let (worse, better) = (loss_a.max(serial_loss), loss_a.min(serial_loss));
                assert!(
                    (worse - better).abs() <= 0.35 * better.abs() + 0.15,
                    "{algo:?}: sharded loss {loss_a} too far from serial {serial_loss}"
                );
            }
        }
    }
}
