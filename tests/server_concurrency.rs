//! Multi-session stress tests for the serving tier: many clients
//! submitting mixed deploy / execute / drop traffic against one
//! [`DanaServer`], asserting (a) every trained model is bit-identical to
//! serial execution, (b) no buffer-pool frame leaks, and (c) admission
//! control sheds overload with typed errors.

use dana::prelude::*;
use dana_server::{
    AdmissionConfig, DanaServer, QueryRequest, SchedPolicy, ServerConfig, ServerError,
    SystemCoreConfig,
};
use dana_storage::BufferPoolConfig;
use dana_workloads::{generate, workload};

fn small_core_config() -> SystemCoreConfig {
    SystemCoreConfig {
        fpga: FpgaSpec::vu9p(),
        pool: BufferPoolConfig {
            pool_bytes: 128 << 20,
            page_size: 32 * 1024,
        },
        pool_shards: 8,
        disk: DiskModel::ssd(),
    }
}

fn server(accelerators: usize, policy: SchedPolicy, max_queued: usize) -> DanaServer {
    DanaServer::start(ServerConfig {
        accelerators,
        workers: accelerators,
        admission: AdmissionConfig { max_queued, policy },
        default_timeout_ms: None,
        core: small_core_config(),
    })
}

/// Serial reference: a fresh single-threaded `Dana` over the identical
/// generated table, same spec, same mode.
fn serial_models(w: &dana_workloads::Workload, seed: u64, mode: ExecutionMode) -> Vec<Vec<f32>> {
    let table = generate(w, 32 * 1024, seed).unwrap();
    let mut db = Dana::new(
        FpgaSpec::vu9p(),
        BufferPoolConfig {
            pool_bytes: 128 << 20,
            page_size: 32 * 1024,
        },
        DiskModel::ssd(),
    );
    db.create_table("t", table.heap).unwrap();
    db.prewarm("t").unwrap();
    db.train_with_spec(&w.spec(), "t", mode).unwrap().models
}

/// Many threads training different workloads in every execution mode,
/// concurrently, against one server — every result must be bit-identical
/// to the single-threaded reference.
#[test]
fn concurrent_mixed_mode_training_is_bit_identical_to_serial() {
    let cases: Vec<(dana_workloads::Workload, u64)> = vec![
        (
            {
                let mut w = workload("Remote Sensing LR").unwrap().scaled(0.004);
                w.epochs = 3;
                w.merge_coef = 8;
                w
            },
            41,
        ),
        (
            {
                let mut w = workload("Patient").unwrap().scaled(0.01);
                w.epochs = 3;
                w.merge_coef = 8;
                w
            },
            42,
        ),
    ];
    let modes = [
        ExecutionMode::Strider,
        ExecutionMode::CpuFed,
        ExecutionMode::Tabla,
    ];

    let srv = server(4, SchedPolicy::Fifo, 1024);
    for (i, (w, seed)) in cases.iter().enumerate() {
        let table = generate(w, 32 * 1024, *seed).unwrap();
        srv.create_table(&format!("t{i}"), table.heap).unwrap();
        srv.prewarm(&format!("t{i}")).unwrap();
    }

    // One client thread per (workload, mode) pair, all submitting at once.
    let results = crossbeam::thread::scope(|s| {
        let srv = &srv;
        let cases = &cases;
        let handles: Vec<_> = cases
            .iter()
            .enumerate()
            .flat_map(|(i, (w, seed))| {
                modes.iter().map(move |mode| {
                    s.spawn(move |_| {
                        let session = srv.open_session(&format!("client-{i}-{mode:?}"));
                        let reply = srv
                            .call(
                                session,
                                QueryRequest::TrainSpec {
                                    spec: w.spec(),
                                    table: format!("t{i}"),
                                    mode: *mode,
                                },
                            )
                            .expect("query must succeed");
                        (i, *seed, *mode, reply.report().models.clone())
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    })
    .unwrap();

    assert_eq!(results.len(), cases.len() * modes.len());
    for (i, seed, mode, models) in results {
        let reference = serial_models(&cases[i].0, seed, mode);
        assert_eq!(
            models, reference,
            "case {i} mode {mode:?}: concurrent result diverged from serial"
        );
    }

    // Every frame released; every query accounted for.
    assert_eq!(srv.core().held_frames(), 0, "buffer-pool frame leak");
    let util = srv.shutdown();
    assert_eq!(
        util.leases.iter().sum::<u64>(),
        (cases.len() * modes.len()) as u64
    );
}

/// Mixed DDL + query churn from many sessions: private tables are
/// created, deployed, queried, and dropped while a shared table serves
/// queries throughout. Models stay bit-identical, stale accelerators
/// refuse with typed errors, and no frame or page leaks survive.
#[test]
fn mixed_ddl_query_drop_stress_leaks_nothing() {
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 3;

    let srv = server(4, SchedPolicy::Fifo, 1024);

    // The long-lived shared workload.
    let mut shared = workload("Patient").unwrap().scaled(0.01);
    shared.epochs = 2;
    shared.merge_coef = 8;
    let table = generate(&shared, 32 * 1024, 7).unwrap();
    srv.create_table("shared", table.heap).unwrap();
    srv.prewarm("shared").unwrap();
    let mut shared_spec = shared.spec();
    shared_spec.name = "sharedR".into();
    srv.deploy(&shared_spec, "shared").unwrap();
    let shared_reference = serial_models(&shared, 7, ExecutionMode::Strider);

    // Every client's private workload (identical data ⇒ identical expected
    // model, distinct catalog names ⇒ real DDL contention).
    let mut private = workload("Remote Sensing LR").unwrap().scaled(0.002);
    private.epochs = 2;
    private.merge_coef = 8;
    let private_reference = serial_models(&private, 11, ExecutionMode::Strider);

    crossbeam::thread::scope(|s| {
        let srv = &srv;
        let private = &private;
        let shared_reference = &shared_reference;
        let private_reference = &private_reference;
        for c in 0..CLIENTS {
            s.spawn(move |_| {
                let session = srv.open_session(&format!("client-{c}"));
                for r in 0..ROUNDS {
                    let tname = format!("t_{c}_{r}");
                    let uname = format!("udf_{c}_{r}");
                    let table = generate(private, 32 * 1024, 11).unwrap();
                    srv.create_table(&tname, table.heap).unwrap();
                    let mut spec = private.spec();
                    spec.name = uname.clone();
                    srv.deploy(&spec, &tname).unwrap();

                    // Private query: bit-identical to the serial reference.
                    let reply = srv
                        .call(
                            session,
                            QueryRequest::RunUdf {
                                udf: uname.clone(),
                                table: tname.clone(),
                                shards: None,
                            },
                        )
                        .expect("private query");
                    assert_eq!(
                        &reply.report().models,
                        private_reference,
                        "client {c} round {r}"
                    );

                    // Shared query through the SQL front door, same check.
                    let reply = srv
                        .call(
                            session,
                            QueryRequest::Sql("SELECT * FROM dana.sharedR('shared');".to_string()),
                        )
                        .expect("shared query");
                    assert_eq!(&reply.report().models, shared_reference);

                    // Drop the private table; its accelerator must turn
                    // stale with a typed error, not a dangling heap.
                    let summary = srv.drop_table(&tname).unwrap();
                    assert_eq!(summary.invalidated_udfs, vec![uname.clone()]);
                    match srv.call(
                        session,
                        QueryRequest::RunUdf {
                            udf: uname.clone(),
                            table: tname.clone(),
                            shards: None,
                        },
                    ) {
                        Err(ServerError::Dana(DanaError::StaleAccelerator {
                            udf,
                            dropped_table,
                        })) => {
                            assert_eq!(udf, uname);
                            assert_eq!(dropped_table, tname);
                        }
                        other => panic!("expected StaleAccelerator, got {other:?}"),
                    }
                }
                srv.close_session(session).unwrap()
            });
        }
    })
    .unwrap();

    // Leak detectors: no held frames, no pages of dropped tables resident.
    assert_eq!(srv.core().held_frames(), 0, "buffer-pool frame leak");
    assert_eq!(srv.core().table_names(), vec!["shared".to_string()]);
    let q = srv.queue_stats();
    assert_eq!(q.depth, 0);
    assert_eq!(
        q.admitted,
        (CLIENTS * ROUNDS * 3) as u64,
        "2 successful queries + 1 stale refusal per round reach the queue"
    );
    assert_eq!(q.rejected, 0);
    srv.shutdown();
}

/// Dropping a table while queries are actively scanning it must leave the
/// pool completely clean: straggler scans keep their `Arc` snapshots and
/// either finish with the bit-identical model or fail with a typed error
/// — but no page of the dropped heap may stay resident afterwards (the
/// orphan-page variant of the stale-page leak).
#[test]
fn drop_while_scanning_leaves_no_orphan_pages() {
    let srv = server(2, SchedPolicy::Fifo, 64);
    let mut w = workload("Remote Sensing LR").unwrap().scaled(0.004);
    w.epochs = 2;
    w.merge_coef = 8;
    let reference = serial_models(&w, 13, ExecutionMode::Strider);
    srv.create_table("t", generate(&w, 32 * 1024, 13).unwrap().heap)
        .unwrap();
    let mut spec = w.spec();
    spec.name = "victimR".into();
    srv.deploy(&spec, "t").unwrap();

    let session = srv.open_session("racer");
    // Queue a burst, then drop the table while the burst is in flight.
    let tickets: Vec<_> = (0..6)
        .map(|_| {
            srv.submit(
                session,
                QueryRequest::RunUdf {
                    udf: "victimR".into(),
                    table: "t".into(),
                    shards: None,
                },
            )
            .unwrap()
        })
        .collect();
    srv.drop_table("t").unwrap();

    let mut ok = 0;
    for t in tickets {
        match srv.wait(t) {
            Ok(reply) => {
                // A query that snapshotted the heap before the drop must
                // still produce the exact serial model.
                assert_eq!(reply.report().models, reference);
                ok += 1;
            }
            Err(ServerError::Dana(
                DanaError::StaleAccelerator { .. }
                | DanaError::Storage(dana_storage::StorageError::UnknownTable(_)),
            )) => {}
            Err(e) => panic!("unexpected failure: {e}"),
        }
    }
    assert!(ok >= 1, "at least the in-flight query must complete");
    // The only table is gone: nothing may remain resident or held.
    assert_eq!(srv.core().held_frames(), 0, "frame leak");
    assert_eq!(
        srv.core().resident_pages(),
        0,
        "orphan pages of the dropped heap survived"
    );
    srv.shutdown();
}

/// A tiny admission queue in front of a single slow worker: the flood is
/// shed with typed `Overloaded` errors and every admitted query still
/// completes.
#[test]
fn admission_control_sheds_overload() {
    let srv = server(1, SchedPolicy::Fifo, 2);
    let mut w = workload("Patient").unwrap().scaled(0.01);
    w.epochs = 2;
    let table = generate(&w, 32 * 1024, 3).unwrap();
    srv.create_table("t", table.heap).unwrap();
    let mut spec = w.spec();
    spec.name = "patientR".into();
    srv.deploy(&spec, "t").unwrap();

    let session = srv.open_session("flooder");
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..32 {
        match srv.submit(
            session,
            QueryRequest::RunUdf {
                udf: "patientR".into(),
                table: "t".into(),
                shards: None,
            },
        ) {
            Ok(t) => tickets.push(t),
            Err(ServerError::Overloaded { queued, limit }) => {
                assert!(queued >= limit);
                rejected += 1;
            }
            Err(e) => panic!("unexpected refusal: {e}"),
        }
    }
    assert!(rejected > 0, "a 2-deep queue must shed a 32-query flood");
    let admitted = tickets.len();
    for t in tickets {
        let reply = srv.wait(t).expect("admitted queries must complete");
        assert!(!reply.report().models.is_empty());
    }
    let stats = srv.session_stats(session).unwrap();
    assert_eq!(stats.completed, admitted as u64);
    assert_eq!(stats.submitted, 32);
    let q = srv.queue_stats();
    assert_eq!(q.admitted as usize, admitted);
    assert_eq!(q.rejected as usize, rejected);
    srv.shutdown();
}

/// Shortest-job-first actually reorders a backlog: with one worker wedged
/// behind a long job, a later-submitted cheap query overtakes an earlier
/// expensive one.
#[test]
fn sjf_lets_cheap_queries_overtake() {
    let srv = server(1, SchedPolicy::Sjf, 64);

    let mut small = workload("Patient").unwrap().scaled(0.004);
    small.epochs = 1;
    let mut big = workload("Patient").unwrap().scaled(0.04);
    big.epochs = 8;

    let ts = generate(&small, 32 * 1024, 5).unwrap();
    let tb = generate(&big, 32 * 1024, 6).unwrap();
    srv.create_table("small", ts.heap).unwrap();
    srv.create_table("big", tb.heap).unwrap();
    let mut small_spec = small.spec();
    small_spec.name = "smallR".into();
    let mut big_spec = big.spec();
    big_spec.name = "bigR".into();
    srv.deploy(&small_spec, "small").unwrap();
    srv.deploy(&big_spec, "big").unwrap();

    let session = srv.open_session("sjf");
    // Wedge the single worker, then queue big-before-small.
    let wedge = srv
        .submit(
            session,
            QueryRequest::RunUdf {
                udf: "bigR".into(),
                table: "big".into(),
                shards: None,
            },
        )
        .unwrap();
    let expensive = srv
        .submit(
            session,
            QueryRequest::RunUdf {
                udf: "bigR".into(),
                table: "big".into(),
                shards: None,
            },
        )
        .unwrap();
    let cheap = srv
        .submit(
            session,
            QueryRequest::RunUdf {
                udf: "smallR".into(),
                table: "small".into(),
                shards: None,
            },
        )
        .unwrap();

    let _ = srv.wait(wedge).unwrap();
    let cheap_reply = srv.wait(cheap).unwrap();
    let expensive_reply = srv.wait(expensive).unwrap();
    assert!(
        cheap_reply.queue_seconds < expensive_reply.queue_seconds,
        "SJF must start the cheap query first (cheap waited {:.4}s, expensive {:.4}s)",
        cheap_reply.queue_seconds,
        expensive_reply.queue_seconds
    );
    srv.shutdown();
}

/// The deploy-time engine cache: one DEPLOY builds the execution engine
/// exactly once, and every subsequent EXECUTE — serial or concurrent, via
/// the SQL front door or `RunUdf` — rides that cached `Arc` rather than
/// reconstructing it. The counter on the server core is the proof.
#[test]
fn repeated_executes_build_the_engine_exactly_once() {
    const EXECUTES: usize = 12;

    let srv = server(4, SchedPolicy::Fifo, 1024);
    let mut w = workload("Remote Sensing LR").unwrap().scaled(0.004);
    w.epochs = 2;
    w.merge_coef = 8;
    srv.create_table("t", generate(&w, 32 * 1024, 21).unwrap().heap)
        .unwrap();
    srv.prewarm("t").unwrap();
    srv.deploy(&w.spec(), "t").unwrap();

    let after_deploy = srv.core().engine_cache_stats();
    assert_eq!(
        after_deploy.built, 1,
        "DEPLOY builds (validates + lowers) the engine exactly once"
    );

    // Concurrent burst of EXECUTEs against the one deployed accelerator.
    let reference = serial_models(&w, 21, ExecutionMode::Strider);
    crossbeam::thread::scope(|s| {
        let srv = &srv;
        let reference = &reference;
        for c in 0..EXECUTES {
            s.spawn(move |_| {
                let session = srv.open_session(&format!("exec-{c}"));
                let reply = srv
                    .call(
                        session,
                        QueryRequest::Sql("SELECT * FROM dana.logisticR('t');".to_string()),
                    )
                    .expect("execute");
                assert_eq!(&reply.report().models, reference, "execute {c}");
            });
        }
    })
    .unwrap();

    let stats = srv.core().engine_cache_stats();
    assert_eq!(
        stats.built, 1,
        "repeated EXECUTEs must never construct another engine"
    );
    // Every query resolves the cached engine at least once (submit-time
    // cost hints hit it too, so hits can exceed the EXECUTE count).
    assert!(
        stats.hits >= EXECUTES as u64,
        "expected ≥{EXECUTES} cache hits, saw {}",
        stats.hits
    );
    srv.shutdown();
}

/// Scoring queries flow through the full serving path — sessions,
/// admission, the accelerator pool — alongside training queries: a SQL
/// `PREDICT … INTO …` materializes the table, `EVALUATE` computes the
/// metric, and concurrent mixed traffic leaves no held frames.
#[test]
fn predict_and_evaluate_flow_through_the_server() {
    let srv = server(2, SchedPolicy::Sjf, 256);
    let mut w = workload("Remote Sensing LR").unwrap().scaled(0.004);
    w.epochs = 2;
    w.merge_coef = 8;
    srv.create_table("t", generate(&w, 32 * 1024, 33).unwrap().heap)
        .unwrap();
    srv.deploy(&w.spec(), "t").unwrap();

    let session = srv.open_session("scorer");
    // Train first (PREDICT before training is a typed refusal).
    match srv.call(
        session,
        QueryRequest::Predict {
            udf: "logisticR".into(),
            table: "t".into(),
            into: "scores".into(),
            shards: None,
        },
    ) {
        Err(ServerError::Dana(DanaError::ModelNotTrained { .. })) => {}
        other => panic!("expected ModelNotTrained, got {other:?}"),
    }
    let trained = srv
        .call(
            session,
            QueryRequest::Sql("SELECT * FROM dana.logisticR('t');".into()),
        )
        .unwrap();
    assert!(!trained.report().models.is_empty());

    // PREDICT via the SQL front door.
    let reply = srv
        .call(
            session,
            QueryRequest::Sql("PREDICT dana.logisticR('t') INTO 'scores';".into()),
        )
        .unwrap();
    let p = reply.predict_report();
    assert_eq!(p.output_table, "scores");
    assert!(p.rows_scored > 0);
    assert!(srv.core().table_names().contains(&"scores".to_string()));

    // EVALUATE — on the source and on the materialized table, same value.
    let on_src = srv
        .call(
            session,
            QueryRequest::Sql("EVALUATE dana.logisticR('t', 'log_loss');".into()),
        )
        .unwrap();
    let on_scores = srv
        .call(
            session,
            QueryRequest::Evaluate {
                udf: "logisticR".into(),
                table: "scores".into(),
                metric: None,
                shards: None,
            },
        )
        .unwrap();
    assert_eq!(
        on_src.eval_report().value,
        on_scores.eval_report().value,
        "the appended prediction column must not disturb the metric"
    );

    // Mixed concurrent traffic: trainers and scorers interleave.
    crossbeam::thread::scope(|s| {
        let srv = &srv;
        for c in 0..4 {
            s.spawn(move |_| {
                let session = srv.open_session(&format!("mixed-{c}"));
                let sql = if c % 2 == 0 {
                    "SELECT * FROM dana.logisticR('t');".to_string()
                } else {
                    format!("PREDICT dana.logisticR('t') INTO 'scores_{c}';")
                };
                srv.call(session, QueryRequest::Sql(sql)).unwrap();
            });
        }
    })
    .unwrap();

    assert_eq!(srv.core().held_frames(), 0, "scoring must hold no frames");
    srv.shutdown();
}

/// Drop-vs-score race: PREDICTs in flight while the source table drops.
/// Every query either completes (its heap snapshot predates the drop —
/// but then the install guard refuses to register predictions for a
/// dropped source) or fails with a typed error; afterwards nothing of
/// the dropped heap or any stale prediction table stays resident.
#[test]
fn drop_while_scoring_is_typed_and_leaves_no_orphans() {
    let srv = server(2, SchedPolicy::Fifo, 64);
    let mut w = workload("Remote Sensing LR").unwrap().scaled(0.004);
    w.epochs = 2;
    w.merge_coef = 8;
    srv.create_table("t", generate(&w, 32 * 1024, 55).unwrap().heap)
        .unwrap();
    srv.deploy(&w.spec(), "t").unwrap();
    let session = srv.open_session("race");
    srv.call(
        session,
        QueryRequest::Sql("SELECT * FROM dana.logisticR('t');".into()),
    )
    .unwrap();
    // One prediction table exists before the drop; it must go stale.
    srv.call(
        session,
        QueryRequest::Predict {
            udf: "logisticR".into(),
            table: "t".into(),
            into: "pre_drop_scores".into(),
            shards: None,
        },
    )
    .unwrap();

    // Queue a burst of PREDICTs, then drop the source mid-flight.
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            srv.submit(
                session,
                QueryRequest::Predict {
                    udf: "logisticR".into(),
                    table: "t".into(),
                    into: format!("racing_{i}"),
                    shards: None,
                },
            )
            .unwrap()
        })
        .collect();
    let summary = srv.drop_table("t").unwrap();
    assert_eq!(
        summary.stale_prediction_tables,
        vec!["pre_drop_scores".to_string()]
    );

    let mut installed = 0usize;
    for t in tickets {
        match srv.wait(t) {
            Ok(reply) => {
                // Raced ahead of the drop entirely.
                assert!(reply.predict_report().rows_scored > 0);
                installed += 1;
            }
            Err(ServerError::Dana(
                DanaError::StaleAccelerator { .. }
                | DanaError::ModelNotTrained { .. }
                | DanaError::Storage(
                    dana_storage::StorageError::UnknownTable(_)
                    | dana_storage::StorageError::StaleDerivedTable { .. },
                ),
            )) => {}
            Err(e) => panic!("unexpected failure: {e}"),
        }
    }

    // The stale pre-drop prediction table refuses queries...
    match srv.call(
        session,
        QueryRequest::Evaluate {
            udf: "logisticR".into(),
            table: "pre_drop_scores".into(),
            metric: None,
            shards: None,
        },
    ) {
        Err(ServerError::Dana(
            DanaError::StaleAccelerator { .. }
            | DanaError::Storage(dana_storage::StorageError::StaleDerivedTable { .. }),
        )) => {}
        other => panic!("expected a typed stale refusal, got {other:?}"),
    }

    // ...and no frame or page of the dropped/stale heaps survives. Any
    // predictions that won the race belong to *other* (still-live)
    // tables — evict them for the resident check by dropping.
    for name in srv.core().table_names() {
        let _ = srv.drop_table(&name);
    }
    assert_eq!(srv.core().held_frames(), 0, "frame leak");
    assert_eq!(srv.core().resident_pages(), 0, "orphan pages survived");
    let _ = installed;
    srv.shutdown();
}

/// Intra-query parallelism under load: a 4-shard gang submitted into a
/// stream of single-instance queries on a 4-instance pool, under SJF.
/// The FIFO pool grant discipline means the gang is neither starved by
/// the singles (its turn comes) nor starves them (they run after it) —
/// every ticket completes, the gang holds four distinct instances, and
/// its trained model is bit-identical to training the same shards
/// directly on the shared core.
#[test]
fn four_shard_gang_neither_starves_nor_is_starved_under_sjf() {
    let srv = server(4, SchedPolicy::Sjf, 1024);
    let mut w = workload("Remote Sensing LR").unwrap().scaled(0.004);
    w.epochs = 2;
    w.merge_coef = 8;
    srv.create_table("t", generate(&w, 32 * 1024, 33).unwrap().heap)
        .unwrap();
    srv.prewarm("t").unwrap();
    srv.deploy(&w.spec(), "t").unwrap();

    // Admission cost hints divide by the gang size: a 4-shard gang must
    // be priced at a quarter of the serial estimate, so SJF does not
    // misfile it behind genuinely shorter singles.
    let serial_hint = srv.cost_hint(&QueryRequest::RunUdf {
        udf: "logisticR".into(),
        table: "t".into(),
        shards: None,
    });
    let gang_hint = srv.cost_hint(&QueryRequest::RunUdf {
        udf: "logisticR".into(),
        table: "t".into(),
        shards: Some(4),
    });
    assert!(serial_hint > 0.0);
    assert!(
        (gang_hint - serial_hint / 4.0).abs() < serial_hint * 1e-12,
        "gang hint {gang_hint} must be serial {serial_hint} / 4"
    );
    // The SQL front door prices the WITH clause the same way.
    let sql_gang_hint = srv.cost_hint(&QueryRequest::Sql(
        "SELECT * FROM dana.logisticR('t') WITH (shards = 4);".into(),
    ));
    assert!((sql_gang_hint - gang_hint).abs() < serial_hint * 1e-12);

    // Overload mix: singles before, gangs in the middle, singles after —
    // all from concurrent clients. Everything must complete.
    let results = crossbeam::thread::scope(|s| {
        let srv = &srv;
        let mut handles = Vec::new();
        for c in 0..6 {
            handles.push(s.spawn(move |_| {
                let session = srv.open_session(&format!("single-pre-{c}"));
                let reply = srv
                    .call(
                        session,
                        QueryRequest::RunUdf {
                            udf: "logisticR".into(),
                            table: "t".into(),
                            shards: None,
                        },
                    )
                    .expect("single query must complete");
                ("single", reply)
            }));
        }
        for c in 0..3 {
            handles.push(s.spawn(move |_| {
                let session = srv.open_session(&format!("gang-{c}"));
                let reply = srv
                    .call(
                        session,
                        QueryRequest::RunUdf {
                            udf: "logisticR".into(),
                            table: "t".into(),
                            shards: Some(4),
                        },
                    )
                    .expect("gang query must complete");
                ("gang", reply)
            }));
        }
        for c in 0..6 {
            handles.push(s.spawn(move |_| {
                let session = srv.open_session(&format!("single-post-{c}"));
                let reply = srv
                    .call(
                        session,
                        QueryRequest::Sql("EXECUTE dana.logisticR('t') WITH (shards = 2);".into()),
                    )
                    .expect("2-gang query must complete");
                ("pair", reply)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    })
    .unwrap();

    let mut singles = 0;
    let mut gangs = 0;
    let mut pairs = 0;
    for (kind, reply) in &results {
        match *kind {
            "single" => {
                singles += 1;
                assert_eq!(reply.gang.len(), 1);
            }
            "gang" => {
                gangs += 1;
                assert_eq!(reply.gang.len(), 4, "gang must hold 4 instances");
                let mut ids = reply.gang.clone();
                ids.dedup();
                assert_eq!(ids.len(), 4, "gang members must be distinct");
                assert_eq!(reply.report().shards, 4);
            }
            "pair" => {
                pairs += 1;
                assert_eq!(reply.gang.len(), 2);
                assert_eq!(reply.report().shards, 2);
            }
            _ => unreachable!(),
        }
    }
    assert_eq!((singles, gangs, pairs), (6, 3, 6));

    // Gang-trained and serial-trained models agree with the shared
    // core's own sharded run (training is deterministic per shard count).
    let gang_models = results
        .iter()
        .find(|(k, _)| *k == "gang")
        .map(|(_, r)| r.report().models.clone())
        .unwrap();
    let direct = srv.core().run_udf_sharded("logisticR", "t", 4).unwrap();
    assert_eq!(gang_models, direct.models, "gang training is deterministic");

    let util = srv.shutdown();
    assert!(
        util.leases.iter().all(|&l| l > 0),
        "every instance served work: {:?}",
        util.leases
    );
    // 6 singles + 3×4-member gangs + 6×2-member gangs. (The direct
    // `core()` run above bypasses the pool — no lease.)
    assert_eq!(util.leases.iter().sum::<u64>(), 6 + 3 * 4 + 6 * 2);
}

/// A gang lease must never hold more instances than the shard plan has
/// shards: a one-page table requested `WITH (shards = 4)` runs — and
/// leases — a single instance, so utilization metrics never charge
/// phantom-busy hardware.
#[test]
fn gang_size_clamps_to_the_tables_page_count() {
    let srv = server(4, SchedPolicy::Fifo, 64);
    // Tiny table: one 32 KB page.
    let mut b = dana_storage::HeapFileBuilder::new(
        dana_storage::Schema::training(8),
        32 * 1024,
        dana_storage::page::TupleDirection::Ascending,
    )
    .unwrap();
    for k in 0..40 {
        let x: Vec<f32> = (0..8).map(|i| ((k + i) % 5) as f32 / 5.0).collect();
        b.insert(&Tuple::training(&x, x.iter().sum())).unwrap();
    }
    let heap = b.finish();
    assert_eq!(heap.page_count(), 1, "test needs a one-page table");
    srv.create_table("tiny", heap).unwrap();
    let spec = dana_dsl::zoo::linear_regression(dana_dsl::zoo::DenseParams {
        n_features: 8,
        learning_rate: 0.1,
        merge_coef: 8,
        epochs: 1,
    })
    .unwrap();
    srv.deploy(&spec, "tiny").unwrap();

    let session = srv.open_session("clamp");
    let reply = srv
        .call(
            session,
            QueryRequest::Sql("EXECUTE dana.linearR('tiny') WITH (shards = 4);".into()),
        )
        .unwrap();
    assert_eq!(reply.gang.len(), 1, "lease must match the effective plan");
    assert_eq!(reply.report().shards, 1);
    let util = srv.shutdown();
    assert_eq!(
        util.busy_seconds.iter().filter(|&&b| b > 0.0).count(),
        1,
        "only one instance may be charged: {:?}",
        util.busy_seconds
    );
}

/// CPU-tier and EXPLAIN queries are lease-free: the backend resolves
/// *before* admission leases, so neither touches the accelerator pool —
/// its utilization ledger charges only the FPGA-tier run, and the
/// CPU-trained model is still bit-identical to the offloaded one.
#[test]
fn cpu_tier_and_explain_bypass_the_accelerator_pool() {
    let srv = server(2, SchedPolicy::Fifo, 64);
    let mut w = workload("Remote Sensing LR").unwrap().scaled(0.004);
    w.epochs = 2;
    w.merge_coef = 8;
    srv.create_table("t", generate(&w, 32 * 1024, 71).unwrap().heap)
        .unwrap();
    srv.deploy(&w.spec(), "t").unwrap();
    let session = srv.open_session("advisor");

    // EXPLAIN: priced, never executed, never leased.
    let explained = srv
        .call(
            session,
            QueryRequest::Sql("EXPLAIN SELECT * FROM dana.logisticR('t');".into()),
        )
        .unwrap();
    let cmp = explained.comparison();
    assert_eq!(cmp.options.len(), 2);
    assert!(explained.gang.is_empty(), "EXPLAIN must not lease");
    assert_eq!(explained.accelerator, usize::MAX);

    // Forced CPU training: lease-free, wall-timed, zero simulated cost.
    let cpu = srv
        .call(
            session,
            QueryRequest::Sql("SELECT * FROM dana.logisticR('t') WITH (backend = cpu);".into()),
        )
        .unwrap();
    assert!(cpu.gang.is_empty(), "CPU tier must not lease");
    assert_eq!(cpu.accelerator, usize::MAX);
    assert_eq!(cpu.report().backend, BackendKind::Cpu);
    assert_eq!(cpu.report().timing.total_seconds, 0.0);
    assert!(cpu.report().timing.wall_seconds.is_some());

    // The offloaded run leases one instance and agrees bit-for-bit.
    let fpga = srv
        .call(
            session,
            QueryRequest::Sql("SELECT * FROM dana.logisticR('t');".into()),
        )
        .unwrap();
    assert_eq!(fpga.gang.len(), 1);
    assert_eq!(fpga.report().backend, BackendKind::Fpga);
    assert_eq!(
        cpu.report().models,
        fpga.report().models,
        "tiers must agree bit-for-bit through the server"
    );

    assert_eq!(srv.core().held_frames(), 0, "buffer-pool frame leak");
    let util = srv.shutdown();
    assert_eq!(
        util.leases.iter().sum::<u64>(),
        1,
        "only the FPGA-tier run may lease: {:?}",
        util.leases
    );
    assert_eq!(
        util.busy_seconds.iter().filter(|&&b| b > 0.0).count(),
        1,
        "only the FPGA-tier run may charge simulated time: {:?}",
        util.busy_seconds
    );
}
