//! Anchor library for the system-level test package. The integration tests
//! (`tests/` at the repository root) and examples exercise the `dana-*`
//! crates directly; this crate exists only to give them a package.
