//! Clock-domain arithmetic shared by every simulator in the workspace.

/// Simulated wall-clock time in seconds.
///
/// All simulators in the workspace report time as `f64` seconds; cycle
/// counts are exact (`u64`) and converted at the edge by [`Clock`].
pub type Seconds = f64;

/// An exact cycle count in some clock domain.
pub type Cycles = u64;

/// A fixed-frequency clock domain.
///
/// DAnA synthesizes every design at 150 MHz (§7, "we synthesize the hardware
/// at 150 MHz using Vivado"); the CPU baselines run at 3.4 GHz. Both are
/// expressed as `Clock`s so cycle counts convert to comparable seconds.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Clock {
    /// Frequency in hertz.
    pub hz: f64,
}

impl Clock {
    /// The paper's FPGA clock: 150 MHz (Table 4).
    pub const FPGA_150MHZ: Clock = Clock { hz: 150.0e6 };

    /// The paper's CPU clock: Intel i7-6700 at 3.40 GHz (§7).
    pub const CPU_3_4GHZ: Clock = Clock { hz: 3.4e9 };

    /// Creates a clock running at `mhz` megahertz.
    pub fn from_mhz(mhz: f64) -> Clock {
        Clock { hz: mhz * 1.0e6 }
    }

    /// Converts a cycle count in this domain to seconds.
    pub fn to_seconds(&self, cycles: Cycles) -> Seconds {
        cycles as f64 / self.hz
    }

    /// Converts (fractional) seconds to a cycle count, rounding up: an
    /// operation that takes any part of a cycle occupies the whole cycle.
    /// (Values within floating-point noise of a whole cycle snap to it so
    /// `to_cycles(to_seconds(n)) == n`.)
    pub fn to_cycles(&self, seconds: Seconds) -> Cycles {
        let raw = seconds * self.hz;
        let nearest = raw.round();
        if (raw - nearest).abs() < 1e-6 {
            nearest as Cycles
        } else {
            raw.ceil() as Cycles
        }
    }

    /// The duration of a single cycle in seconds.
    pub fn period(&self) -> Seconds {
        1.0 / self.hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpga_clock_period_matches_150mhz() {
        let c = Clock::FPGA_150MHZ;
        assert!((c.period() - 1.0 / 150.0e6).abs() < 1e-18);
        assert!((c.to_seconds(150_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn seconds_to_cycles_rounds_up() {
        let c = Clock::from_mhz(100.0);
        // 1.5 cycles of work must occupy 2 cycles.
        assert_eq!(c.to_cycles(15.0e-9), 2);
        assert_eq!(c.to_cycles(10.0e-9), 1);
        assert_eq!(c.to_cycles(0.0), 0);
    }

    #[test]
    fn round_trip_is_stable() {
        let c = Clock::FPGA_150MHZ;
        for cycles in [0u64, 1, 7, 150, 1_000_000] {
            assert_eq!(c.to_cycles(c.to_seconds(cycles)), cycles);
        }
    }
}
