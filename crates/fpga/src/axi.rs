//! The host↔FPGA AXI link model (§5.1.1).
//!
//! "The access engine uses the Advanced Extensible Interface (AXI) interface
//! to transfer the data to and from the FPGA ... to transfer uncompressed
//! database pages to page buffers and configuration data to configuration
//! registers."
//!
//! We model the link as fixed per-burst latency plus streaming bandwidth.
//! Pages move in bursts of one page; configuration data moves once per
//! deployment and is negligible next to training data but still accounted.

use crate::clock::Seconds;

/// A unidirectional host→FPGA transfer link.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AxiLink {
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Fixed per-burst initiation latency in seconds (request setup,
    /// interconnect arbitration). PCIe-class links sit around a
    /// microsecond; the exact value only matters for tiny transfers.
    pub burst_latency: Seconds,
}

impl AxiLink {
    /// Creates a link with the given sustained bandwidth and a default
    /// 1 µs burst latency.
    pub fn with_bandwidth(bandwidth: f64) -> AxiLink {
        assert!(bandwidth > 0.0, "AXI bandwidth must be positive");
        AxiLink {
            bandwidth,
            burst_latency: 1.0e-6,
        }
    }

    /// Time to move a single burst of `bytes` across the link.
    pub fn burst_time(&self, bytes: u64) -> Seconds {
        self.burst_latency + bytes as f64 / self.bandwidth
    }

    /// Time to stream `total_bytes` as back-to-back bursts of `burst_bytes`.
    ///
    /// Bursts pipeline: after the first initiation the link stays saturated,
    /// so the cost is one latency plus the streaming time. This matches the
    /// paper's page-granularity design intent: "process database data at a
    /// page level granularity" to "amortize the cost of data transfer"
    /// (§5.1.1).
    pub fn stream_time(&self, total_bytes: u64, burst_bytes: u64) -> Seconds {
        if total_bytes == 0 {
            return 0.0;
        }
        assert!(burst_bytes > 0, "burst size must be positive");
        self.burst_latency + total_bytes as f64 / self.bandwidth
    }

    /// Number of whole bursts needed for `total_bytes`.
    pub fn bursts(&self, total_bytes: u64, burst_bytes: u64) -> u64 {
        total_bytes.div_ceil(burst_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_time_includes_latency() {
        let link = AxiLink::with_bandwidth(1.0e9);
        let t = link.burst_time(1_000_000); // 1 MB over 1 GB/s = 1 ms
        assert!((t - (1.0e-6 + 1.0e-3)).abs() < 1e-12);
    }

    #[test]
    fn streaming_amortizes_latency() {
        let link = AxiLink::with_bandwidth(1.0e9);
        let page = 32 * 1024u64;
        let n = 1000u64;
        let streamed = link.stream_time(page * n, page);
        let individually: f64 = (0..n).map(|_| link.burst_time(page)).sum();
        // Streaming must be strictly cheaper than per-page bursts.
        assert!(streamed < individually);
        // But never cheaper than raw bytes/bandwidth.
        assert!(streamed >= (page * n) as f64 / link.bandwidth);
    }

    #[test]
    fn zero_bytes_is_free() {
        let link = AxiLink::with_bandwidth(2.5e9);
        assert_eq!(link.stream_time(0, 32 * 1024), 0.0);
    }

    #[test]
    fn bursts_round_up() {
        let link = AxiLink::with_bandwidth(2.5e9);
        assert_eq!(link.bursts(1, 32 * 1024), 1);
        assert_eq!(link.bursts(32 * 1024, 32 * 1024), 1);
        assert_eq!(link.bursts(32 * 1024 + 1, 32 * 1024), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_bandwidth() {
        let _ = AxiLink::with_bandwidth(0.0);
    }
}
