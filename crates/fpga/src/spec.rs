//! FPGA device specifications (paper Table 4) and resource budgeting.

use crate::clock::Clock;

/// Resource capacity of an FPGA device.
///
/// These are the quantities the hardware generator (§6.1) consumes: "the
/// number of DSP slices, the number of BRAMs, the capacity of each BRAM, the
/// number of read/write ports on a BRAM, and the off-chip communication
/// bandwidth are provided by the user".
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FpgaSpec {
    /// Device name, e.g. `"Xilinx Virtex UltraScale+ VU9P"`.
    pub name: &'static str,
    /// Look-up tables (thousands are spelled out: Table 4 lists 1,182 K).
    pub luts: u64,
    /// Flip-flops (Table 4 lists 2,364 K).
    pub flip_flops: u64,
    /// DSP slices; each analytic unit (AU) consumes a fixed number of these.
    pub dsp_slices: u64,
    /// Total block-RAM capacity in bytes (Table 4: 44 MB for the VU9P).
    pub bram_bytes: u64,
    /// Capacity of one BRAM block in bytes (used to round allocations).
    pub bram_block_bytes: u64,
    /// Read/write ports per BRAM block (true dual-port on UltraScale+).
    pub bram_ports: u32,
    /// Synthesized clock.
    pub clock: Clock,
    /// Effective off-chip (host → FPGA) bandwidth in bytes/second for the
    /// baseline configuration of Figure 14. See `axi::AxiLink`.
    pub axi_bandwidth: f64,
    /// Upper bound on instantiable compute units. §7.2: "In UltraScale+
    /// FPGA, maximum 1024 compute units can be instantiated."
    pub max_compute_units: u32,
}

impl FpgaSpec {
    /// Xilinx Virtex UltraScale+ VU9P, the paper's evaluation platform
    /// (Table 4), synthesized at 150 MHz.
    ///
    /// The AXI effective bandwidth is a fitted constant (DESIGN.md §7):
    /// 2.5 GB/s reproduces the paper's observation that the wide synthetic
    /// workloads are bandwidth-bound at the baseline bandwidth (Fig. 14).
    pub fn vu9p() -> FpgaSpec {
        FpgaSpec {
            name: "Xilinx Virtex UltraScale+ VU9P",
            luts: 1_182_000,
            flip_flops: 2_364_000,
            dsp_slices: 6_840,
            bram_bytes: 44 * 1024 * 1024,
            bram_block_bytes: 36 * 1024 / 8, // 36 Kb RAMB36 block
            bram_ports: 2,
            clock: Clock::FPGA_150MHZ,
            axi_bandwidth: 2.5e9,
            max_compute_units: 1024,
        }
    }

    /// Intel/Altera Arria 10 (§5.2 mentions its 7 MB of BRAM as the smaller
    /// contemporary device); used in tests to exercise resource-constrained
    /// hardware generation.
    pub fn arria10() -> FpgaSpec {
        FpgaSpec {
            name: "Intel Arria 10 GX 1150",
            luts: 427_200,
            flip_flops: 1_708_800,
            dsp_slices: 1_518,
            bram_bytes: 7 * 1024 * 1024,
            bram_block_bytes: 20 * 1024 / 8, // M20K block
            bram_ports: 2,
            clock: Clock::from_mhz(150.0),
            axi_bandwidth: 2.5e9,
            max_compute_units: 256,
        }
    }

    /// Returns a copy with the AXI bandwidth scaled by `factor` — the knob
    /// behind the Figure 14 bandwidth sweep (0.25×, 0.5×, 1×, 2×, 4×).
    pub fn with_bandwidth_scale(mut self, factor: f64) -> FpgaSpec {
        assert!(factor > 0.0, "bandwidth scale must be positive");
        self.axi_bandwidth *= factor;
        self
    }

    /// Returns a copy with a different BRAM capacity (test hook).
    pub fn with_bram_bytes(mut self, bytes: u64) -> FpgaSpec {
        self.bram_bytes = bytes;
        self
    }
}

/// A division of the FPGA's resources between the access engine and the
/// execution engine, produced by the hardware generator (§6.1).
///
/// "Sizes of the DBMS page, model, and a single training data record
/// determine the amount of memory utilized by each Strider. ... The
/// remainder of the BRAM memory is assigned to the page buffer to store as
/// many pages as possible."
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ResourceBudget {
    /// Bytes of BRAM for extracted raw training data + model, per thread.
    pub data_model_bytes: u64,
    /// Bytes of BRAM granted to page buffers (all Striders together).
    pub page_buffer_bytes: u64,
    /// Number of resident page buffers (= number of Striders).
    pub num_page_buffers: u32,
    /// Number of analytic units synthesized.
    pub num_aus: u32,
    /// Number of analytic clusters (AUs / 8, §5.2 fixes 8 AUs per AC).
    pub num_acs: u32,
    /// Number of execution-engine threads.
    pub num_threads: u32,
}

impl ResourceBudget {
    /// AUs per thread (every thread is architecturally identical, §5.2).
    pub fn aus_per_thread(&self) -> u32 {
        self.num_aus.checked_div(self.num_threads).unwrap_or(0)
    }

    /// ACs per thread.
    pub fn acs_per_thread(&self) -> u32 {
        self.num_acs.checked_div(self.num_threads).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vu9p_matches_table_4() {
        let s = FpgaSpec::vu9p();
        assert_eq!(s.luts, 1_182_000);
        assert_eq!(s.flip_flops, 2_364_000);
        assert_eq!(s.dsp_slices, 6_840);
        assert_eq!(s.bram_bytes, 44 * 1024 * 1024);
        assert!((s.clock.hz - 150.0e6).abs() < 1.0);
        assert_eq!(s.max_compute_units, 1024);
    }

    #[test]
    fn bandwidth_scaling_composes() {
        let s = FpgaSpec::vu9p();
        let double = s.with_bandwidth_scale(2.0);
        assert!((double.axi_bandwidth - 2.0 * s.axi_bandwidth).abs() < 1.0);
        let back = double.with_bandwidth_scale(0.5);
        assert!((back.axi_bandwidth - s.axi_bandwidth).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_scale_rejected() {
        let _ = FpgaSpec::vu9p().with_bandwidth_scale(0.0);
    }

    #[test]
    fn budget_per_thread_division() {
        let b = ResourceBudget {
            data_model_bytes: 1024,
            page_buffer_bytes: 64 * 1024,
            num_page_buffers: 2,
            num_aus: 64,
            num_acs: 8,
            num_threads: 4,
        };
        assert_eq!(b.aus_per_thread(), 16);
        assert_eq!(b.acs_per_thread(), 2);
    }

    #[test]
    fn budget_handles_zero_threads() {
        let b = ResourceBudget {
            data_model_bytes: 0,
            page_buffer_bytes: 0,
            num_page_buffers: 0,
            num_aus: 0,
            num_acs: 0,
            num_threads: 0,
        };
        assert_eq!(b.aus_per_thread(), 0);
        assert_eq!(b.acs_per_thread(), 0);
    }
}
