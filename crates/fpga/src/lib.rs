//! FPGA platform model for the DAnA reproduction.
//!
//! The paper (§7, Table 4) evaluates DAnA on a Xilinx Virtex UltraScale+
//! VU9P clocked at 150 MHz. This crate models the *platform* side of that
//! setup:
//!
//! * [`spec::FpgaSpec`] — the resource budget (LUTs, flip-flops, DSP slices,
//!   BRAM capacity) that the hardware generator divides between the access
//!   engine (page buffers + Striders) and the execution engine (AUs/ACs).
//! * [`axi::AxiLink`] — the host↔FPGA link (§5.1.1 uses AXI) with an
//!   effective-bandwidth model used for page and configuration transfers.
//! * [`clock::Clock`] — cycle↔time conversion for a fixed clock domain.
//!
//! Nothing in this crate executes instructions; the access engine and
//! execution engine live in `dana-strider` and `dana-engine`. This crate is
//! the single source of truth for *how much hardware there is* and *how fast
//! bytes move onto the chip*.

pub mod axi;
pub mod clock;
pub mod spec;

pub use axi::AxiLink;
pub use clock::{Clock, Cycles, Seconds};
pub use spec::{FpgaSpec, ResourceBudget};
