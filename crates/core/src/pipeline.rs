//! The DAnA system façade: catalog + buffer pool + compiler + accelerator.
//!
//! Mirrors Fig. 2's flow end-to-end:
//!
//! 1. [`Dana::deploy`] — the UDF is translated (hDFG), compiled (hardware
//!    generator + scheduler), and its artifacts — Strider instructions,
//!    engine design, schedule — are stored in the RDBMS catalog;
//! 2. [`Dana::execute`] — a SQL query names the UDF; the RDBMS side fills
//!    the buffer pool while the access engine walks the pages with Striders
//!    and the execution engine trains the model;
//! 3. the returned [`DanaReport`] carries the trained model and the
//!    simulated end-to-end timing with the pipeline-overlap semantics of
//!    [`crate::runtime`].

use dana_compiler::{
    compile, compile_with_threads, CompileInput, CompiledAccelerator, PerfEstimate,
};
use dana_engine::{BackendKind, EngineError, ExecutionBackend, ModelStore};
use dana_fpga::FpgaSpec;
use dana_hdfg::translate;
use dana_infer::MetricKind;
use dana_ml::CpuModel;
use dana_parallel::{
    evaluate_gang, packed_tuple_splits, score_gang_concat, split_replay_sources, train_gang,
    ReplaySource, ShardPlan,
};
use dana_scan::ScanSpec;
use dana_storage::{
    AcceleratorEntry, BufferPool, BufferPoolConfig, Catalog, DiskModel, HeapFile, HeapId, PageId,
    Tuple,
};
use dana_strider::{disassemble, AccessEngine, AccessStats};

use dana_obs::{MetricsRegistry, QueryTrace, SpanRecorder, StatEntry, StatsSnapshot};

use crate::advisor::{BackendChoice, HardwareProfile, StrategyComparison};
use crate::error::{DanaError, DanaResult};
use crate::exec::{self, ArtifactBlob, RunArtifacts, ShardArtifacts};
use crate::query::{parse_query, parse_statement, QueryCall, Statement};
use crate::report::{
    AnalyzeReport, DanaReport, DanaTiming, EvalReport, PointReport, PredictReport, QueryOutcome,
    Seconds, StatementOutcome,
};
use crate::runtime::ExecutionMode;
use crate::source::{FeedKind, PageStreamSource, ScanState};

pub use crate::exec::CPU_FEED_HANDSHAKE_S;

/// What `drop_table` reports back: everything the drop cleaned up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropSummary {
    pub table: String,
    /// Buffer-pool pages of the dropped heap that were evicted.
    pub pages_evicted: usize,
    /// Accelerators compiled against the table, now marked stale.
    pub invalidated_udfs: Vec<String>,
    /// Materialized prediction tables derived from this table, now stale
    /// (typed error on use; their pages are evicted too).
    pub stale_prediction_tables: Vec<String>,
}

/// What `deploy` reports back to the data scientist.
#[derive(Debug, Clone)]
pub struct DeployInfo {
    pub udf_name: String,
    pub num_threads: u16,
    pub acs_per_thread: u16,
    pub num_striders: u32,
    pub estimate: PerfEstimate,
    /// The generated Strider program, disassembled.
    pub strider_listing: String,
    /// Micro-instruction count of the engine schedule.
    pub micro_ops: usize,
}

/// The DAnA-enhanced database system.
pub struct Dana {
    catalog: Catalog,
    pool: BufferPool,
    disk: DiskModel,
    fpga: FpgaSpec,
    cpu: CpuModel,
    /// Per-backend throughput estimates the backend advisor prices
    /// `backend = auto` queries against.
    profile: HardwareProfile,
    /// Front-door counters and latency histograms (`SHOW STATS`).
    metrics: MetricsRegistry,
    /// The lifecycle-span recorder of the statement currently executing.
    /// Disabled (every call a no-op) except while a traced statement —
    /// `EXPLAIN ANALYZE` or `WITH (trace = on)` — is in flight.
    rec: SpanRecorder,
}

impl Dana {
    pub fn new(fpga: FpgaSpec, pool: BufferPoolConfig, disk: DiskModel) -> Dana {
        // The default system keeps the paper's behavior: every query
        // offloads (threshold 0 — DAnA has no CPU tier). Calibrating the
        // advisor, or installing a profile without a manual threshold,
        // enables the cost-based choice for `backend = auto`.
        let profile = HardwareProfile::default()
            .with_clock_hz(fpga.clock.hz)
            .with_offload_threshold(Some(0));
        Dana {
            catalog: Catalog::new(),
            pool: BufferPool::new(pool),
            disk,
            fpga,
            cpu: CpuModel::i7_6700(),
            profile,
            metrics: MetricsRegistry::new(),
            rec: SpanRecorder::disabled(),
        }
    }

    /// The paper's default setup: VU9P FPGA, 8 GB pool of 32 KB pages,
    /// SSD-class disk (§7).
    pub fn default_system() -> Dana {
        Dana::new(
            FpgaSpec::vu9p(),
            BufferPoolConfig::paper_default(),
            DiskModel::ssd(),
        )
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn fpga(&self) -> &FpgaSpec {
        &self.fpga
    }

    /// The backend advisor's hardware profile.
    pub fn hardware_profile(&self) -> &HardwareProfile {
        &self.profile
    }

    /// Replaces the advisor's hardware profile (tests pin decisions with
    /// synthetic profiles; operators can set a manual offload threshold).
    pub fn set_hardware_profile(&mut self, profile: HardwareProfile) {
        self.profile = profile;
    }

    /// Calibrates the advisor's CPU lane rate with the one-time
    /// microbench on this host and enables the break-even model for
    /// `backend = auto` (clearing the default always-offload threshold).
    pub fn calibrate_backend_advisor(&mut self) {
        self.profile.cpu_lane_ops_per_second = dana_engine::calibrate_cpu_lane_rate();
        self.profile.offload_threshold_rows = None;
    }

    pub fn pool_stats(&self) -> dana_storage::BufferPoolStats {
        self.pool.stats()
    }

    /// The front-door metrics registry (`SHOW STATS` reads it; tests
    /// assert against it directly).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A point-in-time statistics snapshot — the `SHOW STATS` result
    /// surface. Push-side counters and histograms come from the registry;
    /// pull-side values (buffer-pool state) are read from their
    /// authoritative owners at snapshot time so the numbers can never
    /// drift from what the subsystems themselves report.
    pub fn stats_snapshot(&self, subsystem: Option<&str>) -> StatsSnapshot {
        let mut entries = Vec::new();
        self.metrics.snapshot_into(&mut entries);
        let ps = self.pool.stats();
        entries.push(StatEntry::new("buffer", "hits", ps.hits as f64));
        entries.push(StatEntry::new("buffer", "misses", ps.misses as f64));
        entries.push(StatEntry::new("buffer", "evictions", ps.evictions as f64));
        entries.push(StatEntry::new("buffer", "io_seconds", ps.io_seconds));
        entries.push(StatEntry::new(
            "buffer",
            "resident_pages",
            self.pool.resident_pages() as f64,
        ));
        entries.push(StatEntry::new(
            "buffer",
            "resident_bytes",
            self.pool.resident_bytes() as f64,
        ));
        let mut per_heap = self.pool.per_heap_frames();
        per_heap.sort_unstable();
        for (heap_id, frames) in per_heap {
            entries.push(StatEntry::new(
                "buffer",
                format!("heap_{heap_id}_frames"),
                frames as f64,
            ));
        }
        let snap = StatsSnapshot::new(entries);
        match subsystem {
            Some(s) => snap.filtered(s),
            None => snap,
        }
    }

    /// Pages currently resident in the buffer pool (the drop paths must
    /// leave none behind for dropped or stale heaps).
    pub fn resident_pages(&self) -> usize {
        self.pool.resident_pages()
    }

    /// Registers a training table.
    pub fn create_table(&mut self, name: &str, heap: HeapFile) -> DanaResult<HeapId> {
        Ok(self.catalog.create_table(name, heap)?)
    }

    /// Drops a table: removes it from the catalog, evicts its pages from
    /// the buffer pool (a dropped table must not keep frames resident),
    /// marks every accelerator compiled against it stale, and marks every
    /// materialized prediction table derived from it stale (evicting
    /// their pages too — stale rows must not occupy frames).
    pub fn drop_table(&mut self, name: &str) -> DanaResult<DropSummary> {
        // Evict before touching the catalog so a pinned-page refusal
        // leaves the table fully intact.
        let heap_id = self.catalog.table(name)?.heap_id;
        let mut pages_evicted = self.pool.evict_heap(heap_id)?;
        // Compressed sidecar frames live under the heap's shadow id; a
        // drop must leave neither raw nor compressed pages resident.
        pages_evicted += self.pool.evict_heap(heap_id.shadow())?;
        self.catalog.drop_table(name)?;
        let invalidated_udfs = self.catalog.invalidate_accelerators_for(name);
        let mut stale_prediction_tables = Vec::new();
        for (table, derived_heap) in self.catalog.invalidate_derived_for(name) {
            self.pool.evict_heap(derived_heap)?;
            self.pool.evict_heap(derived_heap.shadow())?;
            stale_prediction_tables.push(table);
        }
        self.metrics
            .staleness_invalidations
            .add((invalidated_udfs.len() + stale_prediction_tables.len()) as u64);
        Ok(DropSummary {
            table: name.to_string(),
            pages_evicted,
            invalidated_udfs,
            stale_prediction_tables,
        })
    }

    /// Warm-cache setup: loads the table into the buffer pool without
    /// charging query I/O.
    pub fn prewarm(&mut self, table: &str) -> DanaResult<usize> {
        let entry = self.catalog.live_table(table)?;
        let heap_id = entry.heap_id;
        let heap = self.catalog.heap(heap_id)?;
        let n = self.pool.prewarm(heap_id, heap)?;
        self.pool.reset_stats();
        Ok(n)
    }

    /// Cold-cache setup: drops every cached page.
    pub fn clear_cache(&mut self) {
        self.pool.clear();
        self.pool.reset_stats();
    }

    /// Compiles a UDF for `table` and stores the accelerator in the
    /// catalog under the UDF's name. All expensive resolution happens
    /// here: the compiled engine (validated + lowered once) is installed
    /// on the entry's runtime cache — beside the *scoring lowering*, the
    /// forward-pass recipe PREDICT/EVALUATE bind to trained models — so
    /// EXECUTE never constructs an engine and scoring never re-derives.
    pub fn deploy(&mut self, spec: &dana_dsl::AlgoSpec, table: &str) -> DanaResult<DeployInfo> {
        let acc = self.compile_for(spec, table, None)?;
        // Scoring lowering: derive the forward pass where the analytic
        // has one (custom analytics without one still train fine; their
        // PREDICT is a typed error).
        let scoring = dana_infer::derive_recipe(spec).ok();
        let blob = ArtifactBlob::from_compiled(&acc, scoring.clone());
        let words = dana_strider::isa::encode_program(&acc.strider_program)?;
        let entry = AcceleratorEntry {
            udf_name: spec.name.clone(),
            strider_program: words,
            design_blob: blob.encode()?,
            merge_coef: spec.merge_coef(),
            num_threads: acc.design.num_threads as u32,
            description: format!(
                "{} threads × {} ACs, {} Striders",
                acc.design.num_threads, acc.design.acs_per_thread, acc.budget.num_page_buffers
            ),
            bound_table: table.to_string(),
            stale: false,
            runtime: dana_storage::RuntimeCache::default(),
            trained: dana_storage::RuntimeCache::default(),
        };
        exec::prime_runtime(&entry, &acc, scoring);
        self.catalog.deploy_accelerator(entry);
        Ok(DeployInfo {
            udf_name: spec.name.clone(),
            num_threads: acc.design.num_threads,
            acs_per_thread: acc.design.acs_per_thread,
            num_striders: acc.budget.num_page_buffers,
            estimate: acc.estimate,
            strider_listing: disassemble(&acc.strider_program),
            micro_ops: acc.design.program.micro_ops(),
        })
    }

    /// Parses DSL source text and deploys it (the paper's end-user path).
    pub fn deploy_source(
        &mut self,
        source: &str,
        default_name: &str,
        table: &str,
    ) -> DanaResult<DeployInfo> {
        let spec = dana_dsl::parse_udf(source, default_name)?;
        self.deploy(&spec, table)
    }

    /// Executes `SELECT * FROM dana.<udf>('<table>');` (or the same with
    /// a `WITH (shards = k, backend = …)` clause, routing through the
    /// gang-parallel path or the chosen execution backend).
    pub fn execute(&mut self, sql: &str) -> DanaResult<QueryOutcome> {
        let call = parse_query(sql)?;
        let report = self.run_train_call(&call)?;
        Ok(QueryOutcome {
            udf: call.udf,
            table: call.table,
            report,
        })
    }

    /// Executes any front-door statement: `SELECT … FROM dana.<udf>(…)`
    /// (train), `PREDICT … INTO …` (score + materialize), `EVALUATE …`
    /// (score + metric), `EXPLAIN <stmt>` (price the statement on every
    /// backend without running it), `EXPLAIN ANALYZE <stmt>` (run it and
    /// report the lifecycle trace), or `SHOW STATS` (metrics snapshot).
    pub fn execute_statement(&mut self, sql: &str) -> DanaResult<StatementOutcome> {
        Ok(self.execute_statement_traced(sql)?.0)
    }

    /// [`Dana::execute_statement`], returning the lifecycle trace beside
    /// the outcome when the statement opted in with `WITH (trace = on)`
    /// (`None` otherwise — tracing off is the free default).
    pub fn execute_statement_traced(
        &mut self,
        sql: &str,
    ) -> DanaResult<(StatementOutcome, Option<QueryTrace>)> {
        let parse_start = std::time::Instant::now();
        let stmt = parse_statement(sql)?;
        let parse_wall = parse_start.elapsed().as_secs_f64();
        let start = std::time::Instant::now();
        let result = if stmt.wants_trace() {
            let rec = SpanRecorder::enabled();
            exec::begin_trace(&rec, parse_wall, 0.0);
            self.rec = rec.clone();
            let outcome = self.execute_parsed(&stmt, parse_wall);
            self.rec = SpanRecorder::disabled();
            outcome.map(|outcome| {
                let total_sim = outcome.timing().map(|t| t.total_seconds).unwrap_or(0.0);
                let trace = exec::finish_trace(&rec, total_sim, start.elapsed().as_secs_f64());
                (outcome, trace)
            })
        } else {
            self.execute_parsed(&stmt, parse_wall).map(|o| (o, None))
        };
        self.record_statement_metrics(&result, start.elapsed().as_secs_f64());
        result
    }

    /// Dispatches one parsed statement. `parse_wall` is the measured
    /// parse time, forwarded so `EXPLAIN ANALYZE` can charge it to the
    /// trace's `parse` stage.
    fn execute_parsed(
        &mut self,
        stmt: &Statement,
        parse_wall: f64,
    ) -> DanaResult<StatementOutcome> {
        match stmt {
            Statement::Train(call) => {
                let report = self.run_train_call(call)?;
                Ok(StatementOutcome::Train(QueryOutcome {
                    udf: call.udf.clone(),
                    table: call.table.clone(),
                    report,
                }))
            }
            Statement::Predict(p) => {
                let backend = self.resolve_backend_for(stmt)?;
                let scan = p.scan.as_ref();
                Ok(StatementOutcome::Predict(match (p.shards, backend) {
                    (Some(k), _) if k > 1 => {
                        self.predict_sharded_scan(&p.udf, &p.table, &p.into, k, scan)?
                    }
                    (_, BackendKind::Cpu) => self.predict_full(
                        &p.udf,
                        &p.table,
                        &p.into,
                        ExecutionMode::Strider,
                        None,
                        BackendKind::Cpu,
                        scan,
                    )?,
                    _ => self.predict_full(
                        &p.udf,
                        &p.table,
                        &p.into,
                        ExecutionMode::Strider,
                        None,
                        BackendKind::Fpga,
                        scan,
                    )?,
                }))
            }
            Statement::PredictPoint(p) => {
                let backend = self.resolve_backend_for(stmt)?;
                Ok(StatementOutcome::Point(
                    self.predict_point(&p.udf, &p.rows, backend)?,
                ))
            }
            Statement::Evaluate(e) => {
                let backend = self.resolve_backend_for(stmt)?;
                let scan = e.scan.as_ref();
                Ok(StatementOutcome::Evaluate(match (e.shards, backend) {
                    (Some(k), _) if k > 1 => {
                        self.evaluate_sharded_scan(&e.udf, &e.table, e.metric, k, scan)?
                    }
                    (_, BackendKind::Cpu) => self.evaluate_full(
                        &e.udf,
                        &e.table,
                        e.metric,
                        ExecutionMode::Strider,
                        None,
                        BackendKind::Cpu,
                        scan,
                    )?,
                    _ => self.evaluate_full(
                        &e.udf,
                        &e.table,
                        e.metric,
                        ExecutionMode::Strider,
                        None,
                        BackendKind::Fpga,
                        scan,
                    )?,
                }))
            }
            Statement::Explain(inner) => Ok(StatementOutcome::Explain(self.explain(inner)?)),
            Statement::ExplainAnalyze(inner) => self.analyze(inner, parse_wall),
            Statement::ShowStats(filter) => Ok(StatementOutcome::Stats(
                self.stats_snapshot(filter.as_deref()),
            )),
        }
    }

    /// `EXPLAIN ANALYZE <stmt>`: executes the inner statement with an
    /// enabled span recorder installed, then packages the lifecycle trace
    /// beside the outcome and — where the advisor can price the statement
    /// — the per-backend prediction the observed run calibrates.
    fn analyze(&mut self, inner: &Statement, parse_wall: f64) -> DanaResult<StatementOutcome> {
        let rec = SpanRecorder::enabled();
        exec::begin_trace(&rec, parse_wall, 0.0);
        let start = std::time::Instant::now();
        self.rec = rec.clone();
        let result = self.execute_parsed(inner, 0.0);
        self.rec = SpanRecorder::disabled();
        let outcome = result?;
        let comparison = self.explain(inner).ok();
        let total_sim = outcome.timing().map(|t| t.total_seconds).unwrap_or(0.0);
        let trace = exec::finish_trace(&rec, total_sim, start.elapsed().as_secs_f64())
            .expect("enabled recorder yields a trace");
        Ok(StatementOutcome::Analyze(Box::new(AnalyzeReport {
            outcome,
            trace,
            comparison,
        })))
    }

    /// Folds one finished front-door statement into the metrics registry:
    /// completion/failure counters, the wall-clock histogram, the
    /// backend split, and epochs trained.
    fn record_statement_metrics<T>(&self, result: &DanaResult<(StatementOutcome, T)>, wall: f64) {
        match result {
            Ok((outcome, _)) => {
                self.metrics.queries_completed.inc();
                self.metrics.exec_wall.record(wall);
                match outcome.backend() {
                    Some(BackendKind::Fpga) => self.metrics.fpga_queries.inc(),
                    Some(BackendKind::Cpu) => self.metrics.cpu_queries.inc(),
                    None => {}
                }
                if let StatementOutcome::Train(o) = outcome {
                    self.metrics.epochs_run.add(o.report.epochs_run as u64);
                }
            }
            Err(_) => self.metrics.queries_failed.inc(),
        }
    }

    /// Runs one parsed training call on the substrate its `WITH` clause
    /// (or the advisor) picked: gang queries stay on the FPGA tier, CPU
    /// queries bypass the cycle model entirely.
    fn run_train_call(&mut self, call: &QueryCall) -> DanaResult<DanaReport> {
        let backend = self.resolve_backend_for(&Statement::Train(call.clone()))?;
        let scan = call.scan.as_ref();
        match (call.shards, backend) {
            (Some(k), _) if k > 1 => {
                self.train_sharded_scan(&call.udf, &call.table, ExecutionMode::Strider, k, scan)
            }
            (Some(k), BackendKind::Fpga) => {
                self.train_sharded_scan(&call.udf, &call.table, ExecutionMode::Strider, k, scan)
            }
            (_, BackendKind::Cpu) => self.run_udf_cpu_scan(&call.udf, &call.table, scan),
            (None, BackendKind::Fpga) => self.run_udf_scan(&call.udf, &call.table, scan),
        }
    }

    // ---- the backend advisor --------------------------------------------

    /// Prices a parsed statement on every backend without running it —
    /// the `EXPLAIN` entry point. Pass the *inner* statement (the parser
    /// already rejects nested EXPLAIN).
    pub fn explain(&mut self, stmt: &Statement) -> DanaResult<StrategyComparison> {
        let (cached, rows, columns) = self.advisor_inputs(stmt)?;
        exec::explain_statement(&self.profile, &cached, rows, columns, stmt)
    }

    /// Parses and explains one statement (`EXPLAIN`'s string front door).
    pub fn explain_sql(&mut self, sql: &str) -> DanaResult<StrategyComparison> {
        let stmt = match parse_statement(sql)? {
            Statement::Explain(inner) | Statement::ExplainAnalyze(inner) => *inner,
            other => other,
        };
        self.explain(&stmt)
    }

    /// The advisor's inputs for a statement: the cached accelerator
    /// runtime (stale-checked), the catalog's tuple count, and the table's
    /// column count (0 for the point form) — no data is touched.
    fn advisor_inputs(
        &self,
        stmt: &Statement,
    ) -> DanaResult<(std::sync::Arc<exec::CachedAccelerator>, u64, usize)> {
        let (udf, table) = match stmt {
            Statement::Train(c) => (&c.udf, Some(&c.table)),
            Statement::Predict(p) => (&p.udf, Some(&p.table)),
            // The point form scores its literal rows — no table to count.
            Statement::PredictPoint(p) => (&p.udf, None),
            Statement::Evaluate(e) => (&e.udf, Some(&e.table)),
            Statement::Explain(_) | Statement::ExplainAnalyze(_) => {
                return Err(DanaError::Query("EXPLAIN cannot be nested".to_string()))
            }
            Statement::ShowStats(_) => {
                return Err(DanaError::Query(
                    "SHOW STATS has no execution backend".to_string(),
                ))
            }
        };
        let entry = self.catalog.accelerator(udf)?;
        if entry.stale {
            return Err(DanaError::StaleAccelerator {
                udf: udf.to_string(),
                dropped_table: entry.bound_table.clone(),
            });
        }
        let (cached, _built) = exec::cached_accelerator(entry)?;
        let (rows, columns) = match (table, stmt) {
            (Some(table), _) => {
                let t = self.catalog.live_table(table)?;
                let columns = self.catalog.heap(t.heap_id)?.schema().len();
                (t.tuple_count, columns)
            }
            (None, Statement::PredictPoint(p)) => (p.rows.len() as u64, 0),
            (None, _) => unreachable!("only the point form has no table"),
        };
        Ok((cached, rows, columns))
    }

    /// Resolves the substrate one statement runs on: a `WITH (backend=…)`
    /// override wins; `auto` asks the advisor; a gang (shards > 1) pins
    /// the FPGA tier, and forcing CPU alongside one is a typed error.
    fn resolve_backend_for(&self, stmt: &Statement) -> DanaResult<BackendKind> {
        // Gang rules and explicit overrides resolve without touching the
        // catalog; only `auto` on a serial statement prices the workload.
        let (requested, shards) = match stmt {
            Statement::Train(c) => (c.backend, c.shards),
            Statement::Predict(p) => (p.backend, p.shards),
            Statement::PredictPoint(p) => (p.backend, None),
            Statement::Evaluate(e) => (e.backend, e.shards),
            Statement::Explain(_) | Statement::ExplainAnalyze(_) => {
                return Err(DanaError::Query("EXPLAIN cannot be nested".to_string()))
            }
            Statement::ShowStats(_) => {
                return Err(DanaError::Query(
                    "SHOW STATS has no execution backend".to_string(),
                ))
            }
        };
        if shards.is_some_and(|k| k > 1) {
            return match requested {
                BackendChoice::Cpu => Err(exec::gang_needs_fpga()),
                _ => Ok(BackendKind::Fpga),
            };
        }
        match requested {
            BackendChoice::Fpga => Ok(BackendKind::Fpga),
            BackendChoice::Cpu => Ok(BackendKind::Cpu),
            BackendChoice::Auto => {
                let (cached, rows, columns) = self.advisor_inputs(stmt)?;
                exec::resolve_backend(&self.profile, &cached, rows, columns, stmt)
            }
        }
    }

    /// Runs a deployed accelerator by UDF name (full-Strider mode).
    ///
    /// The EXECUTE hot path: the engine comes out of the entry's runtime
    /// cache, primed at DEPLOY — no blob decode, no validation, no
    /// lowering, no design clone per query. The trained model is stored
    /// back on the catalog entry (last training wins), making it
    /// available to PREDICT/EVALUATE.
    pub fn run_udf(&mut self, udf: &str, table: &str) -> DanaResult<DanaReport> {
        self.run_udf_scan(udf, table, None)
    }

    /// [`Dana::run_udf`] with an optional pushdown scan spec (the SQL
    /// front door's `WHERE` / `COLUMNS` clauses): training sees only the
    /// filtered, projected tuple stream.
    fn run_udf_scan(
        &mut self,
        udf: &str,
        table: &str,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<DanaReport> {
        let entry = self.catalog.accelerator(udf)?;
        if entry.stale {
            // The accelerator's Strider program walks a page layout whose
            // table has been dropped — refuse with a typed error instead
            // of letting the lookup dangle into `UnknownHeap`.
            return Err(DanaError::StaleAccelerator {
                udf: udf.to_string(),
                dropped_table: entry.bound_table.clone(),
            });
        }
        let (cached, _built) = exec::cached_accelerator(entry)?;
        // Exercise the catalog round trip: the stored Strider words must
        // decode back into a program.
        let decoded = dana_strider::isa::decode_program(&entry.strider_program)?;
        debug_assert!(!decoded.is_empty());
        let report = self.run_with_engine(&cached, table, ExecutionMode::Strider, scan)?;
        exec::store_trained(self.catalog.accelerator(udf)?, &report);
        Ok(report)
    }

    /// Runs a deployed accelerator's lowered program on the **native CPU
    /// backend** (`… WITH (backend = cpu)`, or `auto` below break-even):
    /// the identical streamed scan and epoch loop, timed with a stopwatch
    /// instead of the cycle model. Models and engine counters are
    /// bit-identical to [`Dana::run_udf`]; the report's timing is
    /// wall-clock only and no accelerator resources are charged.
    pub fn run_udf_cpu(&mut self, udf: &str, table: &str) -> DanaResult<DanaReport> {
        self.run_udf_cpu_scan(udf, table, None)
    }

    /// [`Dana::run_udf_cpu`] with an optional pushdown scan spec.
    fn run_udf_cpu_scan(
        &mut self,
        udf: &str,
        table: &str,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<DanaReport> {
        let entry = self.catalog.accelerator(udf)?;
        if entry.stale {
            return Err(DanaError::StaleAccelerator {
                udf: udf.to_string(),
                dropped_table: entry.bound_table.clone(),
            });
        }
        let (cached, _built) = exec::cached_accelerator(entry)?;
        let design = cached.engine.design();
        let table_entry = self.catalog.live_table(table)?;
        let heap_id = table_entry.heap_id;
        let heap = self.catalog.heap(heap_id)?;
        let access = exec::access_engine_for(heap, cached.budget, &self.fpga);
        let state = exec::scan_state(table_entry, heap, scan)?;
        let mut store = ModelStore::new(design, exec::initial_models(design))?;
        let feed = FeedKind::for_mode(ExecutionMode::Strider);
        let base = PageStreamSource::new(&mut self.pool, &self.disk, heap, heap_id, &access, feed);
        let mut source = match &state {
            Some(s) => base.with_scan(s.clone()),
            None => base,
        };
        let run = cached.cpu.run_training(&mut source, &mut store)?;
        let access_stats = source.into_stats();
        if let Some(s) = &state {
            exec::record_scan_metrics(&self.metrics, &access_stats, &s.sidecar, heap.tuple_count());
        }
        let report = exec::assemble_cpu_report(design, run, access_stats, store, &self.rec);
        exec::store_trained(self.catalog.accelerator(udf)?, &report);
        Ok(report)
    }

    // ---- intra-query data parallelism -----------------------------------

    /// Runs a deployed accelerator gang-parallel across `shards`
    /// page-range shards of `table` (`EXECUTE … WITH (shards = k)`): each
    /// shard trains one epoch of the cached lowered program, partial
    /// models merge deterministically at every epoch boundary (weighted
    /// averaging for dense analytics, factor-row ownership for LRMF), and
    /// the merged model trains the next epoch. `shards = 1` is
    /// bit-identical to [`Dana::run_udf`].
    ///
    /// The serial facade owns a `&mut` buffer pool, so shard extraction
    /// happens up front (each range streamed once, charged exactly like a
    /// first scan) and the gang trains from replaying shard caches — the
    /// simulated timing still models the gang's critical path.
    pub fn run_udf_sharded(
        &mut self,
        udf: &str,
        table: &str,
        shards: u16,
    ) -> DanaResult<DanaReport> {
        self.train_sharded_with(udf, table, ExecutionMode::Strider, shards)
    }

    /// [`Dana::run_udf_sharded`]'s engine room, mode-generic (the
    /// ablation/differential suites drive CpuFed/Tabla through it too).
    pub fn train_sharded_with(
        &mut self,
        udf: &str,
        table: &str,
        mode: ExecutionMode,
        shards: u16,
    ) -> DanaResult<DanaReport> {
        self.train_sharded_scan(udf, table, mode, shards, None)
    }

    /// [`Dana::train_sharded_with`] with an optional pushdown scan spec:
    /// the filtered stream is extracted once and the surviving tuples are
    /// re-split at packed page boundaries, so the gang's merge schedule is
    /// identical to training on a pre-materialized filtered table.
    fn train_sharded_scan(
        &mut self,
        udf: &str,
        table: &str,
        mode: ExecutionMode,
        shards: u16,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<DanaReport> {
        let entry = self.catalog.accelerator(udf)?;
        if entry.stale {
            return Err(DanaError::StaleAccelerator {
                udf: udf.to_string(),
                dropped_table: entry.bound_table.clone(),
            });
        }
        let (cached, _built) = exec::cached_accelerator(entry)?;
        let report = self.run_gang_with_engine(&cached, table, mode, shards, scan)?;
        exec::store_trained(self.catalog.accelerator(udf)?, &report);
        Ok(report)
    }

    /// Compiles `spec` ad hoc and trains it gang-parallel in the given
    /// mode (the differential suite's mode-matrix entry point; nothing is
    /// stored in the catalog) — the sharded twin of
    /// [`Dana::train_with_spec`]. `shards = 1` is bit-identical to it.
    pub fn train_with_spec_sharded(
        &mut self,
        spec: &dana_dsl::AlgoSpec,
        table: &str,
        mode: ExecutionMode,
        shards: u16,
    ) -> DanaResult<DanaReport> {
        let threads = match mode {
            ExecutionMode::Tabla => Some(1),
            _ => None,
        };
        let acc = self.compile_for(spec, table, threads)?;
        self.run_gang_with_engine(
            &exec::CachedAccelerator::from_compiled(&acc, None),
            table,
            mode,
            shards,
            None,
        )
    }

    fn run_gang_with_engine(
        &mut self,
        acc: &exec::CachedAccelerator,
        table: &str,
        mode: ExecutionMode,
        shards: u16,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<DanaReport> {
        let budget = acc.budget;
        let engine = &acc.engine;
        let design = engine.design();
        let entry = self.catalog.live_table(table)?;
        let heap_id = entry.heap_id;
        let heap = self.catalog.heap(heap_id)?;
        let access = exec::access_engine_for(heap, budget, &self.fpga);
        let state = exec::scan_state(entry, heap, scan)?;
        let (mut sources, scans) = shard_replay_sources(
            &mut self.pool,
            &self.disk,
            heap,
            heap_id,
            &access,
            FeedKind::for_mode(mode),
            shards as usize,
            state.as_ref(),
            &self.metrics,
        )?;
        let init = exec::initial_models(design);
        let outcome = train_gang(engine, &mut sources, init)?;
        let arts = outcome
            .shard_stats
            .iter()
            .zip(&scans)
            .map(|(stats, (access_stats, io_first))| ShardArtifacts {
                engine_stats: *stats,
                access_stats: *access_stats,
                io_first: *io_first,
            })
            .collect();
        exec::assemble_gang_report(
            mode,
            design,
            budget,
            &self.fpga,
            &self.cpu,
            &self.disk,
            self.pool.config().frames(),
            heap,
            arts,
            outcome.merge_cycles,
            outcome.models,
            &self.rec,
        )
    }

    /// Gang-parallel PREDICT (`PREDICT … INTO … WITH (shards = k)`):
    /// shards score concurrently, outputs concatenate in shard-index
    /// order (= source page order), and the materialized prediction table
    /// is **bit-identical to serial PREDICT for every shard count**.
    pub fn predict_sharded(
        &mut self,
        udf: &str,
        source: &str,
        dest: &str,
        shards: u16,
    ) -> DanaResult<PredictReport> {
        self.predict_sharded_scan(udf, source, dest, shards, None)
    }

    /// [`Dana::predict_sharded`] with an optional pushdown scan spec:
    /// shards score the filtered stream and the materialized table keeps
    /// only surviving tuples and projected columns.
    fn predict_sharded_scan(
        &mut self,
        udf: &str,
        source: &str,
        dest: &str,
        shards: u16,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<PredictReport> {
        let setup = self.scoring_setup(udf, ExecutionMode::Strider, None)?;
        if self.catalog.table(dest).is_ok() {
            return Err(DanaError::Storage(
                dana_storage::StorageError::DuplicateName(dest.to_string()),
            ));
        }
        let (predictions, timing, stats, k) =
            self.sharded_scoring_scan(&setup, source, shards, scan, |program, lanes, sources| {
                Ok(score_gang_concat(program, lanes, sources)?)
            })?;
        let entry = self.catalog.live_table(source)?;
        let heap = self.catalog.heap(entry.heap_id)?;
        let mat_start = std::time::Instant::now();
        let out_heap = exec::materialize_predictions(entry, heap, scan, &predictions)?;
        self.catalog.create_derived_table(dest, out_heap, source)?;
        self.rec
            .add_wall(exec::stage::MATERIALIZE, mat_start.elapsed().as_secs_f64());
        Ok(PredictReport {
            udf: udf.to_string(),
            source_table: source.to_string(),
            output_table: dest.to_string(),
            rows_scored: stats.tuples,
            lanes: setup.lanes,
            shards: k,
            backend: BackendKind::Fpga,
            scoring: stats,
            timing,
        })
    }

    /// Gang-parallel EVALUATE: shards fold their metric partials
    /// concurrently; partials combine in shard-index order and the metric
    /// finishes once. `shards = 1` is bit-identical to serial EVALUATE.
    pub fn evaluate_sharded(
        &mut self,
        udf: &str,
        table: &str,
        metric: Option<MetricKind>,
        shards: u16,
    ) -> DanaResult<EvalReport> {
        self.evaluate_sharded_scan(udf, table, metric, shards, None)
    }

    /// [`Dana::evaluate_sharded`] with an optional pushdown scan spec.
    fn evaluate_sharded_scan(
        &mut self,
        udf: &str,
        table: &str,
        metric: Option<MetricKind>,
        shards: u16,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<EvalReport> {
        let setup = self.scoring_setup(udf, ExecutionMode::Strider, None)?;
        let metric = metric.unwrap_or_else(|| setup.recipe.default_metric());
        setup.recipe.check_metric(metric)?;
        let (value, timing, stats, k) =
            self.sharded_scoring_scan(&setup, table, shards, scan, |program, lanes, sources| {
                let evals = evaluate_gang(program, lanes, sources, metric)?;
                let mut partial = dana_infer::MetricPartial::default();
                for e in &evals {
                    partial.absorb(e.partial);
                }
                let stats: Vec<_> = evals.iter().map(|e| e.stats).collect();
                Ok((partial.finish(metric)?, stats))
            })?;
        Ok(EvalReport {
            udf: udf.to_string(),
            table: table.to_string(),
            metric,
            value,
            rows_scored: stats.tuples,
            lanes: setup.lanes,
            shards: k,
            backend: BackendKind::Fpga,
            scoring: stats,
            timing,
        })
    }

    /// Gang-parallel raw scoring (differential-suite entry point).
    pub fn score_sharded(&mut self, udf: &str, table: &str, shards: u16) -> DanaResult<Vec<f32>> {
        let setup = self.scoring_setup(udf, ExecutionMode::Strider, None)?;
        let (predictions, _, _, _) =
            self.sharded_scoring_scan(&setup, table, shards, None, |program, lanes, sources| {
                Ok(score_gang_concat(program, lanes, sources)?)
            })?;
        Ok(predictions)
    }

    /// The one sharded scoring scan: plan page ranges, extract each range
    /// into a replaying shard source, run `scan` (scoring or metric fold)
    /// over the gang, and compose the gang timing. Shared by
    /// predict/evaluate/score so the shard plumbing exists exactly once.
    fn sharded_scoring_scan<R>(
        &mut self,
        setup: &exec::ScoringSetup,
        table: &str,
        shards: u16,
        scan: Option<&ScanSpec>,
        run: impl FnOnce(
            &dana_infer::ScoringProgram,
            u16,
            &mut [ReplaySource],
        ) -> DanaResult<(R, Vec<dana_infer::ScoringStats>)>,
    ) -> DanaResult<(R, crate::report::DanaTiming, dana_infer::ScoringStats, u16)> {
        let mode = ExecutionMode::Strider;
        let entry = self.catalog.live_table(table)?;
        let heap_id = entry.heap_id;
        let heap = self.catalog.heap(heap_id)?;
        let access = exec::access_engine_for(heap, setup.cached.budget, &self.fpga);
        let state = exec::scan_state(entry, heap, scan)?;
        let (mut sources, scans) = shard_replay_sources(
            &mut self.pool,
            &self.disk,
            heap,
            heap_id,
            &access,
            FeedKind::for_mode(mode),
            shards as usize,
            state.as_ref(),
            &self.metrics,
        )?;
        let shard_count = sources.len() as u16;
        let (result, stats) = run(&setup.program, setup.lanes, &mut sources)?;
        let arts: Vec<ShardArtifacts> = scans
            .into_iter()
            .map(|(access_stats, io_first)| ShardArtifacts {
                engine_stats: Default::default(),
                access_stats,
                io_first,
            })
            .collect();
        let (timing, combined) = exec::assemble_gang_scoring_timing(
            mode,
            setup.cached.budget,
            &self.fpga,
            &self.cpu,
            &self.disk,
            self.pool.config().frames(),
            heap,
            &arts,
            &stats,
            &self.rec,
        );
        Ok((result, timing, combined, shard_count))
    }

    // ---- the inference tier --------------------------------------------

    /// Scores `source` with `udf`'s latest trained model and materializes
    /// the predictions as a new catalog table `dest`: the source schema
    /// plus an appended `prediction real` column, registered as a real
    /// heap — scannable, snapshottable, and droppable like any table.
    pub fn predict(&mut self, udf: &str, source: &str, dest: &str) -> DanaResult<PredictReport> {
        self.predict_with(udf, source, dest, ExecutionMode::Strider, None)
    }

    /// [`Dana::predict`] with explicit execution mode and lockstep lane
    /// count (the ablation / differential-suite entry point). Lanes
    /// default to the deployed design's thread count; TABLA mode is
    /// single-lane, like training.
    pub fn predict_with(
        &mut self,
        udf: &str,
        source: &str,
        dest: &str,
        mode: ExecutionMode,
        lanes: Option<u16>,
    ) -> DanaResult<PredictReport> {
        self.predict_full(udf, source, dest, mode, lanes, BackendKind::Fpga, None)
    }

    /// `PREDICT … WITH (backend = cpu)`: the identical scoring scan with
    /// stopwatch accounting — the materialized predictions are
    /// bit-identical to the FPGA tier's.
    pub fn predict_cpu(
        &mut self,
        udf: &str,
        source: &str,
        dest: &str,
    ) -> DanaResult<PredictReport> {
        self.predict_full(
            udf,
            source,
            dest,
            ExecutionMode::Strider,
            None,
            BackendKind::Cpu,
            None,
        )
    }

    /// Point-form `PREDICT dana.<udf>(VALUES ...)`: binds the literal
    /// rows straight into the cached scoring program and scores them as
    /// one in-memory SoA batch — no heap scan, no buffer-pool traffic,
    /// nothing materialized. Bit-identical to the materializing path on
    /// the same rows because the identical SoA executor runs in both.
    pub fn predict_point(
        &mut self,
        udf: &str,
        rows: &[Vec<f32>],
        backend: BackendKind,
    ) -> DanaResult<PointReport> {
        let setup = self.scoring_setup(udf, ExecutionMode::Strider, None)?;
        let batch = exec::point_batch(udf, &setup.program, rows)?;
        let start = std::time::Instant::now();
        let (predictions, stats) = dana_infer::score_batch(&setup.program, setup.lanes, &batch)?;
        let wall = start.elapsed().as_secs_f64();
        let timing = exec::point_timing(backend, &stats, wall, &self.fpga);
        match backend {
            BackendKind::Cpu => exec::record_cpu_spans(&self.rec, wall),
            BackendKind::Fpga => self.rec.add_sim(exec::stage::ENGINE, timing.engine_seconds),
        }
        Ok(PointReport {
            udf: udf.to_string(),
            predictions,
            lanes: setup.lanes,
            backend,
            cached: false,
            scoring: stats,
            timing,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn predict_full(
        &mut self,
        udf: &str,
        source: &str,
        dest: &str,
        mode: ExecutionMode,
        lanes: Option<u16>,
        backend: BackendKind,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<PredictReport> {
        let setup = self.scoring_setup(udf, mode, lanes)?;
        // Refuse an existing destination before scanning anything.
        if self.catalog.table(dest).is_ok() {
            return Err(DanaError::Storage(
                dana_storage::StorageError::DuplicateName(dest.to_string()),
            ));
        }
        let (predictions, stats, timing) =
            self.scoring_scan(&setup, source, mode, backend, scan, |p, l, stream| {
                let mut out = Vec::new();
                let stats = dana_infer::score_source(p, l, stream, &mut out)?;
                Ok((out, stats))
            })?;
        let entry = self.catalog.live_table(source)?;
        let heap = self.catalog.heap(entry.heap_id)?;
        let mat_start = std::time::Instant::now();
        let out_heap = exec::materialize_predictions(entry, heap, scan, &predictions)?;
        self.catalog.create_derived_table(dest, out_heap, source)?;
        self.rec
            .add_wall(exec::stage::MATERIALIZE, mat_start.elapsed().as_secs_f64());
        Ok(PredictReport {
            udf: udf.to_string(),
            source_table: source.to_string(),
            output_table: dest.to_string(),
            rows_scored: stats.tuples,
            lanes: setup.lanes,
            shards: 1,
            backend,
            scoring: stats,
            timing,
        })
    }

    /// Scores `table` and folds an in-database quality metric over the
    /// `(prediction, label)` stream — no tuple ever leaves the engine and
    /// nothing is materialized. `metric` defaults to the analytic's
    /// natural one (mse / log_loss / accuracy / lrmf_rmse).
    pub fn evaluate(
        &mut self,
        udf: &str,
        table: &str,
        metric: Option<MetricKind>,
    ) -> DanaResult<EvalReport> {
        self.evaluate_with(udf, table, metric, ExecutionMode::Strider, None)
    }

    /// [`Dana::evaluate`] with explicit execution mode and lane count.
    pub fn evaluate_with(
        &mut self,
        udf: &str,
        table: &str,
        metric: Option<MetricKind>,
        mode: ExecutionMode,
        lanes: Option<u16>,
    ) -> DanaResult<EvalReport> {
        self.evaluate_full(udf, table, metric, mode, lanes, BackendKind::Fpga, None)
    }

    /// `EVALUATE … WITH (backend = cpu)`: the identical metric fold with
    /// stopwatch accounting.
    pub fn evaluate_cpu(
        &mut self,
        udf: &str,
        table: &str,
        metric: Option<MetricKind>,
    ) -> DanaResult<EvalReport> {
        self.evaluate_full(
            udf,
            table,
            metric,
            ExecutionMode::Strider,
            None,
            BackendKind::Cpu,
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn evaluate_full(
        &mut self,
        udf: &str,
        table: &str,
        metric: Option<MetricKind>,
        mode: ExecutionMode,
        lanes: Option<u16>,
        backend: BackendKind,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<EvalReport> {
        let setup = self.scoring_setup(udf, mode, lanes)?;
        let metric = metric.unwrap_or_else(|| setup.recipe.default_metric());
        setup.recipe.check_metric(metric)?;
        let (value, stats, timing) =
            self.scoring_scan(&setup, table, mode, backend, scan, |p, l, stream| {
                dana_infer::evaluate_source(p, l, stream, metric)
            })?;
        Ok(EvalReport {
            udf: udf.to_string(),
            table: table.to_string(),
            metric,
            value,
            rows_scored: stats.tuples,
            lanes: setup.lanes,
            shards: 1,
            backend,
            scoring: stats,
            timing,
        })
    }

    /// Scores `table` and returns the raw prediction stream (differential
    /// suite / ablation entry point; nothing is materialized).
    pub fn score_with(
        &mut self,
        udf: &str,
        table: &str,
        mode: ExecutionMode,
        lanes: Option<u16>,
    ) -> DanaResult<Vec<f32>> {
        let setup = self.scoring_setup(udf, mode, lanes)?;
        let (predictions, _, _) = self.scoring_scan(
            &setup,
            table,
            mode,
            BackendKind::Fpga,
            None,
            |p, l, stream| {
                let mut out = Vec::new();
                let stats = dana_infer::score_source(p, l, stream, &mut out)?;
                Ok((out, stats))
            },
        )?;
        Ok(predictions)
    }

    /// Resolves everything a scoring query needs from the catalog (the
    /// stale check, the cached accelerator, the recipe bound to the
    /// latest trained models, the lane count) — see
    /// [`exec::scoring_setup`].
    fn scoring_setup(
        &self,
        udf: &str,
        mode: ExecutionMode,
        lanes: Option<u16>,
    ) -> DanaResult<exec::ScoringSetup> {
        let entry = self.catalog.accelerator(udf)?;
        if entry.stale {
            return Err(DanaError::StaleAccelerator {
                udf: udf.to_string(),
                dropped_table: entry.bound_table.clone(),
            });
        }
        let (cached, _built) = exec::cached_accelerator(entry)?;
        exec::scoring_setup(udf, entry, cached, mode, lanes)
    }

    /// The one scoring scan: stream `table`'s pages through the data path
    /// into `run` (which drives the SoA scorer — collecting predictions
    /// or folding a metric) and account its cost for `backend` — the
    /// composed cycle-model timing on the FPGA tier, a stopwatch around
    /// the scan ([`DanaTiming::wall_only`]) on the CPU tier. Shared by
    /// predict/evaluate/score so the scan plumbing exists exactly once.
    fn scoring_scan<R>(
        &mut self,
        setup: &exec::ScoringSetup,
        table: &str,
        mode: ExecutionMode,
        backend: BackendKind,
        scan: Option<&ScanSpec>,
        run: impl FnOnce(
            &dana_infer::ScoringProgram,
            u16,
            &mut PageStreamSource<'_>,
        ) -> dana_infer::InferResult<(R, dana_infer::ScoringStats)>,
    ) -> DanaResult<(R, dana_infer::ScoringStats, crate::report::DanaTiming)> {
        let entry = self.catalog.live_table(table)?;
        let heap_id = entry.heap_id;
        let heap = self.catalog.heap(heap_id)?;
        let access = exec::access_engine_for(heap, setup.cached.budget, &self.fpga);
        let state = exec::scan_state(entry, heap, scan)?;
        let io_before = self.pool.stats().io_seconds;
        let feed = FeedKind::for_mode(mode);
        let base = PageStreamSource::new(&mut self.pool, &self.disk, heap, heap_id, &access, feed);
        let mut stream = match &state {
            Some(s) => base.with_scan(s.clone()),
            None => base,
        };
        let start = std::time::Instant::now();
        let (result, stats) = run(&setup.program, setup.lanes, &mut stream)?;
        let wall = start.elapsed().as_secs_f64();
        let access_stats = stream.into_stats();
        if let Some(s) = &state {
            exec::record_scan_metrics(&self.metrics, &access_stats, &s.sidecar, heap.tuple_count());
        }
        let io_first = self.pool.stats().io_seconds - io_before;
        let timing = match backend {
            BackendKind::Cpu => {
                exec::record_cpu_spans(&self.rec, wall);
                DanaTiming::wall_only(wall)
            }
            BackendKind::Fpga => exec::assemble_scoring_timing(
                mode,
                setup.cached.budget,
                &self.fpga,
                &self.cpu,
                &self.disk,
                self.pool.config().frames(),
                heap,
                &access_stats,
                io_first,
                &stats,
                &self.rec,
            ),
        };
        Ok((result, stats, timing))
    }

    /// Compiles a spec ad hoc and runs it in the given mode (the Fig. 11 /
    /// Fig. 16 ablation entry point; nothing is stored in the catalog).
    /// The engine is the one the compiler already built — no second
    /// construction.
    pub fn train_with_spec(
        &mut self,
        spec: &dana_dsl::AlgoSpec,
        table: &str,
        mode: ExecutionMode,
    ) -> DanaResult<DanaReport> {
        let threads = match mode {
            ExecutionMode::Tabla => Some(1),
            _ => None,
        };
        let acc = self.compile_for(spec, table, threads)?;
        self.run_with_engine(
            &exec::CachedAccelerator::from_compiled(&acc, None),
            table,
            mode,
            None,
        )
    }

    fn compile_for(
        &self,
        spec: &dana_dsl::AlgoSpec,
        table: &str,
        threads: Option<u32>,
    ) -> DanaResult<CompiledAccelerator> {
        let (entry, heap) = self.catalog.table_heap(table)?;
        let hdfg = translate(spec);
        let input = CompileInput {
            hdfg: &hdfg,
            fpga: self.fpga,
            layout: *heap.layout(),
            schema_columns: heap.schema().len(),
            expected_tuples: entry.tuple_count,
        };
        Ok(match threads {
            Some(t) => compile_with_threads(&input, t)?,
            None => compile(&input)?,
        })
    }

    fn run_with_engine(
        &mut self,
        acc: &exec::CachedAccelerator,
        table: &str,
        mode: ExecutionMode,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<DanaReport> {
        let budget = acc.budget;
        let engine = &acc.engine;
        let design = engine.design();
        let entry = self.catalog.live_table(table)?;
        let heap_id = entry.heap_id;
        let heap = self.catalog.heap(heap_id)?;
        let access = exec::access_engine_for(heap, budget, &self.fpga);
        let state = exec::scan_state(entry, heap, scan)?;
        let pool = &mut self.pool;

        // ---- compute path, fed by the streaming data path ---------------
        // The shared, deploy-time-built engine pulls flat batches
        // page-by-page out of the buffer pool: fetch → extract (Striders
        // or CPU, per mode) → train interleave with no full-table
        // materialization (Fig. 2).
        let mut store = ModelStore::new(design, exec::initial_models(design))?;
        let io_before = pool.stats().io_seconds;
        let feed = FeedKind::for_mode(mode);
        let base = PageStreamSource::new(pool, &self.disk, heap, heap_id, &access, feed);
        let mut source = match &state {
            Some(s) => base.with_scan(s.clone()),
            None => base,
        };
        let (stats, epoch_cycles) = engine.run_training_logged(&mut source, &mut store)?;
        let access_stats = source.into_stats();
        if let Some(s) = &state {
            exec::record_scan_metrics(&self.metrics, &access_stats, &s.sidecar, heap.tuple_count());
        }
        let io_first = pool.stats().io_seconds - io_before;

        // ---- timing composition (shared with the serving tier) -----------
        let pool_frames = pool.config().frames();
        Ok(exec::assemble_report(
            mode,
            design,
            budget,
            &self.fpga,
            &self.cpu,
            &self.disk,
            pool_frames,
            heap,
            RunArtifacts {
                engine_stats: stats,
                access_stats,
                io_first,
                epoch_cycles,
            },
            store,
            &self.rec,
        ))
    }

    /// Reference data path, retained for differential testing: compiles
    /// `spec` like [`Dana::train_with_spec`] but materializes the entire
    /// table as per-tuple `Vec<f32>` rows first (the pre-streaming
    /// pipeline) and trains via the engine's reference rows path. The
    /// equivalence suite holds this and the streaming path to bit-identical
    /// models; it reports models only — no timing.
    pub fn train_with_spec_reference(
        &mut self,
        spec: &dana_dsl::AlgoSpec,
        table: &str,
        mode: ExecutionMode,
    ) -> DanaResult<Vec<Vec<f32>>> {
        let threads = match mode {
            ExecutionMode::Tabla => Some(1),
            _ => None,
        };
        let acc = self.compile_for(spec, table, threads)?;
        let entry = self.catalog.live_table(table)?;
        let heap_id = entry.heap_id;
        let heap = self.catalog.heap(heap_id)?;
        let pool = &mut self.pool;
        let access = exec::access_engine_for(heap, acc.budget, &self.fpga);

        // Full-table materialization: one heap allocation per tuple.
        let mut tuples: Vec<Vec<f32>> = Vec::with_capacity(heap.tuple_count() as usize);
        for page_no in 0..heap.page_count() {
            let (frame, _) = pool.fetch(PageId::new(heap_id, page_no), heap, &self.disk)?;
            let bytes = pool.frame_bytes(frame);
            if mode.uses_striders() {
                let (page_tuples, _) = access.extract_page_rows(bytes)?;
                tuples.extend(page_tuples.into_iter().map(|t| t.values));
            } else {
                let page = dana_storage::HeapPage::from_bytes(bytes.to_vec(), *heap.layout())?;
                for slot in 0..page.tuple_count() {
                    let t = Tuple::deform(heap.schema(), page.tuple_bytes(slot)?)?;
                    tuples.push(t.values.iter().map(|d| d.as_f32()).collect());
                }
            }
            pool.unpin(frame);
        }

        let mut store = ModelStore::new(&acc.design, exec::initial_models(&acc.design))?;
        acc.engine.run_training_rows(&tuples, &mut store)?;
        Ok(store.into_values())
    }
}

/// One shard's first-scan measurements: extraction stats plus the disk
/// seconds the scan was charged.
type ShardScan = (AccessStats, Seconds);

/// Extracts every shard's page range once through the serial buffer pool
/// (identical fetch → extract sequence and per-page batch boundaries to a
/// streaming first scan, with its disk seconds metered per shard) and
/// wraps the batches as replaying gang sources.
///
/// With a pushdown scan attached the whole table is streamed **once**
/// through the filter, and the surviving tuples are re-split at the page
/// boundaries a pre-materialized filtered table would have — so shard
/// contents (and therefore the gang's merged models) are bit-identical to
/// sharding that table, and the shard count never exceeds its page count.
#[allow(clippy::too_many_arguments)]
fn shard_replay_sources(
    pool: &mut BufferPool,
    disk: &DiskModel,
    heap: &HeapFile,
    heap_id: HeapId,
    access: &AccessEngine,
    feed: FeedKind,
    requested: usize,
    scan: Option<&ScanState>,
    metrics: &MetricsRegistry,
) -> DanaResult<(Vec<ReplaySource>, Vec<ShardScan>)> {
    let Some(state) = scan else {
        let plan = ShardPlan::new(heap, requested);
        let width = heap.schema().len();
        let mut sources = Vec::with_capacity(plan.shards());
        let mut scans = Vec::with_capacity(plan.shards());
        for r in plan.ranges() {
            let io_before = pool.stats().io_seconds;
            let src = PageStreamSource::with_range(
                pool,
                disk,
                heap,
                heap_id,
                access,
                feed,
                r.start_page,
                r.end_page,
            );
            let (batches, stats) = src
                .into_cache()
                .map_err(|e| DanaError::Engine(EngineError::from(e)))?;
            let io_first = pool.stats().io_seconds - io_before;
            sources.push(ReplaySource::new(width, batches));
            scans.push((stats, io_first));
        }
        return Ok((sources, scans));
    };
    let io_before = pool.stats().io_seconds;
    let src =
        PageStreamSource::new(pool, disk, heap, heap_id, access, feed).with_scan(state.clone());
    let (batches, stats) = src
        .into_cache()
        .map_err(|e| DanaError::Engine(EngineError::from(e)))?;
    let io_first = pool.stats().io_seconds - io_before;
    exec::record_scan_metrics(metrics, &stats, &state.sidecar, heap.tuple_count());
    let capacity = exec::packed_page_capacity(heap, &state.spec)?;
    let splits = packed_tuple_splits(stats.tuples, capacity, requested);
    let width = state.spec.output_width(heap.schema().len());
    let sources = split_replay_sources(width, &batches, &splits);
    let scans = exec::split_filtered_scan_stats(&stats, io_first, &splits);
    Ok((sources, scans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dana_dsl::zoo::{linear_regression, DenseParams};
    use dana_storage::page::TupleDirection;
    use dana_storage::{HeapFileBuilder, Schema};

    fn small_system() -> Dana {
        Dana::new(
            FpgaSpec::vu9p(),
            BufferPoolConfig {
                pool_bytes: 64 << 20,
                page_size: 8 * 1024,
            },
            DiskModel::ssd(),
        )
    }

    fn linreg_heap(n: usize, d: usize) -> HeapFile {
        let truth: Vec<f32> = (0..d).map(|i| 0.3 * i as f32 - 0.5).collect();
        let mut b =
            HeapFileBuilder::new(Schema::training(d), 8 * 1024, TupleDirection::Ascending).unwrap();
        for k in 0..n {
            let x: Vec<f32> = (0..d)
                .map(|i| (((k * 7 + i * 3) % 11) as f32 - 5.0) / 5.0)
                .collect();
            let y: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
            b.insert(&Tuple::training(&x, y)).unwrap();
        }
        b.finish()
    }

    #[test]
    fn deploy_then_execute_via_sql() {
        let mut db = small_system();
        db.create_table("t", linreg_heap(500, 8)).unwrap();
        let spec = linear_regression(DenseParams {
            n_features: 8,
            learning_rate: 0.2,
            merge_coef: 8,
            epochs: 25,
        })
        .unwrap();
        let info = db.deploy(&spec, "t").unwrap();
        assert!(info.num_threads >= 1);
        assert!(info.strider_listing.contains("readB"));
        assert_eq!(db.catalog().accelerator_names(), vec!["linearR"]);

        let out = db.execute("SELECT * FROM dana.linearR('t');").unwrap();
        assert_eq!(out.udf, "linearR");
        let w = out.report.dense_model();
        // The planted model is 0.3i − 0.5.
        for (i, v) in w.iter().enumerate() {
            let truth = 0.3 * i as f32 - 0.5;
            assert!((v - truth).abs() < 0.05, "w[{i}] = {v}, truth {truth}");
        }
        assert!(out.report.timing.total_seconds > 0.0);
        assert!(out.report.timing.engine_seconds > 0.0);
    }

    #[test]
    fn deploy_from_source_text() {
        let mut db = small_system();
        db.create_table("t", linreg_heap(200, 10)).unwrap();
        let src = dana_dsl::zoo::linear_regression_source(10, 8, 5);
        let info = db.deploy_source(&src, "fallback", "t").unwrap();
        assert_eq!(info.udf_name, "linearR");
        assert!(db.run_udf("linearR", "t").is_ok());
    }

    #[test]
    fn warm_cache_is_faster_than_cold() {
        let mut db = small_system();
        db.create_table("t", linreg_heap(3000, 16)).unwrap();
        let spec = linear_regression(DenseParams {
            n_features: 16,
            learning_rate: 0.1,
            merge_coef: 8,
            epochs: 3,
        })
        .unwrap();
        db.deploy(&spec, "t").unwrap();

        db.clear_cache();
        let cold = db.run_udf("linearR", "t").unwrap();
        assert!(cold.timing.io_seconds > 0.0);

        db.prewarm("t").unwrap();
        let warm = db.run_udf("linearR", "t").unwrap();
        assert_eq!(warm.timing.io_seconds, 0.0);
        assert!(warm.timing.total_seconds < cold.timing.total_seconds);
        // Same pages, same schedule → identical models.
        assert_eq!(warm.models, cold.models);
    }

    #[test]
    fn strider_mode_beats_cpu_fed() {
        let mut db = small_system();
        db.create_table("t", linreg_heap(2000, 32)).unwrap();
        db.prewarm("t").unwrap();
        let spec = linear_regression(DenseParams {
            n_features: 32,
            learning_rate: 0.1,
            merge_coef: 16,
            epochs: 2,
        })
        .unwrap();
        let with = db
            .train_with_spec(&spec, "t", ExecutionMode::Strider)
            .unwrap();
        let without = db
            .train_with_spec(&spec, "t", ExecutionMode::CpuFed)
            .unwrap();
        assert!(
            with.timing.total_seconds < without.timing.total_seconds,
            "Striders must win: {} vs {}",
            with.timing.total_seconds,
            without.timing.total_seconds
        );
        // Same math either way.
        assert_eq!(with.models, without.models);
    }

    #[test]
    fn tabla_mode_is_single_threaded_and_slower() {
        let mut db = small_system();
        db.create_table("t", linreg_heap(2000, 32)).unwrap();
        db.prewarm("t").unwrap();
        let spec = linear_regression(DenseParams {
            n_features: 32,
            learning_rate: 0.1,
            merge_coef: 16,
            epochs: 2,
        })
        .unwrap();
        let dana = db
            .train_with_spec(&spec, "t", ExecutionMode::Strider)
            .unwrap();
        let tabla = db
            .train_with_spec(&spec, "t", ExecutionMode::Tabla)
            .unwrap();
        assert_eq!(tabla.num_threads, 1);
        assert!(tabla.engine.cycles > dana.engine.cycles);
        assert!(tabla.timing.total_seconds > dana.timing.total_seconds);
    }

    #[test]
    fn drop_table_evicts_pages_and_invalidates_accelerators() {
        let mut db = small_system();
        db.create_table("t", linreg_heap(500, 8)).unwrap();
        db.prewarm("t").unwrap();
        let spec = linear_regression(DenseParams {
            n_features: 8,
            ..Default::default()
        })
        .unwrap();
        db.deploy(&spec, "t").unwrap();
        assert!(db.pool_stats().hits + db.pool_stats().misses == 0);

        let summary = db.drop_table("t").unwrap();
        assert_eq!(summary.table, "t");
        assert!(summary.pages_evicted > 0, "prewarmed pages must be evicted");
        assert_eq!(summary.invalidated_udfs, vec!["linearR".to_string()]);

        // The stale accelerator refuses with a typed error — never a
        // dangling UnknownHeap.
        match db.run_udf("linearR", "t") {
            Err(DanaError::StaleAccelerator { udf, dropped_table }) => {
                assert_eq!(udf, "linearR");
                assert_eq!(dropped_table, "t");
            }
            other => panic!("expected StaleAccelerator, got {other:?}"),
        }
        // Dropping again is a typed unknown-table error.
        assert!(matches!(
            db.drop_table("t"),
            Err(DanaError::Storage(
                dana_storage::StorageError::UnknownTable(_)
            ))
        ));
    }

    #[test]
    fn redeploy_after_drop_revives_udf() {
        let mut db = small_system();
        db.create_table("t", linreg_heap(300, 8)).unwrap();
        let spec = linear_regression(DenseParams {
            n_features: 8,
            ..Default::default()
        })
        .unwrap();
        db.deploy(&spec, "t").unwrap();
        db.drop_table("t").unwrap();
        assert!(db.run_udf("linearR", "t").is_err());

        // Re-create the table and redeploy: the UDF name works again.
        db.create_table("t", linreg_heap(300, 8)).unwrap();
        db.deploy(&spec, "t").unwrap();
        assert!(db.run_udf("linearR", "t").is_ok());
    }

    #[test]
    fn predict_materializes_and_evaluate_round_trips() {
        let mut db = small_system();
        db.create_table("t", linreg_heap(700, 8)).unwrap();
        let spec = linear_regression(DenseParams {
            n_features: 8,
            learning_rate: 0.2,
            merge_coef: 8,
            epochs: 25,
        })
        .unwrap();
        db.deploy(&spec, "t").unwrap();

        // PREDICT before any training is a typed error.
        assert!(matches!(
            db.predict("linearR", "t", "p"),
            Err(DanaError::ModelNotTrained { .. })
        ));
        let trained = db.run_udf("linearR", "t").unwrap();

        // PREDICT materializes a real catalog table.
        let report = db.predict("linearR", "t", "p").unwrap();
        assert_eq!(report.rows_scored, 700);
        assert_eq!(report.output_table, "p");
        assert!(report.timing.total_seconds > 0.0);
        assert!(report.scoring.cycles > 0);

        // Scan it back: source columns + a prediction column holding the
        // CPU reference scores bit-exactly.
        let (entry, heap) = db.catalog().table_heap("p").unwrap();
        assert_eq!(entry.tuple_count, 700);
        assert_eq!(entry.derived_from.as_deref(), Some("t"));
        assert_eq!(heap.schema().len(), 10); // 8 features + y + prediction
        let batch = heap.scan_batch().unwrap();
        let model = dana_ml::DenseModel(trained.dense_model().to_vec());
        let src_batch = db
            .catalog()
            .table_heap("t")
            .unwrap()
            .1
            .scan_batch()
            .unwrap();
        let reference = dana_ml::score_dense(&model, &src_batch, dana_ml::Link::Identity);
        let stored: Vec<f32> = batch.rows().map(|r| r[9]).collect();
        assert_eq!(stored, reference, "materialized predictions round-trip");

        // EVALUATE the prediction table (the trailing prediction column
        // is ignored; the label column is still read) and the source —
        // identical metric, equal to the whole-batch reference.
        let on_pred = db.evaluate("linearR", "p", None).unwrap();
        let on_src = db.evaluate("linearR", "t", None).unwrap();
        assert_eq!(on_pred.metric, dana_infer::MetricKind::Mse);
        assert_eq!(on_pred.value, on_src.value);
        assert_eq!(
            on_src.value,
            dana_ml::metrics::mse(&model, &src_batch).unwrap()
        );
        assert!(
            on_src.value < 0.01,
            "trained model must fit: {}",
            on_src.value
        );

        // The prediction table drops like any heap.
        let summary = db.drop_table("p").unwrap();
        assert_eq!(summary.table, "p");
        assert!(db.catalog().table("p").is_err());
    }

    #[test]
    fn execute_statement_dispatches_all_three_forms() {
        let mut db = small_system();
        db.create_table("t", linreg_heap(300, 8)).unwrap();
        let spec = linear_regression(DenseParams {
            n_features: 8,
            learning_rate: 0.2,
            merge_coef: 8,
            epochs: 20,
        })
        .unwrap();
        db.deploy(&spec, "t").unwrap();

        let out = db
            .execute_statement("SELECT * FROM dana.linearR('t');")
            .unwrap();
        assert!(matches!(out, StatementOutcome::Train(_)));
        assert!(out.timing().unwrap().total_seconds > 0.0);

        let out = db
            .execute_statement("PREDICT dana.linearR('t') INTO 'scores';")
            .unwrap();
        let StatementOutcome::Predict(p) = out else {
            panic!("expected predict outcome");
        };
        assert_eq!(p.output_table, "scores");
        assert!(db.catalog().table("scores").is_ok());

        let out = db
            .execute_statement("EVALUATE dana.linearR('t', 'mse');")
            .unwrap();
        let StatementOutcome::Evaluate(e) = out else {
            panic!("expected evaluate outcome");
        };
        assert_eq!(e.metric, dana_infer::MetricKind::Mse);
        assert!(e.value.is_finite());

        // Predicting into an existing table is a typed duplicate error.
        assert!(matches!(
            db.execute_statement("PREDICT dana.linearR('t') INTO 'scores';"),
            Err(DanaError::Storage(
                dana_storage::StorageError::DuplicateName(_)
            ))
        ));
    }

    #[test]
    fn dropping_source_stales_prediction_tables_and_scoring_caches() {
        let mut db = small_system();
        db.create_table("t", linreg_heap(400, 8)).unwrap();
        db.prewarm("t").unwrap();
        let spec = linear_regression(DenseParams {
            n_features: 8,
            ..Default::default()
        })
        .unwrap();
        db.deploy(&spec, "t").unwrap();
        db.run_udf("linearR", "t").unwrap();
        db.predict("linearR", "t", "p").unwrap();
        // Pull the prediction table into the pool so the drop has pages
        // to evict.
        db.prewarm("p").unwrap();

        let summary = db.drop_table("t").unwrap();
        assert_eq!(summary.invalidated_udfs, vec!["linearR".to_string()]);
        assert_eq!(summary.stale_prediction_tables, vec!["p".to_string()]);

        // The stale prediction table refuses queries with a typed error…
        assert!(matches!(
            db.prewarm("p"),
            Err(DanaError::Storage(
                dana_storage::StorageError::StaleDerivedTable { .. }
            ))
        ));
        // …its pages are gone from the pool…
        assert_eq!(db.resident_pages(), 0, "stale pages must be evicted");
        // …the scoring cache died with the accelerator…
        assert!(matches!(
            db.predict("linearR", "p", "q"),
            Err(DanaError::StaleAccelerator { .. })
        ));
        // …and cleanup still works.
        assert!(db.drop_table("p").is_ok());
    }

    #[test]
    fn unknown_udf_or_table_errors() {
        let mut db = small_system();
        assert!(db.execute("SELECT * FROM dana.ghost('t');").is_err());
        db.create_table("t", linreg_heap(100, 4)).unwrap();
        let spec = linear_regression(DenseParams {
            n_features: 4,
            ..Default::default()
        })
        .unwrap();
        db.deploy(&spec, "t").unwrap();
        assert!(db.run_udf("linearR", "missing_table").is_err());
    }

    fn deployed_db(rows: usize) -> Dana {
        let mut db = small_system();
        db.create_table("t", linreg_heap(rows, 8)).unwrap();
        let spec = linear_regression(DenseParams {
            n_features: 8,
            learning_rate: 0.2,
            merge_coef: 8,
            epochs: 20,
        })
        .unwrap();
        db.deploy(&spec, "t").unwrap();
        db
    }

    /// The out-of-the-box system keeps the paper's semantics: every
    /// `backend = auto` query offloads to the simulated FPGA.
    #[test]
    fn default_profile_always_offloads() {
        let mut db = deployed_db(300);
        assert_eq!(db.hardware_profile().offload_threshold_rows, Some(0));
        let out = db.execute("SELECT * FROM dana.linearR('t');").unwrap();
        assert_eq!(out.report.backend, BackendKind::Fpga);
        assert!(out.report.timing.total_seconds > 0.0);
        assert!(out.report.timing.wall_seconds.is_none());
    }

    /// Once a model-based profile is installed, `auto` routes a tiny
    /// table to the CPU tier — and the CPU run is bit-identical.
    #[test]
    fn auto_routes_small_tables_to_cpu_once_profile_enabled() {
        let mut db = deployed_db(300);
        let fpga = db.execute("SELECT * FROM dana.linearR('t');").unwrap();
        assert_eq!(fpga.report.backend, BackendKind::Fpga);

        // Enable the throughput model: 300 rows is far below the default
        // profile's break-even (~tens of thousands of rows).
        let profile = db.hardware_profile().with_offload_threshold(None);
        db.set_hardware_profile(profile);
        let cpu = db.execute("SELECT * FROM dana.linearR('t');").unwrap();
        assert_eq!(cpu.report.backend, BackendKind::Cpu);
        assert_eq!(cpu.report.timing.total_seconds, 0.0);
        assert!(cpu.report.timing.wall_seconds.is_some());
        assert_eq!(
            cpu.report.models, fpga.report.models,
            "backends must agree bit-for-bit"
        );

        // An explicit WITH override beats the advisor both ways.
        let forced = db
            .execute("SELECT * FROM dana.linearR('t') WITH (backend = fpga);")
            .unwrap();
        assert_eq!(forced.report.backend, BackendKind::Fpga);
        assert_eq!(forced.report.models, fpga.report.models);
        let profile = db.hardware_profile().with_offload_threshold(Some(0));
        db.set_hardware_profile(profile);
        let forced_cpu = db
            .execute("SELECT * FROM dana.linearR('t') WITH (backend = cpu);")
            .unwrap();
        assert_eq!(forced_cpu.report.backend, BackendKind::Cpu);
        assert_eq!(forced_cpu.report.models, fpga.report.models);
    }

    /// EXPLAIN prints the per-backend comparison without executing
    /// anything: the model store stays untrained.
    #[test]
    fn explain_compares_backends_without_executing() {
        let mut db = deployed_db(400);
        let out = db
            .execute_statement("EXPLAIN SELECT * FROM dana.linearR('t');")
            .unwrap();
        let StatementOutcome::Explain(cmp) = out else {
            panic!("expected explain outcome");
        };
        assert_eq!(cmp.rows, 400);
        assert_eq!(cmp.options.len(), 2);
        assert!(cmp.estimated_seconds(BackendKind::Fpga).is_some());
        assert!(cmp.estimated_seconds(BackendKind::Cpu).is_some());
        // Default profile: manual always-offload threshold pins FPGA.
        assert_eq!(cmp.chosen, BackendKind::Fpga);
        let text = cmp.to_string();
        assert!(text.contains("fpga"), "rendered comparison: {text}");
        assert!(text.contains("cpu"), "rendered comparison: {text}");

        // Nothing ran: scoring still refuses with ModelNotTrained.
        assert!(matches!(
            db.predict("linearR", "t", "p"),
            Err(DanaError::ModelNotTrained { .. })
        ));

        // A forced backend shows up as forced in the comparison.
        let forced = db
            .explain_sql("EXPLAIN SELECT * FROM dana.linearR('t') WITH (backend = cpu);")
            .unwrap();
        assert!(forced.forced);
        assert_eq!(forced.chosen, BackendKind::Cpu);
    }

    /// A gang (shards > 1) is FPGA-only: forcing the CPU tier is a typed
    /// query error, while `auto` quietly resolves to the FPGA.
    #[test]
    fn gang_pins_fpga_and_rejects_cpu_backend() {
        let mut db = deployed_db(600);
        match db.execute("SELECT * FROM dana.linearR('t') WITH (shards = 2, backend = cpu);") {
            Err(DanaError::Query(msg)) => {
                assert!(msg.contains("gang"), "unexpected message: {msg}")
            }
            other => panic!("expected typed query error, got {other:?}"),
        }
        // Even with a CPU-favoring profile, auto + shards stays FPGA.
        let profile = db.hardware_profile().with_offload_threshold(None);
        db.set_hardware_profile(profile);
        let out = db
            .execute("SELECT * FROM dana.linearR('t') WITH (shards = 2);")
            .unwrap();
        assert_eq!(out.report.backend, BackendKind::Fpga);
        assert_eq!(out.report.shards, 2);
    }
}
