//! Shared execution machinery: everything the query path needs that is the
//! same whether one query runs at a time (the [`crate::Dana`] facade) or
//! many run concurrently (the `dana-server` serving tier).
//!
//! The split follows the concurrency refactor: [`crate::Dana`] used to own
//! catalog-blob codecs, access-engine construction, and the cost-model
//! composition privately. A concurrent server cannot borrow a `&mut Dana`
//! per query, so those pieces live here as free functions over *immutable*
//! inputs — a per-query execution context is just (design, budget, heap,
//! FPGA/CPU/disk models) plus the run's measured stats, and
//! [`assemble_report`] is a pure function of them. Bit-identical results
//! between the serial and concurrent paths fall out of that purity.

use std::any::Any;
use std::sync::Arc;

use dana_compiler::{CompiledAccelerator, PerfEstimate};
use dana_engine::{
    BackendKind, BackendRun, CpuBackend, EngineDesign, EngineStats, ExecutionEngine, FpgaBackend,
    LoweredProgram, ModelStore,
};
use dana_fpga::{AxiLink, FpgaSpec, ResourceBudget};
use dana_infer::{ScoringProgram, ScoringRecipe, ScoringStats};
use dana_ml::CpuModel;
use dana_obs::{MetricsRegistry, SpanRecorder};
use dana_scan::{BoundScanSpec, ScanSidecar, ScanSpec};
use dana_storage::{
    AcceleratorEntry, DiskModel, HeapFile, PageLayoutDesc, TableEntry, TUPLE_HEADER_BYTES,
};
use dana_strider::{AccessEngine, AccessEngineConfig, AccessStats};

use crate::advisor::{self, BackendChoice, HardwareProfile, StrategyComparison, Workload};
use crate::error::{DanaError, DanaResult};
use crate::query::Statement;
use crate::report::{DanaReport, DanaTiming, Seconds};
use crate::runtime::{compose, stage_partition, EpochCosts, ExecutionMode};

/// The query-lifecycle trace's stage vocabulary, in lifecycle order.
/// Both facades pre-register the front half (`parse` → `admission_wait`
/// → `lease`) and the shared assembly helpers here fill in the execution
/// stages, so the two paths emit structurally identical traces.
pub mod stage {
    pub const PARSE: &str = "parse";
    pub const ADMISSION: &str = "admission_wait";
    pub const LEASE: &str = "lease";
    pub const SCAN: &str = "scan";
    pub const ENGINE: &str = "engine";
    pub const MERGE: &str = "merge";
    pub const MATERIALIZE: &str = "materialize";
    pub const REPLY: &str = "reply";
    /// Fault-recovery span: present only when a transient fault actually
    /// fired, so no-fault runs keep the statement-determined trace
    /// structure. Wall = backoff pauses; count = retries performed.
    pub const FAULT_RETRY: &str = "fault_retry";
}

/// Pre-registers the lifecycle skeleton on a recorder: the three stages
/// every query passes before execution, in order, with the measured
/// parse/wait walls. No-op when the recorder is disabled.
pub fn begin_trace(rec: &SpanRecorder, parse_wall: Seconds, admission_wall: Seconds) {
    if !rec.is_enabled() {
        return;
    }
    rec.stage(stage::PARSE);
    rec.add_wall(stage::PARSE, parse_wall);
    rec.stage(stage::ADMISSION);
    rec.add_wall(stage::ADMISSION, admission_wall);
    rec.stage(stage::LEASE);
}

/// Seals a trace: appends the terminal `reply` stage and drains the
/// recorder into a [`dana_obs::QueryTrace`] carrying the end-to-end
/// totals. Returns `None` on a disabled recorder.
pub fn finish_trace(
    rec: &SpanRecorder,
    total_sim: Seconds,
    total_wall: Seconds,
) -> Option<dana_obs::QueryTrace> {
    if !rec.is_enabled() {
        return None;
    }
    rec.stage(stage::REPLY);
    rec.finish(total_sim, total_wall)
}

/// Records the execution-stage spans (`scan` / `engine` + per-epoch
/// children / `merge`) of one composed training run. The stage sims are
/// an exact partition of [`compose`]'s `total_seconds` — `lease + scan +
/// engine + merge` reproduces the report total to float rounding, which
/// `EXPLAIN ANALYZE` asserts against the query report.
///
/// Counts and children depend only on the statement and the engine's
/// deterministic epoch outcome — never on gang width or facade — so the
/// trace *shape* is identical across serial/concurrent paths and shard
/// counts (gang scan work aggregates into the one `scan` stage via the
/// critical path, which is exactly how the cost model composes it).
fn record_training_spans(
    rec: &SpanRecorder,
    mode: ExecutionMode,
    epochs: u32,
    costs: &EpochCosts,
    clock_hz: f64,
    epoch_cycles: &[u64],
    merge_cycles: u64,
) {
    if !rec.is_enabled() {
        return;
    }
    let part = stage_partition(mode, epochs, costs);
    rec.add_sim(stage::LEASE, part.setup);
    rec.add_sim(stage::SCAN, part.scan);
    // The gang's epoch-boundary merge tier rides the engine's cycle
    // counter in the cost model; carve its share back out so the trace
    // attributes it to its own stage (bounded by the engine slice).
    let merge_sim = (merge_cycles as f64 / clock_hz.max(1.0)).min(part.engine);
    let engine_sim = part.engine - merge_sim;
    rec.add_sim(stage::ENGINE, engine_sim);
    let epochs = epochs.max(1) as usize;
    rec.set_count(stage::ENGINE, epochs as u64);
    let logged: u64 = epoch_cycles.iter().sum();
    for e in 0..epochs {
        // A real per-epoch cycle log distributes the engine slice in the
        // measured proportions; without one (gang members log per shard)
        // the epochs share it uniformly. Either way the children sum to
        // the parent stage.
        let share = if epoch_cycles.len() == epochs && logged > 0 {
            engine_sim * epoch_cycles[e] as f64 / logged as f64
        } else {
            engine_sim / epochs as f64
        };
        rec.child(stage::ENGINE, "epoch", share);
    }
    rec.add_sim(stage::MERGE, merge_sim);
}

/// [`record_training_spans`]'s scoring twin: one pass, no epochs, no
/// merge tier — `engine` carries the forward-pass compute
/// ([`ScoringStats::engine_seconds`]) and `merge` stays an empty anchor
/// so scoring traces keep the same stage order as training.
fn record_scoring_spans(rec: &SpanRecorder, mode: ExecutionMode, costs: &EpochCosts) {
    if !rec.is_enabled() {
        return;
    }
    let part = stage_partition(mode, 1, costs);
    rec.add_sim(stage::LEASE, part.setup);
    rec.add_sim(stage::SCAN, part.scan);
    rec.add_sim(stage::ENGINE, part.engine);
    rec.stage(stage::MERGE);
}

/// Records the wall-clock execution spans of a native-CPU run, where no
/// cycle model exists: the measured backend wall lands on `engine`, and
/// `scan`/`merge` stay structural anchors so CPU traces share the FPGA
/// trace's stage order.
pub fn record_cpu_spans(rec: &SpanRecorder, wall_seconds: Seconds) {
    if !rec.is_enabled() {
        return;
    }
    rec.stage(stage::SCAN);
    rec.add_wall(stage::ENGINE, wall_seconds);
    rec.stage(stage::MERGE);
}

/// Per-tuple CPU→FPGA handshake cost in the Strider-less ablation
/// ("significant overhead due to the handshaking between CPU and FPGA",
/// §5.1.1).
pub const CPU_FEED_HANDSHAKE_S: f64 = 0.35e-6;

/// Catalog payload: everything the query path needs to reconstruct the
/// accelerator (stored as the `design_blob` JSON in the RDBMS catalog).
/// Since the deploy-time lowering refactor it also carries the
/// [`LoweredProgram`] — the pre-resolved executable artifact — so
/// restoring an engine from the catalog reuses the deploy-time lowering
/// instead of re-deriving it.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct ArtifactBlob {
    pub design: EngineDesign,
    pub lowered: LoweredProgram,
    pub budget: ResourceBudget,
    pub estimate: PerfEstimate,
    /// The deploy-time *scoring* lowering: the forward-pass recipe that
    /// PREDICT/EVALUATE bind to trained model values. `None` for
    /// analytics with no derivable forward pass.
    pub scoring: Option<ScoringRecipe>,
}

impl ArtifactBlob {
    pub fn from_compiled(
        acc: &CompiledAccelerator,
        scoring: Option<ScoringRecipe>,
    ) -> ArtifactBlob {
        ArtifactBlob {
            design: acc.design.clone(),
            lowered: acc.engine.lowered().clone(),
            budget: acc.budget,
            estimate: acc.estimate,
            scoring,
        }
    }

    /// Serializes for catalog storage.
    pub fn encode(&self) -> DanaResult<String> {
        serde_json::to_string(self).map_err(|e| DanaError::Blob(e.to_string()))
    }

    /// Reconstructs the accelerator from a catalog `design_blob`.
    pub fn decode(blob: &str) -> DanaResult<ArtifactBlob> {
        serde_json::from_str(blob).map_err(|e| DanaError::Blob(e.to_string()))
    }
}

/// The runtime artifact one EXECUTE needs, resolved once per deployed
/// accelerator and cached on its catalog entry: the validated + lowered
/// engine behind an `Arc`, plus the resource budget and deploy-time
/// estimate (so the hot path never re-parses the JSON blob either).
pub struct CachedAccelerator {
    pub engine: Arc<ExecutionEngine>,
    pub budget: ResourceBudget,
    pub estimate: PerfEstimate,
    /// The deploy-time scoring recipe, cached beside the training engine
    /// so PREDICT/EVALUATE never re-derive (or re-parse the blob for) it.
    pub scoring: Option<ScoringRecipe>,
    /// The simulated-FPGA execution backend over `engine`, cached so the
    /// hot path never re-wraps per query.
    pub fpga: Arc<FpgaBackend>,
    /// The native CPU execution backend over the same lowered program.
    pub cpu: Arc<CpuBackend>,
}

impl CachedAccelerator {
    pub fn new(
        engine: Arc<ExecutionEngine>,
        budget: ResourceBudget,
        estimate: PerfEstimate,
        scoring: Option<ScoringRecipe>,
    ) -> CachedAccelerator {
        CachedAccelerator {
            fpga: Arc::new(FpgaBackend::new(Arc::clone(&engine))),
            cpu: Arc::new(CpuBackend::new(Arc::clone(&engine))),
            engine,
            budget,
            estimate,
            scoring,
        }
    }

    pub fn from_compiled(
        acc: &CompiledAccelerator,
        scoring: Option<ScoringRecipe>,
    ) -> CachedAccelerator {
        CachedAccelerator::new(Arc::clone(&acc.engine), acc.budget, acc.estimate, scoring)
    }

    /// The cached backend instance for a substrate.
    pub fn backend(&self, kind: BackendKind) -> Arc<dyn dana_engine::ExecutionBackend> {
        match kind {
            BackendKind::Fpga => Arc::clone(&self.fpga) as _,
            BackendKind::Cpu => Arc::clone(&self.cpu) as _,
        }
    }
}

/// Installs the compile-time engine (and the scoring recipe) on a catalog
/// entry's runtime cache — called at DEPLOY so the first EXECUTE is
/// already a cache hit.
pub fn prime_runtime(
    entry: &AcceleratorEntry,
    acc: &CompiledAccelerator,
    scoring: Option<ScoringRecipe>,
) {
    entry
        .runtime
        .set(Arc::new(CachedAccelerator::from_compiled(acc, scoring)));
}

/// Resolves a catalog entry's runtime artifact: a cache hit returns the
/// shared engine untouched; a miss (an entry restored from a persisted
/// blob, or one whose cache was invalidated) decodes the blob, rebuilds
/// the engine from the deploy-time lowering, and installs it for every
/// later query. Returns `(artifact, built_now)`.
pub fn cached_accelerator(entry: &AcceleratorEntry) -> DanaResult<(Arc<CachedAccelerator>, bool)> {
    if let Some(cached) = entry
        .runtime
        .get()
        .and_then(|any| Arc::downcast::<CachedAccelerator>(any).ok())
    {
        return Ok((cached, false));
    }
    let blob = ArtifactBlob::decode(&entry.design_blob)?;
    let engine = Arc::new(ExecutionEngine::from_artifact(blob.design, blob.lowered)?);
    let cached = Arc::new(CachedAccelerator::new(
        engine,
        blob.budget,
        blob.estimate,
        blob.scoring,
    ));
    entry
        .runtime
        .set(Arc::clone(&cached) as Arc<dyn Any + Send + Sync>);
    Ok((cached, true))
}

/// The latest trained model values for one deployed accelerator, stored
/// on its catalog entry by EXECUTE (last training wins) and consumed by
/// PREDICT/EVALUATE.
pub struct TrainedModels {
    /// Model values, one vec per model variable (row-major), in the
    /// UDF's declaration order.
    pub models: Vec<Vec<f32>>,
    /// Model variable names aligned with `models`.
    pub names: Vec<String>,
}

/// Records a finished training run's models on the catalog entry so
/// scoring queries can bind them. Interior-mutable (like the runtime
/// cache) so both the serial facade and the concurrent core store through
/// a shared reference; last write wins.
pub fn store_trained(entry: &AcceleratorEntry, report: &DanaReport) {
    entry.trained.store(Arc::new(TrainedModels {
        models: report.models.clone(),
        names: report.model_names.clone(),
    }));
}

/// The entry's latest trained models, if any EXECUTE has stored some.
pub fn trained_models(entry: &AcceleratorEntry) -> Option<Arc<TrainedModels>> {
    entry
        .trained
        .get()
        .and_then(|any| Arc::downcast::<TrainedModels>(any).ok())
}

/// Everything one scoring query resolves up front: the cached
/// accelerator, the deploy-time recipe, the recipe bound to the latest
/// trained model values, and the lockstep lane count.
pub struct ScoringSetup {
    pub cached: Arc<CachedAccelerator>,
    pub recipe: ScoringRecipe,
    pub program: ScoringProgram,
    pub lanes: u16,
}

/// Builds a [`ScoringSetup`] from an already-resolved runtime artifact
/// (the caller holds the `Arc` — no second cache resolution). Typed
/// errors distinguish "this analytic cannot score" from "train it
/// first". Lanes default to the design's thread count; TABLA is
/// single-lane, like training.
pub fn scoring_setup(
    udf: &str,
    entry: &AcceleratorEntry,
    cached: Arc<CachedAccelerator>,
    mode: ExecutionMode,
    lanes: Option<u16>,
) -> DanaResult<ScoringSetup> {
    let recipe = cached.scoring.clone().ok_or_else(|| {
        DanaError::Infer(dana_infer::InferError::UnsupportedAnalytic {
            udf: udf.to_string(),
            reason: "no scoring recipe was derived at deploy".to_string(),
        })
    })?;
    let trained = trained_models(entry).ok_or_else(|| DanaError::ModelNotTrained {
        udf: udf.to_string(),
    })?;
    let program = ScoringProgram::bind(&recipe, &trained.names, &trained.models)?;
    let lanes = match mode {
        ExecutionMode::Tabla => 1,
        _ => lanes.unwrap_or(cached.engine.design().num_threads).max(1),
    };
    Ok(ScoringSetup {
        cached,
        recipe,
        program,
        lanes,
    })
}

/// Initial model values: zeros for broadcast (dense) models, the shared
/// deterministic LRMF initialization for row-indexed factors.
pub fn initial_models(design: &EngineDesign) -> Vec<Vec<f32>> {
    design
        .models
        .iter()
        .map(|m| {
            if m.broadcast_slots.is_some() {
                vec![0.0; m.elements()]
            } else {
                dana_ml::default_lrmf_init(m.elements())
            }
        })
        .collect()
}

/// Builds the access engine (Striders + AXI front end) for one query over
/// `heap` on an accelerator instance described by `fpga`.
pub fn access_engine_for(heap: &HeapFile, budget: ResourceBudget, fpga: &FpgaSpec) -> AccessEngine {
    let axi = AxiLink::with_bandwidth(fpga.axi_bandwidth);
    AccessEngine::for_table(
        *heap.layout(),
        heap.schema().clone(),
        AccessEngineConfig::new(budget.num_page_buffers.max(1), fpga.clock, axi),
    )
}

// ---- pushdown scan plumbing (shared by both facades) ---------------------

/// Resolves a statement's optional `WHERE`/`COLUMNS` spec into the
/// [`ScanState`] the page sources consume: `None` for no spec or a
/// trivial one (plain full scans never touch the sidecar), otherwise the
/// spec bound to the heap's schema plus the table's compressed sidecar —
/// built on first use and cached on the catalog entry's runtime slot, so
/// every later pushdown scan of the table shares one sidecar and a DROP
/// discards it with the entry.
pub fn scan_state(
    entry: &TableEntry,
    heap: &HeapFile,
    spec: Option<&ScanSpec>,
) -> DanaResult<Option<crate::source::ScanState>> {
    let Some(spec) = spec else { return Ok(None) };
    if spec.is_trivial() {
        return Ok(None);
    }
    let bound = spec
        .bind(heap.schema())
        .map_err(|e| DanaError::Query(e.to_string()))?;
    let cached = entry
        .scan
        .get()
        .and_then(|a| a.downcast::<ScanSidecar>().ok());
    let sidecar = match cached {
        Some(s) => s,
        None => {
            let built: Arc<ScanSidecar> = Arc::new(ScanSidecar::build(heap)?);
            // First write wins; re-read so concurrent builders converge on
            // one shared sidecar.
            entry.scan.set(built.clone());
            entry
                .scan
                .get()
                .and_then(|a| a.downcast::<ScanSidecar>().ok())
                .unwrap_or(built)
        }
    };
    Ok(Some(crate::source::ScanState {
        sidecar,
        spec: Arc::new(bound),
    }))
}

/// Charges one finished pushdown scan to the `SHOW STATS ('scan')`
/// counters. `rows_considered` is the pre-filter tuple count of the
/// scanned range (the selectivity denominator); the post-filter rows,
/// skipped pages, and decompressed bytes come off the scan's access
/// stats, and the sidecar contributes the compression-ratio terms.
pub fn record_scan_metrics(
    metrics: &MetricsRegistry,
    stats: &AccessStats,
    sidecar: &ScanSidecar,
    rows_considered: u64,
) {
    metrics.scan_queries.inc();
    metrics.scan_pages_skipped.add(stats.pages_skipped);
    metrics
        .scan_bytes_decompressed
        .add(stats.decompressed_bytes);
    metrics.scan_rows_considered.add(rows_considered);
    metrics.scan_rows_emitted.add(stats.tuples);
    metrics.scan_raw_bytes.add(sidecar.raw_bytes());
    metrics
        .scan_compressed_bytes
        .add(sidecar.compressed_bytes());
}

/// Tuples per page of the virtual *materialized filtered table* a
/// pushdown gang plans its shard boundaries against: the page capacity a
/// [`dana_storage::HeapFileBuilder`] would compute for the projected
/// schema at the source heap's page size and placement direction.
/// Post-filter tuples land densely packed in such a table, so splitting
/// the filtered stream at multiples of this capacity reproduces the
/// table's [`dana_parallel::ShardPlan`] boundaries exactly — which is
/// what keeps a filtered gang bit-identical to running the same gang on
/// the pre-materialized table.
pub fn packed_page_capacity(heap: &HeapFile, spec: &BoundScanSpec) -> DanaResult<u64> {
    let schema = heap.schema();
    let data_width: usize = match &spec.projection {
        Some(proj) => proj.iter().map(|&c| schema.columns()[c].ty.width()).sum(),
        None => schema.tuple_data_width(),
    };
    let layout = PageLayoutDesc::new(
        heap.layout().page_size,
        0,
        TUPLE_HEADER_BYTES + data_width,
        TUPLE_HEADER_BYTES,
        heap.layout().direction,
    )?;
    Ok(u64::from(layout.capacity))
}

/// Splits one filtered scan's measured stats into per-shard
/// [`ShardArtifacts`] inputs, `splits[i]` tuples apiece. A filtered gang
/// runs ONE scan of the source (post-filter rows don't align with page
/// boundaries) and replays slices of it per member; this divides the
/// scan's cost model the same way — tuples exactly per split, integer
/// counters evenly with the remainder on the earliest shards, float
/// terms evenly. One shard passes the stats through untouched, which is
/// what keeps a `shards = 1` filtered gang bit-identical to the serial
/// filtered query.
pub fn split_filtered_scan_stats(
    stats: &AccessStats,
    io_first: Seconds,
    splits: &[u64],
) -> Vec<(AccessStats, Seconds)> {
    let k = splits.len().max(1) as u64;
    if k == 1 {
        return vec![(*stats, io_first)];
    }
    let div = |v: u64, i: u64| v / k + u64::from(i < v % k);
    splits
        .iter()
        .enumerate()
        .map(|(i, &tuples)| {
            let i = i as u64;
            let share = AccessStats {
                pages: div(stats.pages, i),
                tuples,
                bytes_transferred: div(stats.bytes_transferred, i),
                axi_seconds: stats.axi_seconds / k as f64,
                strider_cycles: div(stats.strider_cycles, i),
                conversion_cycles: div(stats.conversion_cycles, i),
                decompress_cycles: div(stats.decompress_cycles, i),
                decompressed_bytes: div(stats.decompressed_bytes, i),
                pages_skipped: div(stats.pages_skipped, i),
                access_seconds: stats.access_seconds / k as f64,
            };
            (share, io_first / k as f64)
        })
        .collect()
}

/// Materializes a PREDICT's output heap, honoring an optional pushdown
/// scan: without one every source tuple is kept (the classic path); with
/// one, only the tuples the predicates kept and the columns the
/// projection named survive into the prediction table — byte-for-byte
/// what scoring a pre-materialized filtered table would build.
pub fn materialize_predictions(
    entry: &TableEntry,
    heap: &HeapFile,
    scan: Option<&ScanSpec>,
    predictions: &[f32],
) -> DanaResult<HeapFile> {
    match scan_state(entry, heap, scan)? {
        None => Ok(dana_infer::build_prediction_heap(heap, predictions)?),
        Some(state) => {
            let slots = dana_scan::select_slots(heap, &state.spec)?;
            Ok(dana_infer::build_prediction_heap_selected(
                heap,
                &slots,
                state.spec.projection.as_deref(),
                predictions,
            )?)
        }
    }
}

/// Everything one training run measured, handed to [`assemble_report`].
pub struct RunArtifacts {
    pub engine_stats: EngineStats,
    pub access_stats: AccessStats,
    /// Simulated disk seconds charged by the first (cold-ish) scan.
    pub io_first: Seconds,
    /// Per-epoch engine-cycle deltas from the training session's log
    /// (sums to `engine_stats.cycles`). Empty when the run didn't log —
    /// the trace then shares the engine stage uniformly across epochs.
    pub epoch_cycles: Vec<u64>,
}

/// Composes a finished run's stats into the end-to-end [`DanaReport`] via
/// the pipeline-overlap cost model — pure function, shared verbatim by the
/// single-query facade and every server worker.
#[allow(clippy::too_many_arguments)]
pub fn assemble_report(
    mode: ExecutionMode,
    design: &EngineDesign,
    budget: ResourceBudget,
    fpga: &FpgaSpec,
    cpu: &CpuModel,
    disk: &DiskModel,
    pool_frames: usize,
    heap: &HeapFile,
    run: RunArtifacts,
    store: ModelStore,
    rec: &SpanRecorder,
) -> DanaReport {
    let RunArtifacts {
        engine_stats: stats,
        access_stats,
        io_first,
        epoch_cycles,
    } = run;
    let epochs = stats.epochs_run.max(1);
    let engine_per_epoch = stats.cycles as f64 / epochs as f64 / fpga.clock.hz;
    let costs = stream_costs(
        budget,
        fpga,
        cpu,
        disk,
        pool_frames,
        heap,
        heap.page_count(),
        &access_stats,
        io_first,
        engine_per_epoch,
    );
    let timing: DanaTiming = compose(mode, epochs, &costs);
    record_training_spans(rec, mode, epochs, &costs, fpga.clock.hz, &epoch_cycles, 0);

    let model_names = design.models.iter().map(|m| m.name.clone()).collect();
    DanaReport {
        models: store.into_values(),
        model_names,
        epochs_run: stats.epochs_run,
        converged_early: stats.converged_early,
        num_threads: design.num_threads,
        shards: 1,
        backend: BackendKind::Fpga,
        timing,
        engine: stats,
        access: access_stats,
    }
}

/// Composes a finished **native CPU** training run into a [`DanaReport`]:
/// no cycle-model composition at all — the timing is the stopwatch the
/// backend measured ([`DanaTiming::wall_only`]), every simulated slot
/// stays zero, and the report is tagged [`BackendKind::Cpu`]. Models and
/// engine counters are the FPGA tier's bit-identical twins.
pub fn assemble_cpu_report(
    design: &EngineDesign,
    run: BackendRun,
    access_stats: AccessStats,
    store: ModelStore,
    rec: &SpanRecorder,
) -> DanaReport {
    record_cpu_spans(rec, run.wall_seconds.unwrap_or(0.0));
    let model_names = design.models.iter().map(|m| m.name.clone()).collect();
    DanaReport {
        models: store.into_values(),
        model_names,
        epochs_run: run.stats.epochs_run,
        converged_early: run.stats.converged_early,
        num_threads: design.num_threads,
        shards: 1,
        backend: BackendKind::Cpu,
        timing: DanaTiming::wall_only(run.wall_seconds.unwrap_or(0.0)),
        engine: run.stats,
        access: access_stats,
    }
}

// ---- the backend advisor (shared dispatch) ------------------------------

/// The typed conflict between a gang and the CPU tier: intra-query
/// parallelism (shards > 1) is accelerator-side only.
pub fn gang_needs_fpga() -> DanaError {
    DanaError::Query(
        "backend = cpu cannot run a gang: intra-query parallelism (shards > 1) \
         is FPGA-only — drop the shards option or use backend = fpga"
            .to_string(),
    )
}

/// The advisor's workload shape for one statement against a deployed
/// accelerator: rows from the catalog's tuple count, compute shape from
/// the cached lowering — no data is touched. Training statements price
/// the full epoch schedule; scoring statements (PREDICT/EVALUATE) price
/// one forward pass per tuple on both tiers.
pub fn statement_workload(
    cached: &CachedAccelerator,
    rows: u64,
    columns: usize,
    stmt: &Statement,
) -> Workload {
    let design = cached.engine.design();
    let lowered = cached.engine.lowered();
    let scan = statement_scan(stmt);
    let selectivity = scan.map_or(1.0, ScanSpec::planning_selectivity);
    let width_fraction = match scan.and_then(|s| s.projection.as_ref()) {
        Some(proj) if columns > 0 => (proj.len() as f64 / columns as f64).clamp(0.0, 1.0),
        _ => 1.0,
    };
    match stmt {
        Statement::Train(_) | Statement::Explain(_) => Workload {
            rows,
            epochs: design.convergence.max_epochs(),
            threads: design.num_threads,
            cycles_per_group: cached
                .engine
                .estimated_batch_cycles(design.num_threads as usize),
            lane_ops_per_tuple: lowered.per_tuple_lane_ops(),
            ops_per_group: lowered.per_group_ops(),
            selectivity,
            width_fraction,
        },
        _ => {
            let per_tuple = cached
                .scoring
                .as_ref()
                .map(|r| r.per_tuple_cycles())
                .unwrap_or_else(|| lowered.per_tuple_lane_ops());
            Workload {
                rows,
                epochs: 1,
                threads: design.num_threads,
                cycles_per_group: per_tuple,
                lane_ops_per_tuple: per_tuple,
                ops_per_group: 0,
                selectivity,
                width_fraction,
            }
        }
    }
}

/// The pushdown scan spec a statement carries, if any. The point form
/// and the meta statements have none.
pub fn statement_scan(stmt: &Statement) -> Option<&ScanSpec> {
    match stmt {
        Statement::Train(c) => c.scan.as_ref(),
        Statement::Predict(p) => p.scan.as_ref(),
        Statement::Evaluate(e) => e.scan.as_ref(),
        Statement::PredictPoint(_)
        | Statement::Explain(_)
        | Statement::ExplainAnalyze(_)
        | Statement::ShowStats(_) => None,
    }
}

/// The `WITH (backend = …)` request and shard count a statement carries.
fn statement_request(stmt: &Statement) -> DanaResult<(BackendChoice, Option<u16>)> {
    match stmt {
        Statement::Train(c) => Ok((c.backend, c.shards)),
        Statement::Predict(p) => Ok((p.backend, p.shards)),
        // The point form has no scan to shard — the parser rejects the
        // shards option, so the request is always serial.
        Statement::PredictPoint(p) => Ok((p.backend, None)),
        Statement::Evaluate(e) => Ok((e.backend, e.shards)),
        Statement::Explain(_) | Statement::ExplainAnalyze(_) => {
            Err(DanaError::Query("EXPLAIN cannot be nested".to_string()))
        }
        Statement::ShowStats(_) => Err(DanaError::Query(
            "SHOW STATS has no execution backend".to_string(),
        )),
    }
}

/// Prices a statement on every backend without running it — the
/// `EXPLAIN` core shared by the serial facade and the serving tier. A
/// gang (shards > 1) pins the FPGA tier; CPU + gang is a typed conflict.
pub fn explain_statement(
    profile: &HardwareProfile,
    cached: &CachedAccelerator,
    rows: u64,
    columns: usize,
    stmt: &Statement,
) -> DanaResult<StrategyComparison> {
    let (requested, shards) = statement_request(stmt)?;
    let requested = match (shards, requested) {
        (Some(k), BackendChoice::Cpu) if k > 1 => return Err(gang_needs_fpga()),
        (Some(k), BackendChoice::Auto) if k > 1 => BackendChoice::Fpga,
        _ => requested,
    };
    let workload = statement_workload(cached, rows, columns, stmt);
    let statement = match stmt {
        Statement::Train(c) => format!("EXECUTE {} ON {}", c.udf, c.table),
        Statement::Predict(p) => format!("PREDICT {} ON {} INTO {}", p.udf, p.table, p.into),
        Statement::PredictPoint(p) => {
            format!("PREDICT {} ON {} inline row(s)", p.udf, p.rows.len())
        }
        Statement::Evaluate(e) => format!("EVALUATE {} ON {}", e.udf, e.table),
        Statement::Explain(_) | Statement::ExplainAnalyze(_) | Statement::ShowStats(_) => {
            unreachable!("rejected by statement_request")
        }
    };
    Ok(advisor::advise(profile, &workload, requested, statement))
}

/// Resolves the substrate one statement runs on: a `WITH (backend = …)`
/// override wins; `auto` asks the advisor; a gang (shards > 1) pins the
/// FPGA tier, and forcing CPU alongside one is a typed error.
pub fn resolve_backend(
    profile: &HardwareProfile,
    cached: &CachedAccelerator,
    rows: u64,
    columns: usize,
    stmt: &Statement,
) -> DanaResult<BackendKind> {
    let (requested, shards) = statement_request(stmt)?;
    if shards.is_some_and(|k| k > 1) {
        return match requested {
            BackendChoice::Cpu => Err(gang_needs_fpga()),
            _ => Ok(BackendKind::Fpga),
        };
    }
    Ok(match requested {
        BackendChoice::Fpga => BackendKind::Fpga,
        BackendChoice::Cpu => BackendKind::Cpu,
        BackendChoice::Auto => {
            let workload = statement_workload(cached, rows, columns, stmt);
            advisor::advise(profile, &workload, BackendChoice::Auto, String::new()).chosen
        }
    })
}

/// The per-epoch cost inputs every streamed scan shares (training and
/// scoring): disk, AXI, Strider extraction, CPU-feed ablation — only the
/// engine-compute term differs between the two query types. `scan_pages`
/// is how many pages one pass of *this* scan touches — the whole heap
/// for a serial query, the critical shard's range for a gang member.
#[allow(clippy::too_many_arguments)]
fn stream_costs(
    budget: ResourceBudget,
    fpga: &FpgaSpec,
    cpu: &CpuModel,
    disk: &DiskModel,
    pool_frames: usize,
    heap: &HeapFile,
    scan_pages: u32,
    access_stats: &AccessStats,
    io_first: Seconds,
    engine_per_epoch: Seconds,
) -> EpochCosts {
    let clock = fpga.clock;
    let page_size = heap.layout().page_size;
    let missing_later = scan_pages.saturating_sub(pool_frames as u32) as f64;
    let width = heap.schema().len();
    let tuple_bytes = heap.layout().tuple_bytes;
    let float_bytes = access_stats.tuples as f64 * width as f64 * 4.0;
    let axi = AxiLink::with_bandwidth(fpga.axi_bandwidth);
    EpochCosts {
        io_first,
        io_later: missing_later * disk.read_time(page_size as u64),
        axi: access_stats.axi_seconds,
        decompress: clock.to_seconds(access_stats.decompress_cycles),
        strider: clock.to_seconds(
            access_stats
                .strider_cycles
                .div_ceil(budget.num_page_buffers.max(1) as u64),
        ),
        engine: engine_per_epoch,
        cpu_feed: access_stats.tuples as f64
            * (tuple_bytes as f64 * cpu.deform_s_per_byte
                + width as f64 * cpu.conv_s_per_value
                + CPU_FEED_HANDSHAKE_S)
            + float_bytes / fpga.axi_bandwidth,
        fill: axi.burst_time(page_size as u64),
    }
}

/// Composes a finished *scoring* scan's stats into its end-to-end timing:
/// one pass over the heap (scoring has no epochs) with the same pipeline
/// overlap as training — pure function, shared by the serial facade and
/// the concurrent serving tier.
#[allow(clippy::too_many_arguments)]
pub fn assemble_scoring_timing(
    mode: ExecutionMode,
    budget: ResourceBudget,
    fpga: &FpgaSpec,
    cpu: &CpuModel,
    disk: &DiskModel,
    pool_frames: usize,
    heap: &HeapFile,
    access_stats: &AccessStats,
    io_first: Seconds,
    scoring: &ScoringStats,
    rec: &SpanRecorder,
) -> DanaTiming {
    let costs = stream_costs(
        budget,
        fpga,
        cpu,
        disk,
        pool_frames,
        heap,
        heap.page_count(),
        access_stats,
        io_first,
        scoring.engine_seconds(fpga.clock.hz),
    );
    record_scoring_spans(rec, mode, &costs);
    compose(mode, 1, &costs)
}

// ---- gang (intra-query-parallel) report composition ---------------------

/// What one gang member (shard) measured: its engine counters, its
/// range-scan extraction stats, and its first-scan disk seconds.
pub struct ShardArtifacts {
    pub engine_stats: EngineStats,
    pub access_stats: AccessStats,
    pub io_first: Seconds,
}

/// Element-wise maximum of the shards' access stats — the gang's
/// critical extraction path (shards stream their ranges simultaneously,
/// so one epoch's extraction costs what the slowest member costs).
fn critical_access(shards: &[ShardArtifacts]) -> AccessStats {
    let mut crit = AccessStats::default();
    for s in shards {
        let a = &s.access_stats;
        crit.pages = crit.pages.max(a.pages);
        crit.tuples = crit.tuples.max(a.tuples);
        crit.bytes_transferred = crit.bytes_transferred.max(a.bytes_transferred);
        crit.axi_seconds = crit.axi_seconds.max(a.axi_seconds);
        crit.strider_cycles = crit.strider_cycles.max(a.strider_cycles);
        crit.conversion_cycles = crit.conversion_cycles.max(a.conversion_cycles);
        crit.decompress_cycles = crit.decompress_cycles.max(a.decompress_cycles);
        crit.decompressed_bytes = crit.decompressed_bytes.max(a.decompressed_bytes);
        crit.pages_skipped = crit.pages_skipped.max(a.pages_skipped);
        crit.access_seconds = crit.access_seconds.max(a.access_seconds);
    }
    crit
}

/// Composes a gang-scheduled training run into one [`DanaReport`].
///
/// A one-shard gang delegates straight to [`assemble_report`] — the
/// report is bit-identical to the serial query's. For `k > 1`, the
/// simulated engine/extraction/I/O terms take the **critical path**
/// (element-wise max across members: the gang's epoch ends when its
/// slowest member does), the epoch-boundary merge tier's cycles ride the
/// engine's merge counter, and throughput counters (tuples, batches) sum
/// across members so the report still states true totals.
#[allow(clippy::too_many_arguments)]
pub fn assemble_gang_report(
    mode: ExecutionMode,
    design: &EngineDesign,
    budget: ResourceBudget,
    fpga: &FpgaSpec,
    cpu: &CpuModel,
    disk: &DiskModel,
    pool_frames: usize,
    heap: &HeapFile,
    shards: Vec<ShardArtifacts>,
    merge_cycles: u64,
    models: Vec<Vec<f32>>,
    rec: &SpanRecorder,
) -> DanaResult<DanaReport> {
    let store = ModelStore::new(design, models)?;
    let shard_count = shards.len() as u16;
    if shards.len() == 1 && merge_cycles == 0 {
        let s = shards.into_iter().next().expect("one shard");
        return Ok(assemble_report(
            mode,
            design,
            budget,
            fpga,
            cpu,
            disk,
            pool_frames,
            heap,
            RunArtifacts {
                engine_stats: s.engine_stats,
                access_stats: s.access_stats,
                io_first: s.io_first,
                epoch_cycles: Vec::new(),
            },
            store,
            rec,
        ));
    }
    let mut stats = EngineStats::default();
    for s in &shards {
        let e = &s.engine_stats;
        stats.compute_cycles = stats.compute_cycles.max(e.compute_cycles);
        stats.merge_cycles = stats.merge_cycles.max(e.merge_cycles);
        stats.broadcast_cycles = stats.broadcast_cycles.max(e.broadcast_cycles);
        stats.batches += e.batches;
        stats.tuples_processed += e.tuples_processed;
        stats.epochs_run = stats.epochs_run.max(e.epochs_run);
        stats.converged_early |= e.converged_early;
    }
    // The merge tier runs after the members join; it extends the gang's
    // critical path like the engine's own tree-bus merge does.
    stats.merge_cycles += merge_cycles;
    stats.cycles = stats.compute_cycles + stats.merge_cycles + stats.broadcast_cycles;
    let access = critical_access(&shards);
    let io_first = shards.iter().map(|s| s.io_first).fold(0.0, f64::max);
    let scan_pages = shards
        .iter()
        .map(|s| s.access_stats.pages as u32)
        .max()
        .unwrap_or(0);

    let epochs = stats.epochs_run.max(1);
    let engine_per_epoch = stats.cycles as f64 / epochs as f64 / fpga.clock.hz;
    let costs = stream_costs(
        budget,
        fpga,
        cpu,
        disk,
        pool_frames,
        heap,
        scan_pages,
        &access,
        io_first,
        engine_per_epoch,
    );
    let timing: DanaTiming = compose(mode, epochs, &costs);
    record_training_spans(rec, mode, epochs, &costs, fpga.clock.hz, &[], merge_cycles);
    let model_names = design.models.iter().map(|m| m.name.clone()).collect();
    Ok(DanaReport {
        models: store.into_values(),
        model_names,
        epochs_run: stats.epochs_run,
        converged_early: stats.converged_early,
        num_threads: design.num_threads,
        shards: shard_count,
        backend: BackendKind::Fpga,
        timing,
        engine: stats,
        access,
    })
}

/// Composes a gang-scheduled *scoring* scan's timing and combined
/// counters. One shard delegates to [`assemble_scoring_timing`]
/// (bit-identical to serial); `k > 1` takes the critical member for the
/// timing terms while tuple/group counters sum.
#[allow(clippy::too_many_arguments)]
pub fn assemble_gang_scoring_timing(
    mode: ExecutionMode,
    budget: ResourceBudget,
    fpga: &FpgaSpec,
    cpu: &CpuModel,
    disk: &DiskModel,
    pool_frames: usize,
    heap: &HeapFile,
    shards: &[ShardArtifacts],
    scoring: &[ScoringStats],
    rec: &SpanRecorder,
) -> (DanaTiming, ScoringStats) {
    assert_eq!(
        shards.len(),
        scoring.len(),
        "one scoring-stat entry per gang member"
    );
    if shards.len() == 1 {
        let timing = assemble_scoring_timing(
            mode,
            budget,
            fpga,
            cpu,
            disk,
            pool_frames,
            heap,
            &shards[0].access_stats,
            shards[0].io_first,
            &scoring[0],
            rec,
        );
        return (timing, scoring[0]);
    }
    let combined = ScoringStats {
        tuples: scoring.iter().map(|s| s.tuples).sum(),
        groups: scoring.iter().map(|s| s.groups).sum(),
        cycles: scoring.iter().map(|s| s.cycles).max().unwrap_or(0),
        lanes: scoring.first().map(|s| s.lanes).unwrap_or(0),
    };
    let access = critical_access(shards);
    let io_first = shards.iter().map(|s| s.io_first).fold(0.0, f64::max);
    let scan_pages = shards
        .iter()
        .map(|s| s.access_stats.pages as u32)
        .max()
        .unwrap_or(0);
    let costs = stream_costs(
        budget,
        fpga,
        cpu,
        disk,
        pool_frames,
        heap,
        scan_pages,
        &access,
        io_first,
        combined.engine_seconds(fpga.clock.hz),
    );
    record_scoring_spans(rec, mode, &costs);
    (compose(mode, 1, &costs), combined)
}

/// SJF's ordering key for a *scoring* query: tuple count × per-tuple
/// program length, divided across the lockstep lanes — the inference
/// twin of [`estimate_seconds`].
pub fn scoring_estimate_seconds(
    recipe: &ScoringRecipe,
    tuples: u64,
    lanes: u32,
    fpga: &FpgaSpec,
) -> Seconds {
    let groups = tuples.div_ceil(lanes.max(1) as u64);
    fpga.clock
        .to_seconds(groups.saturating_mul(recipe.per_tuple_cycles()))
}

/// Validates point-form PREDICT rows against the bound scoring program
/// and packs them into one in-memory SoA batch — the fast path's bind
/// step, shared by the serial facade and the serving tier. Every row
/// must have the same width, at least the program's scoring width
/// (extra trailing columns, e.g. a label as stored in the source heap,
/// are carried but ignored by the forward pass — exactly like the
/// materializing scan).
pub fn point_batch(
    udf: &str,
    program: &ScoringProgram,
    rows: &[Vec<f32>],
) -> DanaResult<dana_storage::TupleBatch> {
    if rows.is_empty() {
        return Err(DanaError::Query(
            "point-form PREDICT needs at least one VALUES row".to_string(),
        ));
    }
    let need = program.min_width();
    let width = rows[0].len();
    if width < need {
        return Err(DanaError::Query(format!(
            "VALUES row has {width} value(s) but '{udf}' scoring reads {need} column(s)"
        )));
    }
    for (i, row) in rows.iter().enumerate() {
        if row.len() != width {
            return Err(DanaError::Query(format!(
                "VALUES row {} has {} value(s) but row 0 has {width} — all rows must have the \
                 same width",
                i + 1,
                row.len()
            )));
        }
    }
    Ok(dana_storage::TupleBatch::from_rows(width, rows))
}

/// Timing for a point scoring dispatch: the CPU tier reports the
/// measured stopwatch; the FPGA tier composes an engine-only simulated
/// cost (there is no scan — no disk, AXI, or Strider term to charge).
pub fn point_timing(
    backend: BackendKind,
    stats: &ScoringStats,
    wall: Seconds,
    fpga: &FpgaSpec,
) -> DanaTiming {
    match backend {
        BackendKind::Cpu => DanaTiming::wall_only(wall),
        BackendKind::Fpga => {
            let engine = stats.engine_seconds(fpga.clock.hz);
            DanaTiming {
                engine_seconds: engine,
                total_seconds: engine,
                ..DanaTiming::default()
            }
        }
    }
}

/// Coarse run-time prediction from the *deploy-time* estimate alone — the
/// shortest-job-first scheduler's ordering key. It deliberately prices only
/// the engine compute (the dominant, workload-proportional term); ties in
/// I/O or extraction do not change the SJF order in practice.
pub fn estimate_seconds(estimate: &PerfEstimate, max_epochs: u32, fpga: &FpgaSpec) -> Seconds {
    fpga.clock.to_seconds(
        estimate
            .epoch_engine_cycles
            .saturating_mul(max_epochs.max(1) as u64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_round_trip_preserves_estimate() {
        let estimate = PerfEstimate {
            epoch_engine_cycles: 1000,
            strider_cycles_per_page: 50,
            per_tuple_cycles: 7,
            post_merge_cycles: 3,
        };
        let budget = ResourceBudget {
            data_model_bytes: 1024,
            page_buffer_bytes: 64 * 1024,
            num_page_buffers: 2,
            num_aus: 16,
            num_acs: 2,
            num_threads: 2,
        };
        let design = test_design();
        let scoring = dana_infer::derive_recipe(
            &dana_dsl::zoo::linear_regression(dana_dsl::zoo::DenseParams {
                n_features: 4,
                ..Default::default()
            })
            .unwrap(),
        )
        .ok();
        let blob = ArtifactBlob {
            lowered: dana_engine::lower(&design),
            design,
            budget,
            estimate,
            scoring: scoring.clone(),
        };
        let decoded = ArtifactBlob::decode(&blob.encode().unwrap()).unwrap();
        assert_eq!(decoded.estimate.epoch_engine_cycles, 1000);
        assert_eq!(decoded.design, blob.design);
        assert_eq!(decoded.budget, budget);
        // The deploy-time lowering artifact survives the catalog round
        // trip bit-for-bit and is consistent with its design.
        assert_eq!(decoded.lowered, blob.lowered);
        assert!(decoded.lowered.is_consistent_with(&decoded.design));
        // The scoring recipe rides the same blob.
        assert!(scoring.is_some());
        assert_eq!(decoded.scoring, scoring);
        // Corrupt blobs surface as typed errors, not panics.
        assert!(ArtifactBlob::decode("not json").is_err());
    }

    fn test_design() -> EngineDesign {
        use dana_dsl::zoo::{linear_regression, DenseParams};
        let spec = linear_regression(DenseParams {
            n_features: 4,
            ..Default::default()
        })
        .unwrap();
        dana_compiler::schedule_hdfg(
            &dana_hdfg::translate(&spec),
            dana_compiler::ScheduleParams {
                num_threads: 2,
                acs_per_thread: 1,
                slots_per_au: 1024,
                bus_lanes: 1,
            },
        )
        .unwrap()
    }

    #[test]
    fn scoring_estimate_scales_with_tuples_and_lanes() {
        let fpga = FpgaSpec::vu9p();
        let recipe = dana_infer::derive_recipe(
            &dana_dsl::zoo::linear_regression(dana_dsl::zoo::DenseParams {
                n_features: 10,
                ..Default::default()
            })
            .unwrap(),
        )
        .unwrap();
        let small = scoring_estimate_seconds(&recipe, 1_000, 4, &fpga);
        let large = scoring_estimate_seconds(&recipe, 100_000, 4, &fpga);
        assert!(large > small, "more tuples must cost more");
        let wide = scoring_estimate_seconds(&recipe, 100_000, 16, &fpga);
        assert!(wide < large, "more lanes must cost less");
        // Zero lanes clamps instead of dividing by zero.
        assert!(scoring_estimate_seconds(&recipe, 100, 0, &fpga) > 0.0);
    }

    #[test]
    fn estimate_seconds_scales_with_epochs() {
        let e = PerfEstimate {
            epoch_engine_cycles: 150_000_000, // one second at 150 MHz
            strider_cycles_per_page: 0,
            per_tuple_cycles: 0,
            post_merge_cycles: 0,
        };
        let fpga = FpgaSpec::vu9p();
        let one = estimate_seconds(&e, 1, &fpga);
        let five = estimate_seconds(&e, 5, &fpga);
        assert!((five / one - 5.0).abs() < 1e-9);
        // Zero epochs clamps to one.
        assert_eq!(estimate_seconds(&e, 0, &fpga), one);
    }
}
