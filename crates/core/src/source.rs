//! The buffer-pool-backed [`TupleSource`]: the staged streaming loop that
//! replaces full-table materialization on the query hot path.
//!
//! Fig. 2's execution flow interleaves, per page: disk → buffer pool
//! (misses only), pool → FPGA page streaming, Strider extraction, and
//! engine compute. [`PageStreamSource`] realizes that schedule in the
//! simulator: each `next_batch` call fetches ONE page through the pool,
//! extracts it into a flat [`TupleBatch`] (via Striders or the CPU-deform
//! ablation — the Fig. 11 comparison is just a different [`FeedKind`]),
//! and hands the batch to the execution engine, which trains on it while
//! the source is ready to fetch the next page. Allocation is O(pages), not
//! O(tuples).
//!
//! Epochs past the first replay the extracted batches from an in-memory
//! cache rather than re-driving the Striders: the hardware would stream
//! pages again, but its *per-epoch* cost is identical, so the cost model
//! charges extraction once and [`crate::runtime::compose`] multiplies per
//! epoch — keeping the simulated timing identical to the hardware schedule
//! while the functional replay stays cheap and deterministic.

use std::sync::Arc;

use dana_scan::{BoundScanSpec, ScanSidecar};
use dana_storage::{
    BufferPool, ColumnType, DiskModel, HeapFile, HeapId, PageId, PageView, SharedBufferPool,
    SourceError, StorageResult, TupleBatch, TupleSource,
};
use dana_strider::{AccessEngine, AccessStats};

use crate::report::Seconds;

/// Pushdown state for one scan: the table's compressed sidecar (shared out
/// of the catalog's runtime cache) plus the `WHERE`/`COLUMNS` spec bound to
/// its schema. Attaching this to a page source flips the whole data path:
/// pages stream *compressed* through the buffer pool (under the heap's
/// shadow id, charged at compressed size), are decompressed on fetch with
/// cycles charged to the access stats, zone-unmatchable pages are skipped
/// without a fetch, and surviving tuples are filtered/projected before the
/// engine sees them.
#[derive(Clone)]
pub struct ScanState {
    pub sidecar: Arc<ScanSidecar>,
    pub spec: Arc<BoundScanSpec>,
}

/// CPU-deform twin of the Strider filtered extraction: decodes each tuple
/// full-width with the same per-cell [`ColumnType::decode_f32`] conversion
/// `deform_all_into` uses, gates it on the spec, and pushes the projected
/// row — so the Fig. 11 ablation stays bit-identical to the Strider feed
/// under pushdown too.
fn cpu_extract_filtered(
    bytes: &[u8],
    heap: &HeapFile,
    spec: &BoundScanSpec,
    batch: &mut TupleBatch,
) -> Result<(), SourceError> {
    let layout = heap.layout();
    let schema = heap.schema();
    let view = PageView::new(bytes, *layout)?;
    let cols: Vec<(usize, ColumnType)> = (0..schema.len())
        .map(|i| Ok((schema.column_offset(i)?, schema.columns()[i].ty)))
        .collect::<StorageResult<_>>()?;
    let mut row = vec![0f32; schema.len()];
    for slot in 0..view.tuple_count() {
        let data = &view.tuple_bytes(slot)?[layout.tuple_header_bytes..];
        for (c, &(off, ty)) in cols.iter().enumerate() {
            row[c] = ty.decode_f32(&data[off..off + ty.width()]);
        }
        if !spec.row_matches(&row) {
            continue;
        }
        match &spec.projection {
            Some(proj) => {
                let mut out = batch.start_row();
                for &c in proj {
                    out.push(row[c]);
                }
                out.finish();
            }
            None => batch.push_row(&row),
        }
    }
    Ok(())
}

/// How raw page bytes become engine-native f32 rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedKind {
    /// On-chip Striders walk the raw page (full DAnA).
    Strider,
    /// Host CPU deforms and converts each tuple (Fig. 11 / TABLA ablation).
    Cpu,
}

impl FeedKind {
    /// The feed matching an execution mode: Striders on-chip for full
    /// DAnA, CPU deform for the ablations.
    pub fn for_mode(mode: crate::runtime::ExecutionMode) -> FeedKind {
        if mode.uses_striders() {
            FeedKind::Strider
        } else {
            FeedKind::Cpu
        }
    }
}

/// Streams a table page-by-page out of the buffer pool as flat batches.
pub struct PageStreamSource<'a> {
    pool: &'a mut BufferPool,
    disk: &'a DiskModel,
    heap: &'a HeapFile,
    heap_id: HeapId,
    access: &'a AccessEngine,
    feed: FeedKind,
    next_page: u32,
    /// One past the last page this source scans (`page_count` for a
    /// whole-table scan; a shard boundary for a page-range scan).
    end_page: u32,
    start_page: u32,
    /// True once the first pass over the range completed and every page's
    /// batch is cached for epoch replay.
    scan_done: bool,
    replay: usize,
    cache: Vec<TupleBatch>,
    stats: AccessStats,
    scan: Option<ScanState>,
}

impl<'a> PageStreamSource<'a> {
    pub fn new(
        pool: &'a mut BufferPool,
        disk: &'a DiskModel,
        heap: &'a HeapFile,
        heap_id: HeapId,
        access: &'a AccessEngine,
        feed: FeedKind,
    ) -> PageStreamSource<'a> {
        PageStreamSource::with_range(
            pool,
            disk,
            heap,
            heap_id,
            access,
            feed,
            0,
            heap.page_count(),
        )
    }

    /// A source over the page range `[start_page, end_page)` — one shard
    /// of an intra-query-parallel scan. Identical extraction math and
    /// batch boundaries to a whole-table scan of just those pages.
    #[allow(clippy::too_many_arguments)]
    pub fn with_range(
        pool: &'a mut BufferPool,
        disk: &'a DiskModel,
        heap: &'a HeapFile,
        heap_id: HeapId,
        access: &'a AccessEngine,
        feed: FeedKind,
        start_page: u32,
        end_page: u32,
    ) -> PageStreamSource<'a> {
        let end_page = end_page.min(heap.page_count());
        let start_page = start_page.min(end_page);
        PageStreamSource {
            pool,
            disk,
            heap,
            heap_id,
            access,
            feed,
            next_page: start_page,
            end_page,
            start_page,
            scan_done: false,
            replay: 0,
            cache: Vec::with_capacity((end_page - start_page) as usize),
            stats: AccessStats::default(),
            scan: None,
        }
    }

    /// Attaches a pushdown [`ScanState`] — see its docs for how it changes
    /// the data path.
    pub fn with_scan(mut self, scan: ScanState) -> PageStreamSource<'a> {
        self.scan = Some(scan);
        self
    }

    /// Extraction-pass counters accumulated by the first scan, completed
    /// into the full access-engine cost model.
    pub fn into_stats(self) -> AccessStats {
        let mut stats = self.stats;
        self.access.finish_stats(&mut stats);
        stats
    }

    /// Completes the scan (if it has not finished) and dismantles the
    /// source into its extracted per-page batches plus the finished
    /// access stats — the serial facade's way of building cheap replaying
    /// shard sources for the gang executor, since its `&mut` buffer pool
    /// cannot run several live scans at once.
    pub fn into_cache(mut self) -> Result<(Vec<TupleBatch>, AccessStats), SourceError> {
        self.rewind()?;
        let mut stats = self.stats;
        self.access.finish_stats(&mut stats);
        Ok((self.cache, stats))
    }

    /// Fetches and extracts page `page_no`, appending its batch to the
    /// cache. Returns `false` when the page was zone-pruned (no fetch, no
    /// batch).
    fn extract_next_page(&mut self, page_no: u32) -> Result<bool, SourceError> {
        if let Some(scan) = &self.scan {
            if !scan.spec.page_can_match(scan.sidecar.zone(page_no)) {
                self.stats.pages_skipped += 1;
                return Ok(false);
            }
        }
        let width = self.width();
        let mut batch = TupleBatch::with_capacity(width, self.heap.layout().capacity as usize);
        let extracted = match &self.scan {
            None => {
                let (frame, _) =
                    self.pool
                        .fetch(PageId::new(self.heap_id, page_no), self.heap, self.disk)?;
                let bytes = self.pool.frame_bytes(frame);
                let r = match self.feed {
                    FeedKind::Strider => self
                        .access
                        .extract_page_into(bytes, &mut batch)
                        .map(|cycles| self.stats.strider_cycles += cycles)
                        .map_err(|e| SourceError(e.to_string())),
                    FeedKind::Cpu => PageView::new(bytes, *self.heap.layout())
                        .and_then(|view| view.deform_all_into(self.heap.schema(), &mut batch))
                        .map_err(SourceError::from),
                };
                // Unpin before propagating any extraction error: a corrupt
                // page must not leave its frame pinned for the pool's
                // lifetime.
                self.pool.unpin(frame);
                r
            }
            Some(scan) => {
                // The compressed image goes through the pool under the
                // shadow id (never colliding with raw page frames); the
                // miss is charged at *compressed* size — the codec's I/O
                // saving.
                let (frame, _) = self.pool.fetch_raw(
                    PageId::new(self.heap_id.shadow(), page_no),
                    scan.sidecar.page(page_no),
                    self.disk,
                )?;
                let raw = dana_scan::decompress_page(
                    self.pool.frame_bytes(frame),
                    self.heap.layout(),
                    self.heap.schema(),
                )
                .map_err(|e| SourceError(e.to_string()));
                self.pool.unpin(frame);
                let raw = raw?;
                self.stats.decompress_cycles += dana_scan::decompress_cycles(raw.len());
                self.stats.decompressed_bytes += raw.len() as u64;
                match self.feed {
                    FeedKind::Strider => self
                        .access
                        .extract_page_filtered_into(
                            &raw,
                            &mut batch,
                            scan.spec.projection.as_deref(),
                            |row| scan.spec.row_matches(row),
                        )
                        .map(|cycles| self.stats.strider_cycles += cycles)
                        .map_err(|e| SourceError(e.to_string())),
                    FeedKind::Cpu => cpu_extract_filtered(&raw, self.heap, &scan.spec, &mut batch),
                }
            }
        };
        extracted?;
        self.stats.pages += 1;
        self.stats.tuples += batch.len() as u64;
        self.cache.push(batch);
        Ok(true)
    }
}

impl TupleSource for PageStreamSource<'_> {
    fn width(&self) -> usize {
        match &self.scan {
            Some(s) => s.spec.output_width(self.heap.schema().len()),
            None => self.heap.schema().len(),
        }
    }

    fn next_batch(&mut self) -> Result<Option<&TupleBatch>, SourceError> {
        if self.scan_done {
            // Epoch replay from the extraction cache.
            if self.replay >= self.cache.len() {
                return Ok(None);
            }
            self.replay += 1;
            return Ok(Some(&self.cache[self.replay - 1]));
        }
        loop {
            if self.next_page >= self.end_page {
                self.scan_done = true;
                self.replay = self.cache.len();
                return Ok(None);
            }
            let page_no = self.next_page;
            self.next_page += 1;
            // Zone-pruned pages push no batch; keep walking the range.
            if self.extract_next_page(page_no)? {
                break;
            }
        }
        Ok(Some(self.cache.last().expect("page just extracted")))
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        // A mid-scan rewind must still visit every page exactly once so
        // the access stats describe one full extraction pass.
        while !self.scan_done {
            if self.next_batch()?.is_none() {
                break;
            }
        }
        self.replay = 0;
        Ok(())
    }

    fn tuple_count_hint(&self) -> Option<u64> {
        match &self.scan {
            // Post-filter estimate off the zone maps; a sizing hint only.
            Some(s) => Some(s.spec.estimated_tuples(
                &s.sidecar.zones()[self.start_page as usize..self.end_page as usize],
            )),
            None => Some(
                self.heap
                    .tuples_in_page_range(self.start_page, self.end_page),
            ),
        }
    }
}

/// The concurrent twin of [`PageStreamSource`]: streams a table out of a
/// [`SharedBufferPool`] through `&self` fetches, so many queries can scan
/// simultaneously. Page bytes come back as `Arc<[u8]>` images; each is
/// held only for the duration of its extraction, so the source never pins
/// a frame across engine compute.
///
/// Because the shared pool's statistics aggregate *every* concurrent
/// query, this source meters its own simulated I/O: the per-query
/// `io_seconds` it accumulates is exactly what [`PageStreamSource`] would
/// have read off a private pool's stats delta. Extraction math and batch
/// boundaries are identical, which is what keeps concurrent results
/// bit-identical to the single-threaded path.
pub struct SharedPageStreamSource<'a> {
    pool: &'a SharedBufferPool,
    disk: &'a DiskModel,
    heap: &'a HeapFile,
    heap_id: HeapId,
    access: &'a AccessEngine,
    feed: FeedKind,
    next_page: u32,
    /// One past the last page this source scans (a shard boundary for
    /// gang-parallel scans; `page_count` for a whole-table scan).
    end_page: u32,
    start_page: u32,
    scan_done: bool,
    replay: usize,
    cache: Vec<TupleBatch>,
    stats: AccessStats,
    io_seconds: Seconds,
    scan: Option<ScanState>,
}

impl<'a> SharedPageStreamSource<'a> {
    pub fn new(
        pool: &'a SharedBufferPool,
        disk: &'a DiskModel,
        heap: &'a HeapFile,
        heap_id: HeapId,
        access: &'a AccessEngine,
        feed: FeedKind,
    ) -> SharedPageStreamSource<'a> {
        SharedPageStreamSource::with_range(
            pool,
            disk,
            heap,
            heap_id,
            access,
            feed,
            0,
            heap.page_count(),
        )
    }

    /// A source over the page range `[start_page, end_page)` — one shard
    /// of a gang-parallel scan. The shared pool's `&self` fetches let any
    /// number of shard sources stream simultaneously, each metering its
    /// own simulated I/O.
    #[allow(clippy::too_many_arguments)]
    pub fn with_range(
        pool: &'a SharedBufferPool,
        disk: &'a DiskModel,
        heap: &'a HeapFile,
        heap_id: HeapId,
        access: &'a AccessEngine,
        feed: FeedKind,
        start_page: u32,
        end_page: u32,
    ) -> SharedPageStreamSource<'a> {
        let end_page = end_page.min(heap.page_count());
        let start_page = start_page.min(end_page);
        SharedPageStreamSource {
            pool,
            disk,
            heap,
            heap_id,
            access,
            feed,
            next_page: start_page,
            end_page,
            start_page,
            scan_done: false,
            replay: 0,
            cache: Vec::with_capacity((end_page - start_page) as usize),
            stats: AccessStats::default(),
            io_seconds: 0.0,
            scan: None,
        }
    }

    /// Attaches a pushdown [`ScanState`] — see its docs for how it changes
    /// the data path.
    pub fn with_scan(mut self, scan: ScanState) -> SharedPageStreamSource<'a> {
        self.scan = Some(scan);
        self
    }

    /// Extraction-pass counters plus the simulated disk seconds this
    /// query's first scan was charged.
    pub fn into_stats(self) -> (AccessStats, Seconds) {
        let mut stats = self.stats;
        self.access.finish_stats(&mut stats);
        (stats, self.io_seconds)
    }

    /// Completes the scan (if it has not finished) and dismantles the
    /// source into its extracted per-page batches, finished access stats,
    /// and metered I/O — the concurrent facade's way of building replaying
    /// shard sources for a *filtered* gang, whose post-filter shard
    /// boundaries do not fall on source page boundaries.
    pub fn into_cache(mut self) -> Result<(Vec<TupleBatch>, AccessStats, Seconds), SourceError> {
        self.rewind()?;
        let mut stats = self.stats;
        self.access.finish_stats(&mut stats);
        Ok((self.cache, stats, self.io_seconds))
    }

    /// Returns `false` when the page was zone-pruned (no fetch, no batch).
    fn extract_next_page(&mut self, page_no: u32) -> Result<bool, SourceError> {
        if let Some(scan) = &self.scan {
            if !scan.spec.page_can_match(scan.sidecar.zone(page_no)) {
                self.stats.pages_skipped += 1;
                return Ok(false);
            }
        }
        let width = self.width();
        let mut batch = TupleBatch::with_capacity(width, self.heap.layout().capacity as usize);
        match &self.scan {
            None => {
                let (bytes, io) =
                    self.pool
                        .fetch(PageId::new(self.heap_id, page_no), self.heap, self.disk)?;
                self.io_seconds += io;
                match self.feed {
                    FeedKind::Strider => self
                        .access
                        .extract_page_into(&bytes, &mut batch)
                        .map(|cycles| self.stats.strider_cycles += cycles)
                        .map_err(|e| SourceError(e.to_string()))?,
                    FeedKind::Cpu => PageView::new(&bytes, *self.heap.layout())
                        .and_then(|view| view.deform_all_into(self.heap.schema(), &mut batch))
                        .map_err(SourceError::from)?,
                };
                // `bytes` drops here, releasing the frame hold — errors
                // included, so a corrupt page cannot leak a held frame.
            }
            Some(scan) => {
                // Compressed image under the shadow id, charged at
                // compressed size; the frame hold is released as soon as
                // the page is reconstructed.
                let (bytes, io) = self.pool.fetch_raw(
                    PageId::new(self.heap_id.shadow(), page_no),
                    scan.sidecar.page(page_no),
                    self.disk,
                )?;
                self.io_seconds += io;
                let raw =
                    dana_scan::decompress_page(&bytes, self.heap.layout(), self.heap.schema())
                        .map_err(|e| SourceError(e.to_string()))?;
                drop(bytes);
                self.stats.decompress_cycles += dana_scan::decompress_cycles(raw.len());
                self.stats.decompressed_bytes += raw.len() as u64;
                match self.feed {
                    FeedKind::Strider => self
                        .access
                        .extract_page_filtered_into(
                            &raw,
                            &mut batch,
                            scan.spec.projection.as_deref(),
                            |row| scan.spec.row_matches(row),
                        )
                        .map(|cycles| self.stats.strider_cycles += cycles)
                        .map_err(|e| SourceError(e.to_string()))?,
                    FeedKind::Cpu => cpu_extract_filtered(&raw, self.heap, &scan.spec, &mut batch)?,
                }
            }
        };
        self.stats.pages += 1;
        self.stats.tuples += batch.len() as u64;
        self.cache.push(batch);
        Ok(true)
    }
}

impl TupleSource for SharedPageStreamSource<'_> {
    fn width(&self) -> usize {
        match &self.scan {
            Some(s) => s.spec.output_width(self.heap.schema().len()),
            None => self.heap.schema().len(),
        }
    }

    fn next_batch(&mut self) -> Result<Option<&TupleBatch>, SourceError> {
        if self.scan_done {
            if self.replay >= self.cache.len() {
                return Ok(None);
            }
            self.replay += 1;
            return Ok(Some(&self.cache[self.replay - 1]));
        }
        loop {
            if self.next_page >= self.end_page {
                self.scan_done = true;
                self.replay = self.cache.len();
                return Ok(None);
            }
            let page_no = self.next_page;
            self.next_page += 1;
            // Zone-pruned pages push no batch; keep walking the range.
            if self.extract_next_page(page_no)? {
                break;
            }
        }
        Ok(Some(self.cache.last().expect("page just extracted")))
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        // A mid-scan rewind must still visit every page exactly once so
        // the access stats describe one full extraction pass.
        while !self.scan_done {
            if self.next_batch()?.is_none() {
                break;
            }
        }
        self.replay = 0;
        Ok(())
    }

    fn tuple_count_hint(&self) -> Option<u64> {
        match &self.scan {
            // Post-filter estimate off the zone maps; a sizing hint only.
            Some(s) => Some(s.spec.estimated_tuples(
                &s.sidecar.zones()[self.start_page as usize..self.end_page as usize],
            )),
            None => Some(
                self.heap
                    .tuples_in_page_range(self.start_page, self.end_page),
            ),
        }
    }
}
