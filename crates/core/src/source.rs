//! The buffer-pool-backed [`TupleSource`]: the staged streaming loop that
//! replaces full-table materialization on the query hot path.
//!
//! Fig. 2's execution flow interleaves, per page: disk → buffer pool
//! (misses only), pool → FPGA page streaming, Strider extraction, and
//! engine compute. [`PageStreamSource`] realizes that schedule in the
//! simulator: each `next_batch` call fetches ONE page through the pool,
//! extracts it into a flat [`TupleBatch`] (via Striders or the CPU-deform
//! ablation — the Fig. 11 comparison is just a different [`FeedKind`]),
//! and hands the batch to the execution engine, which trains on it while
//! the source is ready to fetch the next page. Allocation is O(pages), not
//! O(tuples).
//!
//! Epochs past the first replay the extracted batches from an in-memory
//! cache rather than re-driving the Striders: the hardware would stream
//! pages again, but its *per-epoch* cost is identical, so the cost model
//! charges extraction once and [`crate::runtime::compose`] multiplies per
//! epoch — keeping the simulated timing identical to the hardware schedule
//! while the functional replay stays cheap and deterministic.

use dana_storage::{
    BufferPool, DiskModel, HeapFile, HeapId, PageId, PageView, SharedBufferPool, SourceError,
    TupleBatch, TupleSource,
};
use dana_strider::{AccessEngine, AccessStats};

use crate::report::Seconds;

/// How raw page bytes become engine-native f32 rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedKind {
    /// On-chip Striders walk the raw page (full DAnA).
    Strider,
    /// Host CPU deforms and converts each tuple (Fig. 11 / TABLA ablation).
    Cpu,
}

impl FeedKind {
    /// The feed matching an execution mode: Striders on-chip for full
    /// DAnA, CPU deform for the ablations.
    pub fn for_mode(mode: crate::runtime::ExecutionMode) -> FeedKind {
        if mode.uses_striders() {
            FeedKind::Strider
        } else {
            FeedKind::Cpu
        }
    }
}

/// Streams a table page-by-page out of the buffer pool as flat batches.
pub struct PageStreamSource<'a> {
    pool: &'a mut BufferPool,
    disk: &'a DiskModel,
    heap: &'a HeapFile,
    heap_id: HeapId,
    access: &'a AccessEngine,
    feed: FeedKind,
    next_page: u32,
    /// One past the last page this source scans (`page_count` for a
    /// whole-table scan; a shard boundary for a page-range scan).
    end_page: u32,
    start_page: u32,
    /// True once the first pass over the range completed and every page's
    /// batch is cached for epoch replay.
    scan_done: bool,
    replay: usize,
    cache: Vec<TupleBatch>,
    stats: AccessStats,
}

impl<'a> PageStreamSource<'a> {
    pub fn new(
        pool: &'a mut BufferPool,
        disk: &'a DiskModel,
        heap: &'a HeapFile,
        heap_id: HeapId,
        access: &'a AccessEngine,
        feed: FeedKind,
    ) -> PageStreamSource<'a> {
        PageStreamSource::with_range(
            pool,
            disk,
            heap,
            heap_id,
            access,
            feed,
            0,
            heap.page_count(),
        )
    }

    /// A source over the page range `[start_page, end_page)` — one shard
    /// of an intra-query-parallel scan. Identical extraction math and
    /// batch boundaries to a whole-table scan of just those pages.
    #[allow(clippy::too_many_arguments)]
    pub fn with_range(
        pool: &'a mut BufferPool,
        disk: &'a DiskModel,
        heap: &'a HeapFile,
        heap_id: HeapId,
        access: &'a AccessEngine,
        feed: FeedKind,
        start_page: u32,
        end_page: u32,
    ) -> PageStreamSource<'a> {
        let end_page = end_page.min(heap.page_count());
        let start_page = start_page.min(end_page);
        PageStreamSource {
            pool,
            disk,
            heap,
            heap_id,
            access,
            feed,
            next_page: start_page,
            end_page,
            start_page,
            scan_done: false,
            replay: 0,
            cache: Vec::with_capacity((end_page - start_page) as usize),
            stats: AccessStats::default(),
        }
    }

    /// Extraction-pass counters accumulated by the first scan, completed
    /// into the full access-engine cost model.
    pub fn into_stats(self) -> AccessStats {
        let mut stats = self.stats;
        self.access.finish_stats(&mut stats);
        stats
    }

    /// Completes the scan (if it has not finished) and dismantles the
    /// source into its extracted per-page batches plus the finished
    /// access stats — the serial facade's way of building cheap replaying
    /// shard sources for the gang executor, since its `&mut` buffer pool
    /// cannot run several live scans at once.
    pub fn into_cache(mut self) -> Result<(Vec<TupleBatch>, AccessStats), SourceError> {
        self.rewind()?;
        let mut stats = self.stats;
        self.access.finish_stats(&mut stats);
        Ok((self.cache, stats))
    }

    /// Fetches and extracts page `page_no`, appending its batch to the
    /// cache.
    fn extract_next_page(&mut self, page_no: u32) -> Result<(), SourceError> {
        let (frame, _) =
            self.pool
                .fetch(PageId::new(self.heap_id, page_no), self.heap, self.disk)?;
        let bytes = self.pool.frame_bytes(frame);
        let width = self.heap.schema().len();
        let mut batch = TupleBatch::with_capacity(width, self.heap.layout().capacity as usize);
        let extracted = match self.feed {
            FeedKind::Strider => self
                .access
                .extract_page_into(bytes, &mut batch)
                .map(|cycles| self.stats.strider_cycles += cycles)
                .map_err(|e| SourceError(e.to_string())),
            FeedKind::Cpu => PageView::new(bytes, *self.heap.layout())
                .and_then(|view| view.deform_all_into(self.heap.schema(), &mut batch))
                .map_err(SourceError::from),
        };
        // Unpin before propagating any extraction error: a corrupt page
        // must not leave its frame pinned for the pool's lifetime.
        self.pool.unpin(frame);
        extracted?;
        self.stats.pages += 1;
        self.stats.tuples += batch.len() as u64;
        self.cache.push(batch);
        Ok(())
    }
}

impl TupleSource for PageStreamSource<'_> {
    fn width(&self) -> usize {
        self.heap.schema().len()
    }

    fn next_batch(&mut self) -> Result<Option<&TupleBatch>, SourceError> {
        if self.scan_done {
            // Epoch replay from the extraction cache.
            if self.replay >= self.cache.len() {
                return Ok(None);
            }
            self.replay += 1;
            return Ok(Some(&self.cache[self.replay - 1]));
        }
        if self.next_page >= self.end_page {
            self.scan_done = true;
            self.replay = self.cache.len();
            return Ok(None);
        }
        let page_no = self.next_page;
        self.next_page += 1;
        self.extract_next_page(page_no)?;
        Ok(Some(self.cache.last().expect("page just extracted")))
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        // A mid-scan rewind must still visit every page exactly once so
        // the access stats describe one full extraction pass.
        while !self.scan_done {
            if self.next_batch()?.is_none() {
                break;
            }
        }
        self.replay = 0;
        Ok(())
    }

    fn tuple_count_hint(&self) -> Option<u64> {
        Some(
            self.heap
                .tuples_in_page_range(self.start_page, self.end_page),
        )
    }
}

/// The concurrent twin of [`PageStreamSource`]: streams a table out of a
/// [`SharedBufferPool`] through `&self` fetches, so many queries can scan
/// simultaneously. Page bytes come back as `Arc<[u8]>` images; each is
/// held only for the duration of its extraction, so the source never pins
/// a frame across engine compute.
///
/// Because the shared pool's statistics aggregate *every* concurrent
/// query, this source meters its own simulated I/O: the per-query
/// `io_seconds` it accumulates is exactly what [`PageStreamSource`] would
/// have read off a private pool's stats delta. Extraction math and batch
/// boundaries are identical, which is what keeps concurrent results
/// bit-identical to the single-threaded path.
pub struct SharedPageStreamSource<'a> {
    pool: &'a SharedBufferPool,
    disk: &'a DiskModel,
    heap: &'a HeapFile,
    heap_id: HeapId,
    access: &'a AccessEngine,
    feed: FeedKind,
    next_page: u32,
    /// One past the last page this source scans (a shard boundary for
    /// gang-parallel scans; `page_count` for a whole-table scan).
    end_page: u32,
    start_page: u32,
    scan_done: bool,
    replay: usize,
    cache: Vec<TupleBatch>,
    stats: AccessStats,
    io_seconds: Seconds,
}

impl<'a> SharedPageStreamSource<'a> {
    pub fn new(
        pool: &'a SharedBufferPool,
        disk: &'a DiskModel,
        heap: &'a HeapFile,
        heap_id: HeapId,
        access: &'a AccessEngine,
        feed: FeedKind,
    ) -> SharedPageStreamSource<'a> {
        SharedPageStreamSource::with_range(
            pool,
            disk,
            heap,
            heap_id,
            access,
            feed,
            0,
            heap.page_count(),
        )
    }

    /// A source over the page range `[start_page, end_page)` — one shard
    /// of a gang-parallel scan. The shared pool's `&self` fetches let any
    /// number of shard sources stream simultaneously, each metering its
    /// own simulated I/O.
    #[allow(clippy::too_many_arguments)]
    pub fn with_range(
        pool: &'a SharedBufferPool,
        disk: &'a DiskModel,
        heap: &'a HeapFile,
        heap_id: HeapId,
        access: &'a AccessEngine,
        feed: FeedKind,
        start_page: u32,
        end_page: u32,
    ) -> SharedPageStreamSource<'a> {
        let end_page = end_page.min(heap.page_count());
        let start_page = start_page.min(end_page);
        SharedPageStreamSource {
            pool,
            disk,
            heap,
            heap_id,
            access,
            feed,
            next_page: start_page,
            end_page,
            start_page,
            scan_done: false,
            replay: 0,
            cache: Vec::with_capacity((end_page - start_page) as usize),
            stats: AccessStats::default(),
            io_seconds: 0.0,
        }
    }

    /// Extraction-pass counters plus the simulated disk seconds this
    /// query's first scan was charged.
    pub fn into_stats(self) -> (AccessStats, Seconds) {
        let mut stats = self.stats;
        self.access.finish_stats(&mut stats);
        (stats, self.io_seconds)
    }

    fn extract_next_page(&mut self, page_no: u32) -> Result<(), SourceError> {
        let (bytes, io) =
            self.pool
                .fetch(PageId::new(self.heap_id, page_no), self.heap, self.disk)?;
        self.io_seconds += io;
        let width = self.heap.schema().len();
        let mut batch = TupleBatch::with_capacity(width, self.heap.layout().capacity as usize);
        match self.feed {
            FeedKind::Strider => self
                .access
                .extract_page_into(&bytes, &mut batch)
                .map(|cycles| self.stats.strider_cycles += cycles)
                .map_err(|e| SourceError(e.to_string()))?,
            FeedKind::Cpu => PageView::new(&bytes, *self.heap.layout())
                .and_then(|view| view.deform_all_into(self.heap.schema(), &mut batch))
                .map_err(SourceError::from)?,
        };
        // `bytes` drops here, releasing the frame hold — errors included,
        // so a corrupt page cannot leak a held frame.
        self.stats.pages += 1;
        self.stats.tuples += batch.len() as u64;
        self.cache.push(batch);
        Ok(())
    }
}

impl TupleSource for SharedPageStreamSource<'_> {
    fn width(&self) -> usize {
        self.heap.schema().len()
    }

    fn next_batch(&mut self) -> Result<Option<&TupleBatch>, SourceError> {
        if self.scan_done {
            if self.replay >= self.cache.len() {
                return Ok(None);
            }
            self.replay += 1;
            return Ok(Some(&self.cache[self.replay - 1]));
        }
        if self.next_page >= self.end_page {
            self.scan_done = true;
            self.replay = self.cache.len();
            return Ok(None);
        }
        let page_no = self.next_page;
        self.next_page += 1;
        self.extract_next_page(page_no)?;
        Ok(Some(self.cache.last().expect("page just extracted")))
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        // A mid-scan rewind must still visit every page exactly once so
        // the access stats describe one full extraction pass.
        while !self.scan_done {
            if self.next_batch()?.is_none() {
                break;
            }
        }
        self.replay = 0;
        Ok(())
    }

    fn tuple_count_hint(&self) -> Option<u64> {
        Some(
            self.heap
                .tuples_in_page_range(self.start_page, self.end_page),
        )
    }
}
