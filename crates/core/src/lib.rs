//! # DAnA — in-RDBMS hardware acceleration of advanced analytics
//!
//! A full-system Rust reproduction of *"In-RDBMS Hardware Acceleration of
//! Advanced Analytics"* (Mahajan et al., PVLDB 11(11), 2018).
//!
//! DAnA turns a machine-learning UDF — written in a Python-embedded DSL and
//! invoked from SQL — into an FPGA accelerator whose **Striders** walk raw
//! buffer-pool pages on-chip, feeding a multi-threaded selective-SIMD
//! **execution engine** that trains the model. This crate is the façade
//! tying the whole stack together:
//!
//! ```text
//!  DSL (dana-dsl) ──► hDFG (dana-hdfg) ──► compiler (dana-compiler)
//!                                              │ engine design + Strider program
//!                                              ▼
//!  SQL query ──► catalog (dana-storage) ──► [Dana::execute]
//!                     │ buffer pool                │
//!                     ▼                            ▼
//!            pages ──AXI──► access engine (dana-strider)
//!                                  │ tuples
//!                                  ▼
//!                        execution engine (dana-engine) ──► trained model
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use dana::prelude::*;
//!
//! // A database with a training table.
//! let mut db = Dana::default_system();
//! let workload = dana_workloads::workload("Patient").unwrap().scaled(0.01);
//! let table = dana_workloads::generate(&workload, 32 * 1024, 42).unwrap();
//! db.create_table("patient_data", table.heap).unwrap();
//!
//! // The UDF (≈15 DSL lines) — deploy compiles it to an accelerator.
//! let spec = workload.spec();
//! db.deploy(&spec, "patient_data").unwrap();
//!
//! // Run it from SQL.
//! let out = db.execute("SELECT * FROM dana.linearR('patient_data');").unwrap();
//! assert!(out.report.timing.total_seconds > 0.0);
//! ```

pub mod advisor;
pub mod analytic;
pub mod error;
pub mod exec;
pub mod pipeline;
pub mod query;
pub mod report;
pub mod runtime;
pub mod source;

pub use advisor::{BackendChoice, BackendOption, HardwareProfile, StrategyComparison, Workload};
pub use analytic::{
    analytic_dana, analytic_dana_threads, analytic_external, analytic_greenplum, analytic_madlib,
    compile_workload, AnalyticTiming, SystemParams,
};
pub use dana_engine::{BackendKind, CpuBackend, ExecutionBackend, FpgaBackend};
pub use dana_infer::{MetricKind, ScoringRecipe, ScoringStats};
pub use dana_obs::{MetricsRegistry, QueryTrace, SpanRecorder, StatsSnapshot, TraceSpan};
pub use dana_parallel::{ParallelError, ShardPlan, ShardRange};
pub use dana_scan::{CmpOp, Predicate, ScanSpec};
pub use error::{DanaError, DanaResult};
pub use exec::{ArtifactBlob, CachedAccelerator, RunArtifacts, ShardArtifacts, TrainedModels};
pub use pipeline::{Dana, DeployInfo, DropSummary};
pub use query::{
    parse_query, parse_statement, EvaluateCall, PointCall, PredictCall, QueryCall, Statement,
};
pub use report::{
    AnalyzeReport, DanaReport, DanaTiming, EvalReport, PointReport, PredictReport, QueryOutcome,
    StatementOutcome,
};
pub use runtime::ExecutionMode;
pub use source::{FeedKind, PageStreamSource, ScanState, SharedPageStreamSource};

/// One-stop imports for examples and tests.
pub mod prelude {
    pub use crate::advisor::{BackendChoice, HardwareProfile, StrategyComparison};
    pub use crate::pipeline::{Dana, DeployInfo};
    pub use crate::report::{DanaReport, DanaTiming, QueryOutcome};
    pub use crate::runtime::ExecutionMode;
    pub use crate::{DanaError, DanaResult};
    pub use dana_dsl::{parse_udf, AlgoBuilder, AlgoSpec, MergeOp};
    pub use dana_engine::BackendKind;
    pub use dana_fpga::FpgaSpec;
    pub use dana_ml::{Algorithm, TrainConfig};
    pub use dana_storage::{BufferPoolConfig, DiskModel, HeapFile, Schema, Tuple};
}
