//! The cost-based backend advisor: picks an execution substrate per
//! query by break-even analysis.
//!
//! The FPGA tier is asymptotically faster — its simulated engine retires
//! a whole thread group of tuples in `cycles_per_group` cycles at the
//! accelerator clock — but every run pays fixed costs the CPU tier does
//! not: the one-time configuration transfer ([`SETUP_SECONDS`]) and the
//! per-epoch host orchestration ([`EPOCH_OVERHEAD_S`]). Tailwind-style
//! break-even reasoning follows: offload only pays above a row threshold
//! where the FPGA's per-tuple advantage has amortized those fixed costs.
//!
//! A [`HardwareProfile`] carries the per-backend throughput estimates —
//! the CPU side calibrated by a one-time microbench
//! ([`dana_engine::calibrate_cpu_lane_rate`]) — and [`advise`] turns a
//! profile plus a workload shape into a [`StrategyComparison`]: estimated
//! seconds per backend, the chosen backend, and the break-even row count.
//! `EXPLAIN <stmt>` prints exactly this comparison without running the
//! statement; `WITH (backend = cpu|fpga)` overrides the choice.

use crate::error::{DanaError, DanaResult};
use crate::runtime::{EPOCH_OVERHEAD_S, SETUP_SECONDS};
use dana_engine::BackendKind;

/// What the query (or its `WITH` clause) asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Let the advisor pick by break-even analysis (the default).
    #[default]
    Auto,
    /// Force the simulated-FPGA tier.
    Fpga,
    /// Force the native CPU tier.
    Cpu,
}

impl BackendChoice {
    /// Parses a `WITH (backend = ...)` value. Unknown values are a typed
    /// parse error naming the accepted set.
    pub fn parse(value: &str) -> DanaResult<BackendChoice> {
        match value.to_ascii_lowercase().as_str() {
            "auto" => Ok(BackendChoice::Auto),
            "fpga" => Ok(BackendChoice::Fpga),
            "cpu" => Ok(BackendChoice::Cpu),
            other => Err(DanaError::Query(format!(
                "unknown backend '{other}' (expected cpu, fpga, or auto)"
            ))),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            BackendChoice::Auto => "auto",
            BackendChoice::Fpga => "fpga",
            BackendChoice::Cpu => "cpu",
        }
    }
}

/// Per-backend throughput and overhead estimates the advisor prices
/// workloads against.
///
/// The defaults are conservative constants; [`HardwareProfile::calibrated`]
/// replaces the CPU rate with a measured one. The profile is a plain
/// value — tests construct synthetic profiles to pin the advisor's
/// decisions deterministically.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HardwareProfile {
    /// CPU tier throughput: lowered SoA lane-ops per second (one lane-op
    /// = one inner-loop element of the lockstep executor). Calibrated by
    /// the one-time microbench.
    pub cpu_lane_ops_per_second: f64,
    /// Simulated accelerator clock, Hz.
    pub fpga_clock_hz: f64,
    /// One-time configuration transfer charged per FPGA run.
    pub fpga_setup_seconds: f64,
    /// Host-side orchestration per epoch on the FPGA tier.
    pub fpga_epoch_overhead_seconds: f64,
    /// Tuples the CPU tier buffers per scheduling chunk (informational;
    /// the SoA group size itself is the design's thread count).
    pub cpu_batch_rows: u32,
    /// Tuples per streamed page batch on the FPGA tier (informational).
    pub fpga_batch_rows: u32,
    /// Manual break-even override: below this many rows the advisor
    /// picks CPU, at or above it FPGA, bypassing the throughput model.
    pub offload_threshold_rows: Option<u64>,
}

impl Default for HardwareProfile {
    fn default() -> HardwareProfile {
        HardwareProfile {
            // A deliberately conservative scalar-ish rate; calibration
            // typically measures 10–100× this on a vectorizing host.
            cpu_lane_ops_per_second: 50.0e6,
            fpga_clock_hz: 150.0e6,
            fpga_setup_seconds: SETUP_SECONDS,
            fpga_epoch_overhead_seconds: EPOCH_OVERHEAD_S,
            cpu_batch_rows: 4096,
            fpga_batch_rows: 65_536,
            offload_threshold_rows: None,
        }
    }
}

impl HardwareProfile {
    /// A profile whose CPU rate was measured on this host by the
    /// one-time microbench. Call once per process and reuse — the
    /// microbench trains a small synthetic design a few times.
    pub fn calibrated() -> HardwareProfile {
        HardwareProfile {
            cpu_lane_ops_per_second: dana_engine::calibrate_cpu_lane_rate(),
            ..HardwareProfile::default()
        }
    }

    /// The same profile with the simulated clock taken from an FPGA spec.
    pub fn with_clock_hz(mut self, hz: f64) -> HardwareProfile {
        self.fpga_clock_hz = hz;
        self
    }

    /// The same profile with a manual break-even override. `Some(0)`
    /// means "always offload" (the paper's behavior — DAnA has no CPU
    /// tier); `None` re-enables the throughput model.
    pub fn with_offload_threshold(mut self, rows: Option<u64>) -> HardwareProfile {
        self.offload_threshold_rows = rows;
        self
    }
}

/// The shape of one training or scoring run, as the advisor prices it.
/// Callers assemble this from the deployed accelerator's lowered program
/// and static estimate; no data is touched.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Rows one epoch scans.
    pub rows: u64,
    /// Epochs the run is budgeted for (1 for scoring).
    pub epochs: u32,
    /// Lockstep threads (lanes) the design runs.
    pub threads: u16,
    /// Simulated engine cycles to retire one full thread group (the
    /// static schedule's per-batch cost).
    pub cycles_per_group: u64,
    /// CPU lane-ops per tuple (lowered per-tuple region + broadcast
    /// refill).
    pub lane_ops_per_tuple: u64,
    /// CPU ops per thread group (post-merge, tree merge, write-back).
    pub ops_per_group: u64,
    /// Post-filter fraction of `rows` a pushdown `WHERE` is estimated to
    /// keep (1.0 = no predicates). Every row-proportional term on both
    /// tiers scales by it — a selective scan feeds the engine fewer
    /// tuples no matter where it runs.
    pub selectivity: f64,
    /// Fraction of the table's columns a `COLUMNS` projection feeds the
    /// engine (1.0 = full width). Scales the CPU tier's per-tuple ops —
    /// its lanes touch only projected values — while the FPGA schedule's
    /// per-group cycles are fixed by the compiled design.
    pub width_fraction: f64,
}

impl Workload {
    /// Rows estimated to reach the engine after the pushdown filter.
    pub fn effective_rows(&self) -> u64 {
        (self.rows as f64 * self.selectivity.clamp(0.0, 1.0)).ceil() as u64
    }

    fn groups(&self) -> u64 {
        let threads = self.threads.max(1) as u64;
        self.effective_rows().div_ceil(threads).max(1)
    }

    /// CPU lane-ops per tuple after projection.
    fn cpu_ops_per_tuple(&self) -> f64 {
        self.lane_ops_per_tuple as f64 * self.width_fraction.clamp(0.0, 1.0)
    }
}

/// One backend's row in the comparison.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BackendOption {
    pub backend: BackendKind,
    /// Estimated end-to-end seconds for this workload on this backend
    /// (simulated-model seconds for FPGA, projected wall seconds for
    /// CPU — the advisor compares them as commensurable costs).
    pub estimated_seconds: f64,
    /// This option's speedup over the slowest option (≥ 1.0; the winner
    /// has the largest value).
    pub estimated_speedup: f64,
    /// Whether the substrate can run this query at all.
    pub available: bool,
}

/// The advisor's verdict: per-backend costs, the chosen backend, and the
/// break-even row count — what `EXPLAIN` prints.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StrategyComparison {
    /// Human-readable statement being priced (e.g. `EXECUTE m ON TABLE t`).
    pub statement: String,
    pub rows: u64,
    pub epochs: u32,
    pub options: Vec<BackendOption>,
    pub chosen: BackendKind,
    /// True when a `WITH (backend = ...)` override forced the choice.
    pub forced: bool,
    /// Rows at which the FPGA tier breaks even with the CPU tier for
    /// this program shape; `None` when offload never pays.
    pub break_even_rows: Option<u64>,
    /// One-line explanation of the decision.
    pub rationale: String,
}

impl StrategyComparison {
    /// The priced cost of a backend, if it appears in the comparison.
    pub fn estimated_seconds(&self, backend: BackendKind) -> Option<f64> {
        self.options
            .iter()
            .find(|o| o.backend == backend)
            .map(|o| o.estimated_seconds)
    }
}

impl std::fmt::Display for StrategyComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "EXPLAIN {} ({} rows × {} epochs)",
            self.statement, self.rows, self.epochs
        )?;
        for o in &self.options {
            writeln!(
                f,
                "  {} {:<4} est {:>10.3} ms  ({:.2}× vs slowest{})",
                if o.backend == self.chosen { "→" } else { " " },
                o.backend.name(),
                o.estimated_seconds * 1e3,
                o.estimated_speedup,
                if o.available { "" } else { ", unavailable" },
            )?;
        }
        match self.break_even_rows {
            Some(be) => writeln!(f, "  break-even: {be} rows")?,
            None => writeln!(f, "  break-even: never (offload does not pay)")?,
        }
        write!(
            f,
            "  chosen: {}{} — {}",
            self.chosen.name(),
            if self.forced { " (forced)" } else { "" },
            self.rationale
        )
    }
}

/// Estimated FPGA-tier seconds: fixed setup, plus per-epoch host
/// orchestration and the static schedule's engine cycles at the
/// accelerator clock.
pub fn fpga_seconds(p: &HardwareProfile, w: &Workload) -> f64 {
    let epochs = w.epochs.max(1) as f64;
    let engine = (w.groups() * w.cycles_per_group) as f64 / p.fpga_clock_hz;
    p.fpga_setup_seconds + epochs * (p.fpga_epoch_overhead_seconds + engine)
}

/// Projected CPU-tier wall seconds: lane-ops through the calibrated lane
/// rate, no fixed offload costs.
pub fn cpu_seconds(p: &HardwareProfile, w: &Workload) -> f64 {
    let epochs = w.epochs.max(1) as f64;
    let per_tuple = w.effective_rows() as f64 * w.cpu_ops_per_tuple();
    let per_group = w.groups() as f64 * w.ops_per_group as f64;
    epochs * (per_tuple + per_group) / p.cpu_lane_ops_per_second
}

/// The row count at which the FPGA tier's marginal advantage has paid
/// off its fixed costs for this program shape — `None` when the CPU
/// tier's marginal rate is at least as good (offload never pays).
pub fn break_even_rows(p: &HardwareProfile, w: &Workload) -> Option<u64> {
    if let Some(rows) = p.offload_threshold_rows {
        return Some(rows);
    }
    let threads = w.threads.max(1) as f64;
    let epochs = w.epochs.max(1) as f64;
    // Marginal seconds per row on each tier.
    let cpu_slope = epochs * (w.cpu_ops_per_tuple() + w.ops_per_group as f64 / threads)
        / p.cpu_lane_ops_per_second;
    let fpga_slope = epochs * w.cycles_per_group as f64 / threads / p.fpga_clock_hz;
    let advantage = cpu_slope - fpga_slope;
    if advantage <= 0.0 {
        return None;
    }
    let fixed = p.fpga_setup_seconds + epochs * p.fpga_epoch_overhead_seconds;
    Some((fixed / advantage).ceil() as u64)
}

/// Prices `workload` on both backends and picks one: the requested
/// backend when forced, otherwise the break-even rule (CPU below the
/// threshold, FPGA at or above it).
pub fn advise(
    profile: &HardwareProfile,
    workload: &Workload,
    requested: BackendChoice,
    statement: String,
) -> StrategyComparison {
    let fpga = fpga_seconds(profile, workload);
    let cpu = cpu_seconds(profile, workload);
    let break_even = break_even_rows(profile, workload);
    let rows = workload.effective_rows();
    let auto_choice = match break_even {
        Some(be) if rows >= be => BackendKind::Fpga,
        _ => BackendKind::Cpu,
    };
    let (chosen, forced) = match requested {
        BackendChoice::Auto => (auto_choice, false),
        BackendChoice::Fpga => (BackendKind::Fpga, true),
        BackendChoice::Cpu => (BackendKind::Cpu, true),
    };
    let slowest = fpga.max(cpu).max(f64::MIN_POSITIVE);
    let option = |backend, est: f64| BackendOption {
        backend,
        estimated_seconds: est,
        estimated_speedup: slowest / est.max(f64::MIN_POSITIVE),
        available: true,
    };
    let rationale = if forced {
        format!("WITH (backend = {}) override", chosen.name())
    } else {
        match break_even {
            Some(be) if rows >= be => {
                format!("{rows} rows ≥ break-even {be}: fixed offload cost amortized")
            }
            Some(be) => {
                format!("{rows} rows < break-even {be}: offload overhead dominates")
            }
            None => "CPU marginal rate ≥ FPGA: offload never pays for this program".to_string(),
        }
    };
    StrategyComparison {
        statement,
        rows: workload.rows,
        epochs: workload.epochs.max(1),
        options: vec![
            option(BackendKind::Fpga, fpga),
            option(BackendKind::Cpu, cpu),
        ],
        chosen,
        forced,
        break_even_rows: break_even,
        rationale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic profile with round numbers: the FPGA retires a
    /// 16-thread group in 100 cycles at 100 MHz (62.5 ns/row marginal);
    /// the CPU does 10 lane-ops/tuple at 10 M lane-ops/s (1 µs/row).
    /// Fixed FPGA cost: 30 ms setup + 25 ms/epoch.
    fn profile() -> HardwareProfile {
        HardwareProfile {
            cpu_lane_ops_per_second: 10.0e6,
            fpga_clock_hz: 100.0e6,
            fpga_setup_seconds: 30.0e-3,
            fpga_epoch_overhead_seconds: 25.0e-3,
            ..HardwareProfile::default()
        }
    }

    fn workload(rows: u64) -> Workload {
        Workload {
            rows,
            epochs: 1,
            threads: 16,
            cycles_per_group: 100,
            lane_ops_per_tuple: 10,
            ops_per_group: 8,
            selectivity: 1.0,
            width_fraction: 1.0,
        }
    }

    #[test]
    fn selectivity_scales_both_tiers_and_can_flip_the_choice() {
        let p = profile();
        // A table comfortably past break-even offloads…
        let full = advise(&p, &workload(100_000), BackendChoice::Auto, "E".into());
        assert_eq!(full.chosen, dana_engine::BackendKind::Fpga);
        // …but a 10%-selective pushdown scan of it feeds the engine only
        // 10k rows, under break-even, so auto routes it to the CPU tier.
        let mut filtered = workload(100_000);
        filtered.selectivity = 0.1;
        assert_eq!(filtered.effective_rows(), 10_000);
        let c = advise(&p, &filtered, BackendChoice::Auto, "E".into());
        assert_eq!(c.chosen, dana_engine::BackendKind::Cpu);
        // Both tiers price the filtered scan cheaper than the full one.
        assert!(cpu_seconds(&p, &filtered) < cpu_seconds(&p, &workload(100_000)));
        assert!(fpga_seconds(&p, &filtered) < fpga_seconds(&p, &workload(100_000)));
    }

    #[test]
    fn projection_cheapens_the_cpu_tier_only() {
        let p = profile();
        let mut narrow = workload(100_000);
        narrow.width_fraction = 0.25;
        assert!(cpu_seconds(&p, &narrow) < cpu_seconds(&p, &workload(100_000)));
        assert_eq!(
            fpga_seconds(&p, &narrow),
            fpga_seconds(&p, &workload(100_000))
        );
        // A narrower CPU feed raises the FPGA's break-even row count.
        let be_full = break_even_rows(&p, &workload(1)).unwrap();
        let be_narrow = break_even_rows(&p, &narrow).unwrap();
        assert!(be_narrow > be_full, "full={be_full} narrow={be_narrow}");
    }

    #[test]
    fn tiny_table_prefers_cpu_large_table_prefers_fpga() {
        let p = profile();
        // Break-even ≈ 55 ms / (1.05 µs − 62.5 ns) ≈ 55.7k rows.
        let be = break_even_rows(&p, &workload(1)).unwrap();
        assert!((50_000..70_000).contains(&be), "break-even {be}");
        let small = advise(&p, &workload(1_000), BackendChoice::Auto, "E".into());
        assert_eq!(small.chosen, dana_engine::BackendKind::Cpu);
        assert!(!small.forced);
        let large = advise(&p, &workload(1_000_000), BackendChoice::Auto, "E".into());
        assert_eq!(large.chosen, dana_engine::BackendKind::Fpga);
        // And the priced costs agree with the choice.
        assert!(
            small
                .estimated_seconds(dana_engine::BackendKind::Cpu)
                .unwrap()
                < small
                    .estimated_seconds(dana_engine::BackendKind::Fpga)
                    .unwrap()
        );
        assert!(
            large
                .estimated_seconds(dana_engine::BackendKind::Fpga)
                .unwrap()
                < large
                    .estimated_seconds(dana_engine::BackendKind::Cpu)
                    .unwrap()
        );
    }

    #[test]
    fn exactly_at_break_even_offloads() {
        let p = profile();
        let be = break_even_rows(&p, &workload(1)).unwrap();
        let at = advise(&p, &workload(be), BackendChoice::Auto, "E".into());
        assert_eq!(at.chosen, dana_engine::BackendKind::Fpga);
        let below = advise(&p, &workload(be - 1), BackendChoice::Auto, "E".into());
        assert_eq!(below.chosen, dana_engine::BackendKind::Cpu);
    }

    #[test]
    fn with_backend_override_wins_over_auto() {
        let p = profile();
        // Force FPGA on a tiny table auto would route to CPU…
        let forced = advise(&p, &workload(10), BackendChoice::Fpga, "E".into());
        assert_eq!(forced.chosen, dana_engine::BackendKind::Fpga);
        assert!(forced.forced);
        // …and CPU on a huge table auto would offload.
        let forced = advise(&p, &workload(10_000_000), BackendChoice::Cpu, "E".into());
        assert_eq!(forced.chosen, dana_engine::BackendKind::Cpu);
        assert!(forced.forced);
    }

    #[test]
    fn manual_offload_threshold_overrides_the_model() {
        let mut p = profile();
        p.offload_threshold_rows = Some(500);
        let c = advise(&p, &workload(499), BackendChoice::Auto, "E".into());
        assert_eq!(c.chosen, dana_engine::BackendKind::Cpu);
        let c = advise(&p, &workload(500), BackendChoice::Auto, "E".into());
        assert_eq!(c.chosen, dana_engine::BackendKind::Fpga);
        assert_eq!(c.break_even_rows, Some(500));
    }

    #[test]
    fn offload_never_pays_when_cpu_rate_dominates() {
        let mut p = profile();
        // An absurdly fast CPU: marginal rate beats the FPGA's.
        p.cpu_lane_ops_per_second = 1.0e12;
        assert_eq!(break_even_rows(&p, &workload(1)), None);
        let c = advise(&p, &workload(100_000_000), BackendChoice::Auto, "E".into());
        assert_eq!(c.chosen, dana_engine::BackendKind::Cpu);
        assert!(c.rationale.contains("never pays"));
    }

    #[test]
    fn more_epochs_lower_the_break_even() {
        // Setup amortizes across epochs, so per-row fixed cost shrinks…
        // but per-epoch overhead doesn't. Net: more epochs ⇒ the fixed
        // 30 ms setup matters less ⇒ threshold drops toward the
        // overhead-only limit.
        let p = profile();
        let mut w = workload(1);
        w.epochs = 1;
        let be1 = break_even_rows(&p, &w).unwrap();
        w.epochs = 20;
        let be20 = break_even_rows(&p, &w).unwrap();
        assert!(be20 < be1, "be1={be1} be20={be20}");
    }

    #[test]
    fn backend_choice_parses_and_rejects() {
        assert_eq!(BackendChoice::parse("cpu").unwrap(), BackendChoice::Cpu);
        assert_eq!(BackendChoice::parse("FPGA").unwrap(), BackendChoice::Fpga);
        assert_eq!(BackendChoice::parse("Auto").unwrap(), BackendChoice::Auto);
        let err = BackendChoice::parse("gpu").unwrap_err();
        assert!(matches!(err, DanaError::Query(msg) if msg.contains("unknown backend 'gpu'")));
    }

    #[test]
    fn comparison_display_mentions_both_tiers() {
        let p = profile();
        let c = advise(&p, &workload(1000), BackendChoice::Auto, "EXECUTE m".into());
        let text = format!("{c}");
        assert!(text.contains("fpga"), "{text}");
        assert!(text.contains("cpu"), "{text}");
        assert!(text.contains("break-even"), "{text}");
        assert!(text.contains("chosen: cpu"), "{text}");
    }

    #[test]
    fn calibrated_profile_beats_the_default_rate() {
        let p = HardwareProfile::calibrated();
        assert!(p.cpu_lane_ops_per_second >= 1.0e6);
        assert!(p.cpu_lane_ops_per_second.is_finite());
    }
}
