//! The SQL front door: `SELECT * FROM dana.<udf>('<table>');` (§4.3).
//!
//! "The RDBMS parses, optimizes, and executes the query while treating the
//! UDF as a black box" (§3) — here the interesting query shape is exactly
//! the UDF invocation, so the parser accepts that form (case-insensitive
//! keywords, optional schema prefix, single- or double-quoted table names).

use crate::error::{DanaError, DanaResult};

/// A parsed accelerated-UDF invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryCall {
    pub udf: String,
    pub table: String,
}

/// Parses `SELECT * FROM dana.linearR('training_data_table');`.
pub fn parse_query(sql: &str) -> DanaResult<QueryCall> {
    let s = sql.trim().trim_end_matches(';').trim();
    let lower = s.to_ascii_lowercase();
    let rest = lower
        .strip_prefix("select")
        .ok_or_else(|| err("expected SELECT"))?
        .trim_start();
    let rest = rest.strip_prefix('*').ok_or_else(|| err("expected SELECT *"))?.trim_start();
    let rest = rest.strip_prefix("from").ok_or_else(|| err("expected FROM"))?.trim_start();
    // Work on the original string from here to preserve identifier case.
    let tail = &s[s.len() - rest.len()..];
    let open = tail.find('(').ok_or_else(|| err("expected UDF call '(...)'"))?;
    let close = tail.rfind(')').ok_or_else(|| err("unclosed ')'"))?;
    if close < open {
        return Err(err("malformed parentheses"));
    }
    let mut udf = tail[..open].trim();
    if let Some(dot) = udf.rfind('.') {
        let schema = &udf[..dot];
        if !schema.eq_ignore_ascii_case("dana") {
            return Err(err(&format!("unknown schema '{schema}' (expected dana)")));
        }
        udf = &udf[dot + 1..];
    }
    if udf.is_empty() || !udf.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(err(&format!("bad UDF name '{udf}'")));
    }
    let arg = tail[open + 1..close].trim();
    let table = arg
        .strip_prefix('\'')
        .and_then(|a| a.strip_suffix('\''))
        .or_else(|| arg.strip_prefix('"').and_then(|a| a.strip_suffix('"')))
        .unwrap_or(arg)
        .trim();
    if table.is_empty() {
        return Err(err("empty table name"));
    }
    Ok(QueryCall { udf: udf.to_string(), table: table.to_string() })
}

fn err(msg: &str) -> DanaError {
    DanaError::Query(msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_query() {
        let q = parse_query("SELECT * FROM dana.linearR('training_data_table');").unwrap();
        assert_eq!(q.udf, "linearR");
        assert_eq!(q.table, "training_data_table");
    }

    #[test]
    fn schema_prefix_is_optional() {
        let q = parse_query("select * from svm('t1')").unwrap();
        assert_eq!(q.udf, "svm");
        assert_eq!(q.table, "t1");
    }

    #[test]
    fn case_and_quotes_flexible() {
        let q = parse_query("SELECT * FROM DANA.logisticR(\"wlan\");").unwrap();
        assert_eq!(q.udf, "logisticR");
        assert_eq!(q.table, "wlan");
        let q = parse_query("select * from dana.lrmf(netflix)").unwrap();
        assert_eq!(q.table, "netflix");
    }

    #[test]
    fn preserves_identifier_case() {
        let q = parse_query("SELECT * FROM dana.MyUdf('MyTable');").unwrap();
        assert_eq!(q.udf, "MyUdf");
        assert_eq!(q.table, "MyTable");
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "INSERT INTO t VALUES (1)",
            "SELECT x FROM dana.f('t')",
            "SELECT * FROM dana.f",
            "SELECT * FROM other.f('t')",
            "SELECT * FROM dana.f('')",
            "SELECT * FROM dana.f)t'(",
        ] {
            assert!(parse_query(bad).is_err(), "{bad} should fail");
        }
    }
}
