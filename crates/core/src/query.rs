//! The SQL front door: `SELECT * FROM dana.<udf>('<table>');` (§4.3).
//!
//! "The RDBMS parses, optimizes, and executes the query while treating the
//! UDF as a black box" (§3) — here the interesting query shape is exactly
//! the UDF invocation, so the parser accepts that form (case-insensitive
//! keywords, optional schema prefix, single- or double-quoted table names).

use crate::error::{DanaError, DanaResult};

/// A parsed accelerated-UDF invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryCall {
    pub udf: String,
    pub table: String,
}

/// Parses `SELECT * FROM dana.linearR('training_data_table');`.
pub fn parse_query(sql: &str) -> DanaResult<QueryCall> {
    let s = sql.trim().trim_end_matches(';').trim();
    let lower = s.to_ascii_lowercase();
    let rest = lower
        .strip_prefix("select")
        .ok_or_else(|| err("expected SELECT"))?
        .trim_start();
    let rest = rest
        .strip_prefix('*')
        .ok_or_else(|| err("expected SELECT *"))?
        .trim_start();
    let rest = rest
        .strip_prefix("from")
        .ok_or_else(|| err("expected FROM"))?
        .trim_start();
    // Work on the original string from here to preserve identifier case.
    let tail = &s[s.len() - rest.len()..];
    let open = tail
        .find('(')
        .ok_or_else(|| err("expected UDF call '(...)'"))?;
    let close = tail.rfind(')').ok_or_else(|| err("unclosed ')'"))?;
    if close < open {
        return Err(err("malformed parentheses"));
    }
    let mut udf = tail[..open].trim();
    if let Some(dot) = udf.rfind('.') {
        let schema = &udf[..dot];
        if !schema.eq_ignore_ascii_case("dana") {
            return Err(err(&format!("unknown schema '{schema}' (expected dana)")));
        }
        udf = &udf[dot + 1..];
    }
    if udf.is_empty() || !udf.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(err(&format!("bad UDF name '{udf}'")));
    }
    if !tail[close + 1..].trim().is_empty() {
        return Err(err("unexpected input after UDF call"));
    }
    let arg = tail[open + 1..close].trim();
    let table = parse_table_arg(arg)?;
    if table.is_empty() {
        return Err(err("empty table name"));
    }
    Ok(QueryCall {
        udf: udf.to_string(),
        table: table.to_string(),
    })
}

/// Parses the UDF's single table-name argument: a quoted or bare
/// identifier, nothing else. Extra arguments (`dana.f('t', 1)`) and
/// unbalanced/mismatched quotes (`dana.f('t)`, `dana.f('t")`) are rejected
/// rather than silently accepted.
fn parse_table_arg(arg: &str) -> DanaResult<&str> {
    for quote in ['\'', '"'] {
        if let Some(rest) = arg.strip_prefix(quote) {
            // `'t', 1` — diagnose the extra argument, not the quoting.
            if let Some(inner) = rest.split_once(quote).map(|(t, after)| (t, after.trim())) {
                let (table, after) = inner;
                if after.starts_with(',') {
                    return Err(err("UDF takes exactly one argument (the table name)"));
                }
                if !after.is_empty() {
                    return Err(err(&format!(
                        "unexpected input after quoted table name: '{after}'"
                    )));
                }
                return Ok(table.trim());
            }
            return Err(err(&format!("unbalanced {quote} quote in table argument")));
        }
        if arg.ends_with(quote) {
            return Err(err(&format!("unbalanced {quote} quote in table argument")));
        }
    }
    // Bare identifier: a single argument with no quoting.
    if arg.contains(',') {
        return Err(err("UDF takes exactly one argument (the table name)"));
    }
    if arg.contains(['\'', '"', ' ', '\t']) {
        return Err(err(&format!("bad table argument '{arg}'")));
    }
    Ok(arg)
}

fn err(msg: &str) -> DanaError {
    DanaError::Query(msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_query() {
        let q = parse_query("SELECT * FROM dana.linearR('training_data_table');").unwrap();
        assert_eq!(q.udf, "linearR");
        assert_eq!(q.table, "training_data_table");
    }

    #[test]
    fn schema_prefix_is_optional() {
        let q = parse_query("select * from svm('t1')").unwrap();
        assert_eq!(q.udf, "svm");
        assert_eq!(q.table, "t1");
    }

    #[test]
    fn case_and_quotes_flexible() {
        let q = parse_query("SELECT * FROM DANA.logisticR(\"wlan\");").unwrap();
        assert_eq!(q.udf, "logisticR");
        assert_eq!(q.table, "wlan");
        let q = parse_query("select * from dana.lrmf(netflix)").unwrap();
        assert_eq!(q.table, "netflix");
    }

    #[test]
    fn preserves_identifier_case() {
        let q = parse_query("SELECT * FROM dana.MyUdf('MyTable');").unwrap();
        assert_eq!(q.udf, "MyUdf");
        assert_eq!(q.table, "MyTable");
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "INSERT INTO t VALUES (1)",
            "SELECT x FROM dana.f('t')",
            "SELECT * FROM dana.f",
            "SELECT * FROM other.f('t')",
            "SELECT * FROM dana.f('')",
            "SELECT * FROM dana.f)t'(",
        ] {
            assert!(parse_query(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn rejects_extra_call_arguments() {
        for bad in [
            "SELECT * FROM dana.f('t', 1);",
            "SELECT * FROM dana.f('t', 'u');",
            "SELECT * FROM dana.f(t, u)",
            "SELECT * FROM dana.f('t' , )",
        ] {
            assert!(parse_query(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn rejects_unbalanced_or_mismatched_quotes() {
        for bad in [
            "SELECT * FROM dana.f('t);",
            "SELECT * FROM dana.f(t');",
            "SELECT * FROM dana.f(\"t);",
            "SELECT * FROM dana.f(t\");",
            "SELECT * FROM dana.f('t\");",
            "SELECT * FROM dana.f('a'b');",
        ] {
            assert!(parse_query(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage_after_call() {
        for bad in [
            "SELECT * FROM dana.f('t') WHERE x = 1;",
            "SELECT * FROM dana.f('t') extra",
        ] {
            assert!(parse_query(bad).is_err(), "{bad} should fail");
        }
        // A trailing semicolon and whitespace remain fine.
        assert!(parse_query("SELECT * FROM dana.f('t')  ;  ").is_ok());
    }
}
