//! The SQL front door (§4.3):
//!
//! * `SELECT * FROM dana.<udf>('<table>');` — train (the paper's form);
//!   `EXECUTE dana.<udf>('<table>');` is an accepted synonym;
//! * `PREDICT dana.<udf>('<table>') INTO '<dest>';` — score `table` with
//!   the UDF's latest trained model and materialize the predictions as a
//!   new catalog table `dest`;
//! * `EVALUATE dana.<udf>('<table>'[, '<metric>']);` — score and fold an
//!   in-database quality metric, exporting nothing.
//!
//! Every table-scanning form takes up to three optional trailing clauses,
//! **in any order**, each at most once:
//!
//! * **`WHERE <col> <op> <number> [AND …]`** — pushdown predicate: rows
//!   are filtered page-at-a-time *before* tuple extraction, and zone maps
//!   skip pages no row of which can match;
//! * **`COLUMNS (c1, c2, …)`** — pushdown projection: only the named
//!   columns reach the engine;
//! * **`WITH (...)`** — comma-separated options:
//!   * `shards = k` — the query runs intra-query data-parallel on a gang
//!     of `k` accelerator instances (page-range shards, epoch-boundary
//!     model merging; parallel PREDICT stays bit-identical to serial for
//!     every `k`);
//!   * `backend = cpu|fpga|auto` — pins the execution substrate, or
//!     leaves the choice to the cost-based backend advisor (`auto`, the
//!     default).
//!
//! Prefixing any statement with **`EXPLAIN`** parses the inner statement
//! and asks the advisor for its per-backend [`crate::StrategyComparison`]
//! without executing anything.
//!
//! "The RDBMS parses, optimizes, and executes the query while treating the
//! UDF as a black box" (§3) — here the interesting query shapes are exactly
//! the UDF invocations, so the parser accepts those forms (case-insensitive
//! keywords, optional schema prefix, single- or double-quoted names).

use dana_infer::MetricKind;
use dana_scan::{CmpOp, Predicate, ScanSpec};

use crate::advisor::BackendChoice;
use crate::error::{DanaError, DanaResult};

/// The parsed trailing `WITH (...)` option clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct WithOptions {
    shards: Option<u16>,
    backend: BackendChoice,
    trace: bool,
    timeout_ms: Option<u64>,
    retries: Option<u32>,
}

/// A parsed accelerated-UDF training invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCall {
    pub udf: String,
    pub table: String,
    /// `WHERE`/`COLUMNS` pushdown spec compiled at parse time (`None` = a
    /// plain full-table scan).
    pub scan: Option<ScanSpec>,
    /// `WITH (shards = k)`: gang size for intra-query parallelism
    /// (`None` = serial).
    pub shards: Option<u16>,
    /// `WITH (backend = ...)`: the requested execution substrate.
    pub backend: BackendChoice,
    /// `WITH (trace = on)`: attach a query-lifecycle trace to the reply.
    pub trace: bool,
    /// `WITH (timeout_ms = n)`: query deadline; past it, cooperative
    /// cancellation returns a typed deadline error (`None` = the
    /// server's default, if any).
    pub timeout_ms: Option<u64>,
    /// `WITH (retries = n)`: transient-fault retry budget override
    /// (`None` = the server's default policy).
    pub retries: Option<u32>,
}

/// A parsed `PREDICT … INTO …` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictCall {
    pub udf: String,
    /// The table whose rows are scored.
    pub table: String,
    /// The materialized prediction table to create.
    pub into: String,
    /// `WHERE`/`COLUMNS` pushdown spec compiled at parse time (`None` = a
    /// plain full-table scan).
    pub scan: Option<ScanSpec>,
    /// `WITH (shards = k)`: gang size for intra-query parallelism.
    pub shards: Option<u16>,
    /// `WITH (backend = ...)`: the requested execution substrate.
    pub backend: BackendChoice,
    /// `WITH (trace = on)`: attach a query-lifecycle trace to the reply.
    pub trace: bool,
    /// `WITH (timeout_ms = n)`: query deadline; past it, cooperative
    /// cancellation returns a typed deadline error (`None` = the
    /// server's default, if any).
    pub timeout_ms: Option<u64>,
    /// `WITH (retries = n)`: transient-fault retry budget override
    /// (`None` = the server's default policy).
    pub retries: Option<u32>,
}

/// A parsed point-form `PREDICT dana.<udf>(VALUES (...), ...)` statement:
/// the online fast path. Rows are bound directly from the statement —
/// there is no source table, no heap scan, and no materialized
/// destination; predictions come back inline in the reply.
#[derive(Debug, Clone, PartialEq)]
pub struct PointCall {
    pub udf: String,
    /// The literal parameter vectors to score, one per VALUES group.
    pub rows: Vec<Vec<f32>>,
    /// `WITH (backend = ...)`: the requested execution substrate.
    pub backend: BackendChoice,
    /// `WITH (trace = on)`: attach a query-lifecycle trace to the reply.
    pub trace: bool,
    /// `WITH (timeout_ms = n)`: query deadline; past it, cooperative
    /// cancellation returns a typed deadline error (`None` = the
    /// server's default, if any).
    pub timeout_ms: Option<u64>,
    /// `WITH (retries = n)`: transient-fault retry budget override
    /// (`None` = the server's default policy).
    pub retries: Option<u32>,
}

/// A parsed `EVALUATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluateCall {
    pub udf: String,
    pub table: String,
    /// Explicit metric, or `None` for the analytic's default.
    pub metric: Option<MetricKind>,
    /// `WHERE`/`COLUMNS` pushdown spec compiled at parse time (`None` = a
    /// plain full-table scan).
    pub scan: Option<ScanSpec>,
    /// `WITH (shards = k)`: gang size for intra-query parallelism.
    pub shards: Option<u16>,
    /// `WITH (backend = ...)`: the requested execution substrate.
    pub backend: BackendChoice,
    /// `WITH (trace = on)`: attach a query-lifecycle trace to the reply.
    pub trace: bool,
    /// `WITH (timeout_ms = n)`: query deadline; past it, cooperative
    /// cancellation returns a typed deadline error (`None` = the
    /// server's default, if any).
    pub timeout_ms: Option<u64>,
    /// `WITH (retries = n)`: transient-fault retry budget override
    /// (`None` = the server's default policy).
    pub retries: Option<u32>,
}

/// Any statement the front door accepts.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT * FROM dana.<udf>('<table>');` — train.
    Train(QueryCall),
    /// `PREDICT dana.<udf>('<table>') INTO '<dest>';`.
    Predict(PredictCall),
    /// `PREDICT dana.<udf>(VALUES (x, ...), ...);` — the online point
    /// fast path: score literal rows against the cached scoring program
    /// without a heap scan or a materialized destination.
    PredictPoint(PointCall),
    /// `EVALUATE dana.<udf>('<table>'[, '<metric>']);`.
    Evaluate(EvaluateCall),
    /// `EXPLAIN <stmt>;` — price the inner statement on every backend
    /// without running it.
    Explain(Box<Statement>),
    /// `EXPLAIN ANALYZE <stmt>;` — execute the inner statement with the
    /// lifecycle trace enabled and render the span tree alongside the
    /// advisor's prediction.
    ExplainAnalyze(Box<Statement>),
    /// `SHOW STATS [('<subsystem>')];` — snapshot the metrics registry.
    ShowStats(Option<String>),
}

impl Statement {
    /// Whether this statement opted into lifecycle tracing with
    /// `WITH (trace = on)`. EXPLAIN ANALYZE traces regardless; EXPLAIN
    /// and SHOW STATS execute nothing and have no trace to opt into.
    pub fn wants_trace(&self) -> bool {
        match self {
            Statement::Train(c) => c.trace,
            Statement::Predict(p) => p.trace,
            Statement::PredictPoint(p) => p.trace,
            Statement::Evaluate(e) => e.trace,
            Statement::Explain(_) | Statement::ExplainAnalyze(_) | Statement::ShowStats(_) => false,
        }
    }

    /// The statement's `WITH (timeout_ms = n)` deadline, if any.
    /// EXPLAIN ANALYZE executes its inner statement, so it inherits the
    /// inner clause; plain EXPLAIN and SHOW STATS execute nothing.
    pub fn timeout_ms(&self) -> Option<u64> {
        match self {
            Statement::Train(c) => c.timeout_ms,
            Statement::Predict(p) => p.timeout_ms,
            Statement::PredictPoint(p) => p.timeout_ms,
            Statement::Evaluate(e) => e.timeout_ms,
            Statement::ExplainAnalyze(inner) => inner.timeout_ms(),
            Statement::Explain(_) | Statement::ShowStats(_) => None,
        }
    }

    /// The statement's `WITH (retries = n)` retry-budget override.
    pub fn retries(&self) -> Option<u32> {
        match self {
            Statement::Train(c) => c.retries,
            Statement::Predict(p) => p.retries,
            Statement::PredictPoint(p) => p.retries,
            Statement::Evaluate(e) => e.retries,
            Statement::ExplainAnalyze(inner) => inner.retries(),
            Statement::Explain(_) | Statement::ShowStats(_) => None,
        }
    }
}

/// Parses any front-door statement.
pub fn parse_statement(sql: &str) -> DanaResult<Statement> {
    let s = sql.trim().trim_end_matches(';').trim();
    let lower_head = s.to_ascii_lowercase();
    if let Some(rest) = lower_head.strip_prefix("explain") {
        if !rest.starts_with([' ', '\t']) {
            return Err(err("expected EXPLAIN <statement>"));
        }
        let tail = s["explain".len()..].trim_start();
        let tail_lower = tail.to_ascii_lowercase();
        if let Some(after) = tail_lower.strip_prefix("analyze") {
            if after.starts_with([' ', '\t']) {
                let inner = parse_statement(tail["analyze".len()..].trim_start())?;
                return match inner {
                    Statement::Explain(_) | Statement::ExplainAnalyze(_) => {
                        Err(err("EXPLAIN ANALYZE cannot wrap EXPLAIN"))
                    }
                    Statement::ShowStats(_) => Err(err("EXPLAIN ANALYZE cannot wrap SHOW STATS")),
                    inner => Ok(Statement::ExplainAnalyze(Box::new(inner))),
                };
            }
        }
        let inner = parse_statement(tail)?;
        return match inner {
            Statement::Explain(_) | Statement::ExplainAnalyze(_) => {
                Err(err("EXPLAIN cannot be nested"))
            }
            Statement::ShowStats(_) => Err(err("EXPLAIN cannot wrap SHOW STATS")),
            inner => Ok(Statement::Explain(Box::new(inner))),
        };
    }
    if lower_head.starts_with("show") {
        return parse_show_stats(s);
    }
    let (s, scan, opts) = split_tail_clauses(s)?;
    let lower = s.to_ascii_lowercase();
    if lower.starts_with("predict") {
        return parse_predict(s, &lower, scan, opts);
    }
    if lower.starts_with("evaluate") {
        return parse_evaluate(s, &lower, scan, opts).map(Statement::Evaluate);
    }
    if let Some(rest) = lower.strip_prefix("execute") {
        // `EXECUTE dana.<udf>('<table>')` — the paper's verb for running
        // a deployed accelerator, synonymous with the SELECT form.
        if !rest.starts_with([' ', '\t']) {
            return Err(err("expected EXECUTE <udf>(...)"));
        }
        let tail = s["execute".len()..].trim_start();
        let (udf, args) = parse_udf_call(tail)?;
        let table = single_arg(&args)?;
        return Ok(Statement::Train(QueryCall {
            udf,
            table,
            scan,
            shards: opts.shards,
            backend: opts.backend,
            trace: opts.trace,
            timeout_ms: opts.timeout_ms,
            retries: opts.retries,
        }));
    }
    parse_select(s, scan, opts).map(Statement::Train)
}

/// Parses `SELECT * FROM dana.linearR('training_data_table');` (with the
/// optional trailing `WHERE`/`COLUMNS`/`WITH` clauses).
pub fn parse_query(sql: &str) -> DanaResult<QueryCall> {
    let s = sql.trim().trim_end_matches(';').trim();
    let (s, scan, opts) = split_tail_clauses(s)?;
    parse_select(s, scan, opts)
}

fn parse_select(s: &str, scan: Option<ScanSpec>, opts: WithOptions) -> DanaResult<QueryCall> {
    let lower = s.to_ascii_lowercase();
    let rest = lower
        .strip_prefix("select")
        .ok_or_else(|| err("expected SELECT"))?
        .trim_start();
    let rest = rest
        .strip_prefix('*')
        .ok_or_else(|| err("expected SELECT *"))?
        .trim_start();
    let rest = rest
        .strip_prefix("from")
        .ok_or_else(|| err("expected FROM"))?
        .trim_start();
    // Work on the original string from here to preserve identifier case.
    let tail = &s[s.len() - rest.len()..];
    let (udf, args) = parse_udf_call(tail)?;
    let table = single_arg(&args)?;
    Ok(QueryCall {
        udf,
        table,
        scan,
        shards: opts.shards,
        backend: opts.backend,
        trace: opts.trace,
        timeout_ms: opts.timeout_ms,
        retries: opts.retries,
    })
}

/// Parses `SHOW STATS [('<subsystem>')]` — the metrics-registry
/// snapshot query. The subsystem filter is validated against
/// [`dana_obs::SUBSYSTEMS`] at parse time, so an unknown name is a typed
/// query error before anything executes.
fn parse_show_stats(s: &str) -> DanaResult<Statement> {
    let lower = s.to_ascii_lowercase();
    let rest = lower.strip_prefix("show").unwrap_or(&lower);
    if !rest.starts_with([' ', '\t']) {
        return Err(err("expected SHOW STATS"));
    }
    let tail = s["show".len()..].trim_start();
    let tail_lower = tail.to_ascii_lowercase();
    if !tail_lower.starts_with("stats") {
        return Err(err("expected SHOW STATS"));
    }
    let after = tail["stats".len()..].trim();
    if !(after.is_empty() || after.starts_with('(')) {
        return Err(err("expected SHOW STATS [('<subsystem>')]"));
    }
    if after.is_empty() {
        return Ok(Statement::ShowStats(None));
    }
    let inner = after
        .strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(|| err("expected SHOW STATS ('<subsystem>')"))?;
    let name = parse_table_arg(inner.trim())?.to_ascii_lowercase();
    if name.is_empty() {
        return Err(err("empty stats subsystem name"));
    }
    if !dana_obs::known_subsystem(&name) {
        return Err(err(&format!(
            "unknown stats subsystem '{name}' (expected admission, pool, buffer, sessions, engine, faults, serving, or scan)"
        )));
    }
    Ok(Statement::ShowStats(Some(name)))
}

/// Byte offset of the first top-level (outside quotes) trailing-clause
/// keyword — `where`, `columns`, or `with` — in `s`, or `None`. A keyword
/// counts only at a word boundary (after whitespace or `)`) and with its
/// clause shape behind it: `WHERE` needs a following space, `COLUMNS` and
/// `WITH` must lead a parenthesized group. Anything else — a table named
/// "with…", the word inside a quoted string (quotes are NOT boundaries, so
/// a quoted name like 'with (x = 1)' passes through intact) — is left for
/// the statement parsers to judge.
fn find_clause_start(s: &str) -> Option<usize> {
    let lower = s.to_ascii_lowercase();
    let bytes = lower.as_bytes();
    let mut quote: Option<u8> = None;
    for i in 0..bytes.len() {
        let c = bytes[i];
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                }
                continue;
            }
            None if c == b'\'' || c == b'"' => {
                quote = Some(c);
                continue;
            }
            None => {}
        }
        if i == 0 || !matches!(bytes[i - 1], b' ' | b'\t' | b')') {
            continue;
        }
        for kw in ["where", "columns", "with"] {
            if !lower[i..].starts_with(kw) {
                continue;
            }
            let tail = &lower[i + kw.len()..];
            let ok = match kw {
                "where" => matches!(tail.as_bytes().first(), Some(b' ' | b'\t')),
                _ => {
                    matches!(tail.as_bytes().first(), None | Some(b' ' | b'\t' | b'('))
                        && tail.trim_start().starts_with('(')
                }
            };
            if ok {
                return Some(i);
            }
        }
    }
    None
}

/// Splits the optional trailing clauses — `WHERE <preds>`, `COLUMNS (…)`,
/// `WITH (opts)` — off a statement. The clauses compose **in any order**,
/// each at most once; a duplicate is a typed error.
fn split_tail_clauses(s: &str) -> DanaResult<(&str, Option<ScanSpec>, WithOptions)> {
    let Some(start) = find_clause_start(s) else {
        return Ok((s, None, WithOptions::default()));
    };
    let head = s[..start].trim_end();
    let mut predicates: Option<Vec<Predicate>> = None;
    let mut projection: Option<Vec<String>> = None;
    let mut opts: Option<WithOptions> = None;
    let mut rest = s[start..].trim_start();
    while !rest.is_empty() {
        let lower = rest.to_ascii_lowercase();
        if lower.starts_with("where") {
            if predicates.is_some() {
                return Err(err("duplicate WHERE clause"));
            }
            let body = &rest["where".len()..];
            // The predicate text runs to the next clause keyword (or the
            // statement's end).
            let end = find_clause_start(body).unwrap_or(body.len());
            predicates = Some(parse_predicates(body[..end].trim())?);
            rest = body[end..].trim_start();
        } else if lower.starts_with("columns") {
            if projection.is_some() {
                return Err(err("duplicate COLUMNS clause"));
            }
            let body = rest["columns".len()..].trim_start();
            let inner = body
                .strip_prefix('(')
                .ok_or_else(|| err("COLUMNS list must be parenthesized: COLUMNS (c1, c2, ...)"))?;
            let close = inner
                .find(')')
                .ok_or_else(|| err("COLUMNS list must be parenthesized: COLUMNS (c1, c2, ...)"))?;
            projection = Some(parse_projection(&inner[..close])?);
            rest = inner[close + 1..].trim_start();
        } else if lower.starts_with("with") {
            if opts.is_some() {
                return Err(err("duplicate WITH clause"));
            }
            let body = rest["with".len()..].trim_start();
            let inner = body.strip_prefix('(').ok_or_else(|| {
                err("WITH options must be parenthesized: WITH (opt = value, ...)")
            })?;
            let close = inner.find(')').ok_or_else(|| {
                err("WITH options must be parenthesized: WITH (opt = value, ...)")
            })?;
            opts = Some(parse_with_options(&inner[..close])?);
            rest = inner[close + 1..].trim_start();
        } else {
            return Err(err(&format!("unexpected input after statement: '{rest}'")));
        }
    }
    let scan = if predicates.is_none() && projection.is_none() {
        None
    } else {
        Some(ScanSpec {
            predicates: predicates.unwrap_or_default(),
            projection,
        })
    };
    Ok((head, scan, opts.unwrap_or_default()))
}

/// Parses a `WHERE` body: `<column> <op> <number> [AND …]`.
fn parse_predicates(text: &str) -> DanaResult<Vec<Predicate>> {
    if text.is_empty() {
        return Err(err(
            "WHERE needs at least one predicate: <column> <op> <number>",
        ));
    }
    split_conjuncts(text)
        .iter()
        .map(|c| parse_one_predicate(c.trim()))
        .collect()
}

/// Splits a predicate body on the standalone keyword `AND`
/// (case-insensitive).
fn split_conjuncts(text: &str) -> Vec<&str> {
    let lower = text.to_ascii_lowercase();
    let bytes = lower.as_bytes();
    let mut parts = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while i + 3 <= bytes.len() {
        let before_ok = i == 0 || bytes[i - 1].is_ascii_whitespace();
        let after_ok = i + 3 == bytes.len() || bytes[i + 3].is_ascii_whitespace();
        if &lower[i..i + 3] == "and" && before_ok && after_ok {
            parts.push(&text[start..i]);
            start = i + 3;
            i += 3;
        } else {
            i += 1;
        }
    }
    parts.push(&text[start..]);
    parts
}

/// Parses one `<column> <op> <number>` conjunct.
fn parse_one_predicate(text: &str) -> DanaResult<Predicate> {
    // Two-character operators first so `<=` never parses as `<` + `=1`.
    for op_str in ["<=", ">=", "!=", "<>", "<", ">", "="] {
        let Some(pos) = text.find(op_str) else {
            continue;
        };
        let column = text[..pos].trim();
        let value = text[pos + op_str.len()..].trim();
        if column.is_empty() || !column.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(err(&format!("bad WHERE column name '{column}'")));
        }
        let v: f32 = value
            .parse()
            .map_err(|_| err(&format!("bad WHERE constant '{value}' (expected a number)")))?;
        if !v.is_finite() {
            return Err(err(&format!("non-finite WHERE constant '{value}'")));
        }
        let op = CmpOp::parse(op_str).expect("operator table entries all parse");
        return Ok(Predicate {
            column: column.to_string(),
            op,
            value: v,
        });
    }
    Err(err(&format!(
        "bad WHERE predicate '{text}' (expected <column> <op> <number>)"
    )))
}

/// Parses a `COLUMNS (…)` list into projection column names.
fn parse_projection(inner: &str) -> DanaResult<Vec<String>> {
    if inner.trim().is_empty() {
        return Err(err("COLUMNS list cannot be empty"));
    }
    let mut cols = Vec::new();
    for piece in inner.split(',') {
        let name = parse_table_arg(piece.trim())?;
        if name.is_empty() {
            return Err(err("empty column name in COLUMNS list"));
        }
        cols.push(name.to_string());
    }
    Ok(cols)
}

/// Parses the interior of a `WITH (opt = v[, opt = v])` clause (keywords
/// case-insensitive, whitespace free-form). A group that is *not* a
/// well-formed option list is a typed error, not silently ignored.
fn parse_with_options(inner: &str) -> DanaResult<WithOptions> {
    let mut opts = WithOptions::default();
    let mut seen_shards = false;
    let mut seen_backend = false;
    let mut seen_trace = false;
    let mut seen_timeout = false;
    let mut seen_retries = false;
    for item in inner.split(',') {
        let (key, value) = item
            .split_once('=')
            .ok_or_else(|| err("WITH option must be <name> = <value>"))?;
        let key = key.trim();
        let value = value.trim();
        if key.eq_ignore_ascii_case("shards") {
            if seen_shards {
                return Err(err("duplicate WITH option 'shards'"));
            }
            seen_shards = true;
            let n: u16 = value
                .parse()
                .map_err(|_| err(&format!("bad shard count '{value}'")))?;
            if n == 0 {
                return Err(err("shards must be at least 1"));
            }
            opts.shards = Some(n);
        } else if key.eq_ignore_ascii_case("backend") {
            if seen_backend {
                return Err(err("duplicate WITH option 'backend'"));
            }
            seen_backend = true;
            opts.backend = BackendChoice::parse(value)?;
        } else if key.eq_ignore_ascii_case("trace") {
            if seen_trace {
                return Err(err("duplicate WITH option 'trace'"));
            }
            seen_trace = true;
            opts.trace = if value.eq_ignore_ascii_case("on") {
                true
            } else if value.eq_ignore_ascii_case("off") {
                false
            } else {
                return Err(err(&format!(
                    "bad trace value '{value}' (expected on or off)"
                )));
            };
        } else if key.eq_ignore_ascii_case("timeout_ms") {
            if seen_timeout {
                return Err(err("duplicate WITH option 'timeout_ms'"));
            }
            seen_timeout = true;
            let ms: u64 = value
                .parse()
                .map_err(|_| err(&format!("bad timeout_ms value '{value}'")))?;
            if ms == 0 {
                return Err(err("timeout_ms must be at least 1"));
            }
            opts.timeout_ms = Some(ms);
        } else if key.eq_ignore_ascii_case("retries") {
            if seen_retries {
                return Err(err("duplicate WITH option 'retries'"));
            }
            seen_retries = true;
            let n: u32 = value
                .parse()
                .map_err(|_| err(&format!("bad retries value '{value}'")))?;
            opts.retries = Some(n);
        } else {
            return Err(err(&format!(
                "unknown WITH option '{key}' (expected shards, backend, trace, timeout_ms, or retries)"
            )));
        }
    }
    Ok(opts)
}

/// Parses the tail of `PREDICT dana.<udf>('<table>') INTO '<dest>'`, or
/// the point form `PREDICT dana.<udf>(VALUES (x, ...), ...)`.
fn parse_predict(
    s: &str,
    lower: &str,
    scan: Option<ScanSpec>,
    opts: WithOptions,
) -> DanaResult<Statement> {
    let rest = lower["predict".len()..].to_string();
    if !rest.starts_with([' ', '\t']) {
        return Err(err("expected PREDICT <udf>(...)"));
    }
    let tail = s["predict".len()..].trim_start();
    // A call whose argument text leads with the VALUES keyword is the
    // online point form — dispatch before the INTO requirement kicks in.
    // The keyword must be followed by whitespace or a row-opening '(' so
    // a table merely *named* values/values_v2 stays the table form.
    if let Some(open) = tail.find('(') {
        let arg_head = tail[open + 1..].trim_start().to_ascii_lowercase();
        if arg_head.starts_with("values")
            && matches!(
                arg_head["values".len()..].chars().next(),
                Some(' ' | '\t' | '(')
            )
        {
            if scan.is_some() {
                return Err(err(
                    "point-form PREDICT (VALUES ...) has no table scan; drop the WHERE/COLUMNS clause",
                ));
            }
            return parse_predict_point(tail, opts).map(Statement::PredictPoint);
        }
    }
    // Split at the INTO keyword (outside the call's parentheses: the call
    // ends at its closing ')', so a simple case-insensitive search after
    // the close is exact).
    let close = tail.rfind(')').ok_or_else(|| err("unclosed ')'"))?;
    let after = &tail[close + 1..];
    let after_lower = after.to_ascii_lowercase();
    let into_at = after_lower
        .find("into")
        .ok_or_else(|| err("PREDICT requires INTO '<table>'"))?;
    if !after[..into_at].trim().is_empty() {
        return Err(err("unexpected input between UDF call and INTO"));
    }
    let (udf, args) = parse_udf_call(&tail[..close + 1])?;
    let table = single_arg(&args)?;
    let dest_raw = after[into_at + "into".len()..].trim();
    if dest_raw.is_empty() {
        return Err(err("INTO needs a destination table name"));
    }
    let into = parse_table_arg(dest_raw)?.to_string();
    if into.is_empty() {
        return Err(err("empty destination table name"));
    }
    Ok(Statement::Predict(PredictCall {
        udf,
        table,
        into,
        scan,
        shards: opts.shards,
        backend: opts.backend,
        trace: opts.trace,
        timeout_ms: opts.timeout_ms,
        retries: opts.retries,
    }))
}

/// Parses the point form's call tail: `dana.<udf>(VALUES (x, ...), ...)`.
/// Every value is a literal f32; each parenthesized group is one row.
/// There is no INTO (nothing is materialized) and `shards` is rejected
/// (there is no scan to shard).
fn parse_predict_point(tail: &str, opts: WithOptions) -> DanaResult<PointCall> {
    if opts.shards.is_some() {
        return Err(err(
            "point-form PREDICT (VALUES ...) has no scan to shard; drop the 'shards' option",
        ));
    }
    let open = tail
        .find('(')
        .ok_or_else(|| err("expected UDF call '(...)'"))?;
    let close = tail.rfind(')').ok_or_else(|| err("unclosed ')'"))?;
    if close < open {
        return Err(err("malformed parentheses"));
    }
    let after = tail[close + 1..].trim();
    if !after.is_empty() {
        if after.to_ascii_lowercase().starts_with("into") {
            return Err(err(
                "point-form PREDICT (VALUES ...) returns predictions inline and takes no INTO",
            ));
        }
        return Err(err("unexpected input after UDF call"));
    }
    let mut udf = tail[..open].trim();
    if let Some(dot) = udf.rfind('.') {
        let schema = &udf[..dot];
        if !schema.eq_ignore_ascii_case("dana") {
            return Err(err(&format!("unknown schema '{schema}' (expected dana)")));
        }
        udf = &udf[dot + 1..];
    }
    if udf.is_empty() || !udf.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(err(&format!("bad UDF name '{udf}'")));
    }
    let inner = tail[open + 1..close].trim();
    let keyword_len = "values".len();
    debug_assert!(inner[..keyword_len.min(inner.len())].eq_ignore_ascii_case("values"));
    let groups_text = inner[keyword_len..].trim_start();
    if !groups_text.starts_with('(') {
        return Err(err(
            "VALUES needs at least one parenthesized row: VALUES (x, ...)",
        ));
    }
    let rows = parse_values_rows(groups_text)?;
    Ok(PointCall {
        udf: udf.to_string(),
        rows,
        backend: opts.backend,
        trace: opts.trace,
        timeout_ms: opts.timeout_ms,
        retries: opts.retries,
    })
}

/// Parses `(x, ...), (y, ...)` row groups into literal f32 vectors.
/// Rejects empty rows, non-numeric or non-finite values, unbalanced
/// parentheses, and stray text between groups.
fn parse_values_rows(text: &str) -> DanaResult<Vec<Vec<f32>>> {
    let mut rows = Vec::new();
    let mut rest = text.trim();
    loop {
        let body = rest
            .strip_prefix('(')
            .ok_or_else(|| err("expected a parenthesized VALUES row: (x, ...)"))?;
        let end = body.find(')').ok_or_else(|| err("unclosed VALUES row"))?;
        let row_text = &body[..end];
        if row_text.trim().is_empty() {
            return Err(err("VALUES row must have at least one value"));
        }
        let mut row = Vec::new();
        for piece in row_text.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                return Err(err("empty value in VALUES row"));
            }
            let v: f32 = piece
                .parse()
                .map_err(|_| err(&format!("bad numeric value '{piece}' in VALUES row")))?;
            if !v.is_finite() {
                return Err(err(&format!("non-finite value '{piece}' in VALUES row")));
            }
            row.push(v);
        }
        rows.push(row);
        rest = body[end + 1..].trim_start();
        if rest.is_empty() {
            break;
        }
        rest = rest
            .strip_prefix(',')
            .ok_or_else(|| err("VALUES rows must be separated by commas"))?
            .trim_start();
        if rest.is_empty() {
            return Err(err("trailing comma after VALUES row"));
        }
    }
    Ok(rows)
}

/// Parses the tail of `EVALUATE dana.<udf>('<table>'[, '<metric>'])`.
fn parse_evaluate(
    s: &str,
    lower: &str,
    scan: Option<ScanSpec>,
    opts: WithOptions,
) -> DanaResult<EvaluateCall> {
    let rest = lower["evaluate".len()..].to_string();
    if !rest.starts_with([' ', '\t']) {
        return Err(err("expected EVALUATE <udf>(...)"));
    }
    let tail = s["evaluate".len()..].trim_start();
    let (udf, args) = parse_udf_call(tail)?;
    let (table, metric_name) = match args.len() {
        1 => (args[0].clone(), None),
        2 => (args[0].clone(), Some(args[1].clone())),
        n => {
            return Err(err(&format!(
                "EVALUATE takes a table and an optional metric ({n} arguments given)"
            )))
        }
    };
    let metric = match metric_name {
        None => None,
        Some(name) => Some(MetricKind::parse(&name).ok_or_else(|| {
            err(&format!(
                "unknown metric '{name}' (expected mse, log_loss, classification_accuracy, or lrmf_rmse)"
            ))
        })?),
    };
    if table.is_empty() {
        return Err(err("empty table name"));
    }
    Ok(EvaluateCall {
        udf,
        table,
        metric,
        scan,
        shards: opts.shards,
        backend: opts.backend,
        trace: opts.trace,
        timeout_ms: opts.timeout_ms,
        retries: opts.retries,
    })
}

/// Parses `dana.<udf>(arg[, arg])` from `tail`, returning the UDF name
/// (schema prefix validated and stripped) and the raw argument list.
/// Rejects trailing garbage after the closing parenthesis.
fn parse_udf_call(tail: &str) -> DanaResult<(String, Vec<String>)> {
    let open = tail
        .find('(')
        .ok_or_else(|| err("expected UDF call '(...)'"))?;
    let close = tail.rfind(')').ok_or_else(|| err("unclosed ')'"))?;
    if close < open {
        return Err(err("malformed parentheses"));
    }
    let mut udf = tail[..open].trim();
    if let Some(dot) = udf.rfind('.') {
        let schema = &udf[..dot];
        if !schema.eq_ignore_ascii_case("dana") {
            return Err(err(&format!("unknown schema '{schema}' (expected dana)")));
        }
        udf = &udf[dot + 1..];
    }
    if udf.is_empty() || !udf.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(err(&format!("bad UDF name '{udf}'")));
    }
    if !tail[close + 1..].trim().is_empty() {
        return Err(err("unexpected input after UDF call"));
    }
    let args = parse_args(tail[open + 1..close].trim())?;
    Ok((udf.to_string(), args))
}

/// Splits a call's argument text into individual quoted-or-bare
/// identifiers. Unbalanced/mismatched quotes are rejected per argument.
fn parse_args(text: &str) -> DanaResult<Vec<String>> {
    if text.is_empty() {
        return Err(err("UDF call needs at least one argument"));
    }
    let mut args = Vec::new();
    let mut rest = text;
    loop {
        let (arg, remainder) = split_one_arg(rest)?;
        args.push(parse_table_arg(arg)?.to_string());
        match remainder {
            None => break,
            Some(r) => {
                let r = r.trim_start();
                if r.is_empty() {
                    return Err(err("trailing comma in argument list"));
                }
                rest = r;
            }
        }
    }
    Ok(args)
}

/// Splits the first argument off `text` at a comma that is outside any
/// quotes. Returns the argument text and the remainder after the comma.
fn split_one_arg(text: &str) -> DanaResult<(&str, Option<&str>)> {
    let mut quote: Option<char> = None;
    for (i, c) in text.char_indices() {
        match (quote, c) {
            (None, '\'' | '"') => quote = Some(c),
            (Some(q), c) if c == q => quote = None,
            (None, ',') => return Ok((text[..i].trim(), Some(&text[i + 1..]))),
            _ => {}
        }
    }
    if quote.is_some() {
        return Err(err("unbalanced quote in argument list"));
    }
    Ok((text.trim(), None))
}

/// The single-argument form used by SELECT … and PREDICT's source.
fn single_arg(args: &[String]) -> DanaResult<String> {
    if args.len() != 1 {
        return Err(err("UDF takes exactly one argument (the table name)"));
    }
    if args[0].is_empty() {
        return Err(err("empty table name"));
    }
    Ok(args[0].clone())
}

/// Parses the UDF's single table-name argument: a quoted or bare
/// identifier, nothing else. Extra arguments (`dana.f('t', 1)`) and
/// unbalanced/mismatched quotes (`dana.f('t)`, `dana.f('t")`) are rejected
/// rather than silently accepted.
fn parse_table_arg(arg: &str) -> DanaResult<&str> {
    for quote in ['\'', '"'] {
        if let Some(rest) = arg.strip_prefix(quote) {
            // `'t', 1` — diagnose the extra argument, not the quoting.
            if let Some(inner) = rest.split_once(quote).map(|(t, after)| (t, after.trim())) {
                let (table, after) = inner;
                if after.starts_with(',') {
                    return Err(err("UDF takes exactly one argument (the table name)"));
                }
                if !after.is_empty() {
                    return Err(err(&format!(
                        "unexpected input after quoted table name: '{after}'"
                    )));
                }
                return Ok(table.trim());
            }
            return Err(err(&format!("unbalanced {quote} quote in table argument")));
        }
        if arg.ends_with(quote) {
            return Err(err(&format!("unbalanced {quote} quote in table argument")));
        }
    }
    // Bare identifier: a single argument with no quoting.
    if arg.contains(',') {
        return Err(err("UDF takes exactly one argument (the table name)"));
    }
    if arg.contains(['\'', '"', ' ', '\t']) {
        return Err(err(&format!("bad table argument '{arg}'")));
    }
    Ok(arg)
}

fn err(msg: &str) -> DanaError {
    DanaError::Query(msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_query() {
        let q = parse_query("SELECT * FROM dana.linearR('training_data_table');").unwrap();
        assert_eq!(q.udf, "linearR");
        assert_eq!(q.table, "training_data_table");
    }

    #[test]
    fn schema_prefix_is_optional() {
        let q = parse_query("select * from svm('t1')").unwrap();
        assert_eq!(q.udf, "svm");
        assert_eq!(q.table, "t1");
    }

    #[test]
    fn case_and_quotes_flexible() {
        let q = parse_query("SELECT * FROM DANA.logisticR(\"wlan\");").unwrap();
        assert_eq!(q.udf, "logisticR");
        assert_eq!(q.table, "wlan");
        let q = parse_query("select * from dana.lrmf(netflix)").unwrap();
        assert_eq!(q.table, "netflix");
    }

    #[test]
    fn preserves_identifier_case() {
        let q = parse_query("SELECT * FROM dana.MyUdf('MyTable');").unwrap();
        assert_eq!(q.udf, "MyUdf");
        assert_eq!(q.table, "MyTable");
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "INSERT INTO t VALUES (1)",
            "SELECT x FROM dana.f('t')",
            "SELECT * FROM dana.f",
            "SELECT * FROM other.f('t')",
            "SELECT * FROM dana.f('')",
            "SELECT * FROM dana.f)t'(",
        ] {
            assert!(parse_query(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn rejects_extra_call_arguments() {
        for bad in [
            "SELECT * FROM dana.f('t', 1);",
            "SELECT * FROM dana.f('t', 'u');",
            "SELECT * FROM dana.f(t, u)",
            "SELECT * FROM dana.f('t' , )",
        ] {
            assert!(parse_query(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn rejects_unbalanced_or_mismatched_quotes() {
        for bad in [
            "SELECT * FROM dana.f('t);",
            "SELECT * FROM dana.f(t');",
            "SELECT * FROM dana.f(\"t);",
            "SELECT * FROM dana.f(t\");",
            "SELECT * FROM dana.f('t\");",
            "SELECT * FROM dana.f('a'b');",
        ] {
            assert!(parse_query(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage_after_call() {
        for bad in [
            "SELECT * FROM dana.f('t') extra",
            "SELECT * FROM dana.f('t') WHERE", // bare keyword, no predicate
            "SELECT * FROM dana.f('t') HAVING x = 1",
        ] {
            assert!(parse_query(bad).is_err(), "{bad} should fail");
        }
        // A trailing semicolon and whitespace remain fine, and WHERE is a
        // legal pushdown clause now, not garbage.
        assert!(parse_query("SELECT * FROM dana.f('t')  ;  ").is_ok());
        let q = parse_query("SELECT * FROM dana.f('t') WHERE x = 1;").unwrap();
        assert_eq!(q.scan.unwrap().predicates.len(), 1);
    }

    // ---- PREDICT / EVALUATE grammar -------------------------------------

    #[test]
    fn parses_predict_into() {
        let s = parse_statement("PREDICT dana.linearR('patients') INTO 'patient_scores';").unwrap();
        assert_eq!(
            s,
            Statement::Predict(PredictCall {
                udf: "linearR".into(),
                table: "patients".into(),
                into: "patient_scores".into(),
                scan: None,
                shards: None,
                backend: BackendChoice::Auto,
                trace: false,
                timeout_ms: None,
                retries: None,
            })
        );
        // Case-insensitive keywords, optional schema, mixed quoting.
        let s = parse_statement("predict linearR(\"patients\") into scores").unwrap();
        assert_eq!(
            s,
            Statement::Predict(PredictCall {
                udf: "linearR".into(),
                table: "patients".into(),
                into: "scores".into(),
                scan: None,
                shards: None,
                backend: BackendChoice::Auto,
                trace: false,
                timeout_ms: None,
                retries: None,
            })
        );
    }

    #[test]
    fn predict_preserves_identifier_case() {
        let Statement::Predict(p) =
            parse_statement("PREDICT dana.MyUdf('MyTable') INTO 'MyScores';").unwrap()
        else {
            panic!("expected predict");
        };
        assert_eq!(p.udf, "MyUdf");
        assert_eq!(p.table, "MyTable");
        assert_eq!(p.into, "MyScores");
    }

    #[test]
    fn parses_evaluate_with_and_without_metric() {
        let s = parse_statement("EVALUATE dana.logisticR('wlan');").unwrap();
        assert_eq!(
            s,
            Statement::Evaluate(EvaluateCall {
                udf: "logisticR".into(),
                table: "wlan".into(),
                metric: None,
                scan: None,
                shards: None,
                backend: BackendChoice::Auto,
                trace: false,
                timeout_ms: None,
                retries: None,
            })
        );
        let s = parse_statement("EVALUATE dana.linearR('t', 'mse');").unwrap();
        assert_eq!(
            s,
            Statement::Evaluate(EvaluateCall {
                udf: "linearR".into(),
                table: "t".into(),
                metric: Some(MetricKind::Mse),
                scan: None,
                shards: None,
                backend: BackendChoice::Auto,
                trace: false,
                timeout_ms: None,
                retries: None,
            })
        );
        // All four metric names (and case-insensitivity) parse.
        for (name, kind) in [
            ("mse", MetricKind::Mse),
            ("log_loss", MetricKind::LogLoss),
            ("classification_accuracy", MetricKind::Accuracy),
            ("LRMF_RMSE", MetricKind::LrmfRmse),
        ] {
            let s = parse_statement(&format!("evaluate f('t', '{name}')")).unwrap();
            assert_eq!(
                s,
                Statement::Evaluate(EvaluateCall {
                    udf: "f".into(),
                    table: "t".into(),
                    metric: Some(kind),
                    scan: None,
                    shards: None,
                    backend: BackendChoice::Auto,
                    trace: false,
                    timeout_ms: None,
                    retries: None,
                }),
                "{name}"
            );
        }
    }

    #[test]
    fn statement_dispatch_still_parses_select() {
        let s = parse_statement("SELECT * FROM dana.linearR('t');").unwrap();
        assert_eq!(
            s,
            Statement::Train(QueryCall {
                udf: "linearR".into(),
                table: "t".into(),
                scan: None,
                shards: None,
                backend: BackendChoice::Auto,
                trace: false,
                timeout_ms: None,
                retries: None,
            })
        );
    }

    #[test]
    fn predict_rejects_malformed_statements() {
        for bad in [
            // Arity / missing clauses.
            "PREDICT dana.f('t');",               // no INTO
            "PREDICT dana.f('t') INTO;",          // no destination
            "PREDICT dana.f('t') INTO",           // no destination
            "PREDICT dana.f('t', 'u') INTO 'p';", // two source args
            "PREDICT dana.f() INTO 'p';",         // zero args
            "PREDICT dana.f INTO 'p';",           // no call parens
            // Quoting.
            "PREDICT dana.f('t) INTO 'p';",  // unbalanced source quote
            "PREDICT dana.f('t') INTO 'p;",  // unbalanced dest quote
            "PREDICT dana.f('t') INTO p\";", // mismatched dest quote
            // Trailing garbage / misplaced tokens.
            "PREDICT dana.f('t') WHERE x INTO 'p';", // garbage before INTO
            "PREDICTx dana.f('t') INTO 'p';",        // keyword typo
            // Unknown schema target.
            "PREDICT other.f('t') INTO 'p';",
        ] {
            assert!(parse_statement(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn evaluate_rejects_malformed_statements() {
        for bad in [
            "EVALUATE dana.f();",                    // zero args
            "EVALUATE dana.f('t', 'mse', 'x');",     // three args
            "EVALUATE dana.f('t', 'not_a_metric');", // unknown metric
            "EVALUATE dana.f('t', );",               // trailing comma
            "EVALUATE dana.f('t'\");",               // mismatched quote
            "EVALUATE dana.f('t') extra",            // trailing garbage
            "EVALUATE other.f('t');",                // unknown schema
            "EVALUATEdana.f('t');",                  // keyword typo
        ] {
            assert!(parse_statement(bad).is_err(), "{bad} should fail");
        }
    }

    // ---- EXECUTE / WITH (shards = k) grammar -----------------------------

    #[test]
    fn execute_is_a_train_synonym() {
        let s = parse_statement("EXECUTE dana.linearR('t');").unwrap();
        assert_eq!(
            s,
            Statement::Train(QueryCall {
                udf: "linearR".into(),
                table: "t".into(),
                scan: None,
                shards: None,
                backend: BackendChoice::Auto,
                trace: false,
                timeout_ms: None,
                retries: None,
            })
        );
        // Case-insensitive, schema optional, identifier case preserved.
        let s = parse_statement("execute MyUdf(\"MyTable\")").unwrap();
        let Statement::Train(q) = s else {
            panic!("expected train");
        };
        assert_eq!(q.udf, "MyUdf");
        assert_eq!(q.table, "MyTable");
    }

    #[test]
    fn with_shards_parses_on_every_statement_form() {
        let s = parse_statement("EXECUTE dana.linearR('t') WITH (shards = 4);").unwrap();
        assert_eq!(
            s,
            Statement::Train(QueryCall {
                udf: "linearR".into(),
                table: "t".into(),
                scan: None,
                shards: Some(4),
                backend: BackendChoice::Auto,
                trace: false,
                timeout_ms: None,
                retries: None,
            })
        );
        let s = parse_statement("SELECT * FROM dana.linearR('t') with (SHARDS=2)").unwrap();
        assert_eq!(
            s,
            Statement::Train(QueryCall {
                udf: "linearR".into(),
                table: "t".into(),
                scan: None,
                shards: Some(2),
                backend: BackendChoice::Auto,
                trace: false,
                timeout_ms: None,
                retries: None,
            })
        );
        let s = parse_statement("PREDICT dana.f('t') INTO 'p' WITH (shards = 8);").unwrap();
        assert_eq!(
            s,
            Statement::Predict(PredictCall {
                udf: "f".into(),
                table: "t".into(),
                into: "p".into(),
                scan: None,
                shards: Some(8),
                backend: BackendChoice::Auto,
                trace: false,
                timeout_ms: None,
                retries: None,
            })
        );
        let s = parse_statement("EVALUATE dana.f('t', 'mse') WITH (shards = 3);").unwrap();
        assert_eq!(
            s,
            Statement::Evaluate(EvaluateCall {
                udf: "f".into(),
                table: "t".into(),
                metric: Some(MetricKind::Mse),
                scan: None,
                shards: Some(3),
                backend: BackendChoice::Auto,
                trace: false,
                timeout_ms: None,
                retries: None,
            })
        );
        // parse_query handles the clause too.
        let q = parse_query("SELECT * FROM dana.f('t') WITH (shards = 16);").unwrap();
        assert_eq!(q.shards, Some(16));
    }

    #[test]
    fn malformed_with_clauses_are_rejected() {
        for bad in [
            "EXECUTE dana.f('t') WITH (shards = 0);",    // zero gang
            "EXECUTE dana.f('t') WITH (shards = -2);",   // negative
            "EXECUTE dana.f('t') WITH (shards = many);", // not a number
            "EXECUTE dana.f('t') WITH (lanes = 4);",     // unknown option
            "EXECUTE dana.f('t') WITH (shards);",        // no value
            "EXECUTE dana.f('t') WITH shards = 4;",      // unparenthesized
            "SELECT * FROM dana.f('t') WITH (shards = 70000);", // > u16
        ] {
            assert!(parse_statement(bad).is_err(), "{bad} should fail");
        }
        // A table that merely contains "with" is untouched.
        let q = parse_query("SELECT * FROM dana.f('with_t');").unwrap();
        assert_eq!(q.table, "with_t");
        assert_eq!(q.shards, None);
        // Even a quoted name shaped exactly like a WITH clause: quotes
        // are not clause boundaries, so it stays an identifier.
        let q = parse_query("SELECT * FROM dana.f('with (shards = 2)');").unwrap();
        assert_eq!(q.table, "with (shards = 2)");
        assert_eq!(q.shards, None);
    }

    #[test]
    fn predict_into_trailing_garbage_rejected() {
        assert!(parse_statement("PREDICT dana.f('t') INTO 'p' extra").is_err());
        // INTO destination with stray second token.
        assert!(parse_statement("PREDICT dana.f('t') INTO 'p' 'q'").is_err());
        // Trailing semicolon and whitespace remain fine.
        assert!(parse_statement("PREDICT dana.f('t') INTO 'p'  ;  ").is_ok());
    }

    // ---- WITH (backend = ...) grammar ------------------------------------

    fn backend_of(s: &Statement) -> BackendChoice {
        match s {
            Statement::Train(q) => q.backend,
            Statement::Predict(p) => p.backend,
            Statement::PredictPoint(p) => p.backend,
            Statement::Evaluate(e) => e.backend,
            Statement::Explain(inner) | Statement::ExplainAnalyze(inner) => backend_of(inner),
            Statement::ShowStats(_) => panic!("SHOW STATS has no backend"),
        }
    }

    #[test]
    fn with_backend_parses_on_every_statement_form() {
        for (sql, want) in [
            (
                "EXECUTE dana.linearR('t') WITH (backend = cpu);",
                BackendChoice::Cpu,
            ),
            (
                "SELECT * FROM dana.linearR('t') with (BACKEND=FPGA)",
                BackendChoice::Fpga,
            ),
            (
                "PREDICT dana.f('t') INTO 'p' WITH (backend = auto);",
                BackendChoice::Auto,
            ),
            (
                "EVALUATE dana.f('t', 'mse') WITH (backend = cpu);",
                BackendChoice::Cpu,
            ),
        ] {
            let s = parse_statement(sql).unwrap();
            assert_eq!(backend_of(&s), want, "{sql}");
        }
        // Statements without a clause default to the advisor.
        let s = parse_statement("EXECUTE dana.f('t');").unwrap();
        assert_eq!(backend_of(&s), BackendChoice::Auto);
    }

    #[test]
    fn with_clause_combines_shards_and_backend() {
        let s = parse_statement("EXECUTE dana.linearR('t') WITH (shards = 4, backend = fpga);")
            .unwrap();
        assert_eq!(
            s,
            Statement::Train(QueryCall {
                udf: "linearR".into(),
                table: "t".into(),
                scan: None,
                shards: Some(4),
                backend: BackendChoice::Fpga,
                trace: false,
                timeout_ms: None,
                retries: None,
            })
        );
        // Order-insensitive.
        let s = parse_statement("PREDICT dana.f('t') INTO 'p' WITH (backend = cpu, shards = 2);")
            .unwrap();
        assert_eq!(
            s,
            Statement::Predict(PredictCall {
                udf: "f".into(),
                table: "t".into(),
                into: "p".into(),
                scan: None,
                shards: Some(2),
                backend: BackendChoice::Cpu,
                trace: false,
                timeout_ms: None,
                retries: None,
            })
        );
    }

    #[test]
    fn malformed_backend_clauses_are_typed_errors() {
        for bad in [
            "EXECUTE dana.f('t') WITH (backend = gpu);", // unknown substrate
            "EXECUTE dana.f('t') WITH (backend);",       // no value
            "EXECUTE dana.f('t') WITH (backend = );",    // empty value
            "EXECUTE dana.f('t') WITH (backend = cpu, backend = fpga);", // duplicate
            "EXECUTE dana.f('t') WITH (shards = 2, shards = 4);", // duplicate shards
            "EXECUTE dana.f('t') WITH (backend = cpu,);", // trailing comma
        ] {
            let e = parse_statement(bad).unwrap_err();
            assert!(
                matches!(e, DanaError::Query(_)),
                "{bad} should be a typed Query error, got {e:?}"
            );
        }
        // The unknown-substrate message names the valid choices.
        let e = parse_statement("EXECUTE dana.f('t') WITH (backend = gpu);").unwrap_err();
        assert!(e.to_string().contains("expected cpu, fpga, or auto"), "{e}");
    }

    // ---- EXPLAIN grammar -------------------------------------------------

    #[test]
    fn explain_wraps_every_statement_form() {
        for sql in [
            "EXPLAIN SELECT * FROM dana.linearR('t');",
            "explain EXECUTE dana.linearR('t') WITH (shards = 2);",
            "EXPLAIN PREDICT dana.f('t') INTO 'p';",
            "Explain EVALUATE dana.f('t', 'mse') WITH (backend = cpu);",
        ] {
            let s = parse_statement(sql).unwrap();
            let Statement::Explain(inner) = s else {
                panic!("{sql} should parse as EXPLAIN");
            };
            assert!(
                !matches!(*inner, Statement::Explain(_)),
                "inner statement must not be EXPLAIN"
            );
        }
        // The inner statement parses exactly as it would bare.
        let s = parse_statement("EXPLAIN EXECUTE dana.linearR('t') WITH (backend = cpu);").unwrap();
        assert_eq!(
            s,
            Statement::Explain(Box::new(Statement::Train(QueryCall {
                udf: "linearR".into(),
                table: "t".into(),
                scan: None,
                shards: None,
                backend: BackendChoice::Cpu,
                trace: false,
                timeout_ms: None,
                retries: None,
            })))
        );
    }

    #[test]
    fn explain_rejects_malformed_forms() {
        for bad in [
            "EXPLAIN;",                                                // nothing to explain
            "EXPLAIN",                                                 // ditto
            "EXPLAINSELECT * FROM dana.f('t');",                       // keyword typo
            "EXPLAIN EXPLAIN SELECT * FROM dana.f('t');",              // nested
            "EXPLAIN INSERT INTO t VALUES (1);",                       // unexplainable inner
            "EXPLAIN SELECT * FROM dana.f('t') WITH (backend = gpu);", // bad inner clause
        ] {
            assert!(parse_statement(bad).is_err(), "{bad} should fail");
        }
        // A UDF merely *named* explain stays a plain call.
        let s = parse_statement("EXECUTE dana.explainer('t');").unwrap();
        assert!(matches!(s, Statement::Train(_)));
    }

    // ---- EXPLAIN ANALYZE / SHOW STATS / trace grammar --------------------

    #[test]
    fn explain_analyze_wraps_executable_statements_only() {
        let s = parse_statement("EXPLAIN ANALYZE EXECUTE dana.linearR('t');").unwrap();
        let Statement::ExplainAnalyze(inner) = s else {
            panic!("should parse as EXPLAIN ANALYZE");
        };
        assert!(matches!(*inner, Statement::Train(_)));
        // Keywords are case-insensitive; PREDICT/EVALUATE also wrap.
        for sql in [
            "explain analyze PREDICT dana.f('t') INTO 'p';",
            "Explain Analyze EVALUATE dana.f('t', 'mse');",
        ] {
            assert!(
                matches!(parse_statement(sql), Ok(Statement::ExplainAnalyze(_))),
                "{sql} should parse as EXPLAIN ANALYZE"
            );
        }
        // Nesting explainers is rejected with a typed error, not a panic.
        for bad in [
            "EXPLAIN ANALYZE EXPLAIN SELECT * FROM dana.f('t');",
            "EXPLAIN ANALYZE EXPLAIN ANALYZE EXECUTE dana.f('t');",
            "EXPLAIN ANALYZE SHOW STATS;",
            "EXPLAIN EXPLAIN ANALYZE EXECUTE dana.f('t');",
        ] {
            let e = parse_statement(bad).unwrap_err();
            assert!(matches!(e, DanaError::Query(_)), "{bad}: {e:?}");
        }
    }

    #[test]
    fn show_stats_parses_with_optional_subsystem_filter() {
        assert_eq!(
            parse_statement("SHOW STATS;").unwrap(),
            Statement::ShowStats(None)
        );
        // Filter names are case-folded; quoting is optional.
        for sql in [
            "show stats('POOL');",
            "SHOW STATS ( 'pool' ) ;",
            "Show Stats(pool)",
        ] {
            assert_eq!(
                parse_statement(sql).unwrap(),
                Statement::ShowStats(Some("pool".into())),
                "{sql}"
            );
        }
    }

    #[test]
    fn show_stats_unknown_subsystem_is_a_typed_error() {
        let e = parse_statement("SHOW STATS('nope');").unwrap_err();
        assert!(matches!(e, DanaError::Query(_)), "{e:?}");
        assert!(
            e.to_string().contains("unknown stats subsystem 'nope'"),
            "{e}"
        );
        // Malformed forms fail typed too.
        for bad in ["SHOW STATS('');", "SHOW STATS(;", "SHOW STATSY;"] {
            assert!(
                matches!(parse_statement(bad), Err(DanaError::Query(_))),
                "{bad} should fail typed"
            );
        }
    }

    #[test]
    fn trace_option_parses_on_every_executable_form() {
        for (sql, want_trace) in [
            ("EXECUTE dana.f('t') WITH (trace = on);", true),
            ("EXECUTE dana.f('t') WITH (trace = off);", false),
            (
                "SELECT * FROM dana.f('t') WITH (shards = 2, trace = on);",
                true,
            ),
            ("PREDICT dana.f('t') INTO 'p' WITH (trace = on);", true),
            ("EVALUATE dana.f('t', 'mse') WITH (trace = on);", true),
        ] {
            let s = parse_statement(sql).unwrap();
            assert_eq!(s.wants_trace(), want_trace, "{sql}");
        }
    }

    #[test]
    fn timeout_and_retries_options_parse_and_compose() {
        let s = parse_statement(
            "EXECUTE dana.linearR('t') WITH (timeout_ms = 250, shards = 2, backend = fpga, trace = on, retries = 5);",
        )
        .unwrap();
        assert_eq!(
            s,
            Statement::Train(QueryCall {
                udf: "linearR".into(),
                table: "t".into(),
                scan: None,
                shards: Some(2),
                backend: BackendChoice::Fpga,
                trace: true,
                timeout_ms: Some(250),
                retries: Some(5),
            })
        );
        assert_eq!(s.timeout_ms(), Some(250));
        assert_eq!(s.retries(), Some(5));

        // PREDICT and EVALUATE accept the clause too.
        let s = parse_statement("PREDICT dana.f('t') INTO 'p' WITH (timeout_ms = 9);").unwrap();
        assert_eq!(s.timeout_ms(), Some(9));
        let s = parse_statement("EVALUATE dana.f('t') WITH (retries = 0);").unwrap();
        assert_eq!(s.retries(), Some(0), "retries = 0 disables retrying");

        // EXPLAIN ANALYZE inherits the inner clause; plain EXPLAIN
        // executes nothing and reports none.
        let s =
            parse_statement("EXPLAIN ANALYZE EXECUTE dana.f('t') WITH (timeout_ms = 7);").unwrap();
        assert_eq!(s.timeout_ms(), Some(7));
        let s = parse_statement("EXPLAIN EXECUTE dana.f('t') WITH (timeout_ms = 7);").unwrap();
        assert_eq!(s.timeout_ms(), None);

        // No clause: no deadline, no override.
        let s = parse_statement("EXECUTE dana.f('t');").unwrap();
        assert_eq!(s.timeout_ms(), None);
        assert_eq!(s.retries(), None);
    }

    #[test]
    fn bad_timeout_and_retries_values_are_typed_errors() {
        let e = parse_statement("EXECUTE dana.f('t') WITH (timeout_ms = banana);").unwrap_err();
        assert!(
            e.to_string().contains("bad timeout_ms value 'banana'"),
            "{e}"
        );
        let e = parse_statement("EXECUTE dana.f('t') WITH (timeout_ms = 0);").unwrap_err();
        assert!(
            e.to_string().contains("timeout_ms must be at least 1"),
            "{e}"
        );
        let e = parse_statement("EXECUTE dana.f('t') WITH (retries = -1);").unwrap_err();
        assert!(e.to_string().contains("bad retries value '-1'"), "{e}");
        for bad in [
            "EXECUTE dana.f('t') WITH (timeout_ms = 1, timeout_ms = 2);",
            "EXECUTE dana.f('t') WITH (retries = 1, retries = 2);",
            "EXECUTE dana.f('t') WITH (timeout_ms);",
            "EXECUTE dana.f('t') WITH (timeout_ms = 18446744073709551616);", // u64 overflow
        ] {
            let e = parse_statement(bad).unwrap_err();
            assert!(matches!(e, DanaError::Query(_)), "{bad}: {e:?}");
        }
        // The unknown-option message names the full vocabulary.
        let e = parse_statement("EXECUTE dana.f('t') WITH (timeout = 5);").unwrap_err();
        assert!(
            e.to_string()
                .contains("expected shards, backend, trace, timeout_ms, or retries"),
            "{e}"
        );
    }

    #[test]
    fn show_stats_accepts_the_faults_subsystem() {
        let s = parse_statement("SHOW STATS ('faults');").unwrap();
        assert_eq!(s, Statement::ShowStats(Some("faults".into())));
        let e = parse_statement("SHOW STATS ('thermals');").unwrap_err();
        assert!(e.to_string().contains("faults, serving, or scan"), "{e}");
    }

    #[test]
    fn show_stats_accepts_the_serving_subsystem() {
        let s = parse_statement("SHOW STATS ('serving');").unwrap();
        assert_eq!(s, Statement::ShowStats(Some("serving".into())));
    }

    #[test]
    fn bad_trace_values_reuse_the_malformed_with_error() {
        for bad in [
            "EXECUTE dana.f('t') WITH (trace = banana);",
            "EXECUTE dana.f('t') WITH (trace = on, trace = on);",
            "EXECUTE dana.f('t') WITH (trace);",
        ] {
            let e = parse_statement(bad).unwrap_err();
            assert!(matches!(e, DanaError::Query(_)), "{bad}: {e:?}");
        }
        let e = parse_statement("EXECUTE dana.f('t') WITH (trace = banana);").unwrap_err();
        assert!(e.to_string().contains("bad trace value 'banana'"), "{e}");
    }

    // ---- point-form PREDICT (VALUES ...) grammar -------------------------

    #[test]
    fn parses_point_predict_single_row() {
        let s = parse_statement("PREDICT dana.linearR(VALUES (1.0, 2.5, -3.0));").unwrap();
        assert_eq!(
            s,
            Statement::PredictPoint(PointCall {
                udf: "linearR".into(),
                rows: vec![vec![1.0, 2.5, -3.0]],
                backend: BackendChoice::Auto,
                trace: false,
                timeout_ms: None,
                retries: None,
            })
        );
    }

    #[test]
    fn parses_point_predict_micro_batch_and_flexible_case() {
        let s = parse_statement("predict svm(values (1, 2), (3, 4), (5, 6))").unwrap();
        assert_eq!(
            s,
            Statement::PredictPoint(PointCall {
                udf: "svm".into(),
                rows: vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
                backend: BackendChoice::Auto,
                trace: false,
                timeout_ms: None,
                retries: None,
            })
        );
        // Schema prefix, free-form whitespace, scientific notation.
        let Statement::PredictPoint(p) =
            parse_statement("PREDICT DANA.MyUdf( VALUES ( 1e-2 ,  2.5E1 ) );").unwrap()
        else {
            panic!("expected point predict");
        };
        assert_eq!(p.udf, "MyUdf");
        assert_eq!(p.rows, vec![vec![0.01, 25.0]]);
    }

    #[test]
    fn point_predict_composes_with_backend_trace_timeout_retries() {
        let s = parse_statement(
            "PREDICT dana.f(VALUES (1.0)) WITH (backend = cpu, trace = on, timeout_ms = 50, retries = 2);",
        )
        .unwrap();
        let Statement::PredictPoint(p) = &s else {
            panic!("expected point predict");
        };
        assert_eq!(p.backend, BackendChoice::Cpu);
        assert!(s.wants_trace());
        assert_eq!(s.timeout_ms(), Some(50));
        assert_eq!(s.retries(), Some(2));
        // EXPLAIN and EXPLAIN ANALYZE wrap the point form like any other.
        assert!(matches!(
            parse_statement("EXPLAIN PREDICT dana.f(VALUES (1.0));").unwrap(),
            Statement::Explain(_)
        ));
        assert!(matches!(
            parse_statement("EXPLAIN ANALYZE PREDICT dana.f(VALUES (1.0));").unwrap(),
            Statement::ExplainAnalyze(_)
        ));
    }

    #[test]
    fn point_predict_rejects_shards_and_into_as_typed_errors() {
        let e = parse_statement("PREDICT dana.f(VALUES (1.0)) WITH (shards = 2);").unwrap_err();
        assert!(e.to_string().contains("no scan to shard"), "{e}");
        let e = parse_statement("PREDICT dana.f(VALUES (1.0)) INTO 'p';").unwrap_err();
        assert!(e.to_string().contains("takes no INTO"), "{e}");
    }

    #[test]
    fn point_predict_rejects_malformed_values_rows() {
        for bad in [
            "PREDICT dana.f(VALUES);",             // no rows
            "PREDICT dana.f(VALUES ());",          // empty row
            "PREDICT dana.f(VALUES (1.0), ());",   // empty second row
            "PREDICT dana.f(VALUES (1.0,));",      // trailing comma in row
            "PREDICT dana.f(VALUES (,1.0));",      // leading comma in row
            "PREDICT dana.f(VALUES (1.0,,2.0));",  // double comma
            "PREDICT dana.f(VALUES (1.0),);",      // trailing comma after row
            "PREDICT dana.f(VALUES (1.0) (2.0));", // missing separator
            "PREDICT dana.f(VALUES (banana));",    // not a number
            "PREDICT dana.f(VALUES ('1.0'));",     // quoted literal
            "PREDICT dana.f(VALUES (nan));",       // non-finite
            "PREDICT dana.f(VALUES (inf));",       // non-finite
            "PREDICT dana.f(VALUES (1.0);",        // unbalanced parens
            "PREDICT dana.f(VALUES 1.0);",         // bare value, no row parens
            "PREDICT dana.f(VALUES (1.0)) extra;", // trailing garbage
            "PREDICT other.f(VALUES (1.0));",      // unknown schema
            "PREDICT dana.(VALUES (1.0));",        // empty UDF name
        ] {
            let e = parse_statement(bad).unwrap_err();
            assert!(matches!(e, DanaError::Query(_)), "{bad}: {e:?}");
        }
        // The messages are diagnostic, not generic.
        let e = parse_statement("PREDICT dana.f(VALUES (banana));").unwrap_err();
        assert!(e.to_string().contains("bad numeric value 'banana'"), "{e}");
        let e = parse_statement("PREDICT dana.f(VALUES (nan));").unwrap_err();
        assert!(e.to_string().contains("non-finite value 'nan'"), "{e}");
    }

    // ---- WHERE / COLUMNS pushdown grammar --------------------------------

    fn scan_of(s: &Statement) -> Option<&ScanSpec> {
        match s {
            Statement::Train(q) => q.scan.as_ref(),
            Statement::Predict(p) => p.scan.as_ref(),
            Statement::Evaluate(e) => e.scan.as_ref(),
            other => panic!("no scan on {other:?}"),
        }
    }

    #[test]
    fn where_clause_parses_on_every_scanning_form() {
        for sql in [
            "EXECUTE dana.f('t') WHERE x0 < 1.5;",
            "SELECT * FROM dana.f('t') where X0 < 1.5",
            "PREDICT dana.f('t') INTO 'p' WHERE x0 < 1.5;",
            "EVALUATE dana.f('t', 'mse') WHERE x0 < 1.5;",
        ] {
            let s = parse_statement(sql).unwrap();
            let scan = scan_of(&s).unwrap_or_else(|| panic!("{sql} should carry a scan"));
            assert_eq!(scan.predicates.len(), 1, "{sql}");
            assert_eq!(scan.predicates[0].op, CmpOp::Lt, "{sql}");
            assert_eq!(scan.predicates[0].value, 1.5, "{sql}");
            assert!(scan.projection.is_none(), "{sql}");
        }
        // Column-name case is preserved (binding decides validity).
        let Statement::Train(q) =
            parse_statement("EXECUTE dana.f('t') WHERE MyCol >= -2e1").unwrap()
        else {
            panic!("expected train");
        };
        assert_eq!(q.scan.as_ref().unwrap().predicates[0].column, "MyCol");
        assert_eq!(q.scan.unwrap().predicates[0].value, -20.0);
    }

    #[test]
    fn where_conjuncts_and_every_operator_parse() {
        let s = parse_statement(
            "EXECUTE dana.f('t') WHERE a < 1 AND b <= 2 and c > 3 AND d >= 4 AND e = 5 AND f != 6 AND g <> 7;",
        )
        .unwrap();
        let scan = scan_of(&s).unwrap();
        let ops: Vec<CmpOp> = scan.predicates.iter().map(|p| p.op).collect();
        assert_eq!(
            ops,
            [
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Ne,
            ]
        );
        assert_eq!(scan.predicates[6].column, "g");
        assert_eq!(scan.predicates[6].value, 7.0);
    }

    #[test]
    fn columns_clause_parses_and_composes_with_where() {
        let s = parse_statement("EXECUTE dana.f('t') COLUMNS (x0, x1, y);").unwrap();
        let scan = scan_of(&s).unwrap();
        assert!(scan.predicates.is_empty());
        assert_eq!(
            scan.projection,
            Some(vec!["x0".to_string(), "x1".to_string(), "y".to_string()])
        );
        // Quoted column names work; WHERE composes.
        let s = parse_statement("EXECUTE dana.f('t') WHERE y > 0 COLUMNS ('x1', \"y\");").unwrap();
        let scan = scan_of(&s).unwrap();
        assert_eq!(scan.predicates.len(), 1);
        assert_eq!(
            scan.projection,
            Some(vec!["x1".to_string(), "y".to_string()])
        );
    }

    #[test]
    fn tail_clauses_compose_in_any_order() {
        let want = parse_statement(
            "EXECUTE dana.f('t') WHERE x0 < 1 COLUMNS (x0, y) WITH (shards = 2, backend = fpga);",
        )
        .unwrap();
        for sql in [
            "EXECUTE dana.f('t') WHERE x0 < 1 WITH (shards = 2, backend = fpga) COLUMNS (x0, y);",
            "EXECUTE dana.f('t') COLUMNS (x0, y) WHERE x0 < 1 WITH (shards = 2, backend = fpga);",
            "EXECUTE dana.f('t') COLUMNS (x0, y) WITH (shards = 2, backend = fpga) WHERE x0 < 1;",
            "EXECUTE dana.f('t') WITH (shards = 2, backend = fpga) WHERE x0 < 1 COLUMNS (x0, y);",
            "EXECUTE dana.f('t') WITH (shards = 2, backend = fpga) COLUMNS (x0, y) WHERE x0 < 1;",
        ] {
            assert_eq!(parse_statement(sql).unwrap(), want, "{sql}");
        }
        // PREDICT keeps INTO ahead of the clause region.
        let s = parse_statement(
            "PREDICT dana.f('t') INTO 'p' WITH (shards = 2) WHERE x0 < 1 COLUMNS (x0);",
        )
        .unwrap();
        let Statement::Predict(p) = s else {
            panic!("expected predict");
        };
        assert_eq!(p.into, "p");
        assert_eq!(p.shards, Some(2));
        assert_eq!(p.scan.unwrap().predicates.len(), 1);
    }

    #[test]
    fn duplicate_tail_clauses_are_typed_errors() {
        for (bad, what) in [
            (
                "EXECUTE dana.f('t') WHERE x < 1 WHERE y < 2;",
                "duplicate WHERE clause",
            ),
            (
                "EXECUTE dana.f('t') COLUMNS (a) COLUMNS (b);",
                "duplicate COLUMNS clause",
            ),
            (
                "EXECUTE dana.f('t') WITH (shards = 2) WITH (shards = 3);",
                "duplicate WITH clause",
            ),
            (
                "EXECUTE dana.f('t') WHERE x < 1 COLUMNS (a) WHERE y < 2;",
                "duplicate WHERE clause",
            ),
        ] {
            let e = parse_statement(bad).unwrap_err();
            assert!(matches!(e, DanaError::Query(_)), "{bad}: {e:?}");
            assert!(e.to_string().contains(what), "{bad}: {e}");
        }
    }

    #[test]
    fn malformed_where_and_columns_clauses_are_typed_errors() {
        for bad in [
            "EXECUTE dana.f('t') WHERE x ~ 1;",      // unknown operator
            "EXECUTE dana.f('t') WHERE x < banana;", // not a number
            "EXECUTE dana.f('t') WHERE x < nan;",    // non-finite constant
            "EXECUTE dana.f('t') WHERE x < inf;",    // non-finite constant
            "EXECUTE dana.f('t') WHERE < 1;",        // missing column
            "EXECUTE dana.f('t') WHERE x y < 1;",    // bad column name
            "EXECUTE dana.f('t') WHERE x < 1 AND;",  // dangling AND
            "EXECUTE dana.f('t') WHERE AND x < 1;",  // leading AND
            "EXECUTE dana.f('t') COLUMNS ();",       // empty list
            "EXECUTE dana.f('t') COLUMNS (a,,b);",   // empty name
            "EXECUTE dana.f('t') COLUMNS (a;",       // unclosed list
            "EXECUTE dana.f('t') COLUMNS a, b;",     // unparenthesized
        ] {
            let e = parse_statement(bad).unwrap_err();
            assert!(matches!(e, DanaError::Query(_)), "{bad}: {e:?}");
        }
        // The messages are diagnostic, not generic.
        let e = parse_statement("EXECUTE dana.f('t') WHERE x < banana;").unwrap_err();
        assert!(e.to_string().contains("bad WHERE constant 'banana'"), "{e}");
        let e = parse_statement("EXECUTE dana.f('t') COLUMNS ();").unwrap_err();
        assert!(
            e.to_string().contains("COLUMNS list cannot be empty"),
            "{e}"
        );
    }

    #[test]
    fn point_predict_rejects_scan_clauses() {
        let e = parse_statement("PREDICT dana.f(VALUES (1.0)) WHERE x < 1;").unwrap_err();
        assert!(e.to_string().contains("no table scan"), "{e}");
        let e = parse_statement("PREDICT dana.f(VALUES (1.0)) COLUMNS (a);").unwrap_err();
        assert!(e.to_string().contains("no table scan"), "{e}");
    }

    #[test]
    fn scan_clauses_survive_explain_and_identifier_lookalikes() {
        // EXPLAIN wraps a filtered statement intact.
        let s = parse_statement("EXPLAIN EXECUTE dana.f('t') WHERE x < 1;").unwrap();
        let Statement::Explain(inner) = s else {
            panic!("expected explain");
        };
        assert_eq!(scan_of(&inner).unwrap().predicates.len(), 1);
        // A quoted table name shaped like a clause stays an identifier.
        let q = parse_query("SELECT * FROM dana.f('where x = 1');").unwrap();
        assert_eq!(q.table, "where x = 1");
        assert!(q.scan.is_none());
    }

    #[test]
    fn point_predict_does_not_shadow_tables_named_values() {
        // A source table merely *named* like the keyword stays the
        // materializing form: quoting marks it as an identifier.
        let s = parse_statement("PREDICT dana.f('values') INTO 'p';").unwrap();
        let Statement::Predict(p) = s else {
            panic!("expected materializing predict");
        };
        assert_eq!(p.table, "values");
        // And a bare table called values_v2 is not the point form either.
        let s = parse_statement("PREDICT dana.f(values_v2) INTO 'p';").unwrap();
        assert!(matches!(s, Statement::Predict(_)));
    }
}
