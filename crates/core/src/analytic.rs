//! The paper-scale analytic harness.
//!
//! The evaluation's datasets reach 38 GB and 1.3 M × 7 K tuples — far past
//! what functional simulation should chew through for every figure. This
//! module prices full-scale runs **through the same compiler** (real
//! hDFG → real schedule → the §6.1 performance estimator, which the
//! integration tests pin against the cycle-accurate engine) and the same
//! cost models the functional executors use. Every bench target in
//! `dana-bench` goes through these functions.

use dana_compiler::{compile, compile_with_threads, CompileInput, CompiledAccelerator};
use dana_fpga::{AxiLink, FpgaSpec};
use dana_hdfg::translate;
use dana_ml::{Algorithm, CpuModel, ExternalExecutor, ExternalLibrary, TrainConfig};
use dana_storage::page::TupleDirection;
use dana_storage::{DiskModel, PageLayoutDesc, TUPLE_HEADER_BYTES};
use dana_workloads::Workload;

use crate::error::DanaResult;
use crate::pipeline::CPU_FEED_HANDSHAKE_S;
use crate::report::{DanaTiming, Seconds};
use crate::runtime::{compose, EpochCosts, ExecutionMode};

/// The evaluation machine/system configuration (§7's experimental setup).
#[derive(Debug, Clone, Copy)]
pub struct SystemParams {
    pub fpga: FpgaSpec,
    pub disk: DiskModel,
    pub cpu: CpuModel,
    /// Buffer pool capacity (default 8 GB).
    pub pool_bytes: u64,
    /// Page size (default 32 KB).
    pub page_size: usize,
}

impl Default for SystemParams {
    fn default() -> SystemParams {
        SystemParams {
            fpga: FpgaSpec::vu9p(),
            disk: DiskModel::ssd(),
            cpu: CpuModel::i7_6700(),
            pool_bytes: 8 << 30,
            page_size: 32 * 1024,
        }
    }
}

impl SystemParams {
    /// Figure 14's knob: scale the FPGA's effective AXI bandwidth.
    pub fn with_bandwidth_scale(mut self, factor: f64) -> SystemParams {
        self.fpga = self.fpga.with_bandwidth_scale(factor);
        self
    }

    fn pool_pages(&self) -> u64 {
        self.pool_bytes / self.page_size as u64
    }
}

/// Software-baseline timing (MADlib / Greenplum / externals).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AnalyticTiming {
    pub cpu_seconds: Seconds,
    pub io_seconds: Seconds,
    pub total_seconds: Seconds,
}

/// Residency of a table in the pool: how many pages miss per epoch.
fn residency(w: &Workload, p: &SystemParams, warm: bool) -> (u64, u64) {
    let pages = w.pages_for(p.page_size);
    let resident = p.pool_pages().min(pages);
    // Warm: `resident` pages are already cached before the query (§7: for
    // synthetic sets "only a part ... are contained in the buffer pool").
    // Cold: everything misses in epoch 1.
    let first_misses = if warm { pages - resident } else { pages };
    let later_misses = pages - resident;
    (first_misses, later_misses)
}

/// DAnA (or an ablated variant) at full workload scale.
pub fn analytic_dana(
    w: &Workload,
    mode: ExecutionMode,
    warm: bool,
    p: &SystemParams,
) -> DanaResult<DanaTiming> {
    let acc = compile_workload(w, p, matches!(mode, ExecutionMode::Tabla).then_some(1))?;
    Ok(dana_timing_for(w, &acc, mode, warm, p))
}

/// DAnA with an explicit thread count (Fig. 12's merge-coefficient sweep).
pub fn analytic_dana_threads(
    w: &Workload,
    threads: u32,
    warm: bool,
    p: &SystemParams,
) -> DanaResult<DanaTiming> {
    let acc = compile_workload(w, p, Some(threads))?;
    Ok(dana_timing_for(w, &acc, ExecutionMode::Strider, warm, p))
}

/// Compiles the workload's UDF against the full-scale table statistics.
pub fn compile_workload(
    w: &Workload,
    p: &SystemParams,
    threads: Option<u32>,
) -> DanaResult<CompiledAccelerator> {
    let spec = w.spec();
    let hdfg = translate(&spec);
    let layout = PageLayoutDesc::new(
        p.page_size,
        0,
        w.tuple_bytes(),
        TUPLE_HEADER_BYTES,
        TupleDirection::Ascending,
    )?;
    let input = CompileInput {
        hdfg: &hdfg,
        fpga: p.fpga,
        layout,
        schema_columns: w.schema().len(),
        expected_tuples: w.tuples,
    };
    Ok(match threads {
        Some(t) => compile_with_threads(&input, t)?,
        None => compile(&input)?,
    })
}

fn dana_timing_for(
    w: &Workload,
    acc: &CompiledAccelerator,
    mode: ExecutionMode,
    warm: bool,
    p: &SystemParams,
) -> DanaTiming {
    let pages = w.pages_for(p.page_size);
    let bytes = pages * p.page_size as u64;
    let clock = p.fpga.clock;
    let axi = AxiLink::with_bandwidth(p.fpga.axi_bandwidth);
    let (first_misses, later_misses) = residency(w, p, warm);

    let strider_cycles = pages * acc.estimate.strider_cycles_per_page;
    let width = w.schema().len();
    let costs = EpochCosts {
        io_first: p
            .disk
            .sequential_read_time(first_misses * p.page_size as u64),
        io_later: p
            .disk
            .sequential_read_time(later_misses * p.page_size as u64),
        axi: axi.stream_time(bytes, p.page_size as u64),
        // Paper-scale analytic workloads model raw (uncompressed) pages.
        decompress: 0.0,
        strider: clock
            .to_seconds(strider_cycles.div_ceil(acc.budget.num_page_buffers.max(1) as u64)),
        engine: clock.to_seconds(acc.estimate.epoch_engine_cycles),
        cpu_feed: w.tuples as f64
            * (w.tuple_bytes() as f64 * p.cpu.deform_s_per_byte
                + width as f64 * p.cpu.conv_s_per_value
                + CPU_FEED_HANDSHAKE_S)
            + (w.tuples as f64 * width as f64 * 4.0) / p.fpga.axi_bandwidth,
        fill: axi.burst_time(p.page_size as u64),
    };
    compose(mode, w.epochs, &costs)
}

/// MADlib + PostgreSQL at full workload scale.
pub fn analytic_madlib(w: &Workload, warm: bool, p: &SystemParams) -> AnalyticTiming {
    let pages = w.pages_for(p.page_size);
    let cpu_epoch = match (w.algorithm, w.lrmf) {
        (Algorithm::Lrmf, Some((rows, cols, rank))) => {
            p.cpu
                .madlib_lrmf_epoch_seconds(rows as u64, cols as u64, rank, w.paper_pages)
        }
        _ => p.cpu.madlib_epoch_seconds(
            w.algorithm,
            w.tuples,
            w.features,
            10,
            w.tuple_bytes(),
            pages,
        ),
    };
    let (first, later) = residency(w, p, warm);
    let io = p.disk.sequential_read_time(first * p.page_size as u64)
        + (w.epochs.max(1) as u64 - 1) as f64
            * p.disk.sequential_read_time(later * p.page_size as u64);
    let cpu = w.epochs.max(1) as f64 * cpu_epoch;
    // Single-threaded PostgreSQL: the aggregate does not overlap reads.
    AnalyticTiming {
        cpu_seconds: cpu,
        io_seconds: io,
        total_seconds: cpu + io,
    }
}

/// MADlib + Greenplum at full workload scale.
pub fn analytic_greenplum(
    w: &Workload,
    segments: u32,
    warm: bool,
    p: &SystemParams,
) -> AnalyticTiming {
    let single = analytic_madlib(w, warm, p);
    let single_epoch = single.cpu_seconds / w.epochs.max(1) as f64;
    let par = CpuModel::greenplum_parallel_fraction(w.algorithm);
    let model_bytes = w.model_elements() as u64 * 4;
    let epoch = single_epoch * ((1.0 - par) + par / segments as f64)
        + p.cpu.greenplum_sync_seconds(segments, model_bytes);
    let cpu = w.epochs.max(1) as f64 * epoch;
    // Segments share the one disk: the same bytes move either way.
    AnalyticTiming {
        cpu_seconds: cpu,
        io_seconds: single.io_seconds,
        total_seconds: cpu + single.io_seconds,
    }
}

/// External-library pipeline at full workload scale. `None` when the
/// library does not support the algorithm.
pub fn analytic_external(
    w: &Workload,
    lib: ExternalLibrary,
    p: &SystemParams,
) -> Option<(Seconds, Seconds, Seconds)> {
    if !lib.supports(w.algorithm) {
        return None;
    }
    let exec = ExternalExecutor::new(p.cpu, lib);
    let cfg = TrainConfig {
        algorithm: w.algorithm,
        epochs: w.epochs,
        learning_rate: w.learning_rate as f32,
        ..Default::default()
    };
    Some(exec.analytic_seconds(&cfg, w.tuples, w.features))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dana_workloads::workload;

    fn p() -> SystemParams {
        SystemParams::default()
    }

    #[test]
    fn dana_beats_madlib_on_remote_sensing_lr() {
        // The paper's headline workload: 28.2× warm.
        let w = workload("Remote Sensing LR").unwrap();
        let dana = analytic_dana(&w, ExecutionMode::Strider, true, &p()).unwrap();
        let madlib = analytic_madlib(&w, true, &p());
        let speedup = madlib.total_seconds / dana.total_seconds;
        assert!(speedup > 5.0, "speedup {speedup:.1}× too small");
        assert!(speedup < 100.0, "speedup {speedup:.1}× implausible");
    }

    #[test]
    fn cold_cache_reduces_the_win() {
        let w = workload("Remote Sensing LR").unwrap();
        let warm_ratio = analytic_madlib(&w, true, &p()).total_seconds
            / analytic_dana(&w, ExecutionMode::Strider, true, &p())
                .unwrap()
                .total_seconds;
        let cold_ratio = analytic_madlib(&w, false, &p()).total_seconds
            / analytic_dana(&w, ExecutionMode::Strider, false, &p())
                .unwrap()
                .total_seconds;
        assert!(
            cold_ratio < warm_ratio,
            "benefits must diminish for cold cache: warm {warm_ratio:.1} cold {cold_ratio:.1}"
        );
    }

    #[test]
    fn striders_amplify_the_acceleration() {
        // Fig. 11: with Striders ≈ 4.6× over without, on average.
        let w = workload("Remote Sensing LR").unwrap();
        let with = analytic_dana(&w, ExecutionMode::Strider, true, &p()).unwrap();
        let without = analytic_dana(&w, ExecutionMode::CpuFed, true, &p()).unwrap();
        assert!(
            without.total_seconds > 1.5 * with.total_seconds,
            "with {} vs without {}",
            with.total_seconds,
            without.total_seconds
        );
    }

    #[test]
    fn wide_synthetics_are_bandwidth_bound() {
        // Fig. 14: S/N Linear gains from 2× bandwidth; LRMF does not.
        let w = workload("S/N Linear").unwrap();
        let base = analytic_dana(&w, ExecutionMode::Strider, true, &p()).unwrap();
        let double = analytic_dana(
            &w,
            ExecutionMode::Strider,
            true,
            &p().with_bandwidth_scale(2.0),
        )
        .unwrap();
        let gain = base.total_seconds / double.total_seconds;
        assert!(
            gain > 1.3,
            "bandwidth-bound workload must speed up, got {gain:.2}×"
        );

        let lrmf = workload("S/N LRMF").unwrap();
        let lbase = analytic_dana(&lrmf, ExecutionMode::Strider, true, &p()).unwrap();
        let ldouble = analytic_dana(
            &lrmf,
            ExecutionMode::Strider,
            true,
            &p().with_bandwidth_scale(2.0),
        )
        .unwrap();
        let lgain = lbase.total_seconds / ldouble.total_seconds;
        assert!(lgain < 1.15, "compute-bound LRMF must not, got {lgain:.2}×");
    }

    #[test]
    fn greenplum_eight_segments_helps_large_dense_workloads() {
        let w = workload("S/N Logistic").unwrap();
        let pg = analytic_madlib(&w, true, &p());
        let gp8 = analytic_greenplum(&w, 8, true, &p());
        assert!(gp8.total_seconds < pg.total_seconds);
    }

    #[test]
    fn externals_match_support_matrix() {
        let lin = workload("Patient").unwrap();
        assert!(analytic_external(&lin, ExternalLibrary::Liblinear, &p()).is_none());
        assert!(analytic_external(&lin, ExternalLibrary::DimmWitted, &p()).is_some());
        let lrmf = workload("Netflix").unwrap();
        assert!(analytic_external(&lrmf, ExternalLibrary::DimmWitted, &p()).is_none());
    }

    #[test]
    fn all_fourteen_workloads_compile_and_price() {
        for w in dana_workloads::all_workloads() {
            let t = analytic_dana(&w, ExecutionMode::Strider, true, &p())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(
                t.total_seconds.is_finite() && t.total_seconds > 0.0,
                "{}",
                w.name
            );
            let m = analytic_madlib(&w, true, &p());
            assert!(m.total_seconds > 0.0, "{}", w.name);
        }
    }
}
