//! Run reports: trained models plus the simulated-time breakdown, and
//! the inference tier's scoring/evaluation outcomes.

use dana_engine::EngineStats;
use dana_infer::{MetricKind, ScoringStats};
use dana_strider::AccessStats;

/// Simulated seconds.
pub type Seconds = f64;

/// Where the time went. All values are simulated seconds; `total_seconds`
/// composes them with the overlap semantics of [`crate::runtime`].
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DanaTiming {
    /// Disk → buffer pool (misses only; zero in the warm-cache setting for
    /// resident tables).
    pub io_seconds: Seconds,
    /// Buffer pool → FPGA page streaming.
    pub axi_seconds: Seconds,
    /// Strider extraction (already divided across parallel Striders).
    pub strider_seconds: Seconds,
    /// Execution-engine compute (all threads).
    pub engine_seconds: Seconds,
    /// One-time deployment/configuration transfer.
    pub setup_seconds: Seconds,
    /// End-to-end, with pipeline overlap applied.
    pub total_seconds: Seconds,
}

/// The result of one accelerated training run.
#[derive(Debug, Clone)]
pub struct DanaReport {
    /// Trained model values, one vec per model variable (row-major), in
    /// the UDF's declaration order.
    pub models: Vec<Vec<f32>>,
    /// Model variable names aligned with `models`.
    pub model_names: Vec<String>,
    pub epochs_run: u32,
    pub converged_early: bool,
    /// Threads the deployed design runs.
    pub num_threads: u16,
    /// Gang members (page-range shards) the query ran across; 1 for a
    /// serial query.
    pub shards: u16,
    pub timing: DanaTiming,
    pub engine: EngineStats,
    pub access: AccessStats,
}

impl DanaReport {
    /// The model for a named variable.
    pub fn model(&self, name: &str) -> Option<&[f32]> {
        self.model_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.models[i].as_slice())
    }

    /// Single-model convenience (dense algorithms).
    pub fn dense_model(&self) -> &[f32] {
        assert_eq!(self.models.len(), 1, "UDF has {} models", self.models.len());
        &self.models[0]
    }
}

/// A query execution outcome: what ran, and its report.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub udf: String,
    pub table: String,
    pub report: DanaReport,
}

/// The result of one PREDICT: a materialized prediction table.
#[derive(Debug, Clone)]
pub struct PredictReport {
    pub udf: String,
    /// The table that was scored.
    pub source_table: String,
    /// The materialized prediction table created in the catalog.
    pub output_table: String,
    pub rows_scored: u64,
    /// Lockstep lanes the scoring program ran across.
    pub lanes: u16,
    /// Gang members (page-range shards) the scan ran across; 1 = serial.
    pub shards: u16,
    pub scoring: ScoringStats,
    pub timing: DanaTiming,
}

/// The result of one EVALUATE: an in-database quality metric.
#[derive(Debug, Clone)]
pub struct EvalReport {
    pub udf: String,
    pub table: String,
    pub metric: MetricKind,
    pub value: f64,
    pub rows_scored: u64,
    pub lanes: u16,
    /// Gang members (page-range shards) the scan ran across; 1 = serial.
    pub shards: u16,
    pub scoring: ScoringStats,
    pub timing: DanaTiming,
}

/// The outcome of any front-door statement (`Dana::execute_statement`).
#[derive(Debug, Clone)]
pub enum StatementOutcome {
    Train(QueryOutcome),
    Predict(PredictReport),
    Evaluate(EvalReport),
}

impl StatementOutcome {
    /// End-to-end simulated timing, whichever statement ran.
    pub fn timing(&self) -> &DanaTiming {
        match self {
            StatementOutcome::Train(o) => &o.report.timing,
            StatementOutcome::Predict(p) => &p.timing,
            StatementOutcome::Evaluate(e) => &e.timing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> DanaReport {
        DanaReport {
            models: vec![vec![1.0, 2.0], vec![3.0]],
            model_names: vec!["w".into(), "b".into()],
            epochs_run: 1,
            converged_early: false,
            num_threads: 4,
            shards: 1,
            timing: DanaTiming::default(),
            engine: EngineStats::default(),
            access: AccessStats::default(),
        }
    }

    #[test]
    fn model_lookup_by_name() {
        let r = report();
        assert_eq!(r.model("w"), Some(&[1.0, 2.0][..]));
        assert_eq!(r.model("b"), Some(&[3.0][..]));
        assert_eq!(r.model("nope"), None);
    }

    #[test]
    #[should_panic(expected = "2 models")]
    fn dense_model_requires_single_model() {
        let _ = report().dense_model();
    }
}
