//! Run reports: trained models plus the simulated-time breakdown, and
//! the inference tier's scoring/evaluation outcomes.

use crate::advisor::StrategyComparison;
use dana_engine::{BackendKind, EngineStats};
use dana_infer::{MetricKind, ScoringStats};
use dana_strider::AccessStats;

/// Seconds. Most timing fields are *simulated* seconds from the cycle
/// model; [`DanaTiming::wall_seconds`] alone is measured wall clock.
pub type Seconds = f64;

/// Where the time went. The first six fields are **simulated** seconds
/// (cycle model + disk/AXI models); `total_seconds` composes them with
/// the overlap semantics of [`crate::runtime`]. `wall_seconds` is the
/// one **measured** field, set only by the native CPU backend — the two
/// units are deliberately separate slots so a gang's simulated total and
/// a CPU run's stopwatch can never be summed or swapped by accident.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DanaTiming {
    /// Disk → buffer pool (misses only; zero in the warm-cache setting for
    /// resident tables).
    pub io_seconds: Seconds,
    /// Buffer pool → FPGA page streaming.
    pub axi_seconds: Seconds,
    /// Strider extraction (already divided across parallel Striders).
    pub strider_seconds: Seconds,
    /// Page decompression (the scan tier's codec), upstream of AXI.
    /// Zero when the scan read raw pages.
    pub decompress_seconds: Seconds,
    /// Execution-engine compute (all threads).
    pub engine_seconds: Seconds,
    /// One-time deployment/configuration transfer.
    pub setup_seconds: Seconds,
    /// End-to-end, with pipeline overlap applied. Zero for CPU-backend
    /// runs: nothing was simulated.
    pub total_seconds: Seconds,
    /// Measured wall-clock seconds of the host execution loop — `Some`
    /// only for CPU-backend runs, `None` whenever the run was simulated.
    pub wall_seconds: Option<Seconds>,
}

// Hand-written (de)serialization: the vendored serde stub has no
// `#[serde(default)]`, and artifact blobs written before `wall_seconds`
// existed must keep deserializing (as simulated-only timings).
impl serde::Serialize for DanaTiming {
    fn to_value(&self) -> serde::json::Value {
        serde::json::Value::Obj(vec![
            ("io_seconds".to_string(), self.io_seconds.to_value()),
            ("axi_seconds".to_string(), self.axi_seconds.to_value()),
            (
                "strider_seconds".to_string(),
                self.strider_seconds.to_value(),
            ),
            (
                "decompress_seconds".to_string(),
                self.decompress_seconds.to_value(),
            ),
            ("engine_seconds".to_string(), self.engine_seconds.to_value()),
            ("setup_seconds".to_string(), self.setup_seconds.to_value()),
            ("total_seconds".to_string(), self.total_seconds.to_value()),
            ("wall_seconds".to_string(), self.wall_seconds.to_value()),
        ])
    }
}

impl serde::Deserialize for DanaTiming {
    fn from_value(v: &serde::json::Value) -> Result<Self, String> {
        let obj = serde::json::as_obj(v, "DanaTiming")?;
        let f = |key: &str| -> Result<Seconds, String> {
            serde::Deserialize::from_value(serde::json::field(obj, key, "DanaTiming")?)
        };
        Ok(DanaTiming {
            io_seconds: f("io_seconds")?,
            axi_seconds: f("axi_seconds")?,
            strider_seconds: f("strider_seconds")?,
            // Absent in blobs written before the scan tier: raw pages,
            // nothing decompressed.
            decompress_seconds: match obj.get("decompress_seconds") {
                None => 0.0,
                Some(v) => serde::Deserialize::from_value(v)?,
            },
            engine_seconds: f("engine_seconds")?,
            setup_seconds: f("setup_seconds")?,
            total_seconds: f("total_seconds")?,
            // Absent in pre-backend blobs: default to simulated-only.
            wall_seconds: match obj.get("wall_seconds") {
                None => None,
                Some(v) => serde::Deserialize::from_value(v)?,
            },
        })
    }
}

impl DanaTiming {
    /// A wall-clock-only timing for a native CPU run: every simulated
    /// slot stays zero (nothing was simulated).
    pub fn wall_only(wall: Seconds) -> DanaTiming {
        DanaTiming {
            wall_seconds: Some(wall),
            ..DanaTiming::default()
        }
    }
}

/// The result of one accelerated training run.
#[derive(Debug, Clone)]
pub struct DanaReport {
    /// Trained model values, one vec per model variable (row-major), in
    /// the UDF's declaration order.
    pub models: Vec<Vec<f32>>,
    /// Model variable names aligned with `models`.
    pub model_names: Vec<String>,
    pub epochs_run: u32,
    pub converged_early: bool,
    /// Threads the deployed design runs.
    pub num_threads: u16,
    /// Gang members (page-range shards) the query ran across; 1 for a
    /// serial query.
    pub shards: u16,
    /// The execution substrate that ran this query.
    pub backend: BackendKind,
    pub timing: DanaTiming,
    pub engine: EngineStats,
    pub access: AccessStats,
}

impl DanaReport {
    /// The model for a named variable.
    pub fn model(&self, name: &str) -> Option<&[f32]> {
        self.model_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.models[i].as_slice())
    }

    /// Single-model convenience (dense algorithms).
    pub fn dense_model(&self) -> &[f32] {
        assert_eq!(self.models.len(), 1, "UDF has {} models", self.models.len());
        &self.models[0]
    }
}

/// A query execution outcome: what ran, and its report.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub udf: String,
    pub table: String,
    pub report: DanaReport,
}

/// The result of one PREDICT: a materialized prediction table.
#[derive(Debug, Clone)]
pub struct PredictReport {
    pub udf: String,
    /// The table that was scored.
    pub source_table: String,
    /// The materialized prediction table created in the catalog.
    pub output_table: String,
    pub rows_scored: u64,
    /// Lockstep lanes the scoring program ran across.
    pub lanes: u16,
    /// Gang members (page-range shards) the scan ran across; 1 = serial.
    pub shards: u16,
    /// The execution substrate that ran the scoring scan.
    pub backend: BackendKind,
    pub scoring: ScoringStats,
    pub timing: DanaTiming,
}

/// The result of one point-form PREDICT: inline predictions for the
/// statement's literal rows. Nothing is materialized and no heap scan
/// runs — the rows were bound straight into the cached scoring program.
#[derive(Debug, Clone)]
pub struct PointReport {
    pub udf: String,
    /// One prediction per VALUES row, in statement order.
    pub predictions: Vec<f32>,
    /// Lockstep lanes the scoring program ran across.
    pub lanes: u16,
    /// The execution substrate that scored the rows.
    pub backend: BackendKind,
    /// Whether the reply was served from the prediction cache (set by
    /// the serving tier; the core scorer always reports `false`).
    pub cached: bool,
    pub scoring: ScoringStats,
    pub timing: DanaTiming,
}

/// The result of one EVALUATE: an in-database quality metric.
#[derive(Debug, Clone)]
pub struct EvalReport {
    pub udf: String,
    pub table: String,
    pub metric: MetricKind,
    pub value: f64,
    pub rows_scored: u64,
    pub lanes: u16,
    /// Gang members (page-range shards) the scan ran across; 1 = serial.
    pub shards: u16,
    /// The execution substrate that ran the scoring scan.
    pub backend: BackendKind,
    pub scoring: ScoringStats,
    pub timing: DanaTiming,
}

/// The outcome of any front-door statement (`Dana::execute_statement`).
#[derive(Debug, Clone)]
pub enum StatementOutcome {
    Train(QueryOutcome),
    Predict(PredictReport),
    /// Point-form PREDICT (VALUES ...): inline predictions, no scan.
    Point(PointReport),
    Evaluate(EvalReport),
    /// `EXPLAIN <stmt>`: the advisor's per-backend comparison. Nothing
    /// was executed, so there is no timing.
    Explain(StrategyComparison),
    /// `EXPLAIN ANALYZE <stmt>`: the inner statement's outcome plus its
    /// lifecycle trace and (where the advisor can price it) the
    /// prediction the observed run can be checked against.
    Analyze(Box<AnalyzeReport>),
    /// `SHOW STATS`: a snapshot of the metrics registry.
    Stats(dana_obs::StatsSnapshot),
}

impl StatementOutcome {
    /// End-to-end timing, whichever statement ran; `None` for EXPLAIN
    /// and SHOW STATS (nothing executed). An EXPLAIN ANALYZE reports its
    /// inner statement's timing.
    pub fn timing(&self) -> Option<&DanaTiming> {
        match self {
            StatementOutcome::Train(o) => Some(&o.report.timing),
            StatementOutcome::Predict(p) => Some(&p.timing),
            StatementOutcome::Point(p) => Some(&p.timing),
            StatementOutcome::Evaluate(e) => Some(&e.timing),
            StatementOutcome::Explain(_) | StatementOutcome::Stats(_) => None,
            StatementOutcome::Analyze(a) => a.outcome.timing(),
        }
    }

    /// The substrate that ran the statement (`None` for EXPLAIN, which
    /// runs nothing — its *recommended* backend is in the comparison).
    pub fn backend(&self) -> Option<BackendKind> {
        match self {
            StatementOutcome::Train(o) => Some(o.report.backend),
            StatementOutcome::Predict(p) => Some(p.backend),
            StatementOutcome::Point(p) => Some(p.backend),
            StatementOutcome::Evaluate(e) => Some(e.backend),
            StatementOutcome::Explain(_) | StatementOutcome::Stats(_) => None,
            StatementOutcome::Analyze(a) => a.outcome.backend(),
        }
    }
}

/// What `EXPLAIN ANALYZE <stmt>` returns: the executed statement's
/// outcome, the lifecycle trace of the run, and — for statements the
/// advisor can price — the predicted per-backend comparison, so observed
/// stage times sit next to the estimate they calibrate.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    pub outcome: StatementOutcome,
    pub trace: dana_obs::QueryTrace,
    pub comparison: Option<StrategyComparison>,
}

impl AnalyzeReport {
    /// Renders the span tree, followed by the advisor comparison when
    /// one exists — the `EXPLAIN ANALYZE` result surface.
    pub fn render(&self) -> String {
        let mut out = self.trace.render();
        if let Some(cmp) = &self.comparison {
            out.push('\n');
            out.push_str(&cmp.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> DanaReport {
        DanaReport {
            models: vec![vec![1.0, 2.0], vec![3.0]],
            model_names: vec!["w".into(), "b".into()],
            epochs_run: 1,
            converged_early: false,
            num_threads: 4,
            shards: 1,
            backend: BackendKind::Fpga,
            timing: DanaTiming::default(),
            engine: EngineStats::default(),
            access: AccessStats::default(),
        }
    }

    /// Satellite regression: simulated seconds and measured wall seconds
    /// live in distinct slots and never overload each other. A simulated
    /// (FPGA/gang) timing has no wall time; a CPU wall-only timing keeps
    /// every simulated slot at zero.
    #[test]
    fn simulated_and_wall_seconds_are_distinct_slots() {
        let simulated = DanaTiming {
            engine_seconds: 0.25,
            total_seconds: 0.4,
            ..DanaTiming::default()
        };
        assert!(simulated.wall_seconds.is_none());

        let cpu = DanaTiming::wall_only(0.0123);
        assert_eq!(cpu.wall_seconds, Some(0.0123));
        assert_eq!(
            cpu.total_seconds, 0.0,
            "wall time must not leak into the simulated total"
        );
        assert_eq!(cpu.engine_seconds, 0.0);
        assert_eq!(cpu.io_seconds, 0.0);
        assert_eq!(cpu.setup_seconds, 0.0);

        // And the separation survives serialization — old blobs without
        // the field deserialize as simulated-only.
        let json = serde_json::to_string(&cpu).unwrap();
        let back: DanaTiming = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cpu);
        let legacy = r#"{"io_seconds":0.0,"axi_seconds":0.0,"strider_seconds":0.0,"engine_seconds":0.1,"setup_seconds":0.0,"total_seconds":0.2}"#;
        let t: DanaTiming = serde_json::from_str(legacy).unwrap();
        assert_eq!(t.wall_seconds, None);
        assert_eq!(t.total_seconds, 0.2);
    }

    #[test]
    fn model_lookup_by_name() {
        let r = report();
        assert_eq!(r.model("w"), Some(&[1.0, 2.0][..]));
        assert_eq!(r.model("b"), Some(&[3.0][..]));
        assert_eq!(r.model("nope"), None);
    }

    #[test]
    #[should_panic(expected = "2 models")]
    fn dense_model_requires_single_model() {
        let _ = report().dense_model();
    }
}
