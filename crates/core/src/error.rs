//! Top-level error type: every layer's failures, unified.

use std::fmt;

/// Errors surfaced by the DAnA system façade.
#[derive(Debug)]
pub enum DanaError {
    Storage(dana_storage::StorageError),
    Dsl(dana_dsl::DslError),
    Compiler(dana_compiler::CompilerError),
    Engine(dana_engine::EngineError),
    Strider(dana_strider::StriderError),
    /// Inference-tier failure (scoring lowering, SoA scorer, metrics,
    /// materialization).
    Infer(dana_infer::InferError),
    /// Intra-query parallel tier failure (shard execution, merge
    /// derivation, partial-model shapes).
    Parallel(dana_parallel::ParallelError),
    /// SQL the query front end cannot parse.
    Query(String),
    /// Catalog blob corruption (deserialize failure).
    Blob(String),
    /// The accelerator's backing table has been dropped; its Strider
    /// program walks a page layout that no longer exists.
    StaleAccelerator {
        udf: String,
        dropped_table: String,
    },
    /// PREDICT/EVALUATE on a UDF that has never been trained: there are
    /// no model values to score with until an EXECUTE stores some.
    ModelNotTrained {
        udf: String,
    },
}

impl fmt::Display for DanaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DanaError::Storage(e) => write!(f, "storage: {e}"),
            DanaError::Dsl(e) => write!(f, "dsl: {e}"),
            DanaError::Compiler(e) => write!(f, "compiler: {e}"),
            DanaError::Engine(e) => write!(f, "engine: {e}"),
            DanaError::Strider(e) => write!(f, "strider: {e}"),
            DanaError::Infer(e) => write!(f, "infer: {e}"),
            DanaError::Parallel(e) => write!(f, "parallel: {e}"),
            DanaError::Query(msg) => write!(f, "query: {msg}"),
            DanaError::Blob(msg) => write!(f, "catalog blob: {msg}"),
            DanaError::StaleAccelerator { udf, dropped_table } => write!(
                f,
                "accelerator '{udf}' is stale: its table '{dropped_table}' was dropped"
            ),
            DanaError::ModelNotTrained { udf } => write!(
                f,
                "accelerator '{udf}' has no trained model yet: run EXECUTE before PREDICT/EVALUATE"
            ),
        }
    }
}

impl std::error::Error for DanaError {}

impl From<dana_storage::StorageError> for DanaError {
    fn from(e: dana_storage::StorageError) -> DanaError {
        DanaError::Storage(e)
    }
}

impl From<dana_dsl::DslError> for DanaError {
    fn from(e: dana_dsl::DslError) -> DanaError {
        DanaError::Dsl(e)
    }
}

impl From<dana_compiler::CompilerError> for DanaError {
    fn from(e: dana_compiler::CompilerError) -> DanaError {
        DanaError::Compiler(e)
    }
}

impl From<dana_engine::EngineError> for DanaError {
    fn from(e: dana_engine::EngineError) -> DanaError {
        DanaError::Engine(e)
    }
}

impl From<dana_strider::StriderError> for DanaError {
    fn from(e: dana_strider::StriderError) -> DanaError {
        DanaError::Strider(e)
    }
}

impl From<dana_infer::InferError> for DanaError {
    fn from(e: dana_infer::InferError) -> DanaError {
        DanaError::Infer(e)
    }
}

impl From<dana_parallel::ParallelError> for DanaError {
    fn from(e: dana_parallel::ParallelError) -> DanaError {
        DanaError::Parallel(e)
    }
}

impl DanaError {
    /// Whether this error is the cooperative-cancellation deadline
    /// signal, surfaced from either the serial engine path or a gang.
    pub fn is_deadline_exceeded(&self) -> bool {
        match self {
            DanaError::Engine(e) => e.is_deadline(),
            DanaError::Parallel(dana_parallel::ParallelError::Cancelled) => true,
            DanaError::Parallel(dana_parallel::ParallelError::Engine { source, .. }) => {
                source.is_deadline()
            }
            _ => false,
        }
    }

    /// Whether this error is a transient accelerator fault (retryable).
    pub fn is_transient_fault(&self) -> bool {
        match self {
            DanaError::Engine(e) => e.is_transient(),
            DanaError::Parallel(dana_parallel::ParallelError::Engine { source, .. }) => {
                source.is_transient()
            }
            _ => false,
        }
    }
}

pub type DanaResult<T> = Result<T, DanaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: DanaError = dana_storage::StorageError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("storage"));
        let e: DanaError = dana_dsl::DslError::NoModelUpdate.into();
        assert!(e.to_string().contains("dsl"));
        let e = DanaError::Query("bad".into());
        assert!(e.to_string().contains("query"));
        let e = DanaError::StaleAccelerator {
            udf: "linearR".into(),
            dropped_table: "t".into(),
        };
        assert!(e.to_string().contains("stale"));
        assert!(e.to_string().contains("linearR"));
    }
}
