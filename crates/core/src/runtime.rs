//! Runtime composition: how the pipeline's cost sources overlap.
//!
//! DAnA's access and execution engines are deliberately decoupled so that
//! "unpacking of data in the access engine and processing it in the
//! execution engine" interleave dynamically (§5.1.1). Per epoch, four
//! streams proceed concurrently at page granularity — disk→pool misses,
//! pool→FPGA AXI bursts, Strider extraction, engine compute — so an
//! epoch costs the **maximum** of the four, plus a one-page pipeline fill.
//!
//! Removing the Striders (Fig. 11's ablation) breaks exactly this overlap:
//! the CPU must deform/convert every tuple and hand it off, serializing the
//! feed with the engine.

use crate::report::{DanaTiming, Seconds};

/// How the accelerator is fed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Full DAnA: Striders walk raw pages on-chip.
    Strider,
    /// Figure 11's ablation — "the CPU transforms the training tuples and
    /// sends them to the execution engines".
    CpuFed,
    /// Figure 16's comparison: TABLA-class accelerator — CPU-fed *and*
    /// single-threaded.
    Tabla,
}

impl ExecutionMode {
    pub fn name(&self) -> &'static str {
        match self {
            ExecutionMode::Strider => "DAnA",
            ExecutionMode::CpuFed => "DAnA w/o Striders",
            ExecutionMode::Tabla => "TABLA",
        }
    }

    pub fn uses_striders(&self) -> bool {
        matches!(self, ExecutionMode::Strider)
    }
}

/// Per-epoch cost inputs for the composition.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochCosts {
    /// Disk seconds for the *first* epoch (cold misses).
    pub io_first: Seconds,
    /// Disk seconds for every later epoch (what the pool cannot hold).
    pub io_later: Seconds,
    /// AXI page streaming per epoch.
    pub axi: Seconds,
    /// Page decompression per epoch (the scan tier's codec; zero for raw
    /// pages). Pipelines with AXI at page granularity in Strider mode;
    /// serializes into the CPU feed chain in the ablations.
    pub decompress: Seconds,
    /// Strider extraction per epoch (already divided across Striders).
    pub strider: Seconds,
    /// Engine compute per epoch.
    pub engine: Seconds,
    /// CPU tuple transformation per epoch (CpuFed/Tabla modes).
    pub cpu_feed: Seconds,
    /// One-page pipeline-fill latency.
    pub fill: Seconds,
}

/// One-time accelerator configuration (bitstream is pre-loaded; this is
/// the instruction/meta transfer of §5.1.1's configuration channel plus
/// host-side query setup).
pub const SETUP_SECONDS: Seconds = 30.0e-3;

/// Host-side orchestration per epoch: kernel (re)invocation, the
/// convergence-flag readback, and buffer-pool hand-off synchronization.
/// OpenCL-class FPGA runtimes (the AWS F1 / SDAccel stack the paper's
/// platform family uses) pay tens of milliseconds per enqueue; fitted at
/// 25 ms against the paper's small public workloads (Table 5's sub-second
/// DAnA rows), documented in EXPERIMENTS.md.
pub const EPOCH_OVERHEAD_S: Seconds = 25.0e-3;

/// Composes per-epoch costs into an end-to-end [`DanaTiming`].
pub fn compose(mode: ExecutionMode, epochs: u32, c: &EpochCosts) -> DanaTiming {
    let epochs = epochs.max(1);
    let mut timing = DanaTiming {
        setup_seconds: SETUP_SECONDS,
        ..DanaTiming::default()
    };
    for e in 0..epochs {
        let io = if e == 0 { c.io_first } else { c.io_later };
        let epoch = match mode {
            // Full pipeline overlap at page granularity (decompression is
            // one more page-granular stream to overlap).
            ExecutionMode::Strider => {
                io.max(c.decompress).max(c.axi).max(c.strider).max(c.engine)
                    + c.fill
                    + EPOCH_OVERHEAD_S
            }
            // CPU feed serializes with compute: the handshake prevents the
            // interleave ("using the CPU for data extraction would have a
            // significant overhead due to the handshaking", §5.1.1). Only
            // disk I/O still overlaps (prefetch). The CPU also does its
            // own decompression ahead of the deform.
            ExecutionMode::CpuFed | ExecutionMode::Tabla => {
                io.max(c.decompress + c.cpu_feed + c.engine) + c.fill + EPOCH_OVERHEAD_S
            }
        };
        timing.io_seconds += io;
        timing.decompress_seconds += c.decompress;
        timing.axi_seconds += if mode.uses_striders() { c.axi } else { 0.0 };
        timing.strider_seconds += if mode.uses_striders() { c.strider } else { 0.0 };
        timing.engine_seconds += c.engine;
        timing.total_seconds += epoch;
    }
    timing.total_seconds += timing.setup_seconds;
    timing
}

/// The simulated time of [`compose`]'s total, split along the trace's
/// stage vocabulary.
///
/// The split mirrors `compose`'s epoch loop operation-for-operation so
/// that `setup + scan + engine` reproduces `total_seconds` to float
/// rounding — `EXPLAIN ANALYZE` holds the rendered stage sum to the
/// query report, so the partition must be a true decomposition rather
/// than a second estimate.
#[derive(Debug, Clone, Copy, Default)]
pub struct StagePartition {
    /// One-time configuration — the trace's `lease` stage (sim side).
    pub setup: Seconds,
    /// Everything of each epoch that is not engine compute: the
    /// overlapped feed (I/O / AXI / Strider or CPU feed) surplus over
    /// compute, pipeline fill, and host epoch overhead — the trace's
    /// `scan` stage.
    pub scan: Seconds,
    /// Engine compute across all epochs — the trace's `engine` stage
    /// (the gang path carves its merge share out of this).
    pub engine: Seconds,
}

/// Splits the composed end-to-end simulated time into trace stages.
pub fn stage_partition(mode: ExecutionMode, epochs: u32, c: &EpochCosts) -> StagePartition {
    let epochs = epochs.max(1);
    let mut part = StagePartition {
        setup: SETUP_SECONDS,
        ..StagePartition::default()
    };
    for e in 0..epochs {
        let io = if e == 0 { c.io_first } else { c.io_later };
        let epoch = match mode {
            ExecutionMode::Strider => {
                io.max(c.decompress).max(c.axi).max(c.strider).max(c.engine)
                    + c.fill
                    + EPOCH_OVERHEAD_S
            }
            ExecutionMode::CpuFed | ExecutionMode::Tabla => {
                io.max(c.decompress + c.cpu_feed + c.engine) + c.fill + EPOCH_OVERHEAD_S
            }
        };
        // `epoch >= c.engine + fill + overhead` in every mode, so the
        // scan share is non-negative by construction.
        part.scan += epoch - c.engine;
        part.engine += c.engine;
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> EpochCosts {
        EpochCosts {
            io_first: 0.5,
            io_later: 0.1,
            axi: 0.2,
            decompress: 0.0,
            strider: 0.05,
            engine: 0.08,
            cpu_feed: 0.4,
            fill: 0.001,
        }
    }

    #[test]
    fn strider_mode_overlaps_to_the_max() {
        let t = compose(ExecutionMode::Strider, 3, &costs());
        // epoch 1: max(0.5, 0.2, 0.05, 0.08) = 0.5; epochs 2–3: 0.2 (axi).
        let expected = 0.5 + 0.2 + 0.2 + 3.0 * (0.001 + EPOCH_OVERHEAD_S) + SETUP_SECONDS;
        assert!((t.total_seconds - expected).abs() < 1e-12, "{t:?}");
    }

    #[test]
    fn cpu_fed_serializes_feed_and_compute() {
        let t = compose(ExecutionMode::CpuFed, 2, &costs());
        // epoch 1: max(0.5, 0.4+0.08) = 0.5; epoch 2: max(0.1, 0.48) = 0.48.
        let expected = 0.5 + 0.48 + 2.0 * (0.001 + EPOCH_OVERHEAD_S) + SETUP_SECONDS;
        assert!((t.total_seconds - expected).abs() < 1e-12, "{t:?}");
        assert_eq!(t.axi_seconds, 0.0);
        assert_eq!(t.strider_seconds, 0.0);
    }

    #[test]
    fn strider_mode_beats_cpu_fed_when_feed_dominates() {
        let s = compose(ExecutionMode::Strider, 5, &costs());
        let c = compose(ExecutionMode::CpuFed, 5, &costs());
        assert!(s.total_seconds < c.total_seconds);
    }

    #[test]
    fn zero_epochs_clamps_to_one() {
        let t = compose(ExecutionMode::Strider, 0, &costs());
        assert!(t.total_seconds > SETUP_SECONDS);
    }

    #[test]
    fn stage_partition_reproduces_composed_total() {
        for mode in [
            ExecutionMode::Strider,
            ExecutionMode::CpuFed,
            ExecutionMode::Tabla,
        ] {
            for epochs in [0u32, 1, 3, 17] {
                let t = compose(mode, epochs, &costs());
                let p = stage_partition(mode, epochs, &costs());
                let sum = p.setup + p.scan + p.engine;
                assert!(
                    (sum - t.total_seconds).abs() < 1e-12 * t.total_seconds.max(1.0),
                    "{mode:?} epochs={epochs}: {sum} vs {}",
                    t.total_seconds
                );
                assert!(p.scan >= 0.0);
                let engine = epochs.max(1) as f64 * costs().engine;
                assert!((p.engine - engine).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mode_names() {
        assert_eq!(ExecutionMode::Strider.name(), "DAnA");
        assert!(ExecutionMode::Strider.uses_striders());
        assert!(!ExecutionMode::Tabla.uses_striders());
    }
}
