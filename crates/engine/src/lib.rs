//! DAnA's execution engine (§5.2).
//!
//! The engine is a hierarchy: **threads** (architecturally identical, each
//! processing a different training tuple) contain **analytic clusters**
//! (ACs; the control hubs of Fig. 7a), each a fixed group of **8 analytic
//! units** (AUs; the pipelined compute elements of Fig. 7b). Threads'
//! results combine on a "computationally-enabled tree bus in accordance to
//! the merge function".
//!
//! The paper's Appendix B (the execution-engine ISA listing) is not part of
//! the available text, so this crate defines a concrete ISA faithful to
//! everything §5.2 *does* specify:
//!
//! * **Variable-Length Selective SIMD**: each scheduled [`isa::Step`] is an
//!   AC-level instruction; AUs not mentioned in a step execute a NOP
//!   ("Each AU within a cluster is expected to execute either a cluster
//!   level instruction ... or a no-operation"); per-AU source/destination
//!   specifiers ride along ("Finer details about the source type, source
//!   operands, and destination type can be stored in each individual AU").
//! * **Locality rules**: an AU reads operands from its own scratchpad or
//!   its cluster-mates for free (neighbor links + intra-AC shared bus);
//!   cross-cluster values must move via explicit `Mov` transfers on the
//!   inter-AC bus, with a per-step lane budget — the structural hazard the
//!   scheduler must honor, checked at execution time here.
//! * **ALU repertoire**: `+ − × ÷ > <`, `sigmoid`, `gaussian`, `sqrt`
//!   (Table 1's operation set), plus row `Gather`/`Scatter` against model
//!   memory for LRMF.
//!
//! Execution is two-tier. The hot path is the **deploy-time-lowered SoA
//! lockstep executor** ([`lowered`]): the scheduled program is lowered
//! once — at deploy — into flat pre-resolved ops (raw scratchpad offsets,
//! inlined constants, statically staged hazards, pre-bound model shapes)
//! and executed group-at-a-time over a slot-major structure-of-arrays
//! scratchpad, one tight inner loop per op across all lockstep threads.
//! The original interpreters ([`ExecutionEngine::run_training_interpreter`]
//! over the flat scratchpad, [`ExecutionEngine::run_training_rows`] over
//! the nested one) are retained as differential-testing reference tiers.
//!
//! Every tier is functional *and* cycle-accurate: it computes real f32
//! results (trained models are checked against software references in the
//! integration tests) while charging the static schedule's cycle cost —
//! the same cost the compiler's performance estimator predicts. The
//! equivalence and differential suites hold all tiers bit-identical in
//! models and stats.

pub mod backend;
pub mod engine;
pub mod error;
pub mod fault;
pub mod isa;
pub mod lowered;

pub use backend::{
    calibrate_cpu_lane_rate, BackendKind, BackendRun, CpuBackend, ExecutionBackend, FpgaBackend,
};
pub use engine::{
    ConvergenceCheck, EngineDesign, EngineStats, ExecutionEngine, MergePlan, ModelStore, ModelWrite,
};
pub use error::{EngineError, EngineResult};
pub use fault::{
    run_training_guarded, CancelToken, FaultEvents, FaultPlan, GuardedRun, RetryPolicy, RunGuard,
};
pub use isa::{AluOp, EngineProgram, Loc, MicroOp, Src, Step, AUS_PER_AC};
pub use lowered::{lower, LoweredOp, LoweredProgram, TrainingSession};
