//! Deploy-time program lowering and the SoA lockstep executor — the
//! engine's hot path.
//!
//! The paper's premise is that all resolution work happens at DEPLOY:
//! "the hDFG does not change, there is no hardware managed cache, and the
//! accelerator architecture is fixed during execution" (§6.1). The
//! [`crate::engine::ExecutionEngine`] interpreter honors that for cycle
//! *accounting* but still pays interpretation cost per op per tuple:
//! `MicroOp`/`Src` enum dispatch, `au * slots + slot` flattening, and a
//! dynamic read-before-write staging buffer for intra-step hazards.
//!
//! [`lower`] runs once, at deploy, and removes all of it:
//!
//! * every `Src`/`Loc` is resolved to a raw scratchpad word offset;
//! * constants are inlined (`Const ⊕ Const` folds to an immediate, `Mov`
//!   becomes a copy or an immediate store);
//! * gather/scatter row bases and model shapes are pre-bound into the op;
//! * intra-step read-after-write hazards are resolved *statically*:
//!   hazardous writes are redirected to staging slots appended past the
//!   architectural scratchpad, and drain copies are emitted after the
//!   step — the runtime loop has no `writes` buffer and no hazard branch.
//!
//! Execution is **group-at-a-time** over a slot-major structure-of-arrays
//! scratchpad: word `w` of thread `t` lives at `buf[w * threads + t]`, so
//! one lowered ALU op executes across all active lockstep threads in a
//! tight, auto-vectorizable inner loop — the software analogue of the
//! paper's lockstep thread model (§5.2). Programs whose per-tuple region
//! touches the shared model memory (LRMF's gather/scatter) run
//! thread-at-a-time instead, preserving the interpreter's thread ordering
//! of model-memory traffic exactly.
//!
//! The executor is held bit-identical to both retained interpreter tiers
//! (`run_training_interpreter`, `run_training_rows`) — models *and* cycle
//! stats — by the equivalence suite and the randomized differential tests
//! in `tests/lowered_differential.rs`.

use dana_dsl::MergeOp;
use dana_storage::TupleSource;

use crate::engine::{
    step_is_hazard_free, EngineDesign, EngineStats, MergePlan, ModelStore, ModelWrite, BUS_WORDS,
    MODEL_PORTS,
};
use crate::error::{EngineError, EngineResult};
use crate::isa::{AluOp, Loc, MicroOp, Src, Step};

/// Gather/scatter row index operand, pre-resolved at lower time.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LowIdx {
    /// Read the row index from a scratchpad word offset.
    Slot(u32),
    /// Immediate row index (constant-folded).
    Const(f32),
}

/// One fully resolved micro-op: raw word offsets, inlined immediates,
/// pre-bound model shapes. No `Loc` arithmetic, no operand dispatch.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LoweredOp {
    /// `buf[dst] ← op(buf[a], buf[b])`
    Bin { op: AluOp, a: u32, b: u32, dst: u32 },
    /// `buf[dst] ← op(imm, buf[b])`
    BinImmA {
        op: AluOp,
        imm: f32,
        b: u32,
        dst: u32,
    },
    /// `buf[dst] ← op(buf[a], imm)`
    BinImmB {
        op: AluOp,
        a: u32,
        imm: f32,
        dst: u32,
    },
    /// `buf[dst] ← v` (folded constants, constant `Mov`s)
    Imm { v: f32, dst: u32 },
    /// `buf[dst] ← buf[src]` (slot `Mov`s and staging drains)
    Copy { src: u32, dst: u32 },
    /// Model row gather with pre-bound shape and destination offsets.
    Gather {
        model: u8,
        rows: u32,
        cols: u32,
        index: LowIdx,
        dst: Vec<u32>,
    },
    /// Model row scatter with pre-bound shape and source offsets.
    Scatter {
        model: u8,
        rows: u32,
        cols: u32,
        index: LowIdx,
        src: Vec<u32>,
    },
}

/// Dense-model broadcast with destination offsets pre-resolved.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LoweredBroadcast {
    pub model: u8,
    pub dst: Vec<u32>,
}

/// Tree-bus merge over pre-resolved word offsets.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LoweredMerge {
    pub op: MergeOp,
    pub slots: Vec<u32>,
}

/// Model write-back with offsets and shapes pre-bound.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LoweredModelWrite {
    Whole {
        model: u8,
        src: Vec<u32>,
    },
    Row {
        model: u8,
        rows: u32,
        cols: u32,
        index: u32,
        src: Vec<u32>,
    },
}

/// The deploy-time lowering artifact: everything the runtime loop needs,
/// pre-resolved. Produced once by [`lower`] (at compile/deploy), carried
/// through the catalog inside the accelerator's artifact blob, and
/// executed by [`LoweredProgram::run_streaming`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LoweredProgram {
    /// Architectural words per thread (`aus × slots_per_au`).
    pub(crate) arch_words: u32,
    /// Architectural words plus the staging slots appended by hazard
    /// resolution — the lowered scratchpad size per thread.
    pub(crate) words_per_thread: u32,
    pub(crate) per_tuple: Vec<LoweredOp>,
    pub(crate) post_merge: Vec<LoweredOp>,
    /// True when the per-tuple region reads or writes the shared model
    /// memory (gather/scatter): threads then execute one at a time so
    /// model-memory traffic interleaves exactly as on the interpreter.
    /// Dense programs run op-lockstep across the whole group.
    pub(crate) sequential: bool,
    pub(crate) input_offsets: Vec<u32>,
    pub(crate) output_offsets: Vec<u32>,
    pub(crate) meta: Vec<(u32, f32)>,
    pub(crate) broadcasts: Vec<LoweredBroadcast>,
    pub(crate) merge: Option<LoweredMerge>,
    pub(crate) model_writes: Vec<LoweredModelWrite>,
    /// Word offset of the convergence-condition slot, if any.
    pub(crate) convergence_slot: Option<u32>,
    pub(crate) per_tuple_cycles: u64,
    pub(crate) post_merge_cycles: u64,
    pub(crate) gather_elems: u64,
}

/// Lowers a validated design's programs and data bindings into a
/// [`LoweredProgram`]. Pure and deterministic: lowering the same design
/// always produces the same artifact.
pub fn lower(d: &EngineDesign) -> LoweredProgram {
    let slots = d.slots_per_au as usize;
    let arch_words = d.aus_per_thread() as usize * slots;
    let flat = |l: &Loc| (l.au as usize * slots + l.slot as usize) as u32;
    let mut words_high = arch_words;

    let mut lower_steps = |steps: &[Step]| -> Vec<LoweredOp> {
        let mut out = Vec::new();
        for step in steps {
            let direct = step_is_hazard_free(step, slots);
            // Staging slots are assigned per step and reused across steps:
            // drains empty them before the next step issues.
            let mut next_stage = arch_words as u32;
            let mut drains: Vec<(u32, u32)> = Vec::new();
            let mut stage = |real: u32, drains: &mut Vec<(u32, u32)>| -> u32 {
                let s = next_stage;
                next_stage += 1;
                drains.push((s, real));
                s
            };
            for op in &step.ops {
                match op {
                    MicroOp::Alu { au, op, a, b, dst } => {
                        let real = (*au as usize * slots + *dst as usize) as u32;
                        let dst = if direct {
                            real
                        } else {
                            stage(real, &mut drains)
                        };
                        out.push(lower_alu(*op, a, b, dst, &flat));
                    }
                    MicroOp::Gather { model, index, dst } => {
                        let m = &d.models[*model as usize];
                        let dst: Vec<u32> = dst
                            .iter()
                            .map(|l| {
                                let real = flat(l);
                                if direct {
                                    real
                                } else {
                                    stage(real, &mut drains)
                                }
                            })
                            .collect();
                        out.push(LoweredOp::Gather {
                            model: *model,
                            rows: m.rows as u32,
                            cols: m.cols as u32,
                            index: lower_idx(index, &flat),
                            dst,
                        });
                    }
                    MicroOp::Scatter { model, index, src } => {
                        // Scatter reads scratchpad (pre-step values — the
                        // staged writes haven't drained) and writes model
                        // memory: never staged.
                        let m = &d.models[*model as usize];
                        out.push(LoweredOp::Scatter {
                            model: *model,
                            rows: m.rows as u32,
                            cols: m.cols as u32,
                            index: lower_idx(index, &flat),
                            src: src.iter().map(&flat).collect(),
                        });
                    }
                }
            }
            out.extend(
                drains
                    .into_iter()
                    .map(|(src, dst)| LoweredOp::Copy { src, dst }),
            );
            words_high = words_high.max(next_stage as usize);
        }
        out
    };

    let per_tuple = lower_steps(&d.program.per_tuple);
    let post_merge = lower_steps(&d.program.post_merge);
    let sequential = d
        .program
        .per_tuple
        .iter()
        .flat_map(|s| &s.ops)
        .any(|o| matches!(o, MicroOp::Gather { .. } | MicroOp::Scatter { .. }));

    let broadcasts = d
        .models
        .iter()
        .enumerate()
        .filter_map(|(mi, m)| {
            m.broadcast_slots.as_ref().map(|slots| LoweredBroadcast {
                model: mi as u8,
                dst: slots.iter().map(&flat).collect(),
            })
        })
        .collect();
    let merge = match &d.merge {
        MergePlan::None => None,
        MergePlan::Whole { op, slots } => Some(LoweredMerge {
            op: *op,
            slots: slots.iter().map(&flat).collect(),
        }),
    };
    let model_writes = d
        .model_writes
        .iter()
        .map(|w| match w {
            ModelWrite::Whole { model, src } => LoweredModelWrite::Whole {
                model: *model,
                src: src.iter().map(&flat).collect(),
            },
            ModelWrite::Row { model, index, src } => {
                let m = &d.models[*model as usize];
                LoweredModelWrite::Row {
                    model: *model,
                    rows: m.rows as u32,
                    cols: m.cols as u32,
                    index: flat(index),
                    src: src.iter().map(&flat).collect(),
                }
            }
        })
        .collect();
    let convergence_slot = match &d.convergence {
        crate::engine::ConvergenceCheck::Epochs(_) => None,
        crate::engine::ConvergenceCheck::Condition { slot, .. } => Some(flat(slot)),
    };
    let gather_elems = d
        .program
        .per_tuple
        .iter()
        .flat_map(|s| &s.ops)
        .map(|o| match o {
            MicroOp::Gather { dst, .. } => dst.len() as u64,
            _ => 0,
        })
        .sum();

    LoweredProgram {
        arch_words: arch_words as u32,
        words_per_thread: words_high as u32,
        per_tuple,
        post_merge,
        sequential,
        input_offsets: d.input_slots.iter().map(&flat).collect(),
        output_offsets: d.output_slots.iter().map(&flat).collect(),
        meta: d.meta.iter().map(|(l, v)| (flat(l), *v)).collect(),
        broadcasts,
        merge,
        model_writes,
        convergence_slot,
        per_tuple_cycles: d.program.per_tuple_cycles(),
        post_merge_cycles: d.program.post_merge_cycles(),
        gather_elems,
    }
}

fn lower_idx(index: &Src, flat: &impl Fn(&Loc) -> u32) -> LowIdx {
    match index {
        Src::Slot(l) => LowIdx::Slot(flat(l)),
        Src::Const(c) => LowIdx::Const(*c),
    }
}

fn lower_alu(op: AluOp, a: &Src, b: &Src, dst: u32, flat: &impl Fn(&Loc) -> u32) -> LoweredOp {
    match (op, a, b) {
        (AluOp::Mov, Src::Slot(l), _) => LoweredOp::Copy { src: flat(l), dst },
        (AluOp::Mov, Src::Const(c), _) => LoweredOp::Imm { v: *c, dst },
        (op, Src::Const(ca), Src::Const(cb)) => LoweredOp::Imm {
            v: op.apply(*ca, *cb),
            dst,
        },
        (op, Src::Slot(la), Src::Slot(lb)) => LoweredOp::Bin {
            op,
            a: flat(la),
            b: flat(lb),
            dst,
        },
        (op, Src::Const(ca), Src::Slot(lb)) => LoweredOp::BinImmA {
            op,
            imm: *ca,
            b: flat(lb),
            dst,
        },
        (op, Src::Slot(la), Src::Const(cb)) => LoweredOp::BinImmB {
            op,
            a: flat(la),
            imm: *cb,
            dst,
        },
    }
}

/// Per-run scratch state: the slot-major SoA buffer plus the group's
/// buffered tuples. Allocated once per training run; the engine itself
/// stays shared and immutable across concurrent queries.
pub(crate) struct SoaWorkspace {
    /// `words_per_thread × stride` f32 words, slot-major: word `w` of
    /// thread `t` at `buf[w * stride + t]`.
    buf: Vec<f32>,
    /// Tuples buffered for the current group, row-major `[thread][width]`.
    group: Vec<f32>,
    stride: usize,
    width: usize,
}

/// SoA elements one lowered op touches per lane (scalar ops move one
/// word; gather/scatter move a model row's worth).
fn op_elems(op: &LoweredOp) -> u64 {
    match op {
        LoweredOp::Gather { dst, .. } => dst.len() as u64,
        LoweredOp::Scatter { src, .. } => src.len() as u64,
        _ => 1,
    }
}

impl LoweredProgram {
    /// Lowered scratchpad words per thread (architectural + staging).
    pub fn words_per_thread(&self) -> usize {
        self.words_per_thread as usize
    }

    /// SoA inner-loop elements ("lane-ops") the CPU tier executes per
    /// tuple: every per-tuple op touches one element per lane, and every
    /// dense-model broadcast element is refilled per lane per group. The
    /// backend advisor divides this by the calibrated lane rate to
    /// estimate CPU seconds per tuple.
    pub fn per_tuple_lane_ops(&self) -> u64 {
        let ops: u64 = self.per_tuple.iter().map(op_elems).sum();
        let broadcast: u64 = self.broadcasts.iter().map(|b| b.dst.len() as u64).sum();
        ops + broadcast
    }

    /// Elements touched once per thread group (post-merge region, tree
    /// merge, model write-back) — amortized across the group's lanes by
    /// the advisor's cost model.
    pub fn per_group_ops(&self) -> u64 {
        let post: u64 = self.post_merge.iter().map(op_elems).sum();
        let merge = self.merge.as_ref().map_or(0, |m| m.slots.len() as u64);
        let writes: u64 = self
            .model_writes
            .iter()
            .map(|w| match w {
                LoweredModelWrite::Whole { src, .. } => src.len() as u64,
                LoweredModelWrite::Row { src, .. } => src.len() as u64,
            })
            .sum();
        post + merge + writes
    }

    /// True when the per-tuple region runs op-lockstep across the whole
    /// thread group (no model-memory traffic inside the region).
    pub fn is_lockstep(&self) -> bool {
        !self.sequential
    }

    /// Structural consistency check against a design — used when restoring
    /// a lowered artifact from the catalog so a mismatched, corrupt, or
    /// hand-edited blob falls back to re-lowering instead of executing
    /// out-of-bounds offsets or silently-wrong pre-bound model shapes.
    /// Covers *every* offset the executor dereferences (programs, loads,
    /// meta, broadcasts, merge, model writes, convergence) and every
    /// pre-bound model index/shape.
    pub fn is_consistent_with(&self, d: &EngineDesign) -> bool {
        let arch = d.aus_per_thread() as u32 * d.slots_per_au as u32;
        if self.arch_words != arch || self.words_per_thread < self.arch_words {
            return false;
        }
        let words = self.words_per_thread;
        let off_ok = |o: &u32| *o < words;
        let idx_ok = |i: &LowIdx| match i {
            LowIdx::Slot(o) => off_ok(o),
            LowIdx::Const(_) => true,
        };
        // A pre-bound (model, rows, cols) triple must name a real model and
        // match its true shape — a shape mismatch would compute wrong row
        // bases without ever going out of bounds.
        let shape_ok = |model: u8, rows: u32, cols: u32| {
            d.models
                .get(model as usize)
                .is_some_and(|m| m.rows as u32 == rows && m.cols as u32 == cols)
        };
        let op_ok = |op: &LoweredOp| match op {
            LoweredOp::Bin { a, b, dst, .. } => off_ok(a) && off_ok(b) && off_ok(dst),
            LoweredOp::BinImmA { b, dst, .. } => off_ok(b) && off_ok(dst),
            LoweredOp::BinImmB { a, dst, .. } => off_ok(a) && off_ok(dst),
            LoweredOp::Imm { dst, .. } => off_ok(dst),
            LoweredOp::Copy { src, dst } => off_ok(src) && off_ok(dst),
            LoweredOp::Gather {
                model,
                rows,
                cols,
                index,
                dst,
            } => {
                shape_ok(*model, *rows, *cols)
                    && idx_ok(index)
                    && dst.len() <= *cols as usize
                    && dst.iter().all(off_ok)
            }
            LoweredOp::Scatter {
                model,
                rows,
                cols,
                index,
                src,
            } => {
                shape_ok(*model, *rows, *cols)
                    && idx_ok(index)
                    && src.len() <= *cols as usize
                    && src.iter().all(off_ok)
            }
        };
        let broadcasts_ok = self.broadcasts.iter().all(|b| {
            d.models.get(b.model as usize).is_some_and(|m| {
                m.broadcast_slots.is_some()
                    && b.dst.len() == m.elements()
                    && b.dst.iter().all(off_ok)
            })
        });
        let merge_ok = self
            .merge
            .as_ref()
            .is_none_or(|m| m.slots.iter().all(off_ok));
        let writes_ok = self.model_writes.iter().all(|w| match w {
            LoweredModelWrite::Whole { model, src } => {
                d.models
                    .get(*model as usize)
                    .is_some_and(|m| src.len() == m.elements())
                    && src.iter().all(off_ok)
            }
            LoweredModelWrite::Row {
                model,
                rows,
                cols,
                index,
                src,
            } => {
                shape_ok(*model, *rows, *cols)
                    && off_ok(index)
                    && src.len() <= *cols as usize
                    && src.iter().all(off_ok)
            }
        });
        self.per_tuple.iter().all(op_ok)
            && self.post_merge.iter().all(op_ok)
            && self.input_offsets.iter().all(off_ok)
            && self.output_offsets.iter().all(off_ok)
            && self.meta.iter().all(|(o, _)| off_ok(o))
            && broadcasts_ok
            && merge_ok
            && writes_ok
            && self.convergence_slot.as_ref().is_none_or(off_ok)
    }

    fn workspace(&self, threads: usize, width: usize) -> SoaWorkspace {
        let stride = threads.max(1);
        let mut buf = vec![0.0f32; self.words_per_thread() * stride];
        // Meta constants: configuration data, loaded once, to every thread.
        for &(off, v) in &self.meta {
            let base = off as usize * stride;
            buf[base..base + stride].fill(v);
        }
        SoaWorkspace {
            buf,
            group: vec![0.0f32; stride * width],
            stride,
            width,
        }
    }

    /// Runs training to convergence from a streaming source — the lowered
    /// twin of the interpreter's `run_training`, bit-identical in models
    /// and stats. Internally this is just the epoch loop over a
    /// [`TrainingSession`], so the serial path and the gang-scheduled
    /// shard path (which merges models at every epoch boundary) execute
    /// the exact same per-epoch code.
    pub(crate) fn run_streaming(
        &self,
        d: &EngineDesign,
        source: &mut dyn TupleSource,
        store: &mut ModelStore,
    ) -> EngineResult<EngineStats> {
        Ok(self.run_streaming_logged(d, source, store)?.0)
    }

    /// [`LoweredProgram::run_streaming`], also yielding the per-epoch
    /// cycle log.
    pub(crate) fn run_streaming_logged(
        &self,
        d: &EngineDesign,
        source: &mut dyn TupleSource,
        store: &mut ModelStore,
    ) -> EngineResult<(EngineStats, Vec<u64>)> {
        let mut session = TrainingSession::new(self, d.num_threads as usize);
        let max_epochs = d.convergence.max_epochs();
        let mut epochs_run = 0u32;
        let mut converged_early = false;
        for epoch in 0..max_epochs {
            if epoch > 0 {
                source.rewind().map_err(EngineError::from)?;
            }
            let converged = session.run_epoch(source, store)?;
            epochs_run += 1;
            if converged {
                converged_early = true;
                break;
            }
        }
        Ok(session.finish_logged(epochs_run, converged_early))
    }

    /// One streaming epoch: buffer tuples into the group, flush full
    /// groups, flush the final partial group at end of scan. Returns
    /// whether the convergence condition fired.
    fn run_epoch(
        &self,
        source: &mut dyn TupleSource,
        store: &mut ModelStore,
        ws: &mut SoaWorkspace,
        stats: &mut EngineStats,
    ) -> EngineResult<bool> {
        let threads = ws.stride;
        let width = ws.width;
        let mut active = 0usize;
        while let Some(batch) = source.next_batch().map_err(EngineError::from)? {
            if batch.width() != width {
                return Err(EngineError::TupleWidth {
                    got: batch.width(),
                    expected: width,
                });
            }
            for tuple in batch.rows() {
                ws.group[active * width..(active + 1) * width].copy_from_slice(tuple);
                active += 1;
                if active == threads {
                    self.flush_group(active, ws, store, stats)?;
                    active = 0;
                }
            }
        }
        if active > 0 {
            self.flush_group(active, ws, store, stats)?;
        }
        stats.cycles = stats.compute_cycles + stats.merge_cycles + stats.broadcast_cycles;
        if let Some(off) = self.convergence_slot {
            return Ok(ws.buf[off as usize * ws.stride] != 0.0);
        }
        Ok(false)
    }

    /// One thread group: broadcast → load → per-tuple program (lockstep or
    /// sequential) → merge → post-merge on thread 0 → model write-back.
    /// The broadcast→load→execute ordering matches the interpreter's
    /// per-group sequence exactly.
    fn flush_group(
        &self,
        active: usize,
        ws: &mut SoaWorkspace,
        store: &mut ModelStore,
        stats: &mut EngineStats,
    ) -> EngineResult<()> {
        let stride = ws.stride;
        // Dense models stream once over the shared bus; all threads listen.
        for b in &self.broadcasts {
            let values = store.model(b.model as usize);
            for (&off, &v) in b.dst.iter().zip(values) {
                let base = off as usize * stride;
                ws.buf[base..base + stride].fill(v);
            }
            stats.broadcast_cycles += (values.len() as u64).div_ceil(BUS_WORDS);
        }
        // Load the buffered tuples into the SoA columns.
        for t in 0..active {
            let row = &ws.group[t * ws.width..(t + 1) * ws.width];
            for (k, &off) in self.input_offsets.iter().enumerate() {
                ws.buf[off as usize * stride + t] = row[k];
            }
            let base = self.input_offsets.len();
            for (k, &off) in self.output_offsets.iter().enumerate() {
                ws.buf[off as usize * stride + t] = row[base + k];
            }
        }
        // Per-tuple region.
        if self.sequential {
            for t in 0..active {
                exec_thread(&self.per_tuple, t, &mut ws.buf, stride, store)?;
            }
        } else {
            exec_lockstep(&self.per_tuple, active, &mut ws.buf, stride);
        }
        stats.compute_cycles += self.per_tuple_cycles;
        if self.gather_elems > 0 {
            stats.merge_cycles += (active as u64 * self.gather_elems).div_ceil(MODEL_PORTS);
        }
        stats.merge_cycles += self.merge(active, ws);
        // Post-merge region on thread 0.
        exec_thread(&self.post_merge, 0, &mut ws.buf, stride, store)?;
        stats.compute_cycles += self.post_merge_cycles;
        stats.merge_cycles += self.write_models(active, ws, store)?;
        stats.batches += 1;
        stats.tuples_processed += active as u64;
        Ok(())
    }

    /// Tree-bus merge into thread 0 — the rows are contiguous in the SoA
    /// layout, so each fold runs over adjacent words.
    fn merge(&self, active: usize, ws: &mut SoaWorkspace) -> u64 {
        let Some(m) = &self.merge else {
            return 0;
        };
        if active <= 1 {
            return 0;
        }
        for &off in &m.slots {
            let base = off as usize * ws.stride;
            let row = &mut ws.buf[base..base + active];
            let mut acc = row[0];
            for &v in row.iter().take(active).skip(1) {
                acc = match m.op {
                    MergeOp::Sum | MergeOp::Avg => acc + v,
                    MergeOp::Max => acc.max(v),
                };
            }
            if m.op == MergeOp::Avg {
                acc /= active as f32;
            }
            row[0] = acc;
        }
        m.slots.len() as u64 + (64 - (active as u64 - 1).leading_zeros() as u64)
    }

    /// Model write-back. Row writes validate every thread's row index
    /// *before* charging port-contention cycles or touching model memory —
    /// an out-of-range row must not inflate `merge_cycles` on the error
    /// path (nor partially apply the scatter).
    fn write_models(
        &self,
        active: usize,
        ws: &SoaWorkspace,
        store: &mut ModelStore,
    ) -> EngineResult<u64> {
        let stride = ws.stride;
        let buf = &ws.buf;
        let mut cycles = 0u64;
        for w in &self.model_writes {
            match w {
                LoweredModelWrite::Whole { model, src } => {
                    let m = store.model_mut(*model as usize);
                    debug_assert_eq!(m.len(), src.len());
                    for (k, &off) in src.iter().enumerate() {
                        m[k] = buf[off as usize * stride];
                    }
                    cycles += (src.len() as u64).div_ceil(BUS_WORDS);
                }
                LoweredModelWrite::Row {
                    model,
                    rows,
                    cols,
                    index,
                    src,
                } => {
                    let idx_base = *index as usize * stride;
                    for t in 0..active {
                        let row = buf[idx_base + t].round() as i64;
                        if row < 0 || row as u32 >= *rows {
                            return Err(EngineError::RowOutOfRange {
                                model: *model,
                                row,
                                rows: *rows as usize,
                            });
                        }
                    }
                    // Every active thread scatters its row through the
                    // shared model-memory ports (§7.2's LRMF overhead).
                    cycles += (active as u64 * src.len() as u64).div_ceil(MODEL_PORTS);
                    let m = store.model_mut(*model as usize);
                    for t in 0..active {
                        let base = buf[idx_base + t].round() as usize * *cols as usize;
                        for (k, &off) in src.iter().enumerate() {
                            m[base + k] = buf[off as usize * stride + t];
                        }
                    }
                }
            }
        }
        Ok(cycles)
    }
}

/// One training run's mutable engine state, held **epoch-at-a-time**: the
/// SoA workspace and the accumulated cycle counters, with the model store
/// supplied per epoch by the caller.
///
/// This is the seam intra-query data parallelism hangs off: the serial
/// path (`run_streaming`) loops epochs over one session, while the gang
/// executor in `dana-parallel` runs one session **per shard**, joins them
/// at every epoch boundary, and feeds each the *merged* model for the
/// next epoch. Because both paths share this per-epoch code verbatim, a
/// one-shard gang is bit-identical — models and stats — to the serial
/// run.
pub struct TrainingSession<'e> {
    lowered: &'e LoweredProgram,
    ws: SoaWorkspace,
    stats: EngineStats,
    width: usize,
    /// Engine cycles charged by each completed epoch, in order — the
    /// observability layer's per-epoch span source. Cycle deltas, so the
    /// log always sums to `stats.cycles`.
    epoch_cycles: Vec<u64>,
}

impl<'e> TrainingSession<'e> {
    pub(crate) fn new(lowered: &'e LoweredProgram, threads: usize) -> TrainingSession<'e> {
        let width = lowered.input_offsets.len() + lowered.output_offsets.len();
        TrainingSession {
            ws: lowered.workspace(threads, width),
            lowered,
            stats: EngineStats::default(),
            width,
            epoch_cycles: Vec::new(),
        }
    }

    /// Runs one full epoch over `source` (the caller rewinds between
    /// epochs, exactly like the serial loop), training into `store`.
    /// Returns whether the design's convergence condition fired.
    pub fn run_epoch(
        &mut self,
        source: &mut dyn TupleSource,
        store: &mut ModelStore,
    ) -> EngineResult<bool> {
        if source.width() != self.width {
            return Err(EngineError::TupleWidth {
                got: source.width(),
                expected: self.width,
            });
        }
        let before = self.stats.cycles;
        let converged = self
            .lowered
            .run_epoch(source, store, &mut self.ws, &mut self.stats)?;
        self.epoch_cycles.push(self.stats.cycles - before);
        Ok(converged)
    }

    /// Cycle counters accumulated so far (epoch bookkeeping is the epoch
    /// loop's job, so `epochs_run`/`converged_early` are still zero here).
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The per-epoch cycle deltas recorded so far (one entry per
    /// completed [`TrainingSession::run_epoch`] call).
    pub fn epoch_cycle_log(&self) -> &[u64] {
        &self.epoch_cycles
    }

    /// Seals the run: stamps the epoch-loop outcome onto the accumulated
    /// counters.
    pub fn finish(self, epochs_run: u32, converged_early: bool) -> EngineStats {
        self.finish_logged(epochs_run, converged_early).0
    }

    /// [`TrainingSession::finish`], also yielding the per-epoch cycle log
    /// for the lifecycle trace's epoch spans.
    pub fn finish_logged(self, epochs_run: u32, converged_early: bool) -> (EngineStats, Vec<u64>) {
        let mut stats = self.stats;
        stats.epochs_run = epochs_run;
        stats.converged_early = converged_early;
        (stats, self.epoch_cycles)
    }
}

/// Op-lockstep execution: each op dispatches once and then runs a tight
/// inner loop across all `n` active threads' contiguous SoA rows. Only
/// reachable for programs with no model-memory ops in the region.
fn exec_lockstep(ops: &[LoweredOp], n: usize, buf: &mut [f32], stride: usize) {
    for op in ops {
        match *op {
            LoweredOp::Bin { op, a, b, dst } => {
                let (a, b, d) = (
                    a as usize * stride,
                    b as usize * stride,
                    dst as usize * stride,
                );
                lockstep_lanes(buf, op, d, n, move |m, t| (m[a + t], m[b + t]));
            }
            LoweredOp::BinImmA { op, imm, b, dst } => {
                let (b, d) = (b as usize * stride, dst as usize * stride);
                lockstep_lanes(buf, op, d, n, move |m, t| (imm, m[b + t]));
            }
            LoweredOp::BinImmB { op, a, imm, dst } => {
                let (a, d) = (a as usize * stride, dst as usize * stride);
                lockstep_lanes(buf, op, d, n, move |m, t| (m[a + t], imm));
            }
            LoweredOp::Imm { v, dst } => {
                let d = dst as usize * stride;
                buf[d..d + n].fill(v);
            }
            LoweredOp::Copy { src, dst } => {
                let (s, d) = (src as usize * stride, dst as usize * stride);
                buf.copy_within(s..s + n, d);
            }
            LoweredOp::Gather { .. } | LoweredOp::Scatter { .. } => {
                unreachable!("model-memory ops run on the sequential path")
            }
        }
    }
}

/// One binary op across `n` lockstep threads. `fetch` supplies the two
/// operands for lane `t` (slot/slot, imm/slot, or slot/imm — monomorphized
/// per call site). The arithmetic per arm is exactly `AluOp::apply`'s —
/// bit-identical f32 results — but the op match is hoisted out of the
/// thread loop, leaving a tight inner loop over contiguous SoA rows for
/// the vectorizer.
#[inline]
fn lockstep_lanes(
    buf: &mut [f32],
    op: AluOp,
    d: usize,
    n: usize,
    fetch: impl Fn(&[f32], usize) -> (f32, f32),
) {
    macro_rules! lanes {
        ($f:expr) => {{
            for t in 0..n {
                let (x, y) = fetch(&*buf, t);
                buf[d + t] = $f(x, y);
            }
        }};
    }
    match op {
        AluOp::Add => lanes!(|x: f32, y: f32| x + y),
        AluOp::Sub => lanes!(|x: f32, y: f32| x - y),
        AluOp::Mul => lanes!(|x: f32, y: f32| x * y),
        AluOp::Div => lanes!(|x: f32, y: f32| x / y),
        AluOp::Gt => lanes!(|x: f32, y: f32| if x > y { 1.0 } else { 0.0 }),
        AluOp::Lt => lanes!(|x: f32, y: f32| if x < y { 1.0 } else { 0.0 }),
        AluOp::Max => lanes!(|x: f32, y: f32| x.max(y)),
        _ => lanes!(|x: f32, y: f32| op.apply(x, y)),
    }
}

/// Scalar execution of a lowered op sequence on one thread's SoA column —
/// used for the post-merge region (thread 0) and for sequential-mode
/// per-tuple programs. Model slices are hoisted out of the per-element
/// gather/scatter loops.
fn exec_thread(
    ops: &[LoweredOp],
    t: usize,
    buf: &mut [f32],
    stride: usize,
    store: &mut ModelStore,
) -> EngineResult<()> {
    for op in ops {
        match op {
            LoweredOp::Bin { op, a, b, dst } => {
                let x = buf[*a as usize * stride + t];
                let y = buf[*b as usize * stride + t];
                buf[*dst as usize * stride + t] = op.apply(x, y);
            }
            LoweredOp::BinImmA { op, imm, b, dst } => {
                let y = buf[*b as usize * stride + t];
                buf[*dst as usize * stride + t] = op.apply(*imm, y);
            }
            LoweredOp::BinImmB { op, a, imm, dst } => {
                let x = buf[*a as usize * stride + t];
                buf[*dst as usize * stride + t] = op.apply(x, *imm);
            }
            LoweredOp::Imm { v, dst } => buf[*dst as usize * stride + t] = *v,
            LoweredOp::Copy { src, dst } => {
                buf[*dst as usize * stride + t] = buf[*src as usize * stride + t]
            }
            LoweredOp::Gather {
                model,
                rows,
                cols,
                index,
                dst,
            } => {
                let row = row_index(buf, stride, t, index, *model, *rows)?;
                let base = row * *cols as usize;
                let values = store.model(*model as usize);
                for (k, &off) in dst.iter().enumerate() {
                    buf[off as usize * stride + t] = values[base + k];
                }
            }
            LoweredOp::Scatter {
                model,
                rows,
                cols,
                index,
                src,
            } => {
                let row = row_index(buf, stride, t, index, *model, *rows)?;
                let base = row * *cols as usize;
                let m = store.model_mut(*model as usize);
                for (k, &off) in src.iter().enumerate() {
                    m[base + k] = buf[off as usize * stride + t];
                }
            }
        }
    }
    Ok(())
}

fn row_index(
    buf: &[f32],
    stride: usize,
    t: usize,
    index: &LowIdx,
    model: u8,
    rows: u32,
) -> EngineResult<usize> {
    let raw = match index {
        LowIdx::Slot(off) => buf[*off as usize * stride + t],
        LowIdx::Const(c) => *c,
    };
    let row = raw.round() as i64;
    if row < 0 || row as u32 >= rows {
        return Err(EngineError::RowOutOfRange {
            model,
            row,
            rows: rows as usize,
        });
    }
    Ok(row as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ConvergenceCheck, ModelDesc};
    use crate::isa::EngineProgram;
    use dana_storage::TupleBatch;

    fn alu(au: u16, op: AluOp, a: Src, b: Src, dst: u16) -> MicroOp {
        MicroOp::Alu { au, op, a, b, dst }
    }

    fn s(au: u16, slot: u16) -> Src {
        Src::Slot(Loc::new(au, slot))
    }

    /// A design whose second step has an intra-step RAW hazard: AU 0
    /// rewrites slot 1 while AU 1 reads the old slot 1 in the same step.
    fn hazardous_design(num_threads: u16) -> EngineDesign {
        EngineDesign {
            num_threads,
            acs_per_thread: 1,
            slots_per_au: 8,
            bus_lanes: 1,
            program: EngineProgram {
                per_tuple: vec![
                    Step {
                        ops: vec![alu(0, AluOp::Mul, s(0, 0), Src::Const(2.0), 1)],
                    },
                    Step {
                        // RAW hazard: AU0 writes slot 1 (reading it), AU1
                        // reads AU0's old slot 1 via Mov.
                        ops: vec![
                            alu(0, AluOp::Add, s(0, 1), Src::Const(1.0), 1),
                            alu(1, AluOp::Mov, s(0, 1), Src::Const(0.0), 2),
                        ],
                    },
                    Step {
                        ops: vec![alu(0, AluOp::Add, s(0, 1), s(1, 2), 3)],
                    },
                ],
                post_merge: vec![],
            },
            input_slots: vec![Loc::new(0, 0)],
            output_slots: vec![],
            meta: vec![],
            models: vec![ModelDesc {
                name: "w".into(),
                rows: 1,
                cols: 1,
                broadcast_slots: Some(vec![Loc::new(1, 7)]),
            }],
            merge: MergePlan::Whole {
                op: MergeOp::Sum,
                slots: vec![Loc::new(0, 3)],
            },
            model_writes: vec![ModelWrite::Whole {
                model: 0,
                src: vec![Loc::new(0, 3)],
            }],
            convergence: ConvergenceCheck::Epochs(2),
        }
    }

    #[test]
    fn hazardous_steps_get_staging_slots_and_no_runtime_branch() {
        let d = hazardous_design(4);
        let lp = lower(&d);
        // Step 2 has two staged writes → two staging slots past the
        // architectural words, drained by trailing copies.
        assert!(lp.words_per_thread > lp.arch_words);
        assert!(
            lp.per_tuple
                .iter()
                .any(|op| matches!(op, LoweredOp::Copy { src, .. } if *src >= lp.arch_words)),
            "staging drains expected: {:?}",
            lp.per_tuple
        );
        // And the staged execution matches the interpreter bit-for-bit.
        let engine = crate::ExecutionEngine::new(d.clone()).unwrap();
        let tuples: Vec<Vec<f32>> = (0..13).map(|k| vec![k as f32 * 0.5 - 2.0]).collect();
        let batch = TupleBatch::from_rows(1, &tuples);
        let mut lowered_store = ModelStore::zeroed(&d);
        let lowered_stats = engine
            .run_training_batch(&batch, &mut lowered_store)
            .unwrap();
        let mut interp_store = ModelStore::zeroed(&d);
        let interp_stats = engine
            .run_training_interpreter_batch(&batch, &mut interp_store)
            .unwrap();
        assert_eq!(lowered_store, interp_store);
        assert_eq!(lowered_stats, interp_stats);
    }

    #[test]
    fn constants_fold_and_movs_lower_to_copies() {
        let mut d = hazardous_design(1);
        d.program.per_tuple = vec![Step {
            ops: vec![
                alu(0, AluOp::Add, Src::Const(2.0), Src::Const(3.0), 1),
                alu(1, AluOp::Mov, s(0, 0), Src::Const(0.0), 0),
            ],
        }];
        let lp = lower(&d);
        assert!(
            matches!(lp.per_tuple[0], LoweredOp::Imm { v, .. } if v == 5.0),
            "const-const must fold: {:?}",
            lp.per_tuple[0]
        );
        assert!(matches!(lp.per_tuple[1], LoweredOp::Copy { .. }));
    }

    #[test]
    fn dense_programs_run_lockstep_and_model_ops_force_sequential() {
        let d = hazardous_design(4);
        assert!(lower(&d).is_lockstep());
        let mut d2 = d.clone();
        d2.program.per_tuple.push(Step {
            ops: vec![MicroOp::Gather {
                model: 0,
                index: Src::Const(0.0),
                dst: vec![Loc::new(0, 5)],
            }],
        });
        assert!(!lower(&d2).is_lockstep());
    }

    #[test]
    fn artifact_round_trip_is_consistent_and_reused() {
        let d = hazardous_design(4);
        let lp = lower(&d);
        assert!(lp.is_consistent_with(&d));
        let engine = crate::ExecutionEngine::from_artifact(d.clone(), lp.clone()).unwrap();
        assert_eq!(engine.lowered(), &lp);
        // A mismatched artifact (different geometry) is rejected and
        // re-lowered rather than trusted.
        let mut other = d.clone();
        other.slots_per_au = 16;
        let engine = crate::ExecutionEngine::from_artifact(other.clone(), lp.clone()).unwrap();
        assert!(engine.lowered().is_consistent_with(&other));
        assert_ne!(engine.lowered(), &lp);

        // Corruption anywhere the executor dereferences — an out-of-range
        // model-write offset, a wrong pre-bound model shape, a bad merge
        // slot — must fail the check (and thus trigger re-lowering), never
        // reach execution.
        let mut bad = lp.clone();
        bad.model_writes = vec![LoweredModelWrite::Whole {
            model: 0,
            src: vec![99_999],
        }];
        assert!(!bad.is_consistent_with(&d));
        let mut bad = lp.clone();
        bad.per_tuple.push(LoweredOp::Gather {
            model: 0,
            rows: 7, // true shape is 1×1
            cols: 1,
            index: LowIdx::Const(0.0),
            dst: vec![0],
        });
        assert!(!bad.is_consistent_with(&d));
        let mut bad = lp.clone();
        if let Some(m) = &mut bad.merge {
            m.slots[0] = 99_999;
        }
        assert!(!bad.is_consistent_with(&d));
        let mut bad = lp.clone();
        bad.broadcasts[0].dst = vec![99_999];
        assert!(!bad.is_consistent_with(&d));
        let rebuilt = crate::ExecutionEngine::from_artifact(d.clone(), bad).unwrap();
        assert_eq!(
            rebuilt.lowered(),
            &lp,
            "corrupt artifact must be re-lowered"
        );
    }

    #[test]
    fn lowered_program_serde_round_trips() {
        let d = hazardous_design(4);
        let lp = lower(&d);
        let json = serde_json::to_string(&lp).unwrap();
        let back: LoweredProgram = serde_json::from_str(&json).unwrap();
        assert_eq!(lp, back);
    }

    #[test]
    fn row_write_back_error_does_not_charge_cycles() {
        // A Row model write whose index is out of range must fail without
        // inflating merge_cycles or partially applying the scatter.
        let d = EngineDesign {
            num_threads: 2,
            acs_per_thread: 1,
            slots_per_au: 8,
            bus_lanes: 1,
            program: EngineProgram {
                per_tuple: vec![Step {
                    ops: vec![alu(0, AluOp::Mov, s(0, 0), Src::Const(0.0), 1)],
                }],
                post_merge: vec![],
            },
            input_slots: vec![Loc::new(0, 0)],
            output_slots: vec![],
            meta: vec![],
            models: vec![ModelDesc {
                name: "L".into(),
                rows: 2,
                cols: 1,
                broadcast_slots: None,
            }],
            merge: MergePlan::None,
            model_writes: vec![ModelWrite::Row {
                model: 0,
                index: Loc::new(0, 0),
                src: vec![Loc::new(0, 1)],
            }],
            convergence: ConvergenceCheck::Epochs(1),
        };
        let engine = crate::ExecutionEngine::new(d.clone()).unwrap();
        // Thread 0 in range (would write), thread 1 out of range: the whole
        // write-back must refuse before touching the store.
        let batch = TupleBatch::from_rows(1, &[vec![0.0], vec![9.0]]);
        for run in [
            crate::ExecutionEngine::run_training_batch,
            crate::ExecutionEngine::run_training_interpreter_batch,
        ] {
            let mut store = ModelStore::new(&d, vec![vec![-1.0, -2.0]]).unwrap();
            let err = run(&engine, &batch, &mut store).unwrap_err();
            assert!(matches!(err, EngineError::RowOutOfRange { .. }));
            assert_eq!(
                store.model(0),
                &[-1.0, -2.0],
                "no partial scatter on the error path"
            );
        }
    }
}
