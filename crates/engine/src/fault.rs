//! Fault injection, cooperative cancellation, and guarded training runs.
//!
//! The serving stack assumes accelerators that can hiccup mid-query: an
//! instance drops a lease, a gang member faults at an epoch boundary, a
//! query overruns its deadline. This module provides the three primitives
//! the rest of the stack builds fault tolerance from:
//!
//! * [`CancelToken`] — cooperative cancellation. Queries carry a token and
//!   the epoch loop checks it at every epoch boundary; an expired deadline
//!   surfaces as the typed [`EngineError::DeadlineExceeded`], so the
//!   caller unwinds cleanly (leases released, buffer-pool frames dropped)
//!   instead of being killed mid-scatter.
//! * [`FaultPlan`] — a deterministic injection plan for tests and smoke
//!   runs. Faults fire at exact epoch boundaries with a bounded budget, so
//!   a seeded test replays bit-identically: no timers, no randomness.
//! * [`run_training_guarded`] — the serial epoch loop (identical to
//!   [`crate::backend::CpuBackend`]/[`crate::backend::FpgaBackend`]'s,
//!   hence bit-identical models) with cancellation checks, fault
//!   injection, and bounded-exponential-backoff retry that warm-starts
//!   from the last completed epoch's model snapshot — Bismarck's
//!   observation that epoch-structured UDA training is naturally
//!   restartable from a model snapshot, applied to fault recovery.
//!
//! Injection happens *at* epoch boundaries — before any of the epoch's
//! tuples are processed — so a retried epoch re-runs from exactly the
//! state the no-fault run would have seen. That is what makes the
//! recovered run's models **and** cycle counters bit-identical to an
//! undisturbed one.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dana_storage::TupleSource;

use crate::engine::{EngineStats, ExecutionEngine, ModelStore};
use crate::error::{EngineError, EngineResult};

/// Cooperative cancellation handle: a deadline, an explicit cancel flag,
/// or both. Clones share the flag, so a server can cancel a running query
/// from another thread; the running query observes it at its next
/// epoch-boundary [`CancelToken::check`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    deadline: Option<Instant>,
    flag: Option<Arc<AtomicBool>>,
}

impl CancelToken {
    /// A token that never cancels.
    pub fn none() -> CancelToken {
        CancelToken::default()
    }

    /// Cancels when `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            deadline: Some(deadline),
            flag: None,
        }
    }

    /// Cancels `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// A manually cancellable token (no deadline). Clone it into the
    /// query; call [`CancelToken::cancel`] on either clone.
    pub fn manual() -> CancelToken {
        CancelToken {
            deadline: None,
            flag: Some(Arc::new(AtomicBool::new(false))),
        }
    }

    /// Trips the cancel flag (no-op for deadline-only tokens).
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// The deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether the token has tripped (flag set or deadline passed).
    pub fn is_cancelled(&self) -> bool {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::SeqCst) {
                return true;
            }
        }
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }

    /// The cooperative check: called at epoch boundaries.
    pub fn check(&self) -> EngineResult<()> {
        if self.is_cancelled() {
            Err(EngineError::DeadlineExceeded)
        } else {
            Ok(())
        }
    }
}

/// A deterministic fault-injection plan, installed per-test (or per smoke
/// run) and consulted by the guarded epoch loops and the accelerator
/// pool. Every fault site is an exact (shard, epoch) coordinate with a
/// bounded budget, so injected runs replay deterministically.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Epoch boundary at which to inject a transient fault.
    fail_epoch: Option<u32>,
    /// Restrict the injection to one gang shard (`None` hits serial runs
    /// and every shard alike).
    fail_shard: Option<usize>,
    /// Epoch boundary at which to panic (worker isolation tests).
    panic_epoch: Option<u32>,
    /// Stall every lease grant by this long (deadline tests).
    stall: Option<Duration>,
    /// Remaining injections; each firing consumes one.
    budget: AtomicU32,
    /// Total faults actually fired.
    injected: AtomicU64,
}

impl FaultPlan {
    /// Injects `budget` transient faults at the boundary of `epoch` in
    /// serial (non-gang) training runs.
    pub fn transient_at_epoch(epoch: u32, budget: u32) -> FaultPlan {
        FaultPlan {
            fail_epoch: Some(epoch),
            budget: AtomicU32::new(budget),
            ..FaultPlan::default()
        }
    }

    /// Faults gang member `shard` once, at the boundary of `epoch`.
    pub fn shard_fault(shard: usize, epoch: u32) -> FaultPlan {
        FaultPlan {
            fail_epoch: Some(epoch),
            fail_shard: Some(shard),
            budget: AtomicU32::new(1),
            ..FaultPlan::default()
        }
    }

    /// Panics the executing worker at the boundary of `epoch`.
    pub fn panic_at_epoch(epoch: u32) -> FaultPlan {
        FaultPlan {
            panic_epoch: Some(epoch),
            budget: AtomicU32::new(1),
            ..FaultPlan::default()
        }
    }

    /// Stalls every lease grant by `stall`.
    pub fn lease_stall(stall: Duration) -> FaultPlan {
        FaultPlan {
            stall: Some(stall),
            budget: AtomicU32::new(u32::MAX),
            ..FaultPlan::default()
        }
    }

    /// How long a lease grant should stall, if this plan stalls leases.
    pub fn lease_stall_for(&self) -> Option<Duration> {
        self.stall
    }

    /// Consumes one injection if the plan targets this (shard, epoch)
    /// coordinate. Serial runs pass `shard = None`; a shard-targeted plan
    /// never fires for them.
    pub fn should_fail(&self, shard: Option<usize>, epoch: u32) -> bool {
        if self.fail_epoch != Some(epoch) {
            return false;
        }
        if self.fail_shard.is_some() && self.fail_shard != shard {
            return false;
        }
        self.take_budget()
    }

    /// Consumes one injection if the plan panics at this epoch boundary.
    pub fn should_panic(&self, epoch: u32) -> bool {
        self.panic_epoch == Some(epoch) && self.take_budget()
    }

    /// Total faults this plan has actually fired.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    fn take_budget(&self) -> bool {
        let took = self
            .budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
            .is_ok();
        if took {
            self.injected.fetch_add(1, Ordering::SeqCst);
        }
        took
    }
}

/// Bounded exponential backoff for transient-fault retries. Deterministic
/// (no jitter) so injected tests replay exactly; the base is tiny because
/// the simulated faults it answers are instantaneous.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed per epoch boundary before the fault is terminal.
    pub max_retries: u32,
    /// First backoff pause; doubles per consecutive retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// No retries: every transient fault is terminal.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The pause before retry number `attempt` (0-based): `base << attempt`,
    /// capped at `max_backoff`.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let scaled = self
            .base_backoff
            .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .unwrap_or(self.max_backoff);
        scaled.min(self.max_backoff)
    }
}

/// What happened, fault-wise, during one guarded run. All-zero for an
/// undisturbed query — observability layers add fault spans and counters
/// only when something actually fired, so no-fault trace structure is
/// unchanged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultEvents {
    /// Transient faults observed (injected or reported).
    pub transient_faults: u32,
    /// Retries performed (each warm-started from the last snapshot).
    pub retries: u32,
    /// Total backoff pause across retries.
    pub backoff_seconds: f64,
    /// Gang shards that faulted and were re-executed on a survivor.
    pub faulted_shards: Vec<usize>,
}

impl FaultEvents {
    /// True when nothing fired — the run was undisturbed.
    pub fn is_quiet(&self) -> bool {
        *self == FaultEvents::default()
    }

    /// Folds another run's events into this one.
    pub fn absorb(&mut self, other: &FaultEvents) {
        self.transient_faults += other.transient_faults;
        self.retries += other.retries;
        self.backoff_seconds += other.backoff_seconds;
        self.faulted_shards
            .extend(other.faulted_shards.iter().copied());
    }
}

/// Guard context for one training run: cancellation, optional fault
/// injection, and the retry policy answering transient faults.
#[derive(Debug, Clone, Copy)]
pub struct RunGuard<'a> {
    pub cancel: &'a CancelToken,
    pub fault: Option<&'a FaultPlan>,
    pub retry: RetryPolicy,
}

impl<'a> RunGuard<'a> {
    /// A guard with cancellation only (no injection, default retries).
    pub fn new(cancel: &'a CancelToken) -> RunGuard<'a> {
        RunGuard {
            cancel,
            fault: None,
            retry: RetryPolicy::default(),
        }
    }

    pub fn with_fault(mut self, fault: Option<&'a FaultPlan>) -> RunGuard<'a> {
        self.fault = fault;
        self
    }

    pub fn with_retry(mut self, retry: RetryPolicy) -> RunGuard<'a> {
        self.retry = retry;
        self
    }
}

/// Result of a guarded training run: the sealed counters, the per-epoch
/// cycle log (for lifecycle traces), and the fault events that occurred.
#[derive(Debug, Clone)]
pub struct GuardedRun {
    pub stats: EngineStats,
    pub epoch_cycles: Vec<u64>,
    pub events: FaultEvents,
}

/// The guarded serial epoch loop. Identical per-epoch code to the plain
/// backends — an undisturbed guarded run is bit-identical in models and
/// stats — plus, at every epoch boundary:
///
/// 1. a cooperative [`CancelToken::check`] (typed
///    [`EngineError::DeadlineExceeded`] on expiry);
/// 2. fault injection per the guard's [`FaultPlan`], if any;
/// 3. on a transient fault: bounded exponential backoff, then retry the
///    epoch warm-started from the last completed epoch's model snapshot.
///    Because injection precedes the epoch's work, the snapshot equals
///    the store's live state and the recovered run stays bit-identical.
///
/// Retries exhausted ⇒ the transient fault surfaces typed; the caller
/// (server worker) releases the lease and reports the instance.
pub fn run_training_guarded(
    engine: &ExecutionEngine,
    source: &mut dyn TupleSource,
    store: &mut ModelStore,
    guard: &RunGuard<'_>,
) -> EngineResult<GuardedRun> {
    let mut session = engine.training_session();
    let max_epochs = engine.design().convergence.max_epochs();
    let mut epochs_run = 0u32;
    let mut converged_early = false;
    let mut events = FaultEvents::default();
    // Last epoch-boundary snapshot (initial models before epoch 0).
    let mut snapshot = store.snapshot();
    let mut epoch = 0u32;
    // Consecutive failed attempts at the current epoch boundary.
    let mut attempt = 0u32;
    while epoch < max_epochs {
        guard.cancel.check()?;
        if let Some(plan) = guard.fault {
            if plan.should_panic(epoch) {
                panic!("injected accelerator panic at epoch {epoch}");
            }
            if plan.should_fail(None, epoch) {
                events.transient_faults += 1;
                if attempt >= guard.retry.max_retries {
                    return Err(EngineError::TransientFault { epoch });
                }
                let pause = guard.retry.backoff_for(attempt);
                attempt += 1;
                events.retries += 1;
                events.backoff_seconds += pause.as_secs_f64();
                std::thread::sleep(pause);
                // Bismarck-style warm start: restore the last completed
                // epoch's model snapshot, then re-run this epoch.
                store.restore(&snapshot)?;
                continue;
            }
        }
        if epoch > 0 {
            source.rewind().map_err(EngineError::from)?;
        }
        let converged = session.run_epoch(source, store)?;
        epochs_run += 1;
        snapshot = store.snapshot();
        attempt = 0;
        epoch += 1;
        if converged {
            converged_early = true;
            break;
        }
    }
    let (stats, epoch_cycles) = session.finish_logged(epochs_run, converged_early);
    Ok(GuardedRun {
        stats,
        epoch_cycles,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_none_never_cancels() {
        let t = CancelToken::none();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn token_deadline_trips() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(EngineError::DeadlineExceeded));
    }

    #[test]
    fn token_manual_cancel_is_shared_across_clones() {
        let t = CancelToken::manual();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn plan_budget_is_consumed() {
        let plan = FaultPlan::transient_at_epoch(2, 2);
        assert!(!plan.should_fail(None, 1));
        assert!(plan.should_fail(None, 2));
        assert!(plan.should_fail(None, 2));
        assert!(!plan.should_fail(None, 2), "budget spent");
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn shard_targeted_plan_skips_serial_and_other_shards() {
        let plan = FaultPlan::shard_fault(1, 0);
        assert!(!plan.should_fail(None, 0), "serial run untouched");
        assert!(!plan.should_fail(Some(0), 0), "other shard untouched");
        assert!(plan.should_fail(Some(1), 0));
        assert!(!plan.should_fail(Some(1), 0), "single-shot");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        };
        assert_eq!(p.backoff_for(0), Duration::from_millis(1));
        assert_eq!(p.backoff_for(1), Duration::from_millis(2));
        assert_eq!(p.backoff_for(2), Duration::from_millis(4));
        assert_eq!(p.backoff_for(3), Duration::from_millis(4), "capped");
        assert_eq!(
            p.backoff_for(40),
            Duration::from_millis(4),
            "shift overflow capped"
        );
    }

    #[test]
    fn quiet_events_are_quiet() {
        let mut a = FaultEvents::default();
        assert!(a.is_quiet());
        let b = FaultEvents {
            transient_faults: 1,
            retries: 1,
            backoff_seconds: 0.001,
            faulted_shards: vec![2],
        };
        a.absorb(&b);
        assert!(!a.is_quiet());
        assert_eq!(a.faulted_shards, vec![2]);
    }
}
