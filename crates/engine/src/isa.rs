//! The execution-engine ISA: scheduled steps of selective-SIMD micro-ops.

use dana_dsl::UnaryFn;

/// AUs per analytic cluster. "The number of AUs per AC are fixed to 8 to
/// obtain highest operational frequency." (§5.2)
pub const AUS_PER_AC: u16 = 8;

/// A storage location within one thread: an AU and a slot in that AU's
/// data-memory scratchpad (Fig. 7b's "Data Memory Scratchpad").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Loc {
    pub au: u16,
    pub slot: u16,
}

impl Loc {
    pub fn new(au: u16, slot: u16) -> Loc {
        Loc { au, slot }
    }

    /// The cluster this location belongs to.
    pub fn ac(&self) -> u16 {
        self.au / AUS_PER_AC
    }
}

/// ALU operations (Fig. 7b: "executes both basic mathematical operations
/// and complicated non-linear operations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    /// 1.0 if a > b else 0.0.
    Gt,
    /// 1.0 if a < b else 0.0.
    Lt,
    Max,
    Sigmoid,
    Gaussian,
    Sqrt,
    /// Copy `a` to the destination. The only op allowed to read across
    /// cluster boundaries (it is the inter-AC bus transfer).
    Mov,
}

impl AluOp {
    /// Pipeline latency in cycles. A step's cost is the maximum latency of
    /// its micro-ops (the AC controller "proceeds to the next instruction"
    /// only when "the designated AUs complete their execution", §5.2).
    pub fn latency(&self) -> u64 {
        match self {
            AluOp::Add
            | AluOp::Sub
            | AluOp::Mul
            | AluOp::Gt
            | AluOp::Lt
            | AluOp::Max
            | AluOp::Mov => 1,
            AluOp::Sigmoid | AluOp::Gaussian => 2,
            AluOp::Div | AluOp::Sqrt => 4,
        }
    }

    /// Functional semantics (f32, the engine's native width).
    pub fn apply(&self, a: f32, b: f32) -> f32 {
        match self {
            AluOp::Add => a + b,
            AluOp::Sub => a - b,
            AluOp::Mul => a * b,
            AluOp::Div => a / b,
            AluOp::Gt => {
                if a > b {
                    1.0
                } else {
                    0.0
                }
            }
            AluOp::Lt => {
                if a < b {
                    1.0
                } else {
                    0.0
                }
            }
            AluOp::Max => a.max(b),
            AluOp::Sigmoid => UnaryFn::Sigmoid.apply(a as f64) as f32,
            AluOp::Gaussian => UnaryFn::Gaussian.apply(a as f64) as f32,
            AluOp::Sqrt => UnaryFn::Sqrt.apply(a as f64) as f32,
            AluOp::Mov => a,
        }
    }

    pub fn is_unary(&self) -> bool {
        matches!(
            self,
            AluOp::Sigmoid | AluOp::Gaussian | AluOp::Sqrt | AluOp::Mov
        )
    }
}

/// A micro-op source operand.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Src {
    /// Read a scratchpad location (same cluster unless the op is `Mov`).
    Slot(Loc),
    /// An immediate constant (meta values folded by the compiler).
    Const(f32),
}

/// One micro-operation, occupying one AU for one step.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum MicroOp {
    /// ALU operation on AU `au`, writing `dst` in `au`'s scratchpad.
    Alu {
        au: u16,
        op: AluOp,
        a: Src,
        b: Src,
        dst: u16,
    },
    /// Gather a model row: `dst[k] := model[row(index)][k]`. Occupies the
    /// destination AUs for the step. `model` indexes
    /// [`crate::engine::EngineDesign::models`].
    Gather {
        model: u8,
        index: Src,
        dst: Vec<Loc>,
    },
    /// Scatter a model row back: `model[row(index)][k] := src[k]`.
    Scatter {
        model: u8,
        index: Src,
        src: Vec<Loc>,
    },
}

impl MicroOp {
    /// AUs this op occupies (structural hazard set). Row moves may stream
    /// several slots through one AU — that AU appears once.
    pub fn occupied_aus(&self) -> Vec<u16> {
        let mut aus = match self {
            MicroOp::Alu { au, .. } => vec![*au],
            MicroOp::Gather { dst, .. } => dst.iter().map(|l| l.au).collect(),
            MicroOp::Scatter { src, .. } => src.iter().map(|l| l.au).collect(),
        };
        aus.sort_unstable();
        aus.dedup();
        aus
    }

    /// Latency contribution to the containing step.
    pub fn latency(&self) -> u64 {
        match self {
            MicroOp::Alu { op, .. } => op.latency(),
            // Row moves stream one element per cycle through the memory port.
            MicroOp::Gather { dst, .. } => dst.len().max(1) as u64,
            MicroOp::Scatter { src, .. } => src.len().max(1) as u64,
        }
    }
}

/// One scheduled step: the micro-ops that issue together. In hardware this
/// is one AC instruction per involved cluster (selective SIMD: the enable
/// mask is implied by which AUs appear).
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Step {
    pub ops: Vec<MicroOp>,
}

impl Step {
    pub fn cost(&self) -> u64 {
        self.ops.iter().map(|o| o.latency()).max().unwrap_or(1)
    }

    /// Inter-AC bus usage in this step: the number of *distinct sources*
    /// moved across cluster boundaries. The inter-AC bus is a shared line
    /// (§5.2), so one source broadcasting to many clusters costs one bus
    /// use; distinct sources contend.
    pub fn cross_cluster_movs(&self) -> usize {
        let mut sources: Vec<Loc> = self
            .ops
            .iter()
            .filter_map(|o| match o {
                MicroOp::Alu {
                    au,
                    op: AluOp::Mov,
                    a: Src::Slot(l),
                    ..
                } if l.ac() != au / AUS_PER_AC => Some(*l),
                _ => None,
            })
            .collect();
        sources.sort_unstable();
        sources.dedup();
        sources.len()
    }
}

/// A compiled engine program: the per-tuple region (replicated across
/// threads) and the post-merge region (runs on the merge result).
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct EngineProgram {
    pub per_tuple: Vec<Step>,
    pub post_merge: Vec<Step>,
}

impl EngineProgram {
    /// Cycle cost of the per-tuple region (one thread, one tuple).
    pub fn per_tuple_cycles(&self) -> u64 {
        self.per_tuple.iter().map(Step::cost).sum()
    }

    /// Cycle cost of the post-merge region (once per batch).
    pub fn post_merge_cycles(&self) -> u64 {
        self.post_merge.iter().map(Step::cost).sum()
    }

    /// Total micro-op count (diagnostics / instruction footprint).
    pub fn micro_ops(&self) -> usize {
        self.per_tuple
            .iter()
            .chain(&self.post_merge)
            .map(|s| s.ops.len())
            .sum()
    }

    /// Human-readable listing.
    pub fn listing(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let dump = |title: &str, steps: &[Step], s: &mut String| {
            let _ = writeln!(s, "; {title} ({} steps)", steps.len());
            for (i, st) in steps.iter().enumerate() {
                let _ = writeln!(s, "step {i} (cost {}):", st.cost());
                for op in &st.ops {
                    let _ = writeln!(s, "  {}", display_op(op));
                }
            }
        };
        dump("per-tuple", &self.per_tuple, &mut s);
        dump("post-merge", &self.post_merge, &mut s);
        s
    }
}

fn display_src(s: &Src) -> String {
    match s {
        Src::Slot(l) => format!("au{}[{}]", l.au, l.slot),
        Src::Const(c) => format!("#{c}"),
    }
}

fn display_op(op: &MicroOp) -> String {
    match op {
        MicroOp::Alu { au, op, a, b, dst } => {
            if op.is_unary() {
                format!("au{au}[{dst}] <- {op:?} {}", display_src(a))
            } else {
                format!(
                    "au{au}[{dst}] <- {:?}({}, {})",
                    op,
                    display_src(a),
                    display_src(b)
                )
            }
        }
        MicroOp::Gather { model, index, dst } => {
            format!(
                "gather m{model}[{}] -> {} slots",
                display_src(index),
                dst.len()
            )
        }
        MicroOp::Scatter { model, index, src } => {
            format!(
                "scatter {} slots -> m{model}[{}]",
                src.len(),
                display_src(index)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_cluster_arithmetic() {
        assert_eq!(Loc::new(0, 0).ac(), 0);
        assert_eq!(Loc::new(7, 0).ac(), 0);
        assert_eq!(Loc::new(8, 0).ac(), 1);
        assert_eq!(Loc::new(23, 5).ac(), 2);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(AluOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(AluOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(AluOp::Div.apply(3.0, 2.0), 1.5);
        assert_eq!(AluOp::Gt.apply(2.0, 3.0), 0.0);
        assert_eq!(AluOp::Lt.apply(2.0, 3.0), 1.0);
        assert_eq!(AluOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(AluOp::Mov.apply(7.0, 0.0), 7.0);
        assert!((AluOp::Sigmoid.apply(0.0, 0.0) - 0.5).abs() < 1e-6);
        assert!((AluOp::Sqrt.apply(9.0, 0.0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn step_cost_is_max_latency() {
        let step = Step {
            ops: vec![
                MicroOp::Alu {
                    au: 0,
                    op: AluOp::Add,
                    a: Src::Const(1.0),
                    b: Src::Const(2.0),
                    dst: 0,
                },
                MicroOp::Alu {
                    au: 1,
                    op: AluOp::Div,
                    a: Src::Const(1.0),
                    b: Src::Const(2.0),
                    dst: 0,
                },
            ],
        };
        assert_eq!(step.cost(), 4);
        let empty = Step::default();
        assert_eq!(empty.cost(), 1);
    }

    #[test]
    fn cross_cluster_movs_counted() {
        let step = Step {
            ops: vec![
                // AU 0 (cluster 0) pulling from AU 9 (cluster 1): bus transfer.
                MicroOp::Alu {
                    au: 0,
                    op: AluOp::Mov,
                    a: Src::Slot(Loc::new(9, 0)),
                    b: Src::Const(0.0),
                    dst: 0,
                },
                // Same-cluster mov: free.
                MicroOp::Alu {
                    au: 1,
                    op: AluOp::Mov,
                    a: Src::Slot(Loc::new(2, 0)),
                    b: Src::Const(0.0),
                    dst: 0,
                },
                // Non-mov op: not a bus user.
                MicroOp::Alu {
                    au: 3,
                    op: AluOp::Add,
                    a: Src::Slot(Loc::new(4, 0)),
                    b: Src::Const(0.0),
                    dst: 0,
                },
            ],
        };
        assert_eq!(step.cross_cluster_movs(), 1);
    }

    #[test]
    fn gather_latency_scales_with_rank() {
        let g = MicroOp::Gather {
            model: 0,
            index: Src::Const(0.0),
            dst: (0..10).map(|i| Loc::new(0, i)).collect(),
        };
        assert_eq!(g.latency(), 10);
    }

    #[test]
    fn program_cycle_totals() {
        let p = EngineProgram {
            per_tuple: vec![
                Step {
                    ops: vec![MicroOp::Alu {
                        au: 0,
                        op: AluOp::Mul,
                        a: Src::Const(1.0),
                        b: Src::Const(1.0),
                        dst: 0,
                    }],
                },
                Step {
                    ops: vec![MicroOp::Alu {
                        au: 0,
                        op: AluOp::Sigmoid,
                        a: Src::Const(1.0),
                        b: Src::Const(0.0),
                        dst: 1,
                    }],
                },
            ],
            post_merge: vec![Step {
                ops: vec![MicroOp::Alu {
                    au: 0,
                    op: AluOp::Sub,
                    a: Src::Const(1.0),
                    b: Src::Const(1.0),
                    dst: 2,
                }],
            }],
        };
        assert_eq!(p.per_tuple_cycles(), 3); // 1 + 2
        assert_eq!(p.post_merge_cycles(), 1);
        assert_eq!(p.micro_ops(), 3);
        assert!(p.listing().contains("per-tuple"));
    }
}
