//! Execution-engine error types.

use std::fmt;

/// Errors from validating or executing engine programs.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// An AU index exceeds the per-thread allocation.
    BadAu { au: u16, aus_per_thread: u16 },
    /// A memory slot exceeds the per-AU scratchpad.
    BadSlot { slot: u16, slots: u16 },
    /// Two micro-ops target the same AU in one step.
    AuConflict { step: usize, au: u16 },
    /// A non-Mov micro-op reads across cluster boundaries.
    CrossClusterRead { step: usize, au: u16, src_au: u16 },
    /// More cross-cluster transfers in a step than bus lanes.
    BusOversubscribed {
        step: usize,
        movs: usize,
        lanes: usize,
    },
    /// A gather/scatter references an unknown model id.
    BadModel(u8),
    /// A gathered/scattered row index is out of the model's range.
    RowOutOfRange { model: u8, row: i64, rows: usize },
    /// Model store shape disagrees with the design.
    ModelShape(String),
    /// Tuple width disagrees with the design's input+output slots.
    TupleWidth { got: usize, expected: usize },
    /// The upstream tuple source failed while producing a batch.
    Source(String),
    /// The query's deadline passed; raised by cooperative cancellation
    /// checks at epoch boundaries.
    DeadlineExceeded,
    /// A transient accelerator fault (injected or reported) at an epoch
    /// boundary. Retryable: training resumes from the last completed
    /// epoch's model snapshot.
    TransientFault { epoch: u32 },
}

impl EngineError {
    /// Whether a retry (warm-started from the last epoch-boundary model
    /// snapshot) can possibly succeed. Deterministic program errors —
    /// bad schedules, shape mismatches — are not retryable.
    pub fn is_transient(&self) -> bool {
        matches!(self, EngineError::TransientFault { .. })
    }

    /// Whether this is the cooperative-cancellation deadline signal.
    pub fn is_deadline(&self) -> bool {
        matches!(self, EngineError::DeadlineExceeded)
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BadAu { au, aus_per_thread } => {
                write!(f, "AU {au} out of range ({aus_per_thread} per thread)")
            }
            EngineError::BadSlot { slot, slots } => {
                write!(f, "slot {slot} out of range ({slots} per AU)")
            }
            EngineError::AuConflict { step, au } => {
                write!(f, "step {step}: AU {au} issued two operations")
            }
            EngineError::CrossClusterRead { step, au, src_au } => {
                write!(
                    f,
                    "step {step}: AU {au} reads AU {src_au} across clusters without a Mov"
                )
            }
            EngineError::BusOversubscribed { step, movs, lanes } => {
                write!(
                    f,
                    "step {step}: {movs} cross-cluster transfers exceed {lanes} bus lanes"
                )
            }
            EngineError::BadModel(m) => write!(f, "unknown model id {m}"),
            EngineError::RowOutOfRange { model, row, rows } => {
                write!(f, "model {model}: row {row} outside 0..{rows}")
            }
            EngineError::ModelShape(msg) => write!(f, "model shape: {msg}"),
            EngineError::TupleWidth { got, expected } => {
                write!(f, "tuple has {got} values, engine expects {expected}")
            }
            EngineError::Source(msg) => write!(f, "tuple source: {msg}"),
            EngineError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            EngineError::TransientFault { epoch } => {
                write!(
                    f,
                    "transient accelerator fault at epoch {epoch} (retryable)"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<dana_storage::SourceError> for EngineError {
    fn from(e: dana_storage::SourceError) -> EngineError {
        EngineError::Source(e.0)
    }
}

pub type EngineResult<T> = Result<T, EngineError>;
