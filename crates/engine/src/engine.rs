//! The multi-threaded execution engine interpreter.
//!
//! "Our reconfigurable execution engine architecture can run multiple
//! threads of parallel update rules for different data tuples. ... Results
//! across the threads are combined via a computationally-enabled tree bus
//! in accordance to the merge function." (§5.2)
//!
//! Execution is batch-structured: each batch assigns one tuple per thread,
//! runs the per-tuple program on every (active) thread in lockstep, merges
//! the designated variable on the tree bus, runs the post-merge program on
//! the merge result, and writes the model back. Cycle accounting follows
//! the static schedule: the paper's §6.1 estimator works *because*
//! "the hDFG does not change, there is no hardware managed cache, and the
//! accelerator architecture is fixed during execution" — properties this
//! interpreter preserves exactly.

use dana_dsl::MergeOp;
use dana_storage::{OneBatchSource, TupleBatch, TupleSource};

use crate::error::{EngineError, EngineResult};
use crate::isa::{AluOp, EngineProgram, Loc, MicroOp, Src, Step, AUS_PER_AC};
use crate::lowered::{lower, LoweredProgram};

/// Shared-bus width in f32 elements per cycle, for model write-back and
/// broadcast (a 512-bit data bus).
pub const BUS_WORDS: u64 = 16;

/// Concurrent ports on the row-indexed model memory (BRAM banking).
/// Gathers and row scatters from different threads contend for these —
/// the structural reason LRMF "does not experience a higher performance
/// with increasing number of threads" (§7.2, Fig. 12).
pub const MODEL_PORTS: u64 = 4;

/// A dense or row-indexed model variable held in on-chip model memory.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModelDesc {
    pub name: String,
    /// Rows (1 for flat vectors/scalars treated as a single row).
    pub rows: usize,
    /// Elements per row.
    pub cols: usize,
    /// For dense models: the per-thread scratchpad locations holding the
    /// model's elements (row-major), refreshed by broadcast each batch.
    /// Row-indexed (LRMF) models gather rows on demand instead.
    pub broadcast_slots: Option<Vec<Loc>>,
}

impl ModelDesc {
    pub fn elements(&self) -> usize {
        self.rows * self.cols
    }
}

/// How threads' results combine at the batch boundary.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum MergePlan {
    /// No merge: single-threaded designs.
    None,
    /// Combine the variable at `slots` (per-thread locations) into thread
    /// 0's copies with `op` on the tree bus.
    Whole { op: MergeOp, slots: Vec<Loc> },
}

/// A model write-back performed at the end of each batch.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ModelWrite {
    /// The whole model becomes the values at `src` (read from thread 0
    /// after the post-merge program).
    Whole { model: u8, src: Vec<Loc> },
    /// Row scatter (LRMF): each *active thread* writes its computed row
    /// `src` to `model[index]`, applied in thread order on the tree bus.
    Row {
        model: u8,
        index: Loc,
        src: Vec<Loc>,
    },
}

/// Convergence control.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ConvergenceCheck {
    /// Fixed number of epochs.
    Epochs(u32),
    /// Stop when thread 0's `slot` is non-zero at an epoch boundary, with a
    /// cap.
    Condition { slot: Loc, max_epochs: u32 },
}

impl ConvergenceCheck {
    pub fn max_epochs(&self) -> u32 {
        match self {
            ConvergenceCheck::Epochs(n) => *n,
            ConvergenceCheck::Condition { max_epochs, .. } => *max_epochs,
        }
    }
}

/// The complete compiled engine design: architecture parameters plus the
/// program and all data bindings. Produced by `dana-compiler`, stored in
/// the catalog, executed here.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EngineDesign {
    pub num_threads: u16,
    pub acs_per_thread: u16,
    pub slots_per_au: u16,
    /// Inter-AC bus lanes available per step.
    pub bus_lanes: u16,
    pub program: EngineProgram,
    /// Where each element of the concatenated input vector is loaded.
    pub input_slots: Vec<Loc>,
    /// Where each label element is loaded.
    pub output_slots: Vec<Loc>,
    /// Meta constants preloaded once per deployment.
    pub meta: Vec<(Loc, f32)>,
    pub models: Vec<ModelDesc>,
    pub merge: MergePlan,
    pub model_writes: Vec<ModelWrite>,
    pub convergence: ConvergenceCheck,
}

impl EngineDesign {
    pub fn aus_per_thread(&self) -> u16 {
        self.acs_per_thread * AUS_PER_AC
    }

    /// Serializes to the catalog's design blob.
    pub fn to_blob(&self) -> String {
        serde_json::to_string(self).expect("design serializes")
    }

    /// Restores from a catalog blob.
    pub fn from_blob(blob: &str) -> Result<EngineDesign, String> {
        serde_json::from_str(blob).map_err(|e| e.to_string())
    }
}

/// Global model storage (the BRAM-resident model memory).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStore {
    values: Vec<Vec<f32>>,
}

impl ModelStore {
    /// Initializes storage for `design` with the provided initial values
    /// (one vec per model, row-major).
    pub fn new(design: &EngineDesign, init: Vec<Vec<f32>>) -> EngineResult<ModelStore> {
        if init.len() != design.models.len() {
            return Err(EngineError::ModelShape(format!(
                "{} models supplied, design has {}",
                init.len(),
                design.models.len()
            )));
        }
        for (v, m) in init.iter().zip(&design.models) {
            if v.len() != m.elements() {
                return Err(EngineError::ModelShape(format!(
                    "model '{}' has {} elements, got {}",
                    m.name,
                    m.elements(),
                    v.len()
                )));
            }
        }
        Ok(ModelStore { values: init })
    }

    /// Zero-initialized storage.
    pub fn zeroed(design: &EngineDesign) -> ModelStore {
        ModelStore {
            values: design
                .models
                .iter()
                .map(|m| vec![0.0; m.elements()])
                .collect(),
        }
    }

    pub fn model(&self, idx: usize) -> &[f32] {
        &self.values[idx]
    }

    pub fn model_mut(&mut self, idx: usize) -> &mut Vec<f32> {
        &mut self.values[idx]
    }

    pub fn into_values(self) -> Vec<Vec<f32>> {
        self.values
    }

    /// Clones the current model values — the epoch-boundary snapshot the
    /// retry path warm-starts from (Bismarck-style restartability).
    pub fn snapshot(&self) -> Vec<Vec<f32>> {
        self.values.clone()
    }

    /// Restores a snapshot taken from this store (shapes must match).
    pub fn restore(&mut self, snapshot: &[Vec<f32>]) -> EngineResult<()> {
        if snapshot.len() != self.values.len()
            || snapshot
                .iter()
                .zip(&self.values)
                .any(|(s, v)| s.len() != v.len())
        {
            return Err(EngineError::ModelShape(
                "snapshot shape disagrees with the store".to_string(),
            ));
        }
        for (v, s) in self.values.iter_mut().zip(snapshot) {
            v.clone_from(s);
        }
        Ok(())
    }
}

/// Cycle and progress counters for one training run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    pub cycles: u64,
    pub epochs_run: u32,
    pub batches: u64,
    pub tuples_processed: u64,
    pub converged_early: bool,
    /// Breakdown (sums to ≈ cycles).
    pub compute_cycles: u64,
    pub merge_cycles: u64,
    pub broadcast_cycles: u64,
}

/// The execution engine: a validated design plus its deploy-time
/// lowering.
///
/// Two execution tiers share this struct:
///
/// * the **lowered hot path** ([`ExecutionEngine::run_training`]) executes
///   the pre-resolved [`LoweredProgram`] group-at-a-time over a slot-major
///   SoA scratchpad — no per-op operand dispatch, no index arithmetic, no
///   hazard branches;
/// * the **reference interpreters**
///   ([`ExecutionEngine::run_training_interpreter`] over the streaming flat
///   scratchpad, [`ExecutionEngine::run_training_rows`] over the original
///   nested one) are retained verbatim as differential-testing baselines —
///   the equivalence suite holds all tiers to bit-identical models *and*
///   cycle stats.
///
/// Construction is the expensive step (validation + lowering); it happens
/// once at DEPLOY and the engine is then shared immutably (`Arc`) across
/// any number of concurrent queries.
#[derive(Debug)]
pub struct ExecutionEngine {
    design: EngineDesign,
    /// Model-row elements gathered per tuple by the per-tuple program
    /// (precomputed for port-contention accounting).
    gather_elems: u64,
    /// Slots per AU — the stride of the flat per-thread scratchpad.
    slots: usize,
    /// Flat indices of the input/label load slots (schema order).
    input_flat: Vec<usize>,
    output_flat: Vec<usize>,
    /// Per-step hazard flags for the per-tuple / post-merge programs:
    /// `true` when no op reads a scratchpad location another op in the
    /// same step writes, so writes can apply immediately instead of going
    /// through the read-before-write staging buffer.
    per_tuple_direct: Vec<bool>,
    post_merge_direct: Vec<bool>,
    /// The deploy-time lowering of `design` (the hot path's program).
    lowered: LoweredProgram,
}

impl ExecutionEngine {
    /// Validates the design's program against its structural constraints,
    /// runs the deploy-time lowering pass, and constructs the engine.
    pub fn new(design: EngineDesign) -> EngineResult<ExecutionEngine> {
        ExecutionEngine::build(design, None)
    }

    /// Restores an engine from a catalog artifact: the design plus the
    /// lowered program produced at deploy time. The design is re-validated;
    /// the lowered program is reused as-is when structurally consistent
    /// (and re-derived otherwise, so a corrupt blob degrades to a fresh
    /// lowering rather than out-of-bounds execution).
    pub fn from_artifact(
        design: EngineDesign,
        lowered: LoweredProgram,
    ) -> EngineResult<ExecutionEngine> {
        ExecutionEngine::build(design, Some(lowered))
    }

    fn build(
        design: EngineDesign,
        lowered: Option<LoweredProgram>,
    ) -> EngineResult<ExecutionEngine> {
        validate(&design)?;
        let gather_elems = design
            .program
            .per_tuple
            .iter()
            .flat_map(|s| &s.ops)
            .map(|o| match o {
                MicroOp::Gather { dst, .. } => dst.len() as u64,
                _ => 0,
            })
            .sum();
        let slots = design.slots_per_au as usize;
        let flat = |loc: &Loc| loc.au as usize * slots + loc.slot as usize;
        let input_flat = design.input_slots.iter().map(flat).collect();
        let output_flat = design.output_slots.iter().map(flat).collect();
        let per_tuple_direct = design
            .program
            .per_tuple
            .iter()
            .map(|s| step_is_hazard_free(s, slots))
            .collect();
        let post_merge_direct = design
            .program
            .post_merge
            .iter()
            .map(|s| step_is_hazard_free(s, slots))
            .collect();
        let lowered = match lowered {
            Some(lp) if lp.is_consistent_with(&design) => lp,
            _ => lower(&design),
        };
        Ok(ExecutionEngine {
            design,
            gather_elems,
            slots,
            input_flat,
            output_flat,
            per_tuple_direct,
            post_merge_direct,
            lowered,
        })
    }

    pub fn design(&self) -> &EngineDesign {
        &self.design
    }

    /// The deploy-time lowering artifact (persisted in the catalog blob).
    pub fn lowered(&self) -> &LoweredProgram {
        &self.lowered
    }

    /// Runs training to convergence (or the epoch cap), pulling tuples from
    /// a streaming [`TupleSource`] — **the hot path**, executing the
    /// deploy-time [`LoweredProgram`] group-at-a-time over the slot-major
    /// SoA scratchpad. Batches are consumed as the source produces them —
    /// typically one per buffer-pool page — so extraction and compute
    /// interleave exactly as the paper's access/execution engine pipeline
    /// does (§5.1.1). Thread groups are formed across batch boundaries:
    /// the trained model is a pure function of the tuple stream, never of
    /// how the source happened to batch it.
    ///
    /// At each epoch boundary the source is rewound to replay the scan.
    /// `store` holds the models and receives the result. Models and cycle
    /// stats are bit-identical to both retained interpreter tiers.
    pub fn run_training(
        &self,
        source: &mut dyn TupleSource,
        store: &mut ModelStore,
    ) -> EngineResult<EngineStats> {
        self.lowered.run_streaming(&self.design, source, store)
    }

    /// [`ExecutionEngine::run_training`], also yielding the per-epoch
    /// engine-cycle log (one delta per epoch run, summing to
    /// `stats.cycles`) for the query-lifecycle trace's epoch spans.
    pub fn run_training_logged(
        &self,
        source: &mut dyn TupleSource,
        store: &mut ModelStore,
    ) -> EngineResult<(EngineStats, Vec<u64>)> {
        self.lowered
            .run_streaming_logged(&self.design, source, store)
    }

    /// Starts an epoch-at-a-time [`crate::lowered::TrainingSession`] over
    /// the deploy-time lowering. `run_training` is exactly an epoch loop
    /// over one of these; the gang-scheduled shard executor runs one per
    /// shard and merges models at every epoch boundary.
    pub fn training_session(&self) -> crate::lowered::TrainingSession<'_> {
        crate::lowered::TrainingSession::new(&self.lowered, self.design.num_threads as usize)
    }

    /// The retained streaming flat-scratchpad interpreter — the
    /// pre-lowering hot path, kept verbatim as the second reference tier
    /// for differential testing (and the `engine_hot_loop` benchmark's
    /// baseline). Dispatches `MicroOp`/`Src` per op per tuple.
    pub fn run_training_interpreter(
        &self,
        source: &mut dyn TupleSource,
        store: &mut ModelStore,
    ) -> EngineResult<EngineStats> {
        let d = &self.design;
        let width = d.input_slots.len() + d.output_slots.len();
        if source.width() != width {
            return Err(EngineError::TupleWidth {
                got: source.width(),
                expected: width,
            });
        }
        let mut mem = self.fresh_flat_memory();
        // Reusable per-step write buffer: cleared between steps, allocated
        // once per run (the old path allocated one per step per tuple).
        let mut writes: Vec<(usize, f32)> = Vec::new();
        let mut stats = EngineStats::default();
        let max_epochs = d.convergence.max_epochs();
        for epoch in 0..max_epochs {
            if epoch > 0 {
                source.rewind().map_err(EngineError::from)?;
            }
            let converged = self.run_epoch(source, store, &mut mem, &mut writes, &mut stats)?;
            stats.epochs_run += 1;
            if converged {
                stats.converged_early = true;
                break;
            }
        }
        Ok(stats)
    }

    /// [`ExecutionEngine::run_training`] over one materialized batch.
    pub fn run_training_batch(
        &self,
        batch: &TupleBatch,
        store: &mut ModelStore,
    ) -> EngineResult<EngineStats> {
        self.run_training(&mut OneBatchSource::new(batch), store)
    }

    /// [`ExecutionEngine::run_training_interpreter`] over one materialized
    /// batch.
    pub fn run_training_interpreter_batch(
        &self,
        batch: &TupleBatch,
        store: &mut ModelStore,
    ) -> EngineResult<EngineStats> {
        self.run_training_interpreter(&mut OneBatchSource::new(batch), store)
    }

    /// Flat per-thread scratchpad (one contiguous `aus × slots` vec per
    /// thread, operands indexed as `au * slots + slot`) with meta constants
    /// loaded — configuration data, loaded once, to every thread.
    fn fresh_flat_memory(&self) -> Vec<Vec<f32>> {
        let d = &self.design;
        let words = d.aus_per_thread() as usize * self.slots;
        let mut mem: Vec<Vec<f32>> = (0..d.num_threads).map(|_| vec![0.0f32; words]).collect();
        for m in &mut mem {
            for (loc, v) in &d.meta {
                m[self.flat(loc)] = *v;
            }
        }
        mem
    }

    /// Flat scratchpad index of a (AU, slot) location.
    #[inline]
    fn flat(&self, loc: &Loc) -> usize {
        loc.au as usize * self.slots + loc.slot as usize
    }

    /// Nested per-thread scratchpad for the retained reference path
    /// (thread → AU → slot, the pre-streaming representation).
    fn fresh_thread_memory_rows(&self) -> Vec<Vec<Vec<f32>>> {
        let d = &self.design;
        let mut mem: Vec<Vec<Vec<f32>>> = (0..d.num_threads)
            .map(|_| vec![vec![0.0f32; d.slots_per_au as usize]; d.aus_per_thread() as usize])
            .collect();
        for m in &mut mem {
            for (loc, v) in &d.meta {
                m[loc.au as usize][loc.slot as usize] = *v;
            }
        }
        mem
    }

    /// Runs one streaming epoch; returns whether the convergence condition
    /// fired. Tuples accumulate into thread groups of `num_threads`; a
    /// group flushes (merge → post-merge → write-back) when full, and the
    /// final partial group flushes at end of scan.
    fn run_epoch(
        &self,
        source: &mut dyn TupleSource,
        store: &mut ModelStore,
        mem: &mut [Vec<f32>],
        writes: &mut Vec<(usize, f32)>,
        stats: &mut EngineStats,
    ) -> EngineResult<bool> {
        let d = &self.design;
        let threads = (d.num_threads as usize).max(1);
        let width = d.input_slots.len() + d.output_slots.len();
        let mut active = 0usize;
        while let Some(batch) = source.next_batch().map_err(EngineError::from)? {
            if batch.width() != width {
                return Err(EngineError::TupleWidth {
                    got: batch.width(),
                    expected: width,
                });
            }
            for tuple in batch.rows() {
                if active == 0 {
                    self.broadcast_models(store, mem, stats);
                }
                // Per-tuple programs run in lockstep across active threads.
                self.load_tuple(&mut mem[active], tuple);
                self.exec_steps(
                    &d.program.per_tuple,
                    &self.per_tuple_direct,
                    active,
                    mem,
                    writes,
                    store,
                )?;
                active += 1;
                if active == threads {
                    self.flush_group(active, mem, writes, store, stats)?;
                    active = 0;
                }
            }
        }
        if active > 0 {
            self.flush_group(active, mem, writes, store, stats)?;
        }
        stats.cycles = stats.compute_cycles + stats.merge_cycles + stats.broadcast_cycles;
        // Convergence condition: evaluated once per epoch (§4.4) on the
        // state left by the final group.
        if let ConvergenceCheck::Condition { slot, .. } = &d.convergence {
            let v = mem[0][self.flat(slot)];
            return Ok(v != 0.0);
        }
        Ok(false)
    }

    /// Completes one thread group of `active` loaded tuples: charge the
    /// lockstep per-tuple program, merge on the tree bus, run the
    /// post-merge program on thread 0, and write models back.
    fn flush_group(
        &self,
        active: usize,
        mem: &mut [Vec<f32>],
        writes: &mut Vec<(usize, f32)>,
        store: &mut ModelStore,
        stats: &mut EngineStats,
    ) -> EngineResult<()> {
        let d = &self.design;
        stats.compute_cycles += d.program.per_tuple_cycles();
        // Model-memory port contention: all threads' row gathers share
        // MODEL_PORTS BRAM ports.
        if self.gather_elems > 0 {
            stats.merge_cycles += (active as u64 * self.gather_elems).div_ceil(MODEL_PORTS);
        }
        // Tree-bus merge into thread 0.
        stats.merge_cycles += self.merge(active, mem);
        // Post-merge program on thread 0.
        self.exec_steps(
            &d.program.post_merge,
            &self.post_merge_direct,
            0,
            mem,
            writes,
            store,
        )?;
        stats.compute_cycles += d.program.post_merge_cycles();
        // Model write-back.
        stats.merge_cycles += self.write_models(active, mem, store)?;
        stats.batches += 1;
        stats.tuples_processed += active as u64;
        Ok(())
    }

    /// Reference per-tuple training path over `Vec<f32>` rows — the
    /// pre-streaming implementation, retained verbatim for differential
    /// testing of the batch pipeline (`tests/equivalence.rs` holds the two
    /// paths to bit-identical trained models). Never used on the
    /// deploy/execute hot path.
    pub fn run_training_rows(
        &self,
        tuples: &[Vec<f32>],
        store: &mut ModelStore,
    ) -> EngineResult<EngineStats> {
        let d = &self.design;
        let width = d.input_slots.len() + d.output_slots.len();
        for t in tuples {
            if t.len() != width {
                return Err(EngineError::TupleWidth {
                    got: t.len(),
                    expected: width,
                });
            }
        }
        let mut mem = self.fresh_thread_memory_rows();
        let mut stats = EngineStats::default();
        let max_epochs = d.convergence.max_epochs();
        for _epoch in 0..max_epochs {
            let converged = self.run_epoch_rows(tuples, store, &mut mem, &mut stats)?;
            stats.epochs_run += 1;
            if converged {
                stats.converged_early = true;
                break;
            }
        }
        Ok(stats)
    }

    /// One epoch of the reference rows path: chunk by thread count, run the
    /// per-tuple program on every active thread, merge, post-merge, write.
    fn run_epoch_rows(
        &self,
        tuples: &[Vec<f32>],
        store: &mut ModelStore,
        mem: &mut [Vec<Vec<f32>>],
        stats: &mut EngineStats,
    ) -> EngineResult<bool> {
        let d = &self.design;
        let threads = d.num_threads as usize;
        for batch in tuples.chunks(threads.max(1)) {
            self.broadcast_models_rows(store, mem, stats);
            for (t, tuple) in batch.iter().enumerate() {
                self.load_tuple_rows(&mut mem[t], tuple);
                self.exec_steps_rows(&d.program.per_tuple, t, mem, store)?;
            }
            stats.compute_cycles += d.program.per_tuple_cycles();
            if self.gather_elems > 0 {
                stats.merge_cycles +=
                    (batch.len() as u64 * self.gather_elems).div_ceil(MODEL_PORTS);
            }
            stats.merge_cycles += self.merge_rows(batch.len(), mem);
            self.exec_steps_rows(&d.program.post_merge, 0, mem, store)?;
            stats.compute_cycles += d.program.post_merge_cycles();
            stats.merge_cycles += self.write_models_rows(batch.len(), mem, store)?;
            stats.batches += 1;
            stats.tuples_processed += batch.len() as u64;
        }
        stats.cycles = stats.compute_cycles + stats.merge_cycles + stats.broadcast_cycles;
        if let ConvergenceCheck::Condition { slot, .. } = &d.convergence {
            let v = mem[0][slot.au as usize][slot.slot as usize];
            return Ok(v != 0.0);
        }
        Ok(false)
    }

    /// Streams dense models from model memory to every thread's scratchpad.
    fn broadcast_models(&self, store: &ModelStore, mem: &mut [Vec<f32>], stats: &mut EngineStats) {
        for (mi, mdesc) in self.design.models.iter().enumerate() {
            let Some(slots) = &mdesc.broadcast_slots else {
                continue;
            };
            let values = store.model(mi);
            for m in mem.iter_mut() {
                for (loc, v) in slots.iter().zip(values) {
                    m[self.flat(loc)] = *v;
                }
            }
            // One stream over the shared bus; all threads listen.
            stats.broadcast_cycles += (values.len() as u64).div_ceil(BUS_WORDS);
        }
    }

    fn load_tuple(&self, thread_mem: &mut [f32], tuple: &[f32]) {
        for (k, &i) in self.input_flat.iter().enumerate() {
            thread_mem[i] = tuple[k];
        }
        let base = self.input_flat.len();
        for (k, &i) in self.output_flat.iter().enumerate() {
            thread_mem[i] = tuple[base + k];
        }
    }

    /// Executes steps on the flat scratchpad. Hazard-free steps (see the
    /// `*_direct` flags) apply writes immediately; steps with an
    /// intra-step read-after-write go through `writes`, the reusable
    /// read-before-write staging buffer (register-file semantics).
    fn exec_steps(
        &self,
        steps: &[Step],
        direct: &[bool],
        thread: usize,
        mem: &mut [Vec<f32>],
        writes: &mut Vec<(usize, f32)>,
        store: &mut ModelStore,
    ) -> EngineResult<()> {
        for (step, &is_direct) in steps.iter().zip(direct) {
            if is_direct {
                let (t_mem, _) = mem.split_at_mut(thread + 1);
                let t_mem = &mut t_mem[thread];
                for op in &step.ops {
                    match op {
                        MicroOp::Alu { au, op, a, b, dst } => {
                            let av = self.read(t_mem, a);
                            let bv = self.read(t_mem, b);
                            t_mem[*au as usize * self.slots + *dst as usize] = op.apply(av, bv);
                        }
                        MicroOp::Gather { model, index, dst } => {
                            let row = self.row_index(t_mem, index, *model)?;
                            let mdesc = &self.design.models[*model as usize];
                            let base = row * mdesc.cols;
                            let values = store.model(*model as usize);
                            for (k, loc) in dst.iter().enumerate() {
                                t_mem[self.flat(loc)] = values[base + k];
                            }
                        }
                        MicroOp::Scatter { model, index, src } => {
                            let row = self.row_index(t_mem, index, *model)?;
                            let mdesc = &self.design.models[*model as usize];
                            let base = row * mdesc.cols;
                            let m = store.model_mut(*model as usize);
                            for (k, loc) in src.iter().enumerate() {
                                m[base + k] = t_mem[self.flat(loc)];
                            }
                        }
                    }
                }
                continue;
            }
            writes.clear();
            for op in &step.ops {
                match op {
                    MicroOp::Alu { au, op, a, b, dst } => {
                        let av = self.read(&mem[thread], a);
                        let bv = self.read(&mem[thread], b);
                        writes.push((*au as usize * self.slots + *dst as usize, op.apply(av, bv)));
                    }
                    MicroOp::Gather { model, index, dst } => {
                        let row = self.row_index(&mem[thread], index, *model)?;
                        let base = row * self.design.models[*model as usize].cols;
                        let values = store.model(*model as usize);
                        for (k, loc) in dst.iter().enumerate() {
                            writes.push((self.flat(loc), values[base + k]));
                        }
                    }
                    MicroOp::Scatter { model, index, src } => {
                        let row = self.row_index(&mem[thread], index, *model)?;
                        let base = row * self.design.models[*model as usize].cols;
                        let t_mem = &mem[thread];
                        let m = store.model_mut(*model as usize);
                        for (k, loc) in src.iter().enumerate() {
                            m[base + k] = t_mem[self.flat(loc)];
                        }
                    }
                }
            }
            let t_mem = &mut mem[thread];
            for &(i, v) in writes.iter() {
                t_mem[i] = v;
            }
        }
        Ok(())
    }

    #[inline]
    fn read(&self, thread_mem: &[f32], src: &Src) -> f32 {
        match src {
            Src::Slot(l) => thread_mem[self.flat(l)],
            Src::Const(c) => *c,
        }
    }

    fn row_index(&self, thread_mem: &[f32], index: &Src, model: u8) -> EngineResult<usize> {
        let raw = self.read(thread_mem, index);
        let row = raw.round() as i64;
        let rows = self.design.models[model as usize].rows;
        if row < 0 || row as usize >= rows {
            return Err(EngineError::RowOutOfRange { model, row, rows });
        }
        Ok(row as usize)
    }

    /// Tree-bus merge of the designated variable into thread 0. Returns the
    /// cycles charged.
    fn merge(&self, active: usize, mem: &mut [Vec<f32>]) -> u64 {
        let MergePlan::Whole { op, slots } = &self.design.merge else {
            return 0;
        };
        if active <= 1 {
            return 0;
        }
        for loc in slots {
            let i = self.flat(loc);
            let mut acc = mem[0][i];
            for t in mem.iter().take(active).skip(1) {
                let v = t[i];
                acc = match op {
                    MergeOp::Sum | MergeOp::Avg => acc + v,
                    MergeOp::Max => acc.max(v),
                };
            }
            if *op == MergeOp::Avg {
                acc /= active as f32;
            }
            mem[0][i] = acc;
        }
        // Elements stream through a log-depth ALU tree.
        slots.len() as u64 + (64 - (active as u64 - 1).leading_zeros() as u64)
    }

    /// Applies model write-backs; returns tree-bus cycles charged.
    fn write_models(
        &self,
        active: usize,
        mem: &[Vec<f32>],
        store: &mut ModelStore,
    ) -> EngineResult<u64> {
        let mut cycles = 0u64;
        for w in &self.design.model_writes {
            match w {
                ModelWrite::Whole { model, src } => {
                    let m = store.model_mut(*model as usize);
                    debug_assert_eq!(m.len(), src.len());
                    for (k, loc) in src.iter().enumerate() {
                        m[k] = mem[0][self.flat(loc)];
                    }
                    cycles += (src.len() as u64).div_ceil(BUS_WORDS);
                }
                ModelWrite::Row { model, index, src } => {
                    // Validate every thread's row index before charging or
                    // touching model memory: an out-of-range row must not
                    // inflate `merge_cycles` (or half-apply the scatter)
                    // on the error path.
                    let mdesc = &self.design.models[*model as usize];
                    for t_mem in mem.iter().take(active) {
                        let row = t_mem[self.flat(index)].round() as i64;
                        if row < 0 || row as usize >= mdesc.rows {
                            return Err(EngineError::RowOutOfRange {
                                model: *model,
                                row,
                                rows: mdesc.rows,
                            });
                        }
                    }
                    // Every active thread scatters its rows through the
                    // shared model-memory ports — the LRMF merge overhead
                    // of §7.2.
                    cycles += (active as u64 * src.len() as u64).div_ceil(MODEL_PORTS);
                    let m = store.model_mut(*model as usize);
                    for t_mem in mem.iter().take(active) {
                        let base = t_mem[self.flat(index)].round() as usize * mdesc.cols;
                        for (k, loc) in src.iter().enumerate() {
                            m[base + k] = t_mem[self.flat(loc)];
                        }
                    }
                }
            }
        }
        Ok(cycles)
    }

    // ---- retained reference interpreter (pre-streaming representation) ----
    //
    // These are the pre-refactor helper implementations: nested
    // thread→AU→slot scratchpads and a per-step write vec. They exist so
    // `run_training_rows` is a faithful baseline — both for differential
    // correctness tests and for the microbenchmarks' before/after
    // comparisons. (Two semantics-preserving cleanups are applied to both
    // interpreter tiers: model-slice lookups hoisted out of per-element
    // gather/scatter loops, and row write-back validation moved ahead of
    // cycle charging.)

    fn broadcast_models_rows(
        &self,
        store: &ModelStore,
        mem: &mut [Vec<Vec<f32>>],
        stats: &mut EngineStats,
    ) {
        for (mi, mdesc) in self.design.models.iter().enumerate() {
            let Some(slots) = &mdesc.broadcast_slots else {
                continue;
            };
            let values = store.model(mi);
            for m in mem.iter_mut() {
                for (loc, v) in slots.iter().zip(values) {
                    m[loc.au as usize][loc.slot as usize] = *v;
                }
            }
            stats.broadcast_cycles += (values.len() as u64).div_ceil(BUS_WORDS);
        }
    }

    fn load_tuple_rows(&self, thread_mem: &mut [Vec<f32>], tuple: &[f32]) {
        let d = &self.design;
        for (k, loc) in d.input_slots.iter().enumerate() {
            thread_mem[loc.au as usize][loc.slot as usize] = tuple[k];
        }
        let base = d.input_slots.len();
        for (k, loc) in d.output_slots.iter().enumerate() {
            thread_mem[loc.au as usize][loc.slot as usize] = tuple[base + k];
        }
    }

    fn exec_steps_rows(
        &self,
        steps: &[Step],
        thread: usize,
        mem: &mut [Vec<Vec<f32>>],
        store: &mut ModelStore,
    ) -> EngineResult<()> {
        for step in steps {
            // Reads happen before writes within a step (register-file
            // semantics): gather all writes first.
            let mut writes: Vec<(Loc, f32)> = Vec::with_capacity(step.ops.len());
            for op in &step.ops {
                match op {
                    MicroOp::Alu { au, op, a, b, dst } => {
                        let av = self.read_rows(&mem[thread], a);
                        let bv = self.read_rows(&mem[thread], b);
                        writes.push((Loc::new(*au, *dst), op.apply(av, bv)));
                    }
                    MicroOp::Gather { model, index, dst } => {
                        let row = self.row_index_rows(&mem[thread], index, *model)?;
                        let base = row * self.design.models[*model as usize].cols;
                        let values = store.model(*model as usize);
                        for (k, loc) in dst.iter().enumerate() {
                            writes.push((*loc, values[base + k]));
                        }
                    }
                    MicroOp::Scatter { model, index, src } => {
                        let row = self.row_index_rows(&mem[thread], index, *model)?;
                        let base = row * self.design.models[*model as usize].cols;
                        let t_mem = &mem[thread];
                        let m = store.model_mut(*model as usize);
                        for (k, loc) in src.iter().enumerate() {
                            m[base + k] = t_mem[loc.au as usize][loc.slot as usize];
                        }
                    }
                }
            }
            for (loc, v) in writes {
                mem[thread][loc.au as usize][loc.slot as usize] = v;
            }
        }
        Ok(())
    }

    fn read_rows(&self, thread_mem: &[Vec<f32>], src: &Src) -> f32 {
        match src {
            Src::Slot(l) => thread_mem[l.au as usize][l.slot as usize],
            Src::Const(c) => *c,
        }
    }

    fn row_index_rows(
        &self,
        thread_mem: &[Vec<f32>],
        index: &Src,
        model: u8,
    ) -> EngineResult<usize> {
        let raw = self.read_rows(thread_mem, index);
        let row = raw.round() as i64;
        let rows = self.design.models[model as usize].rows;
        if row < 0 || row as usize >= rows {
            return Err(EngineError::RowOutOfRange { model, row, rows });
        }
        Ok(row as usize)
    }

    fn merge_rows(&self, active: usize, mem: &mut [Vec<Vec<f32>>]) -> u64 {
        let MergePlan::Whole { op, slots } = &self.design.merge else {
            return 0;
        };
        if active <= 1 {
            return 0;
        }
        for loc in slots {
            let mut acc = mem[0][loc.au as usize][loc.slot as usize];
            for t in mem.iter().take(active).skip(1) {
                let v = t[loc.au as usize][loc.slot as usize];
                acc = match op {
                    MergeOp::Sum | MergeOp::Avg => acc + v,
                    MergeOp::Max => acc.max(v),
                };
            }
            if *op == MergeOp::Avg {
                acc /= active as f32;
            }
            mem[0][loc.au as usize][loc.slot as usize] = acc;
        }
        slots.len() as u64 + (64 - (active as u64 - 1).leading_zeros() as u64)
    }

    fn write_models_rows(
        &self,
        active: usize,
        mem: &[Vec<Vec<f32>>],
        store: &mut ModelStore,
    ) -> EngineResult<u64> {
        let mut cycles = 0u64;
        for w in &self.design.model_writes {
            match w {
                ModelWrite::Whole { model, src } => {
                    let m = store.model_mut(*model as usize);
                    debug_assert_eq!(m.len(), src.len());
                    for (k, loc) in src.iter().enumerate() {
                        m[k] = mem[0][loc.au as usize][loc.slot as usize];
                    }
                    cycles += (src.len() as u64).div_ceil(BUS_WORDS);
                }
                ModelWrite::Row { model, index, src } => {
                    // Validate-then-charge, mirroring `write_models`.
                    let mdesc = &self.design.models[*model as usize];
                    for t_mem in mem.iter().take(active) {
                        let row = t_mem[index.au as usize][index.slot as usize].round() as i64;
                        if row < 0 || row as usize >= mdesc.rows {
                            return Err(EngineError::RowOutOfRange {
                                model: *model,
                                row,
                                rows: mdesc.rows,
                            });
                        }
                    }
                    cycles += (active as u64 * src.len() as u64).div_ceil(MODEL_PORTS);
                    let m = store.model_mut(*model as usize);
                    for t_mem in mem.iter().take(active) {
                        let base = t_mem[index.au as usize][index.slot as usize].round() as usize
                            * mdesc.cols;
                        for (k, loc) in src.iter().enumerate() {
                            m[base + k] = t_mem[loc.au as usize][loc.slot as usize];
                        }
                    }
                }
            }
        }
        Ok(cycles)
    }

    /// Static per-batch cycle estimate (used by the compiler's performance
    /// estimator; tests pin it to the interpreter's accounting).
    pub fn estimated_batch_cycles(&self, active: usize) -> u64 {
        let d = &self.design;
        let mut c = d.program.per_tuple_cycles() + d.program.post_merge_cycles();
        if let MergePlan::Whole { slots, .. } = &d.merge {
            if active > 1 {
                c += slots.len() as u64 + (64 - (active as u64 - 1).leading_zeros() as u64);
            }
        }
        for m in &d.models {
            if m.broadcast_slots.is_some() {
                c += (m.elements() as u64).div_ceil(BUS_WORDS);
            }
        }
        for w in &d.model_writes {
            match w {
                ModelWrite::Whole { src, .. } => c += (src.len() as u64).div_ceil(BUS_WORDS),
                ModelWrite::Row { src, .. } => {
                    c += (active as u64 * src.len() as u64).div_ceil(MODEL_PORTS)
                }
            }
        }
        if self.gather_elems > 0 {
            c += (active as u64 * self.gather_elems).div_ceil(MODEL_PORTS);
        }
        c
    }
}

/// True when no op in `step` reads a scratchpad location that another op
/// in the same step writes — i.e. immediate write application is
/// indistinguishable from the hardware's read-before-write register-file
/// semantics. (Write-write collisions resolve in program order on both
/// paths, so only read-after-write forces staging. Scatter store writes
/// and Gather store reads happen in program order on both paths too.)
pub(crate) fn step_is_hazard_free(step: &Step, slots: usize) -> bool {
    let flat = |au: u16, slot: u16| au as usize * slots + slot as usize;
    let mut written: Vec<usize> = Vec::new();
    for op in &step.ops {
        match op {
            MicroOp::Alu { au, dst, .. } => written.push(flat(*au, *dst)),
            MicroOp::Gather { dst, .. } => written.extend(dst.iter().map(|l| flat(l.au, l.slot))),
            MicroOp::Scatter { .. } => {}
        }
    }
    let reads_written = |src: &Src| match src {
        Src::Slot(l) => written.contains(&flat(l.au, l.slot)),
        Src::Const(_) => false,
    };
    for op in &step.ops {
        let hazard = match op {
            MicroOp::Alu { a, b, .. } => reads_written(a) || reads_written(b),
            MicroOp::Gather { index, .. } => reads_written(index),
            MicroOp::Scatter { index, src, .. } => {
                reads_written(index) || src.iter().any(|l| written.contains(&flat(l.au, l.slot)))
            }
        };
        if hazard {
            return false;
        }
    }
    true
}

/// Structural validation of a design's program.
fn validate(d: &EngineDesign) -> EngineResult<()> {
    let aus = d.aus_per_thread();
    let check_loc = |loc: &Loc| -> EngineResult<()> {
        if loc.au >= aus {
            return Err(EngineError::BadAu {
                au: loc.au,
                aus_per_thread: aus,
            });
        }
        if loc.slot >= d.slots_per_au {
            return Err(EngineError::BadSlot {
                slot: loc.slot,
                slots: d.slots_per_au,
            });
        }
        Ok(())
    };
    let check_src = |src: &Src| -> EngineResult<()> {
        if let Src::Slot(l) = src {
            check_loc(l)?;
        }
        Ok(())
    };
    for (si, step) in d
        .program
        .per_tuple
        .iter()
        .chain(&d.program.post_merge)
        .enumerate()
    {
        let mut used: Vec<u16> = Vec::new();
        for op in &step.ops {
            for au in op.occupied_aus() {
                if au >= aus {
                    return Err(EngineError::BadAu {
                        au,
                        aus_per_thread: aus,
                    });
                }
                if used.contains(&au) {
                    return Err(EngineError::AuConflict { step: si, au });
                }
                used.push(au);
            }
            match op {
                MicroOp::Alu {
                    au,
                    op: alu,
                    a,
                    b,
                    dst,
                } => {
                    check_src(a)?;
                    check_src(b)?;
                    check_loc(&Loc::new(*au, *dst))?;
                    if *alu != AluOp::Mov {
                        for s in [a, b] {
                            if let Src::Slot(l) = s {
                                if l.ac() != au / AUS_PER_AC {
                                    return Err(EngineError::CrossClusterRead {
                                        step: si,
                                        au: *au,
                                        src_au: l.au,
                                    });
                                }
                            }
                        }
                    }
                }
                MicroOp::Gather { model, index, dst } => {
                    if *model as usize >= d.models.len() {
                        return Err(EngineError::BadModel(*model));
                    }
                    check_src(index)?;
                    for l in dst {
                        check_loc(l)?;
                    }
                }
                MicroOp::Scatter { model, index, src } => {
                    if *model as usize >= d.models.len() {
                        return Err(EngineError::BadModel(*model));
                    }
                    check_src(index)?;
                    for l in src {
                        check_loc(l)?;
                    }
                }
            }
        }
        let movs = step.cross_cluster_movs();
        if movs > d.bus_lanes as usize {
            return Err(EngineError::BusOversubscribed {
                step: si,
                movs,
                lanes: d.bus_lanes as usize,
            });
        }
    }
    for (loc, _) in &d.meta {
        check_loc(loc)?;
    }
    for loc in d.input_slots.iter().chain(&d.output_slots) {
        check_loc(loc)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-scheduled 2-feature linear regression:
    ///   per-tuple:  p_k = w_k * x_k; s = p_0 + p_1; er = s − y; g_k = er·x_k
    ///   merge:      Σ g over threads
    ///   post-merge: w_k ← w_k − lr·g_k
    /// Slot map (per AU): 0 = x_k, 1 = w_k, 2 = p/er/g scratch, 3 = y,
    /// 4 = updated w.
    fn linreg_design(num_threads: u16) -> EngineDesign {
        let alu = |au, op, a, b, dst| MicroOp::Alu { au, op, a, b, dst };
        let s = |au, slot| Src::Slot(Loc::new(au, slot));
        let per_tuple = vec![
            Step {
                ops: vec![
                    alu(0, AluOp::Mul, s(0, 0), s(0, 1), 2),
                    alu(1, AluOp::Mul, s(1, 0), s(1, 1), 2),
                ],
            },
            Step {
                ops: vec![alu(0, AluOp::Add, s(0, 2), s(1, 2), 2)],
            },
            Step {
                ops: vec![alu(0, AluOp::Sub, s(0, 2), s(0, 3), 2)],
            },
            Step {
                ops: vec![
                    alu(0, AluOp::Mul, s(0, 2), s(0, 0), 2),
                    alu(1, AluOp::Mul, s(0, 2), s(1, 0), 2),
                ],
            },
        ];
        let lr = 0.05f32;
        let post_merge = vec![
            Step {
                ops: vec![
                    alu(0, AluOp::Mul, Src::Const(lr), s(0, 2), 2),
                    alu(1, AluOp::Mul, Src::Const(lr), s(1, 2), 2),
                ],
            },
            Step {
                ops: vec![
                    alu(0, AluOp::Sub, s(0, 1), s(0, 2), 4),
                    alu(1, AluOp::Sub, s(1, 1), s(1, 2), 4),
                ],
            },
        ];
        EngineDesign {
            num_threads,
            acs_per_thread: 1,
            slots_per_au: 8,
            bus_lanes: 1,
            program: EngineProgram {
                per_tuple,
                post_merge,
            },
            input_slots: vec![Loc::new(0, 0), Loc::new(1, 0)],
            output_slots: vec![Loc::new(0, 3)],
            meta: vec![],
            models: vec![ModelDesc {
                name: "w".into(),
                rows: 1,
                cols: 2,
                broadcast_slots: Some(vec![Loc::new(0, 1), Loc::new(1, 1)]),
            }],
            merge: MergePlan::Whole {
                op: MergeOp::Sum,
                slots: vec![Loc::new(0, 2), Loc::new(1, 2)],
            },
            model_writes: vec![ModelWrite::Whole {
                model: 0,
                src: vec![Loc::new(0, 4), Loc::new(1, 4)],
            }],
            convergence: ConvergenceCheck::Epochs(1),
        }
    }

    /// Software reference for the same batched GD step.
    fn reference_epoch(tuples: &[Vec<f32>], w: &mut [f32; 2], threads: usize, lr: f32) {
        for batch in tuples.chunks(threads) {
            let mut g = [0.0f32; 2];
            for t in batch {
                let s = w[0] * t[0] + w[1] * t[1];
                let er = s - t[2];
                g[0] += er * t[0];
                g[1] += er * t[1];
            }
            w[0] -= lr * g[0];
            w[1] -= lr * g[1];
        }
    }

    fn make_tuples(n: usize) -> Vec<Vec<f32>> {
        // y = 2x0 − x1 with deterministic inputs.
        (0..n)
            .map(|k| {
                let x0 = (k % 7) as f32 * 0.25;
                let x1 = (k % 5) as f32 * 0.5 - 1.0;
                vec![x0, x1, 2.0 * x0 - x1]
            })
            .collect()
    }

    fn batch_of(tuples: &[Vec<f32>]) -> TupleBatch {
        TupleBatch::from_rows(tuples[0].len(), tuples)
    }

    /// Test source yielding a fixed sequence of batches per scan — used to
    /// prove batch boundaries are invisible to training.
    struct ChunkedSource {
        batches: Vec<TupleBatch>,
        next: usize,
    }

    impl ChunkedSource {
        fn new(tuples: &[Vec<f32>], chunk: usize) -> ChunkedSource {
            ChunkedSource {
                batches: tuples.chunks(chunk).map(batch_of).collect(),
                next: 0,
            }
        }
    }

    impl TupleSource for ChunkedSource {
        fn width(&self) -> usize {
            self.batches[0].width()
        }
        fn next_batch(&mut self) -> Result<Option<&TupleBatch>, dana_storage::SourceError> {
            if self.next >= self.batches.len() {
                return Ok(None);
            }
            self.next += 1;
            Ok(Some(&self.batches[self.next - 1]))
        }
        fn rewind(&mut self) -> Result<(), dana_storage::SourceError> {
            self.next = 0;
            Ok(())
        }
    }

    #[test]
    fn engine_matches_software_reference_single_thread() {
        let design = linreg_design(1);
        let engine = ExecutionEngine::new(design.clone()).unwrap();
        let tuples = make_tuples(40);
        let mut store = ModelStore::new(&design, vec![vec![0.0, 0.0]]).unwrap();
        engine
            .run_training_batch(&batch_of(&tuples), &mut store)
            .unwrap();
        let mut w = [0.0f32; 2];
        reference_epoch(&tuples, &mut w, 1, 0.05);
        let got = store.model(0);
        assert!((got[0] - w[0]).abs() < 1e-5, "{got:?} vs {w:?}");
        assert!((got[1] - w[1]).abs() < 1e-5);
    }

    #[test]
    fn engine_matches_software_reference_multi_thread() {
        for threads in [2u16, 4, 8] {
            let design = linreg_design(threads);
            let engine = ExecutionEngine::new(design.clone()).unwrap();
            let tuples = make_tuples(50); // non-divisible: final partial group
            let mut store = ModelStore::new(&design, vec![vec![0.1, -0.1]]).unwrap();
            let stats = engine
                .run_training_batch(&batch_of(&tuples), &mut store)
                .unwrap();
            let mut w = [0.1f32, -0.1];
            reference_epoch(&tuples, &mut w, threads as usize, 0.05);
            let got = store.model(0);
            assert!(
                (got[0] - w[0]).abs() < 1e-4,
                "threads {threads}: {got:?} vs {w:?}"
            );
            assert!((got[1] - w[1]).abs() < 1e-4);
            assert_eq!(stats.tuples_processed, 50);
            assert_eq!(stats.batches, 50u64.div_ceil(threads as u64));
        }
    }

    #[test]
    fn training_reduces_loss() {
        let design = linreg_design(4);
        let mut design = design;
        design.convergence = ConvergenceCheck::Epochs(30);
        let engine = ExecutionEngine::new(design.clone()).unwrap();
        let tuples = make_tuples(64);
        let mut store = ModelStore::new(&design, vec![vec![0.0, 0.0]]).unwrap();
        engine
            .run_training_batch(&batch_of(&tuples), &mut store)
            .unwrap();
        let w = store.model(0);
        // True model is (2, −1).
        assert!((w[0] - 2.0).abs() < 0.1, "w = {w:?}");
        assert!((w[1] + 1.0).abs() < 0.1, "w = {w:?}");
    }

    #[test]
    fn more_threads_fewer_cycles() {
        let tuples = make_tuples(256);
        let mut cycles = Vec::new();
        for threads in [1u16, 4, 16] {
            let design = linreg_design(threads);
            let engine = ExecutionEngine::new(design.clone()).unwrap();
            let mut store = ModelStore::new(&design, vec![vec![0.0, 0.0]]).unwrap();
            let stats = engine
                .run_training_batch(&batch_of(&tuples), &mut store)
                .unwrap();
            cycles.push(stats.cycles);
        }
        assert!(cycles[1] < cycles[0], "{cycles:?}");
        assert!(cycles[2] < cycles[1], "{cycles:?}");
    }

    #[test]
    fn batch_boundaries_are_invisible() {
        // The same 50-tuple stream delivered as one batch, page-sized
        // chunks, and pathological 1-row batches must train identically to
        // the reference rows path — bit for bit, stats included.
        let tuples = make_tuples(50);
        for threads in [1u16, 4, 8] {
            let design = linreg_design(threads);
            let engine = ExecutionEngine::new(design.clone()).unwrap();
            let mut ref_store = ModelStore::new(&design, vec![vec![0.1, -0.1]]).unwrap();
            let ref_stats = engine.run_training_rows(&tuples, &mut ref_store).unwrap();
            for chunk in [1usize, 3, 7, 50] {
                let mut source = ChunkedSource::new(&tuples, chunk);
                let mut store = ModelStore::new(&design, vec![vec![0.1, -0.1]]).unwrap();
                let stats = engine.run_training(&mut source, &mut store).unwrap();
                assert_eq!(store, ref_store, "threads {threads}, chunk {chunk}");
                assert_eq!(stats, ref_stats, "threads {threads}, chunk {chunk}");
            }
        }
    }

    #[test]
    fn multi_epoch_streaming_rewinds_the_source() {
        let mut design = linreg_design(4);
        design.convergence = ConvergenceCheck::Epochs(5);
        let engine = ExecutionEngine::new(design.clone()).unwrap();
        let tuples = make_tuples(30);
        let mut ref_store = ModelStore::new(&design, vec![vec![0.0, 0.0]]).unwrap();
        engine.run_training_rows(&tuples, &mut ref_store).unwrap();
        let mut source = ChunkedSource::new(&tuples, 4);
        let mut store = ModelStore::new(&design, vec![vec![0.0, 0.0]]).unwrap();
        let stats = engine.run_training(&mut source, &mut store).unwrap();
        assert_eq!(stats.epochs_run, 5);
        assert_eq!(stats.tuples_processed, 150);
        assert_eq!(store, ref_store);
    }

    #[test]
    fn stats_match_static_estimate() {
        let design = linreg_design(4);
        let engine = ExecutionEngine::new(design.clone()).unwrap();
        let tuples = make_tuples(16); // 4 full groups
        let mut store = ModelStore::new(&design, vec![vec![0.0, 0.0]]).unwrap();
        let stats = engine
            .run_training_batch(&batch_of(&tuples), &mut store)
            .unwrap();
        let per_batch = engine.estimated_batch_cycles(4);
        assert_eq!(stats.cycles, 4 * per_batch);
    }

    #[test]
    fn gather_scatter_round_trip() {
        // One AU; gather row j of a 4×2 model, add 1 to each element,
        // scatter it back.
        let alu = |au, op, a, b, dst| MicroOp::Alu { au, op, a, b, dst };
        let s = |au, slot| Src::Slot(Loc::new(au, slot));
        let design = EngineDesign {
            num_threads: 1,
            acs_per_thread: 1,
            slots_per_au: 8,
            bus_lanes: 1,
            program: EngineProgram {
                per_tuple: vec![
                    Step {
                        ops: vec![MicroOp::Gather {
                            model: 0,
                            index: s(0, 0),
                            dst: vec![Loc::new(0, 1), Loc::new(0, 2)],
                        }],
                    },
                    Step {
                        ops: vec![alu(0, AluOp::Add, s(0, 1), Src::Const(1.0), 1)],
                    },
                    Step {
                        ops: vec![alu(0, AluOp::Add, s(0, 2), Src::Const(1.0), 2)],
                    },
                    Step {
                        ops: vec![MicroOp::Scatter {
                            model: 0,
                            index: s(0, 0),
                            src: vec![Loc::new(0, 1), Loc::new(0, 2)],
                        }],
                    },
                ],
                post_merge: vec![],
            },
            input_slots: vec![Loc::new(0, 0)],
            output_slots: vec![],
            meta: vec![],
            models: vec![ModelDesc {
                name: "L".into(),
                rows: 4,
                cols: 2,
                broadcast_slots: None,
            }],
            merge: MergePlan::None,
            model_writes: vec![],
            convergence: ConvergenceCheck::Epochs(1),
        };
        let engine = ExecutionEngine::new(design.clone()).unwrap();
        let init = vec![(0..8).map(|v| v as f32).collect::<Vec<f32>>()];
        let mut store = ModelStore::new(&design, init).unwrap();
        // Touch rows 2 and 0.
        engine
            .run_training_batch(&batch_of(&[vec![2.0], vec![0.0]]), &mut store)
            .unwrap();
        assert_eq!(store.model(0), &[1.0, 2.0, 2.0, 3.0, 5.0, 6.0, 6.0, 7.0]);
    }

    #[test]
    fn gather_out_of_range_is_an_error() {
        let design = EngineDesign {
            num_threads: 1,
            acs_per_thread: 1,
            slots_per_au: 4,
            bus_lanes: 1,
            program: EngineProgram {
                per_tuple: vec![Step {
                    ops: vec![MicroOp::Gather {
                        model: 0,
                        index: Src::Slot(Loc::new(0, 0)),
                        dst: vec![Loc::new(0, 1)],
                    }],
                }],
                post_merge: vec![],
            },
            input_slots: vec![Loc::new(0, 0)],
            output_slots: vec![],
            meta: vec![],
            models: vec![ModelDesc {
                name: "L".into(),
                rows: 2,
                cols: 1,
                broadcast_slots: None,
            }],
            merge: MergePlan::None,
            model_writes: vec![],
            convergence: ConvergenceCheck::Epochs(1),
        };
        let engine = ExecutionEngine::new(design.clone()).unwrap();
        let mut store = ModelStore::zeroed(&design);
        let err = engine
            .run_training_batch(&batch_of(&[vec![5.0]]), &mut store)
            .unwrap_err();
        assert!(matches!(err, EngineError::RowOutOfRange { .. }));
    }

    #[test]
    fn validation_catches_au_conflict() {
        let mut design = linreg_design(1);
        design.program.per_tuple[0].ops.push(MicroOp::Alu {
            au: 0,
            op: AluOp::Add,
            a: Src::Const(0.0),
            b: Src::Const(0.0),
            dst: 5,
        });
        assert!(matches!(
            ExecutionEngine::new(design),
            Err(EngineError::AuConflict { .. })
        ));
    }

    #[test]
    fn validation_catches_cross_cluster_read() {
        let mut design = linreg_design(1);
        design.acs_per_thread = 2;
        // AU 0 (cluster 0) adding from AU 9 (cluster 1) without a Mov.
        design.program.per_tuple[0].ops[0] = MicroOp::Alu {
            au: 0,
            op: AluOp::Add,
            a: Src::Slot(Loc::new(9, 0)),
            b: Src::Const(0.0),
            dst: 0,
        };
        assert!(matches!(
            ExecutionEngine::new(design),
            Err(EngineError::CrossClusterRead { .. })
        ));
    }

    #[test]
    fn validation_catches_bus_oversubscription() {
        let mut design = linreg_design(1);
        design.acs_per_thread = 2;
        design.bus_lanes = 1;
        design.program.per_tuple[0] = Step {
            ops: vec![
                MicroOp::Alu {
                    au: 0,
                    op: AluOp::Mov,
                    a: Src::Slot(Loc::new(8, 0)),
                    b: Src::Const(0.0),
                    dst: 0,
                },
                MicroOp::Alu {
                    au: 1,
                    op: AluOp::Mov,
                    a: Src::Slot(Loc::new(9, 0)),
                    b: Src::Const(0.0),
                    dst: 0,
                },
            ],
        };
        assert!(matches!(
            ExecutionEngine::new(design),
            Err(EngineError::BusOversubscribed { .. })
        ));
    }

    #[test]
    fn validation_catches_bad_slot_and_au() {
        let mut design = linreg_design(1);
        design.program.per_tuple[0].ops[0] = MicroOp::Alu {
            au: 0,
            op: AluOp::Add,
            a: Src::Slot(Loc::new(0, 99)),
            b: Src::Const(0.0),
            dst: 0,
        };
        assert!(matches!(
            ExecutionEngine::new(design),
            Err(EngineError::BadSlot { .. })
        ));
        let mut design = linreg_design(1);
        design.program.per_tuple[0].ops[0] = MicroOp::Alu {
            au: 42,
            op: AluOp::Add,
            a: Src::Const(0.0),
            b: Src::Const(0.0),
            dst: 0,
        };
        assert!(matches!(
            ExecutionEngine::new(design),
            Err(EngineError::BadAu { .. })
        ));
    }

    #[test]
    fn tuple_width_checked() {
        let design = linreg_design(1);
        let engine = ExecutionEngine::new(design.clone()).unwrap();
        let mut store = ModelStore::zeroed(&design);
        let err = engine
            .run_training_batch(&batch_of(&[vec![1.0, 2.0]]), &mut store)
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::TupleWidth {
                got: 2,
                expected: 3
            }
        ));
    }

    #[test]
    fn convergence_condition_stops_early() {
        // Condition slot: constant 1.0 written every batch → converges after
        // epoch 1 despite a 100-epoch cap.
        let mut design = linreg_design(1);
        design.program.post_merge.push(Step {
            ops: vec![MicroOp::Alu {
                au: 0,
                op: AluOp::Mov,
                a: Src::Const(1.0),
                b: Src::Const(0.0),
                dst: 6,
            }],
        });
        design.convergence = ConvergenceCheck::Condition {
            slot: Loc::new(0, 6),
            max_epochs: 100,
        };
        let engine = ExecutionEngine::new(design.clone()).unwrap();
        let mut store = ModelStore::new(&design, vec![vec![0.0, 0.0]]).unwrap();
        let stats = engine
            .run_training_batch(&batch_of(&make_tuples(8)), &mut store)
            .unwrap();
        assert_eq!(stats.epochs_run, 1);
        assert!(stats.converged_early);
    }

    #[test]
    fn design_blob_round_trips() {
        let design = linreg_design(4);
        let blob = design.to_blob();
        let back = EngineDesign::from_blob(&blob).unwrap();
        assert_eq!(design, back);
    }

    #[test]
    fn model_store_shape_checked() {
        let design = linreg_design(1);
        assert!(ModelStore::new(&design, vec![vec![0.0; 3]]).is_err());
        assert!(ModelStore::new(&design, vec![]).is_err());
        assert!(ModelStore::new(&design, vec![vec![0.0; 2]]).is_ok());
    }
}
