//! Pluggable execution backends over the deploy-time-lowered program.
//!
//! The paper's argument is that the right execution substrate depends on
//! the workload: offloading to the FPGA pays off only once the scan is
//! large enough to amortize configuration and per-epoch orchestration
//! overhead. This module makes the substrate a first-class choice by
//! putting a small trait, [`ExecutionBackend`], over the lowered SoA
//! program with two implementations:
//!
//! * [`FpgaBackend`] — the existing simulated-FPGA tier. Cycle-model
//!   semantics are untouched: it is exactly
//!   [`ExecutionEngine::run_training`], and its cost is the simulated
//!   cycle count (converted to seconds by the caller's clock model).
//! * [`CpuBackend`] — a native CPU tier that executes the **same**
//!   [`LoweredProgram`](crate::lowered::LoweredProgram) through the same
//!   slot-major `buf[word * lanes + l]` lockstep lane loops (op dispatch
//!   hoisted out of the lane loop, LRMF's sequential gather/scatter path
//!   preserved), but whose cost is **measured wall time**. Because both
//!   backends run the identical per-epoch code over the identical SoA
//!   workspace, their trained models and cycle counters are bit-identical
//!   by construction — the differential suite holds them to it.
//!
//! The distinction is *what the number means*: the FPGA tier's
//! [`EngineStats::cycles`] model a 150 MHz accelerator fed by Striders;
//! the CPU tier's [`BackendRun::wall_seconds`] is a stopwatch around the
//! actual host loop. The backend advisor in `dana-core` compares the two
//! to pick a substrate per query.

use std::sync::Arc;
use std::time::Instant;

use dana_storage::TupleSource;

use crate::engine::{EngineStats, ExecutionEngine, ModelStore};
use crate::error::{EngineError, EngineResult};
use crate::fault::{run_training_guarded, FaultEvents, RunGuard};

/// Which execution substrate ran (or should run) a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BackendKind {
    /// The simulated-FPGA tier: cycle-model cost, Strider-fed pipeline.
    Fpga,
    /// The native CPU tier: same lowered program, wall-clock cost.
    Cpu,
}

impl BackendKind {
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Fpga => "fpga",
            BackendKind::Cpu => "cpu",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of one backend training run: the engine's counters plus,
/// for the CPU tier, the measured wall time of the training loop.
///
/// `stats` are identical across backends (same code, same workspace);
/// `wall_seconds` is `Some` only for backends that execute natively —
/// simulated tiers have no meaningful wall time to report and leave it
/// `None` so the two units can never be confused downstream.
#[derive(Debug, Clone, Copy)]
pub struct BackendRun {
    pub stats: EngineStats,
    pub wall_seconds: Option<f64>,
}

/// A pluggable execution substrate for the lowered training program.
///
/// Implementations share the lowered SoA executor and differ only in how
/// their cost is accounted (simulated cycles vs measured wall time) and
/// in which system resources a run occupies (the FPGA tier holds an
/// accelerator lease; the CPU tier bypasses the pool entirely).
pub trait ExecutionBackend: Send + Sync {
    /// Which substrate this is.
    fn kind(&self) -> BackendKind;

    /// Runs training to convergence (or the epoch cap) from a streaming
    /// source, exactly like [`ExecutionEngine::run_training`].
    fn run_training(
        &self,
        source: &mut dyn TupleSource,
        store: &mut ModelStore,
    ) -> EngineResult<BackendRun>;

    /// The engine whose lowered program this backend executes.
    fn engine(&self) -> &ExecutionEngine;

    /// Guarded variant of [`ExecutionBackend::run_training`]: the same
    /// epoch loop, with cooperative cancellation, deterministic fault
    /// injection, and bounded-backoff retry at epoch boundaries (see
    /// [`run_training_guarded`]). An undisturbed guarded run is
    /// bit-identical to the plain one.
    fn run_training_guarded(
        &self,
        source: &mut dyn TupleSource,
        store: &mut ModelStore,
        guard: &RunGuard<'_>,
    ) -> EngineResult<(BackendRun, FaultEvents)> {
        let wants_wall = self.kind() == BackendKind::Cpu;
        let start = Instant::now();
        let run = run_training_guarded(self.engine(), source, store, guard)?;
        Ok((
            BackendRun {
                stats: run.stats,
                wall_seconds: wants_wall.then(|| start.elapsed().as_secs_f64()),
            },
            run.events,
        ))
    }
}

/// The simulated-FPGA tier behind the [`ExecutionBackend`] trait —
/// a zero-cost wrapper over [`ExecutionEngine::run_training`].
#[derive(Debug, Clone)]
pub struct FpgaBackend {
    engine: Arc<ExecutionEngine>,
}

impl FpgaBackend {
    pub fn new(engine: Arc<ExecutionEngine>) -> FpgaBackend {
        FpgaBackend { engine }
    }
}

impl ExecutionBackend for FpgaBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Fpga
    }

    fn run_training(
        &self,
        source: &mut dyn TupleSource,
        store: &mut ModelStore,
    ) -> EngineResult<BackendRun> {
        let stats = self.engine.run_training(source, store)?;
        Ok(BackendRun {
            stats,
            wall_seconds: None,
        })
    }

    fn engine(&self) -> &ExecutionEngine {
        &self.engine
    }
}

/// The native CPU tier: the same lowered program, the same epoch loop,
/// timed with a stopwatch instead of the cycle model.
///
/// The run is the identical [`TrainingSession`](crate::TrainingSession)
/// epoch loop the FPGA tier uses, so models and counters are
/// bit-identical; the only addition is the [`Instant`] around it. The
/// SoA lane loops it executes are the host's SIMD path — `rustc`
/// auto-vectorizes the per-op lane loops because the op match is hoisted
/// out of them (see `lowered::lockstep_lanes`).
#[derive(Debug, Clone)]
pub struct CpuBackend {
    engine: Arc<ExecutionEngine>,
}

impl CpuBackend {
    pub fn new(engine: Arc<ExecutionEngine>) -> CpuBackend {
        CpuBackend { engine }
    }
}

impl ExecutionBackend for CpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cpu
    }

    fn run_training(
        &self,
        source: &mut dyn TupleSource,
        store: &mut ModelStore,
    ) -> EngineResult<BackendRun> {
        let start = Instant::now();
        let mut session = self.engine.training_session();
        let max_epochs = self.engine.design().convergence.max_epochs();
        let mut epochs_run = 0u32;
        let mut converged_early = false;
        for epoch in 0..max_epochs {
            if epoch > 0 {
                source.rewind().map_err(EngineError::from)?;
            }
            let converged = session.run_epoch(source, store)?;
            epochs_run += 1;
            if converged {
                converged_early = true;
                break;
            }
        }
        let stats = session.finish(epochs_run, converged_early);
        Ok(BackendRun {
            stats,
            wall_seconds: Some(start.elapsed().as_secs_f64()),
        })
    }

    fn engine(&self) -> &ExecutionEngine {
        &self.engine
    }
}

/// One-time microbenchmark calibrating the CPU tier's throughput:
/// measures lowered **lane-ops per second** (one lane-op = one SoA
/// inner-loop element) on a small synthetic dense design. The backend
/// advisor divides a program's per-tuple lane-op count by this rate to
/// estimate CPU seconds per tuple.
///
/// The synthetic design is dense (lockstep path), multiply/add-heavy,
/// and wide enough (16 lanes) to hit the vectorized loops — the same
/// shape the real zoo programs lower to.
pub fn calibrate_cpu_lane_rate() -> f64 {
    use crate::engine::{ConvergenceCheck, EngineDesign, MergePlan, ModelDesc, ModelWrite};
    use crate::isa::{AluOp, EngineProgram, Loc, MicroOp, Src, Step};
    use dana_dsl::MergeOp;
    use dana_storage::{OneBatchSource, TupleBatch};

    let alu = |au, op, a, b, dst| MicroOp::Alu { au, op, a, b, dst };
    let s = |au, slot| Src::Slot(Loc::new(au, slot));
    // Per-tuple: p = w*x; er = p − y; g = er*x — the linear-model inner
    // loop, one AU, three steps. Merge sums g; post-merge applies it.
    let design = EngineDesign {
        num_threads: 16,
        acs_per_thread: 1,
        slots_per_au: 8,
        bus_lanes: 1,
        program: EngineProgram {
            per_tuple: vec![
                Step {
                    ops: vec![alu(0, AluOp::Mul, s(0, 0), s(0, 1), 2)],
                },
                Step {
                    ops: vec![alu(0, AluOp::Sub, s(0, 2), s(0, 3), 2)],
                },
                Step {
                    ops: vec![alu(0, AluOp::Mul, s(0, 2), s(0, 0), 2)],
                },
            ],
            post_merge: vec![Step {
                ops: vec![alu(0, AluOp::Sub, s(0, 1), s(0, 2), 4)],
            }],
        },
        input_slots: vec![Loc::new(0, 0)],
        output_slots: vec![Loc::new(0, 3)],
        meta: vec![],
        models: vec![ModelDesc {
            name: "w".into(),
            rows: 1,
            cols: 1,
            broadcast_slots: Some(vec![Loc::new(0, 1)]),
        }],
        merge: MergePlan::Whole {
            op: MergeOp::Sum,
            slots: vec![Loc::new(0, 2)],
        },
        model_writes: vec![ModelWrite::Whole {
            model: 0,
            src: vec![Loc::new(0, 4)],
        }],
        convergence: ConvergenceCheck::Epochs(1),
    };
    let engine = Arc::new(ExecutionEngine::new(design.clone()).expect("calibration design"));
    let lane_ops_per_tuple = engine.lowered().per_tuple_lane_ops() as f64;
    let backend = CpuBackend::new(engine);

    let tuples: Vec<Vec<f32>> = (0..32_768)
        .map(|k| vec![(k % 97) as f32 * 0.01, (k % 31) as f32 * 0.1])
        .collect();
    let batch = TupleBatch::from_rows(2, &tuples);
    // Warm up once, then take the best of three runs so a scheduler
    // hiccup can't poison the profile for the whole session.
    let mut best = f64::INFINITY;
    for round in 0..4 {
        let mut store = ModelStore::zeroed(&design);
        let run = backend
            .run_training(&mut OneBatchSource::new(&batch), &mut store)
            .expect("calibration run");
        let wall = run.wall_seconds.expect("cpu tier measures wall time");
        if round > 0 && wall > 0.0 {
            best = best.min(wall);
        }
    }
    let total_lane_ops = lane_ops_per_tuple * tuples.len() as f64;
    // Clamp to a sane floor so a pathological measurement (e.g. a clock
    // with no sub-millisecond resolution) still yields a usable rate.
    (total_lane_ops / best).max(1.0e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ConvergenceCheck, EngineDesign, MergePlan, ModelDesc, ModelWrite};
    use crate::isa::{AluOp, EngineProgram, Loc, MicroOp, Src, Step};
    use dana_dsl::MergeOp;
    use dana_storage::{OneBatchSource, TupleBatch};

    fn linreg_design(num_threads: u16) -> EngineDesign {
        let alu = |au, op, a, b, dst| MicroOp::Alu { au, op, a, b, dst };
        let s = |au, slot| Src::Slot(Loc::new(au, slot));
        EngineDesign {
            num_threads,
            acs_per_thread: 1,
            slots_per_au: 8,
            bus_lanes: 1,
            program: EngineProgram {
                per_tuple: vec![
                    Step {
                        ops: vec![alu(0, AluOp::Mul, s(0, 0), s(0, 1), 2)],
                    },
                    Step {
                        ops: vec![alu(0, AluOp::Sub, s(0, 2), s(0, 3), 2)],
                    },
                    Step {
                        ops: vec![alu(0, AluOp::Mul, s(0, 2), s(0, 0), 2)],
                    },
                ],
                post_merge: vec![
                    Step {
                        ops: vec![alu(0, AluOp::Mul, Src::Const(0.05), s(0, 2), 2)],
                    },
                    Step {
                        ops: vec![alu(0, AluOp::Sub, s(0, 1), s(0, 2), 4)],
                    },
                ],
            },
            input_slots: vec![Loc::new(0, 0)],
            output_slots: vec![Loc::new(0, 3)],
            meta: vec![],
            models: vec![ModelDesc {
                name: "w".into(),
                rows: 1,
                cols: 1,
                broadcast_slots: Some(vec![Loc::new(0, 1)]),
            }],
            merge: MergePlan::Whole {
                op: MergeOp::Sum,
                slots: vec![Loc::new(0, 2)],
            },
            model_writes: vec![ModelWrite::Whole {
                model: 0,
                src: vec![Loc::new(0, 4)],
            }],
            convergence: ConvergenceCheck::Epochs(3),
        }
    }

    fn tuples(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|k| {
                let x = (k % 13) as f32 * 0.2 - 1.0;
                vec![x, 1.5 * x]
            })
            .collect()
    }

    #[test]
    fn cpu_and_fpga_backends_are_bit_identical() {
        for threads in [1u16, 4, 16] {
            let design = linreg_design(threads);
            let engine = Arc::new(ExecutionEngine::new(design.clone()).unwrap());
            let batch = TupleBatch::from_rows(2, tuples(53));
            let fpga = FpgaBackend::new(engine.clone());
            let cpu = CpuBackend::new(engine);
            let mut fpga_store = ModelStore::zeroed(&design);
            let fpga_run = fpga
                .run_training(&mut OneBatchSource::new(&batch), &mut fpga_store)
                .unwrap();
            let mut cpu_store = ModelStore::zeroed(&design);
            let cpu_run = cpu
                .run_training(&mut OneBatchSource::new(&batch), &mut cpu_store)
                .unwrap();
            assert_eq!(fpga_store, cpu_store, "threads {threads}");
            assert_eq!(fpga_run.stats, cpu_run.stats, "threads {threads}");
        }
    }

    #[test]
    fn wall_time_is_cpu_only() {
        let design = linreg_design(4);
        let engine = Arc::new(ExecutionEngine::new(design.clone()).unwrap());
        let batch = TupleBatch::from_rows(2, tuples(20));
        let fpga = FpgaBackend::new(engine.clone());
        let cpu = CpuBackend::new(engine);
        assert_eq!(fpga.kind(), BackendKind::Fpga);
        assert_eq!(cpu.kind(), BackendKind::Cpu);
        let mut store = ModelStore::zeroed(&design);
        let run = fpga
            .run_training(&mut OneBatchSource::new(&batch), &mut store)
            .unwrap();
        assert!(
            run.wall_seconds.is_none(),
            "simulated tier has no wall time"
        );
        let mut store = ModelStore::zeroed(&design);
        let run = cpu
            .run_training(&mut OneBatchSource::new(&batch), &mut store)
            .unwrap();
        assert!(run.wall_seconds.is_some_and(|w| w >= 0.0));
    }

    #[test]
    fn calibration_yields_a_positive_rate() {
        let rate = calibrate_cpu_lane_rate();
        assert!(rate >= 1.0e6, "lane rate {rate} implausibly low");
        assert!(rate.is_finite());
    }

    #[test]
    fn backend_kind_names() {
        assert_eq!(BackendKind::Fpga.name(), "fpga");
        assert_eq!(BackendKind::Cpu.name(), "cpu");
        assert_eq!(format!("{}", BackendKind::Cpu), "cpu");
        let json = serde_json::to_string(&BackendKind::Fpga).unwrap();
        let back: BackendKind = serde_json::from_str(&json).unwrap();
        assert_eq!(back, BackendKind::Fpga);
    }
}
