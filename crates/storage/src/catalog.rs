//! The RDBMS catalog: tables plus deployed accelerator artifacts.
//!
//! "DAnA stores accelerator metadata (Strider and execution engine
//! instruction schedules) in the RDBMS's catalog along with the name of a
//! UDF to be invoked from the query. ... the RDBMS catalog is shared by the
//! database engine and the FPGA." (§3, Fig. 2)
//!
//! The catalog keeps accelerator artifacts *opaque* (encoded instruction
//! words and a serialized design blob) so this crate does not depend on the
//! compiler; the DAnA runtime deserializes them at query time.

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use crate::error::{StorageError, StorageResult};
use crate::heap::HeapFile;
use crate::HeapId;

/// A catalog-attached cache slot for the runtime artifact built from an
/// accelerator's opaque blobs at DEPLOY time (the validated, lowered
/// execution engine). Like the blobs themselves, the cached value is
/// opaque to this crate (`Any`), keeping storage free of an
/// engine/compiler dependency; the DAnA runtime downcasts it.
///
/// The slot uses interior mutability so the query path can populate it
/// under the catalog's *read* lock, and it is shared by `clone` — every
/// snapshot of the entry sees the same cached engine. It is deliberately
/// non-persistent: serialization writes nothing and deserialization yields
/// an empty slot (the artifact is rebuilt from the design blob on first
/// use), and it never participates in entry equality.
#[derive(Clone, Default)]
pub struct RuntimeCache(Arc<RwLock<Option<Arc<dyn Any + Send + Sync>>>>);

impl RuntimeCache {
    /// The cached artifact, if one has been installed.
    pub fn get(&self) -> Option<Arc<dyn Any + Send + Sync>> {
        match self.0.read() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Installs the artifact. First write wins: concurrent builders race
    /// benignly and everyone converges on one shared value.
    pub fn set(&self, value: Arc<dyn Any + Send + Sync>) {
        let mut g = match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if g.is_none() {
            *g = Some(value);
        }
    }

    /// Replaces the artifact unconditionally (last write wins). The slot
    /// for *results* that supersede each other — a re-trained model
    /// replaces the previous one — where [`RuntimeCache::set`]'s
    /// first-write-wins semantics would pin the stalest value instead.
    pub fn store(&self, value: Arc<dyn Any + Send + Sync>) {
        let mut g = match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *g = Some(value);
    }

    /// Empties the slot (invalidation).
    pub fn clear(&self) {
        let mut g = match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *g = None;
    }

    pub fn is_primed(&self) -> bool {
        self.get().is_some()
    }
}

impl std::fmt::Debug for RuntimeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RuntimeCache({})",
            if self.is_primed() { "primed" } else { "empty" }
        )
    }
}

/// Cache state never participates in catalog-entry equality.
impl PartialEq for RuntimeCache {
    fn eq(&self, _other: &RuntimeCache) -> bool {
        true
    }
}

/// Non-persistent: serializes as `null` …
impl serde::Serialize for RuntimeCache {
    fn to_value(&self) -> serde::json::Value {
        serde::json::Value::Null
    }
}

/// … and deserializes (from anything) as an empty slot.
impl serde::Deserialize for RuntimeCache {
    fn from_value(_v: &serde::json::Value) -> Result<RuntimeCache, String> {
        Ok(RuntimeCache::default())
    }
}

/// Catalog record for one table.
#[derive(Debug, Clone)]
pub struct TableEntry {
    pub name: String,
    pub heap_id: HeapId,
    pub tuple_count: u64,
    pub page_count: u32,
    /// For materialized prediction tables: the source table the scoring
    /// query scanned. Dropping that source marks this table stale — its
    /// contents describe rows that no longer exist.
    pub derived_from: Option<String>,
    /// True once the source table has been dropped. Querying a stale
    /// table is a typed error; dropping it (cleanup) still works.
    pub stale: bool,
    /// Scan-tier sidecar cache (compressed pages + zone maps), opaque to
    /// the catalog. Built lazily by the first pushdown scan and shared by
    /// every later one; dies with the entry on DROP, so a rebuilt table
    /// of the same name starts with a cold sidecar.
    pub scan: RuntimeCache,
}

/// Catalog record for one deployed accelerator (one UDF).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AcceleratorEntry {
    /// UDF name as invoked from SQL, e.g. `"linearR"`.
    pub udf_name: String,
    /// Encoded Strider instruction words (22-bit instructions in u32s).
    pub strider_program: Vec<u32>,
    /// Serialized execution-engine design + schedule (JSON blob produced by
    /// the compiler; the catalog does not interpret it).
    pub design_blob: String,
    /// Merge coefficient declared by the UDF (maximum thread count, §4.3).
    pub merge_coef: u32,
    /// Threads the hardware generator actually instantiated.
    pub num_threads: u32,
    /// Human-readable description for `\d`-style introspection.
    pub description: String,
    /// The table whose page layout and schema the accelerator was compiled
    /// against. Dropping that table invalidates the accelerator: the
    /// Strider program walks a layout that no longer exists.
    pub bound_table: String,
    /// True once the bound table has been dropped; running a stale
    /// accelerator is a typed error, never a dangling-heap lookup.
    pub stale: bool,
    /// DEPLOY-time runtime artifact cache (the built execution engine),
    /// opaque to the catalog. Primed at deploy; EXECUTE never rebuilds.
    pub runtime: RuntimeCache,
    /// Latest trained model values, stored by EXECUTE (last write wins)
    /// and consumed by PREDICT/EVALUATE. Opaque to the catalog, like the
    /// runtime cache, and cleared with it on invalidation: a model
    /// trained against a dropped table must not score anything.
    pub trained: RuntimeCache,
}

/// The catalog (and, in this reproduction, the database itself: it owns the
/// heap files the way PostgreSQL's storage manager owns relations).
#[derive(Default)]
pub struct Catalog {
    tables: HashMap<String, TableEntry>,
    // Heaps are reference-counted so a concurrent reader (a query already
    // admitted by the serving tier) can keep scanning a consistent snapshot
    // while the catalog lock is long gone — dropping the table only detaches
    // the name; the pages live until the last scan finishes.
    heaps: HashMap<HeapId, Arc<HeapFile>>,
    accelerators: HashMap<String, AcceleratorEntry>,
    next_heap: u32,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a table backed by `heap`; returns its heap id.
    pub fn create_table(&mut self, name: &str, heap: HeapFile) -> StorageResult<HeapId> {
        self.register_table(name, heap, None)
    }

    /// Registers a *materialized* table derived from `source` (a PREDICT
    /// output). Identical to [`Catalog::create_table`] except the entry
    /// remembers its provenance, so dropping `source` can mark it stale.
    pub fn create_derived_table(
        &mut self,
        name: &str,
        heap: HeapFile,
        source: &str,
    ) -> StorageResult<HeapId> {
        self.register_table(name, heap, Some(source.to_string()))
    }

    fn register_table(
        &mut self,
        name: &str,
        heap: HeapFile,
        derived_from: Option<String>,
    ) -> StorageResult<HeapId> {
        if self.tables.contains_key(name) {
            return Err(StorageError::DuplicateName(name.to_string()));
        }
        let id = HeapId(self.next_heap);
        self.next_heap += 1;
        self.tables.insert(
            name.to_string(),
            TableEntry {
                name: name.to_string(),
                heap_id: id,
                tuple_count: heap.tuple_count(),
                page_count: heap.page_count(),
                derived_from,
                stale: false,
                scan: RuntimeCache::default(),
            },
        );
        self.heaps.insert(id, Arc::new(heap));
        Ok(id)
    }

    /// Drops a table and its heap; returns the removed entry so callers can
    /// clean up downstream state (evict its buffer-pool pages, invalidate
    /// accelerators compiled against it).
    pub fn drop_table(&mut self, name: &str) -> StorageResult<TableEntry> {
        let entry = self
            .tables
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        self.heaps.remove(&entry.heap_id);
        Ok(entry)
    }

    pub fn table(&self, name: &str) -> StorageResult<&TableEntry> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// The table entry, refusing stale derived tables with a typed error —
    /// the lookup every *query* path uses. Plain [`Catalog::table`] still
    /// returns stale entries so cleanup (DROP) keeps working.
    pub fn live_table(&self, name: &str) -> StorageResult<&TableEntry> {
        let entry = self.table(name)?;
        if entry.stale {
            return Err(StorageError::StaleDerivedTable {
                table: name.to_string(),
                dropped_source: entry.derived_from.clone().unwrap_or_default(),
            });
        }
        Ok(entry)
    }

    pub fn heap(&self, id: HeapId) -> StorageResult<&HeapFile> {
        self.heaps
            .get(&id)
            .map(|h| h.as_ref())
            .ok_or(StorageError::UnknownHeap(id.0))
    }

    /// Shared handle to a heap, for readers that outlive the catalog
    /// borrow (the concurrent query path).
    pub fn heap_arc(&self, id: HeapId) -> StorageResult<Arc<HeapFile>> {
        self.heaps
            .get(&id)
            .cloned()
            .ok_or(StorageError::UnknownHeap(id.0))
    }

    /// Convenience: table entry + heap in one lookup.
    pub fn table_heap(&self, name: &str) -> StorageResult<(&TableEntry, &HeapFile)> {
        let entry = self.table(name)?;
        let heap = self.heap(entry.heap_id)?;
        Ok((entry, heap))
    }

    /// Deploys (or replaces) an accelerator under its UDF name.
    pub fn deploy_accelerator(&mut self, entry: AcceleratorEntry) {
        self.accelerators.insert(entry.udf_name.clone(), entry);
    }

    pub fn accelerator(&self, udf_name: &str) -> StorageResult<&AcceleratorEntry> {
        self.accelerators
            .get(udf_name)
            .ok_or_else(|| StorageError::UnknownAccelerator(udf_name.to_string()))
    }

    /// Marks every accelerator compiled against `table` as stale (its
    /// backing layout is gone). Returns the affected UDF names, sorted.
    pub fn invalidate_accelerators_for(&mut self, table: &str) -> Vec<String> {
        let mut hit: Vec<String> = self
            .accelerators
            .values_mut()
            .filter(|a| a.bound_table == table && !a.stale)
            .map(|a| {
                a.stale = true;
                // The cached engine (and its scoring recipe) is compiled
                // against the dropped layout, and the trained model was
                // fit to rows that no longer exist: drop both with the
                // table.
                a.runtime.clear();
                a.trained.clear();
                a.udf_name.clone()
            })
            .collect();
        hit.sort_unstable();
        hit
    }

    /// Marks every materialized table derived from `source` as stale (its
    /// provenance is gone; querying it is now a typed error). Returns the
    /// affected `(name, heap_id)` pairs sorted by name, so callers can
    /// evict the stale heaps' buffer-pool pages.
    pub fn invalidate_derived_for(&mut self, source: &str) -> Vec<(String, HeapId)> {
        let mut hit: Vec<(String, HeapId)> = self
            .tables
            .values_mut()
            .filter(|t| t.derived_from.as_deref() == Some(source) && !t.stale)
            .map(|t| {
                t.stale = true;
                (t.name.clone(), t.heap_id)
            })
            .collect();
        hit.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        hit
    }

    /// All table names, sorted (stable introspection output).
    pub fn table_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    /// All deployed UDF names, sorted.
    pub fn accelerator_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.accelerators.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapFileBuilder;
    use crate::page::TupleDirection;
    use crate::schema::Schema;
    use crate::tuple::Tuple;

    fn tiny_heap() -> HeapFile {
        let mut b =
            HeapFileBuilder::new(Schema::training(2), 8 * 1024, TupleDirection::Ascending).unwrap();
        b.insert(&Tuple::training(&[1.0, 2.0], 3.0)).unwrap();
        b.finish()
    }

    #[test]
    fn create_and_lookup_table() {
        let mut cat = Catalog::new();
        let id = cat.create_table("t", tiny_heap()).unwrap();
        let entry = cat.table("t").unwrap();
        assert_eq!(entry.heap_id, id);
        assert_eq!(entry.tuple_count, 1);
        assert!(cat.heap(id).is_ok());
        let (e2, h2) = cat.table_heap("t").unwrap();
        assert_eq!(e2.name, "t");
        assert_eq!(h2.tuple_count(), 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.create_table("t", tiny_heap()).unwrap();
        assert!(matches!(
            cat.create_table("t", tiny_heap()),
            Err(StorageError::DuplicateName(_))
        ));
    }

    #[test]
    fn drop_table_removes_heap() {
        let mut cat = Catalog::new();
        let id = cat.create_table("t", tiny_heap()).unwrap();
        let dropped = cat.drop_table("t").unwrap();
        assert_eq!(dropped.heap_id, id);
        assert!(cat.table("t").is_err());
        assert!(cat.heap(id).is_err());
        assert!(cat.heap_arc(id).is_err());
        assert!(cat.drop_table("t").is_err());
    }

    #[test]
    fn heap_arc_survives_drop() {
        let mut cat = Catalog::new();
        let id = cat.create_table("t", tiny_heap()).unwrap();
        let heap = cat.heap_arc(id).unwrap();
        cat.drop_table("t").unwrap();
        // A reader that grabbed the Arc before the drop keeps a consistent
        // snapshot of the table.
        assert_eq!(heap.tuple_count(), 1);
    }

    fn test_accelerator(udf: &str, table: &str) -> AcceleratorEntry {
        AcceleratorEntry {
            udf_name: udf.into(),
            strider_program: vec![0x1234, 0x5678],
            design_blob: "{}".into(),
            merge_coef: 8,
            num_threads: 4,
            description: "linear regression".into(),
            bound_table: table.into(),
            stale: false,
            runtime: RuntimeCache::default(),
            trained: RuntimeCache::default(),
        }
    }

    #[test]
    fn runtime_cache_is_shared_first_write_wins_and_cleared_on_invalidate() {
        let mut cat = Catalog::new();
        cat.deploy_accelerator(test_accelerator("linearR", "t"));
        let entry = cat.accelerator("linearR").unwrap().clone();
        assert!(!entry.runtime.is_primed());
        entry.runtime.set(Arc::new(41u32));
        entry.runtime.set(Arc::new(99u32)); // loses the race
                                            // Clones share the slot; the first install wins.
        let again = cat.accelerator("linearR").unwrap();
        let v = again.runtime.get().unwrap().downcast::<u32>().unwrap();
        assert_eq!(*v, 41);
        // Equality ignores cache state; serialization drops it.
        assert_eq!(*again, test_accelerator("linearR", "t"));
        let value = serde::Serialize::to_value(again);
        let back = <AcceleratorEntry as serde::Deserialize>::from_value(&value).unwrap();
        assert!(!back.runtime.is_primed());
        // Invalidation clears the cached engine along with marking stale.
        cat.invalidate_accelerators_for("t");
        assert!(!cat.accelerator("linearR").unwrap().runtime.is_primed());
    }

    #[test]
    fn accelerator_round_trip() {
        let mut cat = Catalog::new();
        let entry = test_accelerator("linearR", "t");
        cat.deploy_accelerator(entry.clone());
        assert_eq!(cat.accelerator("linearR").unwrap(), &entry);
        assert!(cat.accelerator("nope").is_err());
        assert_eq!(cat.accelerator_names(), vec!["linearR"]);
    }

    #[test]
    fn invalidation_marks_bound_accelerators_stale() {
        let mut cat = Catalog::new();
        cat.deploy_accelerator(test_accelerator("linearR", "t"));
        cat.deploy_accelerator(test_accelerator("svm", "t"));
        cat.deploy_accelerator(test_accelerator("logisticR", "other"));
        let hit = cat.invalidate_accelerators_for("t");
        assert_eq!(hit, vec!["linearR".to_string(), "svm".to_string()]);
        assert!(cat.accelerator("linearR").unwrap().stale);
        assert!(cat.accelerator("svm").unwrap().stale);
        assert!(!cat.accelerator("logisticR").unwrap().stale);
        // Idempotent: already-stale entries are not reported twice.
        assert!(cat.invalidate_accelerators_for("t").is_empty());
    }

    #[test]
    fn runtime_cache_store_overwrites() {
        let cache = RuntimeCache::default();
        cache.store(Arc::new(1u32));
        cache.store(Arc::new(2u32)); // last write wins, unlike `set`
        let v = cache.get().unwrap().downcast::<u32>().unwrap();
        assert_eq!(*v, 2);
    }

    #[test]
    fn derived_tables_go_stale_when_source_drops() {
        let mut cat = Catalog::new();
        cat.create_table("t", tiny_heap()).unwrap();
        let pid = cat.create_derived_table("p", tiny_heap(), "t").unwrap();
        cat.create_derived_table("q", tiny_heap(), "other").unwrap();
        assert_eq!(cat.table("p").unwrap().derived_from.as_deref(), Some("t"));
        assert!(cat.live_table("p").is_ok());

        cat.drop_table("t").unwrap();
        let hit = cat.invalidate_derived_for("t");
        assert_eq!(hit, vec![("p".to_string(), pid)]);
        // Idempotent; unrelated derivations untouched.
        assert!(cat.invalidate_derived_for("t").is_empty());
        assert!(cat.live_table("q").is_ok());

        // Queries refuse the stale table with a typed error...
        match cat.live_table("p") {
            Err(StorageError::StaleDerivedTable {
                table,
                dropped_source,
            }) => {
                assert_eq!(table, "p");
                assert_eq!(dropped_source, "t");
            }
            other => panic!("expected StaleDerivedTable, got {other:?}"),
        }
        // ...but cleanup still works.
        assert!(cat.drop_table("p").is_ok());
    }

    #[test]
    fn invalidation_clears_trained_models_too() {
        let mut cat = Catalog::new();
        cat.deploy_accelerator(test_accelerator("linearR", "t"));
        let entry = cat.accelerator("linearR").unwrap();
        entry.trained.store(Arc::new(vec![1.0f32]));
        assert!(entry.trained.is_primed());
        cat.invalidate_accelerators_for("t");
        assert!(!cat.accelerator("linearR").unwrap().trained.is_primed());
    }

    #[test]
    fn names_are_sorted() {
        let mut cat = Catalog::new();
        cat.create_table("zeta", tiny_heap()).unwrap();
        cat.create_table("alpha", tiny_heap()).unwrap();
        assert_eq!(cat.table_names(), vec!["alpha", "zeta"]);
    }
}
