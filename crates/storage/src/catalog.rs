//! The RDBMS catalog: tables plus deployed accelerator artifacts.
//!
//! "DAnA stores accelerator metadata (Strider and execution engine
//! instruction schedules) in the RDBMS's catalog along with the name of a
//! UDF to be invoked from the query. ... the RDBMS catalog is shared by the
//! database engine and the FPGA." (§3, Fig. 2)
//!
//! The catalog keeps accelerator artifacts *opaque* (encoded instruction
//! words and a serialized design blob) so this crate does not depend on the
//! compiler; the DAnA runtime deserializes them at query time.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{StorageError, StorageResult};
use crate::heap::HeapFile;
use crate::HeapId;

/// Catalog record for one table.
#[derive(Debug, Clone)]
pub struct TableEntry {
    pub name: String,
    pub heap_id: HeapId,
    pub tuple_count: u64,
    pub page_count: u32,
}

/// Catalog record for one deployed accelerator (one UDF).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AcceleratorEntry {
    /// UDF name as invoked from SQL, e.g. `"linearR"`.
    pub udf_name: String,
    /// Encoded Strider instruction words (22-bit instructions in u32s).
    pub strider_program: Vec<u32>,
    /// Serialized execution-engine design + schedule (JSON blob produced by
    /// the compiler; the catalog does not interpret it).
    pub design_blob: String,
    /// Merge coefficient declared by the UDF (maximum thread count, §4.3).
    pub merge_coef: u32,
    /// Threads the hardware generator actually instantiated.
    pub num_threads: u32,
    /// Human-readable description for `\d`-style introspection.
    pub description: String,
    /// The table whose page layout and schema the accelerator was compiled
    /// against. Dropping that table invalidates the accelerator: the
    /// Strider program walks a layout that no longer exists.
    pub bound_table: String,
    /// True once the bound table has been dropped; running a stale
    /// accelerator is a typed error, never a dangling-heap lookup.
    pub stale: bool,
}

/// The catalog (and, in this reproduction, the database itself: it owns the
/// heap files the way PostgreSQL's storage manager owns relations).
#[derive(Default)]
pub struct Catalog {
    tables: HashMap<String, TableEntry>,
    // Heaps are reference-counted so a concurrent reader (a query already
    // admitted by the serving tier) can keep scanning a consistent snapshot
    // while the catalog lock is long gone — dropping the table only detaches
    // the name; the pages live until the last scan finishes.
    heaps: HashMap<HeapId, Arc<HeapFile>>,
    accelerators: HashMap<String, AcceleratorEntry>,
    next_heap: u32,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a table backed by `heap`; returns its heap id.
    pub fn create_table(&mut self, name: &str, heap: HeapFile) -> StorageResult<HeapId> {
        if self.tables.contains_key(name) {
            return Err(StorageError::DuplicateName(name.to_string()));
        }
        let id = HeapId(self.next_heap);
        self.next_heap += 1;
        self.tables.insert(
            name.to_string(),
            TableEntry {
                name: name.to_string(),
                heap_id: id,
                tuple_count: heap.tuple_count(),
                page_count: heap.page_count(),
            },
        );
        self.heaps.insert(id, Arc::new(heap));
        Ok(id)
    }

    /// Drops a table and its heap; returns the removed entry so callers can
    /// clean up downstream state (evict its buffer-pool pages, invalidate
    /// accelerators compiled against it).
    pub fn drop_table(&mut self, name: &str) -> StorageResult<TableEntry> {
        let entry = self
            .tables
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        self.heaps.remove(&entry.heap_id);
        Ok(entry)
    }

    pub fn table(&self, name: &str) -> StorageResult<&TableEntry> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    pub fn heap(&self, id: HeapId) -> StorageResult<&HeapFile> {
        self.heaps
            .get(&id)
            .map(|h| h.as_ref())
            .ok_or(StorageError::UnknownHeap(id.0))
    }

    /// Shared handle to a heap, for readers that outlive the catalog
    /// borrow (the concurrent query path).
    pub fn heap_arc(&self, id: HeapId) -> StorageResult<Arc<HeapFile>> {
        self.heaps
            .get(&id)
            .cloned()
            .ok_or(StorageError::UnknownHeap(id.0))
    }

    /// Convenience: table entry + heap in one lookup.
    pub fn table_heap(&self, name: &str) -> StorageResult<(&TableEntry, &HeapFile)> {
        let entry = self.table(name)?;
        let heap = self.heap(entry.heap_id)?;
        Ok((entry, heap))
    }

    /// Deploys (or replaces) an accelerator under its UDF name.
    pub fn deploy_accelerator(&mut self, entry: AcceleratorEntry) {
        self.accelerators.insert(entry.udf_name.clone(), entry);
    }

    pub fn accelerator(&self, udf_name: &str) -> StorageResult<&AcceleratorEntry> {
        self.accelerators
            .get(udf_name)
            .ok_or_else(|| StorageError::UnknownAccelerator(udf_name.to_string()))
    }

    /// Marks every accelerator compiled against `table` as stale (its
    /// backing layout is gone). Returns the affected UDF names, sorted.
    pub fn invalidate_accelerators_for(&mut self, table: &str) -> Vec<String> {
        let mut hit: Vec<String> = self
            .accelerators
            .values_mut()
            .filter(|a| a.bound_table == table && !a.stale)
            .map(|a| {
                a.stale = true;
                a.udf_name.clone()
            })
            .collect();
        hit.sort_unstable();
        hit
    }

    /// All table names, sorted (stable introspection output).
    pub fn table_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    /// All deployed UDF names, sorted.
    pub fn accelerator_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.accelerators.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapFileBuilder;
    use crate::page::TupleDirection;
    use crate::schema::Schema;
    use crate::tuple::Tuple;

    fn tiny_heap() -> HeapFile {
        let mut b =
            HeapFileBuilder::new(Schema::training(2), 8 * 1024, TupleDirection::Ascending).unwrap();
        b.insert(&Tuple::training(&[1.0, 2.0], 3.0)).unwrap();
        b.finish()
    }

    #[test]
    fn create_and_lookup_table() {
        let mut cat = Catalog::new();
        let id = cat.create_table("t", tiny_heap()).unwrap();
        let entry = cat.table("t").unwrap();
        assert_eq!(entry.heap_id, id);
        assert_eq!(entry.tuple_count, 1);
        assert!(cat.heap(id).is_ok());
        let (e2, h2) = cat.table_heap("t").unwrap();
        assert_eq!(e2.name, "t");
        assert_eq!(h2.tuple_count(), 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.create_table("t", tiny_heap()).unwrap();
        assert!(matches!(
            cat.create_table("t", tiny_heap()),
            Err(StorageError::DuplicateName(_))
        ));
    }

    #[test]
    fn drop_table_removes_heap() {
        let mut cat = Catalog::new();
        let id = cat.create_table("t", tiny_heap()).unwrap();
        let dropped = cat.drop_table("t").unwrap();
        assert_eq!(dropped.heap_id, id);
        assert!(cat.table("t").is_err());
        assert!(cat.heap(id).is_err());
        assert!(cat.heap_arc(id).is_err());
        assert!(cat.drop_table("t").is_err());
    }

    #[test]
    fn heap_arc_survives_drop() {
        let mut cat = Catalog::new();
        let id = cat.create_table("t", tiny_heap()).unwrap();
        let heap = cat.heap_arc(id).unwrap();
        cat.drop_table("t").unwrap();
        // A reader that grabbed the Arc before the drop keeps a consistent
        // snapshot of the table.
        assert_eq!(heap.tuple_count(), 1);
    }

    fn test_accelerator(udf: &str, table: &str) -> AcceleratorEntry {
        AcceleratorEntry {
            udf_name: udf.into(),
            strider_program: vec![0x1234, 0x5678],
            design_blob: "{}".into(),
            merge_coef: 8,
            num_threads: 4,
            description: "linear regression".into(),
            bound_table: table.into(),
            stale: false,
        }
    }

    #[test]
    fn accelerator_round_trip() {
        let mut cat = Catalog::new();
        let entry = test_accelerator("linearR", "t");
        cat.deploy_accelerator(entry.clone());
        assert_eq!(cat.accelerator("linearR").unwrap(), &entry);
        assert!(cat.accelerator("nope").is_err());
        assert_eq!(cat.accelerator_names(), vec!["linearR"]);
    }

    #[test]
    fn invalidation_marks_bound_accelerators_stale() {
        let mut cat = Catalog::new();
        cat.deploy_accelerator(test_accelerator("linearR", "t"));
        cat.deploy_accelerator(test_accelerator("svm", "t"));
        cat.deploy_accelerator(test_accelerator("logisticR", "other"));
        let hit = cat.invalidate_accelerators_for("t");
        assert_eq!(hit, vec!["linearR".to_string(), "svm".to_string()]);
        assert!(cat.accelerator("linearR").unwrap().stale);
        assert!(cat.accelerator("svm").unwrap().stale);
        assert!(!cat.accelerator("logisticR").unwrap().stale);
        // Idempotent: already-stale entries are not reported twice.
        assert!(cat.invalidate_accelerators_for("t").is_empty());
    }

    #[test]
    fn names_are_sorted() {
        let mut cat = Catalog::new();
        cat.create_table("zeta", tiny_heap()).unwrap();
        cat.create_table("alpha", tiny_heap()).unwrap();
        assert_eq!(cat.table_names(), vec!["alpha", "zeta"]);
    }
}
