//! Concurrent buffer pool: sharded frames behind interior mutability.
//!
//! The serving tier multiplexes many training queries over one storage
//! substrate, so the hand-off point between the database and the
//! accelerators — the buffer pool — must admit concurrent readers without
//! a global `&mut`. [`SharedBufferPool`] partitions the frame array into
//! shards, each its own mutex-guarded clock cache; a page hashes to one
//! shard, so two queries scanning different page ranges rarely touch the
//! same lock, and a fetch holds its shard's lock only long enough to look
//! up (or install) the page.
//!
//! Pin counts are replaced by reference counts: a fetch hands back an
//! `Arc<[u8]>` page image. While any query still holds the `Arc`, the frame
//! is ineligible for eviction — exactly a pin, but one the borrow checker
//! releases automatically when the reader drops it, so a panicking query
//! can never leak a pinned frame.
//!
//! Timing stays simulated and per-shard: every miss charges the disk
//! model's read time to the shard it lands in; [`SharedBufferPool::stats`]
//! sums the shards.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use crate::bufferpool::{BufferPoolConfig, BufferPoolStats};
use crate::disk::{DiskModel, Seconds};
use crate::error::{StorageError, StorageResult};
use crate::heap::HeapFile;
use crate::{HeapId, PageId};

/// Default shard count: enough to keep a handful of concurrent scans off
/// each other's locks without fragmenting a small pool.
pub const DEFAULT_SHARDS: usize = 8;

struct SharedFrame {
    page: Option<PageId>,
    bytes: Arc<[u8]>,
    referenced: bool,
}

impl SharedFrame {
    fn empty() -> SharedFrame {
        SharedFrame {
            page: None,
            bytes: Arc::from(&[][..]),
            referenced: false,
        }
    }

    /// A frame is "pinned" while any reader still holds the page image.
    fn is_held(&self) -> bool {
        self.page.is_some() && Arc::strong_count(&self.bytes) > 1
    }
}

struct Shard {
    frames: Vec<SharedFrame>,
    page_table: HashMap<PageId, usize>,
    clock_hand: usize,
    stats: BufferPoolStats,
}

impl Shard {
    fn new(frames: usize) -> Shard {
        Shard {
            frames: (0..frames).map(|_| SharedFrame::empty()).collect(),
            page_table: HashMap::new(),
            clock_hand: 0,
            stats: BufferPoolStats::default(),
        }
    }

    /// Second-chance (clock) victim selection over unheld frames.
    fn find_victim(&mut self) -> StorageResult<usize> {
        if let Some(idx) = self
            .frames
            .iter()
            .position(|f| f.page.is_none() && Arc::strong_count(&f.bytes) == 1)
        {
            return Ok(idx);
        }
        let n = self.frames.len();
        for _ in 0..2 * n {
            let idx = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % n;
            let f = &mut self.frames[idx];
            if f.is_held() {
                continue;
            }
            if f.referenced {
                f.referenced = false;
            } else {
                return Ok(idx);
            }
        }
        Err(StorageError::BufferPoolExhausted)
    }

    fn install(&mut self, frame: usize, page_id: PageId, bytes: Arc<[u8]>) {
        if let Some(old) = self.frames[frame].page.take() {
            self.page_table.remove(&old);
            self.stats.evictions += 1;
        }
        self.frames[frame].bytes = bytes;
        self.frames[frame].page = Some(page_id);
        self.frames[frame].referenced = true;
        self.page_table.insert(page_id, frame);
    }
}

/// The concurrent buffer pool: `&self` fetches, sharded locking.
pub struct SharedBufferPool {
    config: BufferPoolConfig,
    shards: Vec<Mutex<Shard>>,
    /// Heaps whose tables were dropped while scans were in flight. Pages
    /// of a tombstoned heap are never (re-)installed: a straggling scan
    /// still gets its bytes, but the pool stays clean once it finishes.
    /// Heap ids are never reused by the catalog, so the set only grows by
    /// one entry per dropped table.
    tombstones: Mutex<HashSet<HeapId>>,
}

impl SharedBufferPool {
    /// Builds a pool with [`DEFAULT_SHARDS`] shards.
    pub fn new(config: BufferPoolConfig) -> SharedBufferPool {
        SharedBufferPool::with_shards(config, DEFAULT_SHARDS)
    }

    /// Builds a pool whose frames are split across `shards` locks. Each
    /// shard gets an equal slice of the frame budget (at least one frame).
    pub fn with_shards(config: BufferPoolConfig, shards: usize) -> SharedBufferPool {
        let shards = shards.max(1);
        let total = config.frames().max(shards);
        let per_shard = total / shards;
        SharedBufferPool {
            config,
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            tombstones: Mutex::new(HashSet::new()),
        }
    }

    fn is_tombstoned(&self, heap_id: HeapId) -> bool {
        match self.tombstones.lock() {
            Ok(g) => g.contains(&heap_id),
            Err(poisoned) => poisoned.into_inner().contains(&heap_id),
        }
    }

    pub fn config(&self) -> BufferPoolConfig {
        self.config
    }

    /// Total frames across all shards.
    pub fn frames(&self) -> usize {
        self.shards.len() * self.lock(0).frames.len()
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Deterministic page → shard mapping (independent of hasher seeds, so
    /// residency patterns reproduce across runs and platforms).
    fn shard_of(&self, page_id: PageId) -> usize {
        let mix = (page_id.heap.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(page_id.page_no as u64);
        (mix % self.shards.len() as u64) as usize
    }

    fn lock(&self, shard: usize) -> std::sync::MutexGuard<'_, Shard> {
        // Shard state is valid under panic (a poisoned shard only means a
        // reader panicked mid-fetch; frames and page table are consistent
        // between every mutation), so recover rather than propagate.
        match self.shards[shard].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Fetches a page, returning its shared byte image plus the simulated
    /// I/O seconds this access cost. The returned `Arc` holds the frame
    /// against eviction until the caller drops it.
    pub fn fetch(
        &self,
        page_id: PageId,
        heap: &HeapFile,
        disk: &DiskModel,
    ) -> StorageResult<(Arc<[u8]>, Seconds)> {
        if heap.layout().page_size != self.config.page_size {
            return Err(StorageError::BadPageSize(heap.layout().page_size));
        }
        let mut shard = self.lock(self.shard_of(page_id));
        if let Some(&frame) = shard.page_table.get(&page_id) {
            shard.stats.hits += 1;
            shard.frames[frame].referenced = true;
            return Ok((Arc::clone(&shard.frames[frame].bytes), 0.0));
        }
        shard.stats.misses += 1;
        let io = disk.read_time(self.config.page_size as u64);
        shard.stats.io_seconds += io;
        let bytes: Arc<[u8]> = Arc::from(heap.page_bytes(page_id.page_no)?);
        // Tombstone check under the shard lock: a scan racing a DROP TABLE
        // still gets its bytes, but must not re-install a dropped heap's
        // page after the drop's sweep has passed this shard (the orphan-
        // resident-page leak). `evict_heap_force` tombstones *before* it
        // sweeps, so whichever side reaches this shard second wins.
        if self.is_tombstoned(page_id.heap) {
            return Ok((bytes, io));
        }
        let frame = shard.find_victim()?;
        shard.install(frame, page_id, Arc::clone(&bytes));
        Ok((bytes, io))
    }

    /// Fetches caller-provided bytes into the pool under `page_id` — the
    /// scan tier's *compressed-frame* path (see
    /// [`crate::BufferPool::fetch_raw`]). The miss is priced at the actual
    /// byte count rather than the configured page size, which is where
    /// compressed storage saves its I/O. Honors tombstones exactly like
    /// [`SharedBufferPool::fetch`].
    pub fn fetch_raw(
        &self,
        page_id: PageId,
        bytes: &[u8],
        disk: &DiskModel,
    ) -> StorageResult<(Arc<[u8]>, Seconds)> {
        let mut shard = self.lock(self.shard_of(page_id));
        if let Some(&frame) = shard.page_table.get(&page_id) {
            shard.stats.hits += 1;
            shard.frames[frame].referenced = true;
            return Ok((Arc::clone(&shard.frames[frame].bytes), 0.0));
        }
        shard.stats.misses += 1;
        let io = disk.read_time(bytes.len() as u64);
        shard.stats.io_seconds += io;
        let bytes: Arc<[u8]> = Arc::from(bytes);
        if self.is_tombstoned(page_id.heap) {
            return Ok((bytes, io));
        }
        let frame = shard.find_victim()?;
        shard.install(frame, page_id, Arc::clone(&bytes));
        Ok((bytes, io))
    }

    /// Aggregated statistics across every shard.
    pub fn stats(&self) -> BufferPoolStats {
        let mut total = BufferPoolStats::default();
        for i in 0..self.shards.len() {
            let s = self.lock(i).stats;
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.io_seconds += s.io_seconds;
        }
        total
    }

    pub fn reset_stats(&self) {
        for i in 0..self.shards.len() {
            self.lock(i).stats = BufferPoolStats::default();
        }
    }

    pub fn resident_pages(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock(i).page_table.len())
            .sum()
    }

    /// Total bytes of resident page images across all shards. With raw
    /// pages this is `resident_pages * page_size`, but compressed shadow
    /// frames hold fewer bytes than a page — this gauge is the live
    /// numerator of the pool-level compression ratio.
    pub fn resident_bytes(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| {
                let shard = self.lock(i);
                shard
                    .frames
                    .iter()
                    .filter(|f| f.page.is_some())
                    .map(|f| f.bytes.len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Resident frame count per heap id (sorted by heap id). Shadow heaps
    /// appear under their aliased id, so compressed and raw residency of
    /// the same table show up as separate rows.
    pub fn per_heap_frames(&self) -> Vec<(u32, usize)> {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for i in 0..self.shards.len() {
            let shard = self.lock(i);
            for f in shard.frames.iter() {
                if let Some(p) = f.page {
                    *counts.entry(p.heap.0).or_insert(0) += 1;
                }
            }
        }
        let mut rows: Vec<(u32, usize)> = counts.into_iter().collect();
        rows.sort_unstable();
        rows
    }

    /// Frames whose page image is still referenced by a reader. After every
    /// query has completed and dropped its batches, this must be zero — the
    /// serving tier's frame-leak detector.
    pub fn held_frames(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock(i).frames.iter().filter(|f| f.is_held()).count())
            .sum()
    }

    /// True if `page_id` is currently resident.
    pub fn contains(&self, page_id: PageId) -> bool {
        self.lock(self.shard_of(page_id))
            .page_table
            .contains_key(&page_id)
    }

    /// Warm-cache setup: loads `heap` front-to-back without charging query
    /// I/O. Pages land in their hash shards; a shard that fills evicts its
    /// own oldest pages, mirroring [`crate::BufferPool::prewarm`].
    pub fn prewarm(&self, heap_id: HeapId, heap: &HeapFile) -> StorageResult<usize> {
        for page_no in 0..heap.page_count() {
            let page_id = PageId::new(heap_id, page_no);
            let mut shard = self.lock(self.shard_of(page_id));
            if shard.page_table.contains_key(&page_id) {
                continue;
            }
            let bytes: Arc<[u8]> = Arc::from(heap.page_bytes(page_no)?);
            match shard.find_victim() {
                Ok(frame) => {
                    // Prewarm is setup, not query cost: compensate the
                    // eviction counter only when install actually evicted
                    // a resident page (an empty frame counts nothing).
                    let displaced = shard.frames[frame].page.is_some();
                    shard.install(frame, page_id, bytes);
                    shard.frames[frame].referenced = false;
                    if displaced {
                        shard.stats.evictions = shard.stats.evictions.saturating_sub(1);
                    }
                }
                // A shard saturated with held pages just skips; prewarm is
                // best-effort by definition.
                Err(StorageError::BufferPoolExhausted) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(self.resident_pages())
    }

    /// Cold-cache setup: drops every unheld page.
    pub fn clear(&self) {
        for i in 0..self.shards.len() {
            let shard = &mut *self.lock(i);
            for f in shard.frames.iter_mut() {
                if !f.is_held() {
                    if let Some(p) = f.page.take() {
                        shard.page_table.remove(&p);
                    }
                    f.bytes = Arc::from(&[][..]);
                }
            }
            shard.clock_hand = 0;
        }
    }

    /// Evicts every resident page of `heap_id` — the `DROP TABLE` path.
    /// Errors with [`StorageError::PagePinned`] (evicting nothing) if a
    /// page of the heap is still held by an in-flight reader.
    ///
    /// Check and evict happen with *every* shard locked at once (in index
    /// order, so concurrent callers cannot deadlock): the
    /// nothing-or-everything contract must hold even while other threads
    /// fetch concurrently.
    pub fn evict_heap(&self, heap_id: HeapId) -> StorageResult<usize> {
        let mut guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| match s.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            })
            .collect();
        if let Some(p) = guards
            .iter()
            .flat_map(|g| g.frames.iter())
            .find_map(|f| f.page.filter(|p| p.heap == heap_id && f.is_held()))
        {
            return Err(StorageError::PagePinned {
                heap: p.heap.0,
                page_no: p.page_no,
            });
        }
        let mut evicted = 0;
        for shard in guards.iter_mut() {
            evicted += evict_heap_frames(shard, heap_id);
        }
        Ok(evicted)
    }

    /// Evicts every resident page of `heap_id` *unconditionally* — the
    /// concurrent `DROP TABLE` path. Unlike pin counts, `Arc` page images
    /// make this safe mid-scan: an in-flight reader's clone keeps its bytes
    /// alive on its own; the pool merely drops its reference, so the frame
    /// frees the instant the reader finishes instead of leaking forever.
    ///
    /// The heap is tombstoned *before* the sweep: a racing fetch either
    /// installs before the sweep reaches its shard (and is swept) or sees
    /// the tombstone under its shard lock and skips installation — either
    /// way no page of the dropped heap stays resident afterwards.
    pub fn evict_heap_force(&self, heap_id: HeapId) -> usize {
        match self.tombstones.lock() {
            Ok(mut g) => g.insert(heap_id),
            Err(poisoned) => poisoned.into_inner().insert(heap_id),
        };
        let mut evicted = 0;
        for i in 0..self.shards.len() {
            evicted += evict_heap_frames(&mut self.lock(i), heap_id);
        }
        evicted
    }
}

/// Detaches every frame of `heap_id` in one locked shard, held or not
/// (readers keep their `Arc` snapshots).
fn evict_heap_frames(shard: &mut Shard, heap_id: HeapId) -> usize {
    let mut evicted = 0;
    for f in shard.frames.iter_mut() {
        if f.page.is_some_and(|p| p.heap == heap_id) {
            let p = f.page.take().expect("page checked in condition");
            shard.page_table.remove(&p);
            f.bytes = Arc::from(&[][..]);
            f.referenced = false;
            evicted += 1;
        }
    }
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapFileBuilder;
    use crate::page::TupleDirection;
    use crate::schema::Schema;
    use crate::tuple::Tuple;

    fn small_heap(tuples: usize) -> HeapFile {
        let schema = Schema::training(10);
        let mut b = HeapFileBuilder::new(schema, 8 * 1024, TupleDirection::Ascending).unwrap();
        for k in 0..tuples {
            b.insert(&Tuple::training(&[k as f32; 10], k as f32))
                .unwrap();
        }
        b.finish()
    }

    fn pool(frames: usize, shards: usize) -> SharedBufferPool {
        SharedBufferPool::with_shards(
            BufferPoolConfig {
                pool_bytes: (frames * 8 * 1024) as u64,
                page_size: 8 * 1024,
            },
            shards,
        )
    }

    #[test]
    fn miss_then_hit_returns_same_image() {
        let heap = small_heap(500);
        let bp = pool(8, 2);
        let disk = DiskModel::ssd();
        let pid = PageId::new(HeapId(1), 0);
        let (b1, io1) = bp.fetch(pid, &heap, &disk).unwrap();
        assert!(io1 > 0.0);
        let (b2, io2) = bp.fetch(pid, &heap, &disk).unwrap();
        assert_eq!(io2, 0.0);
        assert!(Arc::ptr_eq(&b1, &b2), "hit must share the cached image");
        assert_eq!(&*b1, heap.page_bytes(0).unwrap());
        assert_eq!(bp.stats().hits, 1);
        assert_eq!(bp.stats().misses, 1);
    }

    #[test]
    fn held_pages_are_not_evicted() {
        let heap = small_heap(4000);
        assert!(heap.page_count() >= 6);
        // One shard, two frames: heavy pressure.
        let bp = pool(2, 1);
        let disk = DiskModel::instant();
        let (held, _) = bp.fetch(PageId::new(HeapId(1), 0), &heap, &disk).unwrap();
        for page_no in 1..5 {
            let (b, _) = bp
                .fetch(PageId::new(HeapId(1), page_no), &heap, &disk)
                .unwrap();
            drop(b);
        }
        assert!(bp.contains(PageId::new(HeapId(1), 0)), "held page evicted");
        assert_eq!(bp.held_frames(), 1);
        drop(held);
        assert_eq!(bp.held_frames(), 0);
    }

    #[test]
    fn all_held_exhausts_shard() {
        let heap = small_heap(4000);
        let bp = pool(2, 1);
        let disk = DiskModel::instant();
        let _b0 = bp.fetch(PageId::new(HeapId(1), 0), &heap, &disk).unwrap();
        let _b1 = bp.fetch(PageId::new(HeapId(1), 1), &heap, &disk).unwrap();
        let err = bp.fetch(PageId::new(HeapId(1), 2), &heap, &disk);
        assert!(matches!(err, Err(StorageError::BufferPoolExhausted)));
    }

    #[test]
    fn prewarm_makes_scans_free() {
        let heap = small_heap(1500);
        let bp = pool(heap.page_count() as usize * 2, 4);
        let disk = DiskModel::ssd();
        bp.prewarm(HeapId(1), &heap).unwrap();
        bp.reset_stats();
        for page_no in 0..heap.page_count() {
            let (_, io) = bp
                .fetch(PageId::new(HeapId(1), page_no), &heap, &disk)
                .unwrap();
            assert_eq!(io, 0.0);
        }
        assert_eq!(bp.stats().misses, 0);
        assert_eq!(bp.stats().io_seconds, 0.0);
    }

    #[test]
    fn clear_and_evict_heap() {
        let heap = small_heap(1500);
        let bp = pool(64, 4);
        let disk = DiskModel::instant();
        bp.prewarm(HeapId(1), &heap).unwrap();
        bp.prewarm(HeapId(2), &heap).unwrap();
        let before = bp.resident_pages();
        let evicted = bp.evict_heap(HeapId(1)).unwrap();
        assert_eq!(evicted as u32, heap.page_count());
        assert_eq!(bp.resident_pages(), before - evicted);
        assert!(bp.contains(PageId::new(HeapId(2), 0)));
        bp.clear();
        assert_eq!(bp.resident_pages(), 0);
        let (_, io) = bp.fetch(PageId::new(HeapId(2), 0), &heap, &disk).unwrap();
        assert_eq!(io, 0.0, "instant disk");
        assert!(bp.stats().misses > 0);
    }

    #[test]
    fn evict_heap_refuses_held_pages() {
        let heap = small_heap(500);
        let bp = pool(8, 2);
        let disk = DiskModel::instant();
        let held = bp.fetch(PageId::new(HeapId(1), 0), &heap, &disk).unwrap();
        assert!(matches!(
            bp.evict_heap(HeapId(1)),
            Err(StorageError::PagePinned {
                heap: 1,
                page_no: 0
            })
        ));
        assert!(bp.contains(PageId::new(HeapId(1), 0)));
        drop(held);
        assert_eq!(bp.evict_heap(HeapId(1)).unwrap(), 1);
    }

    #[test]
    fn force_evict_detaches_held_pages_without_invalidating_readers() {
        let heap = small_heap(500);
        let bp = pool(8, 2);
        let disk = DiskModel::instant();
        let (held, _) = bp.fetch(PageId::new(HeapId(1), 0), &heap, &disk).unwrap();
        assert_eq!(bp.evict_heap_force(HeapId(1)), 1);
        assert!(!bp.contains(PageId::new(HeapId(1), 0)));
        // The reader's snapshot stays valid even though the frame is gone.
        assert_eq!(&*held, heap.page_bytes(0).unwrap());
        // The pool dropped its reference, so nothing is held anymore.
        assert_eq!(bp.held_frames(), 0);
    }

    #[test]
    fn tombstoned_heap_is_never_reinstalled() {
        let heap = small_heap(500);
        let bp = pool(8, 2);
        let disk = DiskModel::instant();
        bp.prewarm(HeapId(1), &heap).unwrap();
        assert!(bp.evict_heap_force(HeapId(1)) > 0);
        // A straggling scan racing the drop still reads valid bytes...
        let (bytes, _) = bp.fetch(PageId::new(HeapId(1), 0), &heap, &disk).unwrap();
        assert_eq!(&*bytes, heap.page_bytes(0).unwrap());
        // ...but the dropped heap's page is not re-installed: no orphan
        // resident pages survive the scan.
        assert!(!bp.contains(PageId::new(HeapId(1), 0)));
        assert_eq!(bp.resident_pages(), 0);
        // Other heaps cache normally.
        let (_, _) = bp.fetch(PageId::new(HeapId(2), 0), &heap, &disk).unwrap();
        assert!(bp.contains(PageId::new(HeapId(2), 0)));
    }

    #[test]
    fn prewarm_only_compensates_real_displacements() {
        let heap = small_heap(4000);
        let bp = pool(2, 1); // heavy pressure: real evictions happen
        let disk = DiskModel::instant();
        for page_no in 0..4 {
            let (b, _) = bp
                .fetch(PageId::new(HeapId(1), page_no), &heap, &disk)
                .unwrap();
            drop(b);
        }
        let evictions_before = bp.stats().evictions;
        assert!(evictions_before >= 2);
        bp.clear();
        // Prewarm lands in emptied frames: no displacement, so the
        // historical eviction count must survive untouched.
        bp.prewarm(HeapId(2), &heap).unwrap();
        assert_eq!(bp.stats().evictions, evictions_before);
    }

    #[test]
    fn concurrent_fetches_agree_with_heap_bytes() {
        let heap = small_heap(3000);
        let bp = pool(heap.page_count() as usize, 4);
        let disk = DiskModel::instant();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for page_no in 0..heap.page_count() {
                        let (bytes, _) = bp
                            .fetch(PageId::new(HeapId(7), page_no), &heap, &disk)
                            .unwrap();
                        assert_eq!(&*bytes, heap.page_bytes(page_no).unwrap());
                    }
                });
            }
        });
        assert_eq!(bp.held_frames(), 0);
        let stats = bp.stats();
        assert_eq!(stats.hits + stats.misses, 4 * heap.page_count() as u64);
    }

    #[test]
    fn shard_split_covers_all_frames() {
        let bp = pool(16, 4);
        assert_eq!(bp.frames(), 16);
        assert_eq!(bp.num_shards(), 4);
        // More shards than frames still leaves one frame per shard.
        let bp = pool(2, 8);
        assert_eq!(bp.frames(), 8);
    }
}
