//! Table schemas: typed, fixed-width columns.
//!
//! DAnA's training tables are fixed-width ("all the training data tuples are
//! expected to be identical", §5.1.2), which is what lets the Strider process
//! only the first line pointer and stride through the rest. We therefore
//! support the fixed-width column types the workloads need; variable-width
//! columns would defeat the paper's own assumption.

use crate::error::{StorageError, StorageResult};

/// A fixed-width column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ColumnType {
    /// 32-bit IEEE-754 float (PostgreSQL `real`). The execution engine
    /// computes in f32, so training data is commonly stored as Float4.
    Float4,
    /// 64-bit IEEE-754 float (PostgreSQL `double precision`).
    Float8,
    /// 32-bit signed integer (PostgreSQL `integer`); used for LRMF row /
    /// column keys.
    Int4,
    /// 64-bit signed integer (PostgreSQL `bigint`).
    Int8,
}

impl ColumnType {
    /// On-page width in bytes.
    pub fn width(&self) -> usize {
        match self {
            ColumnType::Float4 | ColumnType::Int4 => 4,
            ColumnType::Float8 | ColumnType::Int8 => 8,
        }
    }

    /// Decodes one on-page cell (exactly [`ColumnType::width`] little-endian
    /// bytes) to the execution engine's native f32 — the float-conversion
    /// unit of §6.2. The single source of truth for cell conversion, shared
    /// by CPU deforming and Strider extraction so every data path is
    /// bit-identical by construction.
    ///
    /// Panics if `bytes` is not exactly the column's width; callers
    /// validate record length first.
    pub fn decode_f32(&self, bytes: &[u8]) -> f32 {
        match self {
            ColumnType::Float4 => f32::from_le_bytes(bytes.try_into().unwrap()),
            ColumnType::Float8 => f64::from_le_bytes(bytes.try_into().unwrap()) as f32,
            ColumnType::Int4 => i32::from_le_bytes(bytes.try_into().unwrap()) as f32,
            ColumnType::Int8 => i64::from_le_bytes(bytes.try_into().unwrap()) as f32,
        }
    }

    /// SQL-ish name for display.
    pub fn sql_name(&self) -> &'static str {
        match self {
            ColumnType::Float4 => "real",
            ColumnType::Float8 => "double precision",
            ColumnType::Int4 => "integer",
            ColumnType::Int8 => "bigint",
        }
    }
}

/// A named column.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
}

/// An ordered set of columns.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    pub fn new(cols: Vec<(String, ColumnType)>) -> Schema {
        Schema {
            columns: cols
                .into_iter()
                .map(|(name, ty)| Column { name, ty })
                .collect(),
        }
    }

    /// The conventional training-table schema used throughout the paper's
    /// evaluation: `n_features` Float4 feature columns `x0..x{n-1}` followed
    /// by a single Float4 label column `y`.
    pub fn training(n_features: usize) -> Schema {
        let mut cols = Vec::with_capacity(n_features + 1);
        for i in 0..n_features {
            cols.push((format!("x{i}"), ColumnType::Float4));
        }
        cols.push(("y".to_string(), ColumnType::Float4));
        Schema::new(cols)
    }

    /// The LRMF (Netflix-style) rating schema: `(i integer, j integer,
    /// rating real)` — a sparse matrix entry per tuple.
    pub fn rating() -> Schema {
        Schema::new(vec![
            ("i".to_string(), ColumnType::Int4),
            ("j".to_string(), ColumnType::Int4),
            ("rating".to_string(), ColumnType::Float4),
        ])
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Total fixed user-data width of a tuple under this schema, in bytes
    /// (no alignment padding: all our types are 4- or 8-byte aligned and we
    /// lay them out in declaration order, which the workloads keep aligned).
    pub fn tuple_data_width(&self) -> usize {
        self.columns.iter().map(|c| c.ty.width()).sum()
    }

    /// Byte offset of column `idx` within the user-data area.
    pub fn column_offset(&self, idx: usize) -> StorageResult<usize> {
        if idx >= self.columns.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "column index {idx} out of range ({} columns)",
                self.columns.len()
            )));
        }
        Ok(self.columns[..idx].iter().map(|c| c.ty.width()).sum())
    }

    /// Looks a column up by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_sql_types() {
        assert_eq!(ColumnType::Float4.width(), 4);
        assert_eq!(ColumnType::Float8.width(), 8);
        assert_eq!(ColumnType::Int4.width(), 4);
        assert_eq!(ColumnType::Int8.width(), 8);
    }

    #[test]
    fn training_schema_shape() {
        let s = Schema::training(10);
        assert_eq!(s.len(), 11);
        assert_eq!(s.tuple_data_width(), 44);
        assert_eq!(s.columns()[0].name, "x0");
        assert_eq!(s.columns()[10].name, "y");
        assert_eq!(s.column_index("y"), Some(10));
        assert_eq!(s.column_index("x9"), Some(9));
        assert_eq!(s.column_index("nope"), None);
    }

    #[test]
    fn rating_schema_shape() {
        let s = Schema::rating();
        assert_eq!(s.len(), 3);
        assert_eq!(s.tuple_data_width(), 12);
        assert_eq!(s.columns()[2].ty, ColumnType::Float4);
    }

    #[test]
    fn column_offsets_accumulate() {
        let s = Schema::new(vec![
            ("a".into(), ColumnType::Int8),
            ("b".into(), ColumnType::Float4),
            ("c".into(), ColumnType::Float8),
        ]);
        assert_eq!(s.column_offset(0).unwrap(), 0);
        assert_eq!(s.column_offset(1).unwrap(), 8);
        assert_eq!(s.column_offset(2).unwrap(), 12);
        assert!(s.column_offset(3).is_err());
    }
}
