//! Error types for the storage substrate.

use std::fmt;

/// Errors raised by pages, heaps, the buffer pool, and the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The tuple does not fit in the page's remaining free space.
    PageFull { needed: usize, free: usize },
    /// A page byte-image failed validation (bad header fields).
    CorruptPage(String),
    /// Requested slot does not exist on the page.
    SlotOutOfRange { slot: u16, count: u16 },
    /// Requested page number is beyond the end of the heap file.
    PageOutOfRange { page_no: u32, pages: u32 },
    /// No such heap file.
    UnknownHeap(u32),
    /// No such table in the catalog.
    UnknownTable(String),
    /// No such accelerator (UDF) in the catalog.
    UnknownAccelerator(String),
    /// A name is already registered in the catalog.
    DuplicateName(String),
    /// All buffer frames are pinned; nothing can be evicted.
    BufferPoolExhausted,
    /// Tuple bytes disagree with the schema.
    SchemaMismatch(String),
    /// Unsupported page size (must be one of 8, 16, 32 KB).
    BadPageSize(usize),
    /// A page that must be evicted (e.g. its table was dropped) is still
    /// pinned by an in-flight scan.
    PagePinned { heap: u32, page_no: u32 },
    /// A materialized (prediction) table whose source table was dropped:
    /// its rows describe data that no longer exists, so queries refuse it.
    StaleDerivedTable {
        table: String,
        dropped_source: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PageFull { needed, free } => {
                write!(f, "page full: need {needed} bytes, {free} free")
            }
            StorageError::CorruptPage(msg) => write!(f, "corrupt page: {msg}"),
            StorageError::SlotOutOfRange { slot, count } => {
                write!(f, "slot {slot} out of range (page has {count} tuples)")
            }
            StorageError::PageOutOfRange { page_no, pages } => {
                write!(f, "page {page_no} out of range (heap has {pages} pages)")
            }
            StorageError::UnknownHeap(id) => write!(f, "unknown heap file {id}"),
            StorageError::UnknownTable(name) => write!(f, "unknown table '{name}'"),
            StorageError::UnknownAccelerator(name) => {
                write!(f, "unknown accelerator UDF '{name}'")
            }
            StorageError::DuplicateName(name) => {
                write!(f, "name '{name}' already registered in catalog")
            }
            StorageError::BufferPoolExhausted => {
                write!(f, "buffer pool exhausted: all frames pinned")
            }
            StorageError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            StorageError::BadPageSize(sz) => {
                write!(f, "unsupported page size {sz} (expected 8, 16, or 32 KB)")
            }
            StorageError::PagePinned { heap, page_no } => {
                write!(f, "page {page_no} of heap {heap} is pinned; cannot evict")
            }
            StorageError::StaleDerivedTable {
                table,
                dropped_source,
            } => {
                write!(
                    f,
                    "table '{table}' is stale: its source table '{dropped_source}' was dropped"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenient result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::PageFull {
            needed: 100,
            free: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("10"));
        let e = StorageError::UnknownTable("t".into());
        assert!(e.to_string().contains("'t'"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&StorageError::BufferPoolExhausted);
    }
}
