//! Flat tuple batches and the streaming source abstraction — the data-path
//! spine of the reproduction.
//!
//! The paper's Fig. 2 pipeline overlaps four stages at *page* granularity:
//! disk → buffer pool, buffer pool → FPGA (AXI), Strider extraction, and
//! execution-engine compute. Nothing in that pipeline ever materializes the
//! table as row objects; tuples flow from raw page bytes into the engine's
//! scratchpads as a contiguous float stream. [`TupleBatch`] is that
//! stream's unit: one flat row-major `Vec<f32>` holding every column of
//! every tuple extracted from (typically) one page — zero per-tuple
//! allocations, cache-linear reads, and O(pages) total allocation for a
//! full scan.
//!
//! [`TupleSource`] is the seam between the storage/strider side and the
//! execution engine: a rewindable stream of batches. The engine pulls
//! batches and trains as they arrive (the paper's "unpacking of data in the
//! access engine and processing it in the execution engine" interleave,
//! §5.1.1); at each epoch boundary it calls [`TupleSource::rewind`] to
//! re-scan. Implementations decide where batches come from — the buffer
//! pool via Striders, a CPU deform loop (the Fig. 11 ablation), or an
//! already-materialized batch ([`OneBatchSource`]) — so every feeding
//! strategy meets the engine through the same interface.

use std::fmt;

use crate::error::StorageError;

/// Contiguous row-major training tuples: `len() × width()` values in one
/// flat allocation. Row `i`'s columns are `data[i*width .. (i+1)*width]`,
/// in schema order (features then label for training schemas).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TupleBatch {
    data: Vec<f32>,
    width: usize,
}

impl TupleBatch {
    /// An empty batch of `width`-column rows.
    pub fn new(width: usize) -> TupleBatch {
        assert!(width > 0, "tuple batch needs at least one column");
        TupleBatch {
            data: Vec::new(),
            width,
        }
    }

    /// An empty batch with room for `rows` rows.
    pub fn with_capacity(width: usize, rows: usize) -> TupleBatch {
        assert!(width > 0, "tuple batch needs at least one column");
        TupleBatch {
            data: Vec::with_capacity(width * rows),
            width,
        }
    }

    /// Builds a batch from row slices (test/bench convenience; the hot path
    /// fills batches in place via [`TupleBatch::push_row`] or
    /// [`TupleBatch::start_row`]).
    pub fn from_rows<R: AsRef<[f32]>>(
        width: usize,
        rows: impl IntoIterator<Item = R>,
    ) -> TupleBatch {
        let mut b = TupleBatch::new(width);
        for r in rows {
            b.push_row(r.as_ref());
        }
        b
    }

    /// Columns per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len() / self.width
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `i` as a column slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// All rows in order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.width)
    }

    /// The whole flat value stream (what crosses the AXI link after
    /// float conversion).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Appends one full row.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.width, "row width mismatch");
        self.data.extend_from_slice(row);
    }

    /// Starts an in-place row append for value-at-a-time producers (page
    /// deform loops). The row only becomes visible on
    /// [`RowBuilder::finish`]; dropping the builder early discards the
    /// partial row, so error paths cannot corrupt the batch.
    pub fn start_row(&mut self) -> RowBuilder<'_> {
        let start = self.data.len();
        RowBuilder { batch: self, start }
    }

    /// Drops all rows, keeping the allocation (page-loop reuse).
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

/// In-place row append handle — see [`TupleBatch::start_row`].
pub struct RowBuilder<'a> {
    batch: &'a mut TupleBatch,
    /// Offset of the row's first value; `usize::MAX` once finished.
    start: usize,
}

impl RowBuilder<'_> {
    pub fn push(&mut self, v: f32) {
        self.batch.data.push(v);
    }

    /// Commits the row, asserting it is exactly one row wide.
    pub fn finish(mut self) {
        assert_eq!(
            self.batch.data.len() - self.start,
            self.batch.width,
            "row has wrong number of values"
        );
        self.start = usize::MAX;
    }
}

impl Drop for RowBuilder<'_> {
    fn drop(&mut self) {
        if self.start != usize::MAX {
            self.batch.data.truncate(self.start);
        }
    }
}

/// Failure while producing the next batch of a stream. Wraps the producing
/// layer's error (buffer pool, page deform, Strider machine) as text so the
/// trait stays object-safe across crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceError(pub String);

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tuple source: {}", self.0)
    }
}

impl std::error::Error for SourceError {}

impl From<StorageError> for SourceError {
    fn from(e: StorageError) -> SourceError {
        SourceError(e.to_string())
    }
}

/// A rewindable stream of [`TupleBatch`]es — the storage→engine seam.
///
/// Contract: `next_batch` yields batches until the scan is exhausted
/// (`Ok(None)`), all with the same `width()`; `rewind` restarts the scan so
/// the next `next_batch` replays the same tuples in the same order (epoch
/// semantics). Batch boundaries carry no meaning — consumers must produce
/// identical results whether the stream arrives as one batch or many
/// (the execution engine re-groups rows by its thread count internally).
pub trait TupleSource {
    /// Columns per row, fixed for the stream's lifetime.
    fn width(&self) -> usize;

    /// The next batch, or `None` at end of scan.
    fn next_batch(&mut self) -> Result<Option<&TupleBatch>, SourceError>;

    /// Restarts the scan from the first tuple.
    fn rewind(&mut self) -> Result<(), SourceError>;

    /// Total rows per scan, when known up front (sizing hint).
    fn tuple_count_hint(&self) -> Option<u64> {
        None
    }
}

/// [`TupleSource`] over one materialized batch: yields it once per scan.
/// This is how pre-extracted data (tests, benches, the ml baselines) meets
/// the engine's streaming interface.
pub struct OneBatchSource<'a> {
    batch: &'a TupleBatch,
    served: bool,
}

impl<'a> OneBatchSource<'a> {
    pub fn new(batch: &'a TupleBatch) -> OneBatchSource<'a> {
        OneBatchSource {
            batch,
            served: false,
        }
    }
}

impl TupleSource for OneBatchSource<'_> {
    fn width(&self) -> usize {
        self.batch.width()
    }

    fn next_batch(&mut self) -> Result<Option<&TupleBatch>, SourceError> {
        if self.served {
            Ok(None)
        } else {
            self.served = true;
            Ok(Some(self.batch))
        }
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        self.served = false;
        Ok(())
    }

    fn tuple_count_hint(&self) -> Option<u64> {
        Some(self.batch.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_layout_and_row_access() {
        let mut b = TupleBatch::with_capacity(3, 2);
        b.push_row(&[1.0, 2.0, 3.0]);
        b.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.width(), 3);
        assert_eq!(b.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let rows: Vec<&[f32]> = b.rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_builder_commits_on_finish() {
        let mut b = TupleBatch::new(2);
        let mut r = b.start_row();
        r.push(1.0);
        r.push(2.0);
        r.finish();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn row_builder_discards_partial_row_on_drop() {
        let mut b = TupleBatch::new(3);
        b.push_row(&[9.0, 9.0, 9.0]);
        {
            let mut r = b.start_row();
            r.push(1.0); // error path: builder dropped before the row is full
        }
        assert_eq!(b.len(), 1);
        assert_eq!(b.as_slice().len(), 3);
    }

    #[test]
    #[should_panic(expected = "wrong number of values")]
    fn row_builder_rejects_short_finish() {
        let mut b = TupleBatch::new(2);
        let mut r = b.start_row();
        r.push(1.0);
        r.finish();
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn push_row_checks_width() {
        TupleBatch::new(3).push_row(&[1.0]);
    }

    #[test]
    fn one_batch_source_replays_on_rewind() {
        let b = TupleBatch::from_rows(2, [[1.0, 2.0], [3.0, 4.0]]);
        let mut s = OneBatchSource::new(&b);
        assert_eq!(s.width(), 2);
        assert_eq!(s.tuple_count_hint(), Some(2));
        assert_eq!(s.next_batch().unwrap().unwrap().len(), 2);
        assert!(s.next_batch().unwrap().is_none());
        s.rewind().unwrap();
        assert_eq!(s.next_batch().unwrap().unwrap().len(), 2);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = TupleBatch::with_capacity(4, 16);
        b.push_row(&[0.0; 4]);
        let cap = b.data.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.data.capacity(), cap);
    }
}
