//! Disk timing model.
//!
//! The paper's testbed stores data on a 256 GB SATA SSD (§7). We model the
//! device with a fixed access latency plus sequential streaming bandwidth —
//! the two parameters that matter for page-granular reads. Cold-cache
//! experiments are dominated by this model; warm-cache experiments never
//! touch it for the resident tables.

/// Simulated seconds.
pub type Seconds = f64;

/// A simple latency + bandwidth storage device.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DiskModel {
    /// Sustained sequential read bandwidth, bytes/second.
    pub seq_read_bandwidth: f64,
    /// Per-request access latency in seconds (queueing + device).
    pub access_latency: Seconds,
}

impl DiskModel {
    /// SATA-SSD-class device matching the paper's testbed: ~500 MB/s
    /// sequential reads, 100 µs access latency.
    pub fn ssd() -> DiskModel {
        DiskModel {
            seq_read_bandwidth: 500.0e6,
            access_latency: 100.0e-6,
        }
    }

    /// A slower spinning-disk model (used in sensitivity tests).
    pub fn hdd() -> DiskModel {
        DiskModel {
            seq_read_bandwidth: 150.0e6,
            access_latency: 8.0e-3,
        }
    }

    /// An infinitely fast device (isolates CPU/FPGA effects in tests).
    pub fn instant() -> DiskModel {
        DiskModel {
            seq_read_bandwidth: f64::INFINITY,
            access_latency: 0.0,
        }
    }

    /// Time to read `bytes` in one request.
    pub fn read_time(&self, bytes: u64) -> Seconds {
        if bytes == 0 {
            return 0.0;
        }
        self.access_latency + bytes as f64 / self.seq_read_bandwidth
    }

    /// Time to stream `total_bytes` sequentially (one access latency, then
    /// bandwidth-bound) — the cost of a cold sequential table scan.
    pub fn sequential_read_time(&self, total_bytes: u64) -> Seconds {
        if total_bytes == 0 {
            return 0.0;
        }
        self.access_latency + total_bytes as f64 / self.seq_read_bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_reads_32kb_page() {
        let d = DiskModel::ssd();
        let t = d.read_time(32 * 1024);
        // 100 µs latency + 32 KiB / 500 MB/s ≈ 100 µs + 65.5 µs
        assert!(t > 100.0e-6 && t < 200.0e-6, "t = {t}");
    }

    #[test]
    fn sequential_beats_random() {
        let d = DiskModel::ssd();
        let pages = 1000u64;
        let page = 32 * 1024u64;
        let seq = d.sequential_read_time(pages * page);
        let random: f64 = (0..pages).map(|_| d.read_time(page)).sum();
        assert!(seq < random);
        assert!(seq >= (pages * page) as f64 / d.seq_read_bandwidth);
    }

    #[test]
    fn instant_disk_is_free() {
        let d = DiskModel::instant();
        assert_eq!(d.read_time(1 << 30), 0.0);
        assert_eq!(d.sequential_read_time(1 << 30), 0.0);
    }

    #[test]
    fn zero_bytes_cost_nothing() {
        assert_eq!(DiskModel::ssd().read_time(0), 0.0);
        assert_eq!(DiskModel::hdd().sequential_read_time(0), 0.0);
    }
}
