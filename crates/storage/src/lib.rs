//! RDBMS storage substrate for the DAnA reproduction.
//!
//! DAnA's defining feature is that its Striders "directly interface with the
//! buffer pool of the database" (§1) and pointer-chase *raw page bytes*
//! (Fig. 6). That only means something if there are real pages with a real
//! layout, so this crate implements a PostgreSQL-style storage engine:
//!
//! * [`schema`] — column types and table schemas;
//! * [`tuple`] — tuple encoding (header + user data) and CPU-side deforming;
//! * [`page`] — byte-exact slotted heap pages (page header, line pointers,
//!   free space, special space) in 8/16/32 KB sizes;
//! * [`heap`] — heap files: ordered collections of pages on the simulated
//!   disk;
//! * [`disk`] — a sequential/seek disk timing model (SSD-class by default);
//! * [`bufferpool`] — a pin-count + clock-eviction buffer pool with warm /
//!   cold cache control and hit/miss statistics (the paper's default setup
//!   is an 8 GB pool of 32 KB pages, §7);
//! * [`shared_pool`] — the concurrent variant: sharded frames behind
//!   interior mutability, `Arc` page images instead of pin counts, for the
//!   serving tier's many simultaneous scans;
//! * [`catalog`] — the RDBMS catalog that stores both table metadata and the
//!   accelerator artifacts DAnA deploys ("DAnA stores accelerator metadata
//!   (Strider and execution engine instruction schedules) in the RDBMS's
//!   catalog", §3).
//!
//! Everything is deterministic and simulation-timed: reads report the
//! simulated seconds they would cost, never wall-clock time.

pub mod batch;
pub mod bufferpool;
pub mod catalog;
pub mod disk;
pub mod error;
pub mod heap;
pub mod page;
pub mod schema;
pub mod shared_pool;
pub mod tuple;

pub use batch::{OneBatchSource, SourceError, TupleBatch, TupleSource};
pub use bufferpool::{BufferPool, BufferPoolConfig, BufferPoolStats};
pub use catalog::{AcceleratorEntry, Catalog, RuntimeCache, TableEntry};
pub use disk::DiskModel;
pub use error::{StorageError, StorageResult};
pub use heap::{HeapFile, HeapFileBuilder};
pub use page::{HeapPage, PageLayoutDesc, PageView, LINE_POINTER_BYTES, PAGE_HEADER_BYTES};
pub use schema::{ColumnType, Schema};
pub use shared_pool::SharedBufferPool;
pub use tuple::{Datum, Tuple, TUPLE_HEADER_BYTES};

/// Identifies a heap file (a table's storage) within a database.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct HeapId(pub u32);

impl HeapId {
    /// Bit marking a *shadow* heap id — the compressed-frame alias of a
    /// real heap. The scan tier caches compressed page images in the
    /// buffer pool under `heap.shadow()` so they never collide with the
    /// raw pages of the same table, while drop paths can still find and
    /// evict them. The catalog allocates ids sequentially from 1, so the
    /// high bit is never assigned to a real heap.
    pub const SHADOW_BIT: u32 = 1 << 31;

    /// The shadow (compressed-frame) alias of this heap id.
    pub fn shadow(self) -> HeapId {
        HeapId(self.0 | Self::SHADOW_BIT)
    }

    /// True if this id is a shadow alias.
    pub fn is_shadow(self) -> bool {
        self.0 & Self::SHADOW_BIT != 0
    }
}

/// Identifies a page: a heap file plus a page number within it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct PageId {
    pub heap: HeapId,
    pub page_no: u32,
}

impl PageId {
    pub fn new(heap: HeapId, page_no: u32) -> PageId {
        PageId { heap, page_no }
    }
}
