//! Heap files: ordered collections of pages holding one table's tuples.

use crate::batch::TupleBatch;
use crate::error::{StorageError, StorageResult};
use crate::page::{HeapPage, PageLayoutDesc, PageView, TupleDirection};
use crate::schema::Schema;
use crate::tuple::{Tuple, TUPLE_HEADER_BYTES};

/// A table's on-disk storage: a sequence of immutable page images.
///
/// Training tables are write-once/read-many in the paper's evaluation, so
/// the heap is built by a [`HeapFileBuilder`] and then only read (by the
/// buffer pool on behalf of MADlib or the Striders).
#[derive(Debug, Clone)]
pub struct HeapFile {
    schema: Schema,
    layout: PageLayoutDesc,
    pages: Vec<Vec<u8>>,
    tuple_count: u64,
}

impl HeapFile {
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn layout(&self) -> &PageLayoutDesc {
        &self.layout
    }

    /// Number of pages.
    pub fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Total number of tuples across all pages.
    pub fn tuple_count(&self) -> u64 {
        self.tuple_count
    }

    /// Total size in bytes (pages are fixed-size).
    pub fn total_bytes(&self) -> u64 {
        self.pages.len() as u64 * self.layout.page_size as u64
    }

    /// Tuples living in the page range `[start, end)`: every heap page
    /// is full (the layout's capacity) except possibly the last — pure
    /// arithmetic, no page decode. The shard planner and the range scan
    /// sources share this, so shard tuple counts always agree with what
    /// a range scan yields.
    pub fn tuples_in_page_range(&self, start: u32, end: u32) -> u64 {
        let pages = self.page_count();
        let capacity = self.layout.capacity as u64;
        (start..end.min(pages))
            .map(|p| {
                if p + 1 == pages {
                    self.tuple_count - capacity * (pages as u64 - 1)
                } else {
                    capacity
                }
            })
            .sum()
    }

    /// Raw image of page `page_no` (what the disk returns).
    pub fn page_bytes(&self, page_no: u32) -> StorageResult<&[u8]> {
        self.pages
            .get(page_no as usize)
            .map(|p| p.as_slice())
            .ok_or(StorageError::PageOutOfRange {
                page_no,
                pages: self.pages.len() as u32,
            })
    }

    /// Decodes page `page_no` into a [`HeapPage`] view.
    pub fn page(&self, page_no: u32) -> StorageResult<HeapPage> {
        HeapPage::from_bytes(self.page_bytes(page_no)?.to_vec(), self.layout)
    }

    /// Scans the whole heap into one flat [`TupleBatch`] (zero-copy page
    /// views, no per-tuple allocation) — the CPU-side counterpart of the
    /// Striders' batch extraction, shared by the software baselines.
    pub fn scan_batch(&self) -> StorageResult<TupleBatch> {
        let mut batch = TupleBatch::with_capacity(self.schema.len(), self.tuple_count as usize);
        for bytes in &self.pages {
            PageView::new(bytes, self.layout)?.deform_all_into(&self.schema, &mut batch)?;
        }
        Ok(batch)
    }

    /// Sequentially scans every tuple (CPU-side decode; this is the code
    /// path software baselines use).
    pub fn scan(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.pages.iter().flat_map(move |bytes| {
            let page = HeapPage::from_bytes(bytes.clone(), self.layout)
                .expect("heap pages are well-formed by construction");
            let schema = self.schema.clone();
            (0..page.tuple_count())
                .map(move |s| {
                    Tuple::deform(&schema, page.tuple_bytes(s).expect("slot < count"))
                        .expect("heap tuples are well-formed by construction")
                })
                .collect::<Vec<_>>()
        })
    }
}

/// Builds a heap file by appending tuples, sealing pages as they fill.
pub struct HeapFileBuilder {
    schema: Schema,
    layout: PageLayoutDesc,
    pages: Vec<Vec<u8>>,
    current: HeapPage,
    tuple_count: u64,
    next_xid: u32,
}

impl HeapFileBuilder {
    /// Starts a heap for `schema` with the given page size and placement
    /// direction (no special space — the evaluation tables carry none).
    pub fn new(
        schema: Schema,
        page_size: usize,
        direction: TupleDirection,
    ) -> StorageResult<HeapFileBuilder> {
        let layout = PageLayoutDesc::new(
            page_size,
            0,
            TUPLE_HEADER_BYTES + schema.tuple_data_width(),
            TUPLE_HEADER_BYTES,
            direction,
        )?;
        Ok(HeapFileBuilder {
            schema,
            layout,
            pages: Vec::new(),
            current: HeapPage::new(layout),
            tuple_count: 0,
            next_xid: 2, // xid 0/1 are reserved, like PostgreSQL's Invalid/Bootstrap
        })
    }

    /// Appends one tuple.
    pub fn insert(&mut self, tuple: &Tuple) -> StorageResult<()> {
        let ctid = ((self.pages.len() as u32) << 16) | self.current.tuple_count() as u32;
        let bytes = tuple.form(&self.schema, self.next_xid, ctid)?;
        self.insert_formed(bytes)
    }

    /// Appends one tuple from raw user-data byte slices (a fresh header is
    /// formed; `parts` concatenate to exactly the schema's data width).
    /// The inference tier's materialization path: source columns are
    /// copied byte-for-byte — no `Datum` round trip, types preserved
    /// exactly — with the appended prediction cell's bytes behind them.
    pub fn insert_raw(&mut self, parts: &[&[u8]]) -> StorageResult<()> {
        let width = self.schema.tuple_data_width();
        let total: usize = parts.iter().map(|p| p.len()).sum();
        if total != width {
            return Err(StorageError::SchemaMismatch(format!(
                "raw tuple is {total} bytes, schema expects {width}"
            )));
        }
        let ctid = ((self.pages.len() as u32) << 16) | self.current.tuple_count() as u32;
        let mut bytes = Vec::with_capacity(TUPLE_HEADER_BYTES + width);
        crate::tuple::form_header(self.next_xid, ctid, &mut bytes);
        for p in parts {
            bytes.extend_from_slice(p);
        }
        self.insert_formed(bytes)
    }

    fn insert_formed(&mut self, bytes: Vec<u8>) -> StorageResult<()> {
        if self.current.free_slots() == 0 {
            self.rotate_page();
        }
        self.current.insert(&bytes)?;
        self.tuple_count += 1;
        self.next_xid = self.next_xid.wrapping_add(1).max(2);
        Ok(())
    }

    fn rotate_page(&mut self) {
        let mut full = std::mem::replace(&mut self.current, HeapPage::new(self.layout));
        full.seal();
        self.pages.push(full.into_bytes());
    }

    /// Seals the final page and returns the finished heap file.
    pub fn finish(mut self) -> HeapFile {
        if self.current.tuple_count() > 0 {
            self.rotate_page();
        }
        HeapFile {
            schema: self.schema,
            layout: self.layout,
            pages: self.pages,
            tuple_count: self.tuple_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, features: usize, page_size: usize) -> HeapFile {
        let schema = Schema::training(features);
        let mut b = HeapFileBuilder::new(schema, page_size, TupleDirection::Ascending).unwrap();
        for k in 0..n {
            let feats: Vec<f32> = (0..features).map(|i| (k * features + i) as f32).collect();
            b.insert(&Tuple::training(&feats, k as f32)).unwrap();
        }
        b.finish()
    }

    #[test]
    fn page_count_matches_capacity_math() {
        let heap = build(1000, 10, 8 * 1024);
        let cap = heap.layout().capacity as usize;
        assert_eq!(heap.page_count() as usize, 1000usize.div_ceil(cap));
        assert_eq!(heap.tuple_count(), 1000);
    }

    #[test]
    fn scan_returns_tuples_in_insert_order() {
        let heap = build(300, 4, 8 * 1024);
        let labels: Vec<f32> = heap.scan().map(|t| t.as_training().1).collect();
        assert_eq!(labels.len(), 300);
        for (k, y) in labels.iter().enumerate() {
            assert_eq!(*y, k as f32);
        }
    }

    #[test]
    fn pages_are_sealed_with_checksums() {
        let heap = build(500, 8, 8 * 1024);
        for p in 0..heap.page_count() {
            let page = heap.page(p).unwrap();
            assert!(page.verify_checksum());
            assert!(page.tuple_count() > 0);
        }
    }

    #[test]
    fn out_of_range_page_errors() {
        let heap = build(10, 2, 8 * 1024);
        assert!(heap.page_bytes(heap.page_count()).is_err());
    }

    #[test]
    fn empty_heap_has_no_pages() {
        let b =
            HeapFileBuilder::new(Schema::training(3), 8 * 1024, TupleDirection::Ascending).unwrap();
        let heap = b.finish();
        assert_eq!(heap.page_count(), 0);
        assert_eq!(heap.tuple_count(), 0);
        assert_eq!(heap.scan().count(), 0);
    }

    #[test]
    fn descending_direction_round_trips() {
        let schema = Schema::training(5);
        let mut b = HeapFileBuilder::new(schema, 8 * 1024, TupleDirection::Descending).unwrap();
        for k in 0..50 {
            b.insert(&Tuple::training(&[k as f32; 5], -(k as f32)))
                .unwrap();
        }
        let heap = b.finish();
        let labels: Vec<f32> = heap.scan().map(|t| t.as_training().1).collect();
        assert_eq!(labels[0], 0.0);
        assert_eq!(labels[49], -49.0);
    }

    #[test]
    fn large_pages_hold_more_tuples() {
        let h8 = build(100, 10, 8 * 1024);
        let h32 = build(100, 10, 32 * 1024);
        assert!(h32.layout().capacity > h8.layout().capacity);
        assert!(h32.page_count() <= h8.page_count());
    }
}
