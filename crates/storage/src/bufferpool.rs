//! Buffer pool: fixed-size frame cache with clock eviction.
//!
//! "During query execution, the RDBMS fills the buffer pool, from which
//! DAnA ships the data pages to the FPGA for processing." (§3) The pool is
//! the *hand-off point* between the database and the accelerator, so it
//! tracks everything the evaluation needs: hit/miss counts, simulated I/O
//! seconds, and warm/cold residency control (the paper reports both cache
//! settings for every experiment, §7).

use std::collections::HashMap;

use crate::disk::{DiskModel, Seconds};
use crate::error::{StorageError, StorageResult};
use crate::heap::HeapFile;
use crate::{HeapId, PageId};

/// Pool sizing configuration. The paper's default: 8 GB pool, 32 KB pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BufferPoolConfig {
    /// Total pool capacity in bytes.
    pub pool_bytes: u64,
    /// Page size in bytes (all cached heaps must match).
    pub page_size: usize,
}

impl BufferPoolConfig {
    /// The paper's default setup (§7): 32 KB buffer pages, 8 GB pool.
    pub fn paper_default() -> BufferPoolConfig {
        BufferPoolConfig {
            pool_bytes: 8 << 30,
            page_size: 32 * 1024,
        }
    }

    /// Number of frames the pool holds.
    pub fn frames(&self) -> usize {
        (self.pool_bytes / self.page_size as u64) as usize
    }
}

/// Counters exposed for the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BufferPoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Simulated seconds spent on disk reads (misses only).
    pub io_seconds: Seconds,
}

impl BufferPoolStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    page: Option<PageId>,
    bytes: Vec<u8>,
    pin_count: u32,
    referenced: bool,
}

/// The buffer pool proper.
///
/// The pool is deliberately single-writer in this simulation: the modeled
/// *hardware* is concurrent, but simulated time is composed analytically, so
/// interior mutability buys nothing and determinism is preserved.
pub struct BufferPool {
    config: BufferPoolConfig,
    frames: Vec<Frame>,
    page_table: HashMap<PageId, usize>,
    clock_hand: usize,
    stats: BufferPoolStats,
}

impl BufferPool {
    pub fn new(config: BufferPoolConfig) -> BufferPool {
        let n = config.frames().max(1);
        let frames = (0..n)
            .map(|_| Frame {
                page: None,
                bytes: Vec::new(),
                pin_count: 0,
                referenced: false,
            })
            .collect();
        BufferPool {
            config,
            frames,
            page_table: HashMap::new(),
            clock_hand: 0,
            stats: BufferPoolStats::default(),
        }
    }

    pub fn config(&self) -> BufferPoolConfig {
        self.config
    }

    pub fn stats(&self) -> BufferPoolStats {
        self.stats
    }

    /// Zeroes the statistics (e.g. after prewarming, whose I/O is setup
    /// cost, not query cost).
    pub fn reset_stats(&mut self) {
        self.stats = BufferPoolStats::default();
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.page_table.len()
    }

    /// Total bytes of resident page images. With raw pages this is
    /// `resident_pages * page_size`, but compressed shadow frames hold
    /// fewer bytes than a page — this gauge is the live numerator of the
    /// pool-level compression ratio.
    pub fn resident_bytes(&self) -> u64 {
        self.frames
            .iter()
            .filter(|f| f.page.is_some())
            .map(|f| f.bytes.len() as u64)
            .sum()
    }

    /// Resident frame count per heap id (sorted by heap id). Shadow heaps
    /// appear under their aliased id, so compressed and raw residency of
    /// the same table show up as separate rows.
    pub fn per_heap_frames(&self) -> Vec<(u32, usize)> {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for f in self.frames.iter() {
            if let Some(p) = f.page {
                *counts.entry(p.heap.0).or_insert(0) += 1;
            }
        }
        let mut rows: Vec<(u32, usize)> = counts.into_iter().collect();
        rows.sort_unstable();
        rows
    }

    /// Fetches a page into the pool (if absent), pins it, and returns its
    /// frame index plus the simulated I/O seconds this access cost.
    ///
    /// `heap` provides the bytes on a miss; `disk` prices the read.
    pub fn fetch(
        &mut self,
        page_id: PageId,
        heap: &HeapFile,
        disk: &DiskModel,
    ) -> StorageResult<(usize, Seconds)> {
        if heap.layout().page_size != self.config.page_size {
            return Err(StorageError::BadPageSize(heap.layout().page_size));
        }
        if let Some(&frame) = self.page_table.get(&page_id) {
            self.stats.hits += 1;
            self.frames[frame].pin_count += 1;
            self.frames[frame].referenced = true;
            return Ok((frame, 0.0));
        }
        self.stats.misses += 1;
        let io = disk.read_time(self.config.page_size as u64);
        self.stats.io_seconds += io;
        let bytes = heap.page_bytes(page_id.page_no)?.to_vec();
        let frame = self.find_victim()?;
        if let Some(old) = self.frames[frame].page.take() {
            self.page_table.remove(&old);
            self.stats.evictions += 1;
        }
        self.frames[frame].bytes = bytes;
        self.frames[frame].page = Some(page_id);
        self.frames[frame].pin_count = 1;
        self.frames[frame].referenced = true;
        self.page_table.insert(page_id, frame);
        Ok((frame, io))
    }

    /// Fetches caller-provided bytes into the pool under `page_id` — the
    /// scan tier's *compressed-frame* path. Unlike [`BufferPool::fetch`],
    /// the frame holds exactly `bytes` (typically a compressed page image,
    /// cached under a shadow heap id) and the miss is priced at the
    /// *actual* byte count, which is where compressed storage saves its
    /// I/O. Pin/unpin discipline is identical to `fetch`.
    pub fn fetch_raw(
        &mut self,
        page_id: PageId,
        bytes: &[u8],
        disk: &DiskModel,
    ) -> StorageResult<(usize, Seconds)> {
        if let Some(&frame) = self.page_table.get(&page_id) {
            self.stats.hits += 1;
            self.frames[frame].pin_count += 1;
            self.frames[frame].referenced = true;
            return Ok((frame, 0.0));
        }
        self.stats.misses += 1;
        let io = disk.read_time(bytes.len() as u64);
        self.stats.io_seconds += io;
        let frame = self.find_victim()?;
        if let Some(old) = self.frames[frame].page.take() {
            self.page_table.remove(&old);
            self.stats.evictions += 1;
        }
        self.frames[frame].bytes = bytes.to_vec();
        self.frames[frame].page = Some(page_id);
        self.frames[frame].pin_count = 1;
        self.frames[frame].referenced = true;
        self.page_table.insert(page_id, frame);
        Ok((frame, io))
    }

    /// Releases a pin taken by [`BufferPool::fetch`].
    pub fn unpin(&mut self, frame: usize) {
        let f = &mut self.frames[frame];
        assert!(f.pin_count > 0, "unpin without matching pin");
        f.pin_count -= 1;
    }

    /// Borrow the bytes of a (pinned or resident) frame.
    pub fn frame_bytes(&self, frame: usize) -> &[u8] {
        &self.frames[frame].bytes
    }

    /// True if `page_id` is currently resident.
    pub fn contains(&self, page_id: PageId) -> bool {
        self.page_table.contains_key(&page_id)
    }

    /// Number of frames currently pinned (leak detector: after every query
    /// completes, this must be zero).
    pub fn pinned_frames(&self) -> usize {
        self.frames.iter().filter(|f| f.pin_count > 0).count()
    }

    /// Evicts every resident page of `heap_id` — the `DROP TABLE` path. A
    /// dropped table's pages must not stay pinned-resident forever, silently
    /// shrinking the pool for every later query.
    ///
    /// Errors with [`StorageError::PagePinned`] (evicting nothing) if any
    /// page of the heap is still pinned by an in-flight scan.
    pub fn evict_heap(&mut self, heap_id: HeapId) -> StorageResult<usize> {
        if let Some(pinned) = self
            .frames
            .iter()
            .find_map(|f| f.page.filter(|p| p.heap == heap_id && f.pin_count > 0))
        {
            return Err(StorageError::PagePinned {
                heap: pinned.heap.0,
                page_no: pinned.page_no,
            });
        }
        let mut evicted = 0;
        for f in &mut self.frames {
            if f.page.is_some_and(|p| p.heap == heap_id) {
                let p = f.page.take().expect("page checked above");
                self.page_table.remove(&p);
                f.bytes.clear();
                f.referenced = false;
                evicted += 1;
            }
        }
        Ok(evicted)
    }

    /// Loads as much of `heap` as fits (front-to-back) without counting the
    /// I/O toward query statistics — the warm-cache setup of §7: "before
    /// query execution, training data tables ... reside in the buffer pool".
    ///
    /// Returns the number of resident pages after prewarming.
    pub fn prewarm(&mut self, heap_id: crate::HeapId, heap: &HeapFile) -> StorageResult<usize> {
        let frames = self.frames.len();
        let pages = heap.page_count().min(frames as u32);
        for page_no in 0..pages {
            let page_id = PageId::new(heap_id, page_no);
            if self.page_table.contains_key(&page_id) {
                continue;
            }
            let bytes = heap.page_bytes(page_no)?.to_vec();
            let frame = self.find_victim()?;
            if let Some(old) = self.frames[frame].page.take() {
                self.page_table.remove(&old);
            }
            self.frames[frame].bytes = bytes;
            self.frames[frame].page = Some(page_id);
            self.frames[frame].pin_count = 0;
            self.frames[frame].referenced = false;
            self.page_table.insert(page_id, frame);
        }
        Ok(self.resident_pages())
    }

    /// Drops every unpinned page — the cold-cache setup of §7: "before
    /// execution, no training data tables reside in the buffer pool".
    pub fn clear(&mut self) {
        for (i, f) in self.frames.iter_mut().enumerate() {
            if f.pin_count == 0 {
                if let Some(p) = f.page.take() {
                    self.page_table.remove(&p);
                }
                f.bytes.clear();
                let _ = i;
            }
        }
        self.clock_hand = 0;
    }

    /// Second-chance (clock) victim selection over unpinned frames.
    fn find_victim(&mut self) -> StorageResult<usize> {
        // Fast path: a never-used frame.
        if let Some(idx) = self
            .frames
            .iter()
            .position(|f| f.page.is_none() && f.pin_count == 0)
        {
            return Ok(idx);
        }
        let n = self.frames.len();
        // Two sweeps: the first clears reference bits, the second takes the
        // first unreferenced, unpinned frame.
        for _ in 0..2 * n {
            let idx = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % n;
            let f = &mut self.frames[idx];
            if f.pin_count > 0 {
                continue;
            }
            if f.referenced {
                f.referenced = false;
            } else {
                return Ok(idx);
            }
        }
        Err(StorageError::BufferPoolExhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapFileBuilder;
    use crate::page::TupleDirection;
    use crate::schema::Schema;
    use crate::tuple::Tuple;
    use crate::HeapId;

    fn small_heap(tuples: usize) -> HeapFile {
        let schema = Schema::training(10);
        let mut b = HeapFileBuilder::new(schema, 8 * 1024, TupleDirection::Ascending).unwrap();
        for k in 0..tuples {
            b.insert(&Tuple::training(&[k as f32; 10], k as f32))
                .unwrap();
        }
        b.finish()
    }

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(BufferPoolConfig {
            pool_bytes: (frames * 8 * 1024) as u64,
            page_size: 8 * 1024,
        })
    }

    #[test]
    fn miss_then_hit() {
        let heap = small_heap(500);
        let mut bp = pool(8);
        let disk = DiskModel::ssd();
        let pid = PageId::new(HeapId(1), 0);
        let (f1, io1) = bp.fetch(pid, &heap, &disk).unwrap();
        assert!(io1 > 0.0);
        bp.unpin(f1);
        let (f2, io2) = bp.fetch(pid, &heap, &disk).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(io2, 0.0);
        bp.unpin(f2);
        assert_eq!(bp.stats().hits, 1);
        assert_eq!(bp.stats().misses, 1);
    }

    #[test]
    fn eviction_under_pressure() {
        let heap = small_heap(2000); // several pages
        assert!(heap.page_count() >= 4);
        let mut bp = pool(2);
        let disk = DiskModel::instant();
        for page_no in 0..4 {
            let (f, _) = bp
                .fetch(PageId::new(HeapId(1), page_no), &heap, &disk)
                .unwrap();
            bp.unpin(f);
        }
        assert_eq!(bp.resident_pages(), 2);
        assert_eq!(bp.stats().evictions, 2);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let heap = small_heap(2000);
        let mut bp = pool(2);
        let disk = DiskModel::instant();
        let (f0, _) = bp.fetch(PageId::new(HeapId(1), 0), &heap, &disk).unwrap();
        // Keep page 0 pinned; fetch two more pages through the other frame.
        let (f1, _) = bp.fetch(PageId::new(HeapId(1), 1), &heap, &disk).unwrap();
        bp.unpin(f1);
        let (f2, _) = bp.fetch(PageId::new(HeapId(1), 2), &heap, &disk).unwrap();
        assert_ne!(f2, f0, "pinned frame must not be the victim");
        bp.unpin(f2);
        assert!(bp.contains(PageId::new(HeapId(1), 0)));
        bp.unpin(f0);
    }

    #[test]
    fn all_pinned_exhausts_pool() {
        let heap = small_heap(2000);
        let mut bp = pool(2);
        let disk = DiskModel::instant();
        let _f0 = bp.fetch(PageId::new(HeapId(1), 0), &heap, &disk).unwrap();
        let _f1 = bp.fetch(PageId::new(HeapId(1), 1), &heap, &disk).unwrap();
        let err = bp.fetch(PageId::new(HeapId(1), 2), &heap, &disk);
        assert!(matches!(err, Err(StorageError::BufferPoolExhausted)));
    }

    #[test]
    fn prewarm_makes_scans_free() {
        let heap = small_heap(1500);
        let mut bp = pool(heap.page_count() as usize + 1);
        let disk = DiskModel::ssd();
        bp.prewarm(HeapId(1), &heap).unwrap();
        bp.reset_stats();
        for page_no in 0..heap.page_count() {
            let (f, io) = bp
                .fetch(PageId::new(HeapId(1), page_no), &heap, &disk)
                .unwrap();
            assert_eq!(io, 0.0);
            bp.unpin(f);
        }
        assert_eq!(bp.stats().misses, 0);
        assert_eq!(bp.stats().io_seconds, 0.0);
        assert!((bp.stats().hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clear_makes_cache_cold() {
        let heap = small_heap(500);
        let mut bp = pool(8);
        let disk = DiskModel::ssd();
        bp.prewarm(HeapId(1), &heap).unwrap();
        assert!(bp.resident_pages() > 0);
        bp.clear();
        assert_eq!(bp.resident_pages(), 0);
        let (f, io) = bp.fetch(PageId::new(HeapId(1), 0), &heap, &disk).unwrap();
        assert!(io > 0.0);
        bp.unpin(f);
    }

    #[test]
    fn evict_heap_removes_only_that_heap() {
        let heap = small_heap(500);
        let mut bp = pool(8);
        let disk = DiskModel::instant();
        bp.prewarm(HeapId(1), &heap).unwrap();
        let (f, _) = bp.fetch(PageId::new(HeapId(2), 0), &heap, &disk).unwrap();
        bp.unpin(f);
        let resident_before = bp.resident_pages();
        let evicted = bp.evict_heap(HeapId(1)).unwrap();
        assert!(evicted > 0);
        assert_eq!(bp.resident_pages(), resident_before - evicted);
        assert!(!bp.contains(PageId::new(HeapId(1), 0)));
        assert!(bp.contains(PageId::new(HeapId(2), 0)));
        // Idempotent: nothing left to evict.
        assert_eq!(bp.evict_heap(HeapId(1)).unwrap(), 0);
    }

    #[test]
    fn evict_heap_refuses_pinned_pages() {
        let heap = small_heap(500);
        let mut bp = pool(8);
        let disk = DiskModel::instant();
        let (f, _) = bp.fetch(PageId::new(HeapId(1), 0), &heap, &disk).unwrap();
        assert_eq!(bp.pinned_frames(), 1);
        assert!(matches!(
            bp.evict_heap(HeapId(1)),
            Err(StorageError::PagePinned {
                heap: 1,
                page_no: 0
            })
        ));
        assert!(bp.contains(PageId::new(HeapId(1), 0)), "evicted nothing");
        bp.unpin(f);
        assert_eq!(bp.pinned_frames(), 0);
        assert_eq!(bp.evict_heap(HeapId(1)).unwrap(), 1);
    }

    #[test]
    fn page_size_mismatch_rejected() {
        let heap = small_heap(10); // 8 KB pages
        let mut bp = BufferPool::new(BufferPoolConfig {
            pool_bytes: 1 << 20,
            page_size: 32 * 1024,
        });
        let err = bp.fetch(PageId::new(HeapId(1), 0), &heap, &DiskModel::ssd());
        assert!(matches!(err, Err(StorageError::BadPageSize(_))));
    }

    #[test]
    fn frame_bytes_are_the_page_image() {
        let heap = small_heap(100);
        let mut bp = pool(4);
        let (f, _) = bp
            .fetch(PageId::new(HeapId(1), 0), &heap, &DiskModel::instant())
            .unwrap();
        assert_eq!(bp.frame_bytes(f), heap.page_bytes(0).unwrap());
        bp.unpin(f);
    }
}
