//! Tuple encoding: header + user data, and CPU-side deforming.
//!
//! Each heap tuple carries a header of transaction/visibility metadata (the
//! "auxiliary information" the Strider `cln` instruction strips, §5.1.2)
//! followed by the fixed-width user data laid out per [`crate::Schema`].
//!
//! Layout of the 16-byte tuple header (little-endian):
//!
//! ```text
//! offset  field       meaning
//! 0..4    t_xmin      inserting transaction id
//! 4..8    t_xmax      deleting transaction id (0 = live)
//! 8..10   t_infomask  visibility/status flags
//! 10..11  t_hoff      header size in bytes — user data starts here (16)
//! 11..12  t_nullmask  reserved null-bitmap byte (0: training data is NOT NULL)
//! 12..16  t_ctid      self-pointer (page_no<<16 | slot), for diagnostics
//! ```

use crate::batch::TupleBatch;
use crate::error::{StorageError, StorageResult};
use crate::schema::{ColumnType, Schema};

/// Size of the on-page tuple header in bytes.
pub const TUPLE_HEADER_BYTES: usize = 16;

/// A single typed value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Datum {
    Float4(f32),
    Float8(f64),
    Int4(i32),
    Int8(i64),
}

impl Datum {
    /// The column type this datum belongs to.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Datum::Float4(_) => ColumnType::Float4,
            Datum::Float8(_) => ColumnType::Float8,
            Datum::Int4(_) => ColumnType::Int4,
            Datum::Int8(_) => ColumnType::Int8,
        }
    }

    /// Numeric value as f64 (lossless for all supported types' ranges used
    /// in the workloads).
    pub fn as_f64(&self) -> f64 {
        match self {
            Datum::Float4(v) => *v as f64,
            Datum::Float8(v) => *v,
            Datum::Int4(v) => *v as f64,
            Datum::Int8(v) => *v as f64,
        }
    }

    /// Numeric value as f32 (the execution engine's native width).
    pub fn as_f32(&self) -> f32 {
        match self {
            Datum::Float4(v) => *v,
            Datum::Float8(v) => *v as f32,
            Datum::Int4(v) => *v as f32,
            Datum::Int8(v) => *v as f32,
        }
    }

    fn write_to(&self, out: &mut Vec<u8>) {
        match self {
            Datum::Float4(v) => out.extend_from_slice(&v.to_le_bytes()),
            Datum::Float8(v) => out.extend_from_slice(&v.to_le_bytes()),
            Datum::Int4(v) => out.extend_from_slice(&v.to_le_bytes()),
            Datum::Int8(v) => out.extend_from_slice(&v.to_le_bytes()),
        }
    }

    fn read_from(ty: ColumnType, bytes: &[u8]) -> StorageResult<Datum> {
        let need = ty.width();
        if bytes.len() < need {
            return Err(StorageError::SchemaMismatch(format!(
                "datum needs {need} bytes, {} available",
                bytes.len()
            )));
        }
        Ok(match ty {
            ColumnType::Float4 => Datum::Float4(f32::from_le_bytes(bytes[..4].try_into().unwrap())),
            ColumnType::Float8 => Datum::Float8(f64::from_le_bytes(bytes[..8].try_into().unwrap())),
            ColumnType::Int4 => Datum::Int4(i32::from_le_bytes(bytes[..4].try_into().unwrap())),
            ColumnType::Int8 => Datum::Int8(i64::from_le_bytes(bytes[..8].try_into().unwrap())),
        })
    }
}

/// Writes the 16-byte on-page tuple header (see the module docs) — shared
/// by [`Tuple::form`] and the builder's raw byte-copy insert path.
pub(crate) fn form_header(xmin: u32, ctid: u32, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&xmin.to_le_bytes()); // t_xmin
    out.extend_from_slice(&0u32.to_le_bytes()); // t_xmax (live)
    out.extend_from_slice(&0x0001u16.to_le_bytes()); // t_infomask: HEAP_XMIN_COMMITTED
    out.push(TUPLE_HEADER_BYTES as u8); // t_hoff
    out.push(0); // t_nullmask
    out.extend_from_slice(&ctid.to_le_bytes()); // t_ctid
    debug_assert_eq!(out.len() - start, TUPLE_HEADER_BYTES);
}

/// A decoded tuple: one datum per schema column.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    pub values: Vec<Datum>,
}

impl Tuple {
    pub fn new(values: Vec<Datum>) -> Tuple {
        Tuple { values }
    }

    /// Builds a training tuple (`x0..x{n-1}, y`) from a feature slice and a
    /// label, matching [`Schema::training`].
    pub fn training(features: &[f32], label: f32) -> Tuple {
        let mut values: Vec<Datum> = features.iter().map(|&f| Datum::Float4(f)).collect();
        values.push(Datum::Float4(label));
        Tuple { values }
    }

    /// Builds an LRMF rating tuple, matching [`Schema::rating`].
    pub fn rating(i: i32, j: i32, rating: f32) -> Tuple {
        Tuple {
            values: vec![Datum::Int4(i), Datum::Int4(j), Datum::Float4(rating)],
        }
    }

    /// Serializes header + user data into on-page bytes.
    ///
    /// `xmin` is the inserting transaction id; `ctid` the self-pointer.
    pub fn form(&self, schema: &Schema, xmin: u32, ctid: u32) -> StorageResult<Vec<u8>> {
        if self.values.len() != schema.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "tuple has {} values, schema {} columns",
                self.values.len(),
                schema.len()
            )));
        }
        for (v, c) in self.values.iter().zip(schema.columns()) {
            if v.column_type() != c.ty {
                return Err(StorageError::SchemaMismatch(format!(
                    "column '{}' expects {:?}, got {:?}",
                    c.name,
                    c.ty,
                    v.column_type()
                )));
            }
        }
        let mut out = Vec::with_capacity(TUPLE_HEADER_BYTES + schema.tuple_data_width());
        form_header(xmin, ctid, &mut out);
        for v in &self.values {
            v.write_to(&mut out);
        }
        Ok(out)
    }

    /// Deforms on-page bytes back into a tuple — the CPU-side operation that
    /// MADlib performs for every tuple and that Striders replace on-chip.
    pub fn deform(schema: &Schema, bytes: &[u8]) -> StorageResult<Tuple> {
        if bytes.len() < TUPLE_HEADER_BYTES {
            return Err(StorageError::SchemaMismatch(format!(
                "tuple too short for header: {} bytes",
                bytes.len()
            )));
        }
        let hoff = bytes[10] as usize;
        if hoff < TUPLE_HEADER_BYTES || hoff > bytes.len() {
            return Err(StorageError::SchemaMismatch(format!("bad t_hoff {hoff}")));
        }
        let mut data = &bytes[hoff..];
        let mut values = Vec::with_capacity(schema.len());
        for col in schema.columns() {
            let d = Datum::read_from(col.ty, data)?;
            data = &data[col.ty.width()..];
            values.push(d);
        }
        Ok(Tuple { values })
    }

    /// Deforms on-page bytes directly into a flat [`TupleBatch`] row — the
    /// streaming data path's CPU-side deform: same header validation as
    /// [`Tuple::deform`], but converting each datum straight to the
    /// engine's native f32 with no [`Datum`] materialization.
    pub fn deform_into(schema: &Schema, bytes: &[u8], batch: &mut TupleBatch) -> StorageResult<()> {
        if bytes.len() < TUPLE_HEADER_BYTES {
            return Err(StorageError::SchemaMismatch(format!(
                "tuple too short for header: {} bytes",
                bytes.len()
            )));
        }
        let hoff = bytes[10] as usize;
        if hoff < TUPLE_HEADER_BYTES || hoff > bytes.len() {
            return Err(StorageError::SchemaMismatch(format!("bad t_hoff {hoff}")));
        }
        let data = &bytes[hoff..];
        if data.len() < schema.tuple_data_width() {
            return Err(StorageError::SchemaMismatch(format!(
                "tuple data is {} bytes, schema expects {}",
                data.len(),
                schema.tuple_data_width()
            )));
        }
        let mut row = batch.start_row();
        let mut off = 0usize;
        for col in schema.columns() {
            let w = col.ty.width();
            row.push(col.ty.decode_f32(&data[off..off + w]));
            off += w;
        }
        row.finish();
        Ok(())
    }

    /// Total on-page size of this tuple under `schema`.
    pub fn formed_size(schema: &Schema) -> usize {
        TUPLE_HEADER_BYTES + schema.tuple_data_width()
    }

    /// Feature vector and label for a [`Schema::training`]-shaped tuple
    /// (all columns but the last are features, the last is the label).
    pub fn as_training(&self) -> (Vec<f32>, f32) {
        let n = self.values.len();
        assert!(n >= 1, "training tuple needs at least a label");
        let features = self.values[..n - 1].iter().map(|d| d.as_f32()).collect();
        (features, self.values[n - 1].as_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn form_deform_round_trip() {
        let schema = Schema::training(4);
        let t = Tuple::training(&[1.0, -2.5, 3.25, 0.0], 7.5);
        let bytes = t.form(&schema, 42, 0x0001_0002).unwrap();
        assert_eq!(bytes.len(), Tuple::formed_size(&schema));
        let back = Tuple::deform(&schema, &bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rating_round_trip() {
        let schema = Schema::rating();
        let t = Tuple::rating(17, 923, 4.5);
        let bytes = t.form(&schema, 1, 0).unwrap();
        let back = Tuple::deform(&schema, &bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.values[0], Datum::Int4(17));
    }

    #[test]
    fn header_fields_are_where_striders_expect() {
        let schema = Schema::training(1);
        let bytes = Tuple::training(&[1.0], 2.0)
            .form(&schema, 9, 0xBEEF)
            .unwrap();
        assert_eq!(u32::from_le_bytes(bytes[0..4].try_into().unwrap()), 9); // xmin
        assert_eq!(bytes[10] as usize, TUPLE_HEADER_BYTES); // t_hoff
        assert_eq!(
            u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
            0xBEEF
        );
        // user data begins exactly at t_hoff
        let x0 = f32::from_le_bytes(bytes[16..20].try_into().unwrap());
        assert_eq!(x0, 1.0);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let schema = Schema::training(2);
        let t = Tuple::training(&[1.0], 2.0); // one feature short
        assert!(t.form(&schema, 0, 0).is_err());
        let t2 = Tuple::rating(1, 2, 3.0); // wrong types entirely
        assert!(t2.form(&schema, 0, 0).is_err());
    }

    #[test]
    fn deform_rejects_truncated_bytes() {
        let schema = Schema::training(2);
        let bytes = Tuple::training(&[1.0, 2.0], 3.0)
            .form(&schema, 0, 0)
            .unwrap();
        assert!(Tuple::deform(&schema, &bytes[..bytes.len() - 1]).is_err());
        assert!(Tuple::deform(&schema, &bytes[..8]).is_err());
    }

    #[test]
    fn as_training_splits_features_and_label() {
        let t = Tuple::training(&[1.0, 2.0, 3.0], 9.0);
        let (x, y) = t.as_training();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
        assert_eq!(y, 9.0);
    }

    #[test]
    fn deform_into_matches_deform() {
        let schema = Schema::rating();
        let t = Tuple::rating(17, 923, 4.5);
        let bytes = t.form(&schema, 1, 0).unwrap();
        let mut batch = TupleBatch::new(schema.len());
        Tuple::deform_into(&schema, &bytes, &mut batch).unwrap();
        let via_datum: Vec<f32> = Tuple::deform(&schema, &bytes)
            .unwrap()
            .values
            .iter()
            .map(|d| d.as_f32())
            .collect();
        assert_eq!(batch.row(0), &via_datum[..]);
        // Truncated bytes leave the batch unchanged.
        assert!(Tuple::deform_into(&schema, &bytes[..bytes.len() - 1], &mut batch).is_err());
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn datum_conversions() {
        assert_eq!(Datum::Int4(3).as_f32(), 3.0);
        assert_eq!(Datum::Int8(-2).as_f64(), -2.0);
        assert_eq!(Datum::Float8(0.5).as_f32(), 0.5);
    }
}
