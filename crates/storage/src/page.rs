//! Byte-exact slotted heap pages (paper Fig. 6).
//!
//! A page consists of a 24-byte header, an array of 4-byte line pointers
//! ("tuple pointers" in the paper), the tuple data region, free space, and
//! an optional special space at the very end:
//!
//! ```text
//! +--------------+-------------------+------------- ... ----+--------+---------+
//! | page header  | line pointers     | tuple data           | free   | special |
//! | 24 B         | 4 B each          | fixed-width tuples   | space  | space   |
//! +--------------+-------------------+------------- ... ----+--------+---------+
//! ```
//!
//! Header layout (little-endian):
//!
//! ```text
//! offset  field        meaning
//! 0..8    page_size    total page size in bytes (the Strider's first read:
//!                      `readB 0, 8, %cr` in the paper's §5.1.2 listing)
//! 8..10   version      layout version / magic (0xDA7A)
//! 10..12  pd_lower     end of the used line-pointer region
//! 12..14  pd_upper     start of free space in the data region
//! 14..16  pd_special   offset of the special space
//! 16..18  tuple_count  number of live tuples
//! 18..20  flags        bit 0: tuple direction (0 = ascending, 1 = descending)
//! 20..24  checksum     FNV-1a over the data region (0 = not computed)
//! ```
//!
//! Training tuples are fixed-width, so the page pre-sizes its line-pointer
//! array for the maximum tuple count and places tuples **contiguously**.
//! Two placement directions are supported, and the Strider code generator
//! emits different walk loops for each (demonstrating the ISA's claim to
//! "cater to the variations in the database page organization", §1):
//!
//! * [`TupleDirection::Ascending`] — tuples grow upward from the end of the
//!   line-pointer array; the walk adds the tuple stride (the paper's
//!   assembly listing walks this way: `ad %treg, %treg, 0`).
//! * [`TupleDirection::Descending`] — tuples grow downward from the special
//!   space, like stock PostgreSQL; the walk subtracts the stride.

use crate::error::{StorageError, StorageResult};

/// Size of the page header in bytes.
pub const PAGE_HEADER_BYTES: usize = 24;
/// Size of one line pointer in bytes (u16 offset, u16 length).
pub const LINE_POINTER_BYTES: usize = 4;
/// Layout version magic stored in the header.
pub const PAGE_VERSION: u16 = 0xDA7A;

/// Supported page sizes: the paper evaluates 8, 16, and 32 KB (§7,
/// "we measured end-to-end runtimes for 8, 16, and 32 KB page sizes").
pub const SUPPORTED_PAGE_SIZES: [usize; 3] = [8 * 1024, 16 * 1024, 32 * 1024];

/// Placement direction of tuples within the data region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TupleDirection {
    /// First tuple at the lowest data offset; subsequent tuples above it.
    Ascending,
    /// First tuple at the highest data offset (just below the special
    /// space); subsequent tuples below it — PostgreSQL's convention.
    Descending,
}

/// Everything the Strider code generator must know about a page layout to
/// emit an extraction program (§6.2: "The compiler converts the database
/// page configuration into a set of Strider instructions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PageLayoutDesc {
    /// Total page size in bytes.
    pub page_size: usize,
    /// Bytes reserved at the end of the page (index hints etc.).
    pub special_bytes: usize,
    /// On-page size of one tuple: header + user data.
    pub tuple_bytes: usize,
    /// Size of the tuple header that `cln` strips.
    pub tuple_header_bytes: usize,
    /// Maximum tuples per page.
    pub capacity: u16,
    /// Placement direction.
    pub direction: TupleDirection,
}

impl PageLayoutDesc {
    /// Computes the layout for a page/tuple size pair.
    pub fn new(
        page_size: usize,
        special_bytes: usize,
        tuple_bytes: usize,
        tuple_header_bytes: usize,
        direction: TupleDirection,
    ) -> StorageResult<PageLayoutDesc> {
        if !SUPPORTED_PAGE_SIZES.contains(&page_size) {
            return Err(StorageError::BadPageSize(page_size));
        }
        let usable = page_size
            .checked_sub(PAGE_HEADER_BYTES + special_bytes)
            .ok_or(StorageError::BadPageSize(page_size))?;
        let per_tuple = tuple_bytes + LINE_POINTER_BYTES;
        let capacity = usable / per_tuple;
        if capacity == 0 {
            return Err(StorageError::PageFull {
                needed: per_tuple,
                free: usable,
            });
        }
        Ok(PageLayoutDesc {
            page_size,
            special_bytes,
            tuple_bytes,
            tuple_header_bytes,
            capacity: capacity.min(u16::MAX as usize) as u16,
            direction,
        })
    }

    /// Offset of the first byte past the (pre-sized) line-pointer array,
    /// i.e. the start of the tuple data region.
    pub fn data_start(&self) -> usize {
        PAGE_HEADER_BYTES + self.capacity as usize * LINE_POINTER_BYTES
    }

    /// Offset of the special space.
    pub fn special_start(&self) -> usize {
        self.page_size - self.special_bytes
    }

    /// On-page offset of tuple `slot`.
    pub fn tuple_offset(&self, slot: u16) -> usize {
        match self.direction {
            TupleDirection::Ascending => self.data_start() + slot as usize * self.tuple_bytes,
            TupleDirection::Descending => {
                self.special_start() - (slot as usize + 1) * self.tuple_bytes
            }
        }
    }

    /// Bytes of user data (post-`cln`) per tuple.
    pub fn tuple_data_bytes(&self) -> usize {
        self.tuple_bytes - self.tuple_header_bytes
    }
}

/// A read-only heap page over *borrowed* bytes — the zero-copy view the
/// streaming data path uses for buffer-pool frames. Validates the header
/// like [`HeapPage::from_bytes`] but never clones the page image.
#[derive(Debug, Clone, Copy)]
pub struct PageView<'a> {
    layout: PageLayoutDesc,
    bytes: &'a [u8],
}

impl<'a> PageView<'a> {
    /// Wraps raw page bytes, validating the header.
    pub fn new(bytes: &'a [u8], layout: PageLayoutDesc) -> StorageResult<PageView<'a>> {
        if bytes.len() != layout.page_size {
            return Err(StorageError::CorruptPage(format!(
                "buffer is {} bytes, layout says {}",
                bytes.len(),
                layout.page_size
            )));
        }
        let view = PageView { layout, bytes };
        if view.read_u64(0) != layout.page_size as u64 {
            return Err(StorageError::CorruptPage(format!(
                "header page_size {} != {}",
                view.read_u64(0),
                layout.page_size
            )));
        }
        if view.read_u16(8) != PAGE_VERSION {
            return Err(StorageError::CorruptPage(format!(
                "bad version {:#x}",
                view.read_u16(8)
            )));
        }
        let count = view.read_u16(16);
        if count > layout.capacity {
            return Err(StorageError::CorruptPage(format!(
                "tuple_count {count} exceeds capacity {}",
                layout.capacity
            )));
        }
        Ok(view)
    }

    pub fn layout(&self) -> &PageLayoutDesc {
        &self.layout
    }

    /// Number of live tuples.
    pub fn tuple_count(&self) -> u16 {
        self.read_u16(16)
    }

    /// Borrowed bytes of the tuple in `slot` (header + data).
    pub fn tuple_bytes(&self, slot: u16) -> StorageResult<&'a [u8]> {
        let count = self.tuple_count();
        if slot >= count {
            return Err(StorageError::SlotOutOfRange { slot, count });
        }
        let lp_off = PAGE_HEADER_BYTES + slot as usize * LINE_POINTER_BYTES;
        let off = self.read_u16(lp_off) as usize;
        let len = self.read_u16(lp_off + 2) as usize;
        if off + len > self.layout.page_size {
            return Err(StorageError::CorruptPage(format!(
                "line pointer {slot} points past page end ({off}+{len})"
            )));
        }
        Ok(&self.bytes[off..off + len])
    }

    /// All live tuples' bytes in slot order.
    pub fn tuples(&self) -> impl Iterator<Item = &'a [u8]> + '_ {
        (0..self.tuple_count()).map(move |s| self.tuple_bytes(s).expect("slot < count"))
    }

    /// Deforms every live tuple straight into `batch` in slot order — the
    /// CPU-side page→batch step of the streaming data path, shared by the
    /// heap scan and the buffer-pool stream.
    pub fn deform_all_into(
        &self,
        schema: &crate::schema::Schema,
        batch: &mut crate::batch::TupleBatch,
    ) -> StorageResult<()> {
        for slot in 0..self.tuple_count() {
            crate::tuple::Tuple::deform_into(schema, self.tuple_bytes(slot)?, batch)?;
        }
        Ok(())
    }

    fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.bytes[off..off + 2].try_into().unwrap())
    }
    fn read_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }
}

/// A heap page over an owned byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapPage {
    layout: PageLayoutDesc,
    bytes: Vec<u8>,
}

impl HeapPage {
    /// Creates an empty page for the given layout.
    pub fn new(layout: PageLayoutDesc) -> HeapPage {
        let mut page = HeapPage {
            layout,
            bytes: vec![0u8; layout.page_size],
        };
        page.write_u64(0, layout.page_size as u64);
        page.write_u16(8, PAGE_VERSION);
        page.write_u16(10, PAGE_HEADER_BYTES as u16); // pd_lower: no pointers yet
        let upper = match layout.direction {
            TupleDirection::Ascending => layout.data_start(),
            TupleDirection::Descending => layout.special_start(),
        };
        page.write_u16(12, upper as u16);
        page.write_u16(14, layout.special_start() as u16);
        page.write_u16(16, 0); // tuple_count
        let dir_flag = match layout.direction {
            TupleDirection::Ascending => 0u16,
            TupleDirection::Descending => 1u16,
        };
        page.write_u16(18, dir_flag);
        page.write_u32(20, 0); // checksum: not computed
        page
    }

    /// Reconstructs a page from raw bytes, validating the header.
    pub fn from_bytes(bytes: Vec<u8>, layout: PageLayoutDesc) -> StorageResult<HeapPage> {
        if bytes.len() != layout.page_size {
            return Err(StorageError::CorruptPage(format!(
                "buffer is {} bytes, layout says {}",
                bytes.len(),
                layout.page_size
            )));
        }
        let page = HeapPage { layout, bytes };
        if page.read_u64(0) != layout.page_size as u64 {
            return Err(StorageError::CorruptPage(format!(
                "header page_size {} != {}",
                page.read_u64(0),
                layout.page_size
            )));
        }
        if page.read_u16(8) != PAGE_VERSION {
            return Err(StorageError::CorruptPage(format!(
                "bad version {:#x}",
                page.read_u16(8)
            )));
        }
        let count = page.read_u16(16);
        if count > layout.capacity {
            return Err(StorageError::CorruptPage(format!(
                "tuple_count {count} exceeds capacity {}",
                layout.capacity
            )));
        }
        Ok(page)
    }

    pub fn layout(&self) -> &PageLayoutDesc {
        &self.layout
    }

    /// Raw page image — what the buffer pool stores and Striders consume.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the page, returning its byte image.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Number of live tuples.
    pub fn tuple_count(&self) -> u16 {
        self.read_u16(16)
    }

    /// Remaining insertion capacity.
    pub fn free_slots(&self) -> u16 {
        self.layout.capacity - self.tuple_count()
    }

    /// Inserts formed tuple bytes; returns the slot.
    pub fn insert(&mut self, tuple: &[u8]) -> StorageResult<u16> {
        if tuple.len() != self.layout.tuple_bytes {
            return Err(StorageError::SchemaMismatch(format!(
                "tuple is {} bytes, page layout expects {}",
                tuple.len(),
                self.layout.tuple_bytes
            )));
        }
        let slot = self.tuple_count();
        if slot >= self.layout.capacity {
            return Err(StorageError::PageFull {
                needed: tuple.len() + LINE_POINTER_BYTES,
                free: 0,
            });
        }
        let off = self.layout.tuple_offset(slot);
        self.bytes[off..off + tuple.len()].copy_from_slice(tuple);
        // Line pointer: u16 offset | u16 length.
        let lp_off = PAGE_HEADER_BYTES + slot as usize * LINE_POINTER_BYTES;
        self.write_u16(lp_off, off as u16);
        self.write_u16(lp_off + 2, tuple.len() as u16);
        // Header bookkeeping.
        self.write_u16(16, slot + 1);
        self.write_u16(10, (lp_off + LINE_POINTER_BYTES) as u16); // pd_lower
        let upper = match self.layout.direction {
            TupleDirection::Ascending => off + tuple.len(),
            TupleDirection::Descending => off,
        };
        self.write_u16(12, upper as u16); // pd_upper
        Ok(slot)
    }

    /// Borrowed bytes of the tuple in `slot` (header + data).
    pub fn tuple_bytes(&self, slot: u16) -> StorageResult<&[u8]> {
        let count = self.tuple_count();
        if slot >= count {
            return Err(StorageError::SlotOutOfRange { slot, count });
        }
        let lp_off = PAGE_HEADER_BYTES + slot as usize * LINE_POINTER_BYTES;
        let off = self.read_u16(lp_off) as usize;
        let len = self.read_u16(lp_off + 2) as usize;
        if off + len > self.layout.page_size {
            return Err(StorageError::CorruptPage(format!(
                "line pointer {slot} points past page end ({off}+{len})"
            )));
        }
        Ok(&self.bytes[off..off + len])
    }

    /// Iterates over all live tuples' bytes in slot order.
    pub fn tuples(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.tuple_count()).map(move |s| self.tuple_bytes(s).expect("slot < count"))
    }

    /// Computes and stores the FNV-1a checksum of the data region.
    pub fn seal(&mut self) {
        let sum = fnv1a(&self.bytes[PAGE_HEADER_BYTES..]);
        self.write_u32(20, sum);
    }

    /// Verifies the stored checksum (0 means "not computed": accepted).
    pub fn verify_checksum(&self) -> bool {
        let stored = self.read_u32(20);
        stored == 0 || stored == fnv1a(&self.bytes[PAGE_HEADER_BYTES..])
    }

    fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.bytes[off..off + 2].try_into().unwrap())
    }
    fn read_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().unwrap())
    }
    fn read_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }
    fn write_u16(&mut self, off: usize, v: u16) {
        self.bytes[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }
    fn write_u32(&mut self, off: usize, v: u32) {
        self.bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }
    fn write_u64(&mut self, off: usize, v: u64) {
        self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }
}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    // Reserve 0 for "not computed".
    if h == 0 {
        1
    } else {
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::{Tuple, TUPLE_HEADER_BYTES};

    fn layout(dir: TupleDirection) -> PageLayoutDesc {
        let schema = Schema::training(10);
        PageLayoutDesc::new(
            8 * 1024,
            0,
            TUPLE_HEADER_BYTES + schema.tuple_data_width(),
            TUPLE_HEADER_BYTES,
            dir,
        )
        .unwrap()
    }

    #[test]
    fn capacity_accounts_for_pointers_and_header() {
        let l = layout(TupleDirection::Ascending);
        // tuple = 16 + 44 = 60 bytes, +4 pointer = 64; (8192-24)/64 = 127
        assert_eq!(l.tuple_bytes, 60);
        assert_eq!(l.capacity, 127);
        assert_eq!(l.data_start(), PAGE_HEADER_BYTES + 127 * 4);
    }

    #[test]
    fn insert_and_read_back_ascending() {
        let schema = Schema::training(10);
        let l = layout(TupleDirection::Ascending);
        let mut page = HeapPage::new(l);
        let feats: Vec<f32> = (0..10).map(|i| i as f32).collect();
        for k in 0..5 {
            let t = Tuple::training(&feats, k as f32);
            let bytes = t.form(&schema, 1, k).unwrap();
            assert_eq!(page.insert(&bytes).unwrap(), k as u16);
        }
        assert_eq!(page.tuple_count(), 5);
        for k in 0..5u16 {
            let t = Tuple::deform(&schema, page.tuple_bytes(k).unwrap()).unwrap();
            let (_, y) = t.as_training();
            assert_eq!(y, k as f32);
        }
        // Ascending: consecutive tuples are `tuple_bytes` apart, increasing.
        let o0 = l.tuple_offset(0);
        let o1 = l.tuple_offset(1);
        assert_eq!(o1 - o0, l.tuple_bytes);
    }

    #[test]
    fn insert_and_read_back_descending() {
        let schema = Schema::training(10);
        let l = layout(TupleDirection::Descending);
        let mut page = HeapPage::new(l);
        let feats: Vec<f32> = (0..10).map(|i| i as f32).collect();
        for k in 0..5 {
            let bytes = Tuple::training(&feats, k as f32)
                .form(&schema, 1, k)
                .unwrap();
            page.insert(&bytes).unwrap();
        }
        for k in 0..5u16 {
            let t = Tuple::deform(&schema, page.tuple_bytes(k).unwrap()).unwrap();
            assert_eq!(t.as_training().1, k as f32);
        }
        // Descending: offsets decrease.
        assert!(l.tuple_offset(1) < l.tuple_offset(0));
        assert_eq!(l.tuple_offset(0), l.special_start() - l.tuple_bytes);
    }

    #[test]
    fn page_full_is_reported() {
        let schema = Schema::training(10);
        let l = layout(TupleDirection::Ascending);
        let mut page = HeapPage::new(l);
        let bytes = Tuple::training(&[0.0; 10], 0.0)
            .form(&schema, 1, 0)
            .unwrap();
        for _ in 0..l.capacity {
            page.insert(&bytes).unwrap();
        }
        assert!(matches!(
            page.insert(&bytes),
            Err(StorageError::PageFull { .. })
        ));
    }

    #[test]
    fn header_fields_track_inserts() {
        let schema = Schema::training(10);
        let l = layout(TupleDirection::Ascending);
        let mut page = HeapPage::new(l);
        assert_eq!(page.read_u16(10) as usize, PAGE_HEADER_BYTES);
        let bytes = Tuple::training(&[0.0; 10], 0.0)
            .form(&schema, 1, 0)
            .unwrap();
        page.insert(&bytes).unwrap();
        page.insert(&bytes).unwrap();
        assert_eq!(page.read_u16(16), 2); // tuple_count
        assert_eq!(
            page.read_u16(10) as usize,
            PAGE_HEADER_BYTES + 2 * LINE_POINTER_BYTES
        );
        assert_eq!(
            page.read_u16(12) as usize,
            l.data_start() + 2 * l.tuple_bytes
        );
        assert_eq!(page.read_u64(0) as usize, 8 * 1024);
    }

    #[test]
    fn from_bytes_validates() {
        let l = layout(TupleDirection::Ascending);
        let page = HeapPage::new(l);
        let mut bytes = page.clone().into_bytes();
        assert!(HeapPage::from_bytes(bytes.clone(), l).is_ok());
        bytes[8] = 0; // clobber version
        assert!(HeapPage::from_bytes(bytes, l).is_err());
        assert!(HeapPage::from_bytes(vec![0u8; 100], l).is_err());
    }

    #[test]
    fn checksum_seal_and_verify() {
        let schema = Schema::training(10);
        let l = layout(TupleDirection::Ascending);
        let mut page = HeapPage::new(l);
        let bytes = Tuple::training(&[1.0; 10], 2.0)
            .form(&schema, 1, 0)
            .unwrap();
        page.insert(&bytes).unwrap();
        assert!(page.verify_checksum()); // 0 = not computed, accepted
        page.seal();
        assert!(page.verify_checksum());
        // Corrupt a data byte: verification must now fail.
        let mut raw = page.into_bytes();
        raw[PAGE_HEADER_BYTES + 100] ^= 0xFF;
        let corrupted = HeapPage::from_bytes(raw, l).unwrap();
        assert!(!corrupted.verify_checksum());
    }

    #[test]
    fn unsupported_page_size_rejected() {
        let err = PageLayoutDesc::new(4096, 0, 64, 16, TupleDirection::Ascending);
        assert!(matches!(err, Err(StorageError::BadPageSize(4096))));
    }

    #[test]
    fn slot_out_of_range() {
        let l = layout(TupleDirection::Ascending);
        let page = HeapPage::new(l);
        assert!(matches!(
            page.tuple_bytes(0),
            Err(StorageError::SlotOutOfRange { .. })
        ));
    }
}
