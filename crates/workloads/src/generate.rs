//! Seeded dataset generators.
//!
//! Each workload's data comes from a planted ground-truth model plus noise,
//! so training *can actually converge* and accuracy/loss assertions are
//! meaningful — topology (widths, counts, bytes) matches Table 3; content
//! is synthetic (DESIGN.md §1).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use dana_dsl::zoo::Algorithm;
use dana_storage::page::TupleDirection;
use dana_storage::{HeapFile, HeapFileBuilder, StorageResult, Tuple, TupleBatch};

use crate::registry::Workload;

/// A generated training table plus its planted truth.
pub struct GeneratedTable {
    pub heap: HeapFile,
    /// The planted dense model (None for LRMF).
    pub truth: Option<Vec<f32>>,
}

/// Generates the workload's heap file at `page_size` with `seed`.
///
/// Functional-scale callers should pass a [`Workload::scaled`] copy; the
/// full Table-3 sizes are meant for the analytic harness.
pub fn generate(w: &Workload, page_size: usize, seed: u64) -> StorageResult<GeneratedTable> {
    let schema = w.schema();
    let mut builder = HeapFileBuilder::new(schema, page_size, TupleDirection::Ascending)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDA7A_0001);
    match w.algorithm {
        Algorithm::Lrmf => {
            let (rows, cols, rank) = w.lrmf.expect("LRMF workload has dims");
            let planted = plant_factors(rows, cols, rank, &mut rng);
            for _ in 0..w.tuples {
                let i = rng.random_range(0..rows);
                let j = rng.random_range(0..cols);
                let noise: f32 = rng.random_range(-0.05..0.05);
                let rating = planted_rating(&planted, i, j, rank) + noise;
                builder.insert(&Tuple::rating(i as i32, j as i32, rating))?;
            }
            Ok(GeneratedTable {
                heap: builder.finish(),
                truth: None,
            })
        }
        algo => {
            let truth = plant_model(w.features, &mut rng);
            for _ in 0..w.tuples {
                let (x, y) = dense_tuple(algo, &truth, &mut rng);
                builder.insert(&Tuple::training(&x, y))?;
            }
            Ok(GeneratedTable {
                heap: builder.finish(),
                truth: Some(truth),
            })
        }
    }
}

/// In-memory flat-batch generation (no heap) — for baselines and benches
/// that do not need pages.
pub fn generate_tuples(w: &Workload, seed: u64) -> (TupleBatch, Option<Vec<f32>>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDA7A_0001);
    match w.algorithm {
        Algorithm::Lrmf => {
            let (rows, cols, rank) = w.lrmf.expect("LRMF workload has dims");
            let planted = plant_factors(rows, cols, rank, &mut rng);
            let mut batch = TupleBatch::with_capacity(3, w.tuples as usize);
            for _ in 0..w.tuples {
                let i = rng.random_range(0..rows);
                let j = rng.random_range(0..cols);
                let noise: f32 = rng.random_range(-0.05..0.05);
                batch.push_row(&[
                    i as f32,
                    j as f32,
                    planted_rating(&planted, i, j, rank) + noise,
                ]);
            }
            (batch, None)
        }
        algo => {
            let truth = plant_model(w.features, &mut rng);
            let mut batch = TupleBatch::with_capacity(w.features + 1, w.tuples as usize);
            for _ in 0..w.tuples {
                let (x, y) = dense_tuple(algo, &truth, &mut rng);
                let mut row = batch.start_row();
                for v in x {
                    row.push(v);
                }
                row.push(y);
                row.finish();
            }
            (batch, Some(truth))
        }
    }
}

fn plant_model(d: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..d).map(|_| rng.random_range(-1.0..1.0)).collect()
}

fn plant_factors(rows: usize, cols: usize, rank: usize, rng: &mut StdRng) -> (Vec<f32>, Vec<f32>) {
    let l: Vec<f32> = (0..rows * rank)
        .map(|_| rng.random_range(-0.5..0.5))
        .collect();
    let r: Vec<f32> = (0..cols * rank)
        .map(|_| rng.random_range(-0.5..0.5))
        .collect();
    (l, r)
}

fn planted_rating(planted: &(Vec<f32>, Vec<f32>), i: usize, j: usize, rank: usize) -> f32 {
    let (l, r) = planted;
    (0..rank).map(|k| l[i * rank + k] * r[j * rank + k]).sum()
}

fn dense_tuple(algo: Algorithm, truth: &[f32], rng: &mut StdRng) -> (Vec<f32>, f32) {
    let d = truth.len();
    let x: Vec<f32> = (0..d).map(|_| rng.random_range(-1.0..1.0)).collect();
    let score: f32 = x.iter().zip(truth).map(|(a, b)| a * b).sum();
    let y = match algo {
        Algorithm::Linear => score + rng.random_range(-0.02..0.02),
        Algorithm::Logistic => {
            if score > 0.0 {
                1.0
            } else {
                0.0
            }
        }
        Algorithm::Svm => {
            if score > 0.0 {
                1.0
            } else {
                -1.0
            }
        }
        Algorithm::Lrmf => unreachable!("LRMF uses the rating generator"),
    };
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::workload;
    use dana_ml::{metrics, train_reference, TrainConfig};

    #[test]
    fn generation_is_deterministic() {
        let w = workload("Patient").unwrap().scaled(0.01);
        let a = generate(&w, 8 * 1024, 7).unwrap();
        let b = generate(&w, 8 * 1024, 7).unwrap();
        assert_eq!(a.heap.page_bytes(0).unwrap(), b.heap.page_bytes(0).unwrap());
        assert_eq!(a.truth, b.truth);
        let c = generate(&w, 8 * 1024, 8).unwrap();
        assert_ne!(a.heap.page_bytes(0).unwrap(), c.heap.page_bytes(0).unwrap());
    }

    #[test]
    fn scaled_workload_generates_learnable_linear_data() {
        let w = workload("Patient").unwrap().scaled(0.02); // 1070 × 384
        let (tuples, truth) = generate_tuples(&w, 42);
        let cfg = TrainConfig {
            algorithm: dana_ml::Algorithm::Linear,
            epochs: 20,
            learning_rate: 0.05,
            batch: 8,
            ..Default::default()
        };
        let model = train_reference(&tuples, &cfg);
        let loss = metrics::mse(model.as_dense(), &tuples).unwrap();
        assert!(loss < 1.0, "mse {loss}");
        assert!(truth.is_some());
    }

    #[test]
    fn classification_data_is_separable() {
        let w = workload("Remote Sensing LR").unwrap().scaled(0.002); // ~1162 × 54
        let (tuples, _) = generate_tuples(&w, 42);
        let cfg = TrainConfig {
            algorithm: dana_ml::Algorithm::Logistic,
            epochs: 40,
            learning_rate: 0.5,
            batch: 8,
            ..Default::default()
        };
        let model = train_reference(&tuples, &cfg);
        let acc = metrics::classification_accuracy(model.as_dense(), &tuples, false).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn lrmf_data_has_low_rank_structure() {
        let mut w = workload("Netflix").unwrap();
        w.lrmf = Some((40, 30, 10));
        w.tuples = 2_000;
        let (tuples, _) = generate_tuples(&w, 42);
        let cfg = TrainConfig {
            algorithm: dana_ml::Algorithm::Lrmf,
            epochs: 60,
            learning_rate: 0.08,
            rank: 10,
            ..Default::default()
        };
        let model = train_reference(&tuples, &cfg);
        let rmse = metrics::lrmf_rmse(model.as_lrmf(), &tuples).unwrap();
        assert!(rmse < 0.25, "rmse {rmse}");
    }

    #[test]
    fn heap_and_tuple_generators_agree_on_count() {
        let w = workload("WLAN").unwrap().scaled(0.01);
        let table = generate(&w, 8 * 1024, 1).unwrap();
        let (tuples, _) = generate_tuples(&w, 1);
        assert_eq!(table.heap.tuple_count(), tuples.len() as u64);
    }

    #[test]
    fn svm_labels_are_signed() {
        let w = workload("Remote Sensing SVM").unwrap().scaled(0.001);
        let (tuples, _) = generate_tuples(&w, 3);
        assert!(tuples.rows().all(|t| t[54] == 1.0 || t[54] == -1.0));
    }
}
