//! Workloads: the paper's Table 3, as data.
//!
//! Fourteen workloads drive the evaluation — six over public datasets
//! (Remote Sensing, WLAN, Netflix, Patient, Blog Feedback) and eight
//! synthetic (S/N = nominal, S/E = extensive). The public datasets
//! themselves are not redistributable here, so [`generate`] synthesizes
//! data with **identical topology** (feature count, tuple count, byte
//! volume) from planted ground-truth models — the substitution DESIGN.md §1
//! documents. Every generator is seeded and deterministic.
//!
//! **LRMF representation.** The paper stores factorization training data as
//! dense user rows (Netflix: 6 040 tuples of 3 952 ratings ≈ 96 MB). We
//! store `(i, j, rating)` triples — the conventional sparse form — and size
//! the triple count to preserve the dataset's *byte volume and page count*,
//! which is what the access path (and therefore the Strider/AXI behaviour)
//! sees. DESIGN.md records this substitution.

pub mod generate;
pub mod registry;

pub use generate::{generate, generate_tuples, GeneratedTable};
pub use registry::{all_workloads, workload, DatasetClass, Workload};
