//! The Table-3 workload registry.

use dana_dsl::zoo::Algorithm;
use dana_storage::{Schema, TUPLE_HEADER_BYTES};

/// Which of the paper's three dataset groups a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DatasetClass {
    /// Publicly available datasets (UCI + Netflix), Figures 8/11/12/13/15/16.
    Public,
    /// Synthetic nominal (S/N), Figure 9.
    SyntheticNominal,
    /// Synthetic extensive (S/E) — the out-of-memory group, Figure 10.
    SyntheticExtensive,
}

/// One evaluation workload (a row of Table 3).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Workload {
    /// Table-3 name, e.g. `"Remote Sensing LR"`.
    pub name: &'static str,
    pub class: DatasetClass,
    pub algorithm: Algorithm,
    /// Feature count for dense algorithms (0 for LRMF).
    pub features: usize,
    /// LRMF topology `(rows, cols, rank)` (paper's "model topology").
    pub lrmf: Option<(usize, usize, usize)>,
    /// Training tuples. For LRMF this is the *triple* count derived from
    /// the paper's byte volume (see crate docs); Table 3's own number (the
    /// dense-row count) is kept in `paper_tuples`.
    pub tuples: u64,
    /// Table 3's published tuple count (verbatim).
    pub paper_tuples: u64,
    /// Table 3's 32 KB page count (verbatim).
    pub paper_pages: u64,
    /// Table 3's size in MB (verbatim).
    pub paper_mb: u64,
    /// Training epochs used for the Table-5 absolute-runtime reproduction.
    /// The paper does not publish iteration counts; these are fitted so the
    /// MADlib+PostgreSQL cost model lands near Table 5 (EXPERIMENTS.md
    /// records the residuals). Ratios (the figures) are epoch-independent.
    pub epochs: u32,
    /// Merge coefficient declared in the UDF (batch size / max threads).
    pub merge_coef: u32,
    pub learning_rate: f64,
}

impl Workload {
    /// Columns of the training table (features + label, or i/j/rating).
    pub fn schema(&self) -> Schema {
        match self.algorithm {
            Algorithm::Lrmf => Schema::rating(),
            _ => Schema::training(self.features),
        }
    }

    /// On-page tuple size under our layout.
    pub fn tuple_bytes(&self) -> usize {
        TUPLE_HEADER_BYTES + self.schema().tuple_data_width()
    }

    /// Pages needed under our layout for a page size.
    pub fn pages_for(&self, page_size: usize) -> u64 {
        let per_tuple = self.tuple_bytes() + dana_storage::LINE_POINTER_BYTES;
        let capacity = (page_size - dana_storage::PAGE_HEADER_BYTES) / per_tuple;
        self.tuples.div_ceil(capacity as u64)
    }

    /// Total bytes under our layout (32 KB pages).
    pub fn bytes(&self) -> u64 {
        self.pages_for(32 * 1024) * 32 * 1024
    }

    /// Model elements (dense width, or LRMF (rows+cols)×rank).
    pub fn model_elements(&self) -> usize {
        match self.lrmf {
            Some((r, c, k)) => (r + c) * k,
            None => self.features,
        }
    }

    /// A scaled copy for functional (in-memory) runs: keeps topology,
    /// shrinks the tuple count.
    pub fn scaled(&self, fraction: f64) -> Workload {
        let mut w = self.clone();
        w.tuples = ((self.tuples as f64 * fraction) as u64).max(64);
        w
    }

    /// A copy with a different merge coefficient (Fig. 12 sweeps).
    pub fn with_merge_coef(&self, coef: u32) -> Workload {
        let mut w = self.clone();
        w.merge_coef = coef;
        w
    }

    /// The UDF for this workload, straight from the algorithm zoo.
    pub fn spec(&self) -> dana_dsl::AlgoSpec {
        use dana_dsl::zoo::{self, DenseParams, LrmfParams};
        match self.algorithm {
            Algorithm::Lrmf => {
                let (rows, cols, rank) = self.lrmf.expect("LRMF workload has dims");
                zoo::lrmf(LrmfParams {
                    rows,
                    cols,
                    rank,
                    learning_rate: self.learning_rate,
                    merge_coef: self.merge_coef,
                    epochs: self.epochs,
                })
            }
            algo => zoo::spec_for(
                algo,
                DenseParams {
                    n_features: self.features,
                    learning_rate: self.learning_rate,
                    merge_coef: self.merge_coef,
                    epochs: self.epochs,
                },
            ),
        }
        .expect("zoo specs are valid by construction")
    }
}

/// Ratings triples that fill the paper's published byte volume for an LRMF
/// dataset (32-byte triple slots under our layout: 12 B data + 16 B header
/// + 4 B line pointer).
const fn lrmf_triples(paper_mb: u64) -> u64 {
    paper_mb * 1_000_000 / 32
}

/// All fourteen workloads of Table 3, in the paper's row order.
pub fn all_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "Remote Sensing LR",
            class: DatasetClass::Public,
            algorithm: Algorithm::Logistic,
            features: 54,
            lrmf: None,
            tuples: 581_102,
            paper_tuples: 581_102,
            paper_pages: 4_924,
            paper_mb: 154,
            epochs: 2,
            merge_coef: 64,
            learning_rate: 0.2,
        },
        Workload {
            name: "WLAN",
            class: DatasetClass::Public,
            algorithm: Algorithm::Logistic,
            features: 520,
            lrmf: None,
            tuples: 19_937,
            paper_tuples: 19_937,
            paper_pages: 1_330,
            paper_mb: 42,
            epochs: 11,
            merge_coef: 64,
            learning_rate: 0.2,
        },
        Workload {
            name: "Remote Sensing SVM",
            class: DatasetClass::Public,
            algorithm: Algorithm::Svm,
            features: 54,
            lrmf: None,
            tuples: 581_102,
            paper_tuples: 581_102,
            paper_pages: 4_924,
            paper_mb: 154,
            epochs: 1,
            merge_coef: 64,
            learning_rate: 0.1,
        },
        Workload {
            name: "Netflix",
            class: DatasetClass::Public,
            algorithm: Algorithm::Lrmf,
            features: 0,
            lrmf: Some((6_040, 3_952, 10)),
            tuples: lrmf_triples(96),
            paper_tuples: 6_040,
            paper_pages: 3_068,
            paper_mb: 96,
            epochs: 110,
            merge_coef: 64,
            learning_rate: 0.05,
        },
        Workload {
            name: "Patient",
            class: DatasetClass::Public,
            algorithm: Algorithm::Linear,
            features: 384,
            lrmf: None,
            tuples: 53_500,
            paper_tuples: 53_500,
            paper_pages: 1_941,
            paper_mb: 61,
            epochs: 5,
            merge_coef: 64,
            learning_rate: 0.1,
        },
        Workload {
            name: "Blog Feedback",
            class: DatasetClass::Public,
            algorithm: Algorithm::Linear,
            features: 280,
            lrmf: None,
            tuples: 52_397,
            paper_tuples: 52_397,
            paper_pages: 2_675,
            paper_mb: 84,
            epochs: 4,
            merge_coef: 64,
            learning_rate: 0.1,
        },
        Workload {
            name: "S/N Logistic",
            class: DatasetClass::SyntheticNominal,
            algorithm: Algorithm::Logistic,
            features: 2_000,
            lrmf: None,
            tuples: 387_944,
            paper_tuples: 387_944,
            paper_pages: 96_986,
            paper_mb: 3_031,
            epochs: 10,
            merge_coef: 64,
            learning_rate: 0.2,
        },
        Workload {
            name: "S/N SVM",
            class: DatasetClass::SyntheticNominal,
            algorithm: Algorithm::Svm,
            features: 1_740,
            lrmf: None,
            tuples: 678_392,
            paper_tuples: 678_392,
            paper_pages: 169_598,
            paper_mb: 5_300,
            epochs: 120,
            merge_coef: 64,
            learning_rate: 0.1,
        },
        Workload {
            name: "S/N LRMF",
            class: DatasetClass::SyntheticNominal,
            algorithm: Algorithm::Lrmf,
            features: 0,
            lrmf: Some((19_880, 19_880, 10)),
            tuples: lrmf_triples(1_587),
            paper_tuples: 19_880,
            paper_pages: 50_784,
            paper_mb: 1_587,
            epochs: 2,
            merge_coef: 64,
            learning_rate: 0.05,
        },
        Workload {
            name: "S/N Linear",
            class: DatasetClass::SyntheticNominal,
            algorithm: Algorithm::Linear,
            features: 8_000,
            lrmf: None,
            tuples: 130_503,
            paper_tuples: 130_503,
            paper_pages: 130_503,
            paper_mb: 4_078,
            epochs: 73,
            merge_coef: 64,
            learning_rate: 0.1,
        },
        Workload {
            name: "S/E Logistic",
            class: DatasetClass::SyntheticExtensive,
            algorithm: Algorithm::Logistic,
            features: 6_033,
            lrmf: None,
            tuples: 1_044_024,
            paper_tuples: 1_044_024,
            paper_pages: 809_339,
            paper_mb: 25_292,
            epochs: 31,
            merge_coef: 64,
            learning_rate: 0.2,
        },
        Workload {
            name: "S/E SVM",
            class: DatasetClass::SyntheticExtensive,
            algorithm: Algorithm::Svm,
            features: 7_129,
            lrmf: None,
            tuples: 1_356_784,
            paper_tuples: 1_356_784,
            paper_pages: 1_242_871,
            paper_mb: 38_840,
            epochs: 2,
            merge_coef: 64,
            learning_rate: 0.1,
        },
        Workload {
            name: "S/E LRMF",
            class: DatasetClass::SyntheticExtensive,
            algorithm: Algorithm::Lrmf,
            features: 0,
            lrmf: Some((28_002, 45_064, 10)),
            tuples: lrmf_triples(5_067),
            paper_tuples: 45_064,
            paper_pages: 162_146,
            paper_mb: 5_067,
            epochs: 110,
            merge_coef: 64,
            learning_rate: 0.05,
        },
        Workload {
            name: "S/E Linear",
            class: DatasetClass::SyntheticExtensive,
            algorithm: Algorithm::Linear,
            features: 8_000,
            lrmf: None,
            tuples: 1_000_000,
            paper_tuples: 1_000_000,
            paper_pages: 1_027_961,
            paper_mb: 32_124,
            epochs: 130,
            merge_coef: 64,
            learning_rate: 0.1,
        },
    ]
}

/// Looks a workload up by its Table-3 name.
pub fn workload(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_workloads_as_in_table_3() {
        let all = all_workloads();
        assert_eq!(all.len(), 14);
        assert_eq!(
            all.iter()
                .filter(|w| w.class == DatasetClass::Public)
                .count(),
            6
        );
        assert_eq!(
            all.iter()
                .filter(|w| w.class == DatasetClass::SyntheticNominal)
                .count(),
            4
        );
        assert_eq!(
            all.iter()
                .filter(|w| w.class == DatasetClass::SyntheticExtensive)
                .count(),
            4
        );
    }

    #[test]
    fn topologies_match_table_3() {
        let rs = workload("Remote Sensing LR").unwrap();
        assert_eq!(rs.features, 54);
        assert_eq!(rs.tuples, 581_102);
        let nf = workload("Netflix").unwrap();
        assert_eq!(nf.lrmf, Some((6_040, 3_952, 10)));
        assert_eq!(nf.paper_pages, 3_068);
        let se = workload("S/E SVM").unwrap();
        assert_eq!(se.features, 7_129);
        assert_eq!(se.paper_mb, 38_840);
    }

    #[test]
    fn our_byte_volume_tracks_the_papers() {
        // Same data, different tuple header/page bookkeeping: our layout
        // must land within 2× of every published dataset size (most are
        // within ~15 %).
        for w in all_workloads() {
            let ours = w.bytes() as f64 / 1.0e6;
            let paper = w.paper_mb as f64;
            let ratio = ours / paper;
            assert!(
                ratio > 0.5 && ratio < 2.0,
                "{}: ours {ours:.0} MB vs paper {paper} MB",
                w.name
            );
        }
    }

    #[test]
    fn lrmf_triples_preserve_byte_volume() {
        let nf = workload("Netflix").unwrap();
        // 3M triples at 32 B/slot ≈ 96 MB.
        assert_eq!(nf.tuples, 3_000_000);
        let ours_mb = nf.tuples * 32 / 1_000_000;
        assert!((ours_mb as i64 - 96).abs() <= 1);
    }

    #[test]
    fn scaled_workloads_keep_topology() {
        let w = workload("S/N Logistic").unwrap();
        let s = w.scaled(0.001);
        assert_eq!(s.features, w.features);
        assert_eq!(s.tuples, 387);
        assert!(w.scaled(0.0).tuples >= 64, "scale floors at a usable size");
    }

    #[test]
    fn unknown_workload_is_none() {
        assert!(workload("nope").is_none());
    }

    #[test]
    fn model_elements() {
        assert_eq!(workload("WLAN").unwrap().model_elements(), 520);
        assert_eq!(
            workload("Netflix").unwrap().model_elements(),
            (6_040 + 3_952) * 10
        );
    }
}
