//! Two-way Strider assembler.
//!
//! Syntax is the paper's §5.1.2 listing style: one instruction per line,
//! `\\`-or-`#`-prefixed comments, operands separated by commas. Registers
//! are `%cr0..%cr15` / `%t0..%t15` (the paper's `%cr`/`%treg` shorthand maps
//! to `%cr0`/`%t0`); bare integers are immediates.
//!
//! ```text
//! \\ Page header processing
//! readB 0, 8, %cr0
//! bentr
//! ad %t0, %cr2, %t0
//! bexit 1, %t0, %cr1
//! ```

use crate::error::{StriderError, StriderResult};
use crate::isa::{Instr, Opcode, Operand, Reg};

/// Assembles text into instructions.
pub fn assemble(source: &str) -> StriderResult<Vec<Instr>> {
    let mut out = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_line(line, lineno + 1)?);
    }
    Ok(out)
}

/// Disassembles instructions back to text (one per line).
pub fn disassemble(program: &[Instr]) -> String {
    let mut s = String::new();
    for i in program {
        s.push_str(&i.display());
        s.push('\n');
    }
    s
}

fn strip_comment(line: &str) -> &str {
    let mut cut = line.len();
    for pat in ["\\\\", "#", "//", ";"] {
        if let Some(idx) = line.find(pat) {
            cut = cut.min(idx);
        }
    }
    &line[..cut]
}

fn parse_line(line: &str, lineno: usize) -> StriderResult<Instr> {
    let mut parts = line.splitn(2, char::is_whitespace);
    let mnemonic = parts.next().unwrap_or("");
    let rest = parts.next().unwrap_or("").trim();
    let opcode = match mnemonic {
        "readB" => Opcode::ReadB,
        "extrB" => Opcode::ExtrB,
        "writeB" => Opcode::WriteB,
        "extrBi" => Opcode::ExtrBi,
        "cln" => Opcode::Cln,
        "ins" => Opcode::Ins,
        "ad" => Opcode::Ad,
        "sub" => Opcode::Sub,
        "mul" => Opcode::Mul,
        "bentr" => Opcode::Bentr,
        "bexit" => Opcode::Bexit,
        other => {
            return Err(StriderError::Asm {
                line: lineno,
                msg: format!("unknown mnemonic '{other}'"),
            })
        }
    };
    if opcode == Opcode::Bentr {
        if !rest.is_empty() {
            return Err(StriderError::Asm {
                line: lineno,
                msg: "bentr takes no operands".into(),
            });
        }
        return Ok(Instr::bentr());
    }
    let ops: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if ops.len() != 3 {
        return Err(StriderError::Asm {
            line: lineno,
            msg: format!("{mnemonic} needs 3 operands, got {}", ops.len()),
        });
    }
    Ok(Instr::new(
        opcode,
        parse_operand(ops[0], lineno)?,
        parse_operand(ops[1], lineno)?,
        parse_operand(ops[2], lineno)?,
    ))
}

fn parse_operand(text: &str, lineno: usize) -> StriderResult<Operand> {
    if let Some(rest) = text.strip_prefix("%cr") {
        let idx: u8 = parse_idx(rest, lineno, "%cr")?;
        if idx >= 16 {
            return Err(StriderError::Asm {
                line: lineno,
                msg: format!("%cr{idx} out of range"),
            });
        }
        return Ok(Operand::Reg(Reg::cr(idx)));
    }
    if let Some(rest) = text.strip_prefix("%t") {
        let idx: u8 = parse_idx(rest, lineno, "%t")?;
        if idx >= 16 {
            return Err(StriderError::Asm {
                line: lineno,
                msg: format!("%t{idx} out of range"),
            });
        }
        return Ok(Operand::Reg(Reg::t(idx)));
    }
    match text.parse::<u8>() {
        Ok(v) if v < 32 => Ok(Operand::Imm(v)),
        Ok(v) => Err(StriderError::Asm {
            line: lineno,
            msg: format!("immediate {v} exceeds 31; load it via a config register"),
        }),
        Err(_) => Err(StriderError::Asm {
            line: lineno,
            msg: format!("bad operand '{text}'"),
        }),
    }
}

fn parse_idx(rest: &str, lineno: usize, prefix: &str) -> StriderResult<u8> {
    // The paper writes bare `%cr` / `%treg`; map them to index 0.
    if rest.is_empty() || rest == "eg" {
        return Ok(0);
    }
    rest.parse::<u8>().map_err(|_| StriderError::Asm {
        line: lineno,
        msg: format!("bad register '{prefix}{rest}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_disassemble_round_trip() {
        let src = "\
readB 0, 8, %cr0
extrB 0, 2, %t1
writeB 0, 0, 0
bentr
ad %t0, %cr2, %t0
sub %t3, 1, %t3
mul %t4, %cr1, %t5
bexit 1, %t0, %cr1
";
        let prog = assemble(src).unwrap();
        assert_eq!(prog.len(), 8);
        let text = disassemble(&prog);
        let prog2 = assemble(&text).unwrap();
        assert_eq!(prog, prog2);
    }

    #[test]
    fn paper_listing_style_parses() {
        // The §5.1.2 header-processing lines, using the paper's bare
        // register shorthand and \\ comments.
        let src = "\
\\\\ Page Header Processing
readB 0, 8, %cr
readB 8, 2, %cr
readB 10, 4, %cr
extrB %cr, 2, %cr
";
        let prog = assemble(src).unwrap();
        assert_eq!(prog.len(), 4);
        assert_eq!(prog[0].opcode, Opcode::ReadB);
        assert_eq!(prog[3].a, Operand::Reg(Reg::cr(0)));
    }

    #[test]
    fn comments_in_all_styles_ignored() {
        let src = "readB 0, 8, %t0 # trailing\n// whole line\n; asm style\nbentr\n";
        let prog = assemble(src).unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("readB 0, 8, %t0\nfrobnicate 1, 2, 3\n").unwrap_err();
        assert!(matches!(err, StriderError::Asm { line: 2, .. }));
        let err = assemble("readB 0, 99, %t0\n").unwrap_err();
        assert!(matches!(err, StriderError::Asm { line: 1, .. }));
        let err = assemble("ad 1, 2\n").unwrap_err();
        assert!(matches!(err, StriderError::Asm { line: 1, .. }));
        let err = assemble("bentr 1, 2, 3\n").unwrap_err();
        assert!(matches!(err, StriderError::Asm { line: 1, .. }));
    }

    #[test]
    fn register_bounds_checked() {
        assert!(assemble("ad %t16, 0, %t0\n").is_err());
        assert!(assemble("ad %cr16, 0, %t0\n").is_err());
    }
}
