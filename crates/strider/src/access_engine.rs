//! The multi-Strider access engine (Fig. 5).
//!
//! "Training data is written to multiple page buffers, where each buffer
//! stores one database page at a time and has access to its personal
//! Strider. ... we store multiple pages on the FPGA and parallelize data
//! extraction from the pages across their corresponding Striders." (§5.1.1)
//!
//! The engine couples three cost sources the runtime later overlaps:
//! AXI streaming of raw pages, Strider cycles (parallel across page
//! buffers), and the float-conversion unit that turns extracted column
//! bytes into the execution engine's f32 operands ("transform user data
//! into a floating point format", §6.2).

use dana_fpga::{AxiLink, Clock, Seconds};
use dana_storage::{ColumnType, HeapFile, PageLayoutDesc, Schema, TupleBatch};

use crate::codegen::strider_program_for_layout;
use crate::error::{StriderError, StriderResult};
use crate::machine::StriderMachine;

/// Sizing and timing configuration for the access engine.
#[derive(Debug, Clone, Copy)]
pub struct AccessEngineConfig {
    /// Number of page buffers (= Striders) the hardware generator allotted.
    pub num_striders: u32,
    /// FPGA clock for cycle→seconds conversion.
    pub clock: Clock,
    /// Host→FPGA link for page streaming.
    pub axi: AxiLink,
}

impl AccessEngineConfig {
    pub fn new(num_striders: u32, clock: Clock, axi: AxiLink) -> AccessEngineConfig {
        assert!(num_striders >= 1, "need at least one Strider");
        AccessEngineConfig {
            num_striders,
            clock,
            axi,
        }
    }
}

/// One extracted, cleansed, float-converted training tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractedTuple {
    /// All column values in schema order, as the engine's native f32.
    pub values: Vec<f32>,
}

impl ExtractedTuple {
    /// Splits a training-schema tuple into (features, label).
    pub fn as_training(&self) -> (&[f32], f32) {
        let n = self.values.len();
        (&self.values[..n - 1], self.values[n - 1])
    }
}

/// One column's byte → engine-native f32 conversion (the float-conversion
/// unit of §6.2). Shared by the batch and reference extraction paths so
/// they are bit-identical by construction.
fn convert_cell(ty: ColumnType, bytes: &[u8]) -> f32 {
    match ty {
        ColumnType::Float4 => f32::from_le_bytes(bytes.try_into().unwrap()),
        ColumnType::Float8 => f64::from_le_bytes(bytes.try_into().unwrap()) as f32,
        ColumnType::Int4 => i32::from_le_bytes(bytes.try_into().unwrap()) as f32,
        ColumnType::Int8 => i64::from_le_bytes(bytes.try_into().unwrap()) as f32,
    }
}

/// Aggregate costs of one extraction pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccessStats {
    pub pages: u64,
    pub tuples: u64,
    /// Raw page bytes that crossed the AXI link.
    pub bytes_transferred: u64,
    /// AXI streaming time (pages pipelined back-to-back).
    pub axi_seconds: Seconds,
    /// Total Strider cycles across all pages (before dividing across
    /// parallel Striders).
    pub strider_cycles: u64,
    /// Float-conversion cycles (one per extracted column value).
    pub conversion_cycles: u64,
    /// Page-decompression cycles spent upstream of the Striders (the scan
    /// tier's codec). Zero on raw-page scans; charged by the page sources
    /// when frames are cached compressed.
    pub decompress_cycles: u64,
    /// Reconstructed page bytes the decompressor produced (the numerator
    /// of `SHOW STATS ('scan')`'s bytes-decompressed gauge).
    pub decompressed_bytes: u64,
    /// Pages a pushdown scan proved unmatchable from their zone maps and
    /// never fetched. Excluded from `pages`/`bytes_transferred`.
    pub pages_skipped: u64,
    /// Wall-clock seconds for the access engine with `num_striders`-way
    /// parallel extraction overlapped against AXI streaming.
    pub access_seconds: Seconds,
}

/// The access engine for one table's layout + schema.
pub struct AccessEngine {
    config: AccessEngineConfig,
    machine: StriderMachine,
    schema: Schema,
    layout: PageLayoutDesc,
}

impl AccessEngine {
    /// Builds the engine for a table: generates the Strider program for the
    /// table's page layout (the deployment-time compiler step).
    pub fn for_table(
        layout: PageLayoutDesc,
        schema: Schema,
        config: AccessEngineConfig,
    ) -> AccessEngine {
        let (program, regs) = strider_program_for_layout(&layout);
        AccessEngine {
            config,
            machine: StriderMachine::new(program, regs),
            schema,
            layout,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn layout(&self) -> &PageLayoutDesc {
        &self.layout
    }

    /// Extracts every tuple from one raw page image into `batch` (appended
    /// in slot order), returning the Strider cycles spent (extraction +
    /// float conversion). This is the hot path: page bytes become flat
    /// engine-native f32 rows with no per-tuple allocation, mirroring how
    /// the hardware streams converted values straight to the execution
    /// engine's input buffers (§6.2).
    ///
    /// Pages with no live tuples are skipped host-side — the DMA engine
    /// never ships them (heap builders also never produce them).
    pub fn extract_page_into(&self, page: &[u8], batch: &mut TupleBatch) -> StriderResult<u64> {
        let run = self.machine.run(page)?;
        let mut conversion = 0u64;
        for rec in run.records() {
            self.convert_record_into(rec, batch)?;
            conversion += self.schema.len() as u64;
        }
        Ok(run.cycles + conversion)
    }

    /// Filtered/projected variant of [`AccessEngine::extract_page_into`]:
    /// every tuple is still walked and float-converted (the Striders and
    /// conversion unit do full-width work — pushdown saves *downstream*
    /// tuples, not extraction cycles on a matched page), but only rows
    /// passing `keep` reach `batch`, and only the columns in `projection`
    /// (schema order; `None` = all). The batch's width must equal the
    /// projected width.
    ///
    /// The predicate sees the full-width row in schema order, so the same
    /// closure drives this path and the scan tier's slot selection —
    /// membership can never disagree between them.
    pub fn extract_page_filtered_into(
        &self,
        page: &[u8],
        batch: &mut TupleBatch,
        projection: Option<&[usize]>,
        mut keep: impl FnMut(&[f32]) -> bool,
    ) -> StriderResult<u64> {
        let run = self.machine.run(page)?;
        let mut conversion = 0u64;
        let mut row = vec![0f32; self.schema.len()];
        for rec in run.records() {
            self.check_record_len(rec)?;
            let mut off = 0usize;
            for (c, col) in self.schema.columns().iter().enumerate() {
                let w = col.ty.width();
                row[c] = convert_cell(col.ty, &rec[off..off + w]);
                off += w;
            }
            conversion += self.schema.len() as u64;
            if !keep(&row) {
                continue;
            }
            let mut out = batch.start_row();
            match projection {
                Some(cols) => {
                    for &c in cols {
                        out.push(row[c]);
                    }
                }
                None => {
                    for &v in &row {
                        out.push(v);
                    }
                }
            }
            out.finish();
        }
        Ok(run.cycles + conversion)
    }

    /// Reference per-tuple extraction path, retained for differential
    /// testing of the batch pipeline (and for callers that want row
    /// objects). Allocates one `Vec<f32>` per tuple — never used on the
    /// deploy/execute hot path.
    pub fn extract_page_rows(&self, page: &[u8]) -> StriderResult<(Vec<ExtractedTuple>, u64)> {
        let run = self.machine.run(page)?;
        let mut tuples = Vec::with_capacity(run.len());
        let mut conversion = 0u64;
        for rec in run.records() {
            let t = self.convert_record(rec)?;
            conversion += t.values.len() as u64;
            tuples.push(t);
        }
        Ok((tuples, run.cycles + conversion))
    }

    fn check_record_len(&self, rec: &[u8]) -> StriderResult<()> {
        let expected = self.layout.tuple_data_bytes();
        if rec.len() != expected {
            return Err(StriderError::BadTupleBytes(format!(
                "record is {} bytes, schema expects {expected}",
                rec.len()
            )));
        }
        Ok(())
    }

    /// Converts one cleansed record (user-data bytes) into a flat batch row.
    fn convert_record_into(&self, rec: &[u8], batch: &mut TupleBatch) -> StriderResult<()> {
        self.check_record_len(rec)?;
        let mut row = batch.start_row();
        let mut off = 0usize;
        for col in self.schema.columns() {
            let w = col.ty.width();
            row.push(convert_cell(col.ty, &rec[off..off + w]));
            off += w;
        }
        row.finish();
        Ok(())
    }

    /// Converts one cleansed record (user-data bytes) into f32 columns.
    fn convert_record(&self, rec: &[u8]) -> StriderResult<ExtractedTuple> {
        self.check_record_len(rec)?;
        let mut values = Vec::with_capacity(self.schema.len());
        let mut off = 0usize;
        for col in self.schema.columns() {
            let w = col.ty.width();
            values.push(convert_cell(col.ty, &rec[off..off + w]));
            off += w;
        }
        Ok(ExtractedTuple { values })
    }

    /// Extracts an entire heap file into one flat batch, producing tuples
    /// in page/slot order and the aggregate access-engine cost model.
    pub fn extract_heap(&self, heap: &HeapFile) -> StriderResult<(TupleBatch, AccessStats)> {
        let mut all = TupleBatch::with_capacity(self.schema.len(), heap.tuple_count() as usize);
        let mut stats = AccessStats::default();
        for p in 0..heap.page_count() {
            let page = heap.page_bytes(p).expect("page in range");
            let before = all.len();
            let cycles = self.extract_page_into(page, &mut all)?;
            stats.pages += 1;
            stats.tuples += (all.len() - before) as u64;
            stats.strider_cycles += cycles;
        }
        self.finish_stats(&mut stats);
        Ok((all, stats))
    }

    /// Completes an extraction pass's cost model from its raw counters
    /// (pages, tuples, strider cycles): bytes shipped, AXI streaming time,
    /// conversion cycles, and the overlapped wall-clock cost.
    pub fn finish_stats(&self, stats: &mut AccessStats) {
        stats.bytes_transferred = stats.pages * self.layout.page_size as u64;
        stats.conversion_cycles = stats.tuples * self.schema.len() as u64;
        stats.axi_seconds = self
            .config
            .axi
            .stream_time(stats.bytes_transferred, self.layout.page_size as u64);
        stats.access_seconds = self.access_seconds(stats);
    }

    /// Computes the engine's wall-clock cost: Strider work spreads across
    /// `num_striders` parallel units and overlaps with AXI streaming; the
    /// slower of the two dominates, plus one page of pipeline fill.
    pub fn access_seconds(&self, stats: &AccessStats) -> Seconds {
        if stats.pages == 0 {
            return 0.0;
        }
        let parallel_cycles = stats
            .strider_cycles
            .div_ceil(self.config.num_striders as u64);
        let strider_seconds = self.config.clock.to_seconds(parallel_cycles);
        let fill = self.config.axi.burst_time(self.layout.page_size as u64);
        stats.axi_seconds.max(strider_seconds) + fill
    }

    pub fn config(&self) -> &AccessEngineConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dana_storage::page::TupleDirection;
    use dana_storage::{HeapFileBuilder, Tuple};

    fn heap_with(n: usize, features: usize) -> HeapFile {
        let schema = Schema::training(features);
        let mut b = HeapFileBuilder::new(schema, 8 * 1024, TupleDirection::Ascending).unwrap();
        for k in 0..n {
            let feats: Vec<f32> = (0..features).map(|i| (k + i) as f32 * 0.5).collect();
            b.insert(&Tuple::training(&feats, -(k as f32))).unwrap();
        }
        b.finish()
    }

    fn engine_for(heap: &HeapFile, striders: u32) -> AccessEngine {
        AccessEngine::for_table(
            *heap.layout(),
            heap.schema().clone(),
            AccessEngineConfig::new(striders, Clock::FPGA_150MHZ, AxiLink::with_bandwidth(2.5e9)),
        )
    }

    #[test]
    fn extracted_tuples_match_cpu_scan() {
        let heap = heap_with(500, 12);
        let engine = engine_for(&heap, 4);
        let (batch, stats) = engine.extract_heap(&heap).unwrap();
        assert_eq!(batch.len(), 500);
        assert_eq!(batch.width(), 13);
        assert_eq!(stats.tuples, 500);
        for (ext, cpu) in batch.rows().zip(heap.scan()) {
            let cpu_vals: Vec<f32> = cpu.values.iter().map(|d| d.as_f32()).collect();
            assert_eq!(ext, &cpu_vals[..]);
        }
    }

    #[test]
    fn batch_path_matches_reference_rows_path() {
        let heap = heap_with(200, 7);
        let engine = engine_for(&heap, 2);
        let (batch, _) = engine.extract_heap(&heap).unwrap();
        let mut row_idx = 0usize;
        let mut ref_cycles = 0u64;
        for p in 0..heap.page_count() {
            let (rows, cycles) = engine
                .extract_page_rows(heap.page_bytes(p).unwrap())
                .unwrap();
            ref_cycles += cycles;
            for t in rows {
                assert_eq!(batch.row(row_idx), &t.values[..]);
                row_idx += 1;
            }
        }
        assert_eq!(row_idx, batch.len());
        // Same cycle accounting either way.
        let mut scratch = TupleBatch::new(batch.width());
        let mut batch_cycles = 0u64;
        for p in 0..heap.page_count() {
            batch_cycles += engine
                .extract_page_into(heap.page_bytes(p).unwrap(), &mut scratch)
                .unwrap();
        }
        assert_eq!(batch_cycles, ref_cycles);
    }

    #[test]
    fn training_split_puts_label_last() {
        let heap = heap_with(3, 4);
        let engine = engine_for(&heap, 1);
        let (tuples, _) = engine
            .extract_page_rows(heap.page_bytes(0).unwrap())
            .unwrap();
        let (x, y) = tuples[2].as_training();
        assert_eq!(x.len(), 4);
        assert_eq!(y, -2.0);
    }

    #[test]
    fn rating_schema_converts_ints() {
        let schema = Schema::rating();
        let mut b =
            HeapFileBuilder::new(schema.clone(), 8 * 1024, TupleDirection::Ascending).unwrap();
        b.insert(&Tuple::rating(42, 99, 3.5)).unwrap();
        let heap = b.finish();
        let engine = engine_for(&heap, 1);
        let (batch, _) = engine.extract_heap(&heap).unwrap();
        assert_eq!(batch.row(0), &[42.0, 99.0, 3.5]);
    }

    #[test]
    fn more_striders_reduce_access_time() {
        let heap = heap_with(3000, 16);
        let one = engine_for(&heap, 1);
        let eight = engine_for(&heap, 8);
        let (_, s1) = one.extract_heap(&heap).unwrap();
        let (_, s8) = eight.extract_heap(&heap).unwrap();
        assert_eq!(s1.strider_cycles, s8.strider_cycles, "same total work");
        assert!(
            s8.access_seconds < s1.access_seconds,
            "parallel striders must cut wall time ({} vs {})",
            s8.access_seconds,
            s1.access_seconds
        );
    }

    #[test]
    fn access_time_is_bounded_below_by_axi() {
        let heap = heap_with(2000, 16);
        // Absurdly many striders: AXI must become the floor.
        let engine = engine_for(&heap, 1024);
        let (_, stats) = engine.extract_heap(&heap).unwrap();
        assert!(stats.access_seconds >= stats.axi_seconds);
    }

    #[test]
    fn conversion_cycles_count_every_value() {
        let heap = heap_with(10, 6);
        let engine = engine_for(&heap, 1);
        let (_, stats) = engine.extract_heap(&heap).unwrap();
        assert_eq!(stats.conversion_cycles, 10 * 7); // 6 features + label
    }

    #[test]
    fn empty_heap_costs_nothing() {
        let schema = Schema::training(4);
        let heap = HeapFileBuilder::new(schema.clone(), 8 * 1024, TupleDirection::Ascending)
            .unwrap()
            .finish();
        let engine = engine_for(&heap, 2);
        let (batch, stats) = engine.extract_heap(&heap).unwrap();
        assert!(batch.is_empty());
        assert_eq!(stats.access_seconds, 0.0);
    }
}
