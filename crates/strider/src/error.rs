//! Strider error types.

use std::fmt;

/// Errors from encoding, assembling, or executing Strider programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StriderError {
    /// An operand value does not fit its 6-bit field.
    OperandRange { value: u64, limit: u64 },
    /// Unknown opcode value during decode.
    BadOpcode(u32),
    /// Assembly text error with 1-based line number.
    Asm { line: usize, msg: String },
    /// Out-of-bounds page-buffer access at runtime.
    PageBounds {
        addr: usize,
        len: usize,
        page: usize,
    },
    /// Staging-buffer slice out of range.
    StagingBounds {
        offset: usize,
        len: usize,
        staged: usize,
    },
    /// `bexit` without a matching `bentr`.
    UnmatchedBexit(usize),
    /// The program exceeded the execution fuel (runaway loop).
    Fuel { executed: u64 },
    /// Program ended inside an open loop.
    UnclosedLoop,
    /// Extracted bytes do not decode under the tuple format.
    BadTupleBytes(String),
}

impl fmt::Display for StriderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StriderError::OperandRange { value, limit } => {
                write!(f, "operand {value} exceeds field limit {limit}")
            }
            StriderError::BadOpcode(op) => write!(f, "unknown opcode {op}"),
            StriderError::Asm { line, msg } => write!(f, "asm error at line {line}: {msg}"),
            StriderError::PageBounds { addr, len, page } => {
                write!(
                    f,
                    "page access [{addr}, {addr}+{len}) outside {page}-byte page"
                )
            }
            StriderError::StagingBounds {
                offset,
                len,
                staged,
            } => {
                write!(
                    f,
                    "staging access [{offset}, {offset}+{len}) outside {staged} staged bytes"
                )
            }
            StriderError::UnmatchedBexit(pc) => write!(f, "bexit at pc {pc} without bentr"),
            StriderError::Fuel { executed } => {
                write!(f, "execution fuel exhausted after {executed} instructions")
            }
            StriderError::UnclosedLoop => write!(f, "program ended inside an open loop"),
            StriderError::BadTupleBytes(msg) => write!(f, "bad tuple bytes: {msg}"),
        }
    }
}

impl std::error::Error for StriderError {}

pub type StriderResult<T> = Result<T, StriderError>;
