//! The Strider ISA: ten 22-bit fixed-length instructions (paper Table 2).
//!
//! ```text
//!  21      18 17      12 11       6 5        0
//! +----------+----------+----------+----------+
//! |  opcode  |  field A |  field B |  field C |
//! +----------+----------+----------+----------+
//! ```
//!
//! Opcodes follow Table 2 exactly: `readB`=0, `extrB`=1, `writeB`=2,
//! `extrBi`=3, `cln`=4, `ins`=5, `ad`=6, `sub`=7, `mul`=8, `bentr`=9,
//! `bexit`=10. Each 6-bit field encodes either a register (bit 5 clear;
//! 0–15 = configuration registers `%cr0..%cr15`, 16–31 = temporaries
//! `%t0..%t15`) or a 5-bit immediate (bit 5 set, values 0–31). Larger
//! constants — page offsets, tuple sizes — arrive through the configuration
//! registers, which the host loads over AXI before execution ("configuration
//! data to configuration registers", §5.1.1; Fig. 5 shows Page Size, Tuples
//! per Page, Tuple Size, … in that block).
//!
//! Dataflow model: wide byte-level data moves through an implicit **staging
//! buffer** (the shifter's output register of Fig. 5). `readB` fills it from
//! the page buffer; `extrB`/`extrBi`/`cln`/`ins` rewrite it; `writeB` emits
//! it downstream. Scalar arithmetic (`ad`/`sub`/`mul`) and loop control
//! operate on the 32 scalar registers.

use crate::error::{StriderError, StriderResult};

/// A register name: configuration (`%cr0..%cr15`) or temporary (`%t0..%t15`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// Configuration register `i` (0–15).
    pub fn cr(i: u8) -> Reg {
        assert!(i < 16, "cr index {i} out of range");
        Reg(i)
    }

    /// Temporary register `i` (0–15).
    pub fn t(i: u8) -> Reg {
        assert!(i < 16, "t index {i} out of range");
        Reg(16 + i)
    }

    pub fn is_config(&self) -> bool {
        self.0 < 16
    }

    pub fn name(&self) -> String {
        if self.is_config() {
            format!("%cr{}", self.0)
        } else {
            format!("%t{}", self.0 - 16)
        }
    }
}

/// Well-known configuration registers, loaded by the host before execution
/// (Fig. 5's configuration-register block).
pub mod config_regs {
    use super::Reg;
    /// Total page size in bytes.
    pub const PAGE_SIZE: Reg = Reg(0);
    /// Tuples per page (capacity; the live count is read from the header).
    pub const TUPLES_PER_PAGE: Reg = Reg(1);
    /// On-page tuple size (header + data).
    pub const TUPLE_BYTES: Reg = Reg(2);
    /// Offset of the first byte of the tuple-data region.
    pub const DATA_START: Reg = Reg(3);
    /// Offset of the special space.
    pub const SPECIAL_START: Reg = Reg(4);
    /// Tuple header size (bytes stripped by `cln`).
    pub const TUPLE_HEADER: Reg = Reg(5);
}

/// An instruction operand: a register or a 5-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Operand {
    Reg(Reg),
    Imm(u8),
}

impl Operand {
    /// Encodes into the 6-bit field.
    pub fn encode(&self) -> StriderResult<u32> {
        match self {
            Operand::Reg(r) => {
                if r.0 >= 32 {
                    return Err(StriderError::OperandRange {
                        value: r.0 as u64,
                        limit: 31,
                    });
                }
                Ok(r.0 as u32)
            }
            Operand::Imm(v) => {
                if *v >= 32 {
                    return Err(StriderError::OperandRange {
                        value: *v as u64,
                        limit: 31,
                    });
                }
                Ok(0b100000 | *v as u32)
            }
        }
    }

    pub fn decode(field: u32) -> Operand {
        let field = field & 0x3F;
        if field & 0b100000 != 0 {
            Operand::Imm((field & 0b11111) as u8)
        } else {
            Operand::Reg(Reg(field as u8))
        }
    }

    pub fn display(&self) -> String {
        match self {
            Operand::Reg(r) => r.name(),
            Operand::Imm(v) => v.to_string(),
        }
    }

    /// Convenience: zero immediate (unused fields).
    pub const ZERO: Operand = Operand::Imm(0);
}

/// The ten operations of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[repr(u8)]
pub enum Opcode {
    /// `readB addr, count, dest` — stage `count` bytes from the page buffer
    /// at `addr`; `dest` also receives them as a little-endian integer
    /// (first 8 bytes if wider).
    ReadB = 0,
    /// `extrB offset, count, dest` — keep staging bytes
    /// `[offset, offset+count)`; `dest` receives their integer value.
    ExtrB = 1,
    /// `writeB mode, _, _` — mode 0: emit the staging buffer to the output
    /// stream (toward the execution engine); mode 1: write it back to the
    /// page buffer at the address in field B's register.
    WriteB = 2,
    /// `extrBi bitoff, bitcount, dest` — bit-granularity extract from the
    /// staging buffer into a scalar register (staging is unchanged).
    ExtrBi = 3,
    /// `cln offset, count, _` — delete staging bytes `[offset, offset+count)`
    /// (strips headers / NULLs, "remove parts of the data not required").
    Cln = 4,
    /// `ins src, count, offset` — insert the low `count` bytes of scalar
    /// `src` into the staging buffer at `offset`.
    Ins = 5,
    /// `ad a, b, dest` — dest = a + b.
    Ad = 6,
    /// `sub a, b, dest` — dest = a − b (saturating at 0: addresses).
    Sub = 7,
    /// `mul a, b, dest` — dest = a × b.
    Mul = 8,
    /// `bentr` — marks a loop head.
    Bentr = 9,
    /// `bexit cond, a, b` — evaluate `cond(a, b)`; **true exits the loop**
    /// (fall through), false jumps back to the matching `bentr`.
    /// Conditions: 0 `a < b`, 1 `a ≥ b`, 2 `a == b`, 3 `a != b`.
    Bexit = 10,
}

impl Opcode {
    pub fn from_u32(v: u32) -> StriderResult<Opcode> {
        Ok(match v {
            0 => Opcode::ReadB,
            1 => Opcode::ExtrB,
            2 => Opcode::WriteB,
            3 => Opcode::ExtrBi,
            4 => Opcode::Cln,
            5 => Opcode::Ins,
            6 => Opcode::Ad,
            7 => Opcode::Sub,
            8 => Opcode::Mul,
            9 => Opcode::Bentr,
            10 => Opcode::Bexit,
            other => return Err(StriderError::BadOpcode(other)),
        })
    }

    pub fn mnemonic(&self) -> &'static str {
        match self {
            Opcode::ReadB => "readB",
            Opcode::ExtrB => "extrB",
            Opcode::WriteB => "writeB",
            Opcode::ExtrBi => "extrBi",
            Opcode::Cln => "cln",
            Opcode::Ins => "ins",
            Opcode::Ad => "ad",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::Bentr => "bentr",
            Opcode::Bexit => "bexit",
        }
    }
}

/// One decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Instr {
    pub opcode: Opcode,
    pub a: Operand,
    pub b: Operand,
    pub c: Operand,
}

impl Instr {
    pub fn new(opcode: Opcode, a: Operand, b: Operand, c: Operand) -> Instr {
        Instr { opcode, a, b, c }
    }

    /// `bentr` with no operands.
    pub fn bentr() -> Instr {
        Instr::new(Opcode::Bentr, Operand::ZERO, Operand::ZERO, Operand::ZERO)
    }

    /// Encodes into the low 22 bits of a `u32`.
    pub fn encode(&self) -> StriderResult<u32> {
        let op = self.opcode as u32;
        debug_assert!(op < 16);
        Ok((op << 18) | (self.a.encode()? << 12) | (self.b.encode()? << 6) | self.c.encode()?)
    }

    /// Decodes from the low 22 bits of a `u32`.
    pub fn decode(word: u32) -> StriderResult<Instr> {
        if word >> 22 != 0 {
            return Err(StriderError::BadOpcode(word >> 22));
        }
        Ok(Instr {
            opcode: Opcode::from_u32(word >> 18)?,
            a: Operand::decode(word >> 12),
            b: Operand::decode(word >> 6),
            c: Operand::decode(word),
        })
    }

    /// Assembly rendering.
    pub fn display(&self) -> String {
        match self.opcode {
            Opcode::Bentr => "bentr".to_string(),
            _ => format!(
                "{} {}, {}, {}",
                self.opcode.mnemonic(),
                self.a.display(),
                self.b.display(),
                self.c.display()
            ),
        }
    }
}

/// Encodes a whole program into instruction words.
pub fn encode_program(program: &[Instr]) -> StriderResult<Vec<u32>> {
    program.iter().map(|i| i.encode()).collect()
}

/// Decodes instruction words back into a program.
pub fn decode_program(words: &[u32]) -> StriderResult<Vec<Instr>> {
    words.iter().map(|w| Instr::decode(*w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_is_22_bits() {
        let i = Instr::new(
            Opcode::Bexit,
            Operand::Imm(31),
            Operand::Reg(Reg::t(15)),
            Operand::Reg(Reg::cr(15)),
        );
        let w = i.encode().unwrap();
        assert!(w < (1 << 22), "word {w:#x} exceeds 22 bits");
        assert_eq!(Instr::decode(w).unwrap(), i);
    }

    #[test]
    fn opcodes_match_table_2() {
        assert_eq!(Opcode::ReadB as u8, 0);
        assert_eq!(Opcode::ExtrB as u8, 1);
        assert_eq!(Opcode::WriteB as u8, 2);
        assert_eq!(Opcode::ExtrBi as u8, 3);
        assert_eq!(Opcode::Cln as u8, 4);
        assert_eq!(Opcode::Ins as u8, 5);
        assert_eq!(Opcode::Ad as u8, 6);
        assert_eq!(Opcode::Sub as u8, 7);
        assert_eq!(Opcode::Mul as u8, 8);
        assert_eq!(Opcode::Bentr as u8, 9);
        assert_eq!(Opcode::Bexit as u8, 10);
    }

    #[test]
    fn every_opcode_round_trips() {
        for op in [
            Opcode::ReadB,
            Opcode::ExtrB,
            Opcode::WriteB,
            Opcode::ExtrBi,
            Opcode::Cln,
            Opcode::Ins,
            Opcode::Ad,
            Opcode::Sub,
            Opcode::Mul,
            Opcode::Bentr,
            Opcode::Bexit,
        ] {
            let i = Instr::new(
                op,
                Operand::Imm(3),
                Operand::Reg(Reg::t(2)),
                Operand::Reg(Reg::cr(1)),
            );
            assert_eq!(Instr::decode(i.encode().unwrap()).unwrap(), i);
        }
    }

    #[test]
    fn immediate_range_enforced() {
        assert!(Operand::Imm(31).encode().is_ok());
        assert!(Operand::Imm(32).encode().is_err());
    }

    #[test]
    fn register_names() {
        assert_eq!(Reg::cr(0).name(), "%cr0");
        assert_eq!(Reg::t(3).name(), "%t3");
        assert!(Reg::cr(5).is_config());
        assert!(!Reg::t(5).is_config());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_index_bounds() {
        let _ = Reg::t(16);
    }

    #[test]
    fn bad_opcode_rejected() {
        // opcode field = 15 (invalid)
        let word = 15u32 << 18;
        assert!(matches!(
            Instr::decode(word),
            Err(StriderError::BadOpcode(15))
        ));
    }

    #[test]
    fn program_encode_decode_round_trip() {
        let prog = vec![
            Instr::new(
                Opcode::ReadB,
                Operand::Imm(0),
                Operand::Imm(8),
                Operand::Reg(Reg::t(0)),
            ),
            Instr::bentr(),
            Instr::new(
                Opcode::Bexit,
                Operand::Imm(1),
                Operand::Reg(Reg::t(1)),
                Operand::Reg(Reg::cr(1)),
            ),
        ];
        let words = encode_program(&prog).unwrap();
        assert_eq!(decode_program(&words).unwrap(), prog);
    }
}
