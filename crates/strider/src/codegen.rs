//! Strider code generation: page layout → extraction program.
//!
//! "The compiler converts the database page configuration into a set of
//! Strider instructions that process the page and tuple headers" (§6.2).
//! Given a [`PageLayoutDesc`], this module emits the walk loop and the
//! configuration-register image the access engine loads before execution.
//!
//! The generated program mirrors the paper's §5.1.2 listing: process the
//! page header, read the first tuple pointer, then loop — stage one tuple,
//! `cln` its header, emit the user data, advance by the tuple stride — until
//! the live tuple count is exhausted. Ascending layouts advance with `ad`,
//! descending (PostgreSQL-style) with `sub`: the same ISA "can be targeted"
//! at "variations in the database page organization" (§1).

use dana_storage::page::TupleDirection;
use dana_storage::PageLayoutDesc;

use crate::isa::{config_regs, Instr, Opcode, Operand, Reg};

/// Builds the extraction program and configuration-register image for a
/// page layout. Returns `(program, config)`.
///
/// Register conventions inside the program:
/// * `%t0` — current tuple offset;
/// * `%t1` — live tuple count (from the page header);
/// * `%t2` — scratch (first line pointer);
/// * `%t3` — loop index;
/// * `%t4` — staging integer view (unused scalar).
#[allow(clippy::vec_init_then_push)] // instruction-by-instruction listing reads best
pub fn strider_program_for_layout(layout: &PageLayoutDesc) -> (Vec<Instr>, [u64; 16]) {
    let mut config = [0u64; 16];
    config[config_regs::PAGE_SIZE.0 as usize] = layout.page_size as u64;
    config[config_regs::TUPLES_PER_PAGE.0 as usize] = layout.capacity as u64;
    config[config_regs::TUPLE_BYTES.0 as usize] = layout.tuple_bytes as u64;
    config[config_regs::DATA_START.0 as usize] = layout.data_start() as u64;
    config[config_regs::SPECIAL_START.0 as usize] = layout.special_start() as u64;
    config[config_regs::TUPLE_HEADER.0 as usize] = layout.tuple_header_bytes as u64;

    let imm = Operand::Imm;
    let r = |reg: Reg| Operand::Reg(reg);
    let t = |i: u8| Operand::Reg(Reg::t(i));

    let mut prog = Vec::new();
    // ---- page header processing --------------------------------------
    // live tuple count lives at header offset 16 (page.rs layout).
    prog.push(Instr::new(Opcode::ReadB, imm(16), imm(2), t(1)));
    // first line pointer: offset u16 | length u16 at the header's end (24).
    prog.push(Instr::new(Opcode::ReadB, imm(24), imm(4), t(2)));
    prog.push(Instr::new(Opcode::ExtrB, imm(0), imm(2), t(2)));
    // current offset := first tuple offset; index := 0.
    prog.push(Instr::new(Opcode::Ad, t(2), imm(0), t(0)));
    prog.push(Instr::new(Opcode::Ad, imm(0), imm(0), t(3)));
    // ---- tuple walk loop ----------------------------------------------
    prog.push(Instr::bentr());
    // stage one tuple (header + data).
    prog.push(Instr::new(
        Opcode::ReadB,
        t(0),
        r(config_regs::TUPLE_BYTES),
        t(4),
    ));
    // strip the tuple header ("remove its auxiliary information").
    prog.push(Instr::new(
        Opcode::Cln,
        imm(0),
        r(config_regs::TUPLE_HEADER),
        imm(0),
    ));
    // emit cleansed user data to the execution engine.
    prog.push(Instr::new(Opcode::WriteB, imm(0), imm(0), imm(0)));
    // advance to the next tuple.
    let step = match layout.direction {
        TupleDirection::Ascending => {
            Instr::new(Opcode::Ad, t(0), r(config_regs::TUPLE_BYTES), t(0))
        }
        TupleDirection::Descending => {
            Instr::new(Opcode::Sub, t(0), r(config_regs::TUPLE_BYTES), t(0))
        }
    };
    prog.push(step);
    prog.push(Instr::new(Opcode::Ad, t(3), imm(1), t(3)));
    // exit when index ≥ live count.
    prog.push(Instr::new(Opcode::Bexit, imm(1), t(3), t(1)));
    (prog, config)
}

/// Static cycle estimate for extracting one page holding `tuples` tuples —
/// used by the hardware generator's performance estimator without running
/// the interpreter. Matches [`crate::machine::StriderMachine`]'s cycle
/// accounting exactly (tests enforce this).
pub fn estimated_cycles_per_page(layout: &PageLayoutDesc, tuples: u64) -> u64 {
    // Header processing: readB(2B)=1, readB(4B)=1, extrB=1, ad, ad — plus
    // the one-time bentr.
    let header = 6u64;
    // Loop body per tuple: readB (1 + extra words), cln, writeB (1 + extra
    // words of the cleansed data), ad, ad, bexit.
    let tuple_words = (layout.tuple_bytes as u64).div_ceil(8);
    let data_words = (layout.tuple_data_bytes() as u64).div_ceil(8);
    let per_tuple = tuple_words + 1 + data_words + 3;
    header + tuples * per_tuple
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::StriderMachine;
    use dana_storage::{HeapFileBuilder, Schema, Tuple};

    fn build_heap(dir: TupleDirection, n: usize, features: usize) -> dana_storage::HeapFile {
        let schema = Schema::training(features);
        let mut b = HeapFileBuilder::new(schema, 8 * 1024, dir).unwrap();
        for k in 0..n {
            let feats: Vec<f32> = (0..features).map(|i| (k * 100 + i) as f32).collect();
            b.insert(&Tuple::training(&feats, k as f32)).unwrap();
        }
        b.finish()
    }

    #[test]
    fn generated_program_extracts_every_tuple_ascending() {
        let heap = build_heap(TupleDirection::Ascending, 300, 10);
        let (prog, config) = strider_program_for_layout(heap.layout());
        let machine = StriderMachine::new(prog, config);
        let mut total = 0usize;
        for p in 0..heap.page_count() {
            let run = machine.run(heap.page_bytes(p).unwrap()).unwrap();
            total += run.len();
            for rec in run.records() {
                assert_eq!(rec.len(), heap.layout().tuple_data_bytes());
            }
        }
        assert_eq!(total, 300);
    }

    #[test]
    fn generated_program_extracts_every_tuple_descending() {
        let heap = build_heap(TupleDirection::Descending, 137, 7);
        let (prog, config) = strider_program_for_layout(heap.layout());
        let machine = StriderMachine::new(prog, config);
        let mut labels = Vec::new();
        for p in 0..heap.page_count() {
            let run = machine.run(heap.page_bytes(p).unwrap()).unwrap();
            for rec in run.records() {
                // label is the final f32 of the record
                let off = rec.len() - 4;
                labels.push(f32::from_le_bytes(rec[off..].try_into().unwrap()));
            }
        }
        assert_eq!(labels.len(), 137);
        for (k, l) in labels.iter().enumerate() {
            assert_eq!(*l, k as f32, "tuple order must be preserved");
        }
    }

    #[test]
    fn extraction_matches_cpu_deform() {
        // The Strider's byte stream must equal what CPU-side deforming sees.
        let heap = build_heap(TupleDirection::Ascending, 50, 5);
        let schema = Schema::training(5);
        let (prog, config) = strider_program_for_layout(heap.layout());
        let machine = StriderMachine::new(prog, config);
        let mut strider_tuples: Vec<Vec<f32>> = Vec::new();
        for p in 0..heap.page_count() {
            let run = machine.run(heap.page_bytes(p).unwrap()).unwrap();
            for rec in run.records() {
                let vals: Vec<f32> = rec
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                strider_tuples.push(vals);
            }
        }
        let cpu_tuples: Vec<Vec<f32>> = heap
            .scan()
            .map(|t| t.values.iter().map(|d| d.as_f32()).collect())
            .collect();
        assert_eq!(strider_tuples, cpu_tuples);
        let _ = schema;
    }

    #[test]
    fn cycle_estimate_matches_interpreter_exactly() {
        for (n, features) in [(10, 4), (100, 10), (127, 10), (60, 33)] {
            let heap = build_heap(TupleDirection::Ascending, n, features);
            let (prog, config) = strider_program_for_layout(heap.layout());
            let machine = StriderMachine::new(prog, config);
            for p in 0..heap.page_count() {
                let page = heap.page_bytes(p).unwrap();
                let run = machine.run(page).unwrap();
                let est = estimated_cycles_per_page(heap.layout(), run.len() as u64);
                assert_eq!(
                    run.cycles, est,
                    "estimator must match interpreter ({n} tuples, {features} features)"
                );
            }
        }
    }

    #[test]
    fn config_registers_describe_layout() {
        let heap = build_heap(TupleDirection::Ascending, 10, 8);
        let l = heap.layout();
        let (_, config) = strider_program_for_layout(l);
        assert_eq!(config[0], l.page_size as u64);
        assert_eq!(config[1], l.capacity as u64);
        assert_eq!(config[2], l.tuple_bytes as u64);
        assert_eq!(config[5], l.tuple_header_bytes as u64);
    }

    #[test]
    fn program_fits_a_tiny_instruction_store() {
        // The ISA's point is a small footprint: "This feature invariably
        // reduces the instruction footprint" (§5.1.2). The whole walk is
        // a dozen instructions regardless of page or tuple size.
        let heap = build_heap(TupleDirection::Ascending, 10, 200);
        let (prog, _) = strider_program_for_layout(heap.layout());
        assert!(prog.len() <= 16, "{} instructions", prog.len());
    }
}
