//! Striders: DAnA's database-aware on-chip memory interface (§5.1).
//!
//! A Strider is a tiny programmable engine that sits between a page buffer
//! (holding one raw database page shipped over AXI) and the execution
//! engine. It "extracts, cleanses, and processes the training data tuples"
//! by pointer-chasing the page bytes — page header, tuple pointers, tuple
//! headers — with a specialized 22-bit fixed-length ISA (Table 2).
//!
//! This crate provides the full Strider stack:
//!
//! * [`isa`] — the ten instructions of Table 2, their 22-bit encoding, and
//!   the register file (16 configuration + 16 temporary registers, per
//!   Fig. 5's configuration-register block);
//! * [`asm`] — a two-way assembler for the paper's assembly syntax
//!   (`readB 0, 8, %cr0`);
//! * [`codegen`] — the compiler half that "converts the database page
//!   configuration into a set of Strider instructions" (§6.2) for any
//!   [`dana_storage::PageLayoutDesc`] (ascending or descending tuple
//!   placement, any supported page size);
//! * [`machine`] — a cycle-accurate interpreter: one instruction per cycle,
//!   wide reads/writes pay one cycle per 8 bytes of data moved;
//! * [`access_engine`] — the multi-Strider access engine (Fig. 5): page
//!   buffers, AXI streaming, float conversion of extracted columns, and the
//!   per-page cycle accounting the runtime overlaps with compute.

pub mod access_engine;
pub mod asm;
pub mod codegen;
pub mod error;
pub mod isa;
pub mod machine;

pub use access_engine::{AccessEngine, AccessEngineConfig, AccessStats, ExtractedTuple};
pub use asm::{assemble, disassemble};
pub use codegen::strider_program_for_layout;
pub use error::{StriderError, StriderResult};
pub use isa::{Instr, Opcode, Operand, Reg};
pub use machine::{StriderMachine, StriderRun};
