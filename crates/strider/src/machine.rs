//! Cycle-accurate Strider interpreter.
//!
//! Executes one Strider program against one page buffer, exactly as the
//! hardware of Fig. 5 would: scalar registers for pointer arithmetic, the
//! staging buffer (shifter output) for wide data, and an output FIFO of
//! extracted records toward the execution engine.
//!
//! **Cycle model.** Every instruction costs one cycle; `readB`/`writeB`
//! additionally pay one cycle per 8 bytes moved beyond the first (the
//! page-buffer BRAM exposes a 64-bit read port). This makes per-page
//! extraction cost scale with tuple bytes — the quantity the access engine
//! overlaps against AXI transfer and compute.

use std::borrow::Cow;

use crate::error::{StriderError, StriderResult};
use crate::isa::{Instr, Opcode, Operand};

/// Result of running a program over one page.
///
/// Records are stored flat — one contiguous byte buffer plus per-record
/// end offsets — matching the hardware's output FIFO and keeping the run
/// to O(1) allocations regardless of the page's tuple count.
#[derive(Debug, Clone, PartialEq)]
pub struct StriderRun {
    /// All extracted records' bytes (one per `writeB 0`), back to back in
    /// extraction order — the cleansed user-data bytes of each tuple.
    data: Vec<u8>,
    /// End offset of each record within `data`.
    ends: Vec<u32>,
    /// Simulated Strider cycles consumed.
    pub cycles: u64,
    /// Instructions executed (≥ program length when loops run).
    pub executed: u64,
}

impl StriderRun {
    /// Number of extracted records.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Record `i`'s bytes.
    pub fn record(&self, i: usize) -> &[u8] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.data[start..self.ends[i] as usize]
    }

    /// All records in extraction order.
    pub fn records(&self) -> impl ExactSizeIterator<Item = &[u8]> + '_ {
        (0..self.ends.len()).map(move |i| self.record(i))
    }
}

/// The interpreter. Reusable across pages; [`StriderMachine::run`] resets
/// per-run state but keeps the program and configuration registers.
pub struct StriderMachine {
    program: Vec<Instr>,
    config: [u64; 16],
    fuel: u64,
}

impl StriderMachine {
    /// Creates a machine for `program` with configuration registers
    /// `config` (loaded over AXI in hardware; see [`crate::isa::config_regs`]).
    pub fn new(program: Vec<Instr>, config: [u64; 16]) -> StriderMachine {
        StriderMachine {
            program,
            config,
            fuel: 50_000_000,
        }
    }

    /// Overrides the runaway-loop bound (instructions per page).
    pub fn with_fuel(mut self, fuel: u64) -> StriderMachine {
        self.fuel = fuel;
        self
    }

    pub fn program(&self) -> &[Instr] {
        &self.program
    }

    /// Runs the program over `page` (a full page image).
    pub fn run(&self, page: &[u8]) -> StriderResult<StriderRun> {
        let mut regs = [0u64; 32];
        regs[..16].copy_from_slice(&self.config);
        let mut staging: Vec<u8> = Vec::new();
        // Copy-on-write: only `writeB` mode 1 mutates the page, and the
        // generated extraction programs never do — the common case streams
        // the borrowed frame bytes with no 32 KB copy.
        let mut page: Cow<[u8]> = Cow::Borrowed(page);
        let mut data: Vec<u8> = Vec::new();
        let mut ends: Vec<u32> = Vec::new();
        let mut loop_stack: Vec<usize> = Vec::new();
        let mut pc = 0usize;
        let mut cycles = 0u64;
        let mut executed = 0u64;

        let val = |regs: &[u64; 32], op: Operand| -> u64 {
            match op {
                Operand::Reg(r) => regs[r.0 as usize],
                Operand::Imm(v) => v as u64,
            }
        };
        let set = |regs: &mut [u64; 32], op: Operand, v: u64| {
            if let Operand::Reg(r) = op {
                regs[r.0 as usize] = v;
            }
        };

        while pc < self.program.len() {
            executed += 1;
            if executed > self.fuel {
                return Err(StriderError::Fuel { executed });
            }
            cycles += 1;
            let i = self.program[pc];
            match i.opcode {
                Opcode::ReadB => {
                    let addr = val(&regs, i.a) as usize;
                    let count = val(&regs, i.b) as usize;
                    if addr + count > page.len() {
                        return Err(StriderError::PageBounds {
                            addr,
                            len: count,
                            page: page.len(),
                        });
                    }
                    staging.clear();
                    staging.extend_from_slice(&page[addr..addr + count]);
                    set(&mut regs, i.c, le_int(&staging));
                    cycles += extra_move_cycles(count);
                }
                Opcode::ExtrB => {
                    let offset = val(&regs, i.a) as usize;
                    let count = val(&regs, i.b) as usize;
                    if offset + count > staging.len() {
                        return Err(StriderError::StagingBounds {
                            offset,
                            len: count,
                            staged: staging.len(),
                        });
                    }
                    staging.copy_within(offset..offset + count, 0);
                    staging.truncate(count);
                    set(&mut regs, i.c, le_int(&staging));
                }
                Opcode::WriteB => {
                    let mode = val(&regs, i.a);
                    if mode == 0 {
                        data.extend_from_slice(&staging);
                        ends.push(data.len() as u32);
                    } else {
                        let addr = val(&regs, i.b) as usize;
                        if addr + staging.len() > page.len() {
                            return Err(StriderError::PageBounds {
                                addr,
                                len: staging.len(),
                                page: page.len(),
                            });
                        }
                        page.to_mut()[addr..addr + staging.len()].copy_from_slice(&staging);
                    }
                    cycles += extra_move_cycles(staging.len());
                }
                Opcode::ExtrBi => {
                    let bitoff = val(&regs, i.a) as usize;
                    let bitcount = (val(&regs, i.b) as usize).min(64);
                    let total_bits = staging.len() * 8;
                    if bitoff + bitcount > total_bits {
                        return Err(StriderError::StagingBounds {
                            offset: bitoff / 8,
                            len: bitcount.div_ceil(8),
                            staged: staging.len(),
                        });
                    }
                    let mut v: u64 = 0;
                    for k in 0..bitcount {
                        let bit = bitoff + k;
                        let byte = staging[bit / 8];
                        if byte >> (bit % 8) & 1 == 1 {
                            v |= 1 << k;
                        }
                    }
                    set(&mut regs, i.c, v);
                }
                Opcode::Cln => {
                    let offset = val(&regs, i.a) as usize;
                    let count = val(&regs, i.b) as usize;
                    if offset + count > staging.len() {
                        return Err(StriderError::StagingBounds {
                            offset,
                            len: count,
                            staged: staging.len(),
                        });
                    }
                    staging.drain(offset..offset + count);
                }
                Opcode::Ins => {
                    let src = val(&regs, i.a);
                    let count = (val(&regs, i.b) as usize).min(8);
                    let offset = (val(&regs, i.c) as usize).min(staging.len());
                    let bytes = src.to_le_bytes();
                    for (k, b) in bytes[..count].iter().enumerate() {
                        staging.insert(offset + k, *b);
                    }
                }
                Opcode::Ad => {
                    let v = val(&regs, i.a).wrapping_add(val(&regs, i.b));
                    set(&mut regs, i.c, v);
                }
                Opcode::Sub => {
                    let v = val(&regs, i.a).saturating_sub(val(&regs, i.b));
                    set(&mut regs, i.c, v);
                }
                Opcode::Mul => {
                    let v = val(&regs, i.a).wrapping_mul(val(&regs, i.b));
                    set(&mut regs, i.c, v);
                }
                Opcode::Bentr => {
                    loop_stack.push(pc + 1);
                }
                Opcode::Bexit => {
                    let cond = val(&regs, i.a);
                    let x = val(&regs, i.b);
                    let y = val(&regs, i.c);
                    let exit = match cond {
                        0 => x < y,
                        1 => x >= y,
                        2 => x == y,
                        _ => x != y,
                    };
                    let head = *loop_stack.last().ok_or(StriderError::UnmatchedBexit(pc))?;
                    if exit {
                        loop_stack.pop();
                    } else {
                        pc = head;
                        continue;
                    }
                }
            }
            pc += 1;
        }
        if !loop_stack.is_empty() {
            return Err(StriderError::UnclosedLoop);
        }
        Ok(StriderRun {
            data,
            ends,
            cycles,
            executed,
        })
    }
}

/// Little-endian integer of the first ≤8 bytes.
fn le_int(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    u64::from_le_bytes(buf)
}

/// Wide moves pay one extra cycle per 8 bytes beyond the first word.
fn extra_move_cycles(bytes: usize) -> u64 {
    (bytes.div_ceil(8) as u64).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_src(src: &str, page: &[u8], config: [u64; 16]) -> StriderResult<StriderRun> {
        StriderMachine::new(assemble(src).unwrap(), config).run(page)
    }

    #[test]
    fn read_and_extract() {
        let mut page = vec![0u8; 64];
        page[10] = 0xAB;
        page[11] = 0xCD;
        let r = run_src("readB 10, 2, %t0\nwriteB 0, 0, 0\n", &page, [0; 16]).unwrap();
        assert_eq!(r.records().collect::<Vec<_>>(), vec![&[0xAB, 0xCD][..]]);
    }

    #[test]
    fn extract_narrows_staging() {
        let page: Vec<u8> = (0u8..32).collect();
        let r = run_src(
            "readB 0, 16, %t0\nextrB 4, 2, %t1\nwriteB 0, 0, 0\n",
            &page,
            [0; 16],
        )
        .unwrap();
        assert_eq!(r.records().collect::<Vec<_>>(), vec![&[4, 5][..]]);
    }

    #[test]
    fn clean_removes_header() {
        let page: Vec<u8> = (0u8..32).collect();
        // stage 12 bytes, strip the first 4 → bytes 4..12
        let r = run_src(
            "readB 0, 12, %t0\ncln 0, 4, 0\nwriteB 0, 0, 0\n",
            &page,
            [0; 16],
        )
        .unwrap();
        assert_eq!(r.record(0), (4u8..12).collect::<Vec<u8>>());
    }

    #[test]
    fn insert_adds_bytes() {
        let page: Vec<u8> = vec![9, 9, 9, 9];
        // stage [9,9], then insert 0xFF at offset 1
        let src = "readB 0, 2, %t0\nad 0, 31, %t1\nins %t1, 1, 1\nwriteB 0, 0, 0\n";
        let r = run_src(src, &page, [0; 16]).unwrap();
        assert_eq!(r.record(0), vec![9, 31, 9]);
    }

    #[test]
    fn bit_extraction() {
        let page = vec![0b1011_0101u8, 0xFF];
        // bits [2,6) of byte 0 = 1101 = 13
        let src = "readB 0, 2, %t0\nextrBi 2, 4, %t1\nsub %t1, 13, %t2\nbentr\nbexit 2, %t2, 0\n";
        let r = run_src(src, &page, [0; 16]);
        assert!(r.is_ok(), "{r:?}"); // loop exits immediately because t2 == 0
    }

    #[test]
    fn loop_walks_tuples() {
        // Three 4-byte "tuples" at offsets 0, 4, 8. cr2 = 4 (stride),
        // cr1 = 3 (count).
        let page: Vec<u8> = (0u8..16).collect();
        let mut config = [0u64; 16];
        config[1] = 3;
        config[2] = 4;
        let src = "\
ad 0, 0, %t0      # offset = 0
ad 0, 0, %t1      # index = 0
bentr
readB %t0, %cr2, %t2
writeB 0, 0, 0
ad %t0, %cr2, %t0
ad %t1, 1, %t1
bexit 1, %t1, %cr1
";
        let r = run_src(src, &page, config).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.record(0), vec![0, 1, 2, 3]);
        assert_eq!(r.record(2), vec![8, 9, 10, 11]);
        assert!(r.executed > 8, "loop body must re-execute");
    }

    #[test]
    fn arithmetic_semantics() {
        let page = vec![0u8; 8];
        let src = "\
ad 5, 7, %t0
mul %t0, 3, %t1
sub %t1, 6, %t2
sub 3, 9, %t3     # saturates at 0
bentr
bexit 2, %t3, 0
";
        let r = run_src(src, &page, [0; 16]);
        assert!(r.is_ok());
    }

    #[test]
    fn wide_reads_cost_extra_cycles() {
        let page = vec![0u8; 1024];
        let narrow = run_src("readB 0, 8, %t0\n", &page, [0; 16]).unwrap();
        let wide = run_src("readB 0, 24, %t0\n", &page, [0; 16]).unwrap();
        assert_eq!(narrow.cycles, 1);
        assert_eq!(wide.cycles, 3); // 24 bytes = 3 words
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let page = vec![0u8; 8];
        let err = run_src("readB 4, 8, %t0\n", &page, [0; 16]).unwrap_err();
        assert!(matches!(err, StriderError::PageBounds { .. }));
    }

    #[test]
    fn runaway_loop_hits_fuel() {
        let page = vec![0u8; 8];
        let prog = assemble("bentr\nad %t0, 0, %t0\nbexit 2, %t0, 1\n").unwrap();
        let m = StriderMachine::new(prog, [0; 16]).with_fuel(1000);
        assert!(matches!(m.run(&page), Err(StriderError::Fuel { .. })));
    }

    #[test]
    fn bexit_without_bentr_errors() {
        let page = vec![0u8; 8];
        let err = run_src("bexit 2, 0, 0\n", &page, [0; 16]).unwrap_err();
        assert!(matches!(err, StriderError::UnmatchedBexit(_)));
    }

    #[test]
    fn unclosed_loop_detected() {
        let page = vec![0u8; 8];
        let err = run_src("bentr\nad %t0, 1, %t0\n", &page, [0; 16]).unwrap_err();
        assert!(matches!(err, StriderError::UnclosedLoop));
    }

    #[test]
    fn write_back_mode_mutates_local_page_copy_only() {
        let page = vec![1u8, 2, 3, 4];
        // Stage bytes 0..2, write them back at addr 2, then re-read and emit.
        let src =
            "readB 0, 2, %t0\nad 0, 2, %t1\nwriteB 1, %t1, 0\nreadB 0, 4, %t0\nwriteB 0, 0, 0\n";
        let r = run_src(src, &page, [0; 16]).unwrap();
        assert_eq!(r.record(0), vec![1, 2, 1, 2]);
        assert_eq!(page, vec![1, 2, 3, 4], "caller's page is untouched");
    }
}
