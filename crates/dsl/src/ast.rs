//! The DSL's abstract syntax: declarations, three-address statements, and
//! the algorithm specification that the translator consumes.
//!
//! Expressions are kept in **three-address form** (one operation per
//! statement) rather than as trees: the paper's translator turns the UDF
//! into a hierarchical dataflow graph whose nodes are single
//! multi-dimensional operations (§4.4), and three-address statements *are*
//! those nodes, so nothing is lost and translation stays direct. The parser
//! flattens nested source expressions into temporaries.

use crate::error::{DslError, DslResult};

/// Identifies a declared variable within one [`AlgoSpec`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct VarId(pub u32);

/// The declaration class of a variable (Table 1, "Data Types").
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DataKind {
    /// One training tuple's feature portion (`dana.input`).
    Input,
    /// One training tuple's label portion (`dana.output`).
    Output,
    /// The learned model (`dana.model`).
    Model,
    /// Compile-time constant (`dana.meta`); shipped to the FPGA once.
    Meta,
    /// Intermediate value; auto-declared for temporaries (`dana.inter`).
    Inter,
}

/// A (possibly empty = scalar) list of dimension extents.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Dims(pub Vec<usize>);

impl Dims {
    pub fn scalar() -> Dims {
        Dims(Vec::new())
    }

    pub fn vector(n: usize) -> Dims {
        Dims(vec![n])
    }

    pub fn matrix(rows: usize, cols: usize) -> Dims {
        Dims(vec![rows, cols])
    }

    pub fn rank(&self) -> usize {
        self.0.len()
    }

    pub fn is_scalar(&self) -> bool {
        self.0.is_empty()
    }

    /// Total element count (1 for scalars).
    pub fn elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Broadcasts two operand shapes for an elementwise binary operation,
    /// per §4.4: "if both the inputs have same dimensions, it translates
    /// into an element by element operation ... In case the inputs do not
    /// have same dimensions, the input with lower dimension is logically
    /// replicated, and the generated output possess the dimensions of the
    /// larger input."
    ///
    /// Accepted pairings: identical shapes; a scalar with anything; a shape
    /// that is a trailing suffix of the other (replicated across the leading
    /// axes); and the paper's outer pairing of `[a][k]` with `[b][k]`
    /// (producing `[a][b][k]`, later reduced by a group op — the
    /// `sigma(mo * in, …)` matrix example of §4.4).
    pub fn broadcast(&self, other: &Dims, op: &str) -> DslResult<Dims> {
        if self == other {
            return Ok(self.clone());
        }
        if self.is_scalar() {
            return Ok(other.clone());
        }
        if other.is_scalar() {
            return Ok(self.clone());
        }
        // Trailing-suffix replication: [10] against [5][10] → [5][10].
        if self.rank() < other.rank() && other.0.ends_with(&self.0) {
            return Ok(other.clone());
        }
        if other.rank() < self.rank() && self.0.ends_with(&other.0) {
            return Ok(self.clone());
        }
        // Outer pairing on a shared trailing axis: [a][k] ⊗ [b][k] → [a][b][k].
        if self.rank() == 2
            && other.rank() == 2
            && self.0[1] == other.0[1]
            && self.0[0] != other.0[0]
        {
            return Ok(Dims(vec![self.0[0], other.0[0], self.0[1]]));
        }
        Err(DslError::DimMismatch {
            op: op.to_string(),
            left: self.0.clone(),
            right: other.0.clone(),
        })
    }

    /// Shape after reducing `axis` (1-based **from the right**: axis 1 is
    /// the innermost/feature axis). The paper's linear-regression example
    /// `sigma(mo * in, 1)` reduces a `[10]` vector to a scalar.
    pub fn reduce(&self, axis: usize) -> DslResult<Dims> {
        if axis == 0 || axis > self.rank().max(1) {
            return Err(DslError::BadAxis {
                axis,
                rank: self.rank(),
            });
        }
        if self.is_scalar() {
            // sigma over a scalar is the identity (rank().max(1) admits axis 1).
            return Ok(Dims::scalar());
        }
        let mut d = self.0.clone();
        d.remove(self.rank() - axis);
        Ok(Dims(d))
    }
}

impl std::fmt::Display for Dims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_scalar() {
            write!(f, "scalar")
        } else {
            for d in &self.0 {
                write!(f, "[{d}]")?;
            }
            Ok(())
        }
    }
}

/// A declared variable.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VarDecl {
    pub id: VarId,
    pub name: String,
    pub kind: DataKind,
    pub dims: Dims,
    /// Constant contents for `meta` variables (row-major).
    pub meta_value: Option<Vec<f64>>,
}

/// Elementwise binary operators (Table 1, "Primary operations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Gt,
    Lt,
}

impl BinOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Gt => ">",
            BinOp::Lt => "<",
        }
    }
}

/// Non-linear unary functions (Table 1, "Non linear operations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum UnaryFn {
    Sigmoid,
    Gaussian,
    Sqrt,
}

impl UnaryFn {
    pub fn name(&self) -> &'static str {
        match self {
            UnaryFn::Sigmoid => "sigmoid",
            UnaryFn::Gaussian => "gaussian",
            UnaryFn::Sqrt => "sqrt",
        }
    }

    /// Reference semantics (used by the software baselines and to check the
    /// engine's ALU).
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            UnaryFn::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryFn::Gaussian => (-(x * x)).exp(),
            UnaryFn::Sqrt => x.max(0.0).sqrt(),
        }
    }
}

/// Group (reduction) operators (Table 1, "Group operations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum GroupOp {
    /// Summation.
    Sigma,
    /// Product.
    Pi,
    /// Euclidean norm (magnitude).
    Norm,
}

impl GroupOp {
    pub fn name(&self) -> &'static str {
        match self {
            GroupOp::Sigma => "sigma",
            GroupOp::Pi => "pi",
            GroupOp::Norm => "norm",
        }
    }
}

/// The right-hand side of a statement: exactly one operation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum OpKind {
    /// Elementwise binary op with broadcasting.
    Binary(BinOp, VarId, VarId),
    /// Elementwise unary non-linear function.
    Unary(UnaryFn, VarId),
    /// Reduction along `axis` (1-based from the right).
    Group(GroupOp, VarId, usize),
    /// Row gather: `lookup(matrix, index)` — selects row `index` of a
    /// rank-2 model. Needed by LRMF (DESIGN.md §5.6).
    Gather { matrix: VarId, index: VarId },
    /// Copy / rename.
    Identity(VarId),
    /// Scalar literal.
    Const(f64),
}

impl OpKind {
    /// Variables read by this operation.
    pub fn operands(&self) -> Vec<VarId> {
        match self {
            OpKind::Binary(_, a, b) => vec![*a, *b],
            OpKind::Unary(_, a) | OpKind::Group(_, a, _) | OpKind::Identity(a) => vec![*a],
            OpKind::Gather { matrix, index } => vec![*matrix, *index],
            OpKind::Const(_) => vec![],
        }
    }
}

/// One three-address statement: `target := op`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Stmt {
    pub target: VarId,
    pub op: OpKind,
}

/// How parallel threads' results combine (Table 1: `merge(x, int, "op")`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MergeOp {
    /// `"+"` — sum the per-thread values (gradient batching).
    Sum,
    /// `"avg"` — average them (parallel model averaging; the paper's second
    /// linear-regression merge example divides the sum by the coefficient).
    Avg,
    /// `"max"` — keep the maximum (useful for convergence flags).
    Max,
}

impl MergeOp {
    pub fn parse(s: &str) -> DslResult<MergeOp> {
        match s {
            "+" | "sum" => Ok(MergeOp::Sum),
            "avg" | "mean" => Ok(MergeOp::Avg),
            "max" => Ok(MergeOp::Max),
            other => Err(DslError::BadMerge(format!("unknown merge op '{other}'"))),
        }
    }
}

/// The merge point: which variable is combined across threads, how, and the
/// batch size (merge coefficient = maximum thread count, §4.3).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MergeSpec {
    /// Variable computed per-thread, merged across threads. Statements at
    /// index ≥ `boundary` read the *merged* value ("DAnA's compiler
    /// implicitly understands that the merge function is performed before
    /// the gradient descent optimizer", §4.3).
    pub var: VarId,
    pub coef: u32,
    pub op: MergeOp,
    /// Index into [`AlgoSpec::stmts`] where the post-merge region begins.
    pub boundary: usize,
}

/// Convergence criterion (Table 1: `setEpochs` / `setConvergence`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Convergence {
    /// Fixed epoch count.
    Epochs(u32),
    /// Terminate when the given boolean (comparison-result) variable is
    /// true at the end of an epoch, with a safety cap on epochs.
    Condition { var: VarId, max_epochs: u32 },
}

/// A `setModel` binding (how the computed update writes back the model).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ModelUpdate {
    /// `setModel(src)` — the whole model becomes `src` after the merge.
    Whole { model: VarId, source: VarId },
    /// Row scatter: row `index` of `model` becomes `source` (LRMF).
    Row {
        model: VarId,
        index: VarId,
        source: VarId,
    },
}

impl ModelUpdate {
    pub fn model(&self) -> VarId {
        match self {
            ModelUpdate::Whole { model, .. } | ModelUpdate::Row { model, .. } => *model,
        }
    }

    pub fn source(&self) -> VarId {
        match self {
            ModelUpdate::Whole { source, .. } | ModelUpdate::Row { source, .. } => *source,
        }
    }
}

/// A complete UDF: the artifact the translator (and everything downstream)
/// consumes. Built by [`crate::builder::AlgoBuilder`] or
/// [`crate::parser::parse_udf`]; check with [`crate::validate::validate`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AlgoSpec {
    /// UDF name (`dana.algo` instance), used as the SQL-visible name.
    pub name: String,
    pub vars: Vec<VarDecl>,
    /// The update rule + convergence computation, in order.
    pub stmts: Vec<Stmt>,
    pub merge: Option<MergeSpec>,
    pub convergence: Convergence,
    pub model_updates: Vec<ModelUpdate>,
}

impl AlgoSpec {
    pub fn var(&self, id: VarId) -> &VarDecl {
        &self.vars[id.0 as usize]
    }

    pub fn var_by_name(&self, name: &str) -> Option<&VarDecl> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// All variables of a given kind, in declaration order.
    pub fn vars_of_kind(&self, kind: DataKind) -> impl Iterator<Item = &VarDecl> {
        self.vars.iter().filter(move |v| v.kind == kind)
    }

    /// Total feature width (sum of input-var elements) — the `x` portion of
    /// a training tuple.
    pub fn input_width(&self) -> usize {
        self.vars_of_kind(DataKind::Input)
            .map(|v| v.dims.elements())
            .sum()
    }

    /// Total label width.
    pub fn output_width(&self) -> usize {
        self.vars_of_kind(DataKind::Output)
            .map(|v| v.dims.elements())
            .sum()
    }

    /// Total model element count.
    pub fn model_elements(&self) -> usize {
        self.vars_of_kind(DataKind::Model)
            .map(|v| v.dims.elements())
            .sum()
    }

    /// The merge coefficient, defaulting to 1 (single-threaded) when the
    /// UDF declares no merge function.
    pub fn merge_coef(&self) -> u32 {
        self.merge.as_ref().map(|m| m.coef).unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_equal_and_scalar() {
        let v = Dims::vector(10);
        assert_eq!(v.broadcast(&v, "*").unwrap(), v);
        assert_eq!(Dims::scalar().broadcast(&v, "*").unwrap(), v);
        assert_eq!(v.broadcast(&Dims::scalar(), "*").unwrap(), v);
    }

    #[test]
    fn broadcast_suffix_replication() {
        let v = Dims::vector(10);
        let m = Dims::matrix(5, 10);
        assert_eq!(v.broadcast(&m, "*").unwrap(), m);
        assert_eq!(m.broadcast(&v, "*").unwrap(), m);
    }

    #[test]
    fn broadcast_outer_pairing_matches_paper_example() {
        // §4.4: mo [5][10] * in [2][10], then sigma → [5][2].
        let mo = Dims::matrix(5, 10);
        let inp = Dims::matrix(2, 10);
        let prod = mo.broadcast(&inp, "*").unwrap();
        assert_eq!(prod, Dims(vec![5, 2, 10]));
        let reduced = prod.reduce(1).unwrap();
        assert_eq!(reduced, Dims(vec![5, 2]));
    }

    #[test]
    fn broadcast_rejects_mismatches() {
        let a = Dims::vector(10);
        let b = Dims::vector(7);
        assert!(matches!(
            a.broadcast(&b, "+"),
            Err(DslError::DimMismatch { .. })
        ));
    }

    #[test]
    fn reduce_axes_count_from_right() {
        let m = Dims::matrix(5, 10);
        assert_eq!(m.reduce(1).unwrap(), Dims::vector(5)); // sum features
        assert_eq!(m.reduce(2).unwrap(), Dims::vector(10)); // sum rows
        assert!(m.reduce(3).is_err());
        assert!(m.reduce(0).is_err());
    }

    #[test]
    fn reduce_scalar_is_identity() {
        assert_eq!(Dims::scalar().reduce(1).unwrap(), Dims::scalar());
    }

    #[test]
    fn unary_fn_reference_semantics() {
        assert!((UnaryFn::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!((UnaryFn::Gaussian.apply(0.0) - 1.0).abs() < 1e-12);
        assert!((UnaryFn::Sqrt.apply(4.0) - 2.0).abs() < 1e-12);
        // sqrt clamps negatives (hardware ALU behaviour).
        assert_eq!(UnaryFn::Sqrt.apply(-1.0), 0.0);
    }

    #[test]
    fn merge_op_parsing() {
        assert_eq!(MergeOp::parse("+").unwrap(), MergeOp::Sum);
        assert_eq!(MergeOp::parse("avg").unwrap(), MergeOp::Avg);
        assert_eq!(MergeOp::parse("max").unwrap(), MergeOp::Max);
        assert!(MergeOp::parse("^").is_err());
    }

    #[test]
    fn dims_display() {
        assert_eq!(Dims::scalar().to_string(), "scalar");
        assert_eq!(Dims::matrix(5, 2).to_string(), "[5][2]");
    }

    #[test]
    fn opkind_operands() {
        let a = VarId(0);
        let b = VarId(1);
        assert_eq!(OpKind::Binary(BinOp::Add, a, b).operands(), vec![a, b]);
        assert_eq!(OpKind::Const(1.0).operands(), vec![]);
        assert_eq!(
            OpKind::Gather {
                matrix: a,
                index: b
            }
            .operands(),
            vec![a, b]
        );
    }
}
