//! The algorithm zoo: ready-made specs for the paper's four evaluated
//! algorithms (Table 3) — Linear Regression, Logistic Regression, SVM, and
//! Low-Rank Matrix Factorization — each parameterized by topology, learning
//! rate, merge coefficient, and epochs.
//!
//! Every generator exists in two forms: a builder-API function returning an
//! [`AlgoSpec`], and a `*_source` function returning the equivalent DSL
//! text (exercising the parser path end-to-end; these are the "≈30–60 lines
//! of Python" the paper's abstract counts).

use crate::ast::{AlgoSpec, MergeOp};
use crate::builder::AlgoBuilder;
use crate::error::DslResult;

/// The four algorithm families of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Algorithm {
    /// Least-squares linear regression via gradient descent.
    Linear,
    /// Logistic regression (sigmoid + cross-entropy gradient).
    Logistic,
    /// Linear SVM with hinge loss (sub-gradient descent).
    Svm,
    /// Low-rank matrix factorization (Netflix-style SGD).
    Lrmf,
}

impl Algorithm {
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Linear => "Linear Regression",
            Algorithm::Logistic => "Logistic Regression",
            Algorithm::Svm => "SVM",
            Algorithm::Lrmf => "Low Rank Matrix Factorization",
        }
    }
}

/// Hyper-parameters shared by the dense (non-LRMF) generators.
#[derive(Debug, Clone, Copy)]
pub struct DenseParams {
    pub n_features: usize,
    pub learning_rate: f64,
    pub merge_coef: u32,
    pub epochs: u32,
}

impl Default for DenseParams {
    fn default() -> DenseParams {
        DenseParams {
            n_features: 10,
            learning_rate: 0.1,
            merge_coef: 8,
            epochs: 1,
        }
    }
}

/// Linear regression (the paper's running example, §4.3): batched gradient
/// descent with a summing merge.
pub fn linear_regression(p: DenseParams) -> DslResult<AlgoSpec> {
    let mut a = AlgoBuilder::new("linearR");
    let mo = a.model("mo", &[p.n_features]);
    let x = a.input("in", &[p.n_features]);
    let y = a.output("out");
    let lr = a.meta("lr", p.learning_rate / p.merge_coef as f64);
    let prod = a.mul(mo, x)?;
    let s = a.sigma(prod, 1)?;
    let er = a.sub(s, y)?;
    let grad = a.mul(er, x)?;
    let grad = a.merge(grad, p.merge_coef, MergeOp::Sum)?;
    let up = a.mul(lr, grad)?;
    let mo_up = a.sub(mo, up)?;
    a.set_model(mo, mo_up)?;
    a.set_epochs(p.epochs);
    a.finish()
}

/// Logistic regression: sigmoid hypothesis, cross-entropy gradient
/// (`(σ(w·x) − y)·x`), batched with a summing merge.
pub fn logistic_regression(p: DenseParams) -> DslResult<AlgoSpec> {
    let mut a = AlgoBuilder::new("logisticR");
    let mo = a.model("mo", &[p.n_features]);
    let x = a.input("in", &[p.n_features]);
    let y = a.output("out");
    let lr = a.meta("lr", p.learning_rate / p.merge_coef as f64);
    let prod = a.mul(mo, x)?;
    let s = a.sigma(prod, 1)?;
    let h = a.sigmoid(s);
    let er = a.sub(h, y)?;
    let grad = a.mul(er, x)?;
    let grad = a.merge(grad, p.merge_coef, MergeOp::Sum)?;
    let up = a.mul(lr, grad)?;
    let mo_up = a.sub(mo, up)?;
    a.set_model(mo, mo_up)?;
    a.set_epochs(p.epochs);
    a.finish()
}

/// Linear SVM with hinge loss. Labels are ±1; a tuple in the margin
/// (`y·(w·x) < 1`) contributes sub-gradient `−y·x`, so the update *adds*
/// `lr·y·x` for violators and the comparison result gates the gradient —
/// exactly the `<` operator's role in Table 1.
pub fn svm(p: DenseParams) -> DslResult<AlgoSpec> {
    let mut a = AlgoBuilder::new("svm");
    let mo = a.model("mo", &[p.n_features]);
    let x = a.input("in", &[p.n_features]);
    let y = a.output("out");
    let lr = a.meta("lr", p.learning_rate / p.merge_coef as f64);
    let one = a.meta("one", 1.0);
    let prod = a.mul(mo, x)?;
    let s = a.sigma(prod, 1)?;
    let margin = a.mul(y, s)?;
    let viol = a.lt(margin, one)?; // 1.0 inside the margin, else 0.0
    let yx = a.mul(y, x)?;
    let g = a.mul(viol, yx)?;
    let g = a.merge(g, p.merge_coef, MergeOp::Sum)?;
    let up = a.mul(lr, g)?;
    let mo_up = a.add(mo, up)?;
    a.set_model(mo, mo_up)?;
    a.set_epochs(p.epochs);
    a.finish()
}

/// Hyper-parameters for LRMF.
#[derive(Debug, Clone, Copy)]
pub struct LrmfParams {
    /// Rows of the rating matrix (users).
    pub rows: usize,
    /// Columns (items).
    pub cols: usize,
    /// Factorization rank (the paper's Netflix topology is rank 10).
    pub rank: usize,
    pub learning_rate: f64,
    pub merge_coef: u32,
    pub epochs: u32,
}

impl Default for LrmfParams {
    fn default() -> LrmfParams {
        LrmfParams {
            rows: 100,
            cols: 80,
            rank: 10,
            learning_rate: 0.05,
            merge_coef: 4,
            epochs: 1,
        }
    }
}

/// Low-rank matrix factorization by SGD over rating tuples `(i, j, r)`:
/// rows `L[i]`, `R[j]` are gathered, the rating error updates both rows,
/// and the updates scatter back ([`crate::ast::ModelUpdate::Row`]).
///
/// The merge point sits after both row updates: threads process disjoint
/// rating tuples and the tree bus applies their (rarely colliding) row
/// deltas — the behaviour §7.2 observes when "merging across multiple
/// different threads incurs an overhead" for LRMF.
pub fn lrmf(p: LrmfParams) -> DslResult<AlgoSpec> {
    let mut a = AlgoBuilder::new("lrmf");
    let l = a.model("L", &[p.rows, p.rank]);
    let r = a.model("R", &[p.cols, p.rank]);
    let i = a.input("i", &[]);
    let j = a.input("j", &[]);
    let y = a.output("rating");
    let lr = a.meta("lr", p.learning_rate);
    let li = a.lookup(l, i)?;
    let rj = a.lookup(r, j)?;
    let prod = a.mul(li, rj)?;
    let pred = a.sigma(prod, 1)?;
    let e = a.sub(pred, y)?;
    let lg = a.mul(e, rj)?;
    let rg = a.mul(e, li)?;
    let lup = a.mul(lr, lg)?;
    let rup = a.mul(lr, rg)?;
    let l_new = a.sub(li, lup)?;
    let r_new = a.sub(rj, rup)?;
    let _ = a.merge(l_new, p.merge_coef, MergeOp::Sum)?;
    a.set_model_row(l, i, l_new)?;
    a.set_model_row(r, j, r_new)?;
    a.set_epochs(p.epochs);
    a.finish()
}

/// Builds the spec for `algo` with dense parameters (LRMF uses defaults
/// scaled from `n_features`: `rows = cols = n_features`, rank 10).
pub fn spec_for(algo: Algorithm, p: DenseParams) -> DslResult<AlgoSpec> {
    match algo {
        Algorithm::Linear => linear_regression(p),
        Algorithm::Logistic => logistic_regression(p),
        Algorithm::Svm => svm(p),
        Algorithm::Lrmf => lrmf(LrmfParams {
            rows: p.n_features,
            cols: p.n_features,
            rank: 10,
            learning_rate: p.learning_rate,
            merge_coef: p.merge_coef,
            epochs: p.epochs,
        }),
    }
}

/// The §4.3 linear-regression listing as DSL text (for the parser path).
pub fn linear_regression_source(n_features: usize, merge_coef: u32, epochs: u32) -> String {
    format!(
        r#"# Linear regression — update rule, merge, convergence (paper §4.3)
mo  = dana.model([{n_features}])
in  = dana.input([{n_features}])
out = dana.output()
lr  = dana.meta(0.0125)
merge_coef = dana.meta({merge_coef})
linearR = dana.algo(mo, in, out)

# Gradient of the loss function
s    = sigma(mo * in, 1)
er   = s - out
grad = er * in

# Batched gradient descent
grad  = linearR.merge(grad, merge_coef, "+")
up    = lr * grad
mo_up = mo - up
linearR.setModel(mo_up)
linearR.setEpochs({epochs})
"#
    )
}

/// Logistic regression as DSL text.
pub fn logistic_regression_source(n_features: usize, merge_coef: u32, epochs: u32) -> String {
    format!(
        r#"mo  = dana.model([{n_features}])
in  = dana.input([{n_features}])
out = dana.output()
lr  = dana.meta(0.0125)
mc  = dana.meta({merge_coef})
logisticR = dana.algo(mo, in, out)
s    = sigma(mo * in, 1)
h    = sigmoid(s)
er   = h - out
grad = er * in
grad = logisticR.merge(grad, mc, "+")
up    = lr * grad
mo_up = mo - up
logisticR.setModel(mo_up)
logisticR.setEpochs({epochs})
"#
    )
}

/// SVM as DSL text.
pub fn svm_source(n_features: usize, merge_coef: u32, epochs: u32) -> String {
    format!(
        r#"mo  = dana.model([{n_features}])
in  = dana.input([{n_features}])
out = dana.output()
lr  = dana.meta(0.0125)
one = dana.meta(1.0)
mc  = dana.meta({merge_coef})
svmA = dana.algo(mo, in, out)
s      = sigma(mo * in, 1)
margin = out * s
viol   = margin < one
yx     = out * in
g      = viol * yx
g      = svmA.merge(g, mc, "+")
up     = lr * g
mo_up  = mo + up
svmA.setModel(mo_up)
svmA.setEpochs({epochs})
"#
    )
}

/// LRMF as DSL text (uses `lookup`/`setModelRow`, the row-indexed forms).
pub fn lrmf_source(rows: usize, cols: usize, rank: usize, merge_coef: u32, epochs: u32) -> String {
    format!(
        r#"L = dana.model([{rows}, {rank}])
R = dana.model([{cols}, {rank}])
i = dana.input()
j = dana.input()
rating = dana.output()
lr = dana.meta(0.05)
mc = dana.meta({merge_coef})
lrmfA = dana.algo(L, R, i, j, rating)
li = lookup(L, i)
rj = lookup(R, j)
pred = sigma(li * rj, 1)
e = pred - rating
lg = e * rj
rg = e * li
lup = lr * lg
rup = lr * rg
l_new = li - lup
r_new = rj - rup
l_new = lrmfA.merge(l_new, mc, "+")
setModelRow(L, i, l_new)
setModelRow(R, j, r_new)
lrmfA.setEpochs({epochs})
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::DataKind;
    use crate::parser::parse_udf;

    #[test]
    fn all_dense_specs_build() {
        let p = DenseParams {
            n_features: 16,
            ..DenseParams::default()
        };
        for algo in [Algorithm::Linear, Algorithm::Logistic, Algorithm::Svm] {
            let spec = spec_for(algo, p).unwrap();
            assert_eq!(spec.input_width(), 16);
            assert_eq!(spec.model_elements(), 16);
            assert_eq!(spec.merge_coef(), 8);
        }
    }

    #[test]
    fn lrmf_spec_builds() {
        let spec = lrmf(LrmfParams::default()).unwrap();
        // Two models: L [100][10] and R [80][10].
        assert_eq!(spec.model_elements(), 100 * 10 + 80 * 10);
        // Inputs are the two scalar indices.
        assert_eq!(spec.input_width(), 2);
        assert_eq!(spec.model_updates.len(), 2);
    }

    #[test]
    fn source_and_builder_agree_for_linear() {
        let from_builder = linear_regression(DenseParams {
            n_features: 10,
            learning_rate: 0.1,
            merge_coef: 8,
            epochs: 100,
        })
        .unwrap();
        let from_text = parse_udf(&linear_regression_source(10, 8, 100), "linearR").unwrap();
        assert_eq!(from_text.name, "linearR");
        assert_eq!(from_text.input_width(), from_builder.input_width());
        assert_eq!(from_text.model_elements(), from_builder.model_elements());
        assert_eq!(from_text.merge_coef(), from_builder.merge_coef());
        assert_eq!(from_text.stmts.len(), from_builder.stmts.len());
    }

    #[test]
    fn all_sources_parse() {
        assert!(parse_udf(&logistic_regression_source(20, 4, 5), "x").is_ok());
        assert!(parse_udf(&svm_source(20, 4, 5), "x").is_ok());
        assert!(parse_udf(&lrmf_source(50, 40, 10, 4, 2), "x").is_ok());
    }

    #[test]
    fn svm_uses_comparison_gate() {
        let spec = svm(DenseParams::default()).unwrap();
        let has_lt = spec.stmts.iter().any(|s| {
            matches!(
                s.op,
                crate::ast::OpKind::Binary(crate::ast::BinOp::Lt, _, _)
            )
        });
        assert!(
            has_lt,
            "SVM must gate its gradient on the margin comparison"
        );
    }

    #[test]
    fn merge_divides_learning_rate() {
        // Summed batch gradients keep the effective step size by scaling lr.
        let spec = linear_regression(DenseParams {
            n_features: 4,
            learning_rate: 0.8,
            merge_coef: 8,
            epochs: 1,
        })
        .unwrap();
        let lr = spec.vars_of_kind(DataKind::Meta).next().unwrap();
        assert!((lr.meta_value.as_ref().unwrap()[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn paper_line_count_claim_holds() {
        // "express the algorithm in ≈30-60 lines of Python" (abstract).
        for src in [
            linear_regression_source(100, 8, 10),
            logistic_regression_source(100, 8, 10),
            svm_source(100, 8, 10),
            lrmf_source(100, 100, 10, 8, 10),
        ] {
            let lines = src.lines().filter(|l| !l.trim().is_empty()).count();
            assert!(lines <= 60, "{lines} lines");
        }
    }
}
