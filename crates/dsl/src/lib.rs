//! DAnA's Python-embedded DSL, in Rust.
//!
//! The paper's front end (§4) lets a data scientist express a learning
//! algorithm as three functions — an **update rule**, a **merge function**,
//! and a **convergence check** — over declared data types (Table 1):
//!
//! | Table 1 construct | here |
//! |---|---|
//! | `algo` | [`builder::AlgoBuilder`] / [`ast::AlgoSpec`] |
//! | `input`, `output`, `model`, `inter`, `meta` | [`ast::DataKind`] |
//! | `+ - * / > <` | [`ast::BinOp`] |
//! | `sigmoid, gaussian, sqrt` | [`ast::UnaryFn`] |
//! | `sigma, norm, pi` | [`ast::GroupOp`] |
//! | `merge(x, int, "op")` | [`ast::MergeSpec`] |
//! | `setEpochs`, `setConvergence` | [`ast::Convergence`] |
//! | `setModel(x)` | [`ast::ModelUpdate`] |
//!
//! Two front doors produce the same [`ast::AlgoSpec`]:
//!
//! * the **builder API** ([`builder`]) — the embedded form, mirroring the
//!   paper's Python;
//! * the **textual parser** ([`parser`]) — accepts the paper's surface
//!   syntax (`s = sigma(mo * in, 1)` …) so UDFs can be registered from
//!   strings, exactly the ≈30–60-line artifacts the paper advertises.
//!
//! Validation ([`validate`]) performs the dimensionality inference that the
//! paper assigns to the translator front half (§4.4): operand broadcasting,
//! group-op axis reduction, model-update shape agreement.
//!
//! [`zoo`] contains ready-made specs for the paper's four evaluated
//! algorithms (Linear/Logistic regression, SVM, LRMF).

pub mod ast;
pub mod builder;
pub mod error;
pub mod parser;
pub mod validate;
pub mod zoo;

pub use ast::{
    AlgoSpec, BinOp, Convergence, DataKind, Dims, GroupOp, MergeOp, MergeSpec, ModelUpdate, OpKind,
    Stmt, UnaryFn, VarDecl, VarId,
};
pub use builder::{AlgoBuilder, VarRef};
pub use error::{DslError, DslResult};
pub use parser::parse_udf;
