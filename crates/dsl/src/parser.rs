//! Textual front end: parses the paper's DSL surface syntax into an
//! [`AlgoSpec`].
//!
//! The accepted grammar covers the paper's §4.3 listings verbatim (modulo
//! Python's significant whitespace, which the DSL never relies on):
//!
//! ```text
//! # declarations
//! mo  = dana.model([10])            # or model([5][2]) / model([5, 2])
//! in  = dana.input([10])
//! out = dana.output()
//! lr  = dana.meta(0.3)
//! linearR = dana.algo(mo, in, out)  # names the UDF; operand list is informational
//!
//! # update rule
//! s    = sigma(mo * in, 1)
//! er   = s - out
//! grad = er * in
//!
//! # merge + optimizer
//! grad  = linearR.merge(grad, 8, "+")
//! up    = lr * grad
//! mo_up = mo - up
//! linearR.setModel(mo_up)
//! linearR.setEpochs(10000)
//! ```
//!
//! Built-ins: `sigmoid gaussian sqrt sigma pi norm lookup merge setModel
//! setModelRow setEpochs setConvergence`. Lines starting with `#` or `//`
//! are comments. A `prefix.` before any call (e.g. `dana.`, `linearR.`) is
//! accepted and ignored — it is Python object syntax, not semantics.

use std::collections::HashMap;

use crate::ast::{AlgoSpec, MergeOp};
use crate::builder::{AlgoBuilder, VarRef};
use crate::error::{DslError, DslResult};

/// Parses DSL source text into a validated [`AlgoSpec`].
///
/// `default_name` names the UDF when the source contains no
/// `name = dana.algo(...)` line.
pub fn parse_udf(source: &str, default_name: &str) -> DslResult<AlgoSpec> {
    let mut p = Parser {
        builder: AlgoBuilder::new(default_name),
        names: HashMap::new(),
        model_names: Vec::new(),
        meta_values: HashMap::new(),
        algo_named: false,
        pending_name: None,
    };
    for (lineno, raw) in source.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        p.statement(line, lineno + 1)?;
    }
    // The UDF name may have been discovered after construction began.
    let mut builder = p.builder;
    if let Some(name) = p.pending_name {
        builder.set_name(&name);
    }
    builder.finish()
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find('#').unwrap_or(line.len());
    let cut2 = line.find("//").unwrap_or(line.len());
    &line[..cut.min(cut2)]
}

struct Parser {
    builder: AlgoBuilder,
    /// Source name → current binding (reassignment rebinds, SSA-style).
    names: HashMap<String, VarRef>,
    /// Names declared as models (for `setModel(x)`'s one-argument form).
    model_names: Vec<String>,
    /// Meta constants usable where integers are expected (merge coef, axis).
    meta_values: HashMap<String, f64>,
    algo_named: bool,
    pending_name: Option<String>,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Str(String),
    Sym(char),
}

fn tokenize(line: &str, lineno: usize) -> DslResult<Vec<Tok>> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' => i += 1,
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                toks.push(Tok::Ident(bytes[start..i].iter().collect()));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == '.'
                        || bytes[i] == 'e'
                        || bytes[i] == 'E'
                        || ((bytes[i] == '+' || bytes[i] == '-')
                            && matches!(bytes[i - 1], 'e' | 'E')))
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let v = text.parse::<f64>().map_err(|_| DslError::Parse {
                    line: lineno,
                    msg: format!("bad number '{text}'"),
                })?;
                toks.push(Tok::Num(v));
            }
            '"' | '\u{201c}' | '\u{201d}' => {
                // Accept straight and typographic quotes (the paper's PDF
                // listings use curly quotes around merge ops).
                let close = |ch: char| ch == '"' || ch == '\u{201c}' || ch == '\u{201d}';
                i += 1;
                let start = i;
                while i < bytes.len() && !close(bytes[i]) {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(DslError::Parse {
                        line: lineno,
                        msg: "unterminated string".into(),
                    });
                }
                toks.push(Tok::Str(bytes[start..i].iter().collect()));
                i += 1;
            }
            '=' | '+' | '-' | '*' | '/' | '(' | ')' | '[' | ']' | ',' | '.' | '<' | '>' => {
                toks.push(Tok::Sym(c));
                i += 1;
            }
            other => {
                return Err(DslError::Parse {
                    line: lineno,
                    msg: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(toks)
}

/// Cursor over a token list.
struct Cur<'a> {
    toks: &'a [Tok],
    pos: usize,
    line: usize,
}

impl<'a> Cur<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Sym(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, c: char) -> DslResult<()> {
        if self.eat_sym(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    fn err(&self, msg: String) -> DslError {
        DslError::Parse {
            line: self.line,
            msg,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }
}

impl Parser {
    fn statement(&mut self, line: &str, lineno: usize) -> DslResult<()> {
        let toks = tokenize(line, lineno)?;
        let mut cur = Cur {
            toks: &toks,
            pos: 0,
            line: lineno,
        };
        // `target = rhs` — a single top-level '=' separates the two forms.
        let is_assign = matches!(
            (&toks.first(), &toks.get(1)),
            (Some(Tok::Ident(_)), Some(Tok::Sym('=')))
        );
        if is_assign {
            let Some(Tok::Ident(target)) = cur.next() else {
                unreachable!()
            };
            cur.expect_sym('=')?;
            self.assignment(&target, &mut cur)?;
        } else {
            self.call_statement(&mut cur)?;
        }
        if !cur.at_end() {
            return Err(cur.err("trailing tokens".into()));
        }
        Ok(())
    }

    /// `target = <declaration | merge | expression>`
    fn assignment(&mut self, target: &str, cur: &mut Cur) -> DslResult<()> {
        // Look ahead for a call head: `[prefix .] callee (`.
        if let Some((callee, args_at)) = call_head(cur) {
            match callee.as_str() {
                "model" | "input" | "output" | "meta" | "algo" => {
                    cur.pos = args_at;
                    return self.declaration(target, &callee, cur);
                }
                "merge" => {
                    cur.pos = args_at;
                    return self.merge_call(target, cur);
                }
                _ => {}
            }
        }
        let value = self.expr(cur)?;
        self.names.insert(target.to_string(), value);
        Ok(())
    }

    /// Parses `model([5][2])`-style dims: `[a][b]`, `[a, b]`, or `()`.
    fn dims(&mut self, cur: &mut Cur) -> DslResult<Vec<usize>> {
        let mut dims = Vec::new();
        while cur.eat_sym('[') {
            loop {
                match cur.next() {
                    Some(Tok::Num(v)) if v.fract() == 0.0 && v >= 1.0 => dims.push(v as usize),
                    other => return Err(cur.err(format!("expected dimension, got {other:?}"))),
                }
                if cur.eat_sym(',') {
                    continue;
                }
                cur.expect_sym(']')?;
                break;
            }
        }
        Ok(dims)
    }

    fn declaration(&mut self, target: &str, kind: &str, cur: &mut Cur) -> DslResult<()> {
        cur.expect_sym('(')?;
        match kind {
            "model" | "input" => {
                let dims = self.dims(cur)?;
                cur.expect_sym(')')?;
                let v = if kind == "model" {
                    self.model_names.push(target.to_string());
                    self.builder.model(target, &dims)
                } else {
                    self.builder.input(target, &dims)
                };
                self.names.insert(target.to_string(), v);
            }
            "output" => {
                let dims = self.dims(cur)?;
                cur.expect_sym(')')?;
                let v = if dims.is_empty() {
                    self.builder.output(target)
                } else {
                    self.builder.output_dims(target, &dims)
                };
                self.names.insert(target.to_string(), v);
            }
            "meta" => {
                let value = match cur.next() {
                    Some(Tok::Num(v)) => v,
                    Some(Tok::Sym('-')) => match cur.next() {
                        Some(Tok::Num(v)) => -v,
                        other => return Err(cur.err(format!("expected number, got {other:?}"))),
                    },
                    other => return Err(cur.err(format!("expected number, got {other:?}"))),
                };
                cur.expect_sym(')')?;
                let v = self.builder.meta(target, value);
                self.names.insert(target.to_string(), v);
                self.note_meta(target, value);
            }
            "algo" => {
                // `linearR = dana.algo(mo, in, out)` — record the UDF name;
                // the operand list is documentation (links are implied by use).
                while cur.next().is_some_and(|t| t != Tok::Sym(')')) {}
                if self.algo_named {
                    return Err(cur.err("dana.algo(...) appears twice".into()));
                }
                self.algo_named = true;
                self.pending_name = Some(target.to_string());
            }
            _ => unreachable!("declaration() called for {kind}"),
        }
        Ok(())
    }

    fn merge_call(&mut self, target: &str, cur: &mut Cur) -> DslResult<()> {
        cur.expect_sym('(')?;
        let var = self.expr(cur)?;
        cur.expect_sym(',')?;
        let coef = self.const_u32(cur)?;
        cur.expect_sym(',')?;
        let op = match cur.next() {
            Some(Tok::Str(s)) => MergeOp::parse(&s)?,
            other => return Err(cur.err(format!("expected merge op string, got {other:?}"))),
        };
        cur.expect_sym(')')?;
        let merged = self.builder.merge(var, coef, op)?;
        self.names.insert(target.to_string(), merged);
        Ok(())
    }

    /// A statement-position call: `setModel(x)`, `setEpochs(10)`, …
    fn call_statement(&mut self, cur: &mut Cur) -> DslResult<()> {
        let Some((callee, args_at)) = call_head(cur) else {
            return Err(cur.err("expected assignment or built-in call".into()));
        };
        cur.pos = args_at;
        cur.expect_sym('(')?;
        match callee.as_str() {
            "setModel" => {
                let first = self.expr(cur)?;
                if cur.eat_sym(',') {
                    // Two-argument form: setModel(model, source).
                    let src = self.expr(cur)?;
                    cur.expect_sym(')')?;
                    self.builder.set_model(first, src)?;
                } else {
                    cur.expect_sym(')')?;
                    let model = self.unique_model(cur.line)?;
                    self.builder.set_model(model, first)?;
                }
            }
            "setModelRow" => {
                let model = self.expr(cur)?;
                cur.expect_sym(',')?;
                let idx = self.expr(cur)?;
                cur.expect_sym(',')?;
                let src = self.expr(cur)?;
                cur.expect_sym(')')?;
                self.builder.set_model_row(model, idx, src)?;
            }
            "setEpochs" => {
                let n = self.const_u32(cur)?;
                cur.expect_sym(')')?;
                self.builder.set_epochs(n);
            }
            "setConvergence" => {
                let cond = self.expr(cur)?;
                let cap = if cur.eat_sym(',') {
                    self.const_u32(cur)?
                } else {
                    100_000
                };
                cur.expect_sym(')')?;
                self.builder.set_convergence(cond, cap);
            }
            other => return Err(cur.err(format!("unknown statement '{other}(...)'"))),
        }
        Ok(())
    }

    /// `setModel(x)`'s single-argument form targets the UDF's only model.
    fn unique_model(&self, line: usize) -> DslResult<VarRef> {
        match &self.model_names[..] {
            [one] => Ok(self.names[one]),
            [] => Err(DslError::Parse {
                line,
                msg: "setModel(x): no model declared".into(),
            }),
            _ => Err(DslError::Parse {
                line,
                msg: "setModel(x) is ambiguous with several models; use setModel(model, x)".into(),
            }),
        }
    }

    fn const_u32(&mut self, cur: &mut Cur) -> DslResult<u32> {
        match cur.next() {
            Some(Tok::Num(v)) if v.fract() == 0.0 && v >= 0.0 => Ok(v as u32),
            // A named meta constant is also accepted (merge_coef in §4.3).
            Some(Tok::Ident(name)) => {
                let v = *self
                    .meta_values
                    .get(&name)
                    .ok_or_else(|| cur.err(format!("'{name}' is not a meta constant")))?;
                if v.fract() != 0.0 || v < 0.0 {
                    return Err(cur.err(format!("'{name}' = {v} is not a whole number")));
                }
                Ok(v as u32)
            }
            other => Err(cur.err(format!("expected integer, got {other:?}"))),
        }
    }

    // ----- expressions ---------------------------------------------------

    fn expr(&mut self, cur: &mut Cur) -> DslResult<VarRef> {
        self.cmp(cur)
    }

    fn cmp(&mut self, cur: &mut Cur) -> DslResult<VarRef> {
        let lhs = self.addsub(cur)?;
        if cur.eat_sym('<') {
            let rhs = self.addsub(cur)?;
            return self.builder.lt(lhs, rhs);
        }
        if cur.eat_sym('>') {
            let rhs = self.addsub(cur)?;
            return self.builder.gt(lhs, rhs);
        }
        Ok(lhs)
    }

    fn addsub(&mut self, cur: &mut Cur) -> DslResult<VarRef> {
        let mut acc = self.muldiv(cur)?;
        loop {
            if cur.eat_sym('+') {
                let rhs = self.muldiv(cur)?;
                acc = self.builder.add(acc, rhs)?;
            } else if cur.eat_sym('-') {
                let rhs = self.muldiv(cur)?;
                acc = self.builder.sub(acc, rhs)?;
            } else {
                return Ok(acc);
            }
        }
    }

    fn muldiv(&mut self, cur: &mut Cur) -> DslResult<VarRef> {
        let mut acc = self.unary(cur)?;
        loop {
            if cur.eat_sym('*') {
                let rhs = self.unary(cur)?;
                acc = self.builder.mul(acc, rhs)?;
            } else if cur.eat_sym('/') {
                let rhs = self.unary(cur)?;
                acc = self.builder.div(acc, rhs)?;
            } else {
                return Ok(acc);
            }
        }
    }

    fn unary(&mut self, cur: &mut Cur) -> DslResult<VarRef> {
        if cur.eat_sym('-') {
            let zero = self.builder.constant(0.0);
            let v = self.unary(cur)?;
            return self.builder.sub(zero, v);
        }
        self.primary(cur)
    }

    fn primary(&mut self, cur: &mut Cur) -> DslResult<VarRef> {
        if cur.eat_sym('(') {
            let v = self.expr(cur)?;
            cur.expect_sym(')')?;
            return Ok(v);
        }
        match cur.next() {
            Some(Tok::Num(v)) => Ok(self.builder.constant(v)),
            Some(Tok::Ident(name)) => {
                // Method-call prefix: `x.f(args)` — skip the receiver.
                if cur.peek() == Some(&Tok::Sym('.')) {
                    cur.pos += 1;
                    match cur.next() {
                        Some(Tok::Ident(f)) => return self.func_call(&f, cur),
                        other => return Err(cur.err(format!("expected method, got {other:?}"))),
                    }
                }
                if cur.peek() == Some(&Tok::Sym('(')) {
                    return self.func_call(&name, cur);
                }
                self.names
                    .get(&name)
                    .copied()
                    .ok_or_else(|| cur.err(format!("unknown variable '{name}'")))
            }
            other => Err(cur.err(format!("expected expression, got {other:?}"))),
        }
    }

    fn func_call(&mut self, f: &str, cur: &mut Cur) -> DslResult<VarRef> {
        cur.expect_sym('(')?;
        match f {
            "sigmoid" | "gaussian" | "sqrt" => {
                let a = self.expr(cur)?;
                cur.expect_sym(')')?;
                Ok(match f {
                    "sigmoid" => self.builder.sigmoid(a),
                    "gaussian" => self.builder.gaussian(a),
                    _ => self.builder.sqrt(a),
                })
            }
            "sigma" | "pi" | "norm" => {
                let a = self.expr(cur)?;
                cur.expect_sym(',')?;
                let axis = self.const_u32(cur)? as usize;
                cur.expect_sym(')')?;
                match f {
                    "sigma" => self.builder.sigma(a, axis),
                    "pi" => self.builder.pi(a, axis),
                    _ => self.builder.norm(a, axis),
                }
            }
            "lookup" => {
                let m = self.expr(cur)?;
                cur.expect_sym(',')?;
                let i = self.expr(cur)?;
                cur.expect_sym(')')?;
                self.builder.lookup(m, i)
            }
            other => Err(cur.err(format!("unknown function '{other}'"))),
        }
    }
}

/// If the cursor sits at `[prefix .] ident (`, returns the callee name and
/// the position of its '(' without consuming anything.
fn call_head(cur: &Cur) -> Option<(String, usize)> {
    let t = cur.toks;
    let p = cur.pos;
    match (t.get(p), t.get(p + 1), t.get(p + 2), t.get(p + 3)) {
        (Some(Tok::Ident(_)), Some(Tok::Sym('.')), Some(Tok::Ident(f)), Some(Tok::Sym('('))) => {
            Some((f.clone(), p + 3))
        }
        (Some(Tok::Ident(f)), Some(Tok::Sym('(')), _, _) => Some((f.clone(), p + 1)),
        _ => None,
    }
}

impl Parser {
    fn note_meta(&mut self, name: &str, value: f64) {
        self.meta_values.insert(name.to_string(), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Convergence, DataKind};

    const LINEAR: &str = r#"
        # Linear regression (paper §4.3)
        mo  = dana.model([10])
        in  = dana.input([10])
        out = dana.output()
        lr  = dana.meta(0.3)
        merge_coef = dana.meta(8)
        linearR = dana.algo(mo, in, out)

        s = sigma(mo * in, 1)
        er = s - out
        grad = er * in
        grad = linearR.merge(grad, merge_coef, "+")
        up = lr * grad
        mo_up = mo - up
        linearR.setModel(mo_up)
        linearR.setEpochs(10000)
    "#;

    #[test]
    fn parses_paper_linear_regression() {
        let spec = parse_udf(LINEAR, "fallback").unwrap();
        assert_eq!(spec.name, "linearR");
        assert_eq!(spec.input_width(), 10);
        assert_eq!(spec.model_elements(), 10);
        assert_eq!(spec.merge_coef(), 8);
        assert_eq!(spec.convergence, Convergence::Epochs(10000));
        assert_eq!(spec.vars_of_kind(DataKind::Meta).count(), 2);
    }

    #[test]
    fn convergence_form_parses() {
        let src = r#"
            mo = model([4])
            in = input([4])
            out = output()
            cf = meta(0.01)
            s = sigma(mo * in, 1)
            er = s - out
            grad = er * in
            mo_up = mo - grad
            setModel(mo_up)
            n = norm(grad, 1)
            conv = n < cf
            setConvergence(conv, 1000)
        "#;
        let spec = parse_udf(src, "lin").unwrap();
        assert!(matches!(
            spec.convergence,
            Convergence::Condition {
                max_epochs: 1000,
                ..
            }
        ));
    }

    #[test]
    fn parenthesized_and_negated_expressions() {
        let src = r#"
            mo = model([4])
            in = input([4])
            out = output()
            s = sigma(mo * in, 1)
            d = -(s - out)
            grad = d * in
            mo_up = mo + grad
            setModel(mo_up)
            setEpochs(5)
        "#;
        let spec = parse_udf(src, "neg").unwrap();
        assert!(spec.stmts.len() >= 5);
    }

    #[test]
    fn averaged_merge_variant_parses() {
        // The paper's second merge example: average partial models.
        let src = r#"
            mo = model([4])
            in = input([4])
            out = output()
            lr = meta(0.1)
            mc = meta(8)
            s = sigma(mo * in, 1)
            er = s - out
            grad = er * in
            up = lr * grad
            mo_up = mo - up
            m1 = merge(mo_up, mc, "+")
            m2 = m1 / mc
            setModel(m2)
            setEpochs(3)
        "#;
        let spec = parse_udf(src, "psgd").unwrap();
        assert_eq!(spec.merge_coef(), 8);
        // post-merge region contains the division
        let m = spec.merge.as_ref().unwrap();
        assert!(m.boundary < spec.stmts.len());
    }

    #[test]
    fn unknown_variable_errors_with_line() {
        let src = "mo = model([4])\nz = mo * ghost\n";
        let err = parse_udf(src, "x").unwrap_err();
        match err {
            DslError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("ghost"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = r#"
            # leading comment
            mo = model([2])   # trailing comment
            in = input([2])
            out = output()    // c++-style too

            s = sigma(mo * in, 1)
            er = s - out
            g = er * in
            mo_up = mo - g
            setModel(mo_up)
            setEpochs(1)
        "#;
        assert!(parse_udf(src, "c").is_ok());
    }

    #[test]
    fn curly_quotes_accepted() {
        let src = "mo = model([2])\nin = input([2])\nout = output()\ns = sigma(mo * in, 1)\ner = s - out\ng = er * in\ng = merge(g, 4, \u{201c}+\u{201d})\nmo_up = mo - g\nsetModel(mo_up)\nsetEpochs(1)\n";
        let spec = parse_udf(src, "q").unwrap();
        assert_eq!(spec.merge_coef(), 4);
    }

    #[test]
    fn matrix_dims_both_syntaxes() {
        for decl in ["model([5][2])", "model([5, 2])"] {
            let src = format!(
                "mo = {decl}\nin = input([2])\nout = output()\np = mo * in\ns = sigma(p, 1)\nq = s - out\ng = q * in\nmo2 = mo - g\nsetModel(mo2)\nsetEpochs(1)\n"
            );
            // [5][2]*[2] broadcasts; sigma axis1 → [5]; [5]-scalar… shapes
            // here are contrived — the point is the dims parse.
            let result = parse_udf(&src, "m");
            // shape errors are fine; parse errors are not.
            if let Err(DslError::Parse { .. }) = result {
                panic!("dims syntax '{decl}' failed to parse");
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let src = "mo = model([2]) extra\n";
        assert!(matches!(parse_udf(src, "x"), Err(DslError::Parse { .. })));
    }
}
