//! The embedded builder API — the Rust equivalent of the paper's
//! Python-embedded DSL (§4.2–4.3).
//!
//! The linear-regression example from §4.3 translates line-for-line:
//!
//! ```
//! use dana_dsl::{AlgoBuilder, MergeOp};
//!
//! let mut a = AlgoBuilder::new("linearR");
//! let mo = a.model("mo", &[10]);
//! let x = a.input("in", &[10]);
//! let y = a.output("out");
//! let lr = a.meta("lr", 0.3);
//!
//! let prod = a.mul(mo, x).unwrap();
//! let s = a.sigma(prod, 1).unwrap();            // s = sigma(mo * in, 1)
//! let er = a.sub(s, y).unwrap();                        // er = s - out
//! let grad = a.mul(er, x).unwrap();                     // grad = er * in
//! let grad = a.merge(grad, 8, MergeOp::Sum).unwrap();   // merge(grad, 8, "+")
//! let up = a.mul(lr, grad).unwrap();                    // up = lr * grad
//! let mo_up = a.sub(mo, up).unwrap();                   // mo_up = mo - up
//! a.set_model(mo, mo_up).unwrap();                      // setModel(mo_up)
//! a.set_epochs(10_000);
//! let spec = a.finish().unwrap();
//! assert_eq!(spec.input_width(), 10);
//! ```

use crate::ast::{
    AlgoSpec, BinOp, Convergence, DataKind, Dims, GroupOp, MergeOp, MergeSpec, ModelUpdate, OpKind,
    Stmt, UnaryFn, VarDecl, VarId,
};
use crate::error::{DslError, DslResult};
use crate::validate;

/// A lightweight handle to a declared variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarRef(pub(crate) VarId);

impl VarRef {
    pub fn id(&self) -> VarId {
        self.0
    }
}

/// Incrementally constructs an [`AlgoSpec`]. Dimension inference runs
/// *eagerly*: every operation checks its operands as it is recorded, so
/// shape bugs surface at the line that writes them — the same experience as
/// the paper's translator erroring on the Python source.
pub struct AlgoBuilder {
    name: String,
    vars: Vec<VarDecl>,
    stmts: Vec<Stmt>,
    merge: Option<MergeSpec>,
    convergence: Option<Convergence>,
    model_updates: Vec<ModelUpdate>,
    next_temp: u32,
}

impl AlgoBuilder {
    /// Renames the UDF (used by the parser when it encounters
    /// `name = dana.algo(...)` after construction).
    pub fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    pub fn new(name: &str) -> AlgoBuilder {
        AlgoBuilder {
            name: name.to_string(),
            vars: Vec::new(),
            stmts: Vec::new(),
            merge: None,
            convergence: None,
            model_updates: Vec::new(),
            next_temp: 0,
        }
    }

    // ----- data declarations (Table 1) ---------------------------------

    fn declare(
        &mut self,
        name: &str,
        kind: DataKind,
        dims: Dims,
        meta: Option<Vec<f64>>,
    ) -> VarRef {
        assert!(
            !self.vars.iter().any(|v| v.name == name),
            "variable '{name}' declared twice"
        );
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDecl {
            id,
            name: name.to_string(),
            kind,
            dims,
            meta_value: meta,
        });
        VarRef(id)
    }

    /// `dana.model([dims…])`
    pub fn model(&mut self, name: &str, dims: &[usize]) -> VarRef {
        self.declare(name, DataKind::Model, Dims(dims.to_vec()), None)
    }

    /// `dana.input([dims…])`
    pub fn input(&mut self, name: &str, dims: &[usize]) -> VarRef {
        self.declare(name, DataKind::Input, Dims(dims.to_vec()), None)
    }

    /// `dana.output()` — scalar output.
    pub fn output(&mut self, name: &str) -> VarRef {
        self.declare(name, DataKind::Output, Dims::scalar(), None)
    }

    /// `dana.output([dims…])` — multi-dimensional output.
    pub fn output_dims(&mut self, name: &str, dims: &[usize]) -> VarRef {
        self.declare(name, DataKind::Output, Dims(dims.to_vec()), None)
    }

    /// `dana.meta(v)` — scalar compile-time constant.
    pub fn meta(&mut self, name: &str, value: f64) -> VarRef {
        self.declare(name, DataKind::Meta, Dims::scalar(), Some(vec![value]))
    }

    /// Multi-element meta constant (row-major contents).
    pub fn meta_vec(&mut self, name: &str, dims: &[usize], values: Vec<f64>) -> VarRef {
        let d = Dims(dims.to_vec());
        assert_eq!(
            d.elements(),
            values.len(),
            "meta '{name}' contents/shape mismatch"
        );
        self.declare(name, DataKind::Meta, d, Some(values))
    }

    // ----- internals ----------------------------------------------------

    fn dims_of(&self, v: VarRef) -> &Dims {
        &self.vars[v.0 .0 as usize].dims
    }

    fn fresh_inter(&mut self, dims: Dims) -> VarRef {
        let name = format!("%t{}", self.next_temp);
        self.next_temp += 1;
        self.declare(&name, DataKind::Inter, dims, None)
    }

    fn push(&mut self, dims: Dims, op: OpKind) -> VarRef {
        let target = self.fresh_inter(dims);
        self.stmts.push(Stmt {
            target: target.0,
            op,
        });
        target
    }

    // ----- mathematical operations (Table 1) ----------------------------

    fn binary(&mut self, op: BinOp, a: VarRef, b: VarRef) -> DslResult<VarRef> {
        let dims = self.dims_of(a).broadcast(self.dims_of(b), op.symbol())?;
        Ok(self.push(dims, OpKind::Binary(op, a.0, b.0)))
    }

    pub fn add(&mut self, a: VarRef, b: VarRef) -> DslResult<VarRef> {
        self.binary(BinOp::Add, a, b)
    }

    pub fn sub(&mut self, a: VarRef, b: VarRef) -> DslResult<VarRef> {
        self.binary(BinOp::Sub, a, b)
    }

    pub fn mul(&mut self, a: VarRef, b: VarRef) -> DslResult<VarRef> {
        self.binary(BinOp::Mul, a, b)
    }

    pub fn div(&mut self, a: VarRef, b: VarRef) -> DslResult<VarRef> {
        self.binary(BinOp::Div, a, b)
    }

    pub fn gt(&mut self, a: VarRef, b: VarRef) -> DslResult<VarRef> {
        self.binary(BinOp::Gt, a, b)
    }

    pub fn lt(&mut self, a: VarRef, b: VarRef) -> DslResult<VarRef> {
        self.binary(BinOp::Lt, a, b)
    }

    fn unary(&mut self, f: UnaryFn, a: VarRef) -> VarRef {
        let dims = self.dims_of(a).clone();
        self.push(dims, OpKind::Unary(f, a.0))
    }

    pub fn sigmoid(&mut self, a: VarRef) -> VarRef {
        self.unary(UnaryFn::Sigmoid, a)
    }

    pub fn gaussian(&mut self, a: VarRef) -> VarRef {
        self.unary(UnaryFn::Gaussian, a)
    }

    pub fn sqrt(&mut self, a: VarRef) -> VarRef {
        self.unary(UnaryFn::Sqrt, a)
    }

    fn group(&mut self, g: GroupOp, a: VarRef, axis: usize) -> DslResult<VarRef> {
        let dims = self.dims_of(a).reduce(axis)?;
        Ok(self.push(dims, OpKind::Group(g, a.0, axis)))
    }

    /// `sigma(x, axis)` — summation.
    pub fn sigma(&mut self, a: VarRef, axis: usize) -> DslResult<VarRef> {
        self.group(GroupOp::Sigma, a, axis)
    }

    /// `pi(x, axis)` — product.
    pub fn pi(&mut self, a: VarRef, axis: usize) -> DslResult<VarRef> {
        self.group(GroupOp::Pi, a, axis)
    }

    /// `norm(x, axis)` — Euclidean magnitude.
    pub fn norm(&mut self, a: VarRef, axis: usize) -> DslResult<VarRef> {
        self.group(GroupOp::Norm, a, axis)
    }

    /// `lookup(matrix, index)` — gathers one row of a rank-2 model (LRMF).
    pub fn lookup(&mut self, matrix: VarRef, index: VarRef) -> DslResult<VarRef> {
        let mdims = self.dims_of(matrix);
        if mdims.rank() != 2 {
            return Err(DslError::Invalid(format!(
                "lookup target must be rank-2, got {mdims}"
            )));
        }
        if !self.dims_of(index).is_scalar() {
            return Err(DslError::Invalid("lookup index must be scalar".into()));
        }
        let row = Dims::vector(mdims.0[1]);
        Ok(self.push(
            row,
            OpKind::Gather {
                matrix: matrix.0,
                index: index.0,
            },
        ))
    }

    /// A scalar literal appearing inline in an expression.
    pub fn constant(&mut self, v: f64) -> VarRef {
        self.push(Dims::scalar(), OpKind::Const(v))
    }

    // ----- built-in special functions (Table 1) --------------------------

    /// `merge(x, coef, op)`. Subsequent statements observe the merged value
    /// of `x`. Only one merge point per UDF (as in the paper's examples).
    pub fn merge(&mut self, x: VarRef, coef: u32, op: MergeOp) -> DslResult<VarRef> {
        if self.merge.is_some() {
            return Err(DslError::BadMerge("merge() called twice".into()));
        }
        if coef == 0 {
            return Err(DslError::BadMergeCoef(coef));
        }
        self.merge = Some(MergeSpec {
            var: x.0,
            coef,
            op,
            boundary: self.stmts.len(),
        });
        Ok(x)
    }

    /// `setEpochs(n)`.
    pub fn set_epochs(&mut self, epochs: u32) {
        self.convergence = Some(Convergence::Epochs(epochs));
    }

    /// `setConvergence(cond)` with a safety cap on epochs.
    pub fn set_convergence(&mut self, cond: VarRef, max_epochs: u32) {
        self.convergence = Some(Convergence::Condition {
            var: cond.0,
            max_epochs,
        });
    }

    /// `setModel(source)` updating `model`.
    pub fn set_model(&mut self, model: VarRef, source: VarRef) -> DslResult<()> {
        self.model_updates.push(ModelUpdate::Whole {
            model: model.0,
            source: source.0,
        });
        Ok(())
    }

    /// Row-scatter model update: `model[index] := source` (LRMF).
    pub fn set_model_row(&mut self, model: VarRef, index: VarRef, source: VarRef) -> DslResult<()> {
        self.model_updates.push(ModelUpdate::Row {
            model: model.0,
            index: index.0,
            source: source.0,
        });
        Ok(())
    }

    /// Finalizes and validates the spec.
    pub fn finish(self) -> DslResult<AlgoSpec> {
        let spec = AlgoSpec {
            name: self.name,
            vars: self.vars,
            stmts: self.stmts,
            merge: self.merge,
            convergence: self.convergence.unwrap_or(Convergence::Epochs(1)),
            model_updates: self.model_updates,
        };
        validate::validate(&spec)?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_regression() -> AlgoSpec {
        let mut a = AlgoBuilder::new("linearR");
        let mo = a.model("mo", &[10]);
        let x = a.input("in", &[10]);
        let y = a.output("out");
        let lr = a.meta("lr", 0.3);
        let prod = a.mul(mo, x).unwrap();
        let s = a.sigma(prod, 1).unwrap();
        let er = a.sub(s, y).unwrap();
        let grad = a.mul(er, x).unwrap();
        let grad = a.merge(grad, 8, MergeOp::Sum).unwrap();
        let up = a.mul(lr, grad).unwrap();
        let mo_up = a.sub(mo, up).unwrap();
        a.set_model(mo, mo_up).unwrap();
        a.set_epochs(100);
        a.finish().unwrap()
    }

    #[test]
    fn linear_regression_builds() {
        let spec = linear_regression();
        assert_eq!(spec.name, "linearR");
        assert_eq!(spec.input_width(), 10);
        assert_eq!(spec.output_width(), 1);
        assert_eq!(spec.model_elements(), 10);
        assert_eq!(spec.merge_coef(), 8);
        assert_eq!(spec.stmts.len(), 6);
        // Merge boundary sits after grad (mul, sigma, sub, mul precede it).
        assert_eq!(spec.merge.as_ref().unwrap().boundary, 4);
    }

    #[test]
    fn dims_propagate_through_ops() {
        let mut a = AlgoBuilder::new("t");
        let m = a.model("m", &[5, 10]);
        let x = a.input("x", &[10]);
        let prod = a.mul(m, x).unwrap(); // [5][10] broadcast
        let s = a.sigma(prod, 1).unwrap(); // [5]
        let sq = a.sqrt(s); // [5]
        let spec_dims = |b: &AlgoBuilder, v: VarRef| b.dims_of(v).clone();
        assert_eq!(spec_dims(&a, prod), Dims::matrix(5, 10));
        assert_eq!(spec_dims(&a, s), Dims::vector(5));
        assert_eq!(spec_dims(&a, sq), Dims::vector(5));
    }

    #[test]
    fn shape_errors_surface_at_call_site() {
        let mut a = AlgoBuilder::new("t");
        let m = a.model("m", &[10]);
        let x = a.input("x", &[7]);
        assert!(matches!(a.mul(m, x), Err(DslError::DimMismatch { .. })));
    }

    #[test]
    fn missing_set_model_is_rejected() {
        let mut a = AlgoBuilder::new("t");
        let m = a.model("m", &[4]);
        let x = a.input("x", &[4]);
        let _ = a.mul(m, x).unwrap();
        a.set_epochs(1);
        assert!(matches!(a.finish(), Err(DslError::NoModelUpdate)));
    }

    #[test]
    fn model_shape_mismatch_rejected() {
        let mut a = AlgoBuilder::new("t");
        let m = a.model("m", &[4]);
        let x = a.input("x", &[4]);
        let p = a.mul(m, x).unwrap();
        let s = a.sigma(p, 1).unwrap(); // scalar
        a.set_model(m, s).unwrap();
        a.set_epochs(1);
        assert!(matches!(
            a.finish(),
            Err(DslError::ModelShapeMismatch { .. })
        ));
    }

    #[test]
    fn double_merge_rejected() {
        let mut a = AlgoBuilder::new("t");
        let m = a.model("m", &[4]);
        let x = a.input("x", &[4]);
        let p = a.mul(m, x).unwrap();
        a.merge(p, 4, MergeOp::Sum).unwrap();
        assert!(a.merge(p, 4, MergeOp::Sum).is_err());
    }

    #[test]
    fn zero_merge_coef_rejected() {
        let mut a = AlgoBuilder::new("t");
        let m = a.model("m", &[4]);
        let x = a.input("x", &[4]);
        let p = a.mul(m, x).unwrap();
        assert!(matches!(
            a.merge(p, 0, MergeOp::Sum),
            Err(DslError::BadMergeCoef(0))
        ));
    }

    #[test]
    fn convergence_condition_accepted() {
        let mut a = AlgoBuilder::new("t");
        let m = a.model("m", &[4]);
        let x = a.input("x", &[4]);
        let y = a.output("y");
        let p = a.mul(m, x).unwrap();
        let s = a.sigma(p, 1).unwrap();
        let e = a.sub(s, y).unwrap();
        let g = a.mul(e, x).unwrap();
        let mo_up = a.sub(m, g).unwrap();
        a.set_model(m, mo_up).unwrap();
        let n = a.norm(g, 1).unwrap();
        let thresh = a.meta("cf", 0.01);
        let conv = a.lt(n, thresh).unwrap();
        a.set_convergence(conv, 500);
        let spec = a.finish().unwrap();
        assert!(matches!(
            spec.convergence,
            Convergence::Condition {
                max_epochs: 500,
                ..
            }
        ));
    }

    #[test]
    fn lookup_requires_rank2_matrix_and_scalar_index() {
        let mut a = AlgoBuilder::new("t");
        let l = a.model("L", &[100, 10]);
        let i = a.input("i", &[]);
        let row = a.lookup(l, i).unwrap();
        assert_eq!(a.dims_of(row), &Dims::vector(10));
        let v = a.model("v", &[10]);
        assert!(a.lookup(v, i).is_err());
        let bad_idx = a.input("jj", &[3]);
        assert!(a.lookup(l, bad_idx).is_err());
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_declaration_panics() {
        let mut a = AlgoBuilder::new("t");
        a.model("m", &[4]);
        a.model("m", &[4]);
    }
}
