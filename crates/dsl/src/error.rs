//! DSL errors: construction, parsing, and validation failures.

use std::fmt;

/// Errors raised while building, parsing, or validating a UDF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DslError {
    /// A variable is used before any statement assigns it.
    UseBeforeDef(String),
    /// A variable name is declared twice.
    DuplicateVar(String),
    /// Operand dimensions cannot be broadcast together.
    DimMismatch {
        op: String,
        left: Vec<usize>,
        right: Vec<usize>,
    },
    /// Group-op axis out of range for the operand's rank.
    BadAxis { axis: usize, rank: usize },
    /// The spec never calls `setModel`.
    NoModelUpdate,
    /// `setModel` source dims disagree with the model's dims.
    ModelShapeMismatch {
        model: Vec<usize>,
        update: Vec<usize>,
    },
    /// `setModel` on a single-model algo is ambiguous / wrong target kind.
    BadModelTarget(String),
    /// Merge references an unknown or non-mergeable variable.
    BadMerge(String),
    /// Merge coefficient must be ≥ 1.
    BadMergeCoef(u32),
    /// Convergence condition variable must be a scalar comparison result.
    BadConvergence(String),
    /// Textual parse error with 1-based line number.
    Parse { line: usize, msg: String },
    /// Anything else.
    Invalid(String),
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::UseBeforeDef(v) => write!(f, "variable '{v}' used before definition"),
            DslError::DuplicateVar(v) => write!(f, "variable '{v}' declared twice"),
            DslError::DimMismatch { op, left, right } => {
                write!(
                    f,
                    "operands of '{op}' cannot broadcast: {left:?} vs {right:?}"
                )
            }
            DslError::BadAxis { axis, rank } => {
                write!(f, "group axis {axis} out of range for rank-{rank} operand")
            }
            DslError::NoModelUpdate => write!(f, "UDF never calls setModel"),
            DslError::ModelShapeMismatch { model, update } => {
                write!(
                    f,
                    "setModel shape mismatch: model {model:?} vs update {update:?}"
                )
            }
            DslError::BadModelTarget(msg) => write!(f, "bad setModel target: {msg}"),
            DslError::BadMerge(msg) => write!(f, "bad merge: {msg}"),
            DslError::BadMergeCoef(c) => write!(f, "merge coefficient must be ≥ 1, got {c}"),
            DslError::BadConvergence(msg) => write!(f, "bad convergence: {msg}"),
            DslError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            DslError::Invalid(msg) => write!(f, "invalid UDF: {msg}"),
        }
    }
}

impl std::error::Error for DslError {}

pub type DslResult<T> = Result<T, DslError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = DslError::DimMismatch {
            op: "*".into(),
            left: vec![5],
            right: vec![2, 3],
        };
        let s = e.to_string();
        assert!(s.contains('*') && s.contains("[5]") && s.contains("[2, 3]"));
        let e = DslError::Parse {
            line: 7,
            msg: "unexpected ')'".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }
}
