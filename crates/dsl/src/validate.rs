//! Whole-spec validation: the global checks the translator performs before
//! accepting a UDF (§4.4).
//!
//! The builder validates locally (operand shapes) as statements are
//! recorded; this module validates the *assembled* spec, whichever front
//! end produced it:
//!
//! 1. every operand is declared, and `inter` operands are assigned before
//!    use (the program is straight-line SSA);
//! 2. statement shapes re-derive cleanly (defense against hand-built specs);
//! 3. at least one `setModel`, and each update's shape matches its model;
//! 4. the merge variable exists and its boundary is in range;
//! 5. a convergence condition, if any, is a scalar comparison result.

use std::collections::HashSet;

use crate::ast::{AlgoSpec, Convergence, DataKind, Dims, ModelUpdate, OpKind, Stmt, VarId};
use crate::error::{DslError, DslResult};

/// Validates `spec`, returning the first violation found.
pub fn validate(spec: &AlgoSpec) -> DslResult<()> {
    check_straight_line(spec)?;
    check_shapes(spec)?;
    check_model_updates(spec)?;
    check_merge(spec)?;
    check_convergence(spec)?;
    Ok(())
}

fn var_name(spec: &AlgoSpec, id: VarId) -> String {
    spec.vars
        .get(id.0 as usize)
        .map(|v| v.name.clone())
        .unwrap_or_else(|| format!("<var {}>", id.0))
}

fn check_straight_line(spec: &AlgoSpec) -> DslResult<()> {
    let mut defined: HashSet<VarId> = spec
        .vars
        .iter()
        .filter(|v| v.kind != DataKind::Inter)
        .map(|v| v.id)
        .collect();
    for stmt in &spec.stmts {
        for opnd in stmt.op.operands() {
            if opnd.0 as usize >= spec.vars.len() {
                return Err(DslError::Invalid(format!("operand {} undeclared", opnd.0)));
            }
            if !defined.contains(&opnd) {
                return Err(DslError::UseBeforeDef(var_name(spec, opnd)));
            }
        }
        if stmt.target.0 as usize >= spec.vars.len() {
            return Err(DslError::Invalid(format!(
                "target {} undeclared",
                stmt.target.0
            )));
        }
        defined.insert(stmt.target);
    }
    Ok(())
}

/// Re-derives each statement's output shape and compares it with the
/// target variable's declared shape.
fn check_shapes(spec: &AlgoSpec) -> DslResult<()> {
    for stmt in &spec.stmts {
        let derived = derive_shape(spec, stmt)?;
        let declared = &spec.var(stmt.target).dims;
        if &derived != declared {
            return Err(DslError::Invalid(format!(
                "statement writing '{}' derives shape {derived} but variable declares {declared}",
                var_name(spec, stmt.target)
            )));
        }
    }
    Ok(())
}

fn derive_shape(spec: &AlgoSpec, stmt: &Stmt) -> DslResult<Dims> {
    let dims = |v: VarId| spec.var(v).dims.clone();
    match &stmt.op {
        OpKind::Binary(op, a, b) => dims(*a).broadcast(&dims(*b), op.symbol()),
        OpKind::Unary(_, a) | OpKind::Identity(a) => Ok(dims(*a)),
        OpKind::Group(_, a, axis) => dims(*a).reduce(*axis),
        OpKind::Gather { matrix, index } => {
            let m = dims(*matrix);
            if m.rank() != 2 {
                return Err(DslError::Invalid(format!(
                    "gather from non-matrix '{}'",
                    var_name(spec, *matrix)
                )));
            }
            if !dims(*index).is_scalar() {
                return Err(DslError::Invalid("gather index must be scalar".into()));
            }
            Ok(Dims::vector(m.0[1]))
        }
        OpKind::Const(_) => Ok(Dims::scalar()),
    }
}

fn check_model_updates(spec: &AlgoSpec) -> DslResult<()> {
    if spec.model_updates.is_empty() {
        return Err(DslError::NoModelUpdate);
    }
    for mu in &spec.model_updates {
        let model = spec.var(mu.model());
        if model.kind != DataKind::Model {
            return Err(DslError::BadModelTarget(format!(
                "'{}' is not a model variable",
                model.name
            )));
        }
        let src = spec.var(mu.source());
        match mu {
            ModelUpdate::Whole { .. } => {
                if src.dims != model.dims {
                    return Err(DslError::ModelShapeMismatch {
                        model: model.dims.0.clone(),
                        update: src.dims.0.clone(),
                    });
                }
            }
            ModelUpdate::Row { index, .. } => {
                if model.dims.rank() != 2 {
                    return Err(DslError::BadModelTarget(format!(
                        "row update needs a rank-2 model, '{}' is {}",
                        model.name, model.dims
                    )));
                }
                let row = Dims::vector(model.dims.0[1]);
                if src.dims != row {
                    return Err(DslError::ModelShapeMismatch {
                        model: row.0.clone(),
                        update: src.dims.0.clone(),
                    });
                }
                if !spec.var(*index).dims.is_scalar() {
                    return Err(DslError::BadModelTarget("row index must be scalar".into()));
                }
            }
        }
    }
    Ok(())
}

fn check_merge(spec: &AlgoSpec) -> DslResult<()> {
    if let Some(m) = &spec.merge {
        if m.coef == 0 {
            return Err(DslError::BadMergeCoef(0));
        }
        if m.var.0 as usize >= spec.vars.len() {
            return Err(DslError::BadMerge(format!(
                "merge var {} undeclared",
                m.var.0
            )));
        }
        if m.boundary > spec.stmts.len() {
            return Err(DslError::BadMerge(format!(
                "merge boundary {} beyond {} statements",
                m.boundary,
                spec.stmts.len()
            )));
        }
        // The merged variable must be produced by the pre-merge region.
        let produced_before = spec.stmts[..m.boundary].iter().any(|s| s.target == m.var)
            || spec.var(m.var).kind != DataKind::Inter;
        if !produced_before {
            return Err(DslError::BadMerge(format!(
                "merged variable '{}' is not available at the merge boundary",
                var_name(spec, m.var)
            )));
        }
    }
    Ok(())
}

fn check_convergence(spec: &AlgoSpec) -> DslResult<()> {
    if let Convergence::Condition { var, max_epochs } = &spec.convergence {
        if *max_epochs == 0 {
            return Err(DslError::BadConvergence("max_epochs must be ≥ 1".into()));
        }
        if var.0 as usize >= spec.vars.len() {
            return Err(DslError::BadConvergence(format!(
                "condition var {} undeclared",
                var.0
            )));
        }
        let decl = spec.var(*var);
        if !decl.dims.is_scalar() {
            return Err(DslError::BadConvergence(format!(
                "condition '{}' must be scalar, is {}",
                decl.name, decl.dims
            )));
        }
        // It must be the result of a comparison (Gt/Lt) so the hardware can
        // treat it as a boolean flag.
        let is_cmp = spec.stmts.iter().any(|s| {
            s.target == *var
                && matches!(
                    s.op,
                    OpKind::Binary(crate::ast::BinOp::Gt, _, _)
                        | OpKind::Binary(crate::ast::BinOp::Lt, _, _)
                )
        });
        if !is_cmp {
            return Err(DslError::BadConvergence(format!(
                "condition '{}' is not produced by a comparison",
                decl.name
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, MergeOp, MergeSpec, VarDecl};

    /// Hand-builds a minimal valid spec: m := m - (m * x summed) … enough
    /// structure to probe each validator clause.
    fn hand_spec() -> AlgoSpec {
        let vars = vec![
            VarDecl {
                id: VarId(0),
                name: "m".into(),
                kind: DataKind::Model,
                dims: Dims::vector(4),
                meta_value: None,
            },
            VarDecl {
                id: VarId(1),
                name: "x".into(),
                kind: DataKind::Input,
                dims: Dims::vector(4),
                meta_value: None,
            },
            VarDecl {
                id: VarId(2),
                name: "p".into(),
                kind: DataKind::Inter,
                dims: Dims::vector(4),
                meta_value: None,
            },
            VarDecl {
                id: VarId(3),
                name: "u".into(),
                kind: DataKind::Inter,
                dims: Dims::vector(4),
                meta_value: None,
            },
        ];
        let stmts = vec![
            Stmt {
                target: VarId(2),
                op: OpKind::Binary(BinOp::Mul, VarId(0), VarId(1)),
            },
            Stmt {
                target: VarId(3),
                op: OpKind::Binary(BinOp::Sub, VarId(0), VarId(2)),
            },
        ];
        AlgoSpec {
            name: "hand".into(),
            vars,
            stmts,
            merge: None,
            convergence: Convergence::Epochs(1),
            model_updates: vec![ModelUpdate::Whole {
                model: VarId(0),
                source: VarId(3),
            }],
        }
    }

    #[test]
    fn hand_built_spec_validates() {
        validate(&hand_spec()).unwrap();
    }

    #[test]
    fn use_before_def_detected() {
        let mut spec = hand_spec();
        spec.stmts.swap(0, 1); // 'u' now reads 'p' before its definition
        assert!(matches!(validate(&spec), Err(DslError::UseBeforeDef(_))));
    }

    #[test]
    fn declared_shape_must_match_derived() {
        let mut spec = hand_spec();
        spec.vars[2].dims = Dims::vector(3); // lie about p's shape
        assert!(validate(&spec).is_err());
    }

    #[test]
    fn merge_boundary_out_of_range() {
        let mut spec = hand_spec();
        spec.merge = Some(MergeSpec {
            var: VarId(2),
            coef: 4,
            op: MergeOp::Sum,
            boundary: 99,
        });
        assert!(matches!(validate(&spec), Err(DslError::BadMerge(_))));
    }

    #[test]
    fn merge_var_must_precede_boundary() {
        let mut spec = hand_spec();
        // p is defined by stmt 0; boundary 0 means nothing is produced yet.
        spec.merge = Some(MergeSpec {
            var: VarId(2),
            coef: 4,
            op: MergeOp::Sum,
            boundary: 0,
        });
        assert!(matches!(validate(&spec), Err(DslError::BadMerge(_))));
        // boundary 1 (after stmt 0) is fine.
        spec.merge = Some(MergeSpec {
            var: VarId(2),
            coef: 4,
            op: MergeOp::Sum,
            boundary: 1,
        });
        validate(&spec).unwrap();
    }

    #[test]
    fn non_model_set_model_target_rejected() {
        let mut spec = hand_spec();
        spec.model_updates = vec![ModelUpdate::Whole {
            model: VarId(1),
            source: VarId(3),
        }];
        assert!(matches!(validate(&spec), Err(DslError::BadModelTarget(_))));
    }

    #[test]
    fn convergence_must_be_comparison() {
        let mut spec = hand_spec();
        // 'u' is a Sub result, not a comparison.
        spec.convergence = Convergence::Condition {
            var: VarId(3),
            max_epochs: 10,
        };
        assert!(matches!(validate(&spec), Err(DslError::BadConvergence(_))));
    }
}
