//! Inference-tier acceptance benchmark: batch SoA scoring vs the
//! per-tuple CPU reference pipeline.
//!
//! One full scoring pass over the 5810×54 Remote Sensing LR table
//! (the `data_path` / `engine_hot_loop` loop), two ways:
//!
//! * `per_tuple` — the CPU reference pipeline, the exact shape of
//!   `Dana::train_with_spec_reference`'s CPU arm: every page decoded to
//!   a `HeapPage`, every tuple deformed to a `Datum` row, converted to a
//!   per-row `Vec<f32>`, and scored one at a time through the reference
//!   scorer (three allocations per tuple);
//! * `batch` — the inference tier's path: pages deformed straight into
//!   flat `TupleBatch`es (zero-copy page views, no per-tuple
//!   allocation) and scored by the SoA lockstep executor
//!   group-at-a-time across the design's lanes.
//!
//! Both produce bit-identical predictions (asserted); the acceptance
//! gate is the throughput ratio. Full runs append one JSON record per
//! line to `BENCH_predict.json` at the repo root (cross-PR trajectory);
//! smoke runs (`DANA_SMOKE=1`) assert but do not record.

use std::time::Instant;

use dana_bench::{series_path, BenchRecord};
use dana_infer::{score_batch, ScoringProgram};
use dana_ml::scorer::{score_dense_row, Link};
use dana_storage::{HeapPage, PageView, Tuple, TupleBatch};
use dana_workloads::{generate, workload};

/// Best-of-N wall milliseconds for `f`.
fn best_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let smoke = std::env::var("DANA_SMOKE").is_ok();
    let iters = if smoke { 5 } else { 25 };
    let lanes: u16 = 8;

    let w = workload("Remote Sensing LR").unwrap().scaled(0.01); // 5810 × 54
    let table = generate(&w, 32 * 1024, 17).unwrap();
    let heap = &table.heap;
    let d = heap.schema().len() - 1;
    let weights: Vec<f32> = (0..d).map(|i| 0.3 * i as f32 / d as f32 - 0.1).collect();
    let program = ScoringProgram::Dense {
        weights: weights.clone(),
        link: Link::Sigmoid,
        signed_labels: false,
    };

    println!(
        "=== scoring_throughput: {} tuples × {d} features, {lanes} lanes, best of {iters} ===",
        heap.tuple_count()
    );

    // ---- correctness gate: bit-identical predictions --------------------
    let mut batch = TupleBatch::with_capacity(heap.schema().len(), heap.tuple_count() as usize);
    for p in 0..heap.page_count() {
        PageView::new(heap.page_bytes(p).unwrap(), *heap.layout())
            .unwrap()
            .deform_all_into(heap.schema(), &mut batch)
            .unwrap();
    }
    let (batch_preds, _) = score_batch(&program, lanes, &batch).unwrap();
    let reference: Vec<f32> = heap
        .scan()
        .map(|t| {
            let row: Vec<f32> = t.values.iter().map(|v| v.as_f32()).collect();
            score_dense_row(&weights, &row, Link::Sigmoid)
        })
        .collect();
    assert_eq!(
        batch_preds, reference,
        "batch scorer must be bit-identical to the per-tuple reference"
    );

    // ---- per-tuple reference: page → Datum rows → row-at-a-time ---------
    let per_tuple_ms = best_ms(iters, || {
        let mut out: Vec<f32> = Vec::with_capacity(heap.tuple_count() as usize);
        for p in 0..heap.page_count() {
            let page =
                HeapPage::from_bytes(heap.page_bytes(p).unwrap().to_vec(), *heap.layout()).unwrap();
            for slot in 0..page.tuple_count() {
                let t = Tuple::deform(heap.schema(), page.tuple_bytes(slot).unwrap()).unwrap();
                let row: Vec<f32> = t.values.iter().map(|v| v.as_f32()).collect();
                out.push(score_dense_row(&weights, &row, Link::Sigmoid));
            }
        }
        std::hint::black_box(out);
    });

    // ---- batch path: page views → flat TupleBatch → SoA scorer ----------
    let batch_ms = best_ms(iters, || {
        let mut batch = TupleBatch::with_capacity(heap.schema().len(), heap.tuple_count() as usize);
        for p in 0..heap.page_count() {
            PageView::new(heap.page_bytes(p).unwrap(), *heap.layout())
                .unwrap()
                .deform_all_into(heap.schema(), &mut batch)
                .unwrap();
        }
        let (preds, _) = score_batch(&program, lanes, &batch).unwrap();
        std::hint::black_box(preds);
    });

    let speedup = per_tuple_ms / batch_ms;
    println!("per-tuple reference {per_tuple_ms:>8.3} ms");
    println!("batch SoA scorer    {batch_ms:>8.3} ms   ({speedup:.2}×)");

    BenchRecord::new("scoring_throughput", per_tuple_ms, batch_ms, smoke)
        .str("workload", w.name)
        .int("tuples", heap.tuple_count())
        .int("features", d as u64)
        .int("lanes", lanes as u64)
        .int("iters", iters as u64)
        .append(&series_path("predict"));

    // Acceptance: batch scoring must clear 2× over the per-tuple
    // reference (relaxed in smoke mode on noisy shared runners).
    let floor = if smoke { 1.3 } else { 2.0 };
    assert!(
        speedup >= floor,
        "batch scoring speedup {speedup:.2}× is below the {floor}× acceptance floor"
    );
}
