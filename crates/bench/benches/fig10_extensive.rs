//! Figure 10 reproduction: synthetic-extensive (S/E) speedups, warm and
//! cold — the out-of-memory group (up to 38 GB against an 8 GB pool).

use dana::SystemParams;
use dana_bench::{paper, print_comparison, run_systems, within_band, Row};
use dana_workloads::workload;

fn main() {
    let p = SystemParams::default();
    for (warm, title, table) in [
        (
            true,
            "Figure 10a: S/E datasets, warm cache",
            &paper::FIG10_WARM,
        ),
        (
            false,
            "Figure 10b: S/E datasets, cold cache",
            &paper::FIG10_COLD,
        ),
    ] {
        let mut gp_rows = Vec::new();
        let mut dana_rows = Vec::new();
        for (name, paper_gp, paper_dana) in table.iter() {
            let w = workload(name).expect("registry row");
            let t = run_systems(&w, warm, &p);
            gp_rows.push(Row {
                name: name.to_string(),
                paper: *paper_gp,
                ours: t.gp_speedup(),
            });
            dana_rows.push(Row {
                name: name.to_string(),
                paper: *paper_dana,
                ours: t.dana_speedup(),
            });
        }
        print_comparison(&format!("{title} — Greenplum speedup"), "x", &gp_rows);
        print_comparison(&format!("{title} — DAnA speedup"), "x", &dana_rows);
        let max_is_logistic = dana_rows
            .iter()
            .max_by(|a, b| a.ours.total_cmp(&b.ours))
            .map(|r| r.name == "S/E Logistic")
            .unwrap_or(false);
        println!(
            "shape check: S/E Logistic is the headline win (paper 278x): {}   rows within 3x: {:.0}%",
            max_is_logistic,
            100.0 * within_band(&dana_rows, 3.0)
        );
    }
}
