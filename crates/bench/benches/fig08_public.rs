//! Figure 8 reproduction: end-to-end speedups over MADlib+PostgreSQL for
//! the publicly available datasets, warm (8a) and cold (8b) cache.

use dana::SystemParams;
use dana_bench::{geomean, paper, print_comparison, run_systems, within_band, Row};
use dana_workloads::workload;

fn main() {
    let p = SystemParams::default();
    for (warm, title, table) in [
        (
            true,
            "Figure 8a: public datasets, warm cache",
            &paper::FIG8_WARM,
        ),
        (
            false,
            "Figure 8b: public datasets, cold cache",
            &paper::FIG8_COLD,
        ),
    ] {
        let mut gp_rows = Vec::new();
        let mut dana_rows = Vec::new();
        for (name, paper_gp, paper_dana) in table.iter() {
            let w = workload(name).expect("registry row");
            let t = run_systems(&w, warm, &p);
            gp_rows.push(Row {
                name: name.to_string(),
                paper: *paper_gp,
                ours: t.gp_speedup(),
            });
            dana_rows.push(Row {
                name: name.to_string(),
                paper: *paper_dana,
                ours: t.dana_speedup(),
            });
        }
        print_comparison(&format!("{title} — Greenplum speedup"), "x", &gp_rows);
        print_comparison(&format!("{title} — DAnA speedup"), "x", &dana_rows);
        let ours_geo = geomean(&dana_rows.iter().map(|r| r.ours).collect::<Vec<_>>());
        let paper_geo = geomean(&dana_rows.iter().map(|r| r.paper).collect::<Vec<_>>());
        println!(
            "shape check: DAnA wins everywhere: {}   geomean paper {paper_geo:.1}x vs ours {ours_geo:.1}x   rows within 3x: {:.0}%",
            dana_rows.iter().all(|r| r.ours > 1.0),
            100.0 * within_band(&dana_rows, 3.0)
        );
    }
}
