//! Table 5 reproduction: absolute end-to-end runtimes for
//! MADlib+PostgreSQL, MADlib+Greenplum (8 segments), and DAnA+PostgreSQL,
//! warm cache, all fourteen workloads.

use dana::SystemParams;
use dana_bench::{fmt_seconds, paper, run_systems, within_band, Row};
use dana_workloads::all_workloads;

fn main() {
    let p = SystemParams::default();
    println!("=== Table 5: absolute runtimes (warm cache) ===");
    println!(
        "{:<20} {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12}",
        "workload", "paper PG", "ours PG", "paper GP", "ours GP", "paper DAnA", "ours DAnA"
    );
    let mut pg_rows = Vec::new();
    let mut gp_rows = Vec::new();
    let mut dana_rows = Vec::new();
    for w in all_workloads() {
        let totals = run_systems(&w, true, &p);
        let (_, paper_pg, paper_gp, paper_dana) = *paper::TABLE5
            .iter()
            .find(|(n, _, _, _)| *n == w.name)
            .expect("paper row");
        println!(
            "{:<20} {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12}",
            w.name,
            fmt_seconds(paper_pg),
            fmt_seconds(totals.madlib_pg),
            fmt_seconds(paper_gp),
            fmt_seconds(totals.madlib_gp8),
            fmt_seconds(paper_dana),
            fmt_seconds(totals.dana),
        );
        pg_rows.push(Row {
            name: w.name.into(),
            paper: paper_pg,
            ours: totals.madlib_pg,
        });
        gp_rows.push(Row {
            name: w.name.into(),
            paper: paper_gp,
            ours: totals.madlib_gp8,
        });
        dana_rows.push(Row {
            name: w.name.into(),
            paper: paper_dana,
            ours: totals.dana,
        });
    }
    println!(
        "\nabsolute agreement within 3x: PG {:.0}%  GP {:.0}%  DAnA {:.0}%",
        100.0 * within_band(&pg_rows, 3.0),
        100.0 * within_band(&gp_rows, 3.0),
        100.0 * within_band(&dana_rows, 3.0),
    );
    println!("(absolute times depend on fitted epoch counts; the figures' ratios are the primary reproduction target)");
}
