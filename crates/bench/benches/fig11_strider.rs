//! Figure 11 reproduction: DAnA with and without Striders (warm cache,
//! MADlib+PostgreSQL baseline). The paper attributes 4.6× of DAnA's
//! average benefit to the Striders.

use dana::{analytic_dana, analytic_madlib, ExecutionMode, SystemParams};
use dana_bench::{geomean, paper, print_comparison, Row};
use dana_workloads::workload;

fn main() {
    let p = SystemParams::default();
    let mut with_rows = Vec::new();
    let mut without_rows = Vec::new();
    for (name, paper_without, paper_with) in paper::FIG11.iter() {
        let w = workload(name).expect("registry row");
        let madlib = analytic_madlib(&w, true, &p).total_seconds;
        let with = madlib
            / analytic_dana(&w, ExecutionMode::Strider, true, &p)
                .unwrap()
                .total_seconds;
        let without = madlib
            / analytic_dana(&w, ExecutionMode::CpuFed, true, &p)
                .unwrap()
                .total_seconds;
        with_rows.push(Row {
            name: name.to_string(),
            paper: *paper_with,
            ours: with,
        });
        without_rows.push(Row {
            name: name.to_string(),
            paper: *paper_without,
            ours: without,
        });
    }
    print_comparison(
        "Figure 11 — DAnA without Striders (speedup over MADlib+PG)",
        "x",
        &without_rows,
    );
    print_comparison("Figure 11 — DAnA with Striders", "x", &with_rows);

    let ours_with = geomean(&with_rows.iter().map(|r| r.ours).collect::<Vec<_>>());
    let ours_without = geomean(&without_rows.iter().map(|r| r.ours).collect::<Vec<_>>());
    let paper_with = geomean(&with_rows.iter().map(|r| r.paper).collect::<Vec<_>>());
    let paper_without = geomean(&without_rows.iter().map(|r| r.paper).collect::<Vec<_>>());
    println!(
        "\nStrider amplification: paper {:.1}x (10.8/2.3), ours {:.1}x ({:.1}/{:.1})",
        paper_with / paper_without,
        ours_with / ours_without,
        ours_with,
        ours_without
    );
    let wins = with_rows
        .iter()
        .zip(&without_rows)
        .filter(|(w, wo)| w.ours > wo.ours)
        .count();
    println!("shape check: Striders help on {wins}/14 workloads (paper: 14/14)");
}
