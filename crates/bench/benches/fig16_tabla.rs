//! Figure 16 reproduction: DAnA vs TABLA-generated accelerators.
//!
//! TABLA [5] compiles the same update rules to an FPGA but (1) is fed by
//! the CPU (no Striders) and (2) runs a single-threaded engine. The paper
//! measures 4.7× geomean in DAnA's favor, attributing it to Strider
//! interleaving and multi-threading.

use dana::{analytic_dana, ExecutionMode, SystemParams};
use dana_bench::{geomean, paper, print_comparison, Row};
use dana_storage::DiskModel;
use dana_workloads::workload;

fn main() {
    let p = SystemParams {
        disk: DiskModel::instant(), // accelerator-side comparison
        ..SystemParams::default()
    };
    let mut rows = Vec::new();
    for (name, paper_speedup) in paper::FIG16.iter() {
        let w = workload(name).expect("registry row");
        let dana = analytic_dana(&w, ExecutionMode::Strider, true, &p)
            .unwrap()
            .total_seconds;
        let tabla = analytic_dana(&w, ExecutionMode::Tabla, true, &p)
            .unwrap()
            .total_seconds;
        rows.push(Row {
            name: name.to_string(),
            paper: *paper_speedup,
            ours: tabla / dana,
        });
    }
    print_comparison("Figure 16 — DAnA speedup over TABLA", "x", &rows);
    let ours_geo = geomean(&rows.iter().map(|r| r.ours).collect::<Vec<_>>());
    println!(
        "\nshape check: DAnA wins overall (paper geomean 3.8x): ours {ours_geo:.1}x, wins on {}/10 workloads (paper: 9/10)",
        rows.iter().filter(|r| r.ours > 1.0).count()
    );
}
