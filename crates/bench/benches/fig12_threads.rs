//! Figure 12 reproduction: accelerator runtime vs merge coefficient
//! (thread count) for Remote Sensing SVM / LR, Netflix, and Patient.
//!
//! The paper plots DAnA's accelerator time (access + execution engines)
//! against increasing thread counts: narrow models (Remote Sensing) keep
//! improving until peak compute utilization; LRMF (Netflix) saturates
//! early because row gathers/scatters contend for model memory; Patient
//! saturates once the engine is no longer the bottleneck.

use dana::{analytic_dana_threads, SystemParams};
use dana_storage::DiskModel;
use dana_workloads::workload;

fn main() {
    let p = SystemParams {
        disk: DiskModel::instant(), // accelerator time only
        ..SystemParams::default()
    };
    let sweeps: [(&str, &[u32]); 4] = [
        ("Remote Sensing SVM", &[1, 4, 16, 64, 128]),
        ("Remote Sensing LR", &[1, 4, 16, 64, 128]),
        ("Netflix", &[1, 2, 4, 8, 16, 32, 64]),
        ("Patient", &[1, 4, 16, 64, 128]),
    ];
    println!(
        "=== Figure 12: runtime vs merge coefficient (normalized to 1 thread; >1 = faster) ==="
    );
    for (name, threads) in sweeps {
        let base_w = workload(name).expect("registry row").with_merge_coef(1);
        let base = analytic_dana_threads(&base_w, 1, true, &p)
            .unwrap()
            .total_seconds;
        print!("{name:<20}");
        let mut series = Vec::new();
        for &t in threads {
            let w = workload(name).unwrap().with_merge_coef(t);
            let total = analytic_dana_threads(&w, t, true, &p)
                .unwrap()
                .total_seconds;
            series.push(base / total);
            print!("  t={t}: {:.2}x", base / total);
        }
        println!();
        let monotone_until_plateau = series.windows(2).all(|w| w[1] >= w[0] * 0.85);
        let plateaus = series.last().unwrap() / series[series.len() - 2] < 1.15;
        println!(
            "    shape: improves-then-saturates: {}",
            monotone_until_plateau && plateaus
        );
    }
    println!("\n(paper: Remote Sensing workloads scale with threads until peak utilization;");
    println!(" Netflix/LRMF does not benefit from added threads; Patient saturates early)");
}
