//! Figure 14 reproduction: FPGA-time sensitivity to AXI bandwidth
//! (0.25×, 0.5×, 2×, 4× the baseline). FPGA time excludes disk I/O, so
//! the sweep uses an instant disk.

use dana::{analytic_dana, ExecutionMode, SystemParams};
use dana_bench::paper;
use dana_storage::DiskModel;
use dana_workloads::workload;

fn main() {
    let base_params = SystemParams {
        disk: DiskModel::instant(), // isolate FPGA time
        ..SystemParams::default()
    };
    let scales = [0.25, 0.5, 2.0, 4.0];

    println!("=== Figure 14: FPGA-time speedup over baseline bandwidth ===");
    println!(
        "{:<20} | {:>5} {:>5} {:>5} {:>5} | {:>5} {:>5} {:>5} {:>5}",
        "workload", "p.25x", "p.5x", "p2x", "p4x", "o.25x", "o.5x", "o2x", "o4x"
    );
    let mut bound_right = 0usize;
    for (name, paper_vals) in paper::FIG14.iter() {
        let w = workload(name).expect("registry row");
        let base = analytic_dana(&w, ExecutionMode::Strider, true, &base_params)
            .unwrap()
            .total_seconds;
        let ours: Vec<f64> = scales
            .iter()
            .map(|s| {
                let p = base_params.with_bandwidth_scale(*s);
                base / analytic_dana(&w, ExecutionMode::Strider, true, &p)
                    .unwrap()
                    .total_seconds
            })
            .collect();
        println!(
            "{:<20} | {:>5.2} {:>5.2} {:>5.2} {:>5.2} | {:>5.2} {:>5.2} {:>5.2} {:>5.2}",
            name,
            paper_vals[0],
            paper_vals[1],
            paper_vals[2],
            paper_vals[3],
            ours[0],
            ours[1],
            ours[2],
            ours[3]
        );
        // Qualitative agreement: a workload the paper calls
        // bandwidth-sensitive (4× gives ≥1.3×) should be sensitive here
        // too, and vice versa.
        let paper_sensitive = paper_vals[3] >= 1.3;
        let ours_sensitive = ours[3] >= 1.3;
        if paper_sensitive == ours_sensitive {
            bound_right += 1;
        }
    }
    println!(
        "\nshape check: bandwidth-bound classification matches the paper on {bound_right}/14 workloads"
    );
    println!("(paper: wide dense synthetics are bandwidth-bound; LRMF and small models are not)");
}
