//! Table 3 + Table 4 reproduction: dataset/workload inventory and the FPGA
//! platform specification.

use dana_bench::fmt_seconds;
use dana_fpga::FpgaSpec;
use dana_workloads::all_workloads;

fn main() {
    println!("=== Table 3: datasets and machine learning models ===");
    println!(
        "{:<20} {:<28} {:>16} {:>12} {:>12} {:>10} {:>10}",
        "workload", "algorithm", "model topology", "tuples", "our tuples", "pages(32K)", "size MB"
    );
    for w in all_workloads() {
        let topo = match w.lrmf {
            Some((r, c, k)) => format!("{r}, {c}, {k}"),
            None => w.features.to_string(),
        };
        println!(
            "{:<20} {:<28} {:>16} {:>12} {:>12} {:>10} {:>10}",
            w.name,
            w.algorithm.name(),
            topo,
            w.paper_tuples,
            w.tuples,
            w.pages_for(32 * 1024),
            w.bytes() / 1_000_000,
        );
    }
    println!("\n(paper page counts: our layout differs in header bytes; see DESIGN.md)");

    let f = FpgaSpec::vu9p();
    println!("\n=== Table 4: FPGA specification ({}) ===", f.name);
    println!(
        "LUTs: {}K   Flip-Flops: {}K   Frequency: {} MHz   BRAM: {} MB   DSPs: {}",
        f.luts / 1000,
        f.flip_flops / 1000,
        (f.clock.hz / 1.0e6) as u64,
        f.bram_bytes / (1024 * 1024),
        f.dsp_slices
    );
    println!(
        "max compute units: {}   baseline AXI bandwidth: {:.1} GB/s (fitted; DESIGN.md §7)",
        f.max_compute_units,
        f.axi_bandwidth / 1.0e9
    );
    let _ = fmt_seconds(1.0);
}
