//! Figure 15 reproduction: comparison with external software libraries
//! (Liblinear-Multicore, DimmWitted): phase breakdown (15a) and
//! end-to-end speedups over MADlib+PostgreSQL (15c).

use dana::{analytic_dana, analytic_external, analytic_madlib, ExecutionMode, SystemParams};
use dana_bench::paper;
use dana_ml::ExternalLibrary;
use dana_workloads::workload;

fn main() {
    let p = SystemParams::default();

    println!("=== Figure 15a: runtime breakdown (export / transform / analytics) ===");
    println!(
        "{:<12} {:<20} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "library", "workload", "p.exp%", "p.trf%", "p.cmp%", "o.exp%", "o.trf%", "o.cmp%"
    );
    for (lib_name, wl, pe, pt, pc) in paper::FIG15A.iter() {
        let lib = match *lib_name {
            "Liblinear" => ExternalLibrary::Liblinear,
            _ => ExternalLibrary::DimmWitted,
        };
        let w = workload(wl).expect("registry row");
        if let Some((e, t, c)) = analytic_external(&w, lib, &p) {
            let total = e + t + c;
            println!(
                "{:<12} {:<20} | {:>6.1}% {:>6.1}% {:>6.1}% | {:>6.1}% {:>6.1}% {:>6.1}%",
                lib_name,
                wl,
                pe * 100.0,
                pt * 100.0,
                pc * 100.0,
                e / total * 100.0,
                t / total * 100.0,
                c / total * 100.0
            );
        }
    }

    println!("\n=== Figure 15c: end-to-end speedup over MADlib+PostgreSQL ===");
    println!(
        "{:<20} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "workload", "Lib p", "Lib o", "DW p", "DW o", "DAnA p", "DAnA o"
    );
    let mut dana_always_wins = true;
    for (wl, lib_paper, dw_paper, dana_paper) in paper::FIG15C.iter() {
        let w = workload(wl).expect("registry row");
        let madlib = analytic_madlib(&w, true, &p).total_seconds;
        let ext = |lib| {
            analytic_external(&w, lib, &p)
                .map(|(e, t, c)| madlib / (e + t + c))
                .unwrap_or(f64::NAN)
        };
        let lib_ours = ext(ExternalLibrary::Liblinear);
        let dw_ours = ext(ExternalLibrary::DimmWitted);
        let dana_ours = madlib
            / analytic_dana(&w, ExecutionMode::Strider, true, &p)
                .unwrap()
                .total_seconds;
        println!(
            "{:<20} | {:>8.2} {:>8.2} | {:>8.2} {:>8.2} | {:>8.2} {:>8.2}",
            wl, lib_paper, lib_ours, dw_paper, dw_ours, dana_paper, dana_ours
        );
        if dana_ours < lib_ours || dana_ours < dw_ours {
            dana_always_wins = false;
        }
    }
    println!(
        "\nshape check: DAnA is uniformly faster than both libraries (paper: yes): {dana_always_wins}"
    );
    println!(
        "shape check: library SVM solvers lose to in-database IGD (speedup < 1) — see rows above"
    );
}
